package apusim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestExperimentShimCrossovers(t *testing.T) {
	rows, _, err := ExperimentShim()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int{}
	for _, r := range rows {
		byKey[r.Platform+"/"+r.Call] = r.Crossover
	}
	// The APU's zero-copy access drops the GPU-profitable problem size
	// well below the discrete platform's.
	if byKey["MI300A/dgemm"] >= byKey["MI250X/dgemm"] {
		t.Errorf("APU dgemm crossover %d should be below discrete %d",
			byKey["MI300A/dgemm"], byKey["MI250X/dgemm"])
	}
	if byKey["MI300A/daxpy"] >= byKey["MI250X/daxpy"] {
		t.Errorf("APU daxpy crossover %d should be below discrete %d",
			byKey["MI300A/daxpy"], byKey["MI250X/daxpy"])
	}
}

func TestExperimentManagedMemoryOrdering(t *testing.T) {
	r, _, err := ExperimentManagedMemory(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range []*ProgramResult{r.APU, r.Explicit, r.Managed} {
		if !pr.Verified {
			t.Errorf("%s did not verify", pr.Program)
		}
	}
	// APU < explicit copies < page migration.
	if !(r.APU.Total < r.Explicit.Total && r.Explicit.Total < r.Managed.Total) {
		t.Errorf("ordering wrong: apu=%v explicit=%v managed=%v",
			r.APU.Total, r.Explicit.Total, r.Managed.Total)
	}
	if r.Stats.Faults == 0 {
		t.Error("managed run recorded no faults")
	}
}

func TestExperimentPolicyAblationTradeoff(t *testing.T) {
	r, _, err := ExperimentPolicyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockHitRate <= r.RRHitRate {
		t.Errorf("block hit rate %.2f should exceed round-robin %.2f",
			r.BlockHitRate, r.RRHitRate)
	}
}

func TestExperimentPrefetchAblation(t *testing.T) {
	r, err := ExperimentPrefetchAblation()
	if err != nil {
		t.Fatal(err)
	}
	if r.HitRateOn <= r.HitRateOff {
		t.Errorf("prefetch-on hit rate %.2f should exceed off %.2f", r.HitRateOn, r.HitRateOff)
	}
	if r.HitRateOn < 0.5 {
		t.Errorf("sequential stream with prefetch = %.2f hit rate, want high", r.HitRateOn)
	}
}

func TestExperimentPowerShiftAblation(t *testing.T) {
	r, _ := ExperimentPowerShiftAblation()
	if r.DynamicXCDWatts <= r.StaticXCDWatts {
		t.Error("dynamic governor should grant XCDs more power in a compute phase")
	}
	if r.DynamicScale < r.StaticScale {
		t.Error("dynamic governor should throttle no harder than static")
	}
}

func TestExperimentBondInterface(t *testing.T) {
	r, _, err := ExperimentBondInterface()
	if err != nil {
		t.Fatal(err)
	}
	if r.MI300DroopMV >= r.VCacheDroopMV {
		t.Error("MI300 RDL landing should droop less (Fig. 11)")
	}
	if r.MI300MaxW <= r.VCacheMaxW {
		t.Error("MI300 interface should deliver more power")
	}
}

func TestExperimentCoherenceScopes(t *testing.T) {
	r, _, err := ExperimentCoherenceScopes()
	if err != nil {
		t.Fatal(err)
	}
	if r.SW1GB >= r.HW1GB {
		t.Error("software coherence should win the 1 GB handoff (§IV.D)")
	}
	if r.Crossover <= 0 || r.Crossover >= 1<<30 {
		t.Errorf("crossover = %d, want interior", r.Crossover)
	}
	if r.ProbeTax < 0.25 {
		t.Errorf("probe tax = %.2f, want substantial", r.ProbeTax)
	}
}

func TestWriteFig14Trace(t *testing.T) {
	var buf bytes.Buffer
	r, err := WriteFig14Trace(&buf, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if !r.APU.Verified {
		t.Error("traced programs did not verify")
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 3 process names + at least 4+6+4 step spans.
	if len(decoded) < 14 {
		t.Errorf("trace has %d records, want >= 14", len(decoded))
	}
	if !strings.Contains(buf.String(), "hipMemcpy H2D") {
		t.Error("trace missing discrete copy span")
	}
}

func TestWriteDispatchTrace(t *testing.T) {
	var buf bytes.Buffer
	r, err := WriteDispatchTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.XCDs != 6 {
		t.Errorf("XCDs = %d", r.XCDs)
	}
	if !strings.Contains(buf.String(), "XCD5") {
		t.Error("trace missing XCD5 track")
	}
}

func TestExperimentTenantIsolation(t *testing.T) {
	rs, _, err := ExperimentTenantIsolation()
	if err != nil {
		t.Fatal(err)
	}
	nps1, nps4 := rs[0], rs[1]
	// NPS1: higher peak alone (full interleave)...
	if nps1.AloneBW <= nps4.AloneBW {
		t.Errorf("NPS1 alone (%.0f GB/s) should exceed NPS4 alone (%.0f GB/s)",
			nps1.AloneBW/1e9, nps4.AloneBW/1e9)
	}
	// ...but substantial degradation with a neighbor...
	if nps1.DegradationPct < 20 {
		t.Errorf("NPS1 degradation = %.0f%%, want substantial", nps1.DegradationPct)
	}
	// ...while NPS4 isolates.
	if nps4.DegradationPct > 5 {
		t.Errorf("NPS4 degradation = %.0f%%, want ~0 (dedicated channels)", nps4.DegradationPct)
	}
}

func TestExperimentEfficiency(t *testing.T) {
	rows, _, err := ExperimentEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// MI300A's TDP is slightly below MI250X's, so perf/W uplift is
		// at least the speedup.
		if r.EfficiencyX < r.Speedup {
			t.Errorf("%s: perf/W %.2f below speedup %.2f", r.Workload, r.EfficiencyX, r.Speedup)
		}
		if r.EfficiencyX <= 1 {
			t.Errorf("%s: no efficiency gain", r.Workload)
		}
	}
}

func TestExperimentEnergyPerPhase(t *testing.T) {
	tbl, err := ExperimentEnergyPerPhase()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 7 { // 6 domains + total
		t.Errorf("rows = %d", tbl.NumRows())
	}
}

func TestExperimentStrongScale(t *testing.T) {
	pts, _, err := ExperimentStrongScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[3].Speedup <= pts[0].Speedup {
		t.Error("no scaling across the node")
	}
	if pts[3].Efficiency <= 0.5 {
		t.Errorf("4-socket efficiency = %.2f, want > 0.5 for compute-heavy work", pts[3].Efficiency)
	}
}
