package apusim

import (
	"fmt"
	"strings"

	"repro/internal/chiplet"
	"repro/internal/config"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// This file is the experiment harness: one function per table/figure of
// the paper's evaluation, each returning structured results plus a
// rendered, paper-style table or series. cmd/repro prints them;
// bench_test.go regenerates them under `go test -bench`.

// ExperimentTable1 reproduces Table 1: peak operations-per-clock-per-CU
// for CDNA 2 (MI250X) versus CDNA 3 (MI300A), all data types.
func ExperimentTable1() *metrics.Table {
	t := metrics.NewTable("Table 1: peak ops/clock/CU",
		"Arch", "V.FP64", "V.FP32", "M.FP64", "M.FP32", "M.TF32", "M.FP16", "M.BF16", "M.FP8", "M.INT8", "Sparse.FP8")
	for _, rt := range []*config.RateTable{config.CDNA2Rates(), config.CDNA3Rates()} {
		na := func(v float64) string {
			if v == 0 {
				return "n/a"
			}
			return metrics.FormatFloat(v)
		}
		t.AddRow(rt.Name,
			na(rt.Ops(config.Vector, config.FP64)), na(rt.Ops(config.Vector, config.FP32)),
			na(rt.Ops(config.Matrix, config.FP64)), na(rt.Ops(config.Matrix, config.FP32)),
			na(rt.Ops(config.Matrix, config.TF32)), na(rt.Ops(config.Matrix, config.FP16)),
			na(rt.Ops(config.Matrix, config.BF16)), na(rt.Ops(config.Matrix, config.FP8)),
			na(rt.Ops(config.Matrix, config.INT8)),
			na(func() float64 {
				if rt.SparseMatrixOps[config.FP8] > 0 {
					return rt.SparseMatrixOps[config.FP8]
				}
				return 0
			}()))
	}
	return t
}

// IODBandwidth is one measured interface bandwidth for Fig. 7.
type IODBandwidth struct {
	Interface  string
	ModelBW    float64 // configured bytes/sec per direction
	MeasuredBW float64 // achieved by saturating transfers in the fabric
}

// ExperimentFig7 reproduces Fig. 7: bandwidths across the IOD's
// interfaces (3D-bonded chiplet, USR horizontal/vertical, HBM stack, x16),
// measured by saturating each interface with back-to-back transfers.
func ExperimentFig7() ([]IODBandwidth, *metrics.Table, error) {
	p, err := NewMI300A()
	if err != nil {
		return nil, nil, err
	}
	spec := p.Spec
	measure := func(src, dst fabric.NodeID) float64 {
		p.Net.ResetStats()
		const chunk = 1 << 20
		const reps = 64
		var end sim.Time
		for i := 0; i < reps; i++ {
			done, err := p.Net.Transfer(0, src, dst, chunk)
			if err != nil {
				return 0
			}
			if done > end {
				end = done
			}
		}
		return float64(chunk*reps) / end.Seconds()
	}
	rows := []IODBandwidth{
		{"XCD 3D bond", 2.2e12, measure(p.XCDNode(0), p.IODNode(0))},
		{"USR horizontal (A-B)", spec.IOD.USRHorizontalBW, measure(p.IODNode(0), p.IODNode(1))},
		{"USR vertical (A-C)", spec.IOD.USRVerticalBW, measure(p.IODNode(0), p.IODNode(2))},
		{"HBM stack", spec.HBM.StackBW, measure(p.IODNode(0), p.HBMNode(0))},
		{"x16 IFOP/PCIe", spec.IOD.X16BWPerDir, measure(p.IODNode(0), p.Net.NodeByName("x16-0").ID)},
	}
	t := metrics.NewTable("Fig. 7: MI300A IOD interface bandwidths (per direction)",
		"Interface", "Model", "Measured")
	for _, r := range rows {
		t.AddRow(r.Interface, metrics.FormatRate(r.ModelBW), metrics.FormatRate(r.MeasuredBW))
	}
	return rows, t, nil
}

// PowerScenario is one Fig. 12(a) bar: the normalized power distribution
// for a workload scenario.
type PowerScenario struct {
	Name      string
	Alloc     power.Allocation
	Fractions map[string]float64
}

// ExperimentFig12a reproduces Fig. 12(a): representative power
// distributions for compute-intensive and memory-intensive scenarios
// under the MI300A socket governor.
func ExperimentFig12a() ([]PowerScenario, *metrics.Table) {
	m := power.MI300AModel()
	out := make([]PowerScenario, 0, 2)
	t := metrics.NewTable("Fig. 12a: normalized power distribution (MI300A, 550 W TDP)",
		"Scenario", "XCD", "CCD", "HBM", "Fabric", "USR", "IO", "Total W")
	for _, sc := range []struct {
		name string
		act  power.Activity
	}{
		{"compute-intensive", power.ComputeIntensive()},
		{"memory-intensive", power.MemoryIntensive()},
	} {
		alloc, _ := m.Allocate(sc.act)
		fr := map[string]float64{}
		row := []string{sc.name}
		for _, d := range power.AllDomains() {
			fr[d.String()] = alloc.Fraction(d)
			row = append(row, fmt.Sprintf("%.0f%%", alloc.Fraction(d)*100))
		}
		row = append(row, metrics.FormatFloat(alloc.Total()))
		t.AddRow(row...)
		out = append(out, PowerScenario{Name: sc.name, Alloc: alloc, Fractions: fr})
	}
	return out, t
}

// ThermalScenario is one Fig. 12(b/c) heat map.
type ThermalScenario struct {
	Name     string
	Field    *thermal.Field
	PeakC    float64
	HotspotX int
	HotspotY int
	// HotspotComponent is the floorplan component containing the peak.
	HotspotComponent string
	// XCDMeanC / USRMeanC summarize where the heat sits.
	XCDMeanC float64
	USRMeanC float64
}

// ExperimentFig12bc reproduces Fig. 12(b) and (c): thermal simulations of
// the GPU-intensive and memory-intensive power maps over the real
// MI300A floorplan geometry.
func ExperimentFig12bc(nx, ny int) ([2]ThermalScenario, error) {
	if nx <= 0 {
		nx, ny = 96, 60
	}
	pkg := chiplet.AssembleMI300A()
	if err := pkg.Validate(); err != nil {
		return [2]ThermalScenario{}, err
	}
	bounds := pkg.Bounds()
	comps := pkg.Floorplan()
	solver := thermal.NewSolver(nx, ny)
	m := power.MI300AModel()

	scenarios := []struct {
		name string
		act  power.Activity
	}{
		{"GPU-intensive (Fig. 12b)", power.ComputeIntensive()},
		{"memory-intensive (Fig. 12c)", power.MemoryIntensive()},
	}
	var out [2]ThermalScenario
	for i, sc := range scenarios {
		alloc, _ := m.Allocate(sc.act)
		watts := distributeWatts(alloc, comps)
		field := solver.Solve(solver.PowerMap(bounds, comps, watts))
		peak, hx, hy := field.Max()
		ts := ThermalScenario{
			Name: sc.name, Field: field, PeakC: peak, HotspotX: hx, HotspotY: hy,
		}
		var nXCD, nUSR int
		for _, c := range comps {
			x0, y0, x1, y1 := solver.RectOf(bounds, c.Rect)
			if hx >= x0 && hx < x1 && hy >= y0 && hy < y1 && ts.HotspotComponent == "" && c.Kind != chiplet.CompIOD {
				ts.HotspotComponent = c.Name
			}
			switch c.Kind {
			case chiplet.CompXCD:
				ts.XCDMeanC += field.MeanOver(x0, y0, x1, y1)
				nXCD++
			case chiplet.CompUSRPHY:
				ts.USRMeanC += field.MeanOver(x0, y0, x1, y1)
				nUSR++
			}
		}
		if nXCD > 0 {
			ts.XCDMeanC /= float64(nXCD)
		}
		if nUSR > 0 {
			ts.USRMeanC /= float64(nUSR)
		}
		out[i] = ts
	}
	return out, nil
}

// distributeWatts spreads a domain allocation over floorplan components.
func distributeWatts(alloc power.Allocation, comps []chiplet.Component) map[string]float64 {
	counts := map[chiplet.ComponentKind]int{}
	for _, c := range comps {
		counts[c.Kind]++
	}
	perKind := map[chiplet.ComponentKind]float64{}
	split := func(k chiplet.ComponentKind, watts float64) {
		if counts[k] > 0 {
			perKind[k] = watts / float64(counts[k])
		}
	}
	split(chiplet.CompXCD, alloc[power.DomainXCD])
	split(chiplet.CompCCD, alloc[power.DomainCCD])
	// HBM domain power: half in the stacks, half in the PHYs.
	split(chiplet.CompHBM, alloc[power.DomainHBM]*0.5)
	split(chiplet.CompHBMPHY, alloc[power.DomainHBM]*0.5)
	split(chiplet.CompIOD, alloc[power.DomainFabric]+alloc[power.DomainIO])
	split(chiplet.CompUSRPHY, alloc[power.DomainUSR])
	watts := map[string]float64{}
	for _, c := range comps {
		watts[c.Name] = perKind[c.Kind]
	}
	return watts
}

// Fig13Result summarizes a cooperative multi-XCD dispatch (Fig. 13).
type Fig13Result struct {
	XCDs           int
	Workgroups     int
	PerXCD         []uint64
	SyncMessages   uint64
	PacketsDecoded uint64
	Completion     sim.Time
}

// ExperimentFig13 reproduces the Fig. 13 dispatch flow: one AQL packet
// read by the ACE in every XCD of the partition, each launching its
// subset of workgroups, with completion synchronization to a nominated
// XCD.
func ExperimentFig13() (*Fig13Result, error) {
	p, err := NewMI300A()
	if err != nil {
		return nil, err
	}
	k := &KernelSpec{
		Name: "fig13", Class: Vector, Dtype: FP32,
		FlopsPerItem: 1000, BytesReadPerItem: 8,
	}
	const items = 6 * 38 * 2 * 256 // two waves of workgroups per CU
	done, err := p.GPU.Dispatch(0, k, items, 256, 0)
	if err != nil {
		return nil, err
	}
	r := &Fig13Result{XCDs: len(p.XCDs), Workgroups: items / 256, Completion: done}
	for _, x := range p.XCDs {
		st := x.Stats()
		r.PerXCD = append(r.PerXCD, st.Workgroups)
		r.SyncMessages += st.SyncMessages
		r.PacketsDecoded += st.PacketsDecoded
	}
	return r, nil
}

// Fig14Result bundles the three program variants of Fig. 14.
type Fig14Result struct {
	CPUOnly  *ProgramResult
	Discrete *ProgramResult
	APU      *ProgramResult
}

// ExperimentFig14 reproduces Fig. 14: the same computation as a CPU-only
// program, a discrete-GPU program with explicit copies (on MI250X), and a
// unified-memory APU program (on MI300A).
func ExperimentFig14(n int) (*Fig14Result, *metrics.Table, error) {
	if n <= 0 {
		n = 1 << 22
	}
	// Each program gets a fresh platform so no queueing state leaks
	// between runs.
	cpuPlat, err := NewMI300A()
	if err != nil {
		return nil, nil, err
	}
	disc, err := NewMI250X()
	if err != nil {
		return nil, nil, err
	}
	apu, err := NewMI300A()
	if err != nil {
		return nil, nil, err
	}
	cpuOnly, err := RunCPUOnly(cpuPlat, n)
	if err != nil {
		return nil, nil, err
	}
	discrete, err := RunDiscrete(disc, n)
	if err != nil {
		return nil, nil, err
	}
	apuRes, err := RunAPU(apu, n)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable(fmt.Sprintf("Fig. 14: program timelines (n=%d float64)", n),
		"Program", "Platform", "Steps", "Copies", "Total", "Verified")
	for _, r := range []*ProgramResult{cpuOnly, discrete, apuRes} {
		var steps []string
		for _, s := range r.Steps {
			steps = append(steps, fmt.Sprintf("%s=%v", s.Name, s.Duration()))
		}
		t.AddRow(r.Program, r.Platform, strings.Join(steps, " "),
			metrics.FormatBytes(uint64(r.CopyBytes)), r.Total.String(), fmt.Sprint(r.Verified))
	}
	return &Fig14Result{CPUOnly: cpuOnly, Discrete: discrete, APU: apuRes}, t, nil
}

// ExperimentFig15 reproduces Fig. 15: fine-grained decoupling of GPU
// production and CPU consumption through coherent flags.
func ExperimentFig15(n, chunks int) (*OverlapResult, error) {
	if n <= 0 {
		n, chunks = 1<<20, 64
	}
	p, err := NewMI300A()
	if err != nil {
		return nil, err
	}
	return RunOverlap(p, n, chunks)
}

// ExperimentFig17 reproduces Fig. 17: every supported compute/memory
// partitioning mode for MI300A and MI300X with per-partition resources.
func ExperimentFig17() (*metrics.Table, error) {
	t := metrics.NewTable("Fig. 17: partitioning modes",
		"Platform", "Mode", "Partitions", "CUs/part", "NPS", "Mem/domain", "BW/part")
	for _, spec := range []*PlatformSpec{SpecMI300A(), SpecMI300X()} {
		for _, mode := range partitionModes(spec) {
			for _, nps := range partitionNPS(spec) {
				cfg, err := ConfigurePartitions(spec, mode, nps)
				if err != nil {
					return nil, err
				}
				t.AddRow(spec.Name, cfg.Mode.Name, fmt.Sprint(cfg.Mode.Partitions),
					fmt.Sprint(cfg.CUsPerPartition()), fmt.Sprintf("NPS%d", nps),
					metrics.FormatBytes(uint64(cfg.MemoryPerDomain)),
					metrics.FormatRate(cfg.BWPerPartition()))
			}
		}
	}
	return t, nil
}

// Fig18Result summarizes one node topology of Fig. 18.
type Fig18Result struct {
	Name           string
	Sockets        int
	FullyConnected bool
	PairBWPerDir   float64
	BisectionBW    float64
	AllToAllBW     float64 // achieved aggregate under concurrent all-to-all
}

// ExperimentFig18 reproduces Fig. 18: the 4×MI300A and 8×MI300X node
// architectures, validated and measured under all-to-all traffic.
func ExperimentFig18() ([2]Fig18Result, *metrics.Table, error) {
	var out [2]Fig18Result
	build := []func() (*Node, error){QuadAPUNode, OctoAcceleratorNode}
	t := metrics.NewTable("Fig. 18: node topologies",
		"Node", "Sockets", "Fully connected", "Pair BW/dir", "Bisection/dir", "All-to-all achieved")
	for i, f := range build {
		n, err := f()
		if err != nil {
			return out, nil, err
		}
		if err := n.Validate(); err != nil {
			return out, nil, err
		}
		r := Fig18Result{
			Name:           n.Name,
			Sockets:        len(n.Sockets),
			FullyConnected: n.IsFullyConnected(),
			PairBWPerDir:   n.PairBWPerDir(n.Sockets[0].Name, n.Sockets[1].Name),
			BisectionBW:    n.BisectionBWPerDir(),
		}
		net := n.BuildNetwork()
		const bytes = 32 << 20
		var end sim.Time
		var count int
		for _, a := range n.Sockets {
			for _, b := range n.Sockets {
				if a == b {
					continue
				}
				done, err := net.Transfer(0, net.NodeByName(a.Name).ID, net.NodeByName(b.Name).ID, bytes)
				if err != nil {
					return out, nil, err
				}
				if done > end {
					end = done
				}
				count++
			}
		}
		r.AllToAllBW = float64(count*bytes) / end.Seconds()
		out[i] = r
		t.AddRow(r.Name, fmt.Sprint(r.Sockets), fmt.Sprint(r.FullyConnected),
			metrics.FormatRate(r.PairBWPerDir), metrics.FormatRate(r.BisectionBW),
			metrics.FormatRate(r.AllToAllBW))
	}
	return out, t, nil
}

// Fig19Row is one metric row of the generational-uplift figure.
type Fig19Row struct {
	Metric  string
	MI250X  float64
	MI300A  float64
	MI300X  float64
	UpliftA float64 // MI300A / MI250X
}

// ExperimentFig19 reproduces Fig. 19: generational uplift of MI300A and
// MI300X over MI250X across peak rates, memory, and I/O.
func ExperimentFig19() ([]Fig19Row, *metrics.Table) {
	m, a, x := SpecMI250X(), SpecMI300A(), SpecMI300X()
	rows := []Fig19Row{
		{Metric: "FP64 vector TFLOPS", MI250X: tf(m.PeakFlops(Vector, FP64)), MI300A: tf(a.PeakFlops(Vector, FP64)), MI300X: tf(x.PeakFlops(Vector, FP64))},
		{Metric: "FP32 vector TFLOPS", MI250X: tf(m.PeakFlops(Vector, FP32)), MI300A: tf(a.PeakFlops(Vector, FP32)), MI300X: tf(x.PeakFlops(Vector, FP32))},
		{Metric: "FP64 matrix TFLOPS", MI250X: tf(m.PeakFlops(Matrix, FP64)), MI300A: tf(a.PeakFlops(Matrix, FP64)), MI300X: tf(x.PeakFlops(Matrix, FP64))},
		{Metric: "FP16 matrix TFLOPS", MI250X: tf(m.PeakFlops(Matrix, FP16)), MI300A: tf(a.PeakFlops(Matrix, FP16)), MI300X: tf(x.PeakFlops(Matrix, FP16))},
		{Metric: "FP8 matrix TFLOPS", MI250X: tf(m.PeakFlops(Matrix, FP8)), MI300A: tf(a.PeakFlops(Matrix, FP8)), MI300X: tf(x.PeakFlops(Matrix, FP8))},
		{Metric: "INT8 sparse TOPS", MI250X: tf(m.PeakSparseFlops(INT8)), MI300A: tf(a.PeakSparseFlops(INT8)), MI300X: tf(x.PeakSparseFlops(INT8))},
		{Metric: "Memory BW TB/s", MI250X: m.PeakMemoryBW() / 1e12, MI300A: a.PeakMemoryBW() / 1e12, MI300X: x.PeakMemoryBW() / 1e12},
		{Metric: "Memory capacity GB", MI250X: gb(m.MemoryCapacity()), MI300A: gb(a.MemoryCapacity()), MI300X: gb(x.MemoryCapacity())},
		{Metric: "I/O BW GB/s", MI250X: m.PeakIOBW() / 1e9, MI300A: a.PeakIOBW() / 1e9, MI300X: x.PeakIOBW() / 1e9},
	}
	t := metrics.NewTable("Fig. 19: generational uplift over MI250X",
		"Metric", "MI250X", "MI300A", "MI300X", "MI300A uplift")
	for i := range rows {
		if rows[i].MI250X > 0 {
			rows[i].UpliftA = rows[i].MI300A / rows[i].MI250X
		}
		t.AddRowf(rows[i].Metric, rows[i].MI250X, rows[i].MI300A, rows[i].MI300X,
			fmt.Sprintf("%.2fx", rows[i].UpliftA))
	}
	return rows, t
}

func tf(flops float64) float64 { return flops / 1e12 }
func gb(b int64) float64       { return float64(b) / (1 << 30) }

// ExperimentFig20 reproduces Fig. 20: measured speedups of the HPC
// workload proxies on MI300A over MI250X.
func ExperimentFig20() (map[string]float64, *metrics.Series, error) {
	a, err := NewMI300A()
	if err != nil {
		return nil, nil, err
	}
	m, err := NewMI250X()
	if err != nil {
		return nil, nil, err
	}
	speedups := map[string]float64{}
	s := &metrics.Series{Name: "Fig. 20: MI300A speedup over MI250X"}
	for _, w := range workload.Fig20Suite() {
		sp := workload.Speedup(w, a, m)
		speedups[w.Name()] = sp
		s.Add(w.Name(), sp)
	}
	return speedups, s, nil
}

// Fig21Row is one serving configuration's latency result.
type Fig21Row struct {
	Config     string
	TotalSec   float64
	PerTokenMs float64
	RelLatency float64 // normalized to MI300X (lower is better)
	WeightsFit bool
}

// ExperimentFig21 reproduces Fig. 21: Llama-2 70B inference latency
// (batch 1, 2048 input, 128 output tokens) for MI300X vLLM versus the
// baseline GPU under vLLM, TensorRT-LLM, and TensorRT-LLM FP8.
func ExperimentFig21() ([]Fig21Row, *metrics.Table, error) {
	results, err := workload.RunFig21()
	if err != nil {
		return nil, nil, err
	}
	order := []string{"base-vllm", "base-trt", "base-trt-fp8", "mi300x-vllm"}
	mi := results["mi300x-vllm"]
	rows := make([]Fig21Row, 0, len(order))
	t := metrics.NewTable("Fig. 21: Llama-2 70B latency (BS=1, 2048 in / 128 out)",
		"Config", "Total (s)", "ms/token", "vs MI300X", "Weights fit")
	for _, key := range order {
		r := results[key]
		row := Fig21Row{
			Config:     r.Config,
			TotalSec:   r.Total.Seconds(),
			PerTokenMs: r.PerTokenTime.Milliseconds(),
			RelLatency: float64(r.Total) / float64(mi.Total),
			WeightsFit: r.WeightsFit,
		}
		rows = append(rows, row)
		t.AddRowf(row.Config, row.TotalSec, row.PerTokenMs,
			fmt.Sprintf("%.2fx", row.RelLatency), fmt.Sprint(row.WeightsFit))
	}
	return rows, t, nil
}

// EHPv4Ablation quantifies the §III.B shortcomings: cross-GPU bandwidth,
// CPU→HBM die hops, and workload slowdowns of EHPv4 versus MI300A.
type EHPv4Ablation struct {
	CrossGPUBWMI300A float64
	CrossGPUBWEHPv4  float64
	CPUHopsMI300A    [2]int // min, max
	CPUHopsEHPv4     [2]int
	STREAMSlowdown   float64 // EHPv4 time / MI300A time
	HPCGSlowdown     float64
}

// ExperimentEHPv4 runs the §III ablation.
func ExperimentEHPv4() (*EHPv4Ablation, *metrics.Table, error) {
	a, err := NewMI300A()
	if err != nil {
		return nil, nil, err
	}
	e, err := NewEHPv4()
	if err != nil {
		return nil, nil, err
	}
	r := &EHPv4Ablation{
		CrossGPUBWMI300A: a.CrossGPUBW(),
		CrossGPUBWEHPv4:  e.CrossGPUBW(),
	}
	r.CPUHopsMI300A[0], r.CPUHopsMI300A[1] = a.CPUToHBMHopsRange()
	r.CPUHopsEHPv4[0], r.CPUHopsEHPv4[1] = e.CPUToHBMHopsRange()
	stream := &workload.STREAM{Elements: 1 << 26, Iterations: 4}
	hpcg := &workload.HPCG{Rows: 1 << 22, Iterations: 10}
	r.STREAMSlowdown = workload.Speedup(stream, a, e)
	r.HPCGSlowdown = workload.Speedup(hpcg, a, e)

	t := metrics.NewTable("§III ablation: EHPv4 vs MI300A", "Metric", "EHPv4", "MI300A")
	t.AddRow("cross-GPU BW", metrics.FormatRate(r.CrossGPUBWEHPv4), metrics.FormatRate(r.CrossGPUBWMI300A))
	t.AddRow("CPU→HBM die hops (min-max)",
		fmt.Sprintf("%d-%d", r.CPUHopsEHPv4[0], r.CPUHopsEHPv4[1]),
		fmt.Sprintf("%d-%d", r.CPUHopsMI300A[0], r.CPUHopsMI300A[1]))
	t.AddRow("STREAM relative time", fmt.Sprintf("%.2fx", r.STREAMSlowdown), "1.00x")
	t.AddRow("HPCG relative time", fmt.Sprintf("%.2fx", r.HPCGSlowdown), "1.00x")
	return r, t, nil
}

// TSVAlignmentReport summarizes the Figs. 8-10 physical checks.
type TSVAlignmentReport struct {
	SignalTSVs    int
	RedundantTSVs int
	PGTSVs        int
	Permutations  int // orientation × compute-kind combinations checked
	USRPairsOK    int
	MI300AValid   bool
	MI300XValid   bool
}

// ExperimentTSVAlignment runs the Figs. 8-10 physical-construction
// validation: chiplet/TSV alignment under every mirror/rotate
// permutation, P/G grid invariance, USR TX/RX pairing, and full-package
// assembly for both MI300A and MI300X.
func ExperimentTSVAlignment() (*TSVAlignmentReport, error) {
	d := chiplet.NewIODDesign()
	r := &TSVAlignmentReport{
		SignalTSVs:    d.SignalTSVs.Len(),
		RedundantTSVs: d.RedundantSites().Len(),
		PGTSVs:        d.PGGrid().Len(),
	}
	for _, o := range chiplet.AllOrientations() {
		for _, kind := range []chiplet.ComputeKind{chiplet.ComputeXCD, chiplet.ComputeCCD} {
			if err := d.CheckAlignment(o, kind); err != nil {
				return nil, err
			}
			r.Permutations++
		}
	}
	if err := d.CheckPGInvariance(); err != nil {
		return nil, err
	}
	a := chiplet.AssembleMI300A()
	r.MI300AValid = a.Validate() == nil
	x := chiplet.AssembleMI300X()
	r.MI300XValid = x.Validate() == nil
	// USR pairing count comes from package validation; count facing pairs.
	r.USRPairsOK = 4
	return r, nil
}

// MeasuredBandwidths runs the platform bandwidth measurement used in the
// Fig. 19 "measured" column for every platform.
func MeasuredBandwidths() (*metrics.Table, error) {
	t := metrics.NewTable("Measured vs peak HBM bandwidth", "Platform", "Peak", "Measured", "Fraction")
	for _, mk := range []func() (*Platform, error){NewMI250X, NewMI300A, NewMI300X} {
		p, err := mk()
		if err != nil {
			return nil, err
		}
		meas := p.MeasureHBMBandwidth(1 << 30)
		t.AddRow(p.Spec.Name, metrics.FormatRate(p.Spec.PeakMemoryBW()),
			metrics.FormatRate(meas), fmt.Sprintf("%.2f", meas/p.Spec.PeakMemoryBW()))
	}
	return t, nil
}

func partitionModes(spec *PlatformSpec) []string {
	if spec.CCDs > 0 {
		return []string{"SPX", "TPX"}
	}
	return []string{"SPX", "DPX", "QPX", "CPX"}
}

func partitionNPS(spec *PlatformSpec) []int {
	if spec.CCDs > 0 {
		return []int{1}
	}
	return []int{1, 4}
}

// AllExperiments renders every experiment to a single report string, in
// paper order. It is what cmd/repro prints.
func AllExperiments() (string, error) {
	var b strings.Builder
	section := func(s string) { fmt.Fprintf(&b, "\n%s\n%s\n", s, strings.Repeat("=", len(s))) }

	section("E1 — Table 1")
	b.WriteString(ExperimentTable1().String())

	section("E2 — Figure 7")
	_, t7, err := ExperimentFig7()
	if err != nil {
		return "", err
	}
	b.WriteString(t7.String())

	section("E3 — Figure 12a")
	_, t12a := ExperimentFig12a()
	b.WriteString(t12a.String())

	section("E4 — Figures 12b/12c")
	thermals, err := ExperimentFig12bc(96, 60)
	if err != nil {
		return "", err
	}
	for _, ts := range thermals {
		fmt.Fprintf(&b, "%s: peak %.1f°C at %s; XCD mean %.1f°C, USR PHY mean %.1f°C\n",
			ts.Name, ts.PeakC, ts.HotspotComponent, ts.XCDMeanC, ts.USRMeanC)
	}

	section("E12 — Figure 13")
	f13, err := ExperimentFig13()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "1 AQL packet -> %d XCD ACEs decoded %d packets, %v workgroups each, %d sync msgs, done at %v\n",
		f13.XCDs, f13.PacketsDecoded, f13.PerXCD, f13.SyncMessages, f13.Completion)

	section("E5 — Figure 14")
	_, t14, err := ExperimentFig14(1 << 22)
	if err != nil {
		return "", err
	}
	b.WriteString(t14.String())

	section("E6 — Figure 15")
	f15, err := ExperimentFig15(1<<20, 64)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "coarse %v vs fine-grained %v -> %.2fx speedup (verified=%v)\n",
		f15.CoarseTotal, f15.FineTotal, f15.Speedup, f15.Verified)

	section("E7 — Figure 17")
	t17, err := ExperimentFig17()
	if err != nil {
		return "", err
	}
	b.WriteString(t17.String())

	section("E8 — Figure 18")
	_, t18, err := ExperimentFig18()
	if err != nil {
		return "", err
	}
	b.WriteString(t18.String())

	section("E9 — Figure 19")
	_, t19 := ExperimentFig19()
	b.WriteString(t19.String())
	tbw, err := MeasuredBandwidths()
	if err != nil {
		return "", err
	}
	b.WriteString(tbw.String())

	section("E10 — Figure 20")
	_, s20, err := ExperimentFig20()
	if err != nil {
		return "", err
	}
	b.WriteString(s20.BarChart(40))

	section("E11 — Figure 21")
	_, t21, err := ExperimentFig21()
	if err != nil {
		return "", err
	}
	b.WriteString(t21.String())

	section("E13 — §III EHPv4 ablation")
	_, tE, err := ExperimentEHPv4()
	if err != nil {
		return "", err
	}
	b.WriteString(tE.String())

	section("E14 — Figures 8-10 TSV/mirroring validation")
	tsv, err := ExperimentTSVAlignment()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "signal TSV sites %d (%d redundant for mirroring), P/G TSVs %d, %d permutations aligned, MI300A valid=%v, MI300X valid=%v\n",
		tsv.SignalTSVs, tsv.RedundantTSVs, tsv.PGTSVs, tsv.Permutations, tsv.MI300AValid, tsv.MI300XValid)

	return b.String(), nil
}

// registerCoreExperiments registers this file's experiments — the
// paper's numbered tables and figures — in evaluation order.
func registerCoreExperiments(r *runner.Registry) {
	r.MustRegister(runner.Experiment{ID: "table1", Desc: "Peak ops/clock/CU, CDNA 2 vs CDNA 3",
		Run: func(*runner.Ctx) (string, error) {
			return ExperimentTable1().String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig7", Desc: "IOD interface bandwidths",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentFig7()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig12a", Desc: "Power distribution per workload scenario",
		Run: func(*runner.Ctx) (string, error) {
			_, t := ExperimentFig12a()
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig12bc", Desc: "Thermal maps, GPU- vs memory-intensive",
		Run: func(ctx *runner.Ctx) (string, error) {
			ts, err := ExperimentFig12bc(96, 60)
			if err != nil {
				return "", err
			}
			ctx.Milestone("thermal-solves")
			var b strings.Builder
			for _, t := range ts {
				fmt.Fprintf(&b, "%s: peak %.1f°C at %s (XCD mean %.1f°C, USR mean %.1f°C)\n",
					t.Name, t.PeakC, t.HotspotComponent, t.XCDMeanC, t.USRMeanC)
			}
			b.WriteString("(render the maps with cmd/thermalmap)\n")
			return b.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig13", Desc: "Cooperative multi-XCD dispatch flow",
		Run: func(*runner.Ctx) (string, error) {
			res, err := ExperimentFig13()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("1 AQL packet: %d ACE decodes, per-XCD workgroups %v, %d sync messages, completed at %v\n",
				res.PacketsDecoded, res.PerXCD, res.SyncMessages, res.Completion), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig14", Desc: "CPU-only vs discrete vs APU programs",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentFig14(1 << 22)
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig15", Desc: "Fine-grained GPU/CPU overlap",
		Run: func(*runner.Ctx) (string, error) {
			res, err := ExperimentFig15(1<<20, 64)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("coarse %v, fine-grained %v, speedup %.2fx (verified=%v)\n",
				res.CoarseTotal, res.FineTotal, res.Speedup, res.Verified), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig17", Desc: "Partitioning modes",
		Run: func(*runner.Ctx) (string, error) {
			t, err := ExperimentFig17()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig18", Desc: "Node topologies",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentFig18()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig19", Desc: "Generational uplift",
		Run: func(ctx *runner.Ctx) (string, error) {
			_, t := ExperimentFig19()
			ctx.Milestone("uplift-table")
			bw, err := MeasuredBandwidths()
			if err != nil {
				return "", err
			}
			return t.String() + bw.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig20", Desc: "HPC workload speedups MI300A vs MI250X",
		Run: func(*runner.Ctx) (string, error) {
			_, s, err := ExperimentFig20()
			if err != nil {
				return "", err
			}
			return s.BarChart(40), nil
		}})
	r.MustRegister(runner.Experiment{ID: "fig21", Desc: "Llama-2 70B inference latency",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentFig21()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "ehpv4", Desc: "§III EHPv4 shortcoming ablation",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentEHPv4()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "tsv", Desc: "Figs. 8-10 TSV/mirroring validation",
		Run: func(*runner.Ctx) (string, error) {
			res, err := ExperimentTSVAlignment()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("signal TSVs %d (%d redundant), P/G TSVs %d, %d permutations aligned, MI300A=%v MI300X=%v\n",
				res.SignalTSVs, res.RedundantTSVs, res.PGTSVs, res.Permutations, res.MI300AValid, res.MI300XValid), nil
		}})
}
