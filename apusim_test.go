package apusim

import (
	"strings"
	"testing"
)

func TestExperimentTable1Shape(t *testing.T) {
	tbl := ExperimentTable1()
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (CDNA 2, CDNA 3)", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"CDNA 2", "CDNA 3", "2048", "4096", "8192", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentFig7Ordering(t *testing.T) {
	rows, _, err := ExperimentFig7()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.MeasuredBW <= 0 {
			t.Errorf("%s measured 0 bandwidth", r.Interface)
		}
		// Measured saturation should be within 25% of the model value.
		frac := r.MeasuredBW / r.ModelBW
		if frac < 0.75 || frac > 1.25 {
			t.Errorf("%s: measured %.2f of model", r.Interface, frac)
		}
		byName[r.Interface] = r.MeasuredBW
	}
	// The interface hierarchy of Fig. 7: 3D bond > USR > HBM stack > x16.
	if !(byName["XCD 3D bond"] > byName["USR horizontal (A-B)"] &&
		byName["USR horizontal (A-B)"] > byName["HBM stack"] &&
		byName["HBM stack"] > byName["x16 IFOP/PCIe"]) {
		t.Errorf("interface bandwidth ordering violated: %v", byName)
	}
}

func TestExperimentFig12aShift(t *testing.T) {
	scenarios, _ := ExperimentFig12a()
	c, m := scenarios[0], scenarios[1]
	if c.Fractions["XCD"] < 0.5 {
		t.Errorf("compute scenario XCD share = %.2f, want majority", c.Fractions["XCD"])
	}
	memSide := m.Fractions["HBM"] + m.Fractions["Fabric"] + m.Fractions["USR"]
	cMemSide := c.Fractions["HBM"] + c.Fractions["Fabric"] + c.Fractions["USR"]
	if memSide <= cMemSide {
		t.Error("memory scenario did not shift share to memory/fabric/USR")
	}
}

func TestExperimentFig12bcHotspots(t *testing.T) {
	ts, err := ExperimentFig12bc(64, 40)
	if err != nil {
		t.Fatal(err)
	}
	gpuSc, memSc := ts[0], ts[1]
	if !strings.Contains(gpuSc.HotspotComponent, "XCD") {
		t.Errorf("GPU-intensive hotspot on %q, want an XCD (Fig. 12b)", gpuSc.HotspotComponent)
	}
	if memSc.XCDMeanC >= gpuSc.XCDMeanC {
		t.Error("XCDs did not cool in memory-intensive scenario")
	}
	if memSc.USRMeanC <= gpuSc.USRMeanC {
		t.Error("USR PHYs did not heat in memory-intensive scenario (Fig. 12c)")
	}
}

func TestExperimentFig13Cooperation(t *testing.T) {
	r, err := ExperimentFig13()
	if err != nil {
		t.Fatal(err)
	}
	if r.XCDs != 6 {
		t.Fatalf("XCDs = %d", r.XCDs)
	}
	// Every ACE reads the packet (Fig. 13 ①)...
	if r.PacketsDecoded != 6 {
		t.Errorf("packets decoded = %d, want 6 (one ACE per XCD)", r.PacketsDecoded)
	}
	// ...each launches an equal subset (② — divisible grid here)...
	var total uint64
	for _, n := range r.PerXCD {
		if n != r.PerXCD[0] {
			t.Errorf("uneven workgroup split: %v", r.PerXCD)
			break
		}
		total += n
	}
	if total != uint64(r.Workgroups) {
		t.Errorf("workgroups executed = %d, want %d", total, r.Workgroups)
	}
	// ...and non-nominated XCDs sync to the nominated one (③).
	if r.SyncMessages != 5 {
		t.Errorf("sync messages = %d, want 5", r.SyncMessages)
	}
}

func TestExperimentFig14APUAdvantage(t *testing.T) {
	r, _, err := ExperimentFig14(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range []*ProgramResult{r.CPUOnly, r.Discrete, r.APU} {
		if !pr.Verified {
			t.Errorf("%s did not verify", pr.Program)
		}
	}
	if r.APU.Total >= r.Discrete.Total {
		t.Error("APU program not faster than discrete (Fig. 14)")
	}
	if r.APU.CopyBytes != 0 || r.Discrete.CopyBytes == 0 {
		t.Error("copy accounting wrong")
	}
	// The discrete program's copies are pure overhead relative to the APU
	// version of the same steps: kernel+init times are comparable, the
	// copies are the difference (Fig. 14b vs 14c).
	copies := r.Discrete.StepByName("hipMemcpy H2D").Duration() +
		r.Discrete.StepByName("hipMemcpy D2H").Duration()
	if copies <= 0 {
		t.Error("discrete program has no copy cost")
	}
}

func TestExperimentFig15Speedup(t *testing.T) {
	r, err := ExperimentFig15(1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified || r.Speedup <= 1 {
		t.Errorf("overlap: verified=%v speedup=%.2f", r.Verified, r.Speedup)
	}
}

func TestExperimentFig17AllModes(t *testing.T) {
	tbl, err := ExperimentFig17()
	if err != nil {
		t.Fatal(err)
	}
	// MI300A: 2 modes × 1 NPS; MI300X: 4 modes × 2 NPS = 10 rows.
	if tbl.NumRows() != 10 {
		t.Errorf("partition rows = %d, want 10:\n%s", tbl.NumRows(), tbl)
	}
}

func TestExperimentFig18Topologies(t *testing.T) {
	rs, _, err := ExperimentFig18()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.FullyConnected {
			t.Errorf("%s not fully connected", r.Name)
		}
		if r.AllToAllBW <= 0 {
			t.Errorf("%s all-to-all bandwidth missing", r.Name)
		}
	}
	if rs[0].PairBWPerDir != 2*rs[1].PairBWPerDir {
		t.Errorf("quad node pair BW (%g) should be 2x octo (%g): two links vs one",
			rs[0].PairBWPerDir, rs[1].PairBWPerDir)
	}
}

func TestExperimentFig19Uplifts(t *testing.T) {
	rows, _ := ExperimentFig19()
	byMetric := map[string]Fig19Row{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	bw := byMetric["Memory BW TB/s"]
	if bw.UpliftA < 1.55 || bw.UpliftA > 1.75 {
		t.Errorf("memory BW uplift = %.2f, want ~1.7 (\"improved by 70%%\")", bw.UpliftA)
	}
	io := byMetric["I/O BW GB/s"]
	if io.UpliftA < 1.9 || io.UpliftA > 2.1 {
		t.Errorf("I/O uplift = %.2f, want ~2 (\"doubled\")", io.UpliftA)
	}
	capRow := byMetric["Memory capacity GB"]
	if capRow.MI300X/capRow.MI250X != 1.5 {
		t.Errorf("MI300X capacity uplift = %.2f, want 1.5 (\"50%% greater\")", capRow.MI300X/capRow.MI250X)
	}
	// FP8 exists only on MI300.
	fp8 := byMetric["FP8 matrix TFLOPS"]
	if fp8.MI250X != 0 || fp8.MI300A <= 0 {
		t.Error("FP8 support pattern wrong")
	}
}

func TestExperimentFig20Shape(t *testing.T) {
	speedups, series, err := ExperimentFig20()
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Values) != 4 {
		t.Fatalf("series has %d workloads", len(series.Values))
	}
	for name, s := range speedups {
		if s <= 1 {
			t.Errorf("%s speedup %.2f <= 1", name, s)
		}
	}
	if of := speedups["OpenFOAM"]; of < 2.2 || of > 3.3 {
		t.Errorf("OpenFOAM = %.2f, want ~2.75", of)
	}
}

func TestExperimentFig21Shape(t *testing.T) {
	rows, _, err := ExperimentFig21()
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string]float64{}
	for _, r := range rows {
		rel[r.Config] = r.RelLatency
	}
	if rel["Baseline vLLM FP16"] < 2.0 {
		t.Errorf("baseline vLLM rel latency = %.2f, want > 2", rel["Baseline vLLM FP16"])
	}
	if v := rel["Baseline TRT-LLM FP16"]; v < 1.2 || v > 1.5 {
		t.Errorf("baseline TRT rel latency = %.2f, want ~1.3", v)
	}
	if v := rel["Baseline TRT-LLM FP8"]; v < 1.0 {
		t.Errorf("FP8 baseline rel latency = %.2f, want >= 1 (MI300X stays ahead)", v)
	}
	if rel["MI300X vLLM FP16"] != 1.0 {
		t.Errorf("MI300X rel latency = %.2f, want 1.0 (reference)", rel["MI300X vLLM FP16"])
	}
}

func TestExperimentEHPv4Shape(t *testing.T) {
	r, _, err := ExperimentEHPv4()
	if err != nil {
		t.Fatal(err)
	}
	if r.CrossGPUBWMI300A <= r.CrossGPUBWEHPv4 {
		t.Error("MI300A cross-GPU BW should exceed EHPv4 (Fig. 4 ①)")
	}
	if r.CPUHopsEHPv4[0] < 2 {
		t.Errorf("EHPv4 min CPU->HBM hops = %d, want 2 (Fig. 4 ③)", r.CPUHopsEHPv4[0])
	}
	if r.CPUHopsMI300A[0] != 0 {
		t.Errorf("MI300A min CPU->HBM hops = %d, want 0", r.CPUHopsMI300A[0])
	}
	if r.STREAMSlowdown <= 1 || r.HPCGSlowdown <= 1 {
		t.Errorf("EHPv4 should be slower: STREAM %.2f HPCG %.2f", r.STREAMSlowdown, r.HPCGSlowdown)
	}
}

func TestExperimentTSVAlignment(t *testing.T) {
	r, err := ExperimentTSVAlignment()
	if err != nil {
		t.Fatal(err)
	}
	if r.RedundantTSVs == 0 {
		t.Error("no redundant TSVs (Fig. 9 red circles)")
	}
	if r.Permutations != 8 {
		t.Errorf("permutations = %d, want 8", r.Permutations)
	}
	if !r.MI300AValid || !r.MI300XValid {
		t.Error("package assembly invalid")
	}
}

func TestFacadeConstructors(t *testing.T) {
	for _, mk := range []func() (*Platform, error){
		NewMI300A, NewMI300X, NewMI250X, NewEHPv4, NewBaselineGPU,
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if p.Spec.Name == "" {
			t.Error("platform unnamed")
		}
	}
}

func TestAllExperimentsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in short mode")
	}
	report, err := AllExperiments()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "Figure 7", "Figure 12a", "Figure 13", "Figure 14",
		"Figure 15", "Figure 17", "Figure 18", "Figure 19", "Figure 20",
		"Figure 21", "EHPv4", "TSV",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}
