package apusim

import (
	"sync"

	"repro/internal/runner"
)

// This file assembles the experiment registry. Every table, figure, and
// ablation in the evaluation is registered exactly once, by the file
// that defines it; cmd/repro, cmd/apubench, and the benchmark suite all
// enumerate this registry instead of keeping private experiment tables.

var (
	registryOnce sync.Once
	registry     *runner.Registry
)

// Experiments returns the shared experiment registry, built on first
// use. Callers that want to add ad-hoc entries (fault injection, demo
// experiments) should Clone() it rather than register here.
func Experiments() *runner.Registry {
	registryOnce.Do(func() {
		registry = runner.NewRegistry()
		registerCoreExperiments(registry)  // experiments.go: Tables 1-x, Figs. 7-21
		registerExtraExperiments(registry) // experiments_extra.go: design ablations
		registerQoSExperiments(registry)   // experiments_qos.go: scaling/QoS/efficiency
		registerRASExperiments(registry)   // experiments_ras.go: fault injection
		registerSpanExperiments(registry)  // experiments_spans.go: causal span tracing
	})
	return registry
}
