// Nodetopology builds the Fig. 18(a) 4×MI300A node, verifies its
// fully-connected coherent Infinity Fabric, and simulates a ring
// all-reduce of a large buffer across the four APUs — the communication
// pattern under distributed HPC and ML training — reporting step-by-step
// timing and achieved bandwidth.
package main

import (
	"fmt"
	"log"

	apusim "repro"
	"repro/internal/sim"
)

func main() {
	node, err := apusim.QuadAPUNode()
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %s: %d sockets, fully connected: %v\n",
		node.Name, len(node.Sockets), node.IsFullyConnected())
	fmt.Printf("per-pair IF bandwidth: %.0f GB/s per direction\n",
		node.PairBWPerDir("APU0", "APU1")/1e9)
	fmt.Printf("bisection: %.0f GB/s per direction\n\n", node.BisectionBWPerDir()/1e9)

	// Every APU has direct load-store access to all HBM across the node
	// (flat address space), so an all-reduce is just fabric transfers.
	net := node.BuildNetwork()
	ids := make([]int, 4)
	_ = ids

	const bufBytes = 1 << 30 // 1 GiB gradient buffer
	p := 4
	chunk := int64(bufBytes / p)

	// Ring all-reduce: 2(p-1) steps, each socket sends one chunk to its
	// ring neighbor per step.
	var t sim.Time
	fmt.Printf("ring all-reduce of %d MiB across %d APUs (chunk %d MiB):\n",
		bufBytes>>20, p, chunk>>20)
	for step := 0; step < 2*(p-1); step++ {
		var stepEnd sim.Time
		for s := 0; s < p; s++ {
			src := net.NodeByName(fmt.Sprintf("APU%d", s))
			dst := net.NodeByName(fmt.Sprintf("APU%d", (s+1)%p))
			done, err := net.Transfer(t, src.ID, dst.ID, chunk)
			if err != nil {
				log.Fatal(err)
			}
			if done > stepEnd {
				stepEnd = done
			}
		}
		phase := "reduce-scatter"
		if step >= p-1 {
			phase = "all-gather"
		}
		fmt.Printf("  step %d (%s): done at %v\n", step, phase, stepEnd)
		t = stepEnd
	}
	algoBW := float64(bufBytes) * 2 * float64(p-1) / float64(p) / t.Seconds()
	fmt.Printf("all-reduce complete at %v — bus bandwidth %.0f GB/s\n", t, algoBW/1e9)

	// Compare with the naive path through host staging at PCIe speeds:
	// what this traffic would cost without the coherent IF mesh.
	pcie := 64e9 * 0.9
	naive := sim.FromSeconds(float64(bufBytes) * 2 * float64(p-1) / pcie)
	fmt.Printf("same traffic over a single PCIe-style host link: %v (%.1fx slower)\n",
		naive, float64(naive)/float64(t))
}
