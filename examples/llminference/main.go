// Llminference reproduces the Fig. 21 serving scenario — Llama-2 70B at
// batch size 1 with 2048 input and 128 output tokens — and then sweeps
// output length to show where the bandwidth-bound decode phase dominates
// and why MI300X's 192 GB / 5.3 TB/s memory system is the right shape for
// LLMs (§VII).
package main

import (
	"fmt"
	"log"

	apusim "repro"
	"repro/internal/workload"
)

func main() {
	fmt.Println("=== Fig. 21: Llama-2 70B, BS=1, 2048 in / 128 out ===")
	rows, table, err := apusim.ExperimentFig21()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table.String())
	for _, r := range rows {
		if !r.WeightsFit {
			fmt.Printf("note: %s cannot hold the FP16 weights in 80 GB — the capacity argument of §VII\n", r.Config)
		}
	}

	// Sweep output length on MI300X: prompt cost amortizes away and the
	// per-token bandwidth wall takes over.
	fmt.Println("\n=== MI300X vLLM FP16: output-length sweep ===")
	mi300x, err := apusim.NewMI300X()
	if err != nil {
		log.Fatal(err)
	}
	model := workload.Llama2_70B()
	cfg := workload.Fig21Configs()["mi300x-vllm"]
	fmt.Printf("%8s %12s %12s %10s\n", "out-toks", "total", "decode", "tok/s")
	for _, out := range []int{16, 64, 128, 512, 2048} {
		req := workload.InferenceRequest{Batch: 1, InputTokens: 2048, OutputTokens: out}
		r, err := workload.RunInference(mi300x, model, cfg, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12v %12v %10.1f\n", out, r.Total, r.DecodeTime, r.TokensPerSec)
	}

	// The same request on MI250X (FP16, vLLM-class stack) for the
	// generational view.
	fmt.Println("\n=== Generational: same stack on MI250X ===")
	mi250x, err := apusim.NewMI250X()
	if err != nil {
		log.Fatal(err)
	}
	old := cfg
	old.Label = "MI250X vLLM FP16"
	r, err := workload.RunInference(mi250x, model, old, workload.Fig21Request())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: total %v (%.2f ms/token, weights fit: %v)\n",
		r.Config, r.Total, r.PerTokenTime.Milliseconds(), r.WeightsFit)
}
