// Kernellib tours the built-in kernel library on an MI300A: SpMV on a CSR
// matrix, matrix transpose, a two-level reduction and prefix scan — each
// computing real results in the simulated unified memory — and closes
// with the platform's roofline, showing where each kernel lands relative
// to the ridge point.
package main

import (
	"fmt"
	"log"

	apusim "repro"
	"repro/internal/kernels"
)

func main() {
	apu, err := apusim.NewMI300A()
	if err != nil {
		log.Fatal(err)
	}
	s := apu.DeviceMem
	var t apusim.Time

	// --- SpMV on a 1M-row stencil matrix ---
	const rows = 1 << 20
	m, err := kernels.BuildCSRStencil(s, rows)
	if err != nil {
		log.Fatal(err)
	}
	x, _ := s.Alloc(rows*8, 4096)
	y, _ := s.Alloc(rows*8, 4096)
	for i := int64(0); i < rows; i++ {
		s.WriteFloat64(x+i*8, 1)
	}
	t, err = apu.GPU.Dispatch(t, kernels.SpMV(m, x, y), rows, 256, 0)
	if err != nil {
		log.Fatal(err)
	}
	// A·1 for the [-1,2,-1] stencil: 0 except 1 at the boundaries.
	fmt.Printf("SpMV (%d rows):       done at %v, y[0]=%.0f y[mid]=%.0f\n",
		rows, t, s.ReadFloat64(y), s.ReadFloat64(y+rows/2*8))

	// --- Reduction over the SpMV result ---
	const wg = 256
	parts, _ := s.Alloc((rows/wg)*8, 4096)
	t, err = apu.GPU.Dispatch(t, kernels.ReductionSum(y, parts, rows), rows, wg, 0)
	if err != nil {
		log.Fatal(err)
	}
	sum := kernels.FinishReduction(s, parts, rows/wg)
	fmt.Printf("Reduce:              done at %v, sum(A·1)=%.0f (want 2: the two boundary rows)\n", t, sum)

	// --- Transpose a 512x512 matrix ---
	const n = 512
	a, _ := s.Alloc(n*n*8, 4096)
	b, _ := s.Alloc(n*n*8, 4096)
	for i := int64(0); i < n*n; i++ {
		s.WriteFloat64(a+i*8, float64(i))
	}
	t, err = apu.GPU.Dispatch(t, kernels.Transpose(a, b, n), n, 64, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Transpose (%dx%d):  done at %v, B[1][0]=%.0f (=A[0][1])\n",
		n, n, t, s.ReadFloat64(b+int64(1*n+0)*8))

	// --- Exclusive scan ---
	const sn = 1 << 18
	in, _ := s.Alloc(sn*8, 4096)
	out, _ := s.Alloc(sn*8, 4096)
	sparts, _ := s.Alloc((sn/wg)*8, 4096)
	for i := int64(0); i < sn; i++ {
		s.WriteFloat64(in+i*8, 1)
	}
	t, err = apu.GPU.Dispatch(t, kernels.ExclusiveScan(in, out, sparts, sn), sn, wg, 0)
	if err != nil {
		log.Fatal(err)
	}
	kernels.FinishScan(s, out, sparts, sn, wg)
	fmt.Printf("Scan (%d ones):   done at %v, scan[%d]=%.0f (= index)\n",
		sn, t, sn-1, s.ReadFloat64(out+int64(sn-1)*8))

	// --- Where these kernels sit on the roofline ---
	fmt.Printf("\nMI300A FP64 vector roofline: ridge at %.1f flops/byte\n",
		apusim.RidgePoint(apu, apusim.Vector, apusim.FP64))
	for _, k := range []struct {
		name string
		ai   float64
	}{
		{"SpMV", 6.0 / 52},
		{"Transpose", 0.5 / 16},
		{"Reduce", 1.0 / 8.1},
		{"N-body step", 20 * 65536 / 64.0},
	} {
		pts := apusim.RooflineSweep(apu, apusim.Vector, apusim.FP64, []float64{k.ai}, 1e9)
		fmt.Printf("  %-12s AI=%-8.3f -> %-9s (%s-bound)\n",
			k.name, k.ai, fmtFlops(pts[0].AttainableFlops), pts[0].Bound)
	}
}

func fmtFlops(f float64) string {
	switch {
	case f >= 1e12:
		return fmt.Sprintf("%.1f TF/s", f/1e12)
	default:
		return fmt.Sprintf("%.0f GF/s", f/1e9)
	}
}
