// Quickstart: build an MI300A platform with telemetry attached, allocate
// arrays in its unified HBM, dispatch a real kernel across all six XCDs
// through the AQL queue machinery, and print what the memory system,
// fabric, and sampled telemetry probes saw.
package main

import (
	"fmt"
	"log"

	apusim "repro"
)

func main() {
	// 1. Assemble the APU: 6 XCDs + 3 CCDs on 4 IODs, 128 GB HBM3 behind
	// a 256 MB Infinity Cache, all coherent in one package. The options
	// attach a telemetry recorder (every component registers its probes
	// during assembly) and an engine for sampling on; with no options New
	// is exactly apusim.NewMI300A.
	eng := apusim.NewEngine()
	rec := apusim.NewRecorder()
	apu, err := apusim.New(apusim.SpecMI300A(),
		apusim.WithEngine(eng),
		apusim.WithTelemetry(rec),
		apusim.WithSampleEvery(10*apusim.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s — %d CUs, %d cores, %.1f TB/s HBM, %d MB Infinity Cache\n",
		apu.Spec.Name, apu.Spec.TotalCUs(), apu.Spec.TotalCores(),
		apu.Spec.PeakMemoryBW()/1e12, apu.Spec.InfinityCacheBytes()>>20)

	// 2. Allocate two vectors directly in the unified memory. No
	// hipMalloc, no staging buffers: CPU and GPU share these pages.
	const n = 1 << 20
	x, err := apu.DeviceMem.Alloc(n*8, 4096)
	if err != nil {
		log.Fatal(err)
	}
	y, err := apu.DeviceMem.Alloc(n*8, 4096)
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		apu.DeviceMem.WriteFloat64(x+i*8, float64(i))
	}

	// 3. Define a kernel: daxpy with a functional body plus its resource
	// footprint for the timing model.
	k := &apusim.KernelSpec{
		Name:  "daxpy",
		Class: apusim.Vector, Dtype: apusim.FP64,
		FlopsPerItem: 2, BytesReadPerItem: 16, BytesWrittenPerItem: 8,
		Body: func(env *apusim.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := int64(wgID * wgSize)
			hi := lo + int64(wgSize)
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				v := env.Mem.ReadFloat64(x + i*8)
				env.Mem.WriteFloat64(y+i*8, 2.5*v+1.0)
			}
		},
	}

	// 4. Dispatch. One AQL packet; the ACE in every XCD picks up its
	// subset of the workgroups (the Fig. 13 cooperative flow).
	done, err := apu.GPU.Dispatch(0, k, n, 256, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s over %d elements completed at %v\n", k.Name, n, done)

	// 5. The CPU reads the results immediately — same physical memory.
	ok := true
	for i := int64(0); i < n; i += n / 8 {
		want := 2.5*float64(i) + 1.0
		if got := apu.DeviceMem.ReadFloat64(y + i*8); got != want {
			ok = false
			fmt.Printf("  y[%d] = %v, want %v\n", i, got, want)
		}
	}
	fmt.Printf("spot check passed: %v\n", ok)

	// 6. What the hardware models observed.
	for _, xcd := range apu.XCDs {
		st := xcd.Stats()
		fmt.Printf("  XCD%d: %d workgroups, %.1f Mflops, %d sync msgs\n",
			xcd.ID, st.Workgroups, st.Flops/1e6, st.SyncMessages)
	}
	ic := apu.InfCache.Stats()
	fmt.Printf("  Infinity Cache: %.1f%% hit rate (%d prefetches)\n", 100*ic.HitRate(), ic.Prefetches)
	fmt.Printf("  HBM bytes moved: %d MB; fabric energy: %.1f µJ\n",
		apu.HBM.BytesMoved()>>20, apu.Net.TotalEnergyPJ()/1e6)

	// 7. Sampled telemetry: arm a sampler over the kernel's span and drain
	// the engine — every registered probe (fabric, HBM, cache, XCDs,
	// power/thermal) gets one value per tick. The same recorder can feed
	// WriteCSV/WriteJSON or counter tracks in a Chrome trace (WriteTrace).
	ticks := apusim.NewSampler(eng, rec, 0).Arm(done)
	eng.RunAll()
	fmt.Printf("telemetry: %d probes x %d ticks (schema %s)\n",
		rec.Probes(), ticks, apusim.TelemetrySchema)
	if s, ok := rec.SeriesByName("hbm.live_channels"); ok {
		fmt.Printf("  hbm.live_channels: %.0f\n", s.Values[len(s.Values)-1])
	}
	if s, ok := rec.SeriesByName("power.total_w"); ok {
		fmt.Printf("  power.total_w: %.0f W idle floor\n", s.Values[len(s.Values)-1])
	}
}
