// Unifiedmemory walks the paper's §VI.B programming-model comparison
// (Figs. 14 and 15): the same computation as a CPU-only program, a
// discrete-GPU program with explicit hipMemcpy choreography, and an APU
// program on unified memory — then the fine-grained producer/consumer
// overlap enabled by cache-coherent completion flags.
package main

import (
	"fmt"
	"log"

	apusim "repro"
)

func main() {
	const n = 1 << 22 // 4M float64 = 32 MB per array

	apu, err := apusim.NewMI300A()
	if err != nil {
		log.Fatal(err)
	}
	discrete, err := apusim.NewMI250X()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Fig. 14: three versions of y = a*x + b, n =", n, "===")
	cpuOnly, err := apusim.RunCPUOnly(apu, n)
	if err != nil {
		log.Fatal(err)
	}
	disc, err := apusim.RunDiscrete(discrete, n)
	if err != nil {
		log.Fatal(err)
	}
	unified, err := apusim.RunAPU(apu, n)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []*apusim.ProgramResult{cpuOnly, disc, unified} {
		fmt.Printf("\n%s on %s (verified=%v, copied %d MB):\n",
			r.Program, r.Platform, r.Verified, r.CopyBytes>>20)
		for _, s := range r.Steps {
			fmt.Printf("  %-18s %12v .. %12v (%v)\n", s.Name, s.Start, s.End, s.Duration())
		}
		fmt.Printf("  %-18s %v\n", "TOTAL", r.Total)
	}
	fmt.Printf("\nAPU vs discrete: %.2fx faster — the copies are gone.\n",
		float64(disc.Total)/float64(unified.Total))

	fmt.Println("\n=== Fig. 15: fine-grained GPU->CPU pipelining ===")
	ov, err := apusim.RunOverlap(apu, 1<<20, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel-level sync: %v\n", ov.CoarseTotal)
	fmt.Printf("per-chunk coherent flags: %v (%d/%d flags observed)\n",
		ov.FineTotal, ov.FlagsObserved, ov.Chunks)
	fmt.Printf("overlap speedup: %.2fx (verified=%v)\n", ov.Speedup, ov.Verified)
}
