// Partitioning demonstrates the Fig. 17 deployment modes: MI300A's six
// XCDs as one SPX device versus three TPX partitions, and MI300X's CPX
// mode with NPS4 memory domains mapped to SR-IOV virtual functions for
// multi-tenant serving. It then actually runs the same kernel on an SPX
// partition and on a TPX partition to show the resource split.
package main

import (
	"fmt"
	"log"

	apusim "repro"
	"repro/internal/gpu"
)

func main() {
	fmt.Println("=== Fig. 17: supported partitioning modes ===")
	table, err := apusim.ExperimentFig17()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table.String())

	// Configure MI300X CPX + NPS4: eight single-XCD partitions, four
	// dedicated memory domains, one PCIe VF per partition.
	cpx, err := apusim.ConfigurePartitions(apusim.SpecMI300X(), "CPX", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== MI300X CPX + NPS4 tenant map ===")
	for _, vf := range cpx.VFs {
		xcds := cpx.Assignments[vf.Partition]
		fmt.Printf("  VF%d -> partition %d (XCDs %v), %d CUs, %.0f GB/s dedicated, %d GB domain share\n",
			vf.Index, vf.Partition, xcds, cpx.CUsPerPartition(),
			cpx.BWPerPartition()/1e9, cpx.MemoryPerDomain>>30)
	}

	// Now run the same kernel on MI300A in SPX vs one TPX partition.
	apu, err := apusim.NewMI300A()
	if err != nil {
		log.Fatal(err)
	}
	tpx0, err := apu.NewPartitionOf("tpx0", []int{0, 1}, gpu.PolicyRoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	k := &apusim.KernelSpec{
		Name:  "flops",
		Class: apusim.Matrix, Dtype: apusim.FP16,
		FlopsPerItem: 2e5,
	}
	const items = 228 * 2 * 256
	spxDone, err := apu.GPU.Dispatch(0, k, items, 256, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, x := range apu.XCDs {
		x.ResetStats()
	}
	tpxDone, err := tpx0.Dispatch(0, k, items, 256, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Same kernel, SPX (6 XCDs) vs TPX partition (2 XCDs) ===")
	fmt.Printf("  SPX: %d CUs -> %v\n", apu.GPU.TotalCUs(), spxDone)
	fmt.Printf("  TPX: %d CUs -> %v (%.2fx slower: one third of the compute)\n",
		tpx0.TotalCUs(), tpxDone, float64(tpxDone)/float64(spxDone))
}
