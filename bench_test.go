package apusim

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's per-experiment index). Each bench regenerates its artifact
// end-to-end, so `go test -bench=.` reproduces the entire evaluation and
// reports custom metrics (speedups, bandwidths, latencies) alongside
// wall-clock cost of the simulation itself.

import (
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/workload"
)

// BenchmarkExperimentSuite runs every experiment in the shared registry
// as a sub-benchmark, so `go test -bench ExperimentSuite` regenerates
// the whole evaluation through the same registration table cmd/repro
// uses — no private experiment list to drift out of sync.
func BenchmarkExperimentSuite(b *testing.B) {
	for _, e := range Experiments().Experiments() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			var out string
			for i := 0; i < b.N; i++ {
				suite, err := Experiments().RunSuite(runner.Options{
					Parallel: 1, IDs: []string{e.ID},
				})
				if err != nil {
					b.Fatal(err)
				}
				res := suite.Results[0]
				if res.Failed() {
					b.Fatalf("%s: %v", res.Status, res.Err)
				}
				out = res.Output
			}
			b.ReportMetric(float64(len(out)), "output-bytes")
		})
	}
}

// BenchmarkTable1_PeakRates regenerates Table 1 and additionally executes
// a one-CU microkernel per (arch, dtype) pair on the detailed GPU model
// to confirm the modeled rates are what the execution engine delivers.
func BenchmarkTable1_PeakRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ExperimentTable1().NumRows() != 2 {
			b.Fatal("table shape")
		}
	}
	b.ReportMetric(config.CDNA3Rates().Ops(config.Matrix, config.FP8), "cdna3-fp8-ops/clk/cu")
	b.ReportMetric(config.CDNA3Rates().SparseOps(config.FP8), "cdna3-fp8-sparse-ops/clk/cu")
}

// BenchmarkFig7_IODBandwidths measures every IOD interface's saturated
// bandwidth on the fabric model.
func BenchmarkFig7_IODBandwidths(b *testing.B) {
	var rows []IODBandwidth
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = ExperimentFig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		unit := strings.ReplaceAll(r.Interface, " ", "-") + "-GB/s"
		b.ReportMetric(r.MeasuredBW/1e9, unit)
	}
}

// BenchmarkFig12a_PowerShift regenerates the two power-distribution
// scenarios under the 550 W socket governor.
func BenchmarkFig12a_PowerShift(b *testing.B) {
	var scenarios []PowerScenario
	for i := 0; i < b.N; i++ {
		scenarios, _ = ExperimentFig12a()
	}
	b.ReportMetric(scenarios[0].Fractions["XCD"]*100, "compute-XCD-%")
	b.ReportMetric(scenarios[1].Fractions["HBM"]*100, "memory-HBM-%")
}

// BenchmarkFig12bc_Thermal runs the steady-state thermal solves for both
// workload scenarios on the full MI300A floorplan.
func BenchmarkFig12bc_Thermal(b *testing.B) {
	var ts [2]ThermalScenario
	for i := 0; i < b.N; i++ {
		var err error
		ts, err = ExperimentFig12bc(96, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ts[0].PeakC, "gpu-peak-C")
	b.ReportMetric(ts[1].PeakC, "mem-peak-C")
}

// BenchmarkFig13_MultiXCDDispatch runs the cooperative dispatch flow.
func BenchmarkFig13_MultiXCDDispatch(b *testing.B) {
	var r *Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = ExperimentFig13()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.SyncMessages), "sync-msgs")
	b.ReportMetric(r.Completion.Microseconds(), "kernel-µs")
}

// BenchmarkFig14_UnifiedMemory runs the three Fig. 14 programs and
// reports the APU's advantage over the discrete flow.
func BenchmarkFig14_UnifiedMemory(b *testing.B) {
	var r *Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		r, _, err = ExperimentFig14(1 << 21)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Discrete.Total)/float64(r.APU.Total), "apu-vs-discrete-x")
	b.ReportMetric(r.APU.Total.Milliseconds(), "apu-ms")
	b.ReportMetric(r.Discrete.Total.Milliseconds(), "discrete-ms")
}

// BenchmarkFig15_FineGrainOverlap runs the flag-based overlap program.
func BenchmarkFig15_FineGrainOverlap(b *testing.B) {
	var r *OverlapResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = ExperimentFig15(1<<20, 64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Speedup, "overlap-speedup-x")
}

// BenchmarkFig17_Partitioning validates every partitioning mode and
// measures per-partition bandwidth isolation.
func BenchmarkFig17_Partitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentFig17(); err != nil {
			b.Fatal(err)
		}
	}
	cpx, err := ConfigurePartitions(SpecMI300X(), "CPX", 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cpx.BWPerPartition()/1e9, "cpx-nps4-GB/s-per-partition")
}

// BenchmarkFig18_NodeTopologies builds and measures both Fig. 18 nodes.
func BenchmarkFig18_NodeTopologies(b *testing.B) {
	var rs [2]Fig18Result
	for i := 0; i < b.N; i++ {
		var err error
		rs, _, err = ExperimentFig18()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rs[0].AllToAllBW/1e9, "quad-alltoall-GB/s")
	b.ReportMetric(rs[1].AllToAllBW/1e9, "octo-alltoall-GB/s")
}

// BenchmarkFig19_GenerationalUplift regenerates the uplift table and the
// measured-bandwidth column.
func BenchmarkFig19_GenerationalUplift(b *testing.B) {
	var rows []Fig19Row
	for i := 0; i < b.N; i++ {
		rows, _ = ExperimentFig19()
		if _, err := MeasuredBandwidths(); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Metric == "Memory BW TB/s" {
			b.ReportMetric(r.UpliftA, "membw-uplift-x")
		}
		if r.Metric == "I/O BW GB/s" {
			b.ReportMetric(r.UpliftA, "io-uplift-x")
		}
	}
}

// BenchmarkFig20_HPCSpeedups runs the four HPC workload proxies on both
// MI300A and MI250X.
func BenchmarkFig20_HPCSpeedups(b *testing.B) {
	var speedups map[string]float64
	for i := 0; i < b.N; i++ {
		var err error
		speedups, _, err = ExperimentFig20()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range []string{"GROMACS", "N-body", "HPCG", "OpenFOAM"} {
		b.ReportMetric(speedups[name], name+"-speedup-x")
	}
}

// BenchmarkFig21_LLMInference runs the Llama-2 70B serving comparison.
func BenchmarkFig21_LLMInference(b *testing.B) {
	var rows []Fig21Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = ExperimentFig21()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Config {
		case "Baseline vLLM FP16":
			b.ReportMetric(r.RelLatency, "vs-base-vllm-x")
		case "Baseline TRT-LLM FP16":
			b.ReportMetric(r.RelLatency, "vs-base-trt-x")
		case "Baseline TRT-LLM FP8":
			b.ReportMetric(r.RelLatency, "vs-base-fp8-x")
		case "MI300X vLLM FP16":
			b.ReportMetric(r.TotalSec*1000, "mi300x-total-ms")
		}
	}
}

// BenchmarkSec3_EHPv4Ablation quantifies the §III.B shortcomings.
func BenchmarkSec3_EHPv4Ablation(b *testing.B) {
	var r *EHPv4Ablation
	for i := 0; i < b.N; i++ {
		var err error
		r, _, err = ExperimentEHPv4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CrossGPUBWMI300A/r.CrossGPUBWEHPv4, "crossgpu-bw-ratio-x")
	b.ReportMetric(float64(r.CPUHopsEHPv4[0]), "ehpv4-cpu-hbm-hops")
	b.ReportMetric(r.STREAMSlowdown, "stream-slowdown-x")
}

// BenchmarkFig9_TSVAlignment runs the full physical-construction
// validation (Figs. 8-10) including both package assemblies.
func BenchmarkFig9_TSVAlignment(b *testing.B) {
	var r *TSVAlignmentReport
	for i := 0; i < b.N; i++ {
		var err error
		r, err = ExperimentTSVAlignment()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.SignalTSVs), "signal-tsvs")
	b.ReportMetric(float64(r.RedundantTSVs), "redundant-tsvs")
}

// BenchmarkWorkloads_PerPlatform runs each Fig. 20 workload on each
// platform individually, for profile-style comparison.
func BenchmarkWorkloads_PerPlatform(b *testing.B) {
	specs := map[string]func() (*Platform, error){
		"MI300A": NewMI300A, "MI250X": NewMI250X, "EHPv4": NewEHPv4,
	}
	for name, mk := range specs {
		p, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workload.Fig20Suite() {
			w := w
			b.Run(name+"/"+w.Name(), func(b *testing.B) {
				var secs float64
				for i := 0; i < b.N; i++ {
					secs, _ = RunWorkload(w, p)
				}
				b.ReportMetric(secs*1000, "simulated-ms")
			})
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblation_SchedulingPolicy measures the §VI.A block vs
// round-robin workgroup placement tradeoff.
func BenchmarkAblation_SchedulingPolicy(b *testing.B) {
	var r *PolicyAblation
	for i := 0; i < b.N; i++ {
		var err error
		r, _, err = ExperimentPolicyAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BlockHitRate, "block-l2-hitrate")
	b.ReportMetric(r.RRHitRate, "rr-l2-hitrate")
}

// BenchmarkAblation_InfinityCachePrefetch measures the §IV.D stream
// prefetcher's contribution.
func BenchmarkAblation_InfinityCachePrefetch(b *testing.B) {
	var r *PrefetchAblation
	for i := 0; i < b.N; i++ {
		var err error
		r, err = ExperimentPrefetchAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.HitRateOn, "prefetch-on-hitrate")
	b.ReportMetric(r.HitRateOff, "prefetch-off-hitrate")
}

// BenchmarkAblation_PowerShifting measures dynamic vs static TDP budgets.
func BenchmarkAblation_PowerShifting(b *testing.B) {
	var r *PowerShiftAblation
	for i := 0; i < b.N; i++ {
		r, _ = ExperimentPowerShiftAblation()
	}
	b.ReportMetric(r.DynamicXCDWatts, "dynamic-xcd-W")
	b.ReportMetric(r.StaticXCDWatts, "static-xcd-W")
}

// BenchmarkAblation_BondInterface measures the Fig. 11 RDL-landing choice.
func BenchmarkAblation_BondInterface(b *testing.B) {
	var r *BondComparison
	for i := 0; i < b.N; i++ {
		var err error
		r, _, err = ExperimentBondInterface()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MI300MaxW, "mi300-maxW")
	b.ReportMetric(r.VCacheMaxW, "vcache-maxW")
}

// BenchmarkAblation_CoherenceScopes measures the §IV.D software-coherent
// cross-socket GPU scope design.
func BenchmarkAblation_CoherenceScopes(b *testing.B) {
	var r *CoherenceScopes
	for i := 0; i < b.N; i++ {
		var err error
		r, _, err = ExperimentCoherenceScopes()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.HW1GB)/float64(r.SW1GB), "sw-coherence-advantage-x")
	b.ReportMetric(float64(r.Crossover)/1e6, "crossover-MB")
}

// BenchmarkAblation_ShimDispatch measures the §VI.B shim crossover sizes.
func BenchmarkAblation_ShimDispatch(b *testing.B) {
	var rows []ShimCrossover
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = ExperimentShim()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Call == "dgemm" {
			b.ReportMetric(float64(r.Crossover), r.Platform+"-dgemm-n")
		}
	}
}

// BenchmarkAblation_ManagedMemory measures page migration vs true unified
// memory.
func BenchmarkAblation_ManagedMemory(b *testing.B) {
	var r *ManagedMemoryResult
	for i := 0; i < b.N; i++ {
		var err error
		r, _, err = ExperimentManagedMemory(1 << 21)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Managed.Total)/float64(r.APU.Total), "managed-vs-apu-x")
	b.ReportMetric(float64(r.Stats.Faults), "page-fault-batches")
}

// BenchmarkCollectives_AllReduce measures ring vs direct all-reduce on the
// Fig. 18a node.
func BenchmarkCollectives_AllReduce(b *testing.B) {
	node, err := topology.QuadAPUNode()
	if err != nil {
		b.Fatal(err)
	}
	var ringBW, directBW float64
	for i := 0; i < b.N; i++ {
		cr, err := collective.NewComm(node)
		if err != nil {
			b.Fatal(err)
		}
		ring, err := cr.RingAllReduce(0, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		cd, err := collective.NewComm(node)
		if err != nil {
			b.Fatal(err)
		}
		direct, err := cd.DirectAllReduce(0, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		ringBW, directBW = ring.BusBW, direct.BusBW
	}
	b.ReportMetric(ringBW/1e9, "ring-busbw-GB/s")
	b.ReportMetric(directBW/1e9, "direct-busbw-GB/s")
}

// BenchmarkScale_StrongScaling runs the node-level strong-scaling study.
func BenchmarkScale_StrongScaling(b *testing.B) {
	var pts []ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = ExperimentStrongScale()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[3].Speedup, "4-socket-speedup-x")
	b.ReportMetric(pts[3].Efficiency*100, "4-socket-efficiency-%")
}

// BenchmarkAblation_TenantIsolation measures the NPS1/NPS4 QoS tradeoff.
func BenchmarkAblation_TenantIsolation(b *testing.B) {
	var rs [2]TenantIsolation
	for i := 0; i < b.N; i++ {
		var err error
		rs, _, err = ExperimentTenantIsolation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rs[0].DegradationPct, "nps1-degradation-%")
	b.ReportMetric(rs[1].DegradationPct, "nps4-degradation-%")
}

// BenchmarkKernels_SpMV runs the CSR SpMV kernel end-to-end on MI300A.
func BenchmarkKernels_SpMV(b *testing.B) {
	p, err := NewMI300A()
	if err != nil {
		b.Fatal(err)
	}
	const rows = 1 << 18
	m, err := kernels.BuildCSRStencil(p.DeviceMem, rows)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := p.DeviceMem.Alloc(rows*8, 4096)
	y, _ := p.DeviceMem.Alloc(rows*8, 4096)
	k := kernels.SpMV(m, x, y)
	b.ResetTimer()
	var now Time
	for i := 0; i < b.N; i++ {
		done, err := p.GPU.Dispatch(now, k, rows, 256, 0)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
	b.ReportMetric(float64(rows)*float64(b.N)/now.Seconds()/1e9, "simulated-grows/s")
}

// BenchmarkICacheStudy runs the §IV.B shared-vs-private I-cache study.
func BenchmarkICacheStudy(b *testing.B) {
	var c gpu.ICacheComparison
	for i := 0; i < b.N; i++ {
		c = gpu.CompareICache(48<<10, 8)
	}
	b.ReportMetric(c.SharedSame, "shared-hitrate")
	b.ReportMetric(c.PrivateSame, "private-hitrate")
}
