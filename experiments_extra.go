package apusim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/chiplet"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/multisocket"
	"repro/internal/power"
	"repro/internal/progmodel"
	"repro/internal/runner"
	"repro/internal/shim"
	"repro/internal/sim"
)

// This file holds the extension experiments beyond the paper's numbered
// tables and figures: ablations of the design choices the paper describes
// in prose (workgroup scheduling policy, Infinity Cache prefetcher,
// dynamic power shifting, the Fig. 11 bond interface, software coherence
// scopes, the §VI.B shim router, and page-migration pseudo-unified
// memory).

// ShimCrossover is one routed call family's CPU/GPU crossover point.
type ShimCrossover struct {
	Platform  string
	Call      string
	Crossover int
}

// ExperimentShim measures where the §VI.B shim library starts routing
// standard calls to the GPU, on the APU versus a discrete platform.
func ExperimentShim() ([]ShimCrossover, *metrics.Table, error) {
	t := metrics.NewTable("§VI.B shim dispatch: CPU→GPU crossover size",
		"Platform", "DGEMM n", "DAXPY n")
	var out []ShimCrossover
	for _, mk := range []func() (*Platform, error){NewMI300A, NewMI250X} {
		p, err := mk()
		if err != nil {
			return nil, nil, err
		}
		r := shim.NewRouter(p)
		gemmN := r.Crossover(shim.DGEMM, 8, 1<<15)
		daxpyN := r.Crossover(shim.DAXPY, 1<<10, 1<<30)
		out = append(out,
			ShimCrossover{p.Spec.Name, "dgemm", gemmN},
			ShimCrossover{p.Spec.Name, "daxpy", daxpyN})
		t.AddRow(p.Spec.Name, fmt.Sprint(gemmN), fmt.Sprint(daxpyN))
	}
	return out, t, nil
}

// ManagedMemoryResult compares true unified memory with page-migration
// pseudo-unified memory and explicit copies.
type ManagedMemoryResult struct {
	APU      *ProgramResult
	Explicit *ProgramResult
	Managed  *ProgramResult
	Stats    *progmodel.MigrationStats
}

// ExperimentManagedMemory runs the §VI.B page-migration contrast: the
// same program under true unified memory (MI300A), explicit hipMemcpy
// (MI250X), and driver page migration (MI250X).
func ExperimentManagedMemory(n int) (*ManagedMemoryResult, *metrics.Table, error) {
	if n <= 0 {
		n = 1 << 22
	}
	apu, err := NewMI300A()
	if err != nil {
		return nil, nil, err
	}
	d1, err := NewMI250X()
	if err != nil {
		return nil, nil, err
	}
	d2, err := NewMI250X()
	if err != nil {
		return nil, nil, err
	}
	ra, err := progmodel.RunAPU(apu, n)
	if err != nil {
		return nil, nil, err
	}
	re, err := progmodel.RunDiscrete(d1, n)
	if err != nil {
		return nil, nil, err
	}
	rm, st, err := progmodel.RunManaged(d2, n)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable(fmt.Sprintf("§VI.B unified vs pseudo-unified memory (n=%d)", n),
		"Program", "Platform", "Total", "Data moved", "vs APU")
	for _, r := range []*ProgramResult{ra, re, rm} {
		t.AddRow(r.Program, r.Platform, r.Total.String(),
			metrics.FormatBytes(uint64(r.CopyBytes)),
			fmt.Sprintf("%.2fx", float64(r.Total)/float64(ra.Total)))
	}
	return &ManagedMemoryResult{APU: ra, Explicit: re, Managed: rm, Stats: st}, t, nil
}

// PolicyAblation compares the §VI.A workgroup scheduling policies.
type PolicyAblation struct {
	BlockHitRate float64
	RRHitRate    float64
	BlockTime    sim.Time
	RRTime       sim.Time
}

// ExperimentPolicyAblation runs a tiled kernel (4 consecutive workgroups
// share a 1 MB tile) under block and round-robin scheduling and reports
// L2 reuse and completion time.
func ExperimentPolicyAblation() (*PolicyAblation, *metrics.Table, error) {
	spec := config.MI300A().XCD
	mk := func(policy gpu.Policy) (*gpu.Partition, error) {
		rng := sim.NewRNG(7)
		var xs []*gpu.XCD
		for i := 0; i < 6; i++ {
			xs = append(xs, gpu.NewXCD(i, spec, rng))
		}
		return gpu.NewPartition(policy.String(), xs, nil, policy), nil
	}
	k := &gpu.KernelSpec{
		Name: "tiled", Class: config.Matrix, Dtype: config.FP16,
		FlopsPerItem: 1e4, TileBytes: 1 << 20,
		TileOf: func(wgID int) int64 { return int64(wgID/4) * (1 << 20) },
	}
	const items = 6 * 16 * 256
	r := &PolicyAblation{}
	for _, policy := range []gpu.Policy{gpu.PolicyBlock, gpu.PolicyRoundRobin} {
		p, err := mk(policy)
		if err != nil {
			return nil, nil, err
		}
		done, err := p.Dispatch(0, k, items, 256, 0)
		if err != nil {
			return nil, nil, err
		}
		var st cache.Stats
		for _, x := range p.XCDs() {
			s := x.L2().Stats()
			st.Hits += s.Hits
			st.Misses += s.Misses
		}
		if policy == gpu.PolicyBlock {
			r.BlockHitRate, r.BlockTime = st.HitRate(), done
		} else {
			r.RRHitRate, r.RRTime = st.HitRate(), done
		}
	}
	t := metrics.NewTable("§VI.A workgroup scheduling policy ablation",
		"Policy", "L2 hit rate", "Completion")
	t.AddRow("block (L2 reuse)", fmt.Sprintf("%.2f", r.BlockHitRate), r.BlockTime.String())
	t.AddRow("round-robin (max BW)", fmt.Sprintf("%.2f", r.RRHitRate), r.RRTime.String())
	return r, t, nil
}

// PrefetchAblation compares Infinity Cache hit rates with the stream
// prefetcher on and off.
type PrefetchAblation struct {
	HitRateOn  float64
	HitRateOff float64
}

// ExperimentPrefetchAblation streams sequential traffic through the
// memory-side cache with and without the §IV.D hardware prefetcher.
func ExperimentPrefetchAblation() (*PrefetchAblation, error) {
	run := func(prefetch bool) float64 {
		ic := cache.NewInfinityCache(8, 2<<20, 17e12/16, 25*sim.Nanosecond, prefetch)
		var now sim.Time
		// A streaming read: each 4 KB interleave granule (32 lines) is a
		// sequential run within one channel's slice, as in §IV.D.
		for i := int64(0); i < 4096; i++ {
			ch := int(i/32) % 8
			res := ic.Access(now, ch, i*config.CacheLineSize, config.CacheLineSize, false)
			now = res.Done
		}
		return ic.HitRate()
	}
	return &PrefetchAblation{HitRateOn: run(true), HitRateOff: run(false)}, nil
}

// PowerShiftAblation compares the dynamic governor with a static TDP
// split.
type PowerShiftAblation struct {
	DynamicXCDWatts float64
	StaticXCDWatts  float64
	DynamicScale    float64
	StaticScale     float64
}

// ExperimentPowerShiftAblation quantifies §V.D-E's vertical power
// shifting against a fixed proportional budget.
func ExperimentPowerShiftAblation() (*PowerShiftAblation, *metrics.Table) {
	m := power.MI300AModel()
	act := power.ComputeIntensive()
	dyn, ds := m.Allocate(act)
	st, ss := m.StaticAllocate(act)
	r := &PowerShiftAblation{
		DynamicXCDWatts: dyn[power.DomainXCD],
		StaticXCDWatts:  st[power.DomainXCD],
		DynamicScale:    ds,
		StaticScale:     ss,
	}
	t := metrics.NewTable("§V.E power shifting ablation (compute-intensive phase)",
		"Governor", "XCD watts", "Throttle scale")
	t.AddRowf("dynamic shifting", r.DynamicXCDWatts, fmt.Sprintf("%.2f", r.DynamicScale))
	t.AddRowf("static split", r.StaticXCDWatts, fmt.Sprintf("%.2f", r.StaticScale))
	return r, t
}

// BondComparison is the Fig. 11 interface comparison.
type BondComparison struct {
	VCacheDroopMV float64
	MI300DroopMV  float64
	VCacheMaxW    float64
	MI300MaxW     float64
}

// ExperimentBondInterface reproduces the Fig. 11 analysis: IR drop and
// deliverable power through the V-Cache-generation versus MI300 hybrid
// bond interfaces at XCD power levels.
func ExperimentBondInterface() (*BondComparison, *metrics.Table, error) {
	const area, volts, pg, droop = 93.5, 0.75, 0.25, 0.03
	v, err := chiplet.VCacheBond().IRDrop(60, area, volts, pg)
	if err != nil {
		return nil, nil, err
	}
	m, err := chiplet.MI300Bond().IRDrop(60, area, volts, pg)
	if err != nil {
		return nil, nil, err
	}
	r := &BondComparison{
		VCacheDroopMV: v * 1000,
		MI300DroopMV:  m * 1000,
		VCacheMaxW:    chiplet.VCacheBond().MaxPowerAtDroop(area, volts, pg, droop),
		MI300MaxW:     chiplet.MI300Bond().MaxPowerAtDroop(area, volts, pg, droop),
	}
	t := metrics.NewTable("Fig. 11: hybrid bond interface, 60 W XCD at 0.75 V",
		"Interface", "IR drop (mV)", "Max W @ 3% droop")
	t.AddRowf("V-Cache (BPV→top metal)", r.VCacheDroopMV, r.VCacheMaxW)
	t.AddRowf("MI300 (BPV→RDL)", r.MI300DroopMV, r.MI300MaxW)
	return r, t, nil
}

// CoherenceScopes is the §IV.D cross-socket coherence analysis.
type CoherenceScopes struct {
	SW1GB     sim.Time
	HW1GB     sim.Time
	Crossover int64
	ProbeTax  float64
}

// ExperimentCoherenceScopes quantifies the software-coherent GPU scope
// design on the Fig. 18(a) node.
func ExperimentCoherenceScopes() (*CoherenceScopes, *metrics.Table, error) {
	s, err := multisocket.NewQuadAPUSystem()
	if err != nil {
		return nil, nil, err
	}
	const gb = 1 << 30
	sw := s.SoftwareCoherentHandoff(gb)
	hw := s.HardwareCoherentHandoff(gb)
	r := &CoherenceScopes{
		SW1GB:     sw.Total,
		HW1GB:     hw.Total,
		Crossover: s.Crossover(64, 1<<30),
		ProbeTax:  s.CoherenceBandwidthTax(gb),
	}
	t := metrics.NewTable("§IV.D cross-socket GPU coherence (1 GB kernel handoff)",
		"Scheme", "Handoff time", "IF bytes")
	t.AddRow("software-coherent (shipped)", sw.Total.String(), metrics.FormatBytes(uint64(sw.IFBytes)))
	t.AddRow("hardware-coherent (rejected)", hw.Total.String(), metrics.FormatBytes(uint64(hw.IFBytes)))
	t.AddRow("crossover size", metrics.FormatBytes(uint64(r.Crossover)), "")
	t.AddRow("probe bandwidth tax", fmt.Sprintf("%.0f%%", r.ProbeTax*100), "")
	return r, t, nil
}

// registerExtraExperiments registers this file's design-choice ablation
// experiments.
func registerExtraExperiments(r *runner.Registry) {
	r.MustRegister(runner.Experiment{ID: "fig11", Desc: "Hybrid bond interface: V-Cache vs MI300 RDL landing",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentBondInterface()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "shim", Desc: "§VI.B shim library CPU/GPU dispatch crossover",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentShim()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "managed", Desc: "Page-migration pseudo-unified memory vs APU",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentManagedMemory(1 << 22)
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "policy", Desc: "§VI.A workgroup scheduling policy ablation",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentPolicyAblation()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "powershift", Desc: "§V.E dynamic vs static power budget ablation",
		Run: func(*runner.Ctx) (string, error) {
			_, t := ExperimentPowerShiftAblation()
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "scopes", Desc: "§IV.D cross-socket GPU coherence scopes",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentCoherenceScopes()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "prefetch", Desc: "Infinity Cache stream prefetcher ablation",
		Run: func(*runner.Ctx) (string, error) {
			res, err := ExperimentPrefetchAblation()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("sequential-stream hit rate: prefetch on %.2f, off %.2f\n",
				res.HitRateOn, res.HitRateOff), nil
		}})
}
