package apusim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/runner"
	"repro/internal/scale"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// This file holds the deployment-quality experiments: NPS1 vs NPS4 tenant
// isolation (the QoS rationale behind Fig. 17's memory modes) and the
// energy-efficiency view of the Fig. 20 workloads (the paper's recurring
// "performance and power efficiency" framing).

// TenantIsolation reports how a tenant's achieved bandwidth responds to a
// noisy neighbor under each memory mode.
type TenantIsolation struct {
	NPS            int
	AloneBW        float64 // tenant A streaming alone
	WithNeighborBW float64 // tenant A while tenant B streams too
	DegradationPct float64
}

// ExperimentTenantIsolation streams tenant A's working set with and
// without a saturating neighbor, under NPS1 (shared interleave: high peak,
// no isolation) and NPS4 (dedicated quarter: lower peak, full isolation).
func ExperimentTenantIsolation() ([2]TenantIsolation, *metrics.Table, error) {
	spec := config.MI300X()
	capacity := spec.HBM.TotalCapacity()

	run := func(nps int, withNeighbor bool) (float64, error) {
		h := mem.NewHBM(spec.HBM.Generation, spec.HBM.Stacks, spec.HBM.ChannelsStack,
			spec.HBM.StackBW, capacity, 120*sim.Nanosecond)
		if err := h.SetNUMADomains(nps); err != nil {
			return 0, err
		}
		// Tenant A owns the first domain's region; B the second's. Under
		// NPS1 both interleave over everything.
		span := capacity / int64(nps)
		if nps == 1 {
			span = capacity / 4 // same footprint either way
		}
		const chunk = 1 << 20
		const total = 256 << 20
		var aEnd sim.Time
		for off := int64(0); off < total; off += chunk {
			aAddr := off % span
			if done := h.Access(0, aAddr, chunk, off%(2*chunk) == 0); done > aEnd {
				aEnd = done
			}
			if withNeighbor {
				bAddr := span + off%span
				h.Access(0, bAddr%capacity, chunk, true)
			}
		}
		return float64(total) / aEnd.Seconds(), nil
	}

	var out [2]TenantIsolation
	t := metrics.NewTable("Fig. 17 memory modes: tenant isolation under a noisy neighbor",
		"Mode", "Tenant A alone", "A + neighbor", "Degradation")
	for i, nps := range []int{1, 4} {
		alone, err := run(nps, false)
		if err != nil {
			return out, nil, err
		}
		contended, err := run(nps, true)
		if err != nil {
			return out, nil, err
		}
		r := TenantIsolation{NPS: nps, AloneBW: alone, WithNeighborBW: contended}
		if alone > 0 {
			r.DegradationPct = 100 * (1 - contended/alone)
		}
		out[i] = r
		t.AddRow(fmt.Sprintf("NPS%d", nps), metrics.FormatRate(alone),
			metrics.FormatRate(contended), fmt.Sprintf("%.0f%%", r.DegradationPct))
	}
	return out, t, nil
}

// EfficiencyRow is one workload's perf-per-watt comparison.
type EfficiencyRow struct {
	Workload    string
	Speedup     float64 // MI300A over MI250X
	PowerRatio  float64 // MI300A socket power / MI250X
	EfficiencyX float64 // perf/W uplift
}

// ExperimentEfficiency reruns the Fig. 20 workloads and reports
// performance per watt: the paper's framing is explicit that the APU's
// goal is "world-class performance and power efficiency for both HPC and
// ML". Socket powers come from the platform power models (MI300A 550 W
// TDP vs MI250X 560 W), so perf/W uplift ≈ speedup × (560/550).
func ExperimentEfficiency() ([]EfficiencyRow, *metrics.Table, error) {
	a, err := NewMI300A()
	if err != nil {
		return nil, nil, err
	}
	m, err := NewMI250X()
	if err != nil {
		return nil, nil, err
	}
	powerRatio := a.Spec.TDPWatts / m.Spec.TDPWatts
	var rows []EfficiencyRow
	t := metrics.NewTable("Energy efficiency: MI300A vs MI250X (socket TDP basis)",
		"Workload", "Speedup", "Power ratio", "Perf/W uplift", "Energy/run ratio")
	for _, w := range workload.Fig20Suite() {
		sp := workload.Speedup(w, a, m)
		r := EfficiencyRow{
			Workload:    w.Name(),
			Speedup:     sp,
			PowerRatio:  powerRatio,
			EfficiencyX: sp / powerRatio,
		}
		rows = append(rows, r)
		// Energy per run: power × time; ratio = powerRatio / speedup.
		t.AddRow(r.Workload, fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2fx", r.PowerRatio),
			fmt.Sprintf("%.2fx", r.EfficiencyX),
			fmt.Sprintf("%.2fx", powerRatio/sp))
	}
	return rows, t, nil
}

// ExperimentEnergyPerPhase meters domain-level energy for a two-phase
// workload (compute phase then memory phase) under the dynamic governor.
func ExperimentEnergyPerPhase() (*metrics.Table, error) {
	m := power.MI300AModel()
	var meter power.EnergyMeter
	cAlloc, _ := m.Allocate(power.ComputeIntensive())
	mAlloc, _ := m.Allocate(power.MemoryIntensive())
	meter.SetAllocation(0, cAlloc)
	meter.SetAllocation(sim.Second, mAlloc)
	end := 2 * sim.Second
	t := metrics.NewTable("Domain energy over a compute+memory second each (MI300A)",
		"Domain", "Energy (J)", "Share")
	total := meter.EnergyJ(end)
	for _, d := range power.AllDomains() {
		j := meter.DomainEnergyJ(end, d)
		t.AddRow(d.String(), metrics.FormatFloat(j), fmt.Sprintf("%.0f%%", 100*j/total))
	}
	t.AddRow("TOTAL", metrics.FormatFloat(total), "100%")
	return t, nil
}

// ScalePoint mirrors scale.Point for the facade.
type ScalePoint struct {
	Sockets    int
	Speedup    float64
	Efficiency float64
	CommShare  float64
}

// ExperimentStrongScale strong-scales a GROMACS-class workload across the
// Fig. 18(a) quad-APU node with a 1 MB per-step gradient exchange.
func ExperimentStrongScale() ([]ScalePoint, *metrics.Table, error) {
	w := &workload.GROMACS{Atoms: 3_000_000, Steps: 100}
	pts, err := scale.StrongScale(w,
		func() (*core.Platform, error) { return core.NewPlatform(config.MI300A()) },
		topology.QuadAPUNode, 4, 100, 1<<20)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable("Strong scaling: GROMACS-class work on the Fig. 18a node",
		"Sockets", "Compute", "Comm", "Speedup", "Efficiency")
	var out []ScalePoint
	for _, p := range pts {
		sp := ScalePoint{Sockets: p.Sockets, Speedup: p.Speedup, Efficiency: p.Efficiency}
		if p.Total > 0 {
			sp.CommShare = float64(p.CommTime) / float64(p.Total)
		}
		out = append(out, sp)
		t.AddRow(fmt.Sprint(p.Sockets), p.ComputeTime.String(), p.CommTime.String(),
			fmt.Sprintf("%.2fx", p.Speedup), fmt.Sprintf("%.0f%%", p.Efficiency*100))
	}
	return out, t, nil
}

// registerQoSExperiments registers this file's deployment-quality
// experiments: scaling, isolation, and energy efficiency.
func registerQoSExperiments(r *runner.Registry) {
	r.MustRegister(runner.Experiment{ID: "scale", Desc: "Strong scaling across the Fig. 18a node",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentStrongScale()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "isolation", Desc: "NPS1 vs NPS4 tenant isolation",
		Run: func(*runner.Ctx) (string, error) {
			_, t, err := ExperimentTenantIsolation()
			if err != nil {
				return "", err
			}
			return t.String(), nil
		}})
	r.MustRegister(runner.Experiment{ID: "efficiency", Desc: "Perf/W: MI300A vs MI250X on the Fig. 20 suite",
		Run: func(ctx *runner.Ctx) (string, error) {
			_, t, err := ExperimentEfficiency()
			if err != nil {
				return "", err
			}
			ctx.Milestone("perf-per-watt")
			te, err := ExperimentEnergyPerPhase()
			if err != nil {
				return "", err
			}
			return t.String() + te.String(), nil
		}})
}
