package progmodel

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// This file implements the Fig. 15 experiment: decoupling GPU production
// from CPU consumption with per-chunk completion flags in the coherent
// unified memory, so the CPU's post-processing pipelines under the kernel
// instead of waiting for a device-level synchronize.

// OverlapResult compares the coarse-grained (kernel-level sync) and
// fine-grained (per-chunk flags) versions of the same producer/consumer
// program.
type OverlapResult struct {
	Platform      string
	Chunks        int
	CoarseTotal   sim.Time
	FineTotal     sim.Time
	Speedup       float64
	FlagsObserved int
	Verified      bool
}

func chunkSize(n, per, c int) int {
	lo := c * per
	hi := lo + per
	if hi > n {
		hi = n
	}
	return hi - lo
}

// RunOverlap executes the producer/consumer program: the GPU produces n
// float64 results in `chunks` batches, setting a coherent flag per batch
// as its data is written (Fig. 15a); the CPU spin-waits on each flag and
// post-processes the batch as soon as it becomes visible (Fig. 15b). The
// coarse version waits for the whole kernel before any CPU work
// (Fig. 15c).
func RunOverlap(p *core.Platform, n, chunks int) (*OverlapResult, error) {
	if p.Spec.Memory != config.UnifiedMemory || p.CPU == nil {
		return nil, fmt.Errorf("progmodel: overlap requires a unified-memory APU")
	}
	if chunks <= 0 || n < chunks {
		return nil, fmt.Errorf("progmodel: bad decomposition n=%d chunks=%d", n, chunks)
	}
	r := &OverlapResult{Platform: p.Spec.Name, Chunks: chunks}
	bytes := int64(n) * 8
	dataAddr, err := p.DeviceMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	flagAddr, err := p.DeviceMem.Alloc(int64(chunks)*8, 4096)
	if err != nil {
		return nil, err
	}

	// --- Produce: one GPU dispatch writing data, setting each chunk's
	// flag when its last element lands. ---
	per := (n + chunks - 1) / chunks
	produced := make([]int, chunks)
	// The producer performs nontrivial per-element work (Fig. 15's kernel
	// is a real computation, not a fill), so production and the CPU's
	// consumption proceed at comparable rates — the regime where
	// fine-grained pipelining pays.
	k := &gpu.KernelSpec{
		Name:  "produce",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem: 4000, BytesWrittenPerItem: 8,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := lo + wgSize
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				env.Mem.WriteFloat64(dataAddr+int64(i)*8, coefA*float64(i)+coefB)
				c := i / per
				if c < chunks {
					produced[c]++
					if produced[c] == chunkSize(n, per, c) {
						env.Mem.WriteUint64(flagAddr+int64(c)*8, 1)
					}
				}
			}
		},
	}
	gpuStart := sim.Microsecond
	gpuDone, err := p.GPU.Dispatch(gpuStart, k, n, 256, 0)
	if err != nil {
		return nil, err
	}
	kernelSpan := gpuDone - gpuStart

	for c := 0; c < chunks; c++ {
		if p.DeviceMem.ReadUint64(flagAddr+int64(c)*8) == 1 {
			r.FlagsObserved++
		}
	}

	// The consumer is one CPU thread in both versions (the Fig. 15 spin
	// loop), so chunk post-processing accumulates on a single core.
	post := cpu.Task{Name: "post", Flops: float64(per) * 4, BytesRead: int64(per) * 8}
	postTime := p.CPU.TaskTime(post)

	// --- Coarse timing (Fig. 15c): CPU starts after kernel completion. ---
	r.CoarseTotal = gpuDone + postTime*sim.Time(chunks)

	// --- Fine-grained timing (Fig. 15b): chunk c's flag becomes visible
	// as the kernel progresses (linear production ramp); the CPU consumes
	// each chunk as soon as the coherent flag write reaches it. ---
	vis := p.FlagVisibilityLatency()
	t := gpuStart
	for c := 0; c < chunks; c++ {
		flagAt := gpuStart + kernelSpan*sim.Time(c+1)/sim.Time(chunks) + vis
		if flagAt > t {
			t = flagAt
		}
		t += postTime
	}
	r.FineTotal = t
	if r.FineTotal > 0 {
		r.Speedup = float64(r.CoarseTotal) / float64(r.FineTotal)
	}
	r.Verified = sumAndVerify(p.DeviceMem, dataAddr, n) && r.FlagsObserved == chunks
	return r, nil
}
