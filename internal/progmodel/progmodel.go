// Package progmodel implements the paper's programming-model comparison
// (§VI.B, Figs. 14-15) as executable programs on the simulated platforms:
// the CPU-only program, the discrete-GPU program with hipMalloc/hipMemcpy
// choreography, and the APU program that allocates once in unified memory
// and never copies. Each variant really computes (data is initialized,
// transformed, and checked through the functional memory), and every step
// is timed on the platform's memory, link, and compute models. The
// fine-grained producer/consumer overlap of Fig. 15 is also here.
package progmodel

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// Step is one timed program step.
type Step struct {
	Name  string
	Start sim.Time
	End   sim.Time
}

// Duration reports the step's length.
func (s Step) Duration() sim.Time { return s.End - s.Start }

// Result is the outcome of one program run.
type Result struct {
	Program   string
	Platform  string
	Steps     []Step
	Total     sim.Time
	Verified  bool
	CopyBytes int64
}

// step appends a timed step and returns its end.
func (r *Result) step(name string, start, end sim.Time) sim.Time {
	r.Steps = append(r.Steps, Step{Name: name, Start: start, End: end})
	if end > r.Total {
		r.Total = end
	}
	return end
}

// StepByName finds a step, or nil.
func (r *Result) StepByName(name string) *Step {
	for i := range r.Steps {
		if r.Steps[i].Name == name {
			return &r.Steps[i]
		}
	}
	return nil
}

// The program computes y[i] = a*x[i] + b on n float64 elements, then the
// CPU post-processes sum(y). Verification checks the closed form.
const (
	coefA = 3.0
	coefB = 7.0
)

func expectedSum(n int) float64 {
	// sum_{i<n} (3i + 7) = 3 n(n-1)/2 + 7n
	fn := float64(n)
	return coefA*fn*(fn-1)/2 + coefB*fn
}

// initTask returns the CPU task that initializes x[i] = i in the given
// space.
func initTask(space interface {
	WriteFloat64(int64, float64)
}, xAddr int64, n int) cpu.Task {
	chunks := 24
	per := (n + chunks - 1) / chunks
	return cpu.Task{
		Name:         "init",
		Flops:        float64(n), // one op per element
		BytesWritten: int64(n) * 8,
		Body: func(env *cpu.Env, chunk int) {
			lo, hi := chunk*per, (chunk+1)*per
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				space.WriteFloat64(xAddr+int64(i)*8, float64(i))
			}
		},
	}
}

// sumAndVerify reads y back and checks the closed form.
func sumAndVerify(space interface {
	ReadFloat64(int64) float64
}, yAddr int64, n int) bool {
	var sum float64
	for i := 0; i < n; i++ {
		sum += space.ReadFloat64(yAddr + int64(i)*8)
	}
	want := expectedSum(n)
	diff := sum - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= want*1e-9
}

// axpyKernel builds the GPU kernel y = a*x + b over n elements.
func axpyKernel(xAddr, yAddr int64, n int) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:  "axpy",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem: 2, BytesReadPerItem: 8, BytesWrittenPerItem: 8,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := lo + wgSize
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				x := env.Mem.ReadFloat64(xAddr + int64(i)*8)
				env.Mem.WriteFloat64(yAddr+int64(i)*8, coefA*x+coefB)
			}
		},
	}
}

// cpuComputeTask is the CPU fallback of the same computation.
func cpuComputeTask(space interface {
	ReadFloat64(int64) float64
	WriteFloat64(int64, float64)
}, xAddr, yAddr int64, n int) cpu.Task {
	chunks := 24
	per := (n + chunks - 1) / chunks
	return cpu.Task{
		Name:      "compute",
		Flops:     2 * float64(n),
		BytesRead: int64(n) * 8, BytesWritten: int64(n) * 8,
		Body: func(env *cpu.Env, chunk int) {
			lo, hi := chunk*per, (chunk+1)*per
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				x := space.ReadFloat64(xAddr + int64(i)*8)
				space.WriteFloat64(yAddr+int64(i)*8, coefA*x+coefB)
			}
		},
	}
}

// postTask is the CPU post-processing (reduction over y).
func postTask(n int) cpu.Task {
	return cpu.Task{Name: "post", Flops: float64(n), BytesRead: int64(n) * 8}
}

// hostCPU picks the CPU complex that runs host code on the platform.
func hostCPU(p *core.Platform) *cpu.Complex {
	if p.CPU != nil {
		return p.CPU
	}
	return p.HostCPU
}

// RunCPUOnly executes the Fig. 14(a) program: malloc, init, compute, post —
// all on the CPU.
func RunCPUOnly(p *core.Platform, n int) (*Result, error) {
	r := &Result{Program: "cpu-only", Platform: p.Spec.Name}
	c := hostCPU(p)
	if c == nil {
		return nil, fmt.Errorf("progmodel: %s has no CPU", p.Spec.Name)
	}
	space := p.HostMem
	xAddr, err := space.Alloc(int64(n)*8, 4096)
	if err != nil {
		return nil, err
	}
	yAddr, err := space.Alloc(int64(n)*8, 4096)
	if err != nil {
		return nil, err
	}
	t := r.step("malloc", 0, sim.Microsecond)
	t = r.step("init", t, c.ExecuteParallel(t, initTask(space, xAddr, n), 24))
	t = r.step("compute", t, c.ExecuteParallel(t, cpuComputeTask(space, xAddr, yAddr, n), 24))
	r.step("post", t, c.ExecuteParallel(t, postTask(n), 24))
	r.Verified = sumAndVerify(space, yAddr, n)
	return r, nil
}

// RunDiscrete executes the Fig. 14(b) program on a discrete platform:
// malloc + hipMalloc, init on host, hipMemcpy H2D, kernel launch, device
// synchronize, hipMemcpy D2H, post on host.
func RunDiscrete(p *core.Platform, n int) (*Result, error) {
	if p.Spec.Memory != config.DiscreteMemory {
		return nil, fmt.Errorf("progmodel: %s is not a discrete platform", p.Spec.Name)
	}
	r := &Result{Program: "discrete-gpu", Platform: p.Spec.Name}
	c := hostCPU(p)
	bytes := int64(n) * 8

	hx, err := p.HostMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	hy, err := p.HostMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	dx, err := p.DeviceMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	dy, err := p.DeviceMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}

	t := r.step("malloc+hipMalloc", 0, 2*sim.Microsecond)
	t = r.step("init(host)", t, c.ExecuteParallel(t, initTask(p.HostMem, hx, n), 24))

	// hipMemcpy H2D: functional copy + link timing.
	copyHostToDevice(p, hx, dx, bytes)
	t = r.step("hipMemcpy H2D", t, p.HostLinkTransfer(t, bytes, true))
	r.CopyBytes += bytes

	k := axpyKernel(dx, dy, n)
	done, err := p.GPU.Dispatch(t, k, n, 256, 0)
	if err != nil {
		return nil, err
	}
	t = r.step("kernel+sync", t, done)

	copyDeviceToHost(p, dy, hy, bytes)
	t = r.step("hipMemcpy D2H", t, p.HostLinkTransfer(t, bytes, false))
	r.CopyBytes += bytes

	r.step("post(host)", t, c.ExecuteParallel(t, postTask(n), 24))
	r.Verified = sumAndVerify(p.HostMem, hy, n)
	return r, nil
}

// RunAPU executes the Fig. 14(c) program on a unified-memory platform: one
// malloc, init directly in HBM, kernel launch on the same physical pages,
// synchronize, post — no copies anywhere.
func RunAPU(p *core.Platform, n int) (*Result, error) {
	if p.Spec.Memory != config.UnifiedMemory {
		return nil, fmt.Errorf("progmodel: %s is not a unified-memory platform", p.Spec.Name)
	}
	if p.CPU == nil {
		return nil, fmt.Errorf("progmodel: %s has no CPU for the host side", p.Spec.Name)
	}
	r := &Result{Program: "apu-unified", Platform: p.Spec.Name}
	bytes := int64(n) * 8
	xAddr, err := p.DeviceMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	yAddr, err := p.DeviceMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	t := r.step("malloc", 0, sim.Microsecond)
	t = r.step("init", t, p.CPU.ExecuteParallel(t, initTask(p.DeviceMem, xAddr, n), 24))
	k := axpyKernel(xAddr, yAddr, n)
	done, err := p.GPU.Dispatch(t, k, n, 256, 0)
	if err != nil {
		return nil, err
	}
	t = r.step("kernel+sync", t, done)
	r.step("post", t, p.CPU.ExecuteParallel(t, postTask(n), 24))
	r.Verified = sumAndVerify(p.DeviceMem, yAddr, n)
	return r, nil
}

func copyHostToDevice(p *core.Platform, src, dst, n int64) {
	copySpaces(p, src, dst, n, true)
}

func copyDeviceToHost(p *core.Platform, src, dst, n int64) {
	copySpaces(p, src, dst, n, false)
}

func copySpaces(p *core.Platform, src, dst, n int64, toDevice bool) {
	buf := make([]byte, 64*1024)
	from, to := p.HostMem, p.DeviceMem
	if !toDevice {
		from, to = p.DeviceMem, p.HostMem
	}
	for off := int64(0); off < n; off += int64(len(buf)) {
		chunk := int64(len(buf))
		if off+chunk > n {
			chunk = n - off
		}
		from.Read(src+off, buf[:chunk])
		to.Write(dst+off, buf[:chunk])
	}
}
