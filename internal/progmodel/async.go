package progmodel

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// This file models the strongest version of the discrete-GPU programming
// model: asynchronous copies on dedicated DMA engines with double
// buffering (hipMemcpyAsync + streams), pipelining H2D copies, kernel
// execution, and D2H copies across chunks. This is the fairest
// comparison point for the APU — and the APU still wins, because the
// pipeline can at best hide min(copy, compute) while the APU removes the
// copies entirely.

// AsyncResult reports the pipelined run.
type AsyncResult struct {
	Result
	Chunks int
	// CopyExposed is the copy time NOT hidden by the pipeline.
	CopyExposed sim.Time
}

// RunDiscreteAsync executes the Fig. 14 computation on a discrete
// platform with chunked, double-buffered async copies: chunk i's H2D
// overlaps chunk i-1's kernel, which overlaps chunk i-2's D2H.
func RunDiscreteAsync(p *core.Platform, n, chunks int) (*AsyncResult, error) {
	if p.Spec.Memory != config.DiscreteMemory {
		return nil, fmt.Errorf("progmodel: async copies model a discrete platform")
	}
	if chunks <= 0 || n < chunks {
		return nil, fmt.Errorf("progmodel: bad chunking n=%d chunks=%d", n, chunks)
	}
	if per := (n + chunks - 1) / chunks; per%256 != 0 {
		return nil, fmt.Errorf("progmodel: chunk size %d must be a multiple of the 256-wide workgroup", per)
	}
	r := &AsyncResult{Chunks: chunks}
	r.Program = "discrete-async"
	r.Platform = p.Spec.Name
	c := hostCPU(p)
	bytes := int64(n) * 8

	hx, err := p.HostMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	hy, err := p.HostMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	dx, err := p.DeviceMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}
	dy, err := p.DeviceMem.Alloc(bytes, 4096)
	if err != nil {
		return nil, err
	}

	t := r.step("malloc+hipMalloc", 0, 2*sim.Microsecond)
	t = r.step("init(host)", t, c.ExecuteParallel(t, initTask(p.HostMem, hx, n), 24))

	// Functional transfer + compute (all chunks; data correctness is
	// independent of the pipelining).
	copyHostToDevice(p, hx, dx, bytes)
	k := axpyKernel(dx, dy, n)

	// Pipelined timing across three resources: the H2D DMA engine, the
	// GPU, and the D2H DMA engine. Each chunk flows through in order.
	per := (n + chunks - 1) / chunks
	chunkBytes := int64(per) * 8
	link := p.Spec.Host.LinkBW * 0.9
	copyTime := sim.FromSeconds(float64(chunkBytes) / link)

	var h2dFree, gpuFree, d2hFree sim.Time
	h2dFree, gpuFree, d2hFree = t, t, t
	var pipelineEnd sim.Time
	var kernelBusy sim.Time
	for i := 0; i < chunks; i++ {
		h2dDone := h2dFree + copyTime
		h2dFree = h2dDone

		// Kernel for this chunk starts when its data is resident and
		// the GPU is free.
		kStart := h2dDone
		if gpuFree > kStart {
			kStart = gpuFree
		}
		lo := i * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		kDone, err := p.GPU.Dispatch(kStart, kernelSlice(k, lo, hi), hi-lo, 256, 0)
		if err != nil {
			return nil, err
		}
		kernelBusy += kDone - kStart
		gpuFree = kDone

		dStart := kDone
		if d2hFree > dStart {
			dStart = d2hFree
		}
		d2hDone := dStart + copyTime
		d2hFree = d2hDone
		if d2hDone > pipelineEnd {
			pipelineEnd = d2hDone
		}
	}
	copyDeviceToHost(p, dy, hy, bytes)
	r.CopyBytes = 2 * bytes

	t = r.step("pipeline(h2d|kernel|d2h)", t, pipelineEnd)
	r.step("post(host)", t, c.ExecuteParallel(t, postTask(n), 24))
	r.Verified = sumAndVerify(p.HostMem, hy, n)
	// Exposed copy time: pipeline span minus the kernel busy time.
	span := pipelineEnd - (r.StepByName("pipeline(h2d|kernel|d2h)").Start)
	if span > kernelBusy {
		r.CopyExposed = span - kernelBusy
	}
	return r, nil
}

// kernelSlice adapts the axpy kernel to operate on [lo, hi) with
// dispatch-local workgroup IDs (lo must be workgroup-aligned).
func kernelSlice(k *gpu.KernelSpec, lo, hi int) *gpu.KernelSpec {
	sliced := *k
	inner := k.Body
	sliced.Body = func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
		// Re-base the workgroup ID so the body touches [lo, hi).
		inner(env, xcd, wgID+lo/wgSize, wgSize, kernarg)
	}
	_ = hi
	return &sliced
}
