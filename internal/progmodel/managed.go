package progmodel

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
)

// This file models the §VI.B contrast case: "some platforms provide the
// appearance of unified memory to the software (e.g., via page migration
// to transparently copy data between the CPU's DDR and the GPU's HBM)".
// The program looks like the APU version — one pointer, no explicit
// copies — but the runtime migrates 4 KB pages on demand, paying a fault
// cost per page plus the link transfer. MI300A "avoids such data movement
// overheads by matching the actual physical memory organization with the
// programmer's view."

// pageFaultOverhead is the runtime cost of servicing one page fault
// (interrupt, driver, TLB shootdown), on top of moving the page.
const pageFaultOverhead = 15 * sim.Microsecond

// migrationBatch is how many pages a modern driver migrates per fault
// (fault-ahead batching).
const migrationBatch = 16

// MigrationStats reports the page traffic of a managed-memory run.
type MigrationStats struct {
	PagesToDevice int64
	PagesToHost   int64
	Faults        int64
}

// RunManaged executes the same y = a*x + b program as Fig. 14 on a
// discrete platform with driver-managed page migration: allocation and
// initialization on the host, transparent page migration when the kernel
// first touches each page, and migration back when the CPU post-processes.
func RunManaged(p *core.Platform, n int) (*Result, *MigrationStats, error) {
	if p.Spec.Memory != config.DiscreteMemory {
		return nil, nil, fmt.Errorf("progmodel: managed memory models a discrete platform")
	}
	r := &Result{Program: "managed-migration", Platform: p.Spec.Name}
	st := &MigrationStats{}
	c := hostCPU(p)
	bytes := int64(n) * 8
	const page = 4096

	// One "pointer": backing starts on the host.
	hx, err := p.HostMem.Alloc(bytes, page)
	if err != nil {
		return nil, nil, err
	}
	hy, err := p.HostMem.Alloc(bytes, page)
	if err != nil {
		return nil, nil, err
	}
	dx, err := p.DeviceMem.Alloc(bytes, page)
	if err != nil {
		return nil, nil, err
	}
	dy, err := p.DeviceMem.Alloc(bytes, page)
	if err != nil {
		return nil, nil, err
	}

	t := r.step("managedMalloc", 0, sim.Microsecond)
	t = r.step("init(host pages)", t, c.ExecuteParallel(t, initTask(p.HostMem, hx, n), 24))

	// Kernel launch: the GPU faults in every x page (read) and every y
	// page (write allocate) on first touch.
	pages := (bytes + page - 1) / page
	migrate := func(start sim.Time, nPages int64, toDevice bool) sim.Time {
		st.Faults += (nPages + migrationBatch - 1) / migrationBatch
		if toDevice {
			st.PagesToDevice += nPages
		} else {
			st.PagesToHost += nPages
		}
		faultTime := sim.Time((nPages+migrationBatch-1)/migrationBatch) * pageFaultOverhead
		return p.HostLinkTransfer(start+faultTime, nPages*page, toDevice)
	}
	t = r.step("fault+migrate x,y H2D", t, migrate(t, 2*pages, true))
	copyHostToDevice(p, hx, dx, bytes)

	k := axpyKernel(dx, dy, n)
	done, err := p.GPU.Dispatch(t, k, n, 256, 0)
	if err != nil {
		return nil, nil, err
	}
	t = r.step("kernel+sync", t, done)

	// CPU post-processing touches y: pages migrate back.
	t = r.step("fault+migrate y D2H", t, migrate(t, pages, false))
	copyDeviceToHost(p, dy, hy, bytes)
	r.step("post(host)", t, c.ExecuteParallel(t, postTask(n), 24))
	r.CopyBytes = 3 * pages * page
	r.Verified = sumAndVerify(p.HostMem, hy, n)
	return r, st, nil
}
