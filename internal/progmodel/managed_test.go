package progmodel

import (
	"testing"

	"repro/internal/config"
)

func TestRunManagedVerifies(t *testing.T) {
	p := newPlatform(t, config.MI250X())
	r, st, err := RunManaged(p, testN)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Error("managed program computed wrong results")
	}
	pages := int64(testN) * 8 / 4096
	if st.PagesToDevice != 2*pages {
		t.Errorf("pages to device = %d, want %d (x and y)", st.PagesToDevice, 2*pages)
	}
	if st.PagesToHost != pages {
		t.Errorf("pages to host = %d, want %d (y back)", st.PagesToHost, pages)
	}
	if st.Faults <= 0 {
		t.Error("no faults recorded")
	}
}

func TestManagedSlowerThanExplicitCopies(t *testing.T) {
	// Page migration moves the same data as explicit hipMemcpy but pays
	// fault overhead on top — and it moves y twice (write-allocate H2D
	// plus the D2H readback).
	pm := newPlatform(t, config.MI250X())
	rm, _, err := RunManaged(pm, testN)
	if err != nil {
		t.Fatal(err)
	}
	pd := newPlatform(t, config.MI250X())
	rd, err := RunDiscrete(pd, testN)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Total <= rd.Total {
		t.Errorf("managed (%v) should be slower than explicit copies (%v)", rm.Total, rd.Total)
	}
}

func TestTrueUnifiedBeatsManaged(t *testing.T) {
	// The §VI.B punchline: the APU's physical unified memory beats the
	// "appearance of unified memory" by the full migration cost.
	apu := newPlatform(t, config.MI300A())
	ra, err := RunAPU(apu, testN)
	if err != nil {
		t.Fatal(err)
	}
	disc := newPlatform(t, config.MI250X())
	rm, _, err := RunManaged(disc, testN)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Total >= rm.Total {
		t.Errorf("APU (%v) should beat managed migration (%v)", ra.Total, rm.Total)
	}
	if ra.CopyBytes != 0 || rm.CopyBytes == 0 {
		t.Error("copy accounting wrong")
	}
}

func TestRunManagedRejectsAPU(t *testing.T) {
	p := newPlatform(t, config.MI300A())
	if _, _, err := RunManaged(p, testN); err == nil {
		t.Error("managed migration accepted a unified-memory platform")
	}
}

func TestRunDiscreteAsyncVerifiesAndPipelines(t *testing.T) {
	p := newPlatform(t, config.MI250X())
	r, err := RunDiscreteAsync(p, 1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Error("async program computed wrong results")
	}
	if r.StepByName("pipeline(h2d|kernel|d2h)") == nil {
		t.Fatal("pipeline step missing")
	}
}

func TestAsyncBeatsSyncDiscrete(t *testing.T) {
	pa := newPlatform(t, config.MI250X())
	ra, err := RunDiscreteAsync(pa, 1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	ps := newPlatform(t, config.MI250X())
	rs, err := RunDiscrete(ps, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Total >= rs.Total {
		t.Errorf("async (%v) should beat synchronous copies (%v)", ra.Total, rs.Total)
	}
}

func TestAPUStillBeatsAsyncPipeline(t *testing.T) {
	// The §VI.B bottom line: even perfectly pipelined copies lose to no
	// copies. The exposed copy time is the APU's structural advantage.
	apu := newPlatform(t, config.MI300A())
	rApu, err := RunAPU(apu, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	disc := newPlatform(t, config.MI250X())
	rAsync, err := RunDiscreteAsync(disc, 1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rApu.Total >= rAsync.Total {
		t.Errorf("APU (%v) should beat the async pipeline (%v)", rApu.Total, rAsync.Total)
	}
	if rAsync.CopyExposed <= 0 {
		t.Error("pipeline claims to hide all copy time; some must stay exposed")
	}
}

func TestRunDiscreteAsyncValidation(t *testing.T) {
	p := newPlatform(t, config.MI300A())
	if _, err := RunDiscreteAsync(p, 1<<20, 16); err == nil {
		t.Error("async on APU accepted")
	}
	d := newPlatform(t, config.MI250X())
	if _, err := RunDiscreteAsync(d, 1000, 3); err == nil {
		t.Error("misaligned chunking accepted")
	}
}
