package progmodel

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

const testN = 1 << 16

func newPlatform(t testing.TB, spec *config.PlatformSpec) *core.Platform {
	t.Helper()
	p, err := core.NewPlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCPUOnlyVerifies(t *testing.T) {
	p := newPlatform(t, config.MI300A())
	r, err := RunCPUOnly(p, testN)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Error("CPU-only program computed wrong results")
	}
	for _, name := range []string{"malloc", "init", "compute", "post"} {
		if r.StepByName(name) == nil {
			t.Errorf("missing step %q", name)
		}
	}
	if r.CopyBytes != 0 {
		t.Error("CPU-only program copied data")
	}
}

func TestRunDiscreteVerifiesAndCopies(t *testing.T) {
	p := newPlatform(t, config.MI250X())
	r, err := RunDiscrete(p, testN)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Error("discrete program computed wrong results")
	}
	// Fig. 14(b): both copies present and nonzero.
	h2d, d2h := r.StepByName("hipMemcpy H2D"), r.StepByName("hipMemcpy D2H")
	if h2d == nil || d2h == nil {
		t.Fatal("memcpy steps missing")
	}
	if h2d.Duration() <= 0 || d2h.Duration() <= 0 {
		t.Error("memcpy steps took no time")
	}
	if r.CopyBytes != 2*int64(testN)*8 {
		t.Errorf("CopyBytes = %d, want %d", r.CopyBytes, 2*testN*8)
	}
}

func TestRunAPUVerifiesNoCopies(t *testing.T) {
	p := newPlatform(t, config.MI300A())
	r, err := RunAPU(p, testN)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Error("APU program computed wrong results")
	}
	if r.StepByName("hipMemcpy H2D") != nil || r.CopyBytes != 0 {
		t.Error("APU program performed copies (§VI.B: zero copy)")
	}
}

func TestAPUBeatsDiscreteOnCopyHeavyProgram(t *testing.T) {
	// The headline Fig. 14 comparison: same computation, the discrete
	// platform pays two PCIe-bound copies that dominate this small
	// kernel; the APU does not.
	apu := newPlatform(t, config.MI300A())
	disc := newPlatform(t, config.MI250X())
	ra, err := RunAPU(apu, testN)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RunDiscrete(disc, testN)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Total >= rd.Total {
		t.Errorf("APU total %v not faster than discrete %v", ra.Total, rd.Total)
	}
	// Copies must be a visible fraction of the discrete total.
	copies := rd.StepByName("hipMemcpy H2D").Duration() + rd.StepByName("hipMemcpy D2H").Duration()
	if float64(copies)/float64(rd.Total) < 0.15 {
		t.Errorf("copies are %.2f of discrete total; expected substantial", float64(copies)/float64(rd.Total))
	}
}

func TestRunDiscreteRejectsAPU(t *testing.T) {
	p := newPlatform(t, config.MI300A())
	if _, err := RunDiscrete(p, testN); err == nil {
		t.Error("RunDiscrete accepted a unified-memory platform")
	}
	m := newPlatform(t, config.MI250X())
	if _, err := RunAPU(m, testN); err == nil {
		t.Error("RunAPU accepted a discrete platform")
	}
}

func TestRunOverlapFasterThanCoarse(t *testing.T) {
	p := newPlatform(t, config.MI300A())
	r, err := RunOverlap(p, 1<<18, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Error("overlap program corrupted data or lost flags")
	}
	if r.FlagsObserved != 32 {
		t.Errorf("flags observed = %d, want 32", r.FlagsObserved)
	}
	if r.Speedup <= 1.0 {
		t.Errorf("fine-grained speedup = %.2f, want > 1 (Fig. 15)", r.Speedup)
	}
	if r.FineTotal >= r.CoarseTotal {
		t.Error("fine-grained not faster")
	}
}

func TestRunOverlapValidation(t *testing.T) {
	p := newPlatform(t, config.MI300A())
	if _, err := RunOverlap(p, 10, 100); err == nil {
		t.Error("n < chunks accepted")
	}
	m := newPlatform(t, config.MI250X())
	if _, err := RunOverlap(m, 1000, 10); err == nil {
		t.Error("overlap on discrete platform accepted")
	}
}

func TestExpectedSumClosedForm(t *testing.T) {
	// Spot-check the verifier's closed form against a direct sum.
	n := 1000
	var direct float64
	for i := 0; i < n; i++ {
		direct += coefA*float64(i) + coefB
	}
	if got := expectedSum(n); got != direct {
		t.Errorf("expectedSum = %v, direct = %v", got, direct)
	}
}
