// Package kernels is a library of ready-made GPU kernels for the
// simulator: each couples a functional body (real loads/stores against
// the simulated memory) with the resource footprint the timing model
// needs. They serve as the built-in workload vocabulary for examples and
// tests, and as reference implementations of how to write kernels against
// the gpu.KernelSpec API.
package kernels

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/mem"
)

// VectorAXPY returns y = a*x + y over n float64 elements.
func VectorAXPY(a float64, xAddr, yAddr int64, n int) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:  "axpy",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem: 2, BytesReadPerItem: 16, BytesWrittenPerItem: 8,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, n)
			for i := lo; i < hi; i++ {
				x := env.Mem.ReadFloat64(xAddr + int64(i)*8)
				y := env.Mem.ReadFloat64(yAddr + int64(i)*8)
				env.Mem.WriteFloat64(yAddr+int64(i)*8, a*x+y)
			}
		},
	}
}

// Scale returns y = a*x over n float64 elements.
func Scale(a float64, xAddr, yAddr int64, n int) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:  "scale",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem: 1, BytesReadPerItem: 8, BytesWrittenPerItem: 8,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, n)
			for i := lo; i < hi; i++ {
				env.Mem.WriteFloat64(yAddr+int64(i)*8, a*env.Mem.ReadFloat64(xAddr+int64(i)*8))
			}
		},
	}
}

// ReductionSum returns a two-level sum reduction: each workgroup reduces
// its slice of x into partials[wgID]; Finish folds the partials. The
// partials buffer must hold ceil(n/wgSize) float64s.
func ReductionSum(xAddr, partialsAddr int64, n int) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:  "reduce-sum",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem: 1, BytesReadPerItem: 8, BytesWrittenPerItem: 0.1,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, n)
			var s float64
			for i := lo; i < hi; i++ {
				s += env.Mem.ReadFloat64(xAddr + int64(i)*8)
			}
			env.Mem.WriteFloat64(partialsAddr+int64(wgID)*8, s)
		},
	}
}

// FinishReduction folds workgroup partials on the host side (the small
// serial tail a real app would do on the CPU or with a second kernel).
func FinishReduction(space *mem.Space, partialsAddr int64, workgroups int) float64 {
	var s float64
	for i := 0; i < workgroups; i++ {
		s += space.ReadFloat64(partialsAddr + int64(i)*8)
	}
	return s
}

// Stencil2D returns a 5-point Jacobi sweep over an nx×ny float64 grid:
// dst[i,j] = (src[i,j] + src[i±1,j] + src[i,j±1]) / 5 for interior
// points; boundary rows/columns are copied. One work-item per row.
func Stencil2D(srcAddr, dstAddr int64, nx, ny int) *gpu.KernelSpec {
	idx := func(i, j int) int64 { return int64(j*nx+i) * 8 }
	return &gpu.KernelSpec{
		Name:  "stencil2d",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem:        5 * float64(nx),
		BytesReadPerItem:    3 * 8 * float64(nx), // three rows stream through L2
		BytesWrittenPerItem: 8 * float64(nx),
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, ny)
			for j := lo; j < hi; j++ {
				for i := 0; i < nx; i++ {
					if i == 0 || j == 0 || i == nx-1 || j == ny-1 {
						env.Mem.WriteFloat64(dstAddr+idx(i, j), env.Mem.ReadFloat64(srcAddr+idx(i, j)))
						continue
					}
					v := env.Mem.ReadFloat64(srcAddr+idx(i, j)) +
						env.Mem.ReadFloat64(srcAddr+idx(i-1, j)) +
						env.Mem.ReadFloat64(srcAddr+idx(i+1, j)) +
						env.Mem.ReadFloat64(srcAddr+idx(i, j-1)) +
						env.Mem.ReadFloat64(srcAddr+idx(i, j+1))
					env.Mem.WriteFloat64(dstAddr+idx(i, j), v/5)
				}
			}
		},
	}
}

// TiledGEMM returns C += A×B for n×n float64 matrices with one work-item
// per output row and tile-level L2 reuse declared to the scheduler: the
// B panel is re-read by every workgroup, so block scheduling keeps it
// resident in an XCD's L2.
func TiledGEMM(aAddr, bAddr, cAddr int64, n int) *gpu.KernelSpec {
	idx := func(r, c int) int64 { return int64(r*n+c) * 8 }
	panelBytes := int64(n) * 64 * 8 // one 64-column B panel
	return &gpu.KernelSpec{
		Name:  "dgemm",
		Class: config.Matrix, Dtype: config.FP64,
		FlopsPerItem:        2 * float64(n) * float64(n),
		BytesReadPerItem:    8 * float64(n) * 2,
		BytesWrittenPerItem: 8 * float64(n),
		TileBytes:           panelBytes,
		TileOf:              func(wgID int) int64 { return bAddr }, // all share the B panel
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, n)
			for r := lo; r < hi; r++ {
				for c := 0; c < n; c++ {
					var acc float64
					for k := 0; k < n; k++ {
						acc += env.Mem.ReadFloat64(aAddr+idx(r, k)) * env.Mem.ReadFloat64(bAddr+idx(k, c))
					}
					cur := env.Mem.ReadFloat64(cAddr + idx(r, c))
					env.Mem.WriteFloat64(cAddr+idx(r, c), cur+acc)
				}
			}
		},
	}
}

// Histogram returns a bucketed count of byte values: each work-item
// covers a span of input and accumulates into a private region, avoiding
// simulated atomics; Finish folds the per-workgroup histograms.
func Histogram(inAddr, outAddr int64, n, buckets, workgroups int) (*gpu.KernelSpec, error) {
	if buckets <= 0 || buckets > 256 {
		return nil, fmt.Errorf("kernels: %d buckets out of range", buckets)
	}
	return &gpu.KernelSpec{
		Name:  "histogram",
		Class: config.Vector, Dtype: config.INT8,
		FlopsPerItem: 2, BytesReadPerItem: 1, BytesWrittenPerItem: 0.1,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			per := (n + workgroups - 1) / workgroups
			lo := wgID * per
			hi := min(lo+per, n)
			base := outAddr + int64(wgID*buckets)*8
			buf := make([]byte, 4096)
			counts := make([]uint64, buckets)
			for off := lo; off < hi; off += len(buf) {
				chunk := min(len(buf), hi-off)
				env.Mem.Read(inAddr+int64(off), buf[:chunk])
				for _, b := range buf[:chunk] {
					counts[int(b)%buckets]++
				}
			}
			for b, c := range counts {
				env.Mem.WriteUint64(base+int64(b)*8, c)
			}
		},
	}, nil
}

// FinishHistogram folds per-workgroup histograms into a single bucket
// array.
func FinishHistogram(space *mem.Space, outAddr int64, buckets, workgroups int) []uint64 {
	total := make([]uint64, buckets)
	for wg := 0; wg < workgroups; wg++ {
		base := outAddr + int64(wg*buckets)*8
		for b := 0; b < buckets; b++ {
			total[b] += space.ReadUint64(base + int64(b)*8)
		}
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
