package kernels

import (
	"math"
	"testing"
)

func TestBuildCSRStencilStructure(t *testing.T) {
	_, s := rig(t)
	m, err := BuildCSRStencil(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: 2 entries; interior rows: 3; last row: 2.
	first := s.ReadUint32(m.RowPtr + 4)
	if first != 2 {
		t.Errorf("row 0 nnz = %d, want 2", first)
	}
	total := s.ReadUint32(m.RowPtr + 100*4)
	if total != 3*100-2 {
		t.Errorf("total nnz = %d, want 298", total)
	}
	if _, err := BuildCSRStencil(s, 1); err == nil {
		t.Error("degenerate matrix accepted")
	}
}

func TestSpMVMatchesReference(t *testing.T) {
	p, s := rig(t)
	const n = 5000
	m, err := BuildCSRStencil(s, n)
	if err != nil {
		t.Fatal(err)
	}
	x := alloc(t, s, n*8)
	y := alloc(t, s, n*8)
	xv := make([]float64, n)
	for i := range xv {
		xv[i] = float64(i%13) - 6
		s.WriteFloat64(x+int64(i)*8, xv[i])
	}
	dispatch(t, p, SpMV(m, x, y), n, 256)
	// Reference: tridiagonal [-1, 2, -1].
	for r := 0; r < n; r++ {
		want := 2 * xv[r]
		if r > 0 {
			want -= xv[r-1]
		}
		if r < n-1 {
			want -= xv[r+1]
		}
		if got := s.ReadFloat64(y + int64(r)*8); math.Abs(got-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", r, got, want)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	p, s := rig(t)
	const n = 96
	a := alloc(t, s, n*n*8)
	b := alloc(t, s, n*n*8)
	c := alloc(t, s, n*n*8)
	for i := 0; i < n*n; i++ {
		s.WriteFloat64(a+int64(i)*8, float64(i)*0.5)
	}
	dispatch(t, p, Transpose(a, b, n), n, 32)
	dispatch(t, p, Transpose(b, c, n), n, 32)
	// Transpose twice = identity.
	for i := 0; i < n*n; i++ {
		if got := s.ReadFloat64(c + int64(i)*8); got != float64(i)*0.5 {
			t.Fatalf("double transpose mismatch at %d", i)
		}
	}
	// Single transpose: B[c][r] = A[r][c].
	if got := s.ReadFloat64(b + int64(3*n+7)*8); got != s.ReadFloat64(a+int64(7*n+3)*8) {
		t.Error("transpose wrong")
	}
}

func TestExclusiveScanMatchesReference(t *testing.T) {
	p, s := rig(t)
	const n, wg = 10_000, 256
	in := alloc(t, s, n*8)
	out := alloc(t, s, n*8)
	partials := alloc(t, s, int64((n+wg-1)/wg)*8)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%7) + 0.25
		s.WriteFloat64(in+int64(i)*8, vals[i])
	}
	dispatch(t, p, ExclusiveScan(in, out, partials, n), n, wg)
	FinishScan(s, out, partials, n, wg)
	var run float64
	for i := 0; i < n; i++ {
		if got := s.ReadFloat64(out + int64(i)*8); math.Abs(got-run) > 1e-9 {
			t.Fatalf("scan[%d] = %v, want %v", i, got, run)
		}
		run += vals[i]
	}
}
