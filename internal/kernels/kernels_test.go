package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/mem"
)

// rig builds an MI300A platform and allocates a scratch region.
func rig(t testing.TB) (*core.Platform, *mem.Space) {
	t.Helper()
	p, err := core.NewPlatform(config.MI300A())
	if err != nil {
		t.Fatal(err)
	}
	return p, p.DeviceMem
}

func alloc(t testing.TB, s *mem.Space, n int64) int64 {
	t.Helper()
	a, err := s.Alloc(n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func dispatch(t testing.TB, p *core.Platform, k *gpu.KernelSpec, items, wg int) {
	t.Helper()
	if _, err := p.GPU.Dispatch(0, k, items, wg, 0); err != nil {
		t.Fatal(err)
	}
}

func TestVectorAXPY(t *testing.T) {
	p, s := rig(t)
	const n = 10_000
	x := alloc(t, s, n*8)
	y := alloc(t, s, n*8)
	for i := int64(0); i < n; i++ {
		s.WriteFloat64(x+i*8, float64(i))
		s.WriteFloat64(y+i*8, 1)
	}
	dispatch(t, p, VectorAXPY(2, x, y, n), n, 256)
	for i := int64(0); i < n; i++ {
		want := 2*float64(i) + 1
		if got := s.ReadFloat64(y + i*8); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestReductionSum(t *testing.T) {
	p, s := rig(t)
	const n, wg = 100_000, 256
	workgroups := (n + wg - 1) / wg
	x := alloc(t, s, n*8)
	partials := alloc(t, s, int64(workgroups)*8)
	var want float64
	for i := int64(0); i < n; i++ {
		v := float64(i%97) * 0.5
		s.WriteFloat64(x+i*8, v)
		want += v
	}
	dispatch(t, p, ReductionSum(x, partials, n), n, wg)
	got := FinishReduction(s, partials, workgroups)
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestStencil2DConvergesAndPreservesBoundary(t *testing.T) {
	p, s := rig(t)
	const nx, ny = 64, 64
	src := alloc(t, s, nx*ny*8)
	dst := alloc(t, s, nx*ny*8)
	idx := func(i, j int) int64 { return int64(j*nx+i) * 8 }
	// Hot boundary, cold interior.
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := 0.0
			if i == 0 || j == 0 || i == nx-1 || j == ny-1 {
				v = 100
			}
			s.WriteFloat64(src+idx(i, j), v)
		}
	}
	for sweep := 0; sweep < 4; sweep++ {
		dispatch(t, p, Stencil2D(src, dst, nx, ny), ny, 16)
		src, dst = dst, src
	}
	// Boundary intact.
	if got := s.ReadFloat64(src + idx(0, 10)); got != 100 {
		t.Errorf("boundary = %v, want 100", got)
	}
	// Interior near the boundary warmed up; deep interior still cooler.
	near := s.ReadFloat64(src + idx(1, 32))
	deep := s.ReadFloat64(src + idx(32, 32))
	if near <= deep {
		t.Errorf("heat did not diffuse inward: near=%v deep=%v", near, deep)
	}
	if near <= 0 {
		t.Error("near-boundary cell never heated")
	}
}

func TestTiledGEMMAgainstReference(t *testing.T) {
	p, s := rig(t)
	const n = 24
	a := alloc(t, s, n*n*8)
	b := alloc(t, s, n*n*8)
	c := alloc(t, s, n*n*8)
	idx := func(r, cc int) int64 { return int64(r*n+cc) * 8 }
	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	for i := range av {
		av[i] = float64(i%7) - 3
		bv[i] = float64(i%5) * 0.25
		s.WriteFloat64(a+int64(i)*8, av[i])
		s.WriteFloat64(b+int64(i)*8, bv[i])
	}
	dispatch(t, p, TiledGEMM(a, b, c, n), n, 8)
	for r := 0; r < n; r++ {
		for cc := 0; cc < n; cc++ {
			var want float64
			for k := 0; k < n; k++ {
				want += av[r*n+k] * bv[k*n+cc]
			}
			if got := s.ReadFloat64(c + idx(r, cc)); math.Abs(got-want) > 1e-9 {
				t.Fatalf("C[%d,%d] = %v, want %v", r, cc, got, want)
			}
		}
	}
}

func TestHistogramCountsEverything(t *testing.T) {
	p, s := rig(t)
	const n, buckets, wgs = 1 << 16, 16, 64
	in := alloc(t, s, n)
	out := alloc(t, s, int64(wgs*buckets)*8)
	data := make([]byte, n)
	ref := make([]uint64, buckets)
	for i := range data {
		data[i] = byte((i * 31) % 256)
		ref[int(data[i])%buckets]++
	}
	s.Write(in, data)
	k, err := Histogram(in, out, n, buckets, wgs)
	if err != nil {
		t.Fatal(err)
	}
	dispatch(t, p, k, wgs*256, 256)
	got := FinishHistogram(s, out, buckets, wgs)
	var total uint64
	for b := range got {
		if got[b] != ref[b] {
			t.Errorf("bucket %d = %d, want %d", b, got[b], ref[b])
		}
		total += got[b]
	}
	if total != n {
		t.Errorf("histogram total = %d, want %d", total, n)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := Histogram(0, 0, 10, 0, 1); err == nil {
		t.Error("0 buckets accepted")
	}
	if _, err := Histogram(0, 0, 10, 512, 1); err == nil {
		t.Error("512 buckets accepted")
	}
}

// Property: reduction of any random vector matches the serial sum.
func TestReductionMatchesSerialProperty(t *testing.T) {
	p, s := rig(t)
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		var want float64
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			clean = append(clean, v)
			want += v
		}
		if len(clean) == 0 {
			return true
		}
		x, err := s.Alloc(int64(len(clean))*8, 4096)
		if err != nil {
			return false
		}
		wgs := (len(clean) + 255) / 256
		partials, err := s.Alloc(int64(wgs)*8, 4096)
		if err != nil {
			return false
		}
		for i, v := range clean {
			s.WriteFloat64(x+int64(i)*8, v)
		}
		if _, err := p.GPU.Dispatch(0, ReductionSum(x, partials, len(clean)), len(clean), 256, 0); err != nil {
			return false
		}
		got := FinishReduction(s, partials, wgs)
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
