package kernels

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/mem"
)

// This file adds the memory-system-stressing kernels: CSR sparse
// matrix-vector multiply (the HPCG building block), matrix transpose (a
// worst case for row buffers and caches), and an exclusive prefix scan.

// CSRMatrix is a compressed-sparse-row matrix resident in simulated
// memory: rowPtr (n+1 × u32), colIdx (nnz × u32), values (nnz × f64).
type CSRMatrix struct {
	Rows   int
	RowPtr int64
	ColIdx int64
	Values int64
}

// BuildCSRStencil writes a 1-D 3-point stencil matrix (tridiagonal) into
// the space and returns its descriptor — a compact stand-in for the HPCG
// operator with verifiable structure.
func BuildCSRStencil(space *mem.Space, rows int) (*CSRMatrix, error) {
	if rows < 2 {
		return nil, fmt.Errorf("kernels: %d rows too small", rows)
	}
	nnz := 3*rows - 2
	rowPtr, err := space.Alloc(int64(rows+1)*4, 4096)
	if err != nil {
		return nil, err
	}
	colIdx, err := space.Alloc(int64(nnz)*4, 4096)
	if err != nil {
		return nil, err
	}
	values, err := space.Alloc(int64(nnz)*8, 4096)
	if err != nil {
		return nil, err
	}
	m := &CSRMatrix{Rows: rows, RowPtr: rowPtr, ColIdx: colIdx, Values: values}
	var ptr uint32
	for r := 0; r < rows; r++ {
		space.WriteUint32(rowPtr+int64(r)*4, ptr)
		put := func(c int, v float64) {
			space.WriteUint32(colIdx+int64(ptr)*4, uint32(c))
			space.WriteFloat64(values+int64(ptr)*8, v)
			ptr++
		}
		if r > 0 {
			put(r-1, -1)
		}
		put(r, 2)
		if r < rows-1 {
			put(r+1, -1)
		}
	}
	space.WriteUint32(rowPtr+int64(rows)*4, ptr)
	return m, nil
}

// SpMV returns y = A·x for a CSR matrix: one work-item per row, with the
// low arithmetic intensity (~0.17 flops/byte) that makes SpMV the
// canonical bandwidth-bound kernel.
func SpMV(m *CSRMatrix, xAddr, yAddr int64) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:  "spmv",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem:        6,  // ~3 nnz × 2 flops
		BytesReadPerItem:    44, // rowPtr + 3×(colIdx+value) + x gathers
		BytesWrittenPerItem: 8,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, m.Rows)
			for r := lo; r < hi; r++ {
				start := env.Mem.ReadUint32(m.RowPtr + int64(r)*4)
				end := env.Mem.ReadUint32(m.RowPtr + int64(r+1)*4)
				var acc float64
				for p := start; p < end; p++ {
					c := env.Mem.ReadUint32(m.ColIdx + int64(p)*4)
					v := env.Mem.ReadFloat64(m.Values + int64(p)*8)
					acc += v * env.Mem.ReadFloat64(xAddr+int64(c)*8)
				}
				env.Mem.WriteFloat64(yAddr+int64(r)*8, acc)
			}
		},
	}
}

// Transpose returns B = Aᵀ for an n×n float64 matrix, one work-item per
// row: the column-strided writes are the classic row-buffer/cache
// adversary.
func Transpose(aAddr, bAddr int64, n int) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:  "transpose",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem:        0.5, // address arithmetic only
		BytesReadPerItem:    8 * float64(n),
		BytesWrittenPerItem: 8 * float64(n),
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, n)
			for r := lo; r < hi; r++ {
				for c := 0; c < n; c++ {
					v := env.Mem.ReadFloat64(aAddr + int64(r*n+c)*8)
					env.Mem.WriteFloat64(bAddr+int64(c*n+r)*8, v)
				}
			}
		},
	}
}

// ExclusiveScan computes an exclusive prefix sum over n float64s using
// the two-level decomposition: a per-workgroup scan kernel plus a host
// fix-up pass (FinishScan). partials must hold ceil(n/wgSize) values.
func ExclusiveScan(inAddr, outAddr, partialsAddr int64, n int) *gpu.KernelSpec {
	return &gpu.KernelSpec{
		Name:  "scan",
		Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem: 2, BytesReadPerItem: 8, BytesWrittenPerItem: 8,
		Body: func(env *gpu.ExecEnv, xcd, wgID, wgSize int, kernarg int64) {
			lo := wgID * wgSize
			hi := min(lo+wgSize, n)
			var run float64
			for i := lo; i < hi; i++ {
				env.Mem.WriteFloat64(outAddr+int64(i)*8, run)
				run += env.Mem.ReadFloat64(inAddr + int64(i)*8)
			}
			env.Mem.WriteFloat64(partialsAddr+int64(wgID)*8, run)
		},
	}
}

// FinishScan applies the across-workgroup offsets (second level of the
// scan), completing the exclusive prefix sum in place.
func FinishScan(space *mem.Space, outAddr, partialsAddr int64, n, wgSize int) {
	workgroups := (n + wgSize - 1) / wgSize
	var offset float64
	for wg := 0; wg < workgroups; wg++ {
		if wg > 0 {
			lo := wg * wgSize
			hi := min(lo+wgSize, n)
			for i := lo; i < hi; i++ {
				v := space.ReadFloat64(outAddr + int64(i)*8)
				space.WriteFloat64(outAddr+int64(i)*8, v+offset)
			}
		}
		offset += space.ReadFloat64(partialsAddr + int64(wg)*8)
	}
}
