package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func TestMI300AModes(t *testing.T) {
	modes := ModesFor(config.MI300A())
	if len(modes) != 2 {
		t.Fatalf("MI300A modes = %v, want SPX and TPX (Fig. 17a)", modes)
	}
	if modes[0].Name != "SPX" || modes[0].Partitions != 1 || modes[0].XCDsPer != 6 {
		t.Errorf("SPX = %v", modes[0])
	}
	if modes[1].Name != "TPX" || modes[1].Partitions != 3 || modes[1].XCDsPer != 2 {
		t.Errorf("TPX = %v", modes[1])
	}
}

func TestMI300XModes(t *testing.T) {
	modes := ModesFor(config.MI300X())
	// "partitioned in powers of two from a single unified partition down
	// to eight separate partitions" (Fig. 17b).
	want := map[string]int{"SPX": 1, "DPX": 2, "QPX": 4, "CPX": 8}
	if len(modes) != 4 {
		t.Fatalf("MI300X modes = %v", modes)
	}
	for _, m := range modes {
		if want[m.Name] != m.Partitions {
			t.Errorf("mode %v unexpected", m)
		}
		if m.Partitions*m.XCDsPer != 8 {
			t.Errorf("mode %v does not cover 8 XCDs", m)
		}
	}
}

func TestNPSModes(t *testing.T) {
	if got := NPSModesFor(config.MI300A()); len(got) != 1 || got[0] != NPS1 {
		t.Errorf("MI300A NPS modes = %v, want [NPS1] (§VIII)", got)
	}
	if got := NPSModesFor(config.MI300X()); len(got) != 2 {
		t.Errorf("MI300X NPS modes = %v, want [NPS1 NPS4]", got)
	}
}

func TestConfigureValid(t *testing.T) {
	cases := []struct {
		spec *config.PlatformSpec
		mode string
		nps  NPS
	}{
		{config.MI300A(), "SPX", NPS1},
		{config.MI300A(), "TPX", NPS1},
		{config.MI300X(), "SPX", NPS1},
		{config.MI300X(), "CPX", NPS4},
		{config.MI300X(), "QPX", NPS4},
	}
	for _, c := range cases {
		cfg, err := Configure(c.spec, c.mode, c.nps)
		if err != nil {
			t.Errorf("%s/%s/%s: %v", c.spec.Name, c.mode, c.nps, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s/%s: invalid config: %v", c.spec.Name, c.mode, err)
		}
	}
}

func TestConfigureRejectsInvalid(t *testing.T) {
	if _, err := Configure(config.MI300A(), "CPX", NPS1); err == nil {
		t.Error("MI300A CPX accepted")
	}
	if _, err := Configure(config.MI300A(), "SPX", NPS4); err == nil {
		t.Error("MI300A NPS4 accepted (§VIII: APU is NPS1 only)")
	}
	if _, err := Configure(config.MI300X(), "TPX", NPS1); err == nil {
		t.Error("MI300X TPX accepted")
	}
}

func TestVFsMapOneToOne(t *testing.T) {
	cfg, err := Configure(config.MI300X(), "CPX", NPS1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.VFs) != 8 {
		t.Fatalf("VFs = %d, want 8 (SR-IOV per partition)", len(cfg.VFs))
	}
	for i, vf := range cfg.VFs {
		if vf.Partition != i {
			t.Errorf("VF %d bound to partition %d", i, vf.Partition)
		}
	}
}

func TestResourceShares(t *testing.T) {
	spx, _ := Configure(config.MI300A(), "SPX", NPS1)
	tpx, _ := Configure(config.MI300A(), "TPX", NPS1)
	if spx.CUsPerPartition() != 228 {
		t.Errorf("SPX CUs = %d, want 228", spx.CUsPerPartition())
	}
	if tpx.CUsPerPartition() != 76 {
		t.Errorf("TPX CUs = %d, want 76", tpx.CUsPerPartition())
	}
	if spx.BWPerPartition() != config.MI300A().PeakMemoryBW() {
		t.Error("SPX should own full bandwidth")
	}
	if got, want := tpx.BWPerPartition(), config.MI300A().PeakMemoryBW()/3; got != want {
		t.Errorf("TPX BW share = %g, want %g", got, want)
	}
	// NPS1 uniform interleave: one NUMA domain covering all memory.
	if spx.MemoryPerDomain != config.MI300A().MemoryCapacity() {
		t.Error("NPS1 domain should cover full capacity")
	}
	x4, _ := Configure(config.MI300X(), "QPX", NPS4)
	if x4.MemoryPerDomain != config.MI300X().MemoryCapacity()/4 {
		t.Error("NPS4 domain should be a quarter of capacity")
	}
	if x4.BWPerPartition() != config.MI300X().PeakMemoryBW()/4 {
		t.Error("QPX+NPS4 partition should own a dedicated quarter of BW")
	}
}

// Property: every supported (mode, nps) combination yields a config whose
// partitions exactly tile the XCDs.
func TestConfigureTilingProperty(t *testing.T) {
	specs := []*config.PlatformSpec{config.MI300A(), config.MI300X()}
	f := func(si, mi, ni uint8) bool {
		spec := specs[int(si)%len(specs)]
		modes := ModesFor(spec)
		npss := NPSModesFor(spec)
		m := modes[int(mi)%len(modes)]
		n := npss[int(ni)%len(npss)]
		cfg, err := Configure(spec, m.Name, n)
		if err != nil {
			return false
		}
		return cfg.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
