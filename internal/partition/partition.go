// Package partition implements the compute and memory partitioning modes
// of §VIII (Fig. 17): MI300A's six XCDs run as one device (SPX) or three
// partitions (TPX), always with a single uniformly-interleaved NUMA domain
// (NPS1); the XCD-only MI300X additionally partitions in powers of two
// down to one XCD per partition (CPX) and can subdivide memory into four
// NUMA domains (NPS4), which maps naturally onto PCIe SR-IOV virtual
// functions for multi-tenant deployments.
package partition

import (
	"fmt"

	"repro/internal/config"
)

// Mode is one compute-partitioning option.
type Mode struct {
	Name       string
	Partitions int
	XCDsPer    int
}

// String renders the mode.
func (m Mode) String() string {
	return fmt.Sprintf("%s (%d×%d XCDs)", m.Name, m.Partitions, m.XCDsPer)
}

// NPS is a memory NUMA-domain configuration.
type NPS int

const (
	// NPS1 interleaves the whole HBM space uniformly: one NUMA domain
	// per socket.
	NPS1 NPS = 1
	// NPS4 subdivides the memory space into four NUMA domains per socket.
	NPS4 NPS = 4
)

// String names the NPS mode.
func (n NPS) String() string { return fmt.Sprintf("NPS%d", int(n)) }

// ModesFor reports the compute partition modes a platform supports.
// MI300A: SPX, TPX. MI300X: SPX, DPX, QPX, CPX (powers of two).
func ModesFor(spec *config.PlatformSpec) []Mode {
	switch {
	case spec.CCDs > 0:
		// APU: "the six XCDs can be used as a single compute device or
		// as three separate partitions" (§VIII).
		return []Mode{
			{Name: "SPX", Partitions: 1, XCDsPer: spec.XCDs},
			{Name: "TPX", Partitions: 3, XCDsPer: spec.XCDs / 3},
		}
	default:
		var modes []Mode
		names := map[int]string{1: "SPX", 2: "DPX", 4: "QPX", 8: "CPX"}
		for n := 1; n <= spec.XCDs; n *= 2 {
			if spec.XCDs%n != 0 {
				continue
			}
			name := names[n]
			if name == "" {
				name = fmt.Sprintf("P%d", n)
			}
			modes = append(modes, Mode{Name: name, Partitions: n, XCDsPer: spec.XCDs / n})
		}
		return modes
	}
}

// NPSModesFor reports the memory modes a platform supports: MI300A is
// NPS1-only; MI300X supports NPS1 and NPS4.
func NPSModesFor(spec *config.PlatformSpec) []NPS {
	if spec.CCDs > 0 {
		return []NPS{NPS1}
	}
	return []NPS{NPS1, NPS4}
}

// VF is a PCIe SR-IOV virtual function bound to one compute partition.
type VF struct {
	Index     int
	Partition int
}

// Config is a validated partitioning configuration.
type Config struct {
	Platform *config.PlatformSpec
	Mode     Mode
	NPS      NPS
	// Assignments[p] lists the XCD indices of partition p, contiguous so
	// partition XCDs share IODs where possible.
	Assignments [][]int
	// VFs maps one SR-IOV virtual function per partition.
	VFs []VF
	// MemoryPerDomain is bytes per NUMA domain.
	MemoryPerDomain int64
}

// Configure validates and builds a partitioning configuration.
func Configure(spec *config.PlatformSpec, modeName string, nps NPS) (*Config, error) {
	var mode Mode
	found := false
	for _, m := range ModesFor(spec) {
		if m.Name == modeName {
			mode, found = m, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("partition: %s does not support mode %q", spec.Name, modeName)
	}
	npsOK := false
	for _, n := range NPSModesFor(spec) {
		if n == nps {
			npsOK = true
			break
		}
	}
	if !npsOK {
		return nil, fmt.Errorf("partition: %s does not support %s", spec.Name, nps)
	}
	if nps == NPS4 && spec.HBM.Stacks%4 != 0 {
		return nil, fmt.Errorf("partition: NPS4 requires stacks divisible by 4, have %d", spec.HBM.Stacks)
	}
	c := &Config{
		Platform:        spec,
		Mode:            mode,
		NPS:             nps,
		MemoryPerDomain: spec.MemoryCapacity() / int64(nps),
	}
	for p := 0; p < mode.Partitions; p++ {
		xcds := make([]int, 0, mode.XCDsPer)
		for i := 0; i < mode.XCDsPer; i++ {
			xcds = append(xcds, p*mode.XCDsPer+i)
		}
		c.Assignments = append(c.Assignments, xcds)
		c.VFs = append(c.VFs, VF{Index: p, Partition: p})
	}
	return c, nil
}

// Validate re-checks structural invariants (used by property tests).
func (c *Config) Validate() error {
	seen := map[int]bool{}
	for p, xcds := range c.Assignments {
		if len(xcds) != c.Mode.XCDsPer {
			return fmt.Errorf("partition %d has %d XCDs, want %d", p, len(xcds), c.Mode.XCDsPer)
		}
		for _, x := range xcds {
			if x < 0 || x >= c.Platform.XCDs {
				return fmt.Errorf("partition %d references XCD %d of %d", p, x, c.Platform.XCDs)
			}
			if seen[x] {
				return fmt.Errorf("XCD %d in multiple partitions", x)
			}
			seen[x] = true
		}
	}
	if len(seen) != c.Platform.XCDs {
		return fmt.Errorf("partitions cover %d of %d XCDs", len(seen), c.Platform.XCDs)
	}
	if len(c.VFs) != c.Mode.Partitions {
		return fmt.Errorf("%d VFs for %d partitions", len(c.VFs), c.Mode.Partitions)
	}
	return nil
}

// CUsPerPartition reports enabled CUs available to each partition.
func (c *Config) CUsPerPartition() int {
	return c.Mode.XCDsPer * c.Platform.XCD.EnabledCUs
}

// BWPerPartition reports the HBM bandwidth share per partition: with NPS1
// every partition interleaves over the whole memory system; with NPS4
// each domain owns a quarter of the channels.
func (c *Config) BWPerPartition() float64 {
	total := c.Platform.PeakMemoryBW()
	if c.NPS == NPS1 {
		return total / float64(c.Mode.Partitions)
	}
	// NPS4: partitions map onto domains; each domain has stacks/4 of
	// the bandwidth dedicated (no cross-tenant interference).
	perDomain := total / 4
	partsPerDomain := c.Mode.Partitions / 4
	if partsPerDomain < 1 {
		partsPerDomain = 1
	}
	return perDomain / float64(partsPerDomain)
}
