package hsa

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func dispatch(name string, grid, wg int) Packet {
	return Packet{
		Type:       PacketKernelDispatch,
		KernelName: name,
		Grid:       Dim3{grid, 1, 1},
		Workgroup:  Dim3{wg, 1, 1},
	}
}

func TestQueueEnqueueDequeue(t *testing.T) {
	q := NewQueue("q0", 8)
	var doorbells []uint64
	q.Doorbell = func(w uint64) { doorbells = append(doorbells, w) }
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(dispatch("k", 1024, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Depth() != 3 {
		t.Errorf("Depth = %d", q.Depth())
	}
	if len(doorbells) != 3 || doorbells[2] != 3 {
		t.Errorf("doorbells = %v", doorbells)
	}
	p, ok := q.Peek()
	if !ok || p.KernelName != "k" {
		t.Fatal("Peek failed")
	}
	q.Advance()
	if q.Depth() != 2 {
		t.Errorf("Depth after advance = %d", q.Depth())
	}
}

func TestQueueFull(t *testing.T) {
	q := NewQueue("q", 2)
	q.Enqueue(dispatch("a", 64, 64))
	q.Enqueue(dispatch("b", 64, 64))
	if err := q.Enqueue(dispatch("c", 64, 64)); err != ErrQueueFull {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue("q", 4)
	for round := 0; round < 10; round++ {
		if err := q.Enqueue(dispatch("k", 64, 64)); err != nil {
			t.Fatal(err)
		}
		if _, ok := q.Peek(); !ok {
			t.Fatal("Peek after enqueue failed")
		}
		q.Advance()
	}
	if q.Depth() != 0 {
		t.Errorf("Depth = %d after balanced ops", q.Depth())
	}
	if q.WriteIndex() != 10 || q.ReadIndex() != 10 {
		t.Errorf("indices = %d/%d, want 10/10", q.WriteIndex(), q.ReadIndex())
	}
}

func TestQueueAt(t *testing.T) {
	q := NewQueue("q", 8)
	q.Enqueue(dispatch("a", 64, 64))
	q.Enqueue(dispatch("b", 64, 64))
	p, ok := q.At(1)
	if !ok || p.KernelName != "b" {
		t.Errorf("At(1) = %v, %v", p.KernelName, ok)
	}
	if _, ok := q.At(2); ok {
		t.Error("At(writeIdx) should fail")
	}
	q.Advance()
	if _, ok := q.At(0); ok {
		t.Error("At(retired) should fail")
	}
}

func TestQueueAdvanceEmptyPanics(t *testing.T) {
	q := NewQueue("q", 2)
	defer func() {
		if recover() == nil {
			t.Error("Advance on empty queue did not panic")
		}
	}()
	q.Advance()
}

func TestQueueCapacityMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 3 did not panic")
		}
	}()
	NewQueue("q", 3)
}

func TestPacketValidate(t *testing.T) {
	p := dispatch("k", 1024, 256)
	if err := p.Validate(); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	bad := p
	bad.Grid[0] = 0
	if bad.Validate() == nil {
		t.Error("zero grid accepted")
	}
	bad = p
	bad.Workgroup = Dim3{2048, 1, 1}
	if bad.Validate() == nil {
		t.Error("oversized workgroup accepted")
	}
	barrier := Packet{Type: PacketBarrierAnd}
	if barrier.Validate() != nil {
		t.Error("barrier packet rejected")
	}
}

func TestPacketWorkgroups(t *testing.T) {
	cases := []struct {
		grid, wg Dim3
		want     int
	}{
		{Dim3{1024, 1, 1}, Dim3{256, 1, 1}, 4},
		{Dim3{1000, 1, 1}, Dim3{256, 1, 1}, 4}, // rounds up
		{Dim3{64, 64, 1}, Dim3{16, 16, 1}, 16},
		{Dim3{1, 1, 1}, Dim3{256, 1, 1}, 1},
	}
	for _, c := range cases {
		p := Packet{Grid: c.grid, Workgroup: c.wg}
		if got := p.Workgroups(); got != c.want {
			t.Errorf("Workgroups(%v/%v) = %d, want %d", c.grid, c.wg, got, c.want)
		}
	}
}

func TestSignalSemantics(t *testing.T) {
	s := NewSignal("done", 6) // one decrement per XCD in a partition
	for i := 0; i < 6; i++ {
		s.Sub(sim.Time(i+1)*sim.Microsecond, 1)
	}
	done, at := s.Reached(0)
	if !done {
		t.Fatal("signal did not reach 0")
	}
	if at != 6*sim.Microsecond {
		t.Errorf("completion time = %v, want 6µs (last decrement)", at)
	}
}

func TestSignalSetTimeMonotonic(t *testing.T) {
	s := NewSignal("s", 0)
	s.Set(10*sim.Microsecond, 1)
	s.Set(5*sim.Microsecond, 2) // out-of-order set must not move time back
	if s.SetTime() != 10*sim.Microsecond {
		t.Errorf("SetTime = %v", s.SetTime())
	}
	if s.Value() != 2 {
		t.Errorf("Value = %d", s.Value())
	}
}

// Property: depth always equals writes minus retires and never exceeds
// capacity.
func TestQueueDepthInvariantProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewQueue("p", 16)
		var w, r int
		for _, enq := range ops {
			if enq {
				if q.Enqueue(dispatch("k", 64, 64)) == nil {
					w++
				}
			} else if q.Depth() > 0 {
				q.Advance()
				r++
			}
			if q.Depth() != w-r || q.Depth() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
