// Package hsa models the Heterogeneous System Architecture user-mode
// queueing interface that MI300A exposes to software (§VI.A): user-mode
// visible queues filled with Architected Queueing Language (AQL) packets,
// doorbells that notify the packet processors, and completion signals.
// AQL packets deliberately describe a high-level goal ("launch kernel X
// with Y workgroups of Z threads") rather than register-level programming —
// this is exactly the property that lets the ACEs on multiple XCDs
// cooperatively pick up one packet and each launch a subset of it.
package hsa

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/spans"
)

// PacketType enumerates the AQL packet kinds the model supports.
type PacketType int

const (
	// PacketKernelDispatch launches a compute kernel.
	PacketKernelDispatch PacketType = iota
	// PacketBarrierAnd blocks queue processing until its dependency
	// signals reach zero.
	PacketBarrierAnd
)

// String names the packet type.
func (p PacketType) String() string {
	switch p {
	case PacketKernelDispatch:
		return "kernel_dispatch"
	case PacketBarrierAnd:
		return "barrier_and"
	default:
		return fmt.Sprintf("PacketType(%d)", int(p))
	}
}

// Dim3 is a three-dimensional size.
type Dim3 [3]int

// Count reports the product of dimensions.
func (d Dim3) Count() int { return d[0] * d[1] * d[2] }

// Packet is an AQL packet. KernelObject is an opaque payload interpreted
// by the GPU model (a compiled kernel in real hardware).
type Packet struct {
	Type          PacketType
	KernelName    string
	Grid          Dim3 // total work-items
	Workgroup     Dim3 // work-items per workgroup
	KernelObject  any
	KernargAddr   int64 // address of kernel arguments in memory
	Completion    *Signal
	BarrierDeps   []*Signal // for PacketBarrierAnd
	GroupSegBytes int64     // LDS bytes per workgroup
	// Span carries the producer's tracing context across the queue: when
	// the enqueuing side opened a dispatch root span, the packet processor
	// records its decode/execute/sync stages under it instead of opening a
	// second root. The zero value means "no context" and costs nothing.
	Span spans.Ref
}

// Workgroups reports how many workgroups the dispatch launches (grid
// rounded up to whole workgroups per dimension).
func (p *Packet) Workgroups() int {
	n := 1
	for i := 0; i < 3; i++ {
		g, w := p.Grid[i], p.Workgroup[i]
		if g <= 0 {
			g = 1
		}
		if w <= 0 {
			w = 1
		}
		n *= (g + w - 1) / w
	}
	return n
}

// Validate checks dispatch packet well-formedness.
func (p *Packet) Validate() error {
	if p.Type == PacketBarrierAnd {
		return nil
	}
	for i := 0; i < 3; i++ {
		if p.Grid[i] <= 0 {
			return fmt.Errorf("hsa: grid dim %d is %d", i, p.Grid[i])
		}
		if p.Workgroup[i] <= 0 {
			return fmt.Errorf("hsa: workgroup dim %d is %d", i, p.Workgroup[i])
		}
	}
	if p.Workgroup.Count() > 1024 {
		return fmt.Errorf("hsa: workgroup size %d exceeds 1024", p.Workgroup.Count())
	}
	return nil
}

// Signal is an HSA signal: a 64-bit value decremented/set by producers and
// observed by consumers. SetTime records when the final transition to the
// observed value occurred in simulated time, so hosts can compute when a
// wait would have returned.
type Signal struct {
	Name    string
	value   int64
	setTime sim.Time
	// decs counts Sub calls — the "response" side of completion-signal
	// accounting. For a signal armed at N and consumed to zero purely by
	// completion decrements, decs must equal N at drain.
	decs uint64
}

// NewSignal returns a signal with the given initial value.
func NewSignal(name string, initial int64) *Signal {
	return &Signal{Name: name, value: initial}
}

// Value reports the current value.
func (s *Signal) Value() int64 { return s.value }

// SetTime reports when the value last changed.
func (s *Signal) SetTime() sim.Time { return s.setTime }

// Set stores v at simulated time t.
func (s *Signal) Set(t sim.Time, v int64) {
	s.value = v
	if t > s.setTime {
		s.setTime = t
	}
}

// Sub subtracts d at simulated time t (the typical completion decrement).
func (s *Signal) Sub(t sim.Time, d int64) {
	s.value -= d
	s.decs++
	if t > s.setTime {
		s.setTime = t
	}
}

// Decrements reports how many Sub calls the signal has absorbed.
func (s *Signal) Decrements() uint64 { return s.decs }

// Reached reports whether the signal is at or below target, and when the
// transition happened.
func (s *Signal) Reached(target int64) (bool, sim.Time) {
	return s.value <= target, s.setTime
}

// Queue is a user-mode AQL queue: a power-of-two ring of packets with
// separate read/write indices, matching the HSA memory layout semantics.
// Doorbell, if set, is invoked on every enqueue with the new write index —
// this is how the packet processors (ACEs) learn about work.
type Queue struct {
	Name     string
	ring     []Packet
	mask     uint64
	writeIdx uint64
	readIdx  uint64
	Doorbell func(writeIdx uint64)
}

// ErrQueueFull is returned when the ring has no free slots.
var ErrQueueFull = errors.New("hsa: queue full")

// NewQueue returns a queue with the given power-of-two capacity.
func NewQueue(name string, capacity int) *Queue {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("hsa: invariant violated: AQL ring capacity must be a power of two for index masking (got %d)", capacity))
	}
	return &Queue{Name: name, ring: make([]Packet, capacity), mask: uint64(capacity - 1)}
}

// CheckRing validates the ring-index invariants the HSA memory layout
// depends on: the consumer never passes the producer and the occupancy
// never exceeds the ring. A violation means an Advance/Enqueue pairing
// bug, reported as (want, got) pairs by the audit layer.
func (q *Queue) CheckRing() error {
	if q.writeIdx < q.readIdx {
		return fmt.Errorf("hsa: queue %s read index %d passed write index %d", q.Name, q.readIdx, q.writeIdx)
	}
	if d := q.Depth(); d > len(q.ring) {
		return fmt.Errorf("hsa: queue %s depth %d exceeds capacity %d", q.Name, d, len(q.ring))
	}
	return nil
}

// Capacity reports the ring size.
func (q *Queue) Capacity() int { return len(q.ring) }

// Depth reports packets currently queued.
func (q *Queue) Depth() int { return int(q.writeIdx - q.readIdx) }

// WriteIndex reports the producer index.
func (q *Queue) WriteIndex() uint64 { return q.writeIdx }

// ReadIndex reports the consumer index.
func (q *Queue) ReadIndex() uint64 { return q.readIdx }

// Enqueue validates and submits a packet, ringing the doorbell.
func (q *Queue) Enqueue(p Packet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if q.Depth() == len(q.ring) {
		return ErrQueueFull
	}
	q.ring[q.writeIdx&q.mask] = p
	q.writeIdx++
	if q.Doorbell != nil {
		q.Doorbell(q.writeIdx)
	}
	return nil
}

// Peek returns the packet at the read index without consuming it. The
// multi-XCD dispatch protocol depends on this: an ACE in each XCD of a
// partition reads the same packet (§VI.A step ①).
func (q *Queue) Peek() (Packet, bool) {
	if q.Depth() == 0 {
		return Packet{}, false
	}
	return q.ring[q.readIdx&q.mask], true
}

// At returns the packet at absolute index idx, which must be in
// [readIdx, writeIdx).
func (q *Queue) At(idx uint64) (Packet, bool) {
	if idx < q.readIdx || idx >= q.writeIdx {
		return Packet{}, false
	}
	return q.ring[idx&q.mask], true
}

// Advance retires the packet at the read index (done once per packet by
// the nominated ACE after all XCDs complete their subsets).
func (q *Queue) Advance() {
	if q.Depth() == 0 {
		panic(fmt.Sprintf("hsa: invariant violated: Advance on empty queue %s (read index must stay behind write index)", q.Name))
	}
	q.readIdx++
}
