package sim

import "fmt"

// RNG is a small, fast, deterministic xorshift64* pseudo-random generator.
// Simulations must not use math/rand's global source: every run in this
// repository is reproducible from an explicit seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped, since an
// all-zero xorshift state is absorbing).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	return &RNG{state: seed}
}

// Fork derives an independent generator from r, consuming one draw from r.
// Distinct salts give decorrelated streams, so subsystems (e.g. individual
// fault injectors) can each own a stream whose sequence does not shift when
// an unrelated subsystem draws more or fewer values.
func (r *RNG) Fork(salt uint64) *RNG {
	return NewRNG(r.Uint64() ^ (salt+1)*0x9E3779B97F4A7C15)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sim: invariant violated: Intn needs a positive bound (got %d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns an approximately standard-normal value using the sum of 12
// uniforms (Irwin-Hall), which is plenty for workload jitter modeling.
func (r *RNG) Norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
