package sim

import "testing"

// The past-horizon contract, pinned: Run with a deadline behind the
// clock and AdvanceTo with a past instant are both no-ops. They never
// rewind the clock, never fire events, and are idempotent — consistent
// with each other, and distinct from Schedule into the past, which stays
// a panic (a causality bug, not a clamp).

func TestEngineRunPastDeadlineIsNoOp(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		eng.ScheduleNamed("tick", at, func(Time) { fired = append(fired, at) })
	}
	if n := eng.Run(20); n != 2 {
		t.Fatalf("Run(20) fired %d events, want 2", n)
	}
	for _, deadline := range []Time{0, 5, 19, 20} {
		if n := eng.Run(deadline); n != 0 {
			t.Fatalf("Run(%v) with clock at %v fired %d events, want 0", deadline, eng.Now(), n)
		}
		if eng.Now() != 20 {
			t.Fatalf("Run(%v) moved the clock to %v, want it pinned at 20", deadline, eng.Now())
		}
	}
	if len(fired) != 2 {
		t.Fatalf("past-deadline runs fired events: %v", fired)
	}
	// The engine still works afterward.
	if n := eng.Run(30); n != 1 {
		t.Fatalf("Run(30) after no-op runs fired %d events, want 1", n)
	}
}

func TestEngineAdvanceToPastIsNoOp(t *testing.T) {
	eng := NewEngine()
	eng.ScheduleNamed("tick", 50, func(Time) {})
	eng.AdvanceTo(40)
	if eng.Now() != 40 {
		t.Fatalf("AdvanceTo(40) left clock at %v", eng.Now())
	}
	for _, at := range []Time{0, 39, 40} {
		eng.AdvanceTo(at)
		if eng.Now() != 40 {
			t.Fatalf("AdvanceTo(%v) moved the clock to %v, want it pinned at 40", at, eng.Now())
		}
	}
	if eng.Pending() != 1 {
		t.Fatalf("no-op AdvanceTo disturbed the queue: %d pending, want 1", eng.Pending())
	}
	// Forward motion still works, and still refuses to skip pending work.
	eng.RunAll()
	if eng.Now() != 50 {
		t.Fatalf("RunAll ended at %v, want 50", eng.Now())
	}
}

func TestEngineQuiescent(t *testing.T) {
	eng := NewEngine()
	if !eng.Quiescent() {
		t.Fatal("empty engine is not quiescent")
	}
	eng.ScheduleNamed("tick", 10, func(Time) {})
	if eng.Quiescent() {
		t.Fatal("engine with a live pending event reports quiescent")
	}
	ev := eng.ScheduleNamed("sentinel", Forever, func(Time) {})
	eng.Run(10)
	if !eng.Quiescent() {
		t.Fatal("engine with only a Forever sentinel left is not quiescent")
	}
	eng.Cancel(ev)
	if !eng.Quiescent() {
		t.Fatal("drained engine is not quiescent")
	}
}
