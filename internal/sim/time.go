package sim

import (
	"fmt"
	"math"
)

// Time is a simulated timestamp in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond

	// Forever is a sentinel meaning "no deadline".
	Forever Time = math.MaxInt64
)

// Seconds converts t to floating-point seconds, for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds, for reporting.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds converts t to floating-point microseconds, for reporting.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds converts t to floating-point milliseconds, for reporting.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "∞"
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts floating-point seconds to a Time, saturating at
// Forever for non-finite or out-of-range inputs.
func FromSeconds(s float64) Time {
	ps := s * float64(Second)
	if math.IsNaN(ps) || ps >= float64(math.MaxInt64) {
		return Forever
	}
	if ps <= 0 {
		return 0
	}
	return Time(ps)
}
