package sim

import (
	"sort"
	"time"
)

// Class is an interned handler-class handle. Components intern their
// classes once at setup time (eng.Class("hbm.access")) and pass the
// resulting integer handle on every Schedule call, so the scheduling hot
// path never hashes or compares strings. Handles are per-engine: a Class
// obtained from one Engine is meaningless on another.
//
// The zero value is ClassDefault, the anonymous "event" class.
type Class int32

// ClassDefault is the pre-interned class of events scheduled without a
// meaningful attribution, named DefaultClass ("event"). It is valid on
// every Engine.
const ClassDefault Class = 0

// DefaultClass is the name of ClassDefault. Components that want
// per-class profiling intern their own classes with Engine.Class.
const DefaultClass = "event"

// classInfo is one interned class: its name plus the engine-side
// aggregate execution counters fed by profiling (see EnableProfiling).
type classInfo struct {
	name   string
	fired  uint64
	wallNS int64
}

// Class interns name and returns its handle, allocating a new ID on
// first use. Interning the same name twice returns the same handle.
// Intended for setup time, not the per-event hot path.
func (e *Engine) Class(name string) Class {
	if c, ok := e.classIdx[name]; ok {
		return c
	}
	c := Class(len(e.classes))
	e.classes = append(e.classes, classInfo{name: name})
	e.classIdx[name] = c
	return c
}

// ClassName resolves a handle back to its interned name. Unknown handles
// resolve to "?" rather than panicking, so diagnostics paths can always
// render something.
func (e *Engine) ClassName(c Class) string {
	if c < 0 || int(c) >= len(e.classes) {
		return "?"
	}
	return e.classes[c].name
}

// Classes reports how many classes are interned (ClassDefault included).
func (e *Engine) Classes() int { return len(e.classes) }

// Hook observes engine execution. An observer installed with SetHook or
// AddHook receives one callback per fired event with the event's interned
// class handle, its simulated firing time, and the wall-clock cost of its
// handler. The engine measures handler wall time only while a hook is
// installed or profiling is enabled, so an unobserved run pays nothing.
// Resolve handles to names with Engine.ClassName.
type Hook interface {
	EventDone(class Class, at Time, wall time.Duration)
}

// SetHook installs (or, with nil, removes) the execution observer,
// replacing anything installed before. Components that must coexist with
// other observers (the runtime watchdog, ad-hoc tracers) use AddHook.
func (e *Engine) SetHook(h Hook) { e.hook = h }

// AddHook chains h behind any observer already installed: every hook
// receives every EventDone callback, in installation order. This is the
// seam that lets several observers share one engine without clobbering
// each other.
func (e *Engine) AddHook(h Hook) {
	if h == nil {
		return
	}
	if e.hook == nil {
		e.hook = h
		return
	}
	if m, ok := e.hook.(*multiHook); ok {
		m.hooks = append(m.hooks, h)
		return
	}
	e.hook = &multiHook{hooks: []Hook{e.hook, h}}
}

// multiHook fans one EventDone callback out to several observers.
type multiHook struct{ hooks []Hook }

func (m *multiHook) EventDone(class Class, at Time, wall time.Duration) {
	for _, h := range m.hooks {
		h.EventDone(class, at, wall)
	}
}

// NamedHook is the pre-Class observer interface: one callback per fired
// event carrying the class name as a string.
//
// Deprecated: implement Hook (which receives interned Class handles —
// resolve names with Engine.ClassName) and install it with AddHook, or
// use EnableProfiling + ProfileSnapshot for aggregate per-class counters.
// NamedHook pays a per-event name lookup that Hook avoids.
type NamedHook interface {
	EventDone(class string, at Time, wall time.Duration)
}

// namedHookAdapter bridges a deprecated NamedHook onto the Class-handle
// hook seam by resolving each event's class name.
type namedHookAdapter struct {
	e *Engine
	h NamedHook
}

func (a *namedHookAdapter) EventDone(class Class, at Time, wall time.Duration) {
	a.h.EventDone(a.e.ClassName(class), at, wall)
}

// AddNamedHook chains a string-keyed observer behind any installed hook.
//
// Deprecated: implement Hook and use AddHook; see NamedHook.
func (e *Engine) AddNamedHook(h NamedHook) {
	if h == nil {
		return
	}
	e.AddHook(&namedHookAdapter{e: e, h: h})
}

// ClassProfile is one class's aggregate execution counters, snapshotted
// by ProfileSnapshot.
type ClassProfile struct {
	// Class is the interned handle (valid on the snapshotted engine).
	Class Class
	// Name is the interned class name.
	Name string
	// Fired counts events executed under this class — deterministic for
	// a given seed and fault plan.
	Fired uint64
	// WallNS is the cumulative wall-clock handler cost in nanoseconds.
	// It is inherently nondeterministic and must never reach a
	// byte-stable dump.
	WallNS int64
}

// EnableProfiling turns on the engine's per-class aggregate counters:
// every fired event increments its class's fired count and accumulates
// its handler's wall-clock cost. Unlike a per-event Hook, profiling is a
// pair of in-place counter bumps with no callback — and while disabled
// (the default) the dispatch loop takes no timestamps and touches no
// counters, so unprofiled runs pay nothing.
func (e *Engine) EnableProfiling() { e.profiling = true }

// ProfilingEnabled reports whether EnableProfiling was called.
func (e *Engine) ProfilingEnabled() bool { return e.profiling }

// ProfileSnapshot returns the aggregate counters of every class that has
// fired at least one event, sorted by class name so output built from it
// is stable regardless of interning order.
func (e *Engine) ProfileSnapshot() []ClassProfile {
	var out []ClassProfile
	for i := range e.classes {
		ci := &e.classes[i]
		if ci.fired == 0 {
			continue
		}
		out = append(out, ClassProfile{Class: Class(i), Name: ci.name, Fired: ci.fired, WallNS: ci.wallNS})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
