// Package sim provides the discrete-event simulation kernel that underpins
// every timing model in the repository: the Infinity Fabric network, the HBM
// memory system, the GPU and CPU compute models, and the power governor all
// schedule work on a shared Engine.
//
// Time is measured in integer picoseconds (type Time) so that link
// serialization delays, cache hit latencies, and multi-GHz clock periods can
// all be expressed exactly without floating-point drift. Events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation in this repository fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a simulated timestamp in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond

	// Forever is a sentinel meaning "no deadline".
	Forever Time = math.MaxInt64
)

// Seconds converts t to floating-point seconds, for reporting.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds, for reporting.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds converts t to floating-point microseconds, for reporting.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds converts t to floating-point milliseconds, for reporting.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "∞"
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts floating-point seconds to a Time, saturating at
// Forever for non-finite or out-of-range inputs.
func FromSeconds(s float64) Time {
	ps := s * float64(Second)
	if math.IsNaN(ps) || ps >= float64(math.MaxInt64) {
		return Forever
	}
	if ps <= 0 {
		return 0
	}
	return Time(ps)
}

// Handler is a callback fired when an event's time arrives.
type Handler func(now Time)

// Hook observes engine execution. A profiler installed with SetHook
// receives one callback per fired event with the event's class, its
// simulated firing time, and the wall-clock cost of its handler. The
// engine measures handler wall time only while a hook is installed, so an
// unprofiled run pays nothing.
type Hook interface {
	EventDone(class string, at Time, wall time.Duration)
}

// DefaultClass is the handler class assigned by Schedule/After; components
// that want per-class profiling use ScheduleNamed instead.
const DefaultClass = "event"

// event is a scheduled callback in the engine's priority queue.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among equal timestamps
	fn    Handler
	class string
	dead  bool // cancelled
	idx   int  // heap index
}

// eventHeap implements container/heap over *event ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct {
	e   *event
	seq uint64
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	cancel uint64
	hook   Hook
	hwm    int
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events still queued (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Cancelled reports the total number of events cancelled so far.
func (e *Engine) Cancelled() uint64 { return e.cancel }

// Drained reports whether no live events remain: the queue is empty or
// holds only cancelled events awaiting lazy reaping (which Pending still
// counts).
func (e *Engine) Drained() bool {
	for _, ev := range e.queue {
		if !ev.dead {
			return false
		}
	}
	return true
}

// Quiescent reports whether the engine has reached its natural end state:
// every remaining live event is parked at Forever (sentinels that never
// fire) or the queue is drained entirely. A RunAll that returns with the
// engine non-quiescent left real future work unexecuted — the audit layer
// flags that as a violated drain invariant.
func (e *Engine) Quiescent() bool {
	for _, ev := range e.queue {
		if !ev.dead && ev.at != Forever {
			return false
		}
	}
	return true
}

// Schedule queues fn to run at absolute time at under DefaultClass.
// Scheduling in the past (before Now) panics: it indicates a causality bug
// in a component model.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	return e.ScheduleNamed(DefaultClass, at, fn)
}

// ScheduleNamed is Schedule with an explicit handler class, so installed
// Hooks (and telemetry engine profiles) can attribute fired events and
// handler wall time per subsystem (e.g. "ras.fault", "telemetry.sample").
func (e *Engine) ScheduleNamed(class string, at Time, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q event at %v before now %v", class, at, e.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sim: invariant violated: %q event scheduled with a nil handler", class))
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn, class: class}
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.hwm {
		e.hwm = len(e.queue)
	}
	return EventID{e: ev, seq: e.seq}
}

// SetHook installs (or, with nil, removes) the execution observer,
// replacing anything installed before. Components that must coexist with
// other observers (telemetry profiles, the watchdog) use AddHook instead.
func (e *Engine) SetHook(h Hook) { e.hook = h }

// AddHook chains h behind any observer already installed: every hook
// receives every EventDone callback, in installation order. This is the
// seam that lets the telemetry engine profile and the runtime watchdog
// share one engine without clobbering each other.
func (e *Engine) AddHook(h Hook) {
	if h == nil {
		return
	}
	if e.hook == nil {
		e.hook = h
		return
	}
	if m, ok := e.hook.(*multiHook); ok {
		m.hooks = append(m.hooks, h)
		return
	}
	e.hook = &multiHook{hooks: []Hook{e.hook, h}}
}

// multiHook fans one EventDone callback out to several observers.
type multiHook struct{ hooks []Hook }

func (m *multiHook) EventDone(class string, at Time, wall time.Duration) {
	for _, h := range m.hooks {
		h.EventDone(class, at, wall)
	}
}

// QueueHighWater reports the deepest the event queue has ever been
// (including cancelled events not yet reaped).
func (e *Engine) QueueHighWater() int { return e.hwm }

// After queues fn to run d picoseconds from now. A negative d panics via
// Schedule with the class name in the message — an earlier version
// silently clamped it to 0, which hid causality bugs until the stale
// event fired far from the buggy caller.
func (e *Engine) After(d Time, fn Handler) EventID {
	return e.Schedule(e.now+d, fn)
}

// Cancel marks a previously scheduled event dead. It returns false if the
// event already fired or was already cancelled.
func (e *Engine) Cancel(id EventID) bool {
	if id.e == nil || id.e.dead || id.e.idx < 0 || id.e.seq != id.seq {
		return false
	}
	id.e.dead = true
	e.cancel++
	return true
}

// Step executes the single earliest event. It reports false when the queue
// is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: invariant violated: event %q at %v fires before now %v (time moved backwards)", ev.class, ev.at, e.now))
		}
		e.now = ev.at
		e.fired++
		if e.hook != nil {
			start := time.Now()
			ev.fn(e.now)
			e.hook.EventDone(ev.class, e.now, time.Since(start))
		} else {
			ev.fn(e.now)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or the next event would occur
// after the deadline. It returns the number of events fired. Events exactly
// at the deadline are executed — except events scheduled at Forever, which
// never fire: Forever is a sentinel time ("no deadline"), and an event
// parked there stays pending through any Run, including RunAll. On return,
// Now is advanced to the deadline if the queue drained earlier (so
// back-to-back Run calls compose), except when deadline is Forever, in
// which case Now rests at the last event time.
//
// A deadline earlier than Now is a no-op: Run means "execute everything up
// to at least deadline", which already holds, and the clock never moves
// backwards. AdvanceTo pins the same clamp semantics, so "run to T" and
// "advance to T" are both idempotent. (Scheduling in the past, by
// contrast, stays a panic — that is a causality bug, not a clamp.)
func (e *Engine) Run(deadline Time) uint64 {
	var n uint64
	for len(e.queue) > 0 {
		// Peek; skip dead events.
		ev := e.queue[0]
		if ev.dead {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at > deadline || ev.at == Forever {
			break
		}
		e.Step()
		n++
	}
	if deadline != Forever && e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunAll executes events until the queue is fully drained.
func (e *Engine) RunAll() uint64 { return e.Run(Forever) }

// AdvanceTo moves the clock forward to at without firing events: "ensure
// Now is at least at". A target earlier than Now is a no-op, matching
// Run's clamp semantics for past deadlines — both operations are
// idempotent and never move the clock backwards. It panics if live events
// earlier than at are still pending, because silently skipping them would
// fire them later with a stale notion of "now".
func (e *Engine) AdvanceTo(at Time) {
	if at < e.now {
		return
	}
	for len(e.queue) > 0 && e.queue[0].dead {
		heap.Pop(&e.queue)
	}
	if len(e.queue) > 0 && e.queue[0].at < at {
		panic(fmt.Sprintf("sim: invariant violated: AdvanceTo(%v) would skip a pending %q event at %v", at, e.queue[0].class, e.queue[0].at))
	}
	e.now = at
}
