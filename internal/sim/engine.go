// Package sim provides the discrete-event simulation kernel that underpins
// every timing model in the repository: the Infinity Fabric network, the HBM
// memory system, the GPU and CPU compute models, and the power governor all
// schedule work on a shared Engine.
//
// Time is measured in integer picoseconds (type Time) so that link
// serialization delays, cache hit latencies, and multi-GHz clock periods can
// all be expressed exactly without floating-point drift. Events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation in this repository fully deterministic for a given seed.
//
// The event queue is a two-tier calendar — a timing wheel of FIFO buckets
// over a near-future window plus a far-future overflow heap (see wheel.go)
// — with value-typed event slots recycled through a free list, so
// steady-state scheduling allocates nothing. Handler classes are interned
// Class handles (eng.Class("hbm.access") once at setup, integer IDs on the
// hot path); ScheduleNamed and the string NamedHook remain as deprecated
// wrappers for callers that have not migrated.
package sim

import (
	"fmt"
	"time"
)

// Handler is a callback fired when an event's time arrives.
type Handler func(now Time)

// EventID identifies a scheduled event so it can be cancelled. The zero
// value is inert: cancelling it reports false.
type EventID struct {
	idx int32
	gen uint32
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now Time
	seq uint64

	// Interned handler classes (see class.go). Slot 0 is ClassDefault.
	classes  []classInfo
	classIdx map[string]Class

	// Event slot arena and free list (see wheel.go).
	events []event
	free   []int32

	// Dispatch buffer: the expired bucket currently being fired, sorted
	// by (at, seq) and consumed from dispatchPos. Everything with
	// at < dispatchEnd lives here.
	dispatch    []int32
	dispatchPos int
	dispatchEnd Time

	// Timing wheel over [wheelStart, windowEnd).
	wheelStart Time
	windowEnd  Time
	buckets    [wheelSize][]int32
	occupied   [wheelSize / 64]uint64
	nearCount  int

	// Far-future overflow (min-heap by (at, seq)) and Forever sentinels.
	overflow []int32
	forever  []int32

	liveCount  int // queued, not cancelled (Forever sentinels included)
	liveFinite int // queued, not cancelled, at != Forever
	deadCount  int // cancelled, awaiting reclamation

	fired     uint64
	cancelled uint64
	hwm       int

	hook      Hook
	profiling bool
}

// NewEngine returns an engine positioned at time zero with an empty queue
// and ClassDefault pre-interned.
func NewEngine() *Engine {
	return &Engine{
		classes:  []classInfo{{name: DefaultClass}},
		classIdx: map[string]Class{DefaultClass: ClassDefault},
		// Arena slot 0 is a permanent dummy (never allocated, never freed)
		// so the zero EventID{idx: 0} can never match a real event.
		events:    make([]event, 1),
		windowEnd: windowSpan,
	}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events still queued (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return e.liveCount + e.deadCount }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Cancelled reports the total number of events cancelled so far.
func (e *Engine) Cancelled() uint64 { return e.cancelled }

// Drained reports whether no live events remain: the queue is empty or
// holds only cancelled events awaiting reclamation (which Pending still
// counts).
func (e *Engine) Drained() bool { return e.liveCount == 0 }

// Quiescent reports whether the engine has reached its natural end state:
// every remaining live event is parked at Forever (sentinels that never
// fire) or the queue is drained entirely. A RunAll that returns with the
// engine non-quiescent left real future work unexecuted — the audit layer
// flags that as a violated drain invariant.
func (e *Engine) Quiescent() bool { return e.liveFinite == 0 }

// QueueHighWater reports the deepest the event queue has ever been
// (including cancelled events not yet reaped).
func (e *Engine) QueueHighWater() int { return e.hwm }

// Schedule queues fn to run at absolute time at under the interned class
// handle (obtain one at setup time with Engine.Class; ClassDefault is
// always valid). Scheduling in the past (before Now) panics: it indicates
// a causality bug in a component model.
func (e *Engine) Schedule(at Time, class Class, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %q event at %v before now %v", e.ClassName(class), at, e.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sim: invariant violated: %q event scheduled with a nil handler", e.ClassName(class)))
	}
	if class < 0 || int(class) >= len(e.classes) {
		panic(fmt.Sprintf("sim: schedule with Class %d not interned on this engine", class))
	}
	e.seq++
	idx := e.alloc()
	ev := &e.events[idx]
	ev.at, ev.seq, ev.fn, ev.class, ev.state = at, e.seq, fn, class, slotQueued
	e.place(idx)
	e.liveCount++
	if at != Forever {
		e.liveFinite++
	}
	if p := e.liveCount + e.deadCount; p > e.hwm {
		e.hwm = p
	}
	return EventID{idx: idx, gen: ev.gen}
}

// After queues fn to run d picoseconds from now under class. A negative d
// panics via Schedule with the class name in the message — an earlier
// version silently clamped it to 0, which hid causality bugs until the
// stale event fired far from the buggy caller.
func (e *Engine) After(d Time, class Class, fn Handler) EventID {
	return e.Schedule(e.now+d, class, fn)
}

// ScheduleNamed is Schedule keyed by a class name string, interning it on
// every call.
//
// Deprecated: intern the class once at setup (cls := eng.Class(name)) and
// call Schedule(at, cls, fn); this wrapper pays a map lookup per event.
func (e *Engine) ScheduleNamed(class string, at Time, fn Handler) EventID {
	return e.Schedule(at, e.Class(class), fn)
}

// AfterNamed is After keyed by a class name string, interning it on
// every call.
//
// Deprecated: intern the class once at setup and call After(d, cls, fn).
func (e *Engine) AfterNamed(class string, d Time, fn Handler) EventID {
	return e.After(d, e.Class(class), fn)
}

// Cancel marks a previously scheduled event dead. It returns false if the
// event already fired or was already cancelled. Cancelled Forever
// sentinels are reclaimed immediately; cancelled finite events are
// reclaimed when the dispatch loop passes them or when dead slots
// outnumber live ones (so a schedule/cancel loop cannot grow memory).
func (e *Engine) Cancel(id EventID) bool {
	if id.idx <= 0 || int(id.idx) >= len(e.events) {
		return false
	}
	ev := &e.events[id.idx]
	if ev.state != slotQueued || ev.gen != id.gen {
		return false
	}
	e.cancelled++
	e.liveCount--
	if ev.at != Forever {
		e.liveFinite--
		ev.state = slotDead
		ev.fn = nil
		e.deadCount++
		e.maybePurge()
	} else {
		ev.state = slotDead
		e.cancelForever(id.idx)
	}
	return true
}

// Step executes the single earliest event. It reports false when no
// finite events remain (Forever sentinels never fire).
func (e *Engine) Step() bool {
	idx, ok := e.nextLive()
	if !ok {
		return false
	}
	e.fire(idx)
	return true
}

// fire pops the dispatch-buffer head (which nextLive just validated),
// advances the clock, and runs the handler. The slot is reclaimed before
// the handler runs, so a handler cancelling its own in-flight ID sees a
// stale generation and reports false — the historical cancel-after-pop
// contract.
func (e *Engine) fire(idx int32) {
	ev := &e.events[idx]
	at, fn, class := ev.at, ev.fn, ev.class
	if at < e.now {
		panic(fmt.Sprintf("sim: invariant violated: event %q at %v fires before now %v (time moved backwards)", e.ClassName(class), at, e.now))
	}
	e.dispatchPos++
	e.liveCount--
	e.liveFinite--
	e.reclaim(idx)
	e.now = at
	e.fired++
	if e.hook == nil && !e.profiling {
		fn(at)
		return
	}
	start := time.Now()
	fn(at)
	wall := time.Since(start)
	if e.profiling {
		ci := &e.classes[class]
		ci.fired++
		ci.wallNS += wall.Nanoseconds()
	}
	if e.hook != nil {
		e.hook.EventDone(class, at, wall)
	}
}

// Run executes events until the queue drains or the next event would occur
// after the deadline. It returns the number of events fired. Events exactly
// at the deadline are executed — except events scheduled at Forever, which
// never fire: Forever is a sentinel time ("no deadline"), and an event
// parked there stays pending through any Run, including RunAll. On return,
// Now is advanced to the deadline if the queue drained earlier (so
// back-to-back Run calls compose), except when deadline is Forever, in
// which case Now rests at the last event time.
//
// A deadline earlier than Now is a no-op: Run means "execute everything up
// to at least deadline", which already holds, and the clock never moves
// backwards. AdvanceTo pins the same clamp semantics, so "run to T" and
// "advance to T" are both idempotent. (Scheduling in the past, by
// contrast, stays a panic — that is a causality bug, not a clamp.)
func (e *Engine) Run(deadline Time) uint64 {
	var n uint64
	for {
		idx, ok := e.nextLive()
		if !ok || e.events[idx].at > deadline {
			break
		}
		e.fire(idx)
		n++
	}
	if deadline != Forever && e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunAll executes events until the queue is fully drained.
func (e *Engine) RunAll() uint64 { return e.Run(Forever) }

// AdvanceTo moves the clock forward to at without firing events: "ensure
// Now is at least at". A target earlier than Now is a no-op, matching
// Run's clamp semantics for past deadlines — both operations are
// idempotent and never move the clock backwards. It panics if live events
// earlier than at are still pending, because silently skipping them would
// fire them later with a stale notion of "now".
func (e *Engine) AdvanceTo(at Time) {
	if at < e.now {
		return
	}
	if idx, ok := e.nextLive(); ok && e.events[idx].at < at {
		ev := &e.events[idx]
		panic(fmt.Sprintf("sim: invariant violated: AdvanceTo(%v) would skip a pending %q event at %v", at, e.ClassName(ev.class), ev.at))
	}
	e.now = at
}
