package sim

import "testing"

// Engine microbenchmarks. These are the workloads behind BENCH_engine.json
// (see ci.sh's bench stage): a steady-state self-rescheduling handler, a
// dispatch-heavy same-timestamp burst, a mixed near/far horizon, and a
// schedule/cancel churn loop. Each reports engine events (or operations)
// per second so the committed baseline tracks throughput, not just ns/op.

// BenchmarkEngineSteadyState measures the steady-state hot path: one
// self-rescheduling handler, so every iteration is exactly one Schedule
// plus one dispatch with a warm queue.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	cls := e.Class("bench.tick")
	var fn Handler
	fn = func(now Time) { e.Schedule(now+10, cls, fn) }
	e.Schedule(0, cls, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineBurstDispatch measures dispatch-heavy co-scheduling: 512
// handlers at one instant, fired in FIFO order, repeated across epochs.
func BenchmarkEngineBurstDispatch(b *testing.B) {
	const burst = 512
	e := NewEngine()
	cls := e.Class("bench.burst")
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := e.Now() + 100
		for j := 0; j < burst; j++ {
			e.Schedule(at, cls, fn)
		}
		e.Run(at)
	}
	b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineMixedHorizon interleaves near-future and far-future
// scheduling from a seeded stream, the general DES access pattern.
func BenchmarkEngineMixedHorizon(b *testing.B) {
	const batch = 256
	e := NewEngine()
	rng := NewRNG(42)
	cls := e.Class("bench.mixed")
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := e.Now()
		for j := 0; j < batch; j++ {
			var d Time
			if j%4 == 3 {
				d = Time(rng.Intn(int(Millisecond))) // far: beyond any near window
			} else {
				d = Time(rng.Intn(int(Microsecond))) // near
			}
			e.Schedule(now+1+d, cls, fn)
		}
		e.RunAll()
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineScheduleCancel measures the schedule/cancel churn path:
// every scheduled event is cancelled before it can fire.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	cls := e.Class("bench.cancel")
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.Schedule(e.Now()+1000, cls, fn)
		e.Cancel(id)
	}
	b.StopTimer()
	e.RunAll()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
