package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// catchTrip runs fn and returns the *WatchdogTrip it panicked with, or
// nil if it returned normally. Any other panic value fails the test.
func catchTrip(t *testing.T, fn func()) (trip *WatchdogTrip) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			wt, ok := p.(*WatchdogTrip)
			if !ok {
				t.Fatalf("panic value %T is not a *WatchdogTrip: %v", p, p)
			}
			trip = wt
		}
	}()
	fn()
	return nil
}

func TestWatchdogLivelockTrips(t *testing.T) {
	eng := NewEngine()
	NewWatchdog(WatchdogConfig{EventBudget: 100}).Install(eng)

	// A handler that reschedules itself at the same instant forever: the
	// classic livelock. Sim time never advances, so RunAll would spin
	// until the heat death of the wall clock without the watchdog.
	var reschedule func(Time)
	reschedule = func(now Time) {
		eng.ScheduleNamed("livelock", now, reschedule)
	}
	eng.ScheduleNamed("livelock", 10, reschedule)

	trip := catchTrip(t, func() { eng.RunAll() })
	if trip == nil {
		t.Fatal("livelock ran to completion without tripping the watchdog")
	}
	if trip.Reason != "livelock" {
		t.Fatalf("trip reason %q, want livelock", trip.Reason)
	}
	if trip.At != 10 {
		t.Fatalf("trip at %v, want the stuck instant 10", trip.At)
	}
	if !errors.Is(trip, ErrWatchdog) {
		t.Fatal("trip does not unwrap to ErrWatchdog")
	}
}

func TestWatchdogQueueGrowthTrips(t *testing.T) {
	eng := NewEngine()
	NewWatchdog(WatchdogConfig{QueueFactor: 2, QueueFloor: 8}).Install(eng)

	// Each event schedules two successors at a later time: exponential
	// fan-out. The queue must blow past 2×8 = 16 pending well before the
	// livelock budget is a factor.
	var fanout func(Time)
	fanout = func(now Time) {
		eng.ScheduleNamed("fanout", now+1, fanout)
		eng.ScheduleNamed("fanout", now+2, fanout)
	}
	eng.ScheduleNamed("fanout", 1, fanout)

	trip := catchTrip(t, func() { eng.Run(1000) })
	if trip == nil {
		t.Fatal("exponential fan-out never tripped the queue-growth bound")
	}
	if trip.Reason != "queue-growth" {
		t.Fatalf("trip reason %q, want queue-growth", trip.Reason)
	}
	if !strings.Contains(trip.Detail, "pending") {
		t.Fatalf("trip detail %q does not name the pending count", trip.Detail)
	}
}

func TestWatchdogHandlerStallTrips(t *testing.T) {
	eng := NewEngine()
	NewWatchdog(WatchdogConfig{MaxHandlerWall: time.Microsecond}).Install(eng)

	eng.ScheduleNamed("stall", 5, func(Time) {
		// Burn more than a microsecond of wall clock inside one handler.
		deadline := time.Now().Add(2 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
	})

	trip := catchTrip(t, func() { eng.RunAll() })
	if trip == nil {
		t.Fatal("stalled handler never tripped the watchdog")
	}
	if trip.Reason != "handler-stall" {
		t.Fatalf("trip reason %q, want handler-stall", trip.Reason)
	}
	if trip.Class != "stall" {
		t.Fatalf("trip class %q, want the stalling event's class", trip.Class)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	eng := NewEngine()
	NewWatchdog(WatchdogConfig{EventBudget: 1000, QueueFactor: 2, QueueFloor: 64}).Install(eng)

	// A well-behaved chain: every event advances simulated time and the
	// queue stays shallow.
	var step func(Time)
	n := 0
	step = func(now Time) {
		if n++; n < 500 {
			eng.ScheduleNamed("step", now+Nanosecond, step)
		}
	}
	eng.ScheduleNamed("step", 0, step)
	if trip := catchTrip(t, func() { eng.RunAll() }); trip != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", trip)
	}
	if n != 500 {
		t.Fatalf("ran %d steps, want 500", n)
	}
}

func TestWatchdogComposesWithOtherHooks(t *testing.T) {
	eng := NewEngine()
	var seen int
	eng.AddHook(hookFunc(func(Class, Time, time.Duration) { seen++ }))
	NewWatchdog(WatchdogConfig{EventBudget: 50}).Install(eng)

	eng.ScheduleNamed("tick", 1, func(Time) {})
	eng.RunAll()
	if seen != 1 {
		t.Fatalf("earlier hook saw %d events after watchdog install, want 1", seen)
	}
}

// hookFunc adapts a func to the Hook interface for tests.
type hookFunc func(class Class, at Time, wall time.Duration)

func (f hookFunc) EventDone(class Class, at Time, wall time.Duration) { f(class, at, wall) }
