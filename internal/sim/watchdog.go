package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrWatchdog is the sentinel wrapped by every WatchdogTrip. Callers
// identify watchdog aborts with errors.Is(err, sim.ErrWatchdog).
var ErrWatchdog = errors.New("sim: watchdog tripped")

// WatchdogTrip is the typed error a tripped watchdog raises. The watchdog
// aborts the event loop by panicking with a *WatchdogTrip; the runner's
// panic isolation recovers it and surfaces the run as StatusViolated
// instead of letting the pathology burn the full wall-clock timeout.
type WatchdogTrip struct {
	// Reason is the tripped detector: "livelock", "queue-growth", or
	// "handler-stall".
	Reason string
	// Class is the event class that was executing when the trip fired.
	Class string
	// At is the simulated time of the trip.
	At Time
	// Events is the number of events the watchdog had observed.
	Events uint64
	// Detail describes the exceeded bound.
	Detail string
}

// Error formats the trip for logs and run results.
func (t *WatchdogTrip) Error() string {
	return fmt.Sprintf("%v: %s during %q at %v after %d events: %s",
		ErrWatchdog, t.Reason, t.Class, t.At, t.Events, t.Detail)
}

// Unwrap lets errors.Is(err, ErrWatchdog) match a trip.
func (t *WatchdogTrip) Unwrap() error { return ErrWatchdog }

// WatchdogConfig bounds the three hang pathologies a discrete-event
// simulation can fall into. Zero fields take the defaults below.
type WatchdogConfig struct {
	// EventBudget is the maximum number of consecutive events allowed to
	// fire without simulated time advancing (a livelock: components
	// rescheduling each other at the same instant forever).
	EventBudget uint64
	// QueueFactor trips when the pending-event queue grows past
	// QueueFactor × the baseline high-water mark captured at install time
	// (runaway event fan-out). The baseline is floored at QueueFloor so
	// small queues get absolute headroom, not a multiple of almost nothing.
	QueueFactor int
	// QueueFloor is the minimum baseline for the queue-growth bound.
	QueueFloor int
	// MaxHandlerWall trips when a single handler spends longer than this
	// in wall-clock time. It catches handlers that eventually return after
	// pathological compute; a handler that never returns is beyond any
	// in-process hook and remains the runner timeout's job.
	MaxHandlerWall time.Duration
}

// Watchdog defaults: generous enough that no legitimate experiment in the
// repository comes near them, tight enough to convert a silent hang into
// a typed error in seconds rather than the full run timeout.
const (
	DefaultEventBudget    = 2_000_000
	DefaultQueueFactor    = 64
	DefaultQueueFloor     = 1 << 16
	DefaultMaxHandlerWall = 30 * time.Second
)

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.EventBudget == 0 {
		c.EventBudget = DefaultEventBudget
	}
	if c.QueueFactor <= 0 {
		c.QueueFactor = DefaultQueueFactor
	}
	if c.QueueFloor <= 0 {
		c.QueueFloor = DefaultQueueFloor
	}
	if c.MaxHandlerWall <= 0 {
		c.MaxHandlerWall = DefaultMaxHandlerWall
	}
	return c
}

// Watchdog is an engine Hook that detects livelock (event storms with no
// simulated-time progress), runaway queue growth, and single-handler
// wall-clock stalls. Install attaches it through the engine's hook seam
// (AddHook), so it composes with telemetry engine profiles.
type Watchdog struct {
	cfg      WatchdogConfig
	eng      *Engine
	queueMax int
	lastAt   Time
	sameAt   uint64
	events   uint64
}

// NewWatchdog returns a watchdog with cfg's zero fields defaulted.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{cfg: cfg.withDefaults()}
}

// Install arms the watchdog on eng. The queue-growth baseline is the
// engine's high-water mark at install time (floored at QueueFloor), so a
// platform's construction-time queue depth does not count against the
// budget.
func (w *Watchdog) Install(eng *Engine) {
	w.eng = eng
	base := eng.QueueHighWater()
	if base < w.cfg.QueueFloor {
		base = w.cfg.QueueFloor
	}
	w.queueMax = w.cfg.QueueFactor * base
	w.lastAt = eng.Now()
	eng.AddHook(w)
}

// EventDone implements Hook: after every fired event it checks the three
// bounds and panics with a *WatchdogTrip on the first violation. The
// class handle is resolved to a name only on the trip path, so the
// per-event cost stays integer-only.
func (w *Watchdog) EventDone(class Class, at Time, wall time.Duration) {
	w.events++
	if at > w.lastAt {
		w.lastAt = at
		w.sameAt = 0
	} else {
		w.sameAt++
		if w.sameAt >= w.cfg.EventBudget {
			w.trip("livelock", class, at, fmt.Sprintf(
				"%d events fired with simulated time stuck at %v (budget %d)",
				w.sameAt, at, w.cfg.EventBudget))
		}
	}
	if p := w.eng.Pending(); p > w.queueMax {
		w.trip("queue-growth", class, at, fmt.Sprintf(
			"%d events pending, bound %d (%d× baseline)", p, w.queueMax, w.cfg.QueueFactor))
	}
	if wall > w.cfg.MaxHandlerWall {
		w.trip("handler-stall", class, at, fmt.Sprintf(
			"handler ran %v wall-clock, bound %v", wall, w.cfg.MaxHandlerWall))
	}
}

func (w *Watchdog) trip(reason string, class Class, at Time, detail string) {
	panic(&WatchdogTrip{Reason: reason, Class: w.eng.ClassName(class), At: at, Events: w.events, Detail: detail})
}
