package sim

import (
	"fmt"
	"testing"
)

// ---------------------------------------------------------------------------
// Differential test: the timing-wheel queue vs a trivially-correct
// reference engine.
//
// The reference implementation is the spec made executable: a flat slice
// of events popped by linear minimum scan over (at, seq). It is obviously
// correct and obviously slow. The same randomized workload program runs
// against both engines; any divergence in firing order — across bucket
// boundaries, window jumps, rewinds, equal-timestamp bursts, overflow
// promotion, or cancel interleavings — shows up as a trace mismatch.
// ---------------------------------------------------------------------------

// scheduler is the minimal surface the differential driver needs; both
// the real Engine and the reference engine implement it.
type scheduler interface {
	schedule(at Time, fn func(Time)) (cancel func() bool)
	now() Time
	runAll()
}

// wheelSched adapts *Engine.
type wheelSched struct{ e *Engine }

func (w wheelSched) schedule(at Time, fn func(Time)) func() bool {
	id := w.e.Schedule(at, ClassDefault, fn)
	return func() bool { return w.e.Cancel(id) }
}
func (w wheelSched) now() Time { return w.e.Now() }
func (w wheelSched) runAll()   { w.e.RunAll() }

// refEvent / refEngine: the executable spec.
type refEvent struct {
	at        Time
	seq       uint64
	fn        func(Time)
	cancelled bool
	fired     bool
}

type refEngine struct {
	clock  Time
	seq    uint64
	events []*refEvent
}

func (r *refEngine) schedule(at Time, fn func(Time)) func() bool {
	if at < r.clock {
		panic(fmt.Sprintf("ref: scheduling at %v before now %v", at, r.clock))
	}
	r.seq++
	ev := &refEvent{at: at, seq: r.seq, fn: fn}
	r.events = append(r.events, ev)
	return func() bool {
		if ev.cancelled || ev.fired {
			return false
		}
		ev.cancelled = true
		return true
	}
}

func (r *refEngine) now() Time { return r.clock }

func (r *refEngine) runAll() {
	for {
		var best *refEvent
		for _, ev := range r.events {
			if ev.cancelled || ev.fired || ev.at == Forever {
				continue
			}
			if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
		if best == nil {
			return
		}
		best.fired = true
		r.clock = best.at
		best.fn(best.at)
	}
}

// runWorkload executes one deterministic randomized workload program on s
// and returns the firing trace. Every random draw is keyed to the event's
// own label-forked stream, so the program is a pure function of the seed
// and the scheduler's firing order — identical engines produce identical
// traces; divergent engines diverge visibly.
func runWorkload(s scheduler, seed uint64, roots, depth int) []string {
	var trace []string
	var cancels []func() bool
	root := NewRNG(seed)

	var spawn func(label string, d int) func(Time)
	spawn = func(label string, d int) func(Time) {
		rng := NewRNG(seed).Fork(hashLabel(label))
		return func(now Time) {
			trace = append(trace, fmt.Sprintf("%s@%d", label, now))
			if d <= 0 {
				return
			}
			kids := rng.Intn(3)
			for k := 0; k < kids; k++ {
				var delta Time
				switch rng.Intn(5) {
				case 0:
					delta = 0 // same-instant cascade: FIFO among equals
				case 1:
					delta = Time(rng.Intn(int(bucketWidth))) // same bucket
				case 2:
					delta = Time(rng.Intn(int(windowSpan))) // within the window
				case 3:
					delta = windowSpan + Time(rng.Intn(int(8*windowSpan))) // overflow tier
				case 4:
					delta = Time(rng.Intn(64)) // dense near-future collisions
				}
				child := fmt.Sprintf("%s.%d", label, k)
				cancels = append(cancels, s.schedule(now+delta, spawn(child, d-1)))
			}
			// Cancel a previously issued handle (possibly already fired,
			// possibly our own descendant, possibly a far-future event).
			if len(cancels) > 0 && rng.Intn(3) == 0 {
				cancels[rng.Intn(len(cancels))]()
			}
		}
	}

	for i := 0; i < roots; i++ {
		at := Time(root.Intn(int(4 * windowSpan)))
		cancels = append(cancels, s.schedule(at, spawn(fmt.Sprintf("r%d", i), depth)))
	}
	// A couple of Forever sentinels: they must never fire, and one gets
	// cancelled mid-setup.
	c := s.schedule(Forever, func(Time) { trace = append(trace, "forever-fired!") })
	s.schedule(Forever, func(Time) { trace = append(trace, "forever-fired!") })
	c()
	s.runAll()
	return trace
}

// hashLabel derives a stable fork key from an event label (FNV-1a).
func hashLabel(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func TestWheelMatchesReferenceEngine(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		got := runWorkload(wheelSched{NewEngine()}, seed, 8, 4)
		want := runWorkload(&refEngine{}, seed, 8, 4)
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges at event %d: wheel %q, reference %q", seed, i, got[i], want[i])
			}
		}
	}
}

// TestWheelEqualTimestampFIFO pins the determinism contract directly:
// events at one instant fire in schedule order, even when they arrive
// interleaved with other instants and from inside handlers.
func TestWheelEqualTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	const at = 5 * Microsecond
	for i := 0; i < 500; i++ {
		i := i
		e.Schedule(at, ClassDefault, func(Time) { order = append(order, i) })
		// Interleave a different instant so the bucket holds a mix.
		e.Schedule(at+Nanosecond, ClassDefault, func(Time) {})
	}
	// Same-instant events scheduled from a handler fire after all earlier
	// ones at that instant, still in schedule order.
	e.Schedule(at, ClassDefault, func(now Time) {
		e.Schedule(now, ClassDefault, func(Time) { order = append(order, 1000) })
	})
	e.RunAll()
	if len(order) != 501 {
		t.Fatalf("fired %d ordered events, want 501", len(order))
	}
	for i := 0; i < 500; i++ {
		if order[i] != i {
			t.Fatalf("order[%d] = %d, want %d", i, order[i], i)
		}
	}
	if order[500] != 1000 {
		t.Fatalf("in-handler same-instant event fired at position %d", order[500])
	}
}

// TestWheelWindowJumpAndRewind forces the idle-window-jump-then-rewind
// path: drain the wheel, let it jump to a far window, then schedule into
// the gap between the clock and the jumped window.
func TestWheelWindowJumpAndRewind(t *testing.T) {
	e := NewEngine()
	var order []Time
	record := func(now Time) { order = append(order, now) }
	far := 100 * windowSpan
	e.Schedule(far, ClassDefault, record)
	e.Schedule(1, ClassDefault, record)
	e.Run(1) // fires the near event; wheel may now jump to the far window
	// Schedule into the gap — earlier than the far event, later than now.
	e.Schedule(50*windowSpan, ClassDefault, record)
	e.Schedule(2, ClassDefault, record)
	e.RunAll()
	want := []Time{1, 2, 50 * windowSpan, far}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Allocation guards: the redesign's whole point.
// ---------------------------------------------------------------------------

// TestSteadyStateScheduleZeroAllocs pins 0 allocs/op for the canonical
// hot path: a handler rescheduling itself a few ns out, one Step per op.
func TestSteadyStateScheduleZeroAllocs(t *testing.T) {
	e := NewEngine()
	cls := e.Class("bench.tick")
	var fn Handler
	fn = func(now Time) { e.Schedule(now+10, cls, fn) }
	e.Schedule(0, cls, fn)
	for i := 0; i < 4096; i++ { // warm the arena, dispatch buffer, free list
		e.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() { e.Step() })
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.2f/op, want 0", allocs)
	}
}

// TestScheduleCancelZeroAllocs pins 0 allocs/op for a schedule-then-cancel
// round trip once the arena is warm.
func TestScheduleCancelZeroAllocs(t *testing.T) {
	e := NewEngine()
	cls := e.Class("bench.cancel")
	fn := func(Time) {}
	for i := 0; i < 4096; i++ {
		e.Cancel(e.Schedule(e.Now()+1000, cls, fn))
	}
	allocs := testing.AllocsPerRun(2000, func() {
		e.Cancel(e.Schedule(e.Now()+1000, cls, fn))
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel allocates %.2f/op, want 0", allocs)
	}
}

// TestCancelledEventsDoNotRetainMemory pins the retention fix: a
// schedule/cancel loop must recycle slots instead of growing the arena,
// even with a standing population of live events. The historical bug kept
// every cancelled event queued until its timestamp was reached.
func TestCancelledEventsDoNotRetainMemory(t *testing.T) {
	e := NewEngine()
	cls := e.Class("churn")
	fn := func(Time) {}
	// Standing live population, far in the future.
	for i := 0; i < 32; i++ {
		e.Schedule(10*Millisecond+Time(i), cls, fn)
	}
	for i := 0; i < 200_000; i++ {
		e.Cancel(e.Schedule(e.Now()+Microsecond, cls, fn))
	}
	// Arena is bounded by live + purge threshold + a purge's worth of
	// slack, nowhere near the 200k churned events.
	if got := len(e.events); got > 256 {
		t.Errorf("arena grew to %d slots after 200k schedule/cancel churn, want bounded (<= 256)", got)
	}
	if e.Pending() > 32+purgeThreshold+1 {
		t.Errorf("Pending = %d after churn, want <= live 32 + lazy margin %d", e.Pending(), purgeThreshold+1)
	}
	// The survivors still fire.
	if fired := e.RunAll(); fired != 32 {
		t.Errorf("survivors fired = %d, want 32", fired)
	}
}

// TestCancelSelfInsideHandler pins the cancel-after-pop contract: by the
// time a handler runs, its own ID is stale.
func TestCancelSelfInsideHandler(t *testing.T) {
	e := NewEngine()
	var id EventID
	var got bool
	id = e.Schedule(5, ClassDefault, func(Time) { got = e.Cancel(id) })
	e.RunAll()
	if got {
		t.Error("handler cancelled its own in-flight event; Cancel should report false")
	}
	if e.Cancelled() != 0 {
		t.Errorf("Cancelled = %d, want 0", e.Cancelled())
	}
}

// TestEventIDZeroValueInert pins that the zero EventID never cancels
// anything — including the first event ever scheduled on a fresh engine.
func TestEventIDZeroValueInert(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(1, ClassDefault, func(Time) { fired = true })
	if e.Cancel(EventID{}) {
		t.Error("zero EventID cancelled something")
	}
	e.RunAll()
	if !fired {
		t.Error("first scheduled event never fired")
	}
}
