package sim

import "fmt"

// Clock converts between cycle counts and simulated time for a component
// running at a fixed frequency. Chiplets in different clock domains (XCD,
// CCD, Infinity Fabric, HBM) each carry their own Clock.
type Clock struct {
	// FreqHz is the clock frequency in Hertz.
	FreqHz float64
	// periodPS is the cached period in picoseconds.
	periodPS float64
}

// NewClock returns a clock at the given frequency. It panics on non-positive
// frequencies: a zero-frequency domain is always a configuration bug.
func NewClock(freqHz float64) *Clock {
	if freqHz <= 0 {
		panic(fmt.Sprintf("sim: invariant violated: clock frequency must be positive (got %v Hz)", freqHz))
	}
	return &Clock{FreqHz: freqHz, periodPS: 1e12 / freqHz}
}

// Period returns the duration of one cycle, rounded to the nearest
// picosecond (minimum 1 ps).
func (c *Clock) Period() Time {
	p := Time(c.periodPS + 0.5)
	if p < 1 {
		p = 1
	}
	return p
}

// Cycles converts a cycle count to a duration.
func (c *Clock) Cycles(n float64) Time {
	if n <= 0 {
		return 0
	}
	return FromSeconds(n / c.FreqHz)
}

// CyclesAt reports how many whole cycles elapse in d.
func (c *Clock) CyclesAt(d Time) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(float64(d) / c.periodPS)
}

// NextEdge returns the first clock edge at or after t, assuming edge 0 at
// time 0.
func (c *Clock) NextEdge(t Time) Time {
	if t <= 0 {
		return 0
	}
	n := uint64(float64(t) / c.periodPS)
	edge := Time(float64(n) * c.periodPS)
	for edge < t {
		n++
		edge = Time(float64(n) * c.periodPS)
	}
	return edge
}
