package sim

import "math/bits"

// The event queue is a two-tier calendar: a timing wheel of FIFO buckets
// covering a near-future window, an index min-heap holding far-future
// overflow, and a plain FIFO slice for Forever sentinels (which never
// fire and therefore never belong in either time-ordered tier).
//
// Events live by value in a slot arena (Engine.events) threaded with a
// free list, so steady-state scheduling recycles slots instead of
// allocating. An EventID is (slot index, generation); the generation
// bumps every time a slot is reclaimed, which makes stale IDs — cancels
// after the event fired, double cancels — detectably dead.
//
// Ordering contract: events fire in strictly ascending (at, seq) order,
// where seq is the global schedule counter. That is exactly the old
// binary heap's order — FIFO among equal timestamps — and the
// differential test pins the two implementations against each other.
//
// Structure invariants (between exported calls):
//   - dispatch[dispatchPos:] holds every queued event with at < dispatchEnd,
//     sorted ascending by (at, seq);
//   - wheel buckets hold events with dispatchEnd <= at < windowEnd, where
//     bucket index (at>>bucketShift)&wheelMask increases monotonically
//     with at because wheelStart is aligned to the window span;
//   - overflow holds events with at >= windowEnd, heap-ordered by (at, seq);
//   - forever holds events with at == Forever, in schedule order.
//
// The wheel window only moves forward while events are pending; the rare
// backward move (rewindWindow) happens when the clock is far behind a
// previously jumped window and something schedules into the gap.

const (
	wheelBits   = 8                              // 256 buckets
	wheelSize   = 1 << wheelBits                 // buckets per window
	wheelMask   = wheelSize - 1                  //
	bucketShift = 10                             // 1024 ps ≈ 1 ns per bucket
	bucketWidth = Time(1) << bucketShift         //
	windowSpan  = Time(wheelSize) << bucketShift // ~262 ns near-future window
)

// slot states. A slot is free (on the free list), queued (live in one of
// the queue tiers), or dead (cancelled but not yet swept out of its tier).
type slotState uint8

const (
	slotFree slotState = iota
	slotQueued
	slotDead
)

// event is one scheduled callback, stored by value in the arena.
type event struct {
	at    Time
	seq   uint64
	fn    Handler
	class Class
	gen   uint32
	state slotState
}

// alloc takes a slot off the free list, growing the arena only when the
// list is empty (the arena never shrinks; its high-water mark is the
// steady-state footprint).
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

// reclaim returns a slot to the free list, dropping the handler reference
// (so the engine never pins a closure past its event) and bumping the
// generation so outstanding EventIDs for this slot go stale.
func (e *Engine) reclaim(idx int32) {
	ev := &e.events[idx]
	ev.fn = nil
	ev.state = slotFree
	ev.gen++
	e.free = append(e.free, idx)
}

// alignWindow returns the window start containing t: t rounded down to a
// multiple of the window span. Alignment is what makes bucket indices
// monotone in time within one window.
func alignWindow(t Time) Time { return t &^ (windowSpan - 1) }

// setWindow positions the wheel window at the span-aligned window
// containing t and computes the (saturated) exclusive end.
func (e *Engine) setWindow(t Time) {
	e.wheelStart = alignWindow(t)
	if e.wheelStart > Forever-windowSpan {
		e.windowEnd = Forever
	} else {
		e.windowEnd = e.wheelStart + windowSpan
	}
}

// place routes a newly scheduled (or re-homed) queued event into the
// correct tier for its timestamp.
func (e *Engine) place(idx int32) {
	at := e.events[idx].at
	switch {
	case at == Forever:
		e.forever = append(e.forever, idx)
	case at < e.dispatchEnd:
		e.insertDispatch(idx)
	case at < e.wheelStart:
		// The window jumped ahead of the clock and something scheduled
		// into the gap; pull the window back so ordering holds.
		e.rewindWindow(at)
		e.bucketInsert(idx, at)
	case at < e.windowEnd:
		e.bucketInsert(idx, at)
	default:
		e.overflowPush(idx)
	}
}

// bucketInsert appends the event to its wheel bucket (FIFO within the
// bucket) and marks the bucket occupied.
func (e *Engine) bucketInsert(idx int32, at Time) {
	b := int(at>>bucketShift) & wheelMask
	e.buckets[b] = append(e.buckets[b], idx)
	e.occupied[b>>6] |= 1 << (b & 63)
	e.nearCount++
}

// firstOccupied returns the lowest occupied bucket index. Callers ensure
// nearCount > 0.
func (e *Engine) firstOccupied() int {
	for w, word := range e.occupied {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	panic("sim: invariant violated: nearCount > 0 with no occupied bucket")
}

// expireNextBucket moves the earliest non-empty bucket into the dispatch
// buffer, sorts it by (at, seq), and advances dispatchEnd to the bucket's
// end. This is the batch point: a burst of co-scheduled events pays one
// bucket expiry and one (usually already-sorted) ordering pass, then
// fires back-to-back straight out of the buffer.
func (e *Engine) expireNextBucket() {
	b := e.firstOccupied()
	bucket := e.buckets[b]
	e.dispatch = append(e.dispatch[:0], bucket...)
	e.dispatchPos = 0
	e.buckets[b] = bucket[:0]
	e.occupied[b>>6] &^= 1 << (b & 63)
	e.nearCount -= len(e.dispatch)
	bucketEnd := e.wheelStart + Time(b+1)<<bucketShift
	if bucketEnd > e.windowEnd {
		bucketEnd = e.windowEnd
	}
	e.dispatchEnd = bucketEnd
	e.sortIndices(e.dispatch)
}

// insertDispatch places an event into the (already sorted) live dispatch
// buffer. The common case — a handler scheduling at or after the instant
// being dispatched, necessarily with the highest seq — appends at the
// end; the general case binary-searches for the (at, seq) position.
func (e *Engine) insertDispatch(idx int32) {
	ev := &e.events[idx]
	s := e.dispatch
	lo, hi := e.dispatchPos, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := &e.events[s[mid]]
		if m.at < ev.at || (m.at == ev.at && m.seq < ev.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.dispatch = append(s, 0)
	copy(e.dispatch[lo+1:], e.dispatch[lo:])
	e.dispatch[lo] = idx
}

// compactDispatch drops the consumed prefix of the dispatch buffer when
// it dominates the slice, bounding the buffer's memory at ~2× its live
// tail even across very long same-instant cascades.
func (e *Engine) compactDispatch() {
	if e.dispatchPos < 1024 || e.dispatchPos*2 < len(e.dispatch) {
		return
	}
	n := copy(e.dispatch, e.dispatch[e.dispatchPos:])
	e.dispatch = e.dispatch[:n]
	e.dispatchPos = 0
}

// jumpWindow advances the empty wheel to the window containing the
// earliest overflow event and drains every overflow event inside the new
// window into buckets. Callers ensure the dispatch buffer and wheel are
// empty and overflow is not.
func (e *Engine) jumpWindow() {
	e.setWindow(e.events[e.overflow[0]].at)
	e.drainOverflow()
}

// rewindWindow moves the window back to contain at (< wheelStart): every
// bucketed event returns to overflow, the window re-anchors, and overflow
// events inside the new window come back down. Only reachable when the
// window jumped ahead of a clock that then scheduled into the gap, so
// the cost (touching the handful of queued far events twice) is off the
// steady-state path.
func (e *Engine) rewindWindow(at Time) {
	if e.nearCount > 0 {
		for b := range e.buckets {
			for _, idx := range e.buckets[b] {
				e.overflowPush(idx)
			}
			e.buckets[b] = e.buckets[b][:0]
		}
		for w := range e.occupied {
			e.occupied[w] = 0
		}
		e.nearCount = 0
	}
	e.setWindow(at)
	e.drainOverflow()
}

// drainOverflow pops every overflow event that now falls inside the
// window down into its bucket.
func (e *Engine) drainOverflow() {
	for len(e.overflow) > 0 {
		top := e.overflow[0]
		at := e.events[top].at
		if at >= e.windowEnd {
			return
		}
		e.overflowPop()
		e.bucketInsert(top, at)
	}
}

// eventLess orders two arena slots by (at, seq) — the engine's total
// firing order (seq is unique, so this is a strict total order).
func (e *Engine) eventLess(a, b int32) bool {
	ea, eb := &e.events[a], &e.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// overflowPush adds a slot to the far-future min-heap.
func (e *Engine) overflowPush(idx int32) {
	e.overflow = append(e.overflow, idx)
	e.overflowSiftUp(len(e.overflow) - 1)
}

// overflowPop removes the heap minimum.
func (e *Engine) overflowPop() int32 {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.overflow = h[:n]
	if n > 0 {
		e.overflowSiftDown(0)
	}
	return top
}

func (e *Engine) overflowSiftUp(i int) {
	h := e.overflow
	for i > 0 {
		parent := (i - 1) / 2
		if !e.eventLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) overflowSiftDown(i int) {
	h := e.overflow
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.eventLess(h[r], h[l]) {
			least = r
		}
		if !e.eventLess(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// overflowHeapify restores the heap property after a purge filtered the
// backing slice in place.
func (e *Engine) overflowHeapify() {
	for i := len(e.overflow)/2 - 1; i >= 0; i-- {
		e.overflowSiftDown(i)
	}
}

// sortIndices orders a slice of arena slots by (at, seq) without
// allocating. Buckets arrive in seq order, so a same-instant burst — the
// batch-dispatch case — is already sorted and costs one linear scan; the
// mixed case falls back to an insertion/quicksort hybrid.
func (e *Engine) sortIndices(s []int32) {
	sorted := true
	for i := 1; i < len(s); i++ {
		if e.eventLess(s[i], s[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	e.quickSort(s)
}

func (e *Engine) quickSort(s []int32) {
	for len(s) > 12 {
		// Median-of-three pivot, moved to the end.
		mid := len(s) / 2
		hi := len(s) - 1
		if e.eventLess(s[mid], s[0]) {
			s[mid], s[0] = s[0], s[mid]
		}
		if e.eventLess(s[hi], s[0]) {
			s[hi], s[0] = s[0], s[hi]
		}
		if e.eventLess(s[hi], s[mid]) {
			s[hi], s[mid] = s[mid], s[hi]
		}
		s[mid], s[hi] = s[hi], s[mid]
		pivot := s[hi]
		i := 0
		for j := 0; j < hi; j++ {
			if e.eventLess(s[j], pivot) {
				s[i], s[j] = s[j], s[i]
				i++
			}
		}
		s[i], s[hi] = s[hi], s[i]
		// Recurse into the smaller half, loop on the larger.
		if i < len(s)-i-1 {
			e.quickSort(s[:i])
			s = s[i+1:]
		} else {
			e.quickSort(s[i+1:])
			s = s[:i]
		}
	}
	// Insertion sort for small runs.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && e.eventLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// purgeThreshold is the dead-slot count above which Cancel triggers a
// full sweep (provided dead slots also outnumber live ones). Keeping a
// small lazy margin preserves the historical "cancelled events linger in
// Pending until reaped" observability without letting a schedule/cancel
// loop grow memory: queued storage is bounded at ~2× the live set.
const purgeThreshold = 64

// maybePurge sweeps every tier, reclaiming dead slots, once they
// dominate. Relative order of the survivors is preserved in the FIFO
// tiers and the heap is rebuilt, so firing order is unaffected.
func (e *Engine) maybePurge() {
	if e.deadCount < purgeThreshold || e.deadCount <= e.liveCount {
		return
	}
	keep := func(s []int32) []int32 {
		out := s[:0]
		for _, idx := range s {
			if e.events[idx].state == slotDead {
				e.reclaim(idx)
			} else {
				out = append(out, idx)
			}
		}
		return out
	}
	// Dispatch buffer: filter the unconsumed tail in place.
	tail := keep(e.dispatch[e.dispatchPos:])
	n := copy(e.dispatch, tail)
	e.dispatch = e.dispatch[:n]
	e.dispatchPos = 0
	// Wheel buckets: filter each occupied bucket, fixing the bitmap.
	if e.nearCount > 0 {
		e.nearCount = 0
		for b := range e.buckets {
			if len(e.buckets[b]) == 0 {
				continue
			}
			e.buckets[b] = keep(e.buckets[b])
			if len(e.buckets[b]) == 0 {
				e.occupied[b>>6] &^= 1 << (b & 63)
			}
			e.nearCount += len(e.buckets[b])
		}
	}
	// Overflow: filter, then restore the heap property.
	e.overflow = keep(e.overflow)
	e.overflowHeapify()
	// Forever sentinels are reclaimed eagerly on Cancel and are never
	// dead here; keep the sweep anyway so the invariant is local.
	e.forever = keep(e.forever)
	e.deadCount = 0
}

// cancelForever eagerly removes a cancelled Forever sentinel from the
// sentinel list (order-preserving). Sentinels never reach a pop path, so
// lazy reclamation would leak them; the list is tiny (one or two
// sentinels per run), so the linear scan is free.
func (e *Engine) cancelForever(idx int32) {
	for i, f := range e.forever {
		if f == idx {
			e.forever = append(e.forever[:i], e.forever[i+1:]...)
			e.reclaim(idx)
			return
		}
	}
	panic("sim: invariant violated: cancelled Forever event not in sentinel list")
}

// nextLive makes the earliest live queued finite event the head of the
// dispatch buffer and returns its slot, reclaiming any dead events it
// passes over. It returns false when no finite events remain (Forever
// sentinels do not count: they never fire).
func (e *Engine) nextLive() (int32, bool) {
	for {
		for e.dispatchPos < len(e.dispatch) {
			idx := e.dispatch[e.dispatchPos]
			if e.events[idx].state == slotDead {
				e.dispatchPos++
				e.deadCount--
				e.reclaim(idx)
				continue
			}
			e.compactDispatch()
			return idx, true
		}
		e.dispatch = e.dispatch[:0]
		e.dispatchPos = 0
		if e.nearCount == 0 {
			if len(e.overflow) == 0 {
				return 0, false
			}
			e.jumpWindow()
		}
		e.expireNextBucket()
	}
}
