package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, ClassDefault, func(Time) { got = append(got, 3) })
	e.Schedule(10, ClassDefault, func(Time) { got = append(got, 1) })
	e.Schedule(20, ClassDefault, func(Time) { got = append(got, 2) })
	if n := e.RunAll(); n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, ClassDefault, func(Time) { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events fired out of order: %v", got)
		}
	}
}

func TestEngineScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(5, ClassDefault, func(now Time) {
		times = append(times, now)
		e.After(7, ClassDefault, func(now Time) { times = append(times, now) })
	})
	e.RunAll()
	if len(times) != 2 || times[0] != 5 || times[1] != 12 {
		t.Fatalf("times = %v, want [5 12]", times)
	}
}

func TestEngineRunDeadline(t *testing.T) {
	e := NewEngine()
	var fired int
	e.Schedule(10, ClassDefault, func(Time) { fired++ })
	e.Schedule(20, ClassDefault, func(Time) { fired++ })
	e.Schedule(30, ClassDefault, func(Time) { fired++ })
	if n := e.Run(20); n != 2 {
		t.Fatalf("fired %d by deadline 20, want 2", n)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	e.Run(25)
	if e.Now() != 25 {
		t.Errorf("Now = %v after empty run, want 25", e.Now())
	}
	e.RunAll()
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
}

// TestEngineForeverSentinelNeverFires pins the sentinel contract the
// runner depends on: an event parked at Forever stays pending through
// RunAll (and does not drag Now out to infinity), so an experiment that
// drains its own engine mid-run cannot fire the runner's completion
// sentinel early.
func TestEngineForeverSentinelNeverFires(t *testing.T) {
	e := NewEngine()
	var sentinelFired bool
	id := e.Schedule(Forever, ClassDefault, func(Time) { sentinelFired = true })
	var fired int
	e.Schedule(10, ClassDefault, func(Time) { fired++ })
	e.RunAll()
	if sentinelFired {
		t.Fatal("event at Forever fired during RunAll")
	}
	if fired != 1 {
		t.Errorf("finite event fired %d times, want 1", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v after RunAll, want 10 (last finite event)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want the sentinel still queued", e.Pending())
	}
	// Cancelling the sentinel lets the queue drain as before.
	e.Cancel(id)
	e.RunAll()
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after cancelling sentinel, want 0", e.Pending())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	var fired bool
	id := e.Schedule(10, ClassDefault, func(Time) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("Cancel returned true twice")
	}
	e.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
}

// TestEngineCancelAfterFire covers the cancel-after-pop edge: once an
// event has fired (been popped off the heap), cancelling its ID must be
// a no-op that reports false and does not disturb the stats.
func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	var fired int
	id := e.Schedule(10, ClassDefault, func(Time) { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Cancel(id) {
		t.Error("Cancel returned true for an already-fired event")
	}
	if e.Cancelled() != 0 {
		t.Errorf("Cancelled = %d after no-op cancel, want 0", e.Cancelled())
	}
	if e.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", e.Fired())
	}
}

// TestEngineCancelFromSameTimestampHandler exercises both sides of the
// FIFO + cancel interaction at one timestamp: a handler can still cancel
// a later event scheduled for the same instant (it has not popped yet),
// but cancelling itself mid-flight fails (it already popped).
func TestEngineCancelFromSameTimestampHandler(t *testing.T) {
	e := NewEngine()
	var order []string
	var firstID, secondID EventID
	firstID = e.Schedule(50, ClassDefault, func(Time) {
		order = append(order, "first")
		if e.Cancel(firstID) {
			t.Error("handler cancelled itself after popping")
		}
		if !e.Cancel(secondID) {
			t.Error("could not cancel a same-timestamp event still queued")
		}
	})
	secondID = e.Schedule(50, ClassDefault, func(Time) { order = append(order, "second") })
	e.Schedule(50, ClassDefault, func(Time) { order = append(order, "third") })
	e.RunAll()
	// FIFO among equal timestamps, minus the cancelled middle event.
	if len(order) != 2 || order[0] != "first" || order[1] != "third" {
		t.Fatalf("order = %v, want [first third]", order)
	}
	if e.Cancelled() != 1 {
		t.Errorf("Cancelled = %d, want 1", e.Cancelled())
	}
}

// TestEngineDrained covers the stats accessors around lazy reaping:
// cancelled events keep Pending nonzero but the engine is Drained.
func TestEngineDrained(t *testing.T) {
	e := NewEngine()
	if !e.Drained() {
		t.Error("fresh engine not Drained")
	}
	id1 := e.Schedule(10, ClassDefault, func(Time) {})
	e.Schedule(20, ClassDefault, func(Time) {})
	if e.Drained() {
		t.Error("Drained with live events queued")
	}
	e.Cancel(id1)
	if e.Drained() {
		t.Error("Drained while a live event remains")
	}
	e.Run(20)
	if !e.Drained() {
		t.Error("not Drained after running all live events")
	}
	// A cancelled-but-unreaped event: Pending counts it, Drained ignores it.
	id3 := e.Schedule(30, ClassDefault, func(Time) {})
	e.Cancel(id3)
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (lazy reap)", e.Pending())
	}
	if !e.Drained() {
		t.Error("not Drained with only dead events queued")
	}
	if e.Fired() != 1 || e.Cancelled() != 2 {
		t.Errorf("Fired/Cancelled = %d/%d, want 1/2", e.Fired(), e.Cancelled())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, ClassDefault, func(Time) {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, ClassDefault, func(Time) {})
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(500)
	if e.Now() != 500 {
		t.Fatalf("Now = %v, want 500", e.Now())
	}
	e.Schedule(600, ClassDefault, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo skipping pending events did not panic")
		}
	}()
	e.AdvanceTo(700)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
		{Forever, "∞"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1e-9); got != Nanosecond {
		t.Errorf("FromSeconds(1ns) = %v", got)
	}
	if got := FromSeconds(-1); got != 0 {
		t.Errorf("FromSeconds(-1) = %v, want 0", got)
	}
	if got := FromSeconds(math.Inf(1)); got != Forever {
		t.Errorf("FromSeconds(+inf) = %v, want Forever", got)
	}
	if got := FromSeconds(math.NaN()); got != Forever {
		t.Errorf("FromSeconds(NaN) = %v, want Forever", got)
	}
}

func TestClockBasics(t *testing.T) {
	c := NewClock(1e9) // 1 GHz -> 1 ns period
	if p := c.Period(); p != Nanosecond {
		t.Errorf("Period = %v, want 1ns", p)
	}
	if d := c.Cycles(1000); d != Microsecond {
		t.Errorf("Cycles(1000) = %v, want 1µs", d)
	}
	if n := c.CyclesAt(Microsecond); n != 1000 {
		t.Errorf("CyclesAt(1µs) = %d, want 1000", n)
	}
}

func TestClockNextEdge(t *testing.T) {
	c := NewClock(1e9)
	if e := c.NextEdge(0); e != 0 {
		t.Errorf("NextEdge(0) = %v", e)
	}
	if e := c.NextEdge(1500); e != 2000 {
		t.Errorf("NextEdge(1.5ns) = %v, want 2ns", e)
	}
	if e := c.NextEdge(2000); e != 2000 {
		t.Errorf("NextEdge(2ns) = %v, want 2ns", e)
	}
}

func TestClockInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

// Property: for any batch of event offsets, events fire in nondecreasing
// time order and every event fires exactly once.
func TestEngineFiringOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			e.Schedule(Time(off), ClassDefault, func(now Time) { fired = append(fired, now) })
		}
		e.RunAll()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RNG.Intn stays within bounds and Float64 within [0,1).
func TestRNGBoundsProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		bound := int(n)%100 + 1
		for i := 0; i < 50; i++ {
			if v := r.Intn(bound); v < 0 || v >= bound {
				return false
			}
			if f := r.Float64(); f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGForkDeterministicAndDecorrelated(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	fa, fb := a.Fork(1), b.Fork(1)
	for i := 0; i < 100; i++ {
		if fa.Uint64() != fb.Uint64() {
			t.Fatal("same-seed same-salt forks diverged")
		}
	}
	// Different salts from the same parent state give different streams.
	c, d := NewRNG(42), NewRNG(42)
	fc, fd := c.Fork(1), d.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if fc.Uint64() == fd.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different-salt forks collided %d/100 draws", same)
	}
	// Forking advances the parent exactly one draw.
	p1, p2 := NewRNG(7), NewRNG(7)
	p1.Fork(0)
	p2.Uint64()
	if p1.Uint64() != p2.Uint64() {
		t.Error("Fork did not consume exactly one parent draw")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(7)
	p := r.Perm(50)
	seen := make(map[int]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), ClassDefault, func(Time) {})
		}
		e.RunAll()
	}
}

// testHook records EventDone callbacks for the profiling-hook tests.
type testHook struct {
	classes []Class
	wallOK  bool
}

func (h *testHook) EventDone(class Class, _ Time, wall time.Duration) {
	h.classes = append(h.classes, class)
	if wall >= 0 {
		h.wallOK = true
	}
}

func TestHookObservesClassesAndWall(t *testing.T) {
	e := NewEngine()
	h := &testHook{}
	e.SetHook(h)
	fault := e.Class("ras.fault")
	sample := e.Class("telemetry.sample")
	e.Schedule(10, fault, func(Time) {})
	e.Schedule(5, ClassDefault, func(Time) {})
	e.Schedule(20, sample, func(Time) {})
	e.RunAll()
	want := []Class{ClassDefault, fault, sample}
	if len(h.classes) != len(want) {
		t.Fatalf("hook saw %v, want %v", h.classes, want)
	}
	for i := range want {
		if h.classes[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", h.classes, want)
		}
	}
	if !h.wallOK {
		t.Error("hook never saw a wall duration")
	}
	if got := e.ClassName(fault); got != "ras.fault" {
		t.Errorf("ClassName(fault) = %q", got)
	}
}

func TestHookRemovable(t *testing.T) {
	e := NewEngine()
	h := &testHook{}
	e.SetHook(h)
	e.Schedule(1, ClassDefault, func(Time) {})
	e.SetHook(nil)
	e.RunAll()
	if len(h.classes) != 0 {
		t.Errorf("removed hook still observed %v", h.classes)
	}
}

// namedTestHook exercises the deprecated string-keyed observer seam.
type namedTestHook struct{ classes []string }

func (h *namedTestHook) EventDone(class string, _ Time, _ time.Duration) {
	h.classes = append(h.classes, class)
}

func TestDeprecatedNamedHookResolvesClassNames(t *testing.T) {
	e := NewEngine()
	h := &namedTestHook{}
	e.AddNamedHook(h)
	e.ScheduleNamed("ras.fault", 10, func(Time) {})
	e.Schedule(5, ClassDefault, func(Time) {})
	e.RunAll()
	want := []string{DefaultClass, "ras.fault"}
	if len(h.classes) != len(want) || h.classes[0] != want[0] || h.classes[1] != want[1] {
		t.Fatalf("named hook saw %v, want %v", h.classes, want)
	}
}

func TestClassInterningIsIdempotent(t *testing.T) {
	e := NewEngine()
	a := e.Class("hbm.access")
	b := e.Class("hbm.access")
	if a != b {
		t.Fatalf("interning twice gave %d and %d", a, b)
	}
	if a == ClassDefault {
		t.Fatal("fresh class collided with ClassDefault")
	}
	if e.ClassName(ClassDefault) != DefaultClass {
		t.Errorf("ClassName(ClassDefault) = %q", e.ClassName(ClassDefault))
	}
	if e.ClassName(Class(99)) != "?" {
		t.Errorf("unknown handle resolved to %q", e.ClassName(Class(99)))
	}
}

func TestScheduleUnknownClassPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Schedule with a foreign Class handle did not panic")
		}
	}()
	e.Schedule(10, Class(7), func(Time) {})
}

func TestProfileSnapshotAggregates(t *testing.T) {
	e := NewEngine()
	fault := e.Class("ras.fault")
	e.EnableProfiling()
	e.Schedule(10, fault, func(Time) {})
	e.Schedule(20, fault, func(Time) {})
	e.Schedule(30, ClassDefault, func(Time) {})
	e.RunAll()
	snap := e.ProfileSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d classes, want 2: %+v", len(snap), snap)
	}
	// Sorted by name: "event" < "ras.fault".
	if snap[0].Name != DefaultClass || snap[0].Fired != 1 {
		t.Errorf("snap[0] = %+v, want event×1", snap[0])
	}
	if snap[1].Name != "ras.fault" || snap[1].Fired != 2 {
		t.Errorf("snap[1] = %+v, want ras.fault×2", snap[1])
	}
}

func TestProfilingOffCollectsNothing(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, ClassDefault, func(Time) {})
	e.RunAll()
	if snap := e.ProfileSnapshot(); len(snap) != 0 {
		t.Errorf("unprofiled engine snapshot = %+v, want empty", snap)
	}
}

func TestQueueHighWater(t *testing.T) {
	e := NewEngine()
	if e.QueueHighWater() != 0 {
		t.Errorf("fresh engine high water = %d", e.QueueHighWater())
	}
	var ids []EventID
	for i := 0; i < 5; i++ {
		ids = append(ids, e.Schedule(Time(i+1), ClassDefault, func(Time) {}))
	}
	e.Cancel(ids[4])
	e.RunAll()
	if e.QueueHighWater() != 5 {
		t.Errorf("high water = %d, want 5 (cancelled events count until reaped)", e.QueueHighWater())
	}
	// Draining does not lower the mark.
	e.Schedule(e.Now()+1, ClassDefault, func(Time) {})
	if e.QueueHighWater() != 5 {
		t.Errorf("high water dropped to %d", e.QueueHighWater())
	}
}

func TestPastSchedulingPanicNamesEventClass(t *testing.T) {
	e := NewEngine()
	e.ScheduleNamed("warmup", 100, func(Time) {})
	e.RunAll()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ScheduleNamed in the past did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, `"ras.fault"`) {
			t.Errorf("panic %q does not name the event class", msg)
		}
		if !strings.Contains(msg, "50ps") || !strings.Contains(msg, "100ps") {
			t.Errorf("panic %q does not report the requested and current times", msg)
		}
	}()
	e.ScheduleNamed("ras.fault", 50, func(Time) {})
}

func TestAfterNegativeDelayPanics(t *testing.T) {
	// After used to clamp negative delays to "now", silently reordering
	// causality; it must now panic like any past-scheduling attempt.
	e := NewEngine()
	e.Schedule(100, ClassDefault, func(Time) {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("After with a negative delay did not panic")
		}
	}()
	e.After(-10, ClassDefault, func(Time) {})
}
