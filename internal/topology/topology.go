// Package topology models node-level architectures built from MI300
// sockets (§VIII, Fig. 18): each socket exposes eight x16 links (four
// capable of Infinity Fabric or PCIe, four IF-only in the model's
// bookkeeping), which can be composed into the paper's two exemplary
// nodes — four MI300A APUs fully connected by cache-coherent IF with two
// links per pair, and eight MI300X accelerators fully connected with one
// IF link per pair plus a PCIe link back to an EPYC host.
package topology

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// LinkUse is what a socket's x16 interface is configured as.
type LinkUse int

const (
	UseUnused LinkUse = iota
	UseIF             // coherent Infinity Fabric to another socket
	UsePCIe           // PCIe gen5 (host, NIC, storage)
)

// String names the use.
func (u LinkUse) String() string {
	switch u {
	case UseIF:
		return "IF"
	case UsePCIe:
		return "PCIe"
	default:
		return "unused"
	}
}

// Socket is one MI300 package in a node.
type Socket struct {
	Name string
	Spec *config.PlatformSpec
	// linkUses tracks the configuration of each of the socket's x16
	// interfaces.
	linkUses []LinkUse
}

// NewSocket returns a socket with all links unconfigured.
func NewSocket(name string, spec *config.PlatformSpec) *Socket {
	return &Socket{Name: name, Spec: spec, linkUses: make([]LinkUse, spec.SocketX16Links())}
}

// FreeLinks reports unconfigured x16 interfaces.
func (s *Socket) FreeLinks() int {
	var n int
	for _, u := range s.linkUses {
		if u == UseUnused {
			n++
		}
	}
	return n
}

// UsedFor reports how many links are configured for the given use.
func (s *Socket) UsedFor(use LinkUse) int {
	var n int
	for _, u := range s.linkUses {
		if u == use {
			n++
		}
	}
	return n
}

// claim configures one free link, returning its index.
func (s *Socket) claim(use LinkUse) (int, error) {
	for i, u := range s.linkUses {
		if u == UseUnused {
			s.linkUses[i] = use
			return i, nil
		}
	}
	return 0, fmt.Errorf("topology: %s has no free x16 links (all %d in use)", s.Name, len(s.linkUses))
}

// Connection is one configured inter-socket or socket-host link.
type Connection struct {
	A, B string // endpoint names ("host" for the CPU host)
	Use  LinkUse
	// BWPerDir is per-direction bandwidth in bytes/sec.
	BWPerDir float64
}

// Node is an assembled multi-socket system.
type Node struct {
	Name        string
	Sockets     []*Socket
	Host        *config.HostSpec // nil for self-hosted APU nodes
	Connections []Connection
}

// x16BWPerDir reports the per-direction bandwidth of one x16 link (§VIII:
// 64 GB/s per direction).
func x16BWPerDir(spec *config.PlatformSpec) float64 {
	if spec.IOD != nil {
		return spec.IOD.X16BWPerDir
	}
	return 32e9
}

// Connect joins two sockets with n IF links.
func (n *Node) Connect(a, b *Socket, links int) error {
	bw := x16BWPerDir(a.Spec)
	for i := 0; i < links; i++ {
		if _, err := a.claim(UseIF); err != nil {
			return err
		}
		if _, err := b.claim(UseIF); err != nil {
			return err
		}
		n.Connections = append(n.Connections, Connection{A: a.Name, B: b.Name, Use: UseIF, BWPerDir: bw})
	}
	return nil
}

// ConnectHost attaches a socket to the host CPU over PCIe.
func (n *Node) ConnectHost(s *Socket) error {
	return n.ConnectHostWith(s, UsePCIe, x16BWPerDir(s.Spec))
}

// ConnectHostWith attaches a socket to the host CPU with an explicit link
// type and bandwidth — coherent IF for Frontier-style nodes, PCIe
// otherwise.
func (n *Node) ConnectHostWith(s *Socket, use LinkUse, bwPerDir float64) error {
	if _, err := s.claim(use); err != nil {
		return err
	}
	n.Connections = append(n.Connections, Connection{A: s.Name, B: "host", Use: use, BWPerDir: bwPerDir})
	return nil
}

// QuadAPUNode builds the Fig. 18(a) node: four MI300A APUs in a
// fully-connected coherent IF topology with two x16 links between every
// pair (6 of 8 links per socket), leaving the rest for NICs/storage.
func QuadAPUNode() (*Node, error) {
	n := &Node{Name: "4xMI300A"}
	for i := 0; i < 4; i++ {
		n.Sockets = append(n.Sockets, NewSocket(fmt.Sprintf("APU%d", i), config.MI300A()))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := n.Connect(n.Sockets[i], n.Sockets[j], 2); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// OctoAcceleratorNode builds the Fig. 18(b) node: eight MI300X modules
// fully connected with one IF x16 link per pair (7 links), the eighth
// link providing PCIe connectivity to EPYC hosts.
func OctoAcceleratorNode() (*Node, error) {
	n := &Node{Name: "8xMI300X", Host: config.MI300X().Host}
	for i := 0; i < 8; i++ {
		n.Sockets = append(n.Sockets, NewSocket(fmt.Sprintf("GPU%d", i), config.MI300X()))
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if err := n.Connect(n.Sockets[i], n.Sockets[j], 1); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range n.Sockets {
		if err := n.ConnectHost(s); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// FrontierNode builds the Fig. 2 Frontier node architecture (§II.B): one
// optimized EPYC CPU and four MI250X accelerators, connected with
// coherent Infinity Fabric — a flat, cache-coherent address space that
// gives "an APU-like view of the different components: architecturally
// unified although implemented in physically distinct packages". Each GPU
// has a dedicated coherent IF link to the CPU (36 GB/s per direction) and
// the GPUs form a ring.
func FrontierNode() (*Node, error) {
	n := &Node{Name: "Frontier", Host: config.MI250X().Host}
	for i := 0; i < 4; i++ {
		n.Sockets = append(n.Sockets, NewSocket(fmt.Sprintf("MI250X-%d", i), config.MI250X()))
	}
	// GPU-GPU ring.
	for i := 0; i < 4; i++ {
		if err := n.Connect(n.Sockets[i], n.Sockets[(i+1)%4], 1); err != nil {
			return nil, err
		}
	}
	// Coherent CPU links.
	for _, s := range n.Sockets {
		if err := n.ConnectHostWith(s, UseIF, 36e9); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// IsFullyConnected reports whether every socket pair has a direct IF link.
func (n *Node) IsFullyConnected() bool {
	direct := map[[2]string]bool{}
	for _, c := range n.Connections {
		if c.Use == UseIF {
			direct[[2]string{c.A, c.B}] = true
			direct[[2]string{c.B, c.A}] = true
		}
	}
	for i := range n.Sockets {
		for j := range n.Sockets {
			if i == j {
				continue
			}
			if !direct[[2]string{n.Sockets[i].Name, n.Sockets[j].Name}] {
				return false
			}
		}
	}
	return true
}

// PairBWPerDir reports aggregate per-direction IF bandwidth between two
// sockets.
func (n *Node) PairBWPerDir(a, b string) float64 {
	var bw float64
	for _, c := range n.Connections {
		if c.Use != UseIF {
			continue
		}
		if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
			bw += c.BWPerDir
		}
	}
	return bw
}

// BisectionBWPerDir reports the per-direction bandwidth crossing an even
// split of the sockets (first half vs second half).
func (n *Node) BisectionBWPerDir() float64 {
	half := len(n.Sockets) / 2
	inFirst := map[string]bool{}
	for i := 0; i < half; i++ {
		inFirst[n.Sockets[i].Name] = true
	}
	var bw float64
	for _, c := range n.Connections {
		if c.Use != UseIF {
			continue
		}
		if inFirst[c.A] != inFirst[c.B] {
			bw += c.BWPerDir
		}
	}
	return bw
}

// BuildNetwork lowers the node onto a fabric.Network for timing
// experiments: one node per socket (plus the host), with parallel x16
// links between the same pair aggregated into one fabric link of summed
// bandwidth (traffic stripes across the physical links).
func (n *Node) BuildNetwork() *fabric.Network {
	net := fabric.New()
	ids := map[string]fabric.NodeID{}
	for _, s := range n.Sockets {
		ids[s.Name] = net.AddNode(s.Name, fabric.KindIOD).ID
	}
	if n.Host != nil {
		ids["host"] = net.AddNode("host", fabric.KindHost).ID
	}
	type pair struct {
		a, b string
		use  LinkUse
	}
	agg := map[pair]float64{}
	var order []pair
	for _, c := range n.Connections {
		if _, ok := ids[c.B]; !ok {
			continue // PCIe to NIC/storage endpoints not modeled
		}
		k := pair{c.A, c.B, c.Use}
		if _, seen := agg[k]; !seen {
			order = append(order, k)
		}
		agg[k] += c.BWPerDir
	}
	for _, k := range order {
		kind := config.LinkIFOP
		lat := 150 * sim.Nanosecond
		if k.use == UsePCIe {
			kind = config.LinkPCIe
			lat = 400 * sim.Nanosecond
		}
		net.Connect(ids[k.a], ids[k.b], kind, agg[k], lat)
	}
	return net
}

// Validate checks the §VIII link budget: no socket exceeds its eight x16
// links, and at most four links per socket carry PCIe (only four of the
// eight interfaces are PCIe-capable).
func (n *Node) Validate() error {
	for _, s := range n.Sockets {
		total := s.UsedFor(UseIF) + s.UsedFor(UsePCIe)
		if total > len(s.linkUses) {
			return fmt.Errorf("topology: %s uses %d of %d links", s.Name, total, len(s.linkUses))
		}
		if s.UsedFor(UsePCIe) > 4 {
			return fmt.Errorf("topology: %s uses %d PCIe links; only 4 interfaces are PCIe-capable",
				s.Name, s.UsedFor(UsePCIe))
		}
	}
	return nil
}
