package topology

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

func TestQuadAPUNode(t *testing.T) {
	n, err := QuadAPUNode()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if !n.IsFullyConnected() {
		t.Error("4xMI300A node not fully connected (Fig. 18a)")
	}
	// Two x16 links between every pair: 128 GB/s per direction.
	if bw := n.PairBWPerDir("APU0", "APU3"); bw != 128e9 {
		t.Errorf("pair BW = %g, want 128e9", bw)
	}
	// Six of eight links used per socket; two remain for NIC/storage.
	for _, s := range n.Sockets {
		if s.UsedFor(UseIF) != 6 {
			t.Errorf("%s uses %d IF links, want 6", s.Name, s.UsedFor(UseIF))
		}
		if s.FreeLinks() != 2 {
			t.Errorf("%s has %d free links, want 2", s.Name, s.FreeLinks())
		}
	}
}

func TestOctoAcceleratorNode(t *testing.T) {
	n, err := OctoAcceleratorNode()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if !n.IsFullyConnected() {
		t.Error("8xMI300X node not fully connected (Fig. 18b)")
	}
	for _, s := range n.Sockets {
		if s.UsedFor(UseIF) != 7 {
			t.Errorf("%s uses %d IF links, want 7", s.Name, s.UsedFor(UseIF))
		}
		if s.UsedFor(UsePCIe) != 1 {
			t.Errorf("%s uses %d PCIe links, want 1 (host)", s.Name, s.UsedFor(UsePCIe))
		}
		if s.FreeLinks() != 0 {
			t.Errorf("%s has %d free links, want 0", s.Name, s.FreeLinks())
		}
	}
}

func TestLinkBudgetEnforced(t *testing.T) {
	n := &Node{Name: "over"}
	a := NewSocket("A", config.MI300A())
	b := NewSocket("B", config.MI300A())
	n.Sockets = []*Socket{a, b}
	if err := n.Connect(a, b, 8); err != nil {
		t.Fatalf("8 links should fit: %v", err)
	}
	if err := n.Connect(a, b, 1); err == nil {
		t.Error("ninth link accepted; sockets only have eight x16 links")
	}
}

func TestSocketIOBandwidthMatchesPaper(t *testing.T) {
	// §VIII: 128 GB/s bidirectional per x16 link, 1,024 GB/s per socket.
	s := NewSocket("s", config.MI300A())
	perLink := 2 * x16BWPerDir(s.Spec)
	if perLink != 128e9 {
		t.Errorf("x16 bidir BW = %g, want 128 GB/s", perLink)
	}
	if total := float64(len(s.linkUses)) * perLink; total != 1024e9 {
		t.Errorf("socket IO = %g, want 1024 GB/s", total)
	}
}

func TestBisectionBandwidth(t *testing.T) {
	quad, _ := QuadAPUNode()
	// Split {APU0,APU1} vs {APU2,APU3}: 4 pairs cross × 2 links × 64 GB/s.
	if bw := quad.BisectionBWPerDir(); bw != 512e9 {
		t.Errorf("quad bisection = %g, want 512e9", bw)
	}
	octo, _ := OctoAcceleratorNode()
	// 16 crossing pairs × 1 link × 64 GB/s.
	if bw := octo.BisectionBWPerDir(); bw != 1024e9 {
		t.Errorf("octo bisection = %g, want 1024e9", bw)
	}
}

func TestBuildNetworkRouting(t *testing.T) {
	n, _ := QuadAPUNode()
	net := n.BuildNetwork()
	a := net.NodeByName("APU0")
	d := net.NodeByName("APU3")
	if a == nil || d == nil {
		t.Fatal("sockets missing from network")
	}
	hops, err := net.Hops(a.ID, d.ID)
	if err != nil || hops != 1 {
		t.Errorf("APU0->APU3 hops = %d (%v), want 1 (fully connected)", hops, err)
	}
	// Direct load-store access across sockets: a 1 MB transfer at IF
	// speeds, no host involvement.
	end, err := net.Transfer(0, a.ID, d.ID, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Serialization on one 64 GB/s link ≈ 16 µs.
	if ms := end.Microseconds(); ms < 8 || ms > 40 {
		t.Errorf("1 MB cross-socket = %v µs, want ~16", ms)
	}
}

func TestOctoNetworkIncludesHost(t *testing.T) {
	n, _ := OctoAcceleratorNode()
	net := n.BuildNetwork()
	host := net.NodeByName("host")
	if host == nil {
		t.Fatal("host missing")
	}
	g0 := net.NodeByName("GPU0")
	hops, err := net.Hops(g0.ID, host.ID)
	if err != nil || hops != 1 {
		t.Errorf("GPU0->host hops = %d (%v)", hops, err)
	}
	// All-to-all among 8 GPUs stays off the host links.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			a := net.NodeByName("GPU" + string(rune('0'+i)))
			b := net.NodeByName("GPU" + string(rune('0'+j)))
			if h, _ := net.Hops(a.ID, b.ID); h != 1 {
				t.Fatalf("GPU%d->GPU%d = %d hops", i, j, h)
			}
		}
	}
}

func TestAllToAllSaturation(t *testing.T) {
	// Concurrent all-to-all on the quad node: aggregate achieved BW must
	// exceed a single link but stay below the full-socket budget.
	n, _ := QuadAPUNode()
	net := n.BuildNetwork()
	const bytes = 64 << 20
	var end sim.Time
	count := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			a := net.NodeByName("APU" + string(rune('0'+i)))
			b := net.NodeByName("APU" + string(rune('0'+j)))
			done, err := net.Transfer(0, a.ID, b.ID, bytes)
			if err != nil {
				t.Fatal(err)
			}
			if done > end {
				end = done
			}
			count++
		}
	}
	total := float64(count) * bytes
	achieved := total / end.Seconds()
	if achieved < 500e9 {
		t.Errorf("all-to-all achieved %.0f GB/s, want > 500", achieved/1e9)
	}
	if achieved > 4*1024e9 {
		t.Errorf("all-to-all achieved %.0f GB/s, exceeds socket budgets", achieved/1e9)
	}
}

func TestFrontierNode(t *testing.T) {
	n, err := FrontierNode()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Sockets) != 4 {
		t.Fatalf("sockets = %d, want 4 (Fig. 2)", len(n.Sockets))
	}
	// A ring is deliberately NOT fully connected — unlike the MI300A
	// node that succeeded it.
	if n.IsFullyConnected() {
		t.Error("Frontier GPU ring should not be fully connected")
	}
	// Every GPU has a coherent IF link to the CPU (not PCIe).
	var hostIF int
	for _, c := range n.Connections {
		if c.B == "host" {
			if c.Use != UseIF {
				t.Errorf("host link is %s, want coherent IF (§II.B)", c.Use)
			}
			hostIF++
		}
	}
	if hostIF != 4 {
		t.Errorf("host IF links = %d, want 4", hostIF)
	}
}

func TestFrontierCPUGPUBandwidthGap(t *testing.T) {
	// The architectural gap the MI300A closes: Frontier's CPU reaches a
	// GPU's HBM at IF-link speed (36 GB/s/dir); MI300A's CCDs reach HBM
	// at package bandwidth.
	n, err := FrontierNode()
	if err != nil {
		t.Fatal(err)
	}
	net := n.BuildNetwork()
	host := net.NodeByName("host")
	gpu := net.NodeByName("MI250X-0")
	bw, err := net.PathBandwidth(host.ID, gpu.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bw != 36e9 {
		t.Errorf("CPU->GPU BW = %g, want 36 GB/s", bw)
	}
	apu := config.MI300A()
	if ratio := apu.PeakMemoryBW() / bw; ratio < 100 {
		t.Errorf("MI300A closes a %.0fx CPU-memory bandwidth gap, expected >100x", ratio)
	}
}

func TestFrontierRingHopCount(t *testing.T) {
	n, _ := FrontierNode()
	net := n.BuildNetwork()
	a := net.NodeByName("MI250X-0")
	c := net.NodeByName("MI250X-2")
	hops, err := net.Hops(a.ID, c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hops != 2 {
		t.Errorf("opposite ring GPUs = %d hops, want 2", hops)
	}
}
