package collective

import (
	"testing"

	"repro/internal/topology"
)

func quadComm(t testing.TB) *Comm {
	t.Helper()
	n, err := topology.QuadAPUNode()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComm(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func octoComm(t testing.TB) *Comm {
	t.Helper()
	n, err := topology.OctoAcceleratorNode()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComm(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRingAllReduceQuad(t *testing.T) {
	c := quadComm(t)
	r, err := c.RingAllReduce(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps != 6 { // 2(p-1), p=4
		t.Errorf("steps = %d, want 6", r.Steps)
	}
	if r.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	// The ring uses only one neighbor link per step: bus BW is bounded by
	// a pair's bandwidth (128 GB/s/dir on the quad node).
	if r.BusBW > 130e9 {
		t.Errorf("ring bus BW %.0f GB/s exceeds the pair link", r.BusBW/1e9)
	}
	if r.BusBW < 30e9 {
		t.Errorf("ring bus BW %.0f GB/s implausibly low", r.BusBW/1e9)
	}
}

func TestDirectBeatsRingOnFullyConnectedNode(t *testing.T) {
	// The whole point of the Fig. 18 fully-connected topology: the
	// direct algorithm engages every link simultaneously while the ring
	// leaves most idle.
	cr := quadComm(t)
	ring, err := cr.RingAllReduce(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	cd := quadComm(t)
	direct, err := cd.DirectAllReduce(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Time >= ring.Time {
		t.Errorf("direct (%v) should beat ring (%v) on a fully-connected node",
			direct.Time, ring.Time)
	}
	if direct.BusBW <= ring.BusBW {
		t.Errorf("direct bus BW %.0f <= ring %.0f GB/s", direct.BusBW/1e9, ring.BusBW/1e9)
	}
}

func TestOctoNodeCollectives(t *testing.T) {
	c := octoComm(t)
	r, err := c.DirectAllReduce(0, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 {
		t.Fatal("no time")
	}
	g, err := c.AllGather(r.Time, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	if g.Time <= 0 {
		t.Fatal("allgather no time")
	}
}

func TestBroadcast(t *testing.T) {
	c := quadComm(t)
	r, err := c.Broadcast(0, 0, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	// Root pushes 3 copies over 3 disjoint pair links concurrently:
	// ~bytes/pairBW total.
	seconds := float64(1<<28) / 128e9
	wantMin := int64(seconds * 1e12) // ps
	if int64(r.Time) < wantMin {
		t.Errorf("broadcast %v faster than a single pair link allows", r.Time)
	}
	if _, err := c.Broadcast(0, 99, 1024); err == nil {
		t.Error("bad root accepted")
	}
}

func TestCommValidation(t *testing.T) {
	n := &topology.Node{Name: "solo"}
	if _, err := NewComm(n); err == nil {
		t.Error("empty node accepted")
	}
}

func TestNodesAllReduceEquallyFast(t *testing.T) {
	// A neat consequence of the Fig. 18 link budgets: the quad node
	// moves n/4 chunks over 128 GB/s pairs, the octo node n/8 chunks
	// over 64 GB/s pairs — the direct all-reduce finishes in the same
	// wall time on both, so the larger node gets higher aggregate
	// bandwidth for free.
	q := quadComm(t)
	o := octoComm(t)
	rq, err := q.DirectAllReduce(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := o.DirectAllReduce(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rq.Time) / float64(ro.Time)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("quad (%v) and octo (%v) all-reduce times should match within 10%%", rq.Time, ro.Time)
	}
	if ro.BusBW <= rq.BusBW {
		t.Errorf("octo bus BW (%.0f GB/s) should exceed quad (%.0f GB/s)", ro.BusBW/1e9, rq.BusBW/1e9)
	}
}
