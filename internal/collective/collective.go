// Package collective implements the communication collectives that HPC
// and ML workloads run over the Fig. 18 node topologies: ring and
// fully-connected (direct) all-reduce, all-gather, reduce-scatter, and
// broadcast, each timed on the node's fabric model with per-link
// contention. The paper's node designs — two x16 links per APU pair
// (Fig. 18a) or one per accelerator pair (Fig. 18b) — determine which
// algorithm wins at which message size.
package collective

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Comm is a communicator over the sockets of a node.
type Comm struct {
	node  *topology.Node
	net   *fabric.Network
	ranks []fabric.NodeID
}

// NewComm builds a communicator spanning every socket in the node.
func NewComm(n *topology.Node) (*Comm, error) {
	net := n.BuildNetwork()
	c := &Comm{node: n, net: net}
	for _, s := range n.Sockets {
		fn := net.NodeByName(s.Name)
		if fn == nil {
			return nil, fmt.Errorf("collective: socket %s missing from network", s.Name)
		}
		c.ranks = append(c.ranks, fn.ID)
	}
	if len(c.ranks) < 2 {
		return nil, fmt.Errorf("collective: need >= 2 ranks, have %d", len(c.ranks))
	}
	return c, nil
}

// Size reports the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// Network exposes the underlying fabric (for stats).
func (c *Comm) Network() *fabric.Network { return c.net }

// Result is the outcome of one collective.
type Result struct {
	Algorithm string
	Bytes     int64
	Steps     int
	Time      sim.Time
	// BusBW is the conventional "bus bandwidth" figure of merit:
	// algorithm-bytes / time (2(p-1)/p × n for all-reduce).
	BusBW float64
}

// send issues one point-to-point transfer and returns its completion.
func (c *Comm) send(start sim.Time, from, to int, bytes int64) (sim.Time, error) {
	return c.net.Transfer(start, c.ranks[from], c.ranks[to], bytes)
}

// RingAllReduce reduces bytes across all ranks with the classic
// 2(p-1)-step ring: reduce-scatter then all-gather, chunk = n/p.
func (c *Comm) RingAllReduce(start sim.Time, bytes int64) (*Result, error) {
	p := len(c.ranks)
	chunk := bytes / int64(p)
	if chunk == 0 {
		chunk = 1
	}
	t := start
	steps := 2 * (p - 1)
	for s := 0; s < steps; s++ {
		var stepEnd sim.Time
		for r := 0; r < p; r++ {
			done, err := c.send(t, r, (r+1)%p, chunk)
			if err != nil {
				return nil, err
			}
			if done > stepEnd {
				stepEnd = done
			}
		}
		t = stepEnd
	}
	res := &Result{Algorithm: "ring-allreduce", Bytes: bytes, Steps: steps, Time: t - start}
	res.BusBW = algoBusBW(bytes, p, res.Time)
	return res, nil
}

// DirectAllReduce exploits the fully-connected topology: one
// reduce-scatter step where every rank sends each peer its 1/p chunk
// directly, then one all-gather step — 2 steps total, at the cost of
// p-1 concurrent flows per link pair.
func (c *Comm) DirectAllReduce(start sim.Time, bytes int64) (*Result, error) {
	p := len(c.ranks)
	chunk := bytes / int64(p)
	if chunk == 0 {
		chunk = 1
	}
	t := start
	for phase := 0; phase < 2; phase++ {
		var stepEnd sim.Time
		for r := 0; r < p; r++ {
			for peer := 0; peer < p; peer++ {
				if peer == r {
					continue
				}
				done, err := c.send(t, r, peer, chunk)
				if err != nil {
					return nil, err
				}
				if done > stepEnd {
					stepEnd = done
				}
			}
		}
		t = stepEnd
	}
	res := &Result{Algorithm: "direct-allreduce", Bytes: bytes, Steps: 2, Time: t - start}
	res.BusBW = algoBusBW(bytes, p, res.Time)
	return res, nil
}

// AllGather distributes each rank's bytes/p shard to every peer
// directly.
func (c *Comm) AllGather(start sim.Time, bytes int64) (*Result, error) {
	p := len(c.ranks)
	shard := bytes / int64(p)
	if shard == 0 {
		shard = 1
	}
	var end sim.Time
	for r := 0; r < p; r++ {
		for peer := 0; peer < p; peer++ {
			if peer == r {
				continue
			}
			done, err := c.send(start, r, peer, shard)
			if err != nil {
				return nil, err
			}
			if done > end {
				end = done
			}
		}
	}
	res := &Result{Algorithm: "allgather", Bytes: bytes, Steps: 1, Time: end - start}
	if res.Time > 0 {
		res.BusBW = float64(shard) * float64(p-1) / res.Time.Seconds()
	}
	return res, nil
}

// Broadcast sends bytes from root to every other rank directly.
func (c *Comm) Broadcast(start sim.Time, root int, bytes int64) (*Result, error) {
	if root < 0 || root >= len(c.ranks) {
		return nil, fmt.Errorf("collective: root %d out of range", root)
	}
	var end sim.Time
	for peer := range c.ranks {
		if peer == root {
			continue
		}
		done, err := c.send(start, root, peer, bytes)
		if err != nil {
			return nil, err
		}
		if done > end {
			end = done
		}
	}
	res := &Result{Algorithm: "broadcast", Bytes: bytes, Steps: 1, Time: end - start}
	if res.Time > 0 {
		res.BusBW = float64(bytes) / res.Time.Seconds()
	}
	return res, nil
}

// algoBusBW computes the all-reduce bus bandwidth: 2(p-1)/p × n / time.
func algoBusBW(bytes int64, p int, t sim.Time) float64 {
	if t <= 0 {
		return 0
	}
	return 2 * float64(p-1) / float64(p) * float64(bytes) / t.Seconds()
}
