// Package cpu models the host-processor side of MI300A: three "Zen 4"
// CCDs of eight cores each (§IV.C) that run the operating system, the
// un-offloaded portions of user code, and the kernel launch/synchronize
// choreography of the programming model (§VI). The model executes Task
// closures functionally against the shared memory space while charging
// time from the cores' peak arithmetic rate and the platform memory path —
// the same split used on the GPU side.
package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Env supplies the memory environment for CPU execution.
type Env struct {
	// Mem is the address space tasks operate on (the unified HBM on an
	// APU, host DDR on a discrete platform).
	Mem *mem.Space
	// MemTime charges bulk memory traffic and returns completion. Nil
	// means memory time is not modeled.
	MemTime func(start sim.Time, ccd int, bytes int64, write bool) sim.Time
}

func (e *Env) memTime(start sim.Time, ccd int, bytes int64, write bool) sim.Time {
	if e == nil || e.MemTime == nil || bytes <= 0 {
		return start
	}
	return e.MemTime(start, ccd, bytes, write)
}

// Task is a unit of CPU work: a functional body plus a resource footprint.
type Task struct {
	Name         string
	Flops        float64
	BytesRead    int64
	BytesWritten int64
	// Body optionally performs real loads/stores; it receives the task's
	// chunk index when run via ExecuteParallel (0 otherwise).
	Body func(env *Env, chunk int)
}

// Core is one Zen 4 core with an availability horizon.
type Core struct {
	CCD      int
	Index    int
	nextFree sim.Time
	tasks    uint64
}

// Stats accumulates complex-wide execution counters.
type Stats struct {
	Tasks        uint64
	Flops        float64
	BytesRead    uint64
	BytesWritten uint64
	BusyTime     sim.Time
}

// Complex is the full CPU complex: CCDs × cores sharing per-CCD L3s.
type Complex struct {
	Spec  *config.CCDSpec
	CCDs  int
	cores []*Core
	l3s   []*cache.SetAssoc
	env   *Env
	stats Stats
}

// NewComplex builds a CPU complex of ccds dies from the spec.
func NewComplex(spec *config.CCDSpec, ccds int, env *Env) *Complex {
	if spec == nil || ccds <= 0 {
		panic(fmt.Sprintf("cpu: invariant violated: a complex needs a CCD spec and a positive die count (spec=%v ccds=%d)", spec, ccds))
	}
	if env == nil {
		env = &Env{}
	}
	c := &Complex{Spec: spec, CCDs: ccds, env: env}
	for d := 0; d < ccds; d++ {
		for i := 0; i < spec.Cores; i++ {
			c.cores = append(c.cores, &Core{CCD: d, Index: i})
		}
		c.l3s = append(c.l3s, cache.NewSetAssoc(fmt.Sprintf("ccd%d.l3", d), spec.L3Bytes, 64, 16))
	}
	return c
}

// Cores reports the total core count.
func (c *Complex) Cores() int { return len(c.cores) }

// L3 returns CCD d's L3 model.
func (c *Complex) L3(d int) *cache.SetAssoc { return c.l3s[d] }

// Env returns the execution environment.
func (c *Complex) Env() *Env { return c.env }

// Stats returns a copy of the counters.
func (c *Complex) Stats() Stats { return c.stats }

// ResetStats zeroes counters and core availability.
func (c *Complex) ResetStats() {
	c.stats = Stats{}
	for _, core := range c.cores {
		core.nextFree = 0
		core.tasks = 0
	}
}

// coreFlops reports one core's peak flops/sec.
func (c *Complex) coreFlops() float64 { return c.Spec.ClockHz * c.Spec.FlopsCore }

func (c *Complex) earliestCore() *Core {
	best := c.cores[0]
	for _, core := range c.cores[1:] {
		if core.nextFree < best.nextFree {
			best = core
		}
	}
	return best
}

// run places one task chunk on the earliest-free core.
func (c *Complex) run(start sim.Time, t Task, chunk int) sim.Time {
	core := c.earliestCore()
	begin := start
	if core.nextFree > begin {
		begin = core.nextFree
	}
	if t.Body != nil {
		t.Body(c.env, chunk)
	}
	computeDone := begin + sim.FromSeconds(t.Flops/c.coreFlops())
	// Loads and stores pipeline from the task's start.
	rdDone := c.env.memTime(begin, core.CCD, t.BytesRead, false)
	wrDone := c.env.memTime(begin, core.CCD, t.BytesWritten, true)
	done := computeDone
	if rdDone > done {
		done = rdDone
	}
	if wrDone > done {
		done = wrDone
	}
	core.nextFree = done
	core.tasks++
	c.stats.Tasks++
	c.stats.Flops += t.Flops
	c.stats.BytesRead += uint64(t.BytesRead)
	c.stats.BytesWritten += uint64(t.BytesWritten)
	c.stats.BusyTime += done - begin
	return done
}

// Execute runs the task on a single core starting at start and returns its
// completion time.
func (c *Complex) Execute(start sim.Time, t Task) sim.Time {
	return c.run(start, t, 0)
}

// TaskTime reports the single-core duration of a task without placing it
// on a core (compute-only; memory time must be charged by the caller).
// Used when modeling an explicitly single-threaded consumer loop.
func (c *Complex) TaskTime(t Task) sim.Time {
	return sim.FromSeconds(t.Flops / c.coreFlops())
}

// ExecuteParallel splits the task into chunks equal chunks across the
// complex's cores (an OpenMP-style parallel region) and returns when the
// last chunk retires. Resource footprints are divided evenly; the Body is
// called once per chunk with its index.
func (c *Complex) ExecuteParallel(start sim.Time, t Task, chunks int) sim.Time {
	if chunks <= 0 {
		chunks = len(c.cores)
	}
	per := Task{
		Name:         t.Name,
		Flops:        t.Flops / float64(chunks),
		BytesRead:    t.BytesRead / int64(chunks),
		BytesWritten: t.BytesWritten / int64(chunks),
		Body:         t.Body,
	}
	end := start
	for i := 0; i < chunks; i++ {
		if done := c.run(start, per, i); done > end {
			end = done
		}
	}
	return end
}

// SpinWait models a core polling a coherent flag until target (the Fig. 15
// consumer loop): the core is considered busy until the flag's set time
// plus the coherence-miss visibility latency.
func (c *Complex) SpinWait(start, flagSetAt sim.Time, visibility sim.Time) sim.Time {
	end := flagSetAt + visibility
	if end < start {
		end = start
	}
	core := c.earliestCore()
	if core.nextFree < end {
		core.nextFree = end
	}
	c.stats.BusyTime += end - start
	return end
}
