package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newComplex(env *Env) *Complex {
	return NewComplex(config.MI300A().CCD, 3, env)
}

func TestComplexGeometry(t *testing.T) {
	c := newComplex(nil)
	if c.Cores() != 24 {
		t.Errorf("cores = %d, want 24 (§IV.C)", c.Cores())
	}
	if got := c.L3(0).Size(); got != 32<<20 {
		t.Errorf("L3 = %d, want 32 MiB", got)
	}
}

func TestExecuteComputeTime(t *testing.T) {
	c := newComplex(nil)
	// One core at 3.7 GHz × 16 flops/clk = 59.2 GF. 59.2e9 flops = 1 s.
	done := c.Execute(0, Task{Name: "t", Flops: 59.2e9})
	if got := done.Seconds(); got < 0.999 || got > 1.001 {
		t.Errorf("compute time = %v s, want ~1", got)
	}
}

func TestExecuteParallelScales(t *testing.T) {
	c := newComplex(nil)
	t1 := c.Execute(0, Task{Flops: 59.2e9})
	c.ResetStats()
	t24 := c.ExecuteParallel(0, Task{Flops: 59.2e9}, 24)
	speedup := float64(t1) / float64(t24)
	if speedup < 23 || speedup > 25 {
		t.Errorf("24-core speedup = %.1f, want ~24", speedup)
	}
}

func TestExecuteParallelDefaultChunks(t *testing.T) {
	c := newComplex(nil)
	c.ExecuteParallel(0, Task{Flops: 24e6}, 0)
	if got := c.Stats().Tasks; got != 24 {
		t.Errorf("default chunks ran %d tasks, want 24", got)
	}
}

func TestTasksQueueOnBusyCores(t *testing.T) {
	c := NewComplex(config.MI300A().CCD, 1, nil) // 8 cores
	var last sim.Time
	for i := 0; i < 16; i++ {
		last = c.Execute(0, Task{Flops: 59.2e9}) // 1s each
	}
	// 16 one-second tasks on 8 cores: finish at ~2 s.
	if got := last.Seconds(); got < 1.99 || got > 2.01 {
		t.Errorf("16 tasks on 8 cores finished at %v s, want ~2", got)
	}
}

func TestBodyExecutesFunctionally(t *testing.T) {
	space := mem.NewSpace("ddr", 1<<24)
	c := newComplex(&Env{Mem: space})
	addr, _ := space.Alloc(8*24, 0)
	c.ExecuteParallel(0, Task{
		Flops: 1000,
		Body: func(env *Env, chunk int) {
			env.Mem.WriteFloat64(addr+int64(chunk)*8, float64(chunk)*1.5)
		},
	}, 24)
	for i := int64(0); i < 24; i++ {
		if got := space.ReadFloat64(addr + i*8); got != float64(i)*1.5 {
			t.Fatalf("chunk %d wrote %v", i, got)
		}
	}
}

func TestMemTimeDominatesMemBoundTask(t *testing.T) {
	ddr := mem.NewHBM("ddr", 1, 12, 460e9, 1<<30, 80*sim.Nanosecond)
	var cursor int64
	env := &Env{
		MemTime: func(start sim.Time, ccd int, bytes int64, write bool) sim.Time {
			a := cursor % (1 << 28)
			cursor += bytes
			return ddr.Access(start, a, bytes, write)
		},
	}
	c := newComplex(env)
	// 46 GB of traffic at 460 GB/s floor = 100 ms; trivial compute.
	done := c.Execute(0, Task{Flops: 1e6, BytesRead: 46e9})
	if got := done.Milliseconds(); got < 99 {
		t.Errorf("mem-bound task = %v ms, want >= ~100", got)
	}
}

func TestSpinWait(t *testing.T) {
	c := newComplex(nil)
	// Flag set at 10µs, visibility 100ns: consumer proceeds at 10.1µs.
	end := c.SpinWait(0, 10*sim.Microsecond, 100*sim.Nanosecond)
	if end != 10*sim.Microsecond+100*sim.Nanosecond {
		t.Errorf("SpinWait = %v", end)
	}
	// If the flag was set before the consumer started waiting, no stall.
	end = c.SpinWait(50*sim.Microsecond, 10*sim.Microsecond, 100*sim.Nanosecond)
	if end != 50*sim.Microsecond {
		t.Errorf("pre-set flag SpinWait = %v, want 50µs", end)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := newComplex(nil)
	c.Execute(0, Task{Flops: 100, BytesRead: 64, BytesWritten: 32})
	st := c.Stats()
	if st.Tasks != 1 || st.Flops != 100 || st.BytesRead != 64 || st.BytesWritten != 32 {
		t.Errorf("stats = %+v", st)
	}
	c.ResetStats()
	if c.Stats().Tasks != 0 {
		t.Error("ResetStats failed")
	}
}

// Property: parallel execution is never slower than serial for the same
// total work, and both conserve total flops in stats.
func TestParallelNeverSlowerProperty(t *testing.T) {
	f := func(flopsMant uint16, chunks uint8) bool {
		flops := float64(flopsMant)*1e6 + 1e6
		n := int(chunks)%24 + 1
		c1 := newComplex(nil)
		serial := c1.Execute(0, Task{Flops: flops})
		c2 := newComplex(nil)
		parallel := c2.ExecuteParallel(0, Task{Flops: flops}, n)
		return parallel <= serial+sim.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
