// Package thermal implements a two-dimensional steady-state heat solver
// over the package floorplan, reproducing the thermal simulation
// projections of §V.E (Fig. 12b/c): with a compute-intensive power map the
// hotspots concentrate on the XCDs; with a memory-intensive map the HBM
// PHYs along the periphery and the USR PHYs between the IODs stand out.
//
// The model is a finite-difference Laplace solver with a per-cell heat
// source (the component power maps) and a distributed heat-sink term (the
// cold plate above the die stack): k·∇²T + q − g·(T − T_amb) = 0, solved
// by Gauss-Seidel relaxation. Lateral spreading (k) versus sink
// conductance (g) controls hotspot sharpness.
package thermal

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/chiplet"
)

// Solver holds the grid geometry and material parameters.
type Solver struct {
	Nx, Ny int
	// Spread is the lateral conduction weight relative to the vertical
	// sink conductance; higher values blur hotspots.
	Spread float64
	// AmbientC is the coolant temperature in Celsius.
	AmbientC float64
	// RiseScale converts W/cell of dissipation into °C of local rise at
	// equilibrium (absorbs thickness, k, and cell size).
	RiseScale float64
	// Tolerance terminates relaxation when the max update is below it.
	Tolerance float64
	// MaxIters bounds relaxation.
	MaxIters int
}

// NewSolver returns a solver with reasonable defaults for an nx×ny grid.
func NewSolver(nx, ny int) *Solver {
	if nx < 4 || ny < 4 {
		panic(fmt.Sprintf("thermal: invariant violated: solver grid must be at least 4x4 (got %dx%d)", nx, ny))
	}
	return &Solver{
		Nx: nx, Ny: ny,
		Spread:    2.0,
		AmbientC:  35,
		RiseScale: 28,
		Tolerance: 1e-4,
		MaxIters:  20000,
	}
}

// HotspotEstimate is a closed-form steady-state hotspot estimate for a
// uniformly dissipating region: ambient plus a rise proportional to power
// density (W/mm²). The full Gauss-Seidel Solve costs O(grid² · iters) and
// is far too expensive to run at telemetry sampling cadence; this is the
// cheap per-sample companion the power governor's hotspot probe uses.
func HotspotEstimate(ambientC, watts, areaMM2 float64) float64 {
	if watts <= 0 || areaMM2 <= 0 {
		return ambientC
	}
	// °C·mm²/W through the die stack and cold plate, calibrated so the
	// MI300A XCD domain at its 390 W peak over six ~115 mm² dies lands
	// near the ~85 °C hotspots of the Fig. 12 maps at 35 °C coolant.
	const thetaCMM2PerW = 88.0
	return ambientC + thetaCMM2PerW*watts/areaMM2
}

// Field is a solved temperature field in Celsius, row-major [y][x].
type Field struct {
	Nx, Ny int
	T      [][]float64
}

// Max reports the peak temperature and its cell.
func (f *Field) Max() (tmax float64, x, y int) {
	tmax = math.Inf(-1)
	for j := 0; j < f.Ny; j++ {
		for i := 0; i < f.Nx; i++ {
			if f.T[j][i] > tmax {
				tmax, x, y = f.T[j][i], i, j
			}
		}
	}
	return
}

// Min reports the coolest cell temperature.
func (f *Field) Min() float64 {
	m := math.Inf(1)
	for j := 0; j < f.Ny; j++ {
		for i := 0; i < f.Nx; i++ {
			if f.T[j][i] < m {
				m = f.T[j][i]
			}
		}
	}
	return m
}

// MeanOver reports the mean temperature of cells within the rect (grid
// coordinates).
func (f *Field) MeanOver(x0, y0, x1, y1 int) float64 {
	var sum float64
	var n int
	for j := y0; j < y1 && j < f.Ny; j++ {
		for i := x0; i < x1 && i < f.Nx; i++ {
			if i >= 0 && j >= 0 {
				sum += f.T[j][i]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render draws the field as an ASCII heat map (one char per cell, hotter =
// denser glyph), ymax at the top.
func (f *Field) Render() string {
	const ramp = " .:-=+*#%@"
	lo := f.Min()
	hi, _, _ := f.Max()
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	for j := f.Ny - 1; j >= 0; j-- {
		for i := 0; i < f.Nx; i++ {
			idx := int((f.T[j][i] - lo) / span * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Solve relaxes the temperature field for the given power map (W per
// cell, [y][x], dimensions must match the solver grid).
func (s *Solver) Solve(powerW [][]float64) *Field {
	if len(powerW) != s.Ny || len(powerW[0]) != s.Nx {
		panic(fmt.Sprintf("thermal: invariant violated: power map %dx%d must match the solver grid %dx%d",
			len(powerW[0]), len(powerW), s.Nx, s.Ny))
	}
	T := make([][]float64, s.Ny)
	for j := range T {
		T[j] = make([]float64, s.Nx)
		for i := range T[j] {
			T[j][i] = s.AmbientC
		}
	}
	// Gauss-Seidel: T = (spread*avg(neighbors) + ambient + rise*q) / (spread+1)
	for iter := 0; iter < s.MaxIters; iter++ {
		var maxDelta float64
		for j := 0; j < s.Ny; j++ {
			for i := 0; i < s.Nx; i++ {
				var nsum float64
				var n float64
				if i > 0 {
					nsum += T[j][i-1]
					n++
				}
				if i < s.Nx-1 {
					nsum += T[j][i+1]
					n++
				}
				if j > 0 {
					nsum += T[j-1][i]
					n++
				}
				if j < s.Ny-1 {
					nsum += T[j+1][i]
					n++
				}
				avg := nsum / n
				newT := (s.Spread*avg + s.AmbientC + s.RiseScale*powerW[j][i]) / (s.Spread + 1)
				if d := math.Abs(newT - T[j][i]); d > maxDelta {
					maxDelta = d
				}
				T[j][i] = newT
			}
		}
		if maxDelta < s.Tolerance {
			break
		}
	}
	return &Field{Nx: s.Nx, Ny: s.Ny, T: T}
}

// PowerMap rasterizes per-component power onto the solver grid: each
// component's watts are spread uniformly over the cells its rectangle
// covers. bounds is the package extent in µm.
func (s *Solver) PowerMap(bounds chiplet.Rect, comps []chiplet.Component, watts map[string]float64) [][]float64 {
	grid := make([][]float64, s.Ny)
	for j := range grid {
		grid[j] = make([]float64, s.Nx)
	}
	cellW := float64(bounds.W) / float64(s.Nx)
	cellH := float64(bounds.H) / float64(s.Ny)
	for _, c := range comps {
		w, ok := watts[c.Name]
		if !ok || w <= 0 {
			continue
		}
		i0 := int(float64(c.Rect.X) / cellW)
		i1 := int(math.Ceil(float64(c.Rect.X+c.Rect.W) / cellW))
		j0 := int(float64(c.Rect.Y) / cellH)
		j1 := int(math.Ceil(float64(c.Rect.Y+c.Rect.H) / cellH))
		if i1 > s.Nx {
			i1 = s.Nx
		}
		if j1 > s.Ny {
			j1 = s.Ny
		}
		cells := (i1 - i0) * (j1 - j0)
		if cells <= 0 {
			continue
		}
		per := w / float64(cells)
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				grid[j][i] += per
			}
		}
	}
	return grid
}

// CellOf maps a package-coordinate point to its grid cell.
func (s *Solver) CellOf(bounds chiplet.Rect, p chiplet.Point) (x, y int) {
	x = p.X * s.Nx / bounds.W
	y = p.Y * s.Ny / bounds.H
	if x >= s.Nx {
		x = s.Nx - 1
	}
	if y >= s.Ny {
		y = s.Ny - 1
	}
	return
}

// RectOf maps a package-coordinate rect to grid-cell bounds.
func (s *Solver) RectOf(bounds chiplet.Rect, r chiplet.Rect) (x0, y0, x1, y1 int) {
	x0, y0 = s.CellOf(bounds, chiplet.Point{X: r.X, Y: r.Y})
	x1, y1 = s.CellOf(bounds, chiplet.Point{X: r.X + r.W, Y: r.Y + r.H})
	if x1 <= x0 {
		x1 = x0 + 1
	}
	if y1 <= y0 {
		y1 = y0 + 1
	}
	return
}
