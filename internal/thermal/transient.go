package thermal

import (
	"fmt"

	"repro/internal/sim"
)

// Transient extends the steady-state solver with explicit time stepping,
// so the §V.E scenario — a workload transitioning between
// compute-dominated and memory-intensive phases — can be watched as the
// hotspots migrate from the XCDs to the HBM/USR PHYs and back. The model
// is a forward-Euler update of the same conduction + sink + source
// equation, with a per-cell heat capacity setting the thermal time
// constant.
type Transient struct {
	Solver *Solver
	// TimeConstant is the cell thermal RC (how fast temperature chases
	// its steady-state value).
	TimeConstant sim.Time
	// field is the current temperature state.
	field *Field
	now   sim.Time
}

// NewTransient starts a transient simulation at ambient.
func NewTransient(s *Solver, timeConstant sim.Time) *Transient {
	if timeConstant <= 0 {
		panic(fmt.Sprintf("thermal: invariant violated: transient time constant must be positive (got %v)", timeConstant))
	}
	T := make([][]float64, s.Ny)
	for j := range T {
		T[j] = make([]float64, s.Nx)
		for i := range T[j] {
			T[j][i] = s.AmbientC
		}
	}
	return &Transient{
		Solver:       s,
		TimeConstant: timeConstant,
		field:        &Field{Nx: s.Nx, Ny: s.Ny, T: T},
	}
}

// Now reports the simulation time.
func (tr *Transient) Now() sim.Time { return tr.now }

// Field returns the current temperature state.
func (tr *Transient) Field() *Field { return tr.field }

// Step advances the field by dt under the given power map: each cell
// relaxes toward its local quasi-steady target (conduction-averaged
// neighbors + source) with the configured time constant.
func (tr *Transient) Step(powerW [][]float64, dt sim.Time) error {
	s := tr.Solver
	if len(powerW) != s.Ny || len(powerW[0]) != s.Nx {
		return fmt.Errorf("thermal: power map %dx%d does not match grid %dx%d",
			len(powerW[0]), len(powerW), s.Nx, s.Ny)
	}
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt")
	}
	alpha := float64(dt) / float64(tr.TimeConstant)
	if alpha > 1 {
		alpha = 1 // unconditionally stable clamp
	}
	T := tr.field.T
	next := make([][]float64, s.Ny)
	for j := 0; j < s.Ny; j++ {
		next[j] = make([]float64, s.Nx)
		for i := 0; i < s.Nx; i++ {
			var nsum float64
			var n float64
			if i > 0 {
				nsum += T[j][i-1]
				n++
			}
			if i < s.Nx-1 {
				nsum += T[j][i+1]
				n++
			}
			if j > 0 {
				nsum += T[j-1][i]
				n++
			}
			if j < s.Ny-1 {
				nsum += T[j+1][i]
				n++
			}
			target := (s.Spread*(nsum/n) + s.AmbientC + s.RiseScale*powerW[j][i]) / (s.Spread + 1)
			next[j][i] = T[j][i] + alpha*(target-T[j][i])
		}
	}
	tr.field.T = next
	tr.now += dt
	return nil
}

// Run advances the field through duration with the given step size.
func (tr *Transient) Run(powerW [][]float64, duration, dt sim.Time) error {
	for elapsed := sim.Time(0); elapsed < duration; elapsed += dt {
		if err := tr.Step(powerW, dt); err != nil {
			return err
		}
	}
	return nil
}
