package thermal

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chiplet"
	"repro/internal/sim"
)

func flatMap(nx, ny int, w float64) [][]float64 {
	g := make([][]float64, ny)
	for j := range g {
		g[j] = make([]float64, nx)
		for i := range g[j] {
			g[j][i] = w
		}
	}
	return g
}

func TestZeroPowerIsAmbient(t *testing.T) {
	s := NewSolver(16, 16)
	f := s.Solve(flatMap(16, 16, 0))
	max, _, _ := f.Max()
	if max != s.AmbientC || f.Min() != s.AmbientC {
		t.Errorf("zero-power field = [%v, %v], want ambient %v", f.Min(), max, s.AmbientC)
	}
}

func TestHotspotAtSource(t *testing.T) {
	s := NewSolver(32, 32)
	g := flatMap(32, 32, 0)
	g[8][24] = 5 // point source
	f := s.Solve(g)
	max, x, y := f.Max()
	if x != 24 || y != 8 {
		t.Errorf("hotspot at (%d,%d), want (24,8)", x, y)
	}
	if max <= s.AmbientC {
		t.Error("source did not heat up")
	}
	// Temperature decays away from the source.
	if f.T[8][24] <= f.T[8][28] || f.T[8][28] <= f.T[8][31] {
		t.Error("temperature does not decay with distance")
	}
}

func TestMorePowerMoreHeat(t *testing.T) {
	s := NewSolver(16, 16)
	g1 := flatMap(16, 16, 0)
	g2 := flatMap(16, 16, 0)
	g1[8][8] = 1
	g2[8][8] = 3
	f1, f2 := s.Solve(g1), s.Solve(g2)
	m1, _, _ := f1.Max()
	m2, _, _ := f2.Max()
	if m2 <= m1 {
		t.Errorf("3 W (%v°C) not hotter than 1 W (%v°C)", m2, m1)
	}
}

// Property: the solved field is everywhere >= ambient for non-negative
// power, and its minimum never exceeds its maximum.
func TestFieldBoundsProperty(t *testing.T) {
	s := NewSolver(12, 12)
	s.MaxIters = 2000
	f := func(cells []uint8) bool {
		g := flatMap(12, 12, 0)
		for i, c := range cells {
			g[(i/12)%12][i%12] = float64(c) / 64
		}
		fld := s.Solve(g)
		max, _, _ := fld.Max()
		return fld.Min() >= s.AmbientC-1e-6 && fld.Min() <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRender(t *testing.T) {
	s := NewSolver(16, 8)
	g := flatMap(16, 8, 0)
	g[4][8] = 10
	f := s.Solve(g)
	out := f.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 || len(lines[0]) != 16 {
		t.Fatalf("render shape = %dx%d", len(lines[0]), len(lines))
	}
	if !strings.Contains(out, "@") {
		t.Error("hotspot glyph missing")
	}
}

func TestPowerMapRasterization(t *testing.T) {
	s := NewSolver(64, 40)
	pkg := chiplet.AssembleMI300A()
	bounds := pkg.Bounds()
	comps := pkg.Floorplan()
	watts := map[string]float64{}
	var xcdName string
	for _, c := range comps {
		if c.Kind == chiplet.CompXCD {
			watts[c.Name] = 60
			if xcdName == "" {
				xcdName = c.Name
			}
		}
	}
	g := s.PowerMap(bounds, comps, watts)
	var total float64
	for _, row := range g {
		for _, v := range row {
			total += v
		}
	}
	if total < 355 || total > 365 { // 6 XCDs × 60 W
		t.Errorf("rasterized power = %.1f W, want ~360", total)
	}
}

func TestThermalScenariosMatchFig12(t *testing.T) {
	// End-to-end: GPU-intensive power maps put the hotspot on an XCD;
	// memory-intensive maps make HBM/USR PHY regions hotter than before
	// while XCDs cool (Fig. 12 b/c).
	pkg := chiplet.AssembleMI300A()
	bounds := pkg.Bounds()
	comps := pkg.Floorplan()
	s := NewSolver(96, 60)

	gpuWatts := map[string]float64{}
	memWatts := map[string]float64{}
	for _, c := range comps {
		switch c.Kind {
		case chiplet.CompXCD:
			gpuWatts[c.Name] = 58
			memWatts[c.Name] = 27
		case chiplet.CompCCD:
			gpuWatts[c.Name] = 12
			memWatts[c.Name] = 10
		case chiplet.CompHBM:
			gpuWatts[c.Name] = 4
			memWatts[c.Name] = 10
		case chiplet.CompHBMPHY:
			gpuWatts[c.Name] = 2
			memWatts[c.Name] = 7
		case chiplet.CompUSRPHY:
			gpuWatts[c.Name] = 1.5
			memWatts[c.Name] = 6
		case chiplet.CompIOD:
			gpuWatts[c.Name] = 8
			memWatts[c.Name] = 14
		}
	}
	fGPU := s.Solve(s.PowerMap(bounds, comps, gpuWatts))
	fMem := s.Solve(s.PowerMap(bounds, comps, memWatts))

	// Hotspot in the GPU scenario lies within an XCD.
	_, hx, hy := fGPU.Max()
	inXCD := false
	for _, c := range comps {
		if c.Kind != chiplet.CompXCD {
			continue
		}
		x0, y0, x1, y1 := s.RectOf(bounds, c.Rect)
		if hx >= x0 && hx < x1 && hy >= y0 && hy < y1 {
			inXCD = true
		}
	}
	if !inXCD {
		t.Errorf("GPU-intensive hotspot at cell (%d,%d) is not on an XCD", hx, hy)
	}

	// Mean XCD temperature drops in the memory scenario; mean USR PHY
	// temperature rises.
	var xcdGPU, xcdMem, usrGPU, usrMem float64
	var nx, nu int
	for _, c := range comps {
		x0, y0, x1, y1 := s.RectOf(bounds, c.Rect)
		switch c.Kind {
		case chiplet.CompXCD:
			xcdGPU += fGPU.MeanOver(x0, y0, x1, y1)
			xcdMem += fMem.MeanOver(x0, y0, x1, y1)
			nx++
		case chiplet.CompUSRPHY:
			usrGPU += fGPU.MeanOver(x0, y0, x1, y1)
			usrMem += fMem.MeanOver(x0, y0, x1, y1)
			nu++
		}
	}
	if xcdMem/float64(nx) >= xcdGPU/float64(nx) {
		t.Error("XCDs did not cool in the memory-intensive scenario")
	}
	if usrMem/float64(nu) <= usrGPU/float64(nu) {
		t.Error("USR PHYs did not heat in the memory-intensive scenario")
	}
}

func TestCellMapping(t *testing.T) {
	s := NewSolver(10, 10)
	b := chiplet.Rect{W: 1000, H: 1000}
	if x, y := s.CellOf(b, chiplet.Point{X: 999, Y: 999}); x != 9 || y != 9 {
		t.Errorf("CellOf(999,999) = (%d,%d)", x, y)
	}
	x0, y0, x1, y1 := s.RectOf(b, chiplet.Rect{X: 100, Y: 100, W: 1, H: 1})
	if x1 <= x0 || y1 <= y0 {
		t.Error("degenerate rect mapped to empty cell range")
	}
}

func TestTransientWarmsTowardSteadyState(t *testing.T) {
	s := NewSolver(16, 16)
	s.MaxIters = 5000
	g := flatMap(16, 16, 0)
	g[8][8] = 4
	steady := s.Solve(g)
	steadyMax, _, _ := steady.Max()

	tr := NewTransient(s, 10*sim.Millisecond)
	var prevMax float64 = s.AmbientC
	for i := 0; i < 5; i++ {
		if err := tr.Run(g, 20*sim.Millisecond, sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		m, _, _ := tr.Field().Max()
		if m < prevMax-1e-9 {
			t.Errorf("temperature fell during warm-up at step %d", i)
		}
		prevMax = m
	}
	finalMax, _, _ := tr.Field().Max()
	if finalMax > steadyMax+0.5 {
		t.Errorf("transient overshot steady state: %.2f > %.2f", finalMax, steadyMax)
	}
	if finalMax < s.AmbientC+0.5 {
		t.Error("transient never warmed")
	}
}

func TestTransientPhaseTransitionMovesHotspot(t *testing.T) {
	// Heat the left half, let it settle, then switch power to the right
	// half: the hotspot migrates.
	s := NewSolver(24, 12)
	left := flatMap(24, 12, 0)
	right := flatMap(24, 12, 0)
	for j := 4; j < 8; j++ {
		for i := 2; i < 6; i++ {
			left[j][i] = 2
		}
		for i := 18; i < 22; i++ {
			right[j][i] = 2
		}
	}
	tr := NewTransient(s, 5*sim.Millisecond)
	if err := tr.Run(left, 100*sim.Millisecond, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, x1, _ := tr.Field().Max()
	if x1 >= 12 {
		t.Fatalf("phase-1 hotspot at x=%d, want left half", x1)
	}
	if err := tr.Run(right, 100*sim.Millisecond, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, x2, _ := tr.Field().Max()
	if x2 < 12 {
		t.Errorf("phase-2 hotspot at x=%d, want right half after transition", x2)
	}
}

func TestTransientValidation(t *testing.T) {
	s := NewSolver(8, 8)
	tr := NewTransient(s, sim.Millisecond)
	if err := tr.Step(flatMap(8, 8, 0), 0); err == nil {
		t.Error("zero dt accepted")
	}
	if err := tr.Step(flatMap(4, 4, 0), sim.Millisecond); err == nil {
		t.Error("wrong-shape power map accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive time constant did not panic")
		}
	}()
	NewTransient(s, 0)
}
