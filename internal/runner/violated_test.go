package runner

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/sim"
)

// livelockOnFirstAttempt returns an experiment whose first attempt
// livelocks (tripping the watchdog) and whose later attempts complete,
// recording each attempt's engine so tests can assert isolation.
func livelockOnFirstAttempt(id string, engines *[]*sim.Engine) Experiment {
	var mu sync.Mutex
	attempts := 0
	return Experiment{
		ID: id, Desc: "livelocks once, then behaves",
		Run: func(ctx *Ctx) (string, error) {
			mu.Lock()
			attempts++
			n := attempts
			*engines = append(*engines, ctx.Engine())
			mu.Unlock()
			eng := ctx.Engine()
			if n == 1 {
				var spin func(sim.Time)
				spin = func(now sim.Time) { eng.ScheduleNamed("spin", now, spin) }
				eng.ScheduleNamed("spin", 10, spin)
			} else {
				eng.ScheduleNamed("tick", 10, func(sim.Time) {})
			}
			eng.RunAll()
			return "ok\n", nil
		},
	}
}

func TestWatchdogTripBecomesStatusViolated(t *testing.T) {
	reg := NewRegistry()
	var engines []*sim.Engine
	reg.MustRegister(livelockOnFirstAttempt("wd", &engines))

	s, err := reg.RunSuite(Options{Parallel: 1, Watchdog: &sim.WatchdogConfig{EventBudget: 100}})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Results[0]
	if r.Status != StatusViolated {
		t.Fatalf("status %s, want %s", r.Status, StatusViolated)
	}
	if !errors.Is(r.Err, sim.ErrWatchdog) {
		t.Fatalf("error %v does not unwrap to ErrWatchdog", r.Err)
	}
	if !r.Failed() {
		t.Fatal("violated run does not count as failed")
	}
	if got := len(s.Violated()); got != 1 {
		t.Fatalf("suite reports %d violated runs, want 1", got)
	}
	m := BuildManifest(s)
	if m.Suite.Violated != 1 || m.Suite.Failed != 1 {
		t.Fatalf("manifest summary violated=%d failed=%d, want 1/1", m.Suite.Violated, m.Suite.Failed)
	}
}

func TestRetriesRescueViolatedRunOnFreshEngine(t *testing.T) {
	reg := NewRegistry()
	var engines []*sim.Engine
	reg.MustRegister(livelockOnFirstAttempt("wd", &engines))

	s, err := reg.RunSuite(Options{
		Parallel: 1, Retries: 1,
		Watchdog: &sim.WatchdogConfig{EventBudget: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("status %s after retry, want ok (err %v)", r.Status, r.Err)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", r.Attempts)
	}
	if len(engines) != 2 || engines[0] == engines[1] {
		t.Fatalf("retry did not get a fresh engine: %d attempts, distinct=%v",
			len(engines), len(engines) == 2 && engines[0] != engines[1])
	}
	// The rescued attempt's counters, not the violated one's, land in the
	// manifest record.
	m := BuildManifest(s)
	rec := m.Experiments[0]
	if rec.Attempts != 2 || rec.Status != StatusOK || rec.Error != "" {
		t.Fatalf("manifest record attempts=%d status=%s error=%q, want 2/ok/empty",
			rec.Attempts, rec.Status, rec.Error)
	}
	if rec.EventsPending != 0 {
		t.Fatalf("rescued run left %d events pending", rec.EventsPending)
	}
}

// failOnceAudit registers an audit check that reports a violation on the
// first attempt only.
func failOnceAudit(id string) Experiment {
	var mu sync.Mutex
	attempts := 0
	return Experiment{
		ID: id, Desc: "violates a ledger once, then balances",
		Run: func(ctx *Ctx) (string, error) {
			mu.Lock()
			attempts++
			bad := attempts == 1
			mu.Unlock()
			ctx.Auditor().Register("widget", func(sim.Time) []audit.Violation {
				if bad {
					return []audit.Violation{{Ledger: "widget-conservation",
						Detail: "lost a widget", Want: 2, Got: 1}}
				}
				return nil
			})
			return "ok\n", nil
		},
	}
}

func TestStrictAuditViolationFailsAndRetries(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(failOnceAudit("aud"))

	s, err := reg.RunSuite(Options{Parallel: 1, Audit: true, Strict: true, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Results[0]
	if r.Status != StatusOK || r.Attempts != 2 {
		t.Fatalf("status %s attempts %d, want ok/2 (err %v)", r.Status, r.Attempts, r.Err)
	}
	if r.Audit == nil || !r.Audit.OK() {
		t.Fatalf("rescued run's audit report: %+v", r.Audit)
	}
}

func TestStrictAuditViolationWithoutRetriesFails(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(failOnceAudit("aud"))

	s, err := reg.RunSuite(Options{Parallel: 1, Audit: true, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Results[0]
	if r.Status != StatusViolated {
		t.Fatalf("status %s, want %s", r.Status, StatusViolated)
	}
	if !errors.Is(r.Err, audit.ErrViolation) {
		t.Fatalf("error %v does not unwrap to audit.ErrViolation", r.Err)
	}
	if r.Output != "" {
		t.Fatal("violated run kept its output")
	}
}

func TestNonStrictAuditViolationDegradesAndRecords(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(failOnceAudit("aud"))

	s, err := reg.RunSuite(Options{Parallel: 1, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Results[0]
	if r.Status != StatusDegraded {
		t.Fatalf("status %s, want %s", r.Status, StatusDegraded)
	}
	if r.Failed() {
		t.Fatal("non-strict violation failed the run")
	}
	if r.Audit == nil || r.Audit.OK() {
		t.Fatalf("audit report missing or clean: %+v", r.Audit)
	}
	found := false
	for _, f := range r.Faults {
		if strings.Contains(f, "widget-conservation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation not recorded in faults: %v", r.Faults)
	}
	// The suite still surfaces it through Violated() and the manifest.
	if len(s.Violated()) != 1 {
		t.Fatalf("suite reports %d violated, want 1", len(s.Violated()))
	}
	var buf bytes.Buffer
	if err := s.WriteAuditRuns(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "widget-conservation") {
		t.Fatalf("audit runs file missing the violation: %s", buf.String())
	}
}

func TestAuditOffMeansNoReports(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Experiment{ID: "plain", Desc: "no audit", Run: func(ctx *Ctx) (string, error) {
		if ctx.Auditor() != nil {
			return "", errors.New("auditor armed without Options.Audit")
		}
		return "ok\n", nil
	}})
	s, err := reg.RunSuite(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Results[0]; r.Status != StatusOK || r.Audit != nil {
		t.Fatalf("status %s audit %+v, want ok/nil (err %v)", r.Status, r.Audit, r.Err)
	}
}
