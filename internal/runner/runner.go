// Package runner orchestrates the experiment suite: a registry of named
// experiments, a bounded parallel executor that isolates panics and
// enforces per-experiment deadlines, and a structured run manifest for
// observability.
//
// Every experiment in the repository is registered once (ID, description,
// run function); cmd/repro, cmd/apubench, and the benchmark suite all
// enumerate the same registry instead of keeping private copies. The
// executor runs experiments concurrently — each on its own independent
// sim.Engine, so no simulation state is ever shared between goroutines —
// but collects and reports results in registration order, which makes the
// printed output byte-identical regardless of the parallelism degree.
package runner

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/spans"
	"repro/internal/telemetry"
)

// Ctx is the per-run context handed to an experiment's run function. Each
// run gets a fresh, private discrete-event engine: the runner stamps
// lifecycle events on it, and experiments may record additional progress
// milestones. The engine's Fired/Pending counters land in the run
// manifest, so an abnormal termination (panic, error) is visible as a
// never-fired completion event. Experiments that want sampled component
// timelines register probes on Telemetry() and arm a sampler with
// ArmSampler.
type Ctx struct {
	id          string
	traceID     string
	eng         *sim.Engine
	sampleEvery sim.Time
	telem       *telemetry.Recorder
	spanSample  float64
	spanRec     *spans.Recorder
	aud         *audit.Auditor

	// Interned engine classes for the runner's own lifecycle events,
	// resolved once at construction so the per-event path is integer-only.
	clsMilestone sim.Class
	clsSentinel  sim.Class

	mu         sync.Mutex
	milestones []string
	faults     []string
	degraded   bool
}

func newCtx(id string, opts Options) *Ctx {
	c := &Ctx{id: id, traceID: opts.TraceID, eng: sim.NewEngine(), sampleEvery: opts.SampleEvery, spanSample: opts.SpanSample}
	c.clsMilestone = c.eng.Class("runner.milestone")
	c.clsSentinel = c.eng.Class("runner.sentinel")
	if opts.Audit {
		c.aud = audit.New()
		// Every audited run gets the drain-quiescence check; experiments
		// attach component ledgers by passing Auditor() into their
		// platform builds.
		audit.Engine(c.aud, c.eng)
	}
	return c
}

// Auditor returns the run's invariant auditor: non-nil only when the
// suite ran with Options.Audit. A nil auditor is safe to pass anywhere —
// every audit registration on it is a no-op — so experiments wire it
// unconditionally.
func (c *Ctx) Auditor() *audit.Auditor { return c.aud }

// ID reports the experiment ID this context belongs to.
func (c *Ctx) ID() string { return c.id }

// TraceID reports the service-level trace correlation key the suite was
// launched with (Options.TraceID), or "" for standalone runs. It exists
// for structured logging only — it must never influence simulation
// behavior or any deterministic artifact.
func (c *Ctx) TraceID() string { return c.traceID }

// Engine returns the run's private discrete-event engine.
func (c *Ctx) Engine() *sim.Engine { return c.eng }

// Milestone records a named progress marker: an event is stamped and
// fired on the run's engine at the current simulated time, so milestones
// appear in the engine's event log without perturbing the simulated
// clock. (An earlier design mapped milestones to wall-clock offsets,
// which made engine time — and therefore every sampled telemetry grid —
// nondeterministic across runs.)
func (c *Ctx) Milestone(name string) {
	at := c.eng.Now()
	c.eng.Schedule(at, c.clsMilestone, func(sim.Time) {})
	c.eng.Run(at)
	c.mu.Lock()
	c.milestones = append(c.milestones, name)
	c.mu.Unlock()
}

// Milestones returns the marker names recorded so far.
func (c *Ctx) Milestones() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.milestones...)
}

// Telemetry returns the run's telemetry recorder, building it on first
// use and attaching its engine profile to the run's engine — so any
// experiment that opts in gets handler-class profiling alongside its
// sampled series, and runs that never call this pay nothing.
func (c *Ctx) Telemetry() *telemetry.Recorder {
	if c.telem == nil {
		c.telem = telemetry.NewRecorder()
		c.telem.ObserveEngine(c.eng)
	}
	return c.telem
}

// SampleEvery reports the run's telemetry sampling cadence: the suite's
// Options.SampleEvery, or the package default when unset.
func (c *Ctx) SampleEvery() sim.Time {
	if c.sampleEvery > 0 {
		return c.sampleEvery
	}
	return telemetry.DefaultCadence
}

// ArmSampler schedules probe snapshots at every SampleEvery grid point up
// to the until horizon on the run's engine, returning the tick count. The
// ticks fire as the experiment advances its engine; the runner's end-of-
// run drain flushes any that remain.
func (c *Ctx) ArmSampler(until sim.Time) int {
	return telemetry.NewSampler(c.eng, c.Telemetry(), c.SampleEvery()).Arm(until)
}

// recorder returns the recorder if the run built one, without creating it.
func (c *Ctx) recorder() *telemetry.Recorder { return c.telem }

// Spans returns the run's span recorder, building it on first use.
// The seed derives only from the experiment ID (FNV-64a), so a run's
// TraceIDs and sampling decisions are identical across suite invocations
// and parallelism degrees. The sampling rate comes from
// Options.SpanSample; runs that never call this pay nothing.
func (c *Ctx) Spans() *spans.Recorder {
	if c.spanRec == nil {
		h := fnv.New64a()
		h.Write([]byte(c.id))
		c.spanRec = spans.NewRecorder(h.Sum64(), c.spanSample)
	}
	return c.spanRec
}

// spanRecorder returns the span recorder if the run built one, without
// creating it.
func (c *Ctx) spanRecorder() *spans.Recorder { return c.spanRec }

// RecordFault notes an injected-fault summary (e.g. "link-down IOD-A<->IOD-B
// at 1µs"). The summaries land in the run's Result and manifest record, so
// a degraded run documents exactly what was done to it.
func (c *Ctx) RecordFault(summary string) {
	c.mu.Lock()
	c.faults = append(c.faults, summary)
	c.mu.Unlock()
}

// Faults returns the injected-fault summaries recorded so far.
func (c *Ctx) Faults() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.faults...)
}

// MarkDegraded flags the run as having completed under injected faults:
// the result reports StatusDegraded instead of StatusOK, which is distinct
// from failure — output is still produced and the suite still passes.
func (c *Ctx) MarkDegraded() {
	c.mu.Lock()
	c.degraded = true
	c.mu.Unlock()
}

// Degraded reports whether MarkDegraded was called.
func (c *Ctx) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// RunFunc produces an experiment's printable output.
type RunFunc func(ctx *Ctx) (string, error)

// Experiment is one registered experiment.
type Experiment struct {
	// ID is the short unique name used on the command line (e.g. "fig20").
	ID string
	// Desc is the one-line description shown by -list.
	Desc string
	// Run regenerates the experiment and returns its printable output.
	Run RunFunc
}

// Registry holds experiments in registration order.
//
// Registration normally happens once at startup from a single goroutine;
// the registry nevertheless locks internally so concurrent enumeration
// (e.g. from benchmarks) is safe.
type Registry struct {
	mu   sync.RWMutex
	list []Experiment
	byID map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]int)}
}

// Register adds an experiment. It rejects empty or duplicate IDs and nil
// run functions.
func (r *Registry) Register(e Experiment) error {
	if e.ID == "" {
		return fmt.Errorf("runner: experiment with empty ID (desc %q)", e.Desc)
	}
	if strings.ContainsAny(e.ID, " \t\n") {
		return fmt.Errorf("runner: experiment ID %q contains whitespace", e.ID)
	}
	if e.Run == nil {
		return fmt.Errorf("runner: experiment %q has nil Run", e.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[e.ID]; dup {
		return fmt.Errorf("runner: duplicate experiment ID %q", e.ID)
	}
	r.byID[e.ID] = len(r.list)
	r.list = append(r.list, e)
	return nil
}

// MustRegister is Register, panicking on error. Registration happens at
// startup from static tables, so an error is a programming bug.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Experiments returns the registered experiments in registration order.
func (r *Registry) Experiments() []Experiment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Experiment(nil), r.list...)
}

// Get returns the experiment with the given ID.
func (r *Registry) Get(id string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byID[id]
	if !ok {
		return Experiment{}, false
	}
	return r.list[i], true
}

// IDs returns the experiment IDs in registration order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, len(r.list))
	for i, e := range r.list {
		ids[i] = e.ID
	}
	return ids
}

// Len reports the number of registered experiments.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.list)
}

// List renders the registry as the -list command output: one
// "id  description" line per experiment, in registration order.
func (r *Registry) List() string {
	var b strings.Builder
	for _, e := range r.Experiments() {
		fmt.Fprintf(&b, "%-8s %s\n", e.ID, e.Desc)
	}
	return b.String()
}

// Clone returns a new registry with the same experiments, for callers
// that want to add ad-hoc entries (e.g. fault injection) without
// mutating the shared registry.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	for _, e := range r.Experiments() {
		c.MustRegister(e)
	}
	return c
}
