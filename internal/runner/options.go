package runner

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/sim"
)

// Options configures a suite run. The zero value is not runnable: a suite
// must say how wide its worker pool is (DefaultParallel picks one worker
// per CPU). RunSuite validates the options up front and returns a typed
// *OptionsError for nonsense values instead of silently reinterpreting
// them.
type Options struct {
	// Parallel is the worker-pool size. It must be >= 1; use
	// DefaultParallel() for one worker per CPU.
	Parallel int
	// Timeout is the per-experiment wall-clock deadline; 0 disables it.
	// Negative deadlines are an error.
	Timeout time.Duration
	// Retries is how many additional attempts a failed experiment gets.
	// Each attempt runs on a fresh context and engine — no state leaks
	// from a failed attempt into its successor. The final attempt's result
	// is reported, with Attempts recording how many ran. Negative counts
	// are an error.
	Retries int
	// RetryBackoff is the base delay inserted before each retry. Delays
	// grow exponentially (base, 2·base, 4·base, …) with deterministic
	// jitter seeded from the experiment ID, so a retried run's recorded
	// delays are reproducible. 0 retries immediately; negative is an
	// error. RetryBackoffMax, when > 0, caps each delay. A transient
	// failure (a poisoned shared resource, a racing tenant) gets room to
	// clear instead of being hammered with immediate re-attempts.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// IDs restricts the run to a subset (still in registration order);
	// nil runs everything.
	IDs []string
	// Context, when non-nil, cancels the suite: experiments that have not
	// started when it is cancelled never run, and in-flight attempts are
	// abandoned the same way a deadline abandons them. Cancelled runs
	// report StatusCancelled — a typed result, not a hang. Nil means
	// "never cancelled".
	Context context.Context
	// SampleEvery is the telemetry sampling cadence handed to each run's
	// context; 0 selects telemetry.DefaultCadence. It only matters for
	// experiments that call Ctx.Telemetry/ArmSampler. Negative cadences
	// are an error.
	SampleEvery sim.Time
	// SpanSample is the span head-sampling rate handed to each run's
	// context; values outside (0, 1] select 1 (trace every root), but NaN
	// is an error. It only matters for experiments that call Ctx.Spans.
	SpanSample float64
	// TraceID, when non-empty, is the service-level trace correlation key
	// for this suite run (apusimd threads each job's trace ID here). It is
	// exposed to experiments via Ctx.TraceID for structured logging, and
	// it is observability-only: nothing derived from it ever lands in a
	// manifest, telemetry dump, or span dump, so the byte-identical
	// determinism contract is untouched.
	TraceID string
	// OnResult, when set, is called once per experiment in registration
	// order as soon as the result (and all earlier ones) are available,
	// so callers can stream deterministic output while later experiments
	// are still running.
	OnResult func(Result)
	// Audit arms the invariant auditor on every run: each Ctx carries a
	// live audit.Auditor that experiments wire into their platform
	// builds, and completed runs are audited at drain. Violations mark
	// the run degraded (or failed, under Strict) and the report lands in
	// the result and manifest.
	Audit bool
	// Strict makes any audit violation fail the run as StatusViolated
	// instead of recording it and continuing degraded.
	Strict bool
	// Watchdog overrides the engine watchdog's bounds; nil uses the
	// defaults. The watchdog is always installed — it converts silent
	// hangs (livelock, runaway queue growth, handler stalls) into typed
	// StatusViolated results instead of burning the full Timeout.
	Watchdog *sim.WatchdogConfig
}

// DefaultParallel returns the default worker-pool width: one worker per
// available CPU.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// OptionsError reports an Options field that cannot be run as given. It
// is returned by RunSuite (and Options.Validate) before any experiment
// starts, so a misconfigured suite fails loudly instead of silently
// reinterpreting the bad value.
type OptionsError struct {
	// Field names the offending Options field.
	Field string
	// Value is the rejected value, rendered for the message.
	Value any
	// Reason says what a valid value looks like.
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("runner: invalid Options.%s %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the options for values that have no sensible meaning:
// a non-positive worker-pool width, negative deadline, negative retry
// budget, negative sampling cadence, or a NaN span rate. It returns a
// typed *OptionsError naming the first offending field, or nil.
func (o Options) Validate() error {
	if o.Parallel <= 0 {
		return &OptionsError{Field: "Parallel", Value: o.Parallel,
			Reason: "worker-pool size must be >= 1 (use DefaultParallel() for one worker per CPU)"}
	}
	if o.Timeout < 0 {
		return &OptionsError{Field: "Timeout", Value: o.Timeout,
			Reason: "per-experiment deadline must be >= 0 (0 disables it)"}
	}
	if o.Retries < 0 {
		return &OptionsError{Field: "Retries", Value: o.Retries,
			Reason: "retry budget must be >= 0"}
	}
	if o.RetryBackoff < 0 {
		return &OptionsError{Field: "RetryBackoff", Value: o.RetryBackoff,
			Reason: "retry backoff base must be >= 0 (0 retries immediately)"}
	}
	if o.RetryBackoffMax < 0 {
		return &OptionsError{Field: "RetryBackoffMax", Value: o.RetryBackoffMax,
			Reason: "retry backoff cap must be >= 0 (0 means uncapped)"}
	}
	if o.SampleEvery < 0 {
		return &OptionsError{Field: "SampleEvery", Value: o.SampleEvery,
			Reason: "telemetry cadence must be >= 0 (0 selects the default)"}
	}
	if math.IsNaN(o.SpanSample) {
		return &OptionsError{Field: "SpanSample", Value: o.SpanSample,
			Reason: "span sampling rate must be a number (values outside (0, 1] trace everything)"}
	}
	return nil
}

// ctx returns the suite's cancellation context, never nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}
