package runner

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/metrics"
	"repro/internal/spans"
	"repro/internal/telemetry"
)

// ManifestSchema identifies the manifest JSON layout; bump on
// incompatible changes.
const ManifestSchema = "apusim-run-manifest/v1"

// Manifest is the structured record of one suite run, written as JSON by
// cmd/repro -manifest.
type Manifest struct {
	Schema string       `json:"schema"`
	Suite  SuiteSummary `json:"suite"`
	// Experiments are per-run records in registration order.
	Experiments []ExperimentRecord `json:"experiments"`
}

// SuiteSummary aggregates the whole run.
type SuiteSummary struct {
	Total int `json:"total"`
	OK    int `json:"ok"`
	// Degraded counts runs that completed under injected faults — they do
	// not count toward Failed.
	Degraded int `json:"degraded,omitempty"`
	// Violated counts runs aborted by the watchdog or carrying audit
	// violations (whether or not Strict failed them).
	Violated  int     `json:"violated,omitempty"`
	Failed    int     `json:"failed"`
	Parallel  int     `json:"parallel"`
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
	WallMS    float64 `json:"wall_ms"`
	// Table is the suite summary rendered as a text table (the same
	// table -summary prints), embedded so a manifest is self-describing.
	Table string `json:"table"`
}

// ExperimentRecord is one experiment's entry in the manifest.
type ExperimentRecord struct {
	ID            string   `json:"id"`
	Desc          string   `json:"desc"`
	Status        Status   `json:"status"`
	Error         string   `json:"error,omitempty"`
	WallMS        float64  `json:"wall_ms"`
	OutputBytes   int      `json:"output_bytes"`
	EventsFired   uint64   `json:"events_fired"`
	EventsPending int      `json:"events_pending"`
	Milestones    []string `json:"milestones,omitempty"`
	// Attempts is how many times the experiment ran (1 unless -retries
	// rescued a failing run).
	Attempts int `json:"attempts,omitempty"`
	// RetryDelaysMS are the deterministic backoff delays inserted before
	// attempts 2..N, present only when a retry actually waited.
	RetryDelaysMS []float64 `json:"retry_delays_ms,omitempty"`
	// Faults are the injected-fault summaries the run recorded.
	Faults []string `json:"faults,omitempty"`
	// Telemetry is the run's sampled-series summary, present only for
	// experiments that recorded telemetry; omitted otherwise, so v1
	// manifest readers are unaffected.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
	// Spans is the run's critical-path latency attribution, present only
	// for experiments that recorded spans; omitted otherwise.
	Spans *spans.Attribution `json:"spans,omitempty"`
	// Audit is the run's invariant-audit report, present only when the
	// suite ran with auditing armed; omitted otherwise, so v1 manifest
	// readers are unaffected.
	Audit *audit.Report `json:"audit,omitempty"`
}

// BuildManifest converts a suite result into its manifest form.
func BuildManifest(s *SuiteResult) *Manifest {
	m := &Manifest{
		Schema: ManifestSchema,
		Suite: SuiteSummary{
			Total:    len(s.Results),
			Degraded: len(s.Degraded()),
			Violated: len(s.Violated()),
			Failed:   len(s.Failed()),
			Parallel: s.Parallel,
			WallMS:   s.Wall.Seconds() * 1e3,
			Table:    s.SummaryTable().String(),
		},
	}
	m.Suite.OK = m.Suite.Total - m.Suite.Failed - m.Suite.Degraded
	if s.Timeout > 0 {
		m.Suite.TimeoutMS = s.Timeout.Seconds() * 1e3
	}
	for _, r := range s.Results {
		rec := ExperimentRecord{
			ID:            r.ID,
			Desc:          r.Desc,
			Status:        r.Status,
			WallMS:        r.Wall.Seconds() * 1e3,
			OutputBytes:   len(r.Output),
			EventsFired:   r.EventsFired,
			EventsPending: r.EventsPending,
			Milestones:    r.Milestones,
			Attempts:      r.Attempts,
			Faults:        r.Faults,
			Telemetry:     r.Telemetry,
		}
		for _, d := range r.RetryDelays {
			rec.RetryDelaysMS = append(rec.RetryDelaysMS, d.Seconds()*1e3)
		}
		if r.Spans != nil {
			rec.Spans = r.Spans.Attribution
		}
		rec.Audit = r.Audit
		if r.Err != nil {
			rec.Error = r.Err.Error()
		}
		m.Experiments = append(m.Experiments, rec)
	}
	return m
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// TelemetryRunsSchema identifies the telemetry series file (-telemetry)
// layout: one full columnar dump per telemetry-bearing run.
const TelemetryRunsSchema = "apusim-telemetry-runs/v1"

// telemetryRun pairs an experiment ID with its full series dump.
type telemetryRun struct {
	ID     string          `json:"id"`
	Series *telemetry.Dump `json:"telemetry"`
}

// WriteTelemetryRuns writes every telemetry-bearing run's full columnar
// dump as indented JSON, in registration order. The dumps contain only
// simulated-time data, so the output is byte-identical across runs and
// parallelism degrees for a fixed seed and fault plan.
func (s *SuiteResult) WriteTelemetryRuns(w io.Writer) error {
	out := struct {
		Schema string         `json:"schema"`
		Runs   []telemetryRun `json:"runs"`
	}{Schema: TelemetryRunsSchema, Runs: []telemetryRun{}}
	for _, r := range s.Results {
		if r.TelemetryDump != nil {
			out.Runs = append(out.Runs, telemetryRun{ID: r.ID, Series: r.TelemetryDump})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SpanRunsSchema identifies the span trace file (-spans) layout: one full
// span dump per span-bearing run.
const SpanRunsSchema = "apusim-spans-runs/v1"

// spanRun pairs an experiment ID with its full span dump.
type spanRun struct {
	ID    string      `json:"id"`
	Spans *spans.Dump `json:"spans"`
}

// WriteSpanRuns writes every span-bearing run's full dump as indented
// JSON, in registration order. Span dumps contain only simulated-time
// data, so the output is byte-identical across repeated runs and
// parallelism degrees for a fixed seed and fault plan.
func (s *SuiteResult) WriteSpanRuns(w io.Writer) error {
	out := struct {
		Schema string    `json:"schema"`
		Runs   []spanRun `json:"runs"`
	}{Schema: SpanRunsSchema, Runs: []spanRun{}}
	for _, r := range s.Results {
		if r.Spans != nil {
			out.Runs = append(out.Runs, spanRun{ID: r.ID, Spans: r.Spans})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// AuditRunsSchema identifies the audit report file (-audit-out) layout:
// one apusim-audit/v1 report per audited run.
const AuditRunsSchema = "apusim-audit-runs/v1"

// auditRun pairs an experiment ID with its audit report.
type auditRun struct {
	ID    string        `json:"id"`
	Audit *audit.Report `json:"audit"`
}

// WriteAuditRuns writes every audited run's report as indented JSON, in
// registration order. Reports contain only simulated-time data, so the
// output is byte-identical across repeated runs and parallelism degrees
// for a fixed seed and fault plan.
func (s *SuiteResult) WriteAuditRuns(w io.Writer) error {
	out := struct {
		Schema string     `json:"schema"`
		Runs   []auditRun `json:"runs"`
	}{Schema: AuditRunsSchema, Runs: []auditRun{}}
	for _, r := range s.Results {
		if r.Audit != nil {
			out.Runs = append(out.Runs, auditRun{ID: r.ID, Audit: r.Audit})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SummaryTable renders the per-experiment summary as a metrics table,
// with a wall-time distribution footer row.
func (s *SuiteResult) SummaryTable() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("suite summary: %d experiments, %d failed, %d degraded, parallel %d, wall %.0f ms",
			len(s.Results), len(s.Failed()), len(s.Degraded()), s.Parallel, s.Wall.Seconds()*1e3),
		"id", "status", "attempts", "wall ms", "fired", "pending", "bytes")
	wall := metrics.NewDistribution("wall ms")
	for _, r := range s.Results {
		t.AddRowf(r.ID, string(r.Status), r.Attempts, r.Wall.Seconds()*1e3,
			int(r.EventsFired), r.EventsPending, len(r.Output))
		wall.Observe(r.Wall.Seconds() * 1e3)
	}
	t.AddRowf("(wall)", "-", "-",
		fmt.Sprintf("min %s / mean %s / max %s",
			metrics.FormatFloat(wall.Min()),
			metrics.FormatFloat(wall.Mean()),
			metrics.FormatFloat(wall.Max())),
		"-", "-", "-")
	return t
}
