package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testRegistry() *Registry {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		i := i
		r.MustRegister(Experiment{
			ID:   fmt.Sprintf("e%d", i),
			Desc: fmt.Sprintf("experiment %d", i),
			Run: func(*Ctx) (string, error) {
				return fmt.Sprintf("output %d\n", i), nil
			},
		})
	}
	return r
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	ok := Experiment{ID: "a", Desc: "d", Run: func(*Ctx) (string, error) { return "", nil }}
	if err := r.Register(ok); err != nil {
		t.Fatalf("valid registration failed: %v", err)
	}
	cases := []Experiment{
		{ID: "", Desc: "empty", Run: ok.Run},
		{ID: "a", Desc: "duplicate", Run: ok.Run},
		{ID: "has space", Desc: "whitespace", Run: ok.Run},
		{ID: "b", Desc: "nil run", Run: nil},
	}
	for _, c := range cases {
		if err := r.Register(c); err == nil {
			t.Errorf("Register(%q/%q) succeeded, want error", c.ID, c.Desc)
		}
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d after rejected registrations, want 1", r.Len())
	}
}

func TestRegistryOrderAndLookup(t *testing.T) {
	r := testRegistry()
	ids := r.IDs()
	for i, id := range ids {
		if want := fmt.Sprintf("e%d", i); id != want {
			t.Fatalf("IDs[%d] = %q, want %q (registration order)", i, id, want)
		}
	}
	e, ok := r.Get("e3")
	if !ok || e.Desc != "experiment 3" {
		t.Fatalf("Get(e3) = %+v, %v", e, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
	list := r.List()
	if len(strings.Split(strings.TrimRight(list, "\n"), "\n")) != r.Len() {
		t.Fatalf("List has wrong line count:\n%s", list)
	}
	for _, e := range r.Experiments() {
		if !strings.Contains(list, e.ID) || !strings.Contains(list, e.Desc) {
			t.Errorf("List missing %q", e.ID)
		}
	}
}

// TestParallelOutputMatchesSequential is the core determinism guarantee:
// the rendered suite output is byte-identical for any parallelism.
func TestParallelOutputMatchesSequential(t *testing.T) {
	r := testRegistry()
	render := func(parallel int) string {
		s, err := r.RunSuite(Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := s.WriteOutputs(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	for _, p := range []int{2, 4, 8, 16} {
		if got := render(p); got != seq {
			t.Fatalf("parallel %d output differs from sequential:\n%q\nvs\n%q", p, got, seq)
		}
	}
}

// TestPanicIsolation injects a panicking experiment and checks that it is
// reported failed in the manifest while every other experiment completes.
func TestPanicIsolation(t *testing.T) {
	r := testRegistry()
	r.MustRegister(Experiment{
		ID: "boom", Desc: "injected crash",
		Run: func(*Ctx) (string, error) { panic("injected failure") },
	})
	r.MustRegister(Experiment{
		ID: "after", Desc: "registered after the crash",
		Run: func(*Ctx) (string, error) { return "still fine\n", nil },
	})
	s, err := r.RunSuite(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.OK() {
		t.Fatal("suite reported OK despite a panicking experiment")
	}
	var sawPanic bool
	for _, res := range s.Results {
		switch res.ID {
		case "boom":
			sawPanic = true
			if res.Status != StatusPanic {
				t.Errorf("boom status = %s, want panic", res.Status)
			}
			if res.Err == nil || !strings.Contains(res.Err.Error(), "injected failure") {
				t.Errorf("boom err = %v", res.Err)
			}
			if res.Stack == "" {
				t.Error("boom has no stack trace")
			}
			if res.EventsPending == 0 {
				t.Error("boom completion sentinel should remain pending")
			}
		default:
			if res.Status != StatusOK {
				t.Errorf("%s status = %s, want ok", res.ID, res.Status)
			}
			if res.EventsPending != 0 {
				t.Errorf("%s pending = %d, want 0 (clean run drains)", res.ID, res.EventsPending)
			}
		}
	}
	if !sawPanic {
		t.Fatal("no result for the injected panic")
	}

	m := BuildManifest(s)
	if m.Suite.Failed != 1 || m.Suite.OK != len(s.Results)-1 {
		t.Errorf("summary = %+v, want 1 failed of %d", m.Suite, len(s.Results))
	}
	for _, rec := range m.Experiments {
		if rec.ID == "boom" {
			if rec.Status != StatusPanic || rec.Error == "" {
				t.Errorf("manifest record for boom = %+v", rec)
			}
		} else if rec.Status != StatusOK {
			t.Errorf("manifest record %s = %s, want ok", rec.ID, rec.Status)
		}
	}
}

func TestErrorResultKeepsSuiteRunning(t *testing.T) {
	r := testRegistry()
	r.MustRegister(Experiment{
		ID: "bad", Desc: "returns an error",
		Run: func(*Ctx) (string, error) { return "", errors.New("model diverged") },
	})
	s, err := r.RunSuite(Options{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	failed := s.Failed()
	if len(failed) != 1 || failed[0].ID != "bad" || failed[0].Status != StatusError {
		t.Fatalf("Failed() = %+v", failed)
	}
}

func TestTimeout(t *testing.T) {
	r := NewRegistry()
	block := make(chan struct{})
	defer close(block)
	r.MustRegister(Experiment{
		ID: "hang", Desc: "never returns",
		Run: func(*Ctx) (string, error) { <-block; return "", nil },
	})
	r.MustRegister(Experiment{
		ID: "quick", Desc: "fast",
		Run: func(*Ctx) (string, error) { return "ok\n", nil },
	})
	s, err := r.RunSuite(Options{Parallel: 2, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if s.Results[0].Status != StatusTimeout {
		t.Errorf("hang status = %s, want timeout", s.Results[0].Status)
	}
	if s.Results[1].Status != StatusOK {
		t.Errorf("quick status = %s, want ok", s.Results[1].Status)
	}
}

func TestSubsetAndUnknownID(t *testing.T) {
	r := testRegistry()
	s, err := r.RunSuite(Options{Parallel: 1, IDs: []string{"e5", "e1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 2 || s.Results[0].ID != "e1" || s.Results[1].ID != "e5" {
		t.Fatalf("subset results = %+v, want [e1 e5] in registration order", s.Results)
	}
	if _, err := r.RunSuite(Options{Parallel: 1, IDs: []string{"nope"}}); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestOnResultStreamsInOrder(t *testing.T) {
	r := testRegistry()
	var got []string
	s, err := r.RunSuite(Options{Parallel: 8, OnResult: func(res Result) {
		got = append(got, res.ID)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s.Results) {
		t.Fatalf("OnResult fired %d times, want %d", len(got), len(s.Results))
	}
	for i, id := range got {
		if id != s.Results[i].ID {
			t.Fatalf("OnResult order = %v", got)
		}
	}
}

func TestCtxMilestonesAndEngineStats(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Experiment{
		ID: "m", Desc: "uses milestones",
		Run: func(ctx *Ctx) (string, error) {
			ctx.Milestone("halfway")
			if ctx.ID() != "m" {
				t.Errorf("ctx.ID = %q", ctx.ID())
			}
			return "x", nil
		},
	})
	s, err := r.RunSuite(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Results[0]
	// start + halfway + done.
	want := []string{"start", "halfway", "done"}
	if len(res.Milestones) != len(want) {
		t.Fatalf("milestones = %v, want %v", res.Milestones, want)
	}
	for i := range want {
		if res.Milestones[i] != want[i] {
			t.Fatalf("milestones = %v, want %v", res.Milestones, want)
		}
	}
	if res.EventsFired != 3 {
		t.Errorf("EventsFired = %d, want 3", res.EventsFired)
	}
	if res.EventsPending != 0 {
		t.Errorf("EventsPending = %d, want 0", res.EventsPending)
	}
}

func TestManifestJSONRoundTrips(t *testing.T) {
	r := testRegistry()
	s, err := r.RunSuite(Options{Parallel: 2, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := BuildManifest(s).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Schema != ManifestSchema {
		t.Errorf("schema = %q", back.Schema)
	}
	if back.Suite.Total != 8 || back.Suite.OK != 8 || back.Suite.Failed != 0 {
		t.Errorf("suite summary = %+v", back.Suite)
	}
	if back.Suite.TimeoutMS != 60_000 {
		t.Errorf("timeout_ms = %v", back.Suite.TimeoutMS)
	}
	if len(back.Experiments) != 8 {
		t.Fatalf("experiments = %d", len(back.Experiments))
	}
	for i, rec := range back.Experiments {
		if rec.ID != s.Results[i].ID {
			t.Errorf("manifest order: %q at %d", rec.ID, i)
		}
		if rec.OutputBytes != len(s.Results[i].Output) {
			t.Errorf("%s output_bytes = %d", rec.ID, rec.OutputBytes)
		}
	}
	if !strings.Contains(back.Suite.Table, "suite summary") {
		t.Error("manifest summary table missing")
	}
}

func TestSummaryTableShape(t *testing.T) {
	r := testRegistry()
	s, err := r.RunSuite(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.SummaryTable()
	// One row per experiment plus the wall-time distribution footer.
	if tbl.NumRows() != r.Len()+1 {
		t.Fatalf("summary rows = %d, want %d", tbl.NumRows(), r.Len()+1)
	}
	out := tbl.String()
	for _, id := range r.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("summary missing %s", id)
		}
	}
}

// Satellite: retry semantics. A panicking-then-succeeding experiment must
// succeed on attempt 2 with the manifest recording attempts: 2, and retried
// suites must keep registration-order deterministic stdout.
func TestRetryRescuesPanickingExperiment(t *testing.T) {
	r := testRegistry()
	var calls int32
	r.MustRegister(Experiment{
		ID: "flaky", Desc: "panics once, then succeeds",
		Run: func(*Ctx) (string, error) {
			if atomic.AddInt32(&calls, 1) == 1 {
				panic("transient crash")
			}
			return "recovered output\n", nil
		},
	})
	render := func(parallel int) (string, *SuiteResult) {
		atomic.StoreInt32(&calls, 0)
		s, err := r.RunSuite(Options{Parallel: parallel, Retries: 1})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := s.WriteOutputs(&b); err != nil {
			t.Fatal(err)
		}
		return b.String(), s
	}
	out, s := render(1)
	if !s.OK() {
		t.Fatalf("suite failed despite retry: %+v", s.Failed())
	}
	var flaky Result
	for _, res := range s.Results {
		if res.ID == "flaky" {
			flaky = res
		} else if res.Attempts != 1 {
			t.Errorf("%s attempts = %d, want 1", res.ID, res.Attempts)
		}
	}
	if flaky.Status != StatusOK || flaky.Attempts != 2 {
		t.Fatalf("flaky = status %s attempts %d, want ok/2", flaky.Status, flaky.Attempts)
	}
	if flaky.Output != "recovered output\n" {
		t.Errorf("flaky output = %q", flaky.Output)
	}
	m := BuildManifest(s)
	for _, rec := range m.Experiments {
		if rec.ID == "flaky" && rec.Attempts != 2 {
			t.Errorf("manifest attempts = %d, want 2", rec.Attempts)
		}
	}
	// Registration-order deterministic stdout survives retries at any
	// parallelism.
	for _, p := range []int{2, 8} {
		if got, _ := render(p); got != out {
			t.Fatalf("parallel %d retried output differs:\n%q\nvs\n%q", p, got, out)
		}
	}
}

func TestRetriesExhaustedKeepsFailure(t *testing.T) {
	r := NewRegistry()
	var calls int32
	r.MustRegister(Experiment{
		ID: "alwaysbad", Desc: "fails every attempt",
		Run: func(*Ctx) (string, error) {
			atomic.AddInt32(&calls, 1)
			return "", errors.New("permanent failure")
		},
	})
	s, err := r.RunSuite(Options{Parallel: 1, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Results[0]
	if res.Status != StatusError || res.Attempts != 3 {
		t.Errorf("result = status %s attempts %d, want error/3", res.Status, res.Attempts)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Errorf("run function called %d times, want 3", got)
	}
}

func TestDegradedDistinctFromFailed(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Experiment{
		ID: "deg", Desc: "completes under injected faults",
		Run: func(ctx *Ctx) (string, error) {
			ctx.RecordFault("link-down IOD-A<->IOD-B at 1µs")
			ctx.RecordFault("hbm-channel-retire ch3 at 2µs")
			ctx.MarkDegraded()
			return "degraded but complete\n", nil
		},
	})
	s, err := r.RunSuite(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Results[0]
	if res.Status != StatusDegraded {
		t.Fatalf("status = %s, want degraded", res.Status)
	}
	if res.Failed() {
		t.Error("degraded result reported as failed")
	}
	if !s.OK() {
		t.Error("suite with only a degraded run should still be OK")
	}
	if len(s.Degraded()) != 1 {
		t.Errorf("Degraded() = %d results, want 1", len(s.Degraded()))
	}
	if len(res.Faults) != 2 || !strings.Contains(res.Faults[0], "link-down") {
		t.Errorf("faults = %v", res.Faults)
	}
	// The degraded run drains its engine like a clean one.
	if res.EventsPending != 0 {
		t.Errorf("degraded run pending = %d, want 0", res.EventsPending)
	}
	m := BuildManifest(s)
	if m.Suite.Degraded != 1 || m.Suite.Failed != 0 || m.Suite.OK != 0 {
		t.Errorf("suite summary = %+v, want 1 degraded / 0 failed / 0 ok", m.Suite)
	}
	if len(m.Experiments[0].Faults) != 2 {
		t.Errorf("manifest faults = %v", m.Experiments[0].Faults)
	}
	var b bytes.Buffer
	if err := s.WriteOutputs(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "DEGRADED (2 faults)") || !strings.Contains(b.String(), "degraded but complete") {
		t.Errorf("degraded output block = %q", b.String())
	}
}

func TestClone(t *testing.T) {
	r := testRegistry()
	c := r.Clone()
	c.MustRegister(Experiment{ID: "extra", Desc: "clone-only",
		Run: func(*Ctx) (string, error) { return "", nil }})
	if c.Len() != r.Len()+1 {
		t.Errorf("clone len = %d, want %d", c.Len(), r.Len()+1)
	}
	if _, ok := r.Get("extra"); ok {
		t.Error("clone registration leaked into the source registry")
	}
}
