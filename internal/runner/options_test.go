package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// Satellite: Options are validated up front. Nonsense values return a
// typed *OptionsError naming the field before any experiment starts.
func TestOptionsValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"zero parallel", Options{}, "Parallel"},
		{"negative parallel", Options{Parallel: -2}, "Parallel"},
		{"negative timeout", Options{Parallel: 1, Timeout: -time.Second}, "Timeout"},
		{"negative retries", Options{Parallel: 1, Retries: -1}, "Retries"},
		{"negative cadence", Options{Parallel: 1, SampleEvery: -5}, "SampleEvery"},
		{"nan span rate", Options{Parallel: 1, SpanSample: math.NaN()}, "SpanSample"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate() = %v, want *OptionsError", err)
			}
			if oe.Field != c.field {
				t.Errorf("field = %q, want %q", oe.Field, c.field)
			}
			if oe.Error() == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestOptionsValidateAcceptsSensible(t *testing.T) {
	cases := []Options{
		{Parallel: 1},
		{Parallel: DefaultParallel(), Timeout: time.Minute, Retries: 3},
		{Parallel: 8, SampleEvery: 0, SpanSample: 0.25},
		{Parallel: 2, SpanSample: 7}, // outside (0, 1] traces everything — legal
	}
	for i, o := range cases {
		if err := o.Validate(); err != nil {
			t.Errorf("case %d: Validate() = %v, want nil", i, err)
		}
	}
}

// RunSuite refuses to start on invalid options, with the typed error.
func TestRunSuiteValidatesUpFront(t *testing.T) {
	r := testRegistry()
	var ran int32
	r.MustRegister(Experiment{ID: "probe", Desc: "must never run",
		Run: func(*Ctx) (string, error) {
			atomic.AddInt32(&ran, 1)
			return "", nil
		}})
	for _, opts := range []Options{{}, {Parallel: -1}, {Parallel: 2, Retries: -3}} {
		s, err := r.RunSuite(opts)
		var oe *OptionsError
		if !errors.As(err, &oe) {
			t.Fatalf("RunSuite(%+v) err = %v, want *OptionsError", opts, err)
		}
		if s != nil {
			t.Fatalf("RunSuite returned a suite alongside the error")
		}
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Error("an experiment ran despite invalid options")
	}
}

func TestDefaultParallelIsPositive(t *testing.T) {
	if DefaultParallel() < 1 {
		t.Fatalf("DefaultParallel() = %d", DefaultParallel())
	}
	if err := (Options{Parallel: DefaultParallel()}).Validate(); err != nil {
		t.Fatalf("default parallel rejected: %v", err)
	}
}

// Satellite: a pre-cancelled context yields typed StatusCancelled results
// for every experiment — nothing runs, nothing hangs.
func TestPreCancelledContextRunsNothing(t *testing.T) {
	r := testRegistry()
	var ran int32
	r.MustRegister(Experiment{ID: "never", Desc: "context already dead",
		Run: func(*Ctx) (string, error) {
			atomic.AddInt32(&ran, 1)
			return "", nil
		}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := r.RunSuite(Options{Parallel: 4, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Error("experiment ran under a pre-cancelled context")
	}
	for _, res := range s.Results {
		if res.Status != StatusCancelled {
			t.Errorf("%s status = %s, want cancelled", res.ID, res.Status)
		}
		if res.Err == nil || !errors.Is(res.Err, context.Canceled) {
			t.Errorf("%s err = %v, want context.Canceled cause", res.ID, res.Err)
		}
		if res.Failed() != true {
			t.Errorf("%s cancelled result should count as failed", res.ID)
		}
	}
}

// Cancelling mid-suite abandons the in-flight attempt with a typed status
// instead of hanging, and experiments that had not started are cancelled
// without running.
func TestCancelMidSuiteAbandonsInFlight(t *testing.T) {
	r := NewRegistry()
	started := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	r.MustRegister(Experiment{ID: "stuck", Desc: "blocks until released",
		Run: func(*Ctx) (string, error) {
			close(started)
			<-block
			return "late\n", nil
		}})
	var laterRan int32
	r.MustRegister(Experiment{ID: "later", Desc: "queued behind stuck",
		Run: func(*Ctx) (string, error) {
			atomic.AddInt32(&laterRan, 1)
			return "ok\n", nil
		}})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	doneCh := make(chan *SuiteResult, 1)
	go func() {
		s, err := r.RunSuite(Options{Parallel: 1, Context: ctx})
		if err != nil {
			t.Errorf("RunSuite: %v", err)
		}
		doneCh <- s
	}()
	var s *SuiteResult
	select {
	case s = <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled suite hung")
	}
	if s.Results[0].Status != StatusCancelled {
		t.Errorf("stuck status = %s, want cancelled", s.Results[0].Status)
	}
	if s.Results[1].Status != StatusCancelled {
		t.Errorf("later status = %s, want cancelled", s.Results[1].Status)
	}
	if atomic.LoadInt32(&laterRan) != 0 {
		t.Error("experiment queued behind the cancellation still ran")
	}
}

// A cancelled attempt is not retried: the retry budget applies to real
// failures, not to the suite being told to stop.
func TestCancelledAttemptIsNotRetried(t *testing.T) {
	r := NewRegistry()
	var calls int32
	started := make(chan struct{}, 8)
	block := make(chan struct{})
	defer close(block)
	r.MustRegister(Experiment{ID: "c", Desc: "counts attempts",
		Run: func(*Ctx) (string, error) {
			atomic.AddInt32(&calls, 1)
			started <- struct{}{}
			<-block
			return "", nil
		}})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	s, err := r.RunSuite(Options{Parallel: 1, Retries: 5, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Results[0]
	if res.Status != StatusCancelled || res.Attempts != 1 {
		t.Fatalf("result = %s attempts %d, want cancelled/1", res.Status, res.Attempts)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("run function called %d times, want 1", got)
	}
}

// Cancelled runs land in the manifest as failures with the typed status.
func TestCancelledStatusInManifest(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		i := i
		r.MustRegister(Experiment{ID: fmt.Sprintf("e%d", i), Desc: "x",
			Run: func(*Ctx) (string, error) { return "out\n", nil }})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := r.RunSuite(Options{Parallel: 2, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	m := BuildManifest(s)
	if m.Suite.Failed != 3 {
		t.Errorf("manifest failed = %d, want 3", m.Suite.Failed)
	}
	for _, rec := range m.Experiments {
		if rec.Status != StatusCancelled || rec.Error == "" {
			t.Errorf("record %s = %s (%q), want cancelled with error", rec.ID, rec.Status, rec.Error)
		}
	}
}
