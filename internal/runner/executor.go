package runner

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/spans"
	"repro/internal/telemetry"
)

// Status classifies how an experiment run ended.
type Status string

// Run statuses.
const (
	StatusOK    Status = "ok"
	StatusError Status = "error"
	StatusPanic Status = "panic"
	// StatusDegraded marks a run that completed — produced output, drained
	// its engine — while operating under injected faults. It is distinct
	// from failure: a degraded suite still passes.
	StatusDegraded Status = "degraded"
	StatusTimeout  Status = "timeout"
	// StatusViolated marks a run aborted by the engine watchdog (livelock,
	// runaway queue growth, handler stall) or — under Options.Strict —
	// failed by audit invariant violations. It is a failure status: the
	// run's answer cannot be trusted, so retries apply.
	StatusViolated Status = "violated"
	// StatusCancelled marks a run stopped by Options.Context: either it
	// never started (the context was already cancelled when its turn
	// came) or its in-flight attempt was abandoned mid-run, the same way
	// a deadline abandons one. It is a failure status, but retries do not
	// apply — a cancelled suite stays cancelled.
	StatusCancelled Status = "cancelled"
)

// Result is the outcome of one experiment run.
type Result struct {
	ID     string
	Desc   string
	Status Status
	// Output is the experiment's printable output (empty on failure).
	Output string
	// Err describes the failure for error/panic/timeout statuses.
	Err error
	// Stack is the panic stack trace, when Status is StatusPanic.
	Stack string
	// Wall is the run's wall-clock duration (the deadline, on timeout).
	Wall time.Duration
	// EventsFired and EventsPending are the run engine's counters at the
	// end of the run. A clean run drains its queue (EventsPending == 0);
	// a failed run leaves its completion sentinel queued. Both are zero
	// on timeout: the abandoned run still owns its engine.
	EventsFired   uint64
	EventsPending int
	// Milestones are the progress markers the run recorded.
	Milestones []string
	// Attempts is how many times the experiment ran (1 + retries used).
	Attempts int
	// RetryDelays are the backoff delays inserted before attempts 2..N,
	// in order. They are computed deterministically from the experiment
	// ID (seeded exponential backoff with jitter), so a retried run's
	// manifest is reproducible. Empty when no retry waited.
	RetryDelays []time.Duration
	// Faults are the injected-fault summaries recorded via Ctx.RecordFault.
	Faults []string
	// Telemetry is the compact sampled-series summary, set only when the
	// run built a recorder via Ctx.Telemetry. It lands in the manifest.
	Telemetry *telemetry.Summary
	// TelemetryDump is the full deterministic columnar store for the same
	// runs, for callers writing CSV/JSON series files.
	TelemetryDump *telemetry.Dump
	// Spans is the causal-span dump (with critical-path attribution),
	// set only when the run built a recorder via Ctx.Spans.
	Spans *spans.Dump
	// Audit is the invariant-audit report, set only when the suite ran
	// with Options.Audit and the run completed far enough to be audited
	// (ok or degraded before auditing). It lands in the manifest.
	Audit *audit.Report
}

// Failed reports whether the run ended abnormally. A degraded run is not a
// failure: it completed under injected faults and produced output.
func (r Result) Failed() bool { return r.Status != StatusOK && r.Status != StatusDegraded }

// SuiteResult is the outcome of a full suite run, in registration order.
type SuiteResult struct {
	Results  []Result
	Wall     time.Duration
	Parallel int
	Timeout  time.Duration
}

// Failed returns the abnormally-ended results, in registration order.
func (s *SuiteResult) Failed() []Result {
	var f []Result
	for _, r := range s.Results {
		if r.Failed() {
			f = append(f, r)
		}
	}
	return f
}

// OK reports whether every experiment completed normally.
func (s *SuiteResult) OK() bool { return len(s.Failed()) == 0 }

// Degraded returns the results that completed under injected faults, in
// registration order.
func (s *SuiteResult) Degraded() []Result {
	var d []Result
	for _, r := range s.Results {
		if r.Status == StatusDegraded {
			d = append(d, r)
		}
	}
	return d
}

// Violated returns the results whose audit report carries violations or
// that were aborted by the watchdog, in registration order.
func (s *SuiteResult) Violated() []Result {
	var v []Result
	for _, r := range s.Results {
		if r.Status == StatusViolated || (r.Audit != nil && !r.Audit.OK()) {
			v = append(v, r)
		}
	}
	return v
}

// WriteOutputs writes each successful experiment's output block, in
// registration order, in the exact format the sequential cmd/repro
// always used. Failed experiments still get their header, followed by a
// one-line failure note, so the suite's shape is stable.
func (s *SuiteResult) WriteOutputs(w io.Writer) error {
	for _, r := range s.Results {
		if err := WriteResult(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteResult writes one experiment's output block: the header line,
// then either the output or a one-line failure note.
func WriteResult(w io.Writer, r Result) error {
	if _, err := fmt.Fprintf(w, "\n== %s: %s ==\n", r.ID, r.Desc); err != nil {
		return err
	}
	if r.Failed() {
		_, err := fmt.Fprintf(w, "FAILED (%s): %v\n", r.Status, r.Err)
		return err
	}
	if r.Status == StatusDegraded {
		if _, err := fmt.Fprintf(w, "DEGRADED (%d faults): %s\n", len(r.Faults), strings.Join(r.Faults, "; ")); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, r.Output)
	return err
}

// RunSuite executes the selected experiments on a bounded worker pool.
// Each experiment runs on its own goroutine with its own sim.Engine; a
// panic is recovered into a StatusPanic result and the rest of the suite
// still completes. Results come back in registration order regardless of
// completion order. It returns an error only for invalid options (a
// typed *OptionsError) or an unknown ID in opts.IDs — individual
// experiment failures are reported per-result. Cancelling Options.Context
// converts not-yet-started experiments into StatusCancelled results and
// abandons in-flight attempts; the suite still returns in order.
func (r *Registry) RunSuite(opts Options) (*SuiteResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	exps := r.Experiments()
	if opts.IDs != nil {
		want := make(map[string]bool, len(opts.IDs))
		for _, id := range opts.IDs {
			if _, ok := r.Get(id); !ok {
				return nil, fmt.Errorf("runner: unknown experiment %q", id)
			}
			want[id] = true
		}
		sel := exps[:0:0]
		for _, e := range exps {
			if want[e.ID] {
				sel = append(sel, e)
			}
		}
		exps = sel
	}

	workers := opts.Parallel
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	results := make([]Result, len(exps))
	ready := make([]chan struct{}, len(exps))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := opts.ctx().Err(); err != nil {
					results[i] = cancelledResult(exps[i], err)
				} else {
					results[i] = runOne(exps[i], opts)
				}
				close(ready[i])
			}
		}()
	}
	go func() {
		for i := range exps {
			jobs <- i
		}
		close(jobs)
	}()

	// Consume in registration order; stream to the callback as soon as
	// each prefix is complete.
	for i := range exps {
		<-ready[i]
		if opts.OnResult != nil {
			opts.OnResult(results[i])
		}
	}
	wg.Wait()

	return &SuiteResult{
		Results:  results,
		Wall:     time.Since(start),
		Parallel: workers,
		Timeout:  opts.Timeout,
	}, nil
}

// cancelledResult synthesizes the typed result for an experiment the
// suite's context stopped, whether it never started or was abandoned.
func cancelledResult(e Experiment, cause error) Result {
	return Result{
		ID: e.ID, Desc: e.Desc, Status: StatusCancelled,
		Err: fmt.Errorf("cancelled: %w", cause),
	}
}

// runOne executes a single experiment with panic recovery, an optional
// wall-clock deadline, and up to retries additional attempts on failure.
// Every attempt runs on a completely fresh context and engine, so a
// crashed attempt cannot poison its successor; the final attempt's result
// is returned with Attempts counting how many ran. Cancellation ends the
// retry loop immediately: a cancelled attempt is never retried. With
// Options.RetryBackoff set, each retry waits out a deterministic
// exponentially-growing jittered delay first (interruptible by
// Options.Context), and the delays are recorded on the result.
func runOne(e Experiment, opts Options) Result {
	var res Result
	var delays []time.Duration
	rng := sim.NewRNG(backoffSeed(e.ID))
	for attempt := 1; ; attempt++ {
		res = runAttempt(e, opts)
		res.Attempts = attempt
		res.RetryDelays = delays
		if !res.Failed() || res.Status == StatusCancelled || attempt > opts.Retries {
			return res
		}
		if d := retryDelay(opts, attempt, rng); d > 0 {
			delays = append(delays, d)
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-opts.ctx().Done():
				// The next runAttempt observes the cancellation and
				// returns a typed cancelled result immediately.
				timer.Stop()
			}
		}
	}
}

// backoffSeed derives the deterministic jitter seed from the experiment
// ID, the same way span recorders derive theirs — so recorded retry
// delays are a pure function of (experiment, attempt).
func backoffSeed(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// retryDelay computes the backoff before attempt+1: the base doubled per
// completed attempt, scaled by a jitter factor in [0.5, 1.5) drawn from
// the seeded stream, clamped to RetryBackoffMax when set. Desynchronizing
// retries (jitter) matters when many runs fail together — a thundering
// herd of identical retry schedules re-collides forever.
func retryDelay(opts Options, attempt int, rng *sim.RNG) time.Duration {
	if opts.RetryBackoff <= 0 {
		return 0
	}
	d := float64(opts.RetryBackoff) * math.Pow(2, float64(attempt-1))
	d *= 0.5 + rng.Float64()
	if max := opts.RetryBackoffMax; max > 0 && d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d)
}

// runAttempt executes one attempt of an experiment with panic recovery and
// an optional wall-clock deadline. The run happens on a fresh goroutine so
// a deadline — or a cancelled Options.Context — can abandon it; an
// abandoned run keeps its private engine and context, so there is no
// shared state to race on.
func runAttempt(e Experiment, opts Options) Result {
	timeout := opts.Timeout
	done := make(chan Result, 1)
	go func() {
		ctx := newCtx(e.ID, opts)
		res := Result{ID: e.ID, Desc: e.Desc, Status: StatusOK}
		start := time.Now()
		// The watchdog converts silent hangs into a typed abort: it rides
		// the engine hook seam, so the telemetry profile (attached later by
		// Ctx.Telemetry) chains behind it instead of replacing it.
		wcfg := sim.WatchdogConfig{}
		if opts.Watchdog != nil {
			wcfg = *opts.Watchdog
		}
		sim.NewWatchdog(wcfg).Install(ctx.eng)
		// A completion sentinel stays queued unless the run finishes
		// cleanly, so EventsPending > 0 flags an abnormal end.
		sentinel := ctx.eng.Schedule(sim.Forever, ctx.clsSentinel, func(sim.Time) {})
		defer func() {
			if p := recover(); p != nil {
				if trip, ok := p.(*sim.WatchdogTrip); ok {
					res.Status = StatusViolated
					res.Err = trip
					res.Output = ""
				} else {
					res.Status = StatusPanic
					res.Err = fmt.Errorf("panic: %v", p)
					res.Stack = string(debug.Stack())
					res.Output = ""
				}
			}
			res.Wall = time.Since(start)
			res.EventsFired = ctx.eng.Fired()
			res.EventsPending = ctx.eng.Pending()
			res.Milestones = ctx.Milestones()
			res.Faults = ctx.Faults()
			// The body's final RunAll has already fired any leftover
			// sampler ticks, so the dump below sees the complete grid.
			if rec := ctx.recorder(); rec != nil {
				res.TelemetryDump = rec.Dump()
				res.Telemetry = rec.Summary()
			}
			if sr := ctx.spanRecorder(); sr != nil {
				res.Spans = sr.Dump()
			}
			done <- res
		}()
		ctx.Milestone("start")
		out, err := e.Run(ctx)
		if err != nil {
			res.Status = StatusError
			res.Err = err
			return
		}
		res.Output = out
		if ctx.Degraded() {
			res.Status = StatusDegraded
		}
		ctx.Milestone("done")
		ctx.eng.Cancel(sentinel)
		ctx.eng.RunAll() // reap the cancelled sentinel: a clean run drains
		// Audit at drain: the run completed, so every conservation ledger
		// must balance. Violations fail the run under Strict; otherwise
		// they are recorded as fault summaries and the run continues
		// degraded — visible, but not suite-fatal.
		if rep := ctx.aud.Audit(ctx.eng.Now()); rep != nil {
			res.Audit = rep
			if !rep.OK() {
				if opts.Strict {
					res.Status = StatusViolated
					res.Err = rep.Err()
					res.Output = ""
				} else {
					res.Status = StatusDegraded
					for _, v := range rep.Violations {
						ctx.RecordFault("audit: " + v.String())
					}
				}
			}
		}
	}()

	ctx := opts.ctx()
	if timeout <= 0 {
		select {
		case res := <-done:
			return res
		case <-ctx.Done():
			return cancelledResult(e, ctx.Err())
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-done:
		return res
	case <-timer.C:
		return Result{
			ID: e.ID, Desc: e.Desc, Status: StatusTimeout,
			Err:  fmt.Errorf("exceeded %v deadline", timeout),
			Wall: timeout,
		}
	case <-ctx.Done():
		return cancelledResult(e, ctx.Err())
	}
}
