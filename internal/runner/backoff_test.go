package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// failingRegistry returns a registry with one experiment that fails its
// first failures attempts and then succeeds.
func failingRegistry(id string, failures int) *Registry {
	reg := NewRegistry()
	attempts := 0
	reg.MustRegister(Experiment{
		ID:   id,
		Desc: "fails then recovers",
		Run: func(ctx *Ctx) (string, error) {
			attempts++
			if attempts <= failures {
				return "", fmt.Errorf("transient failure %d", attempts)
			}
			return "recovered", nil
		},
	})
	return reg
}

func TestRetryBackoffDelaysAreDeterministicAndExponential(t *testing.T) {
	const base = time.Millisecond
	run := func() []time.Duration {
		reg := failingRegistry("flaky", 3)
		suite, err := reg.RunSuite(Options{
			Parallel: 1, Retries: 3,
			RetryBackoff: base,
		})
		if err != nil {
			t.Fatalf("RunSuite: %v", err)
		}
		res := suite.Results[0]
		if res.Status != StatusOK || res.Attempts != 4 {
			t.Fatalf("result %s after %d attempts, want ok after 4", res.Status, res.Attempts)
		}
		return res.RetryDelays
	}
	first := run()
	if len(first) != 3 {
		t.Fatalf("recorded %d delays, want 3", len(first))
	}
	for i, d := range first {
		// Attempt i+2's delay is base·2^i scaled by jitter in [0.5, 1.5).
		lo := time.Duration(float64(base) * float64(int(1)<<i) * 0.5)
		hi := time.Duration(float64(base) * float64(int(1)<<i) * 1.5)
		if d < lo || d >= hi {
			t.Errorf("delay %d = %v outside jittered window [%v, %v)", i, d, lo, hi)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("delay %d differs across runs: %v vs %v (jitter must be seeded)", i, first[i], second[i])
		}
	}
}

func TestRetryBackoffMaxCapsDelays(t *testing.T) {
	reg := failingRegistry("capped", 4)
	const cap = 2 * time.Millisecond
	suite, err := reg.RunSuite(Options{
		Parallel: 1, Retries: 4,
		RetryBackoff: time.Millisecond, RetryBackoffMax: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := suite.Results[0]
	if len(res.RetryDelays) != 4 {
		t.Fatalf("recorded %d delays, want 4", len(res.RetryDelays))
	}
	for i, d := range res.RetryDelays {
		if d > cap {
			t.Errorf("delay %d = %v exceeds cap %v", i, d, cap)
		}
	}
}

func TestRetryWithoutBackoffRecordsNoDelays(t *testing.T) {
	reg := failingRegistry("immediate", 2)
	suite, err := reg.RunSuite(Options{Parallel: 1, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := suite.Results[0]
	if res.Status != StatusOK || res.Attempts != 3 {
		t.Fatalf("result %s after %d attempts, want ok after 3", res.Status, res.Attempts)
	}
	if len(res.RetryDelays) != 0 {
		t.Errorf("immediate retries recorded delays %v", res.RetryDelays)
	}
}

func TestManifestRecordsRetryDelays(t *testing.T) {
	reg := failingRegistry("journaled", 2)
	suite, err := reg.RunSuite(Options{
		Parallel: 1, Retries: 2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := BuildManifest(suite).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Experiments []struct {
			Attempts      int       `json:"attempts"`
			RetryDelaysMS []float64 `json:"retry_delays_ms"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	rec := m.Experiments[0]
	if rec.Attempts != 3 || len(rec.RetryDelaysMS) != 2 {
		t.Fatalf("manifest record %+v, want 3 attempts with 2 delays", rec)
	}
	for i, ms := range rec.RetryDelaysMS {
		if ms <= 0 {
			t.Errorf("manifest delay %d = %g ms, want > 0", i, ms)
		}
	}
}

func TestNegativeBackoffIsAnOptionsError(t *testing.T) {
	for _, opts := range []Options{
		{Parallel: 1, RetryBackoff: -time.Second},
		{Parallel: 1, RetryBackoffMax: -time.Second},
	} {
		err := opts.Validate()
		if _, ok := err.(*OptionsError); !ok {
			t.Errorf("Validate(%+v) = %v, want *OptionsError", opts, err)
		}
	}
}
