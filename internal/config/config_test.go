package config

import (
	"math"
	"testing"
	"testing/quick"
)

func allPlatforms() []*PlatformSpec {
	return []*PlatformSpec{MI300A(), MI300X(), MI250X(), EHPv4(), BaselineGPU()}
}

func TestAllPlatformsValidate(t *testing.T) {
	for _, p := range allPlatforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestMI300ACounts(t *testing.T) {
	p := MI300A()
	if got := p.TotalCUs(); got != 228 {
		t.Errorf("MI300A CUs = %d, want 228 (§IV.B)", got)
	}
	if got := p.TotalCores(); got != 24 {
		t.Errorf("MI300A cores = %d, want 24 (§IV.C)", got)
	}
	if got := p.HBM.TotalChannels(); got != 128 {
		t.Errorf("MI300A channels = %d, want 128 (§IV.D)", got)
	}
	if got := p.MemoryCapacity(); got != 128*GiB {
		t.Errorf("MI300A capacity = %d, want 128 GiB", got)
	}
	if got := p.InfinityCacheBytes(); got != 256*MiB {
		t.Errorf("MI300A Infinity Cache = %d, want 256 MiB", got)
	}
	if got := p.SocketX16Links(); got != 8 {
		t.Errorf("MI300A x16 links = %d, want 8 (§VIII)", got)
	}
	if got := p.PeakIOBW(); got != 1024e9 {
		t.Errorf("MI300A IO BW = %g, want 1024 GB/s (§VIII)", got)
	}
}

func TestMI300XCounts(t *testing.T) {
	p := MI300X()
	if got := p.TotalCUs(); got != 304 {
		t.Errorf("MI300X CUs = %d, want 304 (§VII)", got)
	}
	if p.TotalCores() != 0 {
		t.Error("MI300X should have no CPU cores")
	}
	if got := p.MemoryCapacity(); got != 192*GiB {
		t.Errorf("MI300X capacity = %d, want 192 GiB (§VII)", got)
	}
}

func TestTable1Rates(t *testing.T) {
	c2, c3 := CDNA2Rates(), CDNA3Rates()
	cases := []struct {
		table *RateTable
		class EngineClass
		d     DataType
		want  float64
	}{
		{c2, Vector, FP64, 128}, {c2, Vector, FP32, 128},
		{c2, Matrix, FP64, 256}, {c2, Matrix, FP32, 256},
		{c2, Matrix, TF32, 0}, {c2, Matrix, FP16, 1024},
		{c2, Matrix, BF16, 1024}, {c2, Matrix, FP8, 0}, {c2, Matrix, INT8, 1024},
		{c3, Vector, FP64, 128}, {c3, Vector, FP32, 256},
		{c3, Matrix, FP64, 256}, {c3, Matrix, FP32, 256},
		{c3, Matrix, TF32, 1024}, {c3, Matrix, FP16, 2048},
		{c3, Matrix, BF16, 2048}, {c3, Matrix, FP8, 4096}, {c3, Matrix, INT8, 4096},
	}
	for _, c := range cases {
		if got := c.table.Ops(c.class, c.d); got != c.want {
			t.Errorf("%s %s %s = %g, want %g (Table 1)",
				c.table.Name, c.class, c.d, got, c.want)
		}
	}
	// Sparsity peaks: "as high as 8192 ops/cycle/CU (for FP8 and INT8)".
	if got := c3.SparseOps(FP8); got != 8192 {
		t.Errorf("CDNA3 sparse FP8 = %g, want 8192", got)
	}
	if got := c3.SparseOps(INT8); got != 8192 {
		t.Errorf("CDNA3 sparse INT8 = %g, want 8192", got)
	}
	// CDNA2 has no sparsity: falls back to dense.
	if got := c2.SparseOps(FP16); got != 1024 {
		t.Errorf("CDNA2 sparse FP16 fallback = %g, want 1024", got)
	}
}

func TestPeakFlopsMatchPublishedNumbers(t *testing.T) {
	// Published peaks: MI300A FP64 vector 61.3 TF, FP64 matrix 122.6 TF,
	// FP16 matrix 980.6 TF; MI250X FP64 vector 47.9 TF, FP16 matrix 383 TF.
	approx := func(got, want float64) bool { return math.Abs(got-want)/want < 0.01 }
	a := MI300A()
	if got := a.PeakFlops(Vector, FP64); !approx(got, 61.3e12) {
		t.Errorf("MI300A vector FP64 = %g, want ~61.3 TF", got)
	}
	if got := a.PeakFlops(Matrix, FP64); !approx(got, 122.6e12) {
		t.Errorf("MI300A matrix FP64 = %g, want ~122.6 TF", got)
	}
	if got := a.PeakFlops(Matrix, FP16); !approx(got, 980.6e12) {
		t.Errorf("MI300A matrix FP16 = %g, want ~980.6 TF", got)
	}
	x := MI300X()
	if got := x.PeakFlops(Matrix, FP64); !approx(got, 163.4e12) {
		t.Errorf("MI300X matrix FP64 = %g, want ~163.4 TF", got)
	}
	m := MI250X()
	if got := m.PeakFlops(Vector, FP64); !approx(got, 47.9e12) {
		t.Errorf("MI250X vector FP64 = %g, want ~47.9 TF", got)
	}
	if got := m.PeakFlops(Matrix, FP16); !approx(got, 383e12) {
		t.Errorf("MI250X matrix FP16 = %g, want ~383 TF", got)
	}
}

func TestFig19Shapes(t *testing.T) {
	a, x, m := MI300A(), MI300X(), MI250X()
	// "peak memory bandwidth has also improved by 70%".
	bwUplift := a.PeakMemoryBW() / m.PeakMemoryBW()
	if bwUplift < 1.55 || bwUplift > 1.75 {
		t.Errorf("memory BW uplift = %.2f, want ~1.7 (Fig. 19)", bwUplift)
	}
	// "I/O (network) bandwidth has also doubled".
	ioUplift := a.PeakIOBW() / m.PeakIOBW()
	if ioUplift < 1.9 || ioUplift > 2.1 {
		t.Errorf("I/O uplift = %.2f, want ~2 (Fig. 19)", ioUplift)
	}
	// "total memory capacity is also 50% greater" (MI300X vs MI300A/MI250X).
	capUplift := float64(x.MemoryCapacity()) / float64(m.MemoryCapacity())
	if capUplift != 1.5 {
		t.Errorf("capacity uplift = %.2f, want 1.5 (Fig. 19)", capUplift)
	}
	// MI300X delivers more FLOPS than MI300A (more CUs).
	if x.PeakFlops(Matrix, FP16) <= a.PeakFlops(Matrix, FP16) {
		t.Error("MI300X should out-FLOP MI300A")
	}
}

func TestDataTypeBytes(t *testing.T) {
	want := map[DataType]int{FP64: 8, FP32: 4, TF32: 4, FP16: 2, BF16: 2, FP8: 1, INT8: 1}
	for d, w := range want {
		if got := d.Bytes(); got != w {
			t.Errorf("%s.Bytes() = %d, want %d", d, got, w)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	p := MI300A()
	p.XCD.EnabledCUs = 41
	if err := p.Validate(); err == nil {
		t.Error("enabled > physical CUs not caught")
	}
	p = MI300A()
	p.IODs = 3 // 3 IODs × 2 stacks ≠ 8 stacks
	if err := p.Validate(); err == nil {
		t.Error("IOD/HBM stack mismatch not caught")
	}
	p = MI250X()
	p.Host = nil
	if err := p.Validate(); err == nil {
		t.Error("discrete without host not caught")
	}
	p = &PlatformSpec{}
	if err := p.Validate(); err == nil {
		t.Error("unnamed platform not caught")
	}
}

func TestEHPv4Shortcomings(t *testing.T) {
	e, a := EHPv4(), MI300A()
	if !e.EHPLegacy {
		t.Error("EHPv4 must be marked legacy")
	}
	// §III.B: the cross-GPU path is a DDR-class SerDes bottleneck,
	// far below MI300A's USR mesh.
	if e.CrossDieBWPerDir >= a.IOD.USRVerticalBW {
		t.Errorf("EHPv4 cross-die BW %g should be well below MI300A USR %g",
			e.CrossDieBWPerDir, a.IOD.USRVerticalBW)
	}
	// Same CPU:GPU chiplet ratio as MI300A (§V.F: 4:2 vs 6:3 = 2:1).
	if e.XCDs*1 != e.CCDs*2 || a.XCDs*1 != a.CCDs*2 {
		t.Error("GPU:CPU chiplet ratio should be 2:1 on both EHPv4 and MI300A")
	}
	// Both use 8 HBM stacks (§V.F).
	if e.HBM.Stacks != 8 || a.HBM.Stacks != 8 {
		t.Error("EHP and MI300A both use 8 HBM stacks")
	}
}

func TestUnifiedVsDiscreteHostBW(t *testing.T) {
	a, m := MI300A(), MI250X()
	if a.EffectiveHostLinkBW() != a.PeakMemoryBW() {
		t.Error("APU host link should be HBM speed (zero copy)")
	}
	if m.EffectiveHostLinkBW() >= m.PeakMemoryBW()/10 {
		t.Error("discrete host link should be a small fraction of HBM BW")
	}
}

// Property: for every platform and dtype, sparse >= dense matrix rate, and
// flops scale linearly with CU count.
func TestRateMonotonicityProperty(t *testing.T) {
	f := func(dt uint8) bool {
		d := DataType(int(dt) % int(numDataTypes))
		for _, p := range allPlatforms() {
			if p.PeakSparseFlops(d) < p.PeakFlops(Matrix, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkKindProperties(t *testing.T) {
	// USR must be the cheapest off-die transport (the point of §V.A).
	usr := LinkUSR.EnergyPerBit()
	for _, k := range []LinkKind{LinkSerDes, LinkIFOP, LinkPCIe} {
		if k.EnergyPerBit() <= usr {
			t.Errorf("%s energy %g should exceed USR %g", k, k.EnergyPerBit(), usr)
		}
	}
	if LinkUSR.String() != "USR" || LinkPCIe.String() != "PCIe" {
		t.Error("link kind names wrong")
	}
}
