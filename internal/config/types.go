// Package config is the product database for the simulator: chiplet counts,
// clocks, memory geometry, link maps, and the per-clock-per-CU peak-rate
// tables from the paper's Table 1. Every other package derives its model
// parameters from a PlatformSpec defined here, so the platforms the paper
// compares (MI250X, MI300A, MI300X, the EHPv4 concept, and a baseline
// discrete GPU) are each a single constructor in this package.
package config

import "fmt"

// DataType enumerates the arithmetic formats in the paper's Table 1.
type DataType int

const (
	FP64 DataType = iota
	FP32
	TF32
	FP16
	BF16
	FP8
	INT8
	numDataTypes
)

// String returns the conventional name for the data type.
func (d DataType) String() string {
	switch d {
	case FP64:
		return "FP64"
	case FP32:
		return "FP32"
	case TF32:
		return "TF32"
	case FP16:
		return "FP16"
	case BF16:
		return "BF16"
	case FP8:
		return "FP8"
	case INT8:
		return "INT8"
	default:
		return fmt.Sprintf("DataType(%d)", int(d))
	}
}

// Bytes reports the storage size of one element of the data type.
func (d DataType) Bytes() int {
	switch d {
	case FP64:
		return 8
	case FP32, TF32:
		return 4
	case FP16, BF16:
		return 2
	case FP8, INT8:
		return 1
	default:
		return 0
	}
}

// AllDataTypes lists every data type in Table 1 order.
func AllDataTypes() []DataType {
	return []DataType{FP64, FP32, TF32, FP16, BF16, FP8, INT8}
}

// EngineClass distinguishes the CU's vector (SIMD) pipelines from the Matrix
// Cores.
type EngineClass int

const (
	Vector EngineClass = iota
	Matrix
)

// String returns the engine class name.
func (e EngineClass) String() string {
	if e == Vector {
		return "Vector"
	}
	return "Matrix"
}

// RateTable gives peak operations per clock per CU for each engine class and
// data type, i.e. one column group of the paper's Table 1. A zero entry
// means the format is unsupported ("n/a" in the paper).
type RateTable struct {
	// Name identifies the compute architecture (e.g. "CDNA 2").
	Name string
	// VectorOps[d] is peak vector ops/clk/CU for data type d.
	VectorOps [numDataTypes]float64
	// MatrixOps[d] is peak matrix ops/clk/CU for data type d.
	MatrixOps [numDataTypes]float64
	// SparseMatrixOps[d] is the peak with 4:2 structured sparsity; zero
	// means sparsity is unsupported for that type.
	SparseMatrixOps [numDataTypes]float64
}

// Ops reports ops/clk/CU for the class and type (dense).
func (r *RateTable) Ops(class EngineClass, d DataType) float64 {
	if d < 0 || d >= numDataTypes {
		return 0
	}
	if class == Vector {
		return r.VectorOps[d]
	}
	return r.MatrixOps[d]
}

// SparseOps reports the 4:2-sparse matrix rate, falling back to the dense
// matrix rate when sparsity is unsupported.
func (r *RateTable) SparseOps(d DataType) float64 {
	if d < 0 || d >= numDataTypes {
		return 0
	}
	if s := r.SparseMatrixOps[d]; s > 0 {
		return s
	}
	return r.MatrixOps[d]
}

// Supports reports whether the architecture implements the format at all.
func (r *RateTable) Supports(class EngineClass, d DataType) bool {
	return r.Ops(class, d) > 0
}

// CDNA2Rates is the MI250X column of the paper's Table 1.
func CDNA2Rates() *RateTable {
	return &RateTable{
		Name: "CDNA 2",
		VectorOps: [numDataTypes]float64{
			FP64: 128, FP32: 128,
		},
		MatrixOps: [numDataTypes]float64{
			FP64: 256, FP32: 256, FP16: 1024, BF16: 1024, INT8: 1024,
		},
	}
}

// CDNA3Rates is the MI300A/MI300X column of the paper's Table 1, including
// the FP8 additions and 4:2 sparsity peaks (8192 ops/clk/CU for FP8/INT8).
func CDNA3Rates() *RateTable {
	return &RateTable{
		Name: "CDNA 3",
		VectorOps: [numDataTypes]float64{
			FP64: 128, FP32: 256,
		},
		MatrixOps: [numDataTypes]float64{
			FP64: 256, FP32: 256, TF32: 1024, FP16: 2048, BF16: 2048,
			FP8: 4096, INT8: 4096,
		},
		SparseMatrixOps: [numDataTypes]float64{
			TF32: 2048, FP16: 4096, BF16: 4096, FP8: 8192, INT8: 8192,
		},
	}
}
