package config

// This file computes the derived performance metrics that the paper's
// Figure 19 reports: peak computational throughput per data type, memory
// bandwidth and capacity, and aggregate I/O bandwidth.

// PeakFlops reports peak operations/sec for the whole package for the given
// engine class and data type, dense. For platforms with an analytic
// override (BaselineGPU) the override wins for matrix math.
func (p *PlatformSpec) PeakFlops(class EngineClass, d DataType) float64 {
	if p.AnalyticPeaks != nil {
		if v, ok := p.AnalyticPeaks[d]; ok {
			if class == Matrix {
				return v
			}
			// Vector paths on the baseline run at the FP64/FP32 rate.
			if d == FP64 || d == FP32 {
				return v
			}
			return 0
		}
	}
	if p.XCD == nil || p.XCD.Rates == nil {
		return 0
	}
	ops := p.XCD.Rates.Ops(class, d)
	return ops * float64(p.TotalCUs()) * p.XCD.ClockHz
}

// PeakSparseFlops reports peak matrix ops/sec with 4:2 structured sparsity.
func (p *PlatformSpec) PeakSparseFlops(d DataType) float64 {
	if p.AnalyticPeaks != nil {
		if v, ok := p.AnalyticPeaks[d]; ok {
			return 2 * v // baseline sparsity doubling
		}
	}
	if p.XCD == nil || p.XCD.Rates == nil {
		return 0
	}
	return p.XCD.Rates.SparseOps(d) * float64(p.TotalCUs()) * p.XCD.ClockHz
}

// PeakMemoryBW reports peak theoretical HBM bandwidth in bytes/sec.
func (p *PlatformSpec) PeakMemoryBW() float64 {
	if p.HBM == nil {
		return 0
	}
	return p.HBM.TotalBW()
}

// MemoryCapacity reports package memory capacity in bytes.
func (p *PlatformSpec) MemoryCapacity() int64 {
	if p.HBM == nil {
		return 0
	}
	return p.HBM.TotalCapacity()
}

// InfinityCacheBW reports the memory-side cache bandwidth (0 if absent).
func (p *PlatformSpec) InfinityCacheBW() float64 {
	if p.InfinityCache == nil {
		return 0
	}
	return p.InfinityCache.TotalBW
}

// InfinityCacheBytes reports total Infinity Cache capacity (0 if absent).
func (p *PlatformSpec) InfinityCacheBytes() int64 {
	if p.InfinityCache == nil || p.HBM == nil {
		return 0
	}
	return p.InfinityCache.TotalBytes(p.HBM.TotalChannels())
}

// SocketX16Links reports the number of external x16 links per socket
// (§VIII: "each MI300 socket has eight x16 links").
func (p *PlatformSpec) SocketX16Links() int {
	if p.IOD == nil || p.IODs == 0 {
		// Legacy parts: MI250X exposes 8 external IF links.
		if p.Name == "MI250X" {
			return 8
		}
		return 2
	}
	return p.IODs * p.IOD.X16Links
}

// PeakIOBW reports aggregate bidirectional I/O bandwidth per socket in
// bytes/sec (§VIII: 8 × 128 GB/s = 1,024 GB/s for MI300).
func (p *PlatformSpec) PeakIOBW() float64 {
	if p.IOD != nil && p.IODs > 0 {
		return float64(p.SocketX16Links()) * 2 * p.IOD.X16BWPerDir
	}
	if p.Name == "MI250X" {
		return 8 * 2 * 32e9 // 8 links at 32 GB/s/dir
	}
	return 2 * 2 * 32e9
}

// CPUPeakFlops reports peak FP64 flops of the in-package CPU complex.
func (p *PlatformSpec) CPUPeakFlops() float64 {
	if p.CCD == nil {
		return 0
	}
	return float64(p.TotalCores()) * p.CCD.ClockHz * p.CCD.FlopsCore
}

// EffectiveHostLinkBW reports the per-direction CPU<->GPU bandwidth: for a
// unified-memory APU this is the full HBM bandwidth (data is not moved);
// for discrete platforms it is the host link.
func (p *PlatformSpec) EffectiveHostLinkBW() float64 {
	if p.Memory == UnifiedMemory {
		return p.PeakMemoryBW()
	}
	if p.Host != nil {
		return p.Host.LinkBW
	}
	return 0
}
