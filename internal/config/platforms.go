package config

import (
	"errors"
	"fmt"
)

// Sizes and common constants used throughout the model.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30

	// InterleaveGranule is the physical-address interleave granularity
	// across HBM stacks (§IV.D: "Every 4KB of sequential physical
	// addresses map to the same HBM stack").
	InterleaveGranule = 4 * KiB

	// CacheLineSize is the CDNA 3 L1 line size (§IV.B: 128 B).
	CacheLineSize = 128
)

// XCDSpec describes one accelerator complex die.
type XCDSpec struct {
	PhysicalCUs int     // CUs implemented in silicon (40)
	EnabledCUs  int     // CUs enabled after yield harvesting (38)
	ClockHz     float64 // engine clock
	ACEs        int     // asynchronous compute engines per XCD
	L2Bytes     int64   // shared L2 per XCD
	L1Bytes     int64   // L1D per CU
	LDSBytes    int64   // local data share per CU
	ICacheBytes int64   // instruction cache shared per CU pair
	Rates       *RateTable
	// SIMDLanesPerCU is the nominal vector width used by the functional
	// model to size wavefronts (64-wide wavefronts on CDNA).
	WavefrontSize int
}

// CCDSpec describes one CPU complex die ("Zen 4" CCD).
type CCDSpec struct {
	Cores     int
	ClockHz   float64
	L2Bytes   int64   // per core
	L3Bytes   int64   // shared per CCD
	FlopsCore float64 // peak FP64 flops per core per clock (AVX-512: 16)
}

// HBMSpec describes the in-package memory system.
type HBMSpec struct {
	Generation    string // "HBM2e", "HBM3"
	Stacks        int
	ChannelsStack int     // memory channels per stack
	StackCapacity int64   // bytes per stack
	StackBW       float64 // bytes/sec per stack
}

// TotalCapacity reports the package memory capacity in bytes.
func (h *HBMSpec) TotalCapacity() int64 { return int64(h.Stacks) * h.StackCapacity }

// TotalChannels reports the total channel count.
func (h *HBMSpec) TotalChannels() int { return h.Stacks * h.ChannelsStack }

// TotalBW reports peak theoretical memory bandwidth in bytes/sec.
func (h *HBMSpec) TotalBW() float64 { return float64(h.Stacks) * h.StackBW }

// InfinityCacheSpec describes the memory-side cache (§IV.D).
type InfinityCacheSpec struct {
	SliceBytes int64   // per memory channel (2 MiB)
	TotalBW    float64 // aggregate bandwidth (17 TB/s on MI300A)
	Prefetch   bool
}

// TotalBytes reports total capacity given a channel count.
func (c *InfinityCacheSpec) TotalBytes(channels int) int64 {
	if c == nil {
		return 0
	}
	return c.SliceBytes * int64(channels)
}

// IODSpec describes one I/O die: its share of the fabric, HBM PHYs, and
// external links.
type IODSpec struct {
	HBMStacks int // HBM PHYs per IOD (2 on MI300)
	// USRHorizontalBW / USRVerticalBW are per-direction bandwidths of the
	// ultra-short-reach links to the horizontally / vertically adjacent
	// IOD. Estimated: the paper states only "multiple TB/s".
	USRHorizontalBW float64
	USRVerticalBW   float64
	// X16Links is the number of external x16 interfaces per IOD (2).
	X16Links int
	// X16BWPerDir is per-direction bandwidth of one x16 link (64 GB/s).
	X16BWPerDir float64
	// FabricClockHz is the data-fabric clock for latency modeling.
	FabricClockHz float64
}

// LinkKind classifies inter-die and inter-socket links.
type LinkKind int

const (
	// LinkUSR is an ultra-short-reach die-to-die PHY between adjacent
	// IODs on the interposer (0.4 mW/Gbps, §V.A).
	LinkUSR LinkKind = iota
	// LinkSerDes is a conventional organic-substrate SerDes link (as in
	// EHPv4's GCD-GCD path and EPYC IODs).
	LinkSerDes
	// LinkIFOP is an external x16 Infinity Fabric link between sockets.
	LinkIFOP
	// LinkPCIe is an external x16 PCIe Gen5 link to a host or I/O.
	LinkPCIe
	// LinkOnDie is the fabric within a single IOD.
	LinkOnDie
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case LinkUSR:
		return "USR"
	case LinkSerDes:
		return "SerDes"
	case LinkIFOP:
		return "IFOP"
	case LinkPCIe:
		return "PCIe"
	case LinkOnDie:
		return "OnDie"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// EnergyPerBit reports approximate transport energy in pJ/bit, used by the
// power model to charge data movement. USR is the paper's 0.4 mW/Gbps
// (= 0.4 pJ/bit); others are representative published figures.
func (k LinkKind) EnergyPerBit() float64 {
	switch k {
	case LinkUSR:
		return 0.4
	case LinkSerDes:
		return 2.0
	case LinkIFOP:
		return 4.0
	case LinkPCIe:
		return 5.0
	case LinkOnDie:
		return 0.1
	default:
		return 1.0
	}
}

// MemoryModel distinguishes unified-memory APUs from discrete CPU+GPU nodes.
type MemoryModel int

const (
	// UnifiedMemory: CPU and GPU share one physical HBM pool (APU).
	UnifiedMemory MemoryModel = iota
	// DiscreteMemory: host DDR and device HBM are separate; transfers
	// cross a host link (PCIe or IF).
	DiscreteMemory
)

// String names the memory model.
func (m MemoryModel) String() string {
	if m == UnifiedMemory {
		return "unified"
	}
	return "discrete"
}

// HostSpec describes the host CPU side of a discrete-GPU platform.
type HostSpec struct {
	Cores     int
	ClockHz   float64
	DDRBW     float64 // host memory bandwidth, bytes/sec
	DDRBytes  int64
	LinkKind  LinkKind
	LinkBW    float64 // per-direction host<->device bandwidth, bytes/sec
	FlopsCore float64
}

// PlatformSpec is the complete description of one processor package (plus
// host, for discrete platforms). All simulator components are constructed
// from this.
type PlatformSpec struct {
	Name string

	// Compute.
	XCDs   int
	XCD    *XCDSpec
	CCDs   int
	CCD    *CCDSpec // nil for accelerator-only parts
	IODs   int
	IOD    *IODSpec
	Memory MemoryModel
	Host   *HostSpec // nil for self-hosted APUs

	// Memory system.
	HBM           *HBMSpec
	InfinityCache *InfinityCacheSpec // nil if absent (MI250X)

	// DevicePresentation: number of separate accelerators the package
	// presents to software by default (MI250X presents each GCD as its
	// own device; MI300A presents one).
	DevicePresentation int

	// Power.
	TDPWatts float64

	// AnalyticPeaks optionally overrides computed peak flops (used for
	// the non-CDNA baseline GPU in Fig. 21). Keyed by dense matrix type.
	AnalyticPeaks map[DataType]float64

	// EHPLegacy marks concept platforms (EHPv4) that route GPU-GPU
	// traffic over substrate SerDes instead of USR.
	EHPLegacy bool

	// CrossDieBWPerDir is the per-direction bandwidth between the two
	// GPU halves for legacy parts (MI250X GCD-GCD, EHPv4): these do not
	// have the 4-IOD USR mesh.
	CrossDieBWPerDir float64
}

// TotalCUs reports enabled CUs across all XCDs.
func (p *PlatformSpec) TotalCUs() int {
	if p.XCD == nil {
		return 0
	}
	return p.XCDs * p.XCD.EnabledCUs
}

// TotalCores reports CPU cores in the package (0 for accelerator-only).
func (p *PlatformSpec) TotalCores() int {
	if p.CCD == nil {
		return 0
	}
	return p.CCDs * p.CCD.Cores
}

// Validate checks internal consistency of the spec.
func (p *PlatformSpec) Validate() error {
	if p.Name == "" {
		return errors.New("config: platform must be named")
	}
	if p.XCDs > 0 && p.XCD == nil {
		return fmt.Errorf("config: %s has %d XCDs but no XCD spec", p.Name, p.XCDs)
	}
	if p.CCDs > 0 && p.CCD == nil {
		return fmt.Errorf("config: %s has %d CCDs but no CCD spec", p.Name, p.CCDs)
	}
	if p.XCD != nil && p.XCD.EnabledCUs > p.XCD.PhysicalCUs {
		return fmt.Errorf("config: %s enables %d of %d physical CUs", p.Name, p.XCD.EnabledCUs, p.XCD.PhysicalCUs)
	}
	if p.XCD != nil && p.XCD.EnabledCUs <= 0 {
		return fmt.Errorf("config: %s XCD spec enables %d CUs (need at least 1)", p.Name, p.XCD.EnabledCUs)
	}
	if p.XCD != nil && p.XCD.ClockHz <= 0 {
		return fmt.Errorf("config: %s XCD clock %g Hz is not positive", p.Name, p.XCD.ClockHz)
	}
	if p.CCD != nil && p.CCDs > 0 && (p.CCD.Cores <= 0 || p.CCD.ClockHz <= 0) {
		return fmt.Errorf("config: %s CCD spec needs positive cores and clock (got %d cores at %g Hz)",
			p.Name, p.CCD.Cores, p.CCD.ClockHz)
	}
	if p.HBM == nil {
		return fmt.Errorf("config: %s has no memory spec", p.Name)
	}
	if p.HBM.Stacks <= 0 || p.HBM.ChannelsStack <= 0 {
		return fmt.Errorf("config: %s HBM needs positive stack and channel counts (got %d stacks x %d channels/stack)",
			p.Name, p.HBM.Stacks, p.HBM.ChannelsStack)
	}
	if p.HBM.StackCapacity <= 0 || p.HBM.StackBW <= 0 {
		return fmt.Errorf("config: %s HBM needs positive stack capacity and bandwidth (got %d B at %g B/s)",
			p.Name, p.HBM.StackCapacity, p.HBM.StackBW)
	}
	if p.InfinityCache != nil && (p.InfinityCache.SliceBytes <= 0 || p.InfinityCache.TotalBW <= 0) {
		return fmt.Errorf("config: %s Infinity Cache needs positive slice size and bandwidth (got %d B at %g B/s)",
			p.Name, p.InfinityCache.SliceBytes, p.InfinityCache.TotalBW)
	}
	if p.IODs > 0 && p.IOD != nil && p.IOD.HBMStacks*p.IODs != p.HBM.Stacks {
		return fmt.Errorf("config: %s IODs host %d stacks but HBM has %d",
			p.Name, p.IOD.HBMStacks*p.IODs, p.HBM.Stacks)
	}
	if p.Memory == DiscreteMemory && p.Host == nil {
		return fmt.Errorf("config: %s is discrete but has no host", p.Name)
	}
	if p.DevicePresentation <= 0 {
		return fmt.Errorf("config: %s has no device presentation", p.Name)
	}
	// Platform assembly gives each presented device XCDs/DevicePresentation
	// XCDs; presenting more devices than XCDs would build an empty
	// partition, which the gpu package (rightly) refuses.
	if p.XCDs > 0 && p.DevicePresentation > p.XCDs {
		return fmt.Errorf("config: %s presents %d devices from %d XCDs (each device needs at least one XCD)",
			p.Name, p.DevicePresentation, p.XCDs)
	}
	return nil
}

// MI300A returns the spec of the AMD Instinct MI300A APU (§IV):
// 6 XCDs (228 CUs), 3 CCDs (24 "Zen 4" cores), 4 IODs, 8 HBM3 stacks
// (128 GB, ~5.3 TB/s), 256 MB Infinity Cache at up to 17 TB/s, 550 W.
func MI300A() *PlatformSpec {
	return &PlatformSpec{
		Name: "MI300A",
		XCDs: 6,
		XCD:  cdna3XCD(),
		CCDs: 3,
		CCD:  zen4CCD(),
		IODs: 4,
		IOD:  mi300IOD(),
		HBM: &HBMSpec{
			Generation:    "HBM3",
			Stacks:        8,
			ChannelsStack: 16, // 128 channels total
			StackCapacity: 16 * GiB,
			StackBW:       5.3e12 / 8,
		},
		InfinityCache: &InfinityCacheSpec{
			SliceBytes: 2 * MiB,
			TotalBW:    17e12,
			Prefetch:   true,
		},
		Memory:             UnifiedMemory,
		DevicePresentation: 1,
		TDPWatts:           550,
	}
}

// MI300X returns the spec of the AMD Instinct MI300X accelerator (§VII):
// the three CCDs are swapped for two more XCDs (8 XCDs, 304 CUs) and the
// HBM stacks are 12-high (192 GB).
func MI300X() *PlatformSpec {
	p := MI300A()
	p.Name = "MI300X"
	p.XCDs = 8
	p.CCDs = 0
	p.CCD = nil
	p.HBM.StackCapacity = 24 * GiB // 12-high stacks
	p.Memory = DiscreteMemory      // PCIe device attached to an EPYC host
	p.Host = epycHost()
	p.TDPWatts = 750
	return p
}

// MI250X returns the spec of the AMD Instinct MI250X accelerator (CDNA 2):
// two GCDs of 110 CUs each presented as separate devices, 128 GB HBM2e at
// ~3.28 TB/s, no Infinity Cache, 560 W.
func MI250X() *PlatformSpec {
	return &PlatformSpec{
		Name: "MI250X",
		XCDs: 2, // two GCDs
		XCD: &XCDSpec{
			PhysicalCUs:   112,
			EnabledCUs:    110,
			ClockHz:       1.7e9,
			ACEs:          4,
			L2Bytes:       8 * MiB,
			L1Bytes:       16 * KiB,
			LDSBytes:      64 * KiB,
			ICacheBytes:   32 * KiB,
			Rates:         CDNA2Rates(),
			WavefrontSize: 64,
		},
		IODs: 0, // monolithic GCDs bridged by EFB, no separate IOD
		HBM: &HBMSpec{
			Generation:    "HBM2e",
			Stacks:        8,
			ChannelsStack: 8,
			StackCapacity: 16 * GiB,
			StackBW:       3.2768e12 / 8,
		},
		Memory:             DiscreteMemory,
		Host:               epycHost(),
		DevicePresentation: 2, // each GCD is a standalone accelerator (§VI.A)
		TDPWatts:           560,
		CrossDieBWPerDir:   200e9, // 4 IF links between GCDs, 50 GB/s/dir each
	}
}

// EHPv4 returns the "version 4" Exascale Heterogeneous Processor concept
// (§II.A, §III.B): 4 GPU chiplets + 2 CCDs around a reused EPYC server IOD,
// 8 HBM stacks, with the documented shortcomings — GCD-GCD traffic over
// distant substrate SerDes and CPU→HBM paths needing two IF hops.
func EHPv4() *PlatformSpec {
	return &PlatformSpec{
		Name: "EHPv4",
		XCDs: 4,
		XCD: &XCDSpec{
			PhysicalCUs:   40,
			EnabledCUs:    38,
			ClockHz:       1.7e9,
			ACEs:          4,
			L2Bytes:       4 * MiB,
			L1Bytes:       16 * KiB,
			LDSBytes:      64 * KiB,
			ICacheBytes:   32 * KiB,
			Rates:         CDNA2Rates(),
			WavefrontSize: 64,
		},
		CCDs: 2,
		CCD:  zen4CCD(),
		IODs: 1, // the reused EPYC server IOD
		IOD: &IODSpec{
			HBMStacks: 8,
			// No USR: the server IOD only offers substrate SerDes
			// IF links provisioned for DDR-class bandwidth (§III.B).
			USRHorizontalBW: 0,
			USRVerticalBW:   0,
			X16Links:        2,
			X16BWPerDir:     36e9, // older-generation IF
			FabricClockHz:   1.8e9,
		},
		HBM: &HBMSpec{
			Generation:    "HBM2e",
			Stacks:        8,
			ChannelsStack: 8,
			StackCapacity: 16 * GiB,
			StackBW:       3.2768e12 / 8,
		},
		Memory:             UnifiedMemory,
		DevicePresentation: 2, // two GPU halves, not unifiable (§VI.A)
		TDPWatts:           500,
		EHPLegacy:          true,
		CrossDieBWPerDir:   100e9, // long-distance substrate SerDes path (Fig. 4 ①)
	}
}

// BaselineGPU returns an H100-class competitor model used as the Fig. 21
// baseline: analytic peak rates (no CDNA rate table), 80 GB HBM3 at
// 3.35 TB/s, attached over PCIe to an x86 host.
func BaselineGPU() *PlatformSpec {
	return &PlatformSpec{
		Name: "BaselineGPU",
		XCDs: 1, // modeled as one monolithic die
		XCD: &XCDSpec{
			PhysicalCUs:   132,
			EnabledCUs:    132,
			ClockHz:       1.98e9,
			ACEs:          1,
			L2Bytes:       64 * MiB, // ~50 MB real; rounded for power-of-two sets
			L1Bytes:       256 * KiB,
			LDSBytes:      0,
			ICacheBytes:   32 * KiB,
			Rates:         &RateTable{Name: "baseline"},
			WavefrontSize: 32,
		},
		HBM: &HBMSpec{
			Generation:    "HBM3",
			Stacks:        5,
			ChannelsStack: 8,
			StackCapacity: 16 * GiB,
			StackBW:       3.35e12 / 5,
		},
		Memory:             DiscreteMemory,
		Host:               epycHost(),
		DevicePresentation: 1,
		TDPWatts:           700,
		AnalyticPeaks: map[DataType]float64{
			FP64: 67e12,
			FP32: 67e12,
			TF32: 494e12,
			FP16: 989e12,
			BF16: 989e12,
			FP8:  1979e12,
			INT8: 1979e12,
		},
	}
}

// cdna3XCD is the MI300-family XCD (§IV.B): 40 physical / 38 enabled CUs,
// 4 ACEs, 4 MB L2, 32 KB L1D with 128 B lines, 64 KB LDS, 64 KB shared
// I-cache per CU pair.
func cdna3XCD() *XCDSpec {
	return &XCDSpec{
		PhysicalCUs:   40,
		EnabledCUs:    38,
		ClockHz:       2.1e9,
		ACEs:          4,
		L2Bytes:       4 * MiB,
		L1Bytes:       32 * KiB,
		LDSBytes:      64 * KiB,
		ICacheBytes:   64 * KiB,
		Rates:         CDNA3Rates(),
		WavefrontSize: 64,
	}
}

// zen4CCD is the "Zen 4" CCD (§IV.C): 8 cores, 1 MB L2/core, 32 MB shared
// L3, AVX-512 (16 FP64 flops/clk/core).
func zen4CCD() *CCDSpec {
	return &CCDSpec{
		Cores:     8,
		ClockHz:   3.7e9,
		L2Bytes:   1 * MiB,
		L3Bytes:   32 * MiB,
		FlopsCore: 16,
	}
}

// mi300IOD is one of MI300's four active-interposer I/O dies: 2 HBM PHYs,
// USR links to adjacent IODs, and two external x16 interfaces (§V, §VIII).
// USR per-direction bandwidths are estimates consistent with the paper's
// "multiple TB/s" aggregate.
func mi300IOD() *IODSpec {
	return &IODSpec{
		HBMStacks:       2,
		USRHorizontalBW: 1.5e12,
		USRVerticalBW:   1.2e12,
		X16Links:        2,
		X16BWPerDir:     64e9,
		FabricClockHz:   2.0e9,
	}
}

// epycHost is a 4th-gen EPYC host for discrete platforms.
func epycHost() *HostSpec {
	return &HostSpec{
		Cores:     64,
		ClockHz:   3.5e9,
		DDRBW:     460e9, // 12ch DDR5-4800
		DDRBytes:  768 * GiB,
		LinkKind:  LinkPCIe,
		LinkBW:    64e9,
		FlopsCore: 16,
	}
}
