package audit

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/hsa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// This file wires component ledgers into an Auditor. Each helper is safe
// to call unconditionally: registration on a nil auditor is a no-op, so
// instrumented construction paths carry no audit branches.

// Fabric registers byte-conservation checks for a network: every byte
// injected into the fabric is carried by exactly the links on its path
// (injected = delivered per hop), and links downed by RAS carry no new
// traffic afterwards — traffic must reroute, not cross dead hardware.
func Fabric(a *Auditor, n *fabric.Network) {
	if !a.Enabled() || n == nil {
		return
	}
	a.Register("fabric", func(sim.Time) []Violation {
		var vs []Violation
		if want, got := n.InjectedBytes(), n.TotalBytes(); want != got {
			vs = append(vs, Violation{
				Ledger: "byte-conservation",
				Detail: "bytes injected into the fabric must equal bytes carried across link hops",
				Want:   float64(want), Got: float64(got),
			})
		}
		for _, l := range n.Links() {
			if l.State() == fabric.LinkDown && l.BytesCarried() > l.BytesAtDown() {
				vs = append(vs, Violation{
					Ledger: "down-link-quiesced",
					Detail: fmt.Sprintf("link %s carried traffic while down (stale route not invalidated)", l.Name),
					Want:   float64(l.BytesAtDown()), Got: float64(l.BytesCarried()),
				})
			}
		}
		return vs
	})
}

// HBM registers request/response and ECC-retry accounting for a memory
// device under the given component name (e.g. "hbm", "hostddr"): every
// issued interleave chunk occupies exactly one channel once, plus exactly
// one extra occupancy per ECC retry, and retired channels serve no new
// operations.
func HBM(a *Auditor, h *mem.HBM, component string) {
	if !a.Enabled() || h == nil {
		return
	}
	a.Register(component, func(sim.Time) []Violation {
		var vs []Violation
		var ops uint64
		for _, c := range h.Channels() {
			r, w := c.Counts()
			ops += r + w
		}
		if want, got := h.ChunksIssued()+h.ECCEvents(), ops; want != got {
			vs = append(vs, Violation{
				Ledger: "request-accounting",
				Detail: "channel operations must equal issued chunks plus ECC retries",
				Want:   float64(want), Got: float64(got),
			})
		}
		for _, c := range h.Channels() {
			if !c.Retired() {
				continue
			}
			r, w := c.Counts()
			if r+w > c.OpsAtRetire() {
				vs = append(vs, Violation{
					Ledger: "retired-channel-quiesced",
					Detail: fmt.Sprintf("channel %d served operations after retirement (interleave redirect leaked)", c.Index),
					Want:   float64(c.OpsAtRetire()), Got: float64(r + w),
				})
			}
		}
		return vs
	})
}

// InfinityCache registers slice-accounting for the memory-side cache:
// every access registered exactly one hit or miss across the slices.
func InfinityCache(a *Auditor, ic *cache.InfinityCache) {
	if !a.Enabled() || ic == nil {
		return
	}
	a.Register("infcache", func(sim.Time) []Violation {
		s := ic.Stats()
		if want, got := ic.Accesses(), s.Hits+s.Misses; want != got {
			return []Violation{{
				Ledger: "slice-accounting",
				Detail: "accesses must equal hits plus misses across slices",
				Want:   float64(want), Got: float64(got),
			}}
		}
		return nil
	})
}

// Partition registers dispatch and completion-signal accounting for a GPU
// partition: workgroups enqueued by processed packets equal workgroups
// assigned to live XCDs (none dropped or double-assigned, including after
// declared XCD loss), and every armed completion signal was decremented.
func Partition(a *Auditor, p *gpu.Partition) {
	if !a.Enabled() || p == nil {
		return
	}
	a.Register("gpu."+p.Name, func(sim.Time) []Violation {
		var vs []Violation
		if enq, asg := p.DispatchLedger(); enq != asg {
			vs = append(vs, Violation{
				Ledger: "dispatch-accounting",
				Detail: "workgroups enqueued must equal workgroups assigned to live XCDs",
				Want:   float64(enq), Got: float64(asg),
			})
		}
		if armed, done := p.SignalLedger(); armed != done {
			vs = append(vs, Violation{
				Ledger: "completion-signals",
				Detail: "every completion signal armed on a processed packet must be decremented",
				Want:   float64(armed), Got: float64(done),
			})
		}
		return vs
	})
}

// Queue registers ring-index sanity for an AQL queue: the consumer never
// passes the producer and occupancy never exceeds the ring.
func Queue(a *Auditor, q *hsa.Queue) {
	if !a.Enabled() || q == nil {
		return
	}
	a.Register("hsa."+q.Name, func(sim.Time) []Violation {
		if err := q.CheckRing(); err != nil {
			return []Violation{{
				Ledger: "ring-indices",
				Detail: err.Error(),
				Want:   float64(q.WriteIndex()), Got: float64(q.ReadIndex()),
			}}
		}
		return nil
	})
}

// Engine registers the drain-quiescence check: when the audit runs, every
// remaining live event must be parked at Forever (a sentinel that never
// fires). Real future work left in the queue means the run declared
// completion before the simulation actually finished.
func Engine(a *Auditor, e *sim.Engine) {
	if !a.Enabled() || e == nil {
		return
	}
	a.Register("engine", func(sim.Time) []Violation {
		if e.Quiescent() {
			return nil
		}
		return []Violation{{
			Ledger: "drain-quiescence",
			Detail: "live events below Forever remain queued at drain (run ended with work pending)",
			Want:   0, Got: float64(e.Pending()),
		}}
	})
}
