package audit

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestNilAuditorIsInert(t *testing.T) {
	var a *Auditor
	if a.Enabled() {
		t.Fatal("nil auditor reports enabled")
	}
	a.Register("x", func(sim.Time) []Violation { return []Violation{{Ledger: "boom"}} })
	if a.Checks() != 0 {
		t.Fatalf("nil auditor holds %d checks", a.Checks())
	}
	if rep := a.Audit(0); rep != nil {
		t.Fatalf("nil auditor produced a report: %+v", rep)
	}
	// A nil report is a clean report: completed-but-unaudited runs pass.
	var rep *Report
	if !rep.OK() {
		t.Fatal("nil report is not OK")
	}
}

func TestAuditCleanReport(t *testing.T) {
	a := New()
	if !a.Enabled() {
		t.Fatal("fresh auditor not enabled")
	}
	a.Register("fabric", func(sim.Time) []Violation { return nil })
	a.Register("hbm", func(sim.Time) []Violation { return nil })

	rep := a.Audit(3 * sim.Microsecond)
	if rep.Schema != Schema {
		t.Fatalf("schema %q, want %q", rep.Schema, Schema)
	}
	if rep.Checks != 2 {
		t.Fatalf("checks %d, want 2", rep.Checks)
	}
	if rep.AtNS != 3000 {
		t.Fatalf("at_ns %g, want 3000", rep.AtNS)
	}
	if !rep.OK() || rep.Err() != nil {
		t.Fatalf("clean report not OK: %v", rep.Err())
	}
	// Violations must marshal as [] (never null) so the wire shape is
	// stable for report diffing.
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"violations": []`)) && !bytes.Contains(out, []byte(`"violations":[]`)) {
		t.Fatalf("clean report does not marshal violations as []: %s", out)
	}
}

func TestAuditViolationsFillComponentAndOrder(t *testing.T) {
	a := New()
	a.Register("fabric", func(sim.Time) []Violation {
		return []Violation{{Ledger: "byte-conservation", Detail: "lost bytes", Want: 10, Got: 7}}
	})
	a.Register("gpu", func(sim.Time) []Violation {
		return []Violation{{Component: "gpu.part0", Ledger: "dispatch-accounting", Want: 4, Got: 3}}
	})

	rep := a.Audit(0)
	if rep.OK() {
		t.Fatal("report with violations is OK")
	}
	if len(rep.Violations) != 2 {
		t.Fatalf("got %d violations, want 2", len(rep.Violations))
	}
	// Empty Component inherits the registration name; explicit ones win.
	if rep.Violations[0].Component != "fabric" {
		t.Fatalf("violation 0 component %q, want inherited \"fabric\"", rep.Violations[0].Component)
	}
	if rep.Violations[1].Component != "gpu.part0" {
		t.Fatalf("violation 1 component %q, want explicit \"gpu.part0\"", rep.Violations[1].Component)
	}

	err := rep.Err()
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("report error %v does not wrap ErrViolation", err)
	}
}

func TestEngineCheckQuiescence(t *testing.T) {
	a := New()
	eng := sim.NewEngine()
	Engine(a, eng)

	eng.ScheduleNamed("tick", 10, func(sim.Time) {})
	if rep := a.Audit(eng.Now()); rep.OK() {
		t.Fatal("audit passed with a live pending event")
	}
	eng.RunAll()
	if rep := a.Audit(eng.Now()); !rep.OK() {
		t.Fatalf("audit failed on a drained engine: %v", rep.Violations)
	}
	// A sentinel parked at Forever is quiescent by design.
	eng.ScheduleNamed("sentinel", sim.Forever, func(sim.Time) {})
	if rep := a.Audit(eng.Now()); !rep.OK() {
		t.Fatalf("audit failed with only a Forever sentinel pending: %v", rep.Violations)
	}
}
