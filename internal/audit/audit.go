// Package audit is the runtime invariant-verification subsystem: a
// registry of conservation ledgers that components contribute while a
// simulation runs, checked once at drain time. The paper's reliability
// story (RAS, bring-up) is that the platform keeps producing trustworthy
// answers while links derate, HBM channels retire, and XCDs drop out;
// the auditor turns "the run finished" into "the run finished and the
// physics added up" — bytes, workgroups, completion signals, and energy
// are conserved even under fault storms.
//
// Like spans.Recorder, a nil *Auditor is the disarmed state: every
// method on a nil receiver is a no-op, so instrumented components call
// the auditor unconditionally and pay nothing when auditing is off.
package audit

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Schema identifies the audit report JSON layout. Bump on any change to
// the Report or Violation field set.
const Schema = "apusim-audit/v1"

// ErrViolation is the sentinel wrapped by Report.Err when a check
// failed. errors.Is(err, audit.ErrViolation) identifies audit failures.
var ErrViolation = errors.New("audit: invariant violated")

// Violation is one failed invariant check. Want/Got carry the two sides
// of the broken conservation equation (as floats so byte counts and
// joules share one shape); Detail names the specific site.
type Violation struct {
	Component string  `json:"component"`
	Ledger    string  `json:"ledger"`
	Detail    string  `json:"detail"`
	Want      float64 `json:"want"`
	Got       float64 `json:"got"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s (want %g, got %g)", v.Component, v.Ledger, v.Detail, v.Want, v.Got)
}

// CheckFunc evaluates one component's ledgers at drain time and returns
// every violated invariant (nil when all hold). now is the engine's
// simulated time at the audit point.
type CheckFunc func(now sim.Time) []Violation

type check struct {
	component string
	fn        CheckFunc
}

// Auditor collects conservation checks registered by components during
// platform construction and evaluates them at drain. The zero value is
// unusable; New returns an armed auditor, and a nil *Auditor is the
// zero-cost disarmed state.
type Auditor struct {
	checks []check
}

// New returns an armed auditor with no checks registered.
func New() *Auditor { return &Auditor{} }

// Enabled reports whether auditing is armed. Instrumentation may use it
// to skip ledger bookkeeping entirely, though Register alone is safe on
// a nil receiver.
func (a *Auditor) Enabled() bool { return a != nil }

// Register adds a check under a component name. Checks run in
// registration order, so reports are deterministic for a fixed platform
// build order. No-op on a nil auditor.
func (a *Auditor) Register(component string, fn CheckFunc) {
	if a == nil || fn == nil {
		return
	}
	a.checks = append(a.checks, check{component: component, fn: fn})
}

// Checks reports the number of registered checks (0 when disarmed).
func (a *Auditor) Checks() int {
	if a == nil {
		return 0
	}
	return len(a.checks)
}

// Audit evaluates every registered check at simulated time now and
// returns the structured report. Returns nil on a nil auditor.
func (a *Auditor) Audit(now sim.Time) *Report {
	if a == nil {
		return nil
	}
	rep := &Report{
		Schema:     Schema,
		AtNS:       float64(now) / float64(sim.Nanosecond),
		Checks:     len(a.checks),
		Violations: []Violation{},
	}
	for _, c := range a.checks {
		for _, v := range c.fn(now) {
			if v.Component == "" {
				v.Component = c.component
			}
			rep.Violations = append(rep.Violations, v)
		}
	}
	return rep
}

// Report is the deterministic audit outcome embedded in run manifests.
// Violations is never nil (empty slice when clean) so the JSON shape is
// stable. Every field derives from simulated state only — no wall-clock
// data — so reports are byte-identical across -parallel degrees.
type Report struct {
	Schema     string      `json:"schema"`
	AtNS       float64     `json:"at_ns"`
	Checks     int         `json:"checks"`
	Violations []Violation `json:"violations"`
}

// OK reports whether every check held.
func (r *Report) OK() bool { return r == nil || len(r.Violations) == 0 }

// Err returns nil for a clean report, or an error wrapping ErrViolation
// that lists the violated invariants.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var b strings.Builder
	for i, v := range r.Violations {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(v.String())
	}
	return fmt.Errorf("%w: %d violations across %d checks: %s", ErrViolation, len(r.Violations), r.Checks, b.String())
}
