// Package metrics provides the lightweight counters, distributions, and
// table/series renderers used by every experiment harness in the repository
// to print paper-style results.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    uint64
}

// NewCounter returns a named counter starting at zero.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name reports the counter's name.
func (c *Counter) Name() string { return c.name }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Distribution accumulates scalar samples and reports summary statistics.
type Distribution struct {
	name    string
	samples []float64
	sorted  bool
}

// NewDistribution returns a named, empty distribution.
func NewDistribution(name string) *Distribution { return &Distribution{name: name} }

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N reports the number of samples.
func (d *Distribution) N() int { return len(d.samples) }

// Name reports the distribution's name.
func (d *Distribution) Name() string { return d.name }

// Sum reports the sample total.
func (d *Distribution) Sum() float64 {
	var s float64
	for _, v := range d.samples {
		s += v
	}
	return s
}

// Mean reports the sample mean, or 0 with no samples.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.Sum() / float64(len(d.samples))
}

// Min reports the smallest sample, or 0 with no samples (matching Mean
// and StdDev, so empty distributions never leak infinities into tables).
func (d *Distribution) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, v := range d.samples {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest sample, or 0 with no samples.
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, v := range d.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev reports the population standard deviation.
func (d *Distribution) StdDev() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// Quantile reports the q-quantile (0..1) by nearest-rank on the sorted
// samples. It returns 0 with no samples.
func (d *Distribution) Quantile(q float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[n-1]
	}
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return d.samples[idx]
}

// Median reports the 0.5-quantile.
func (d *Distribution) Median() float64 { return d.Quantile(0.5) }

// Table renders aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row of cells. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row where each cell is formatted from a value using %v
// for strings and %.4g for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, FormatFloat(v))
		case float32:
			row = append(row, FormatFloat(float64(v)))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the underlying rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table with box-drawing-free alignment suitable for
// terminals and golden files.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if w := len([]rune(c)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len([]rune(c)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to distinguish. Non-finite values are
// rendered as "n/a" (NaN) and "inf"/"-inf", never raw, so a missing
// statistic cannot corrupt a table's alignment.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	a := math.Abs(v)
	switch {
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// FormatBytes renders a byte count with a binary-prefix unit.
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatRate renders a bytes-per-second rate with a decimal-prefix unit
// (TB/s, GB/s, ...), matching the units the paper quotes.
func FormatRate(bytesPerSec float64) string {
	switch {
	case bytesPerSec >= 1e12:
		return fmt.Sprintf("%.2f TB/s", bytesPerSec/1e12)
	case bytesPerSec >= 1e9:
		return fmt.Sprintf("%.1f GB/s", bytesPerSec/1e9)
	case bytesPerSec >= 1e6:
		return fmt.Sprintf("%.1f MB/s", bytesPerSec/1e6)
	default:
		return fmt.Sprintf("%.0f B/s", bytesPerSec)
	}
}

// FormatFlops renders a flops rate with a decimal-prefix unit.
func FormatFlops(flops float64) string {
	switch {
	case flops >= 1e15:
		return fmt.Sprintf("%.2f PFLOPS", flops/1e15)
	case flops >= 1e12:
		return fmt.Sprintf("%.1f TFLOPS", flops/1e12)
	case flops >= 1e9:
		return fmt.Sprintf("%.1f GFLOPS", flops/1e9)
	default:
		return fmt.Sprintf("%.0f FLOPS", flops)
	}
}

// Series is a named sequence of (label, value) points, used for bar-chart
// style figures (e.g., paper Figs. 20 and 21).
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends one point.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// BarChart renders the series as a horizontal ASCII bar chart scaled to
// width characters for the maximum value.
func (s *Series) BarChart(width int) string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range s.Values {
		if v > maxV {
			maxV = v
		}
		if l := len(s.Labels[i]); l > maxL {
			maxL = l
		}
	}
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "-- %s --\n", s.Name)
	}
	for i, v := range s.Values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", maxL, s.Labels[i], strings.Repeat("#", bar), FormatFloat(v))
	}
	return b.String()
}
