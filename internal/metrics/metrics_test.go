package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := NewCounter("hits")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("Value = %d, want 10", c.Value())
	}
	if c.Name() != "hits" {
		t.Errorf("Name = %q", c.Name())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset did not zero counter")
	}
}

func TestDistributionStats(t *testing.T) {
	d := NewDistribution("lat")
	for _, v := range []float64{4, 2, 8, 6} {
		d.Observe(v)
	}
	if d.N() != 4 {
		t.Fatalf("N = %d", d.N())
	}
	if d.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", d.Mean())
	}
	if d.Min() != 2 || d.Max() != 8 {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if d.Sum() != 20 {
		t.Errorf("Sum = %v", d.Sum())
	}
	want := math.Sqrt(5) // population stddev of {2,4,6,8}
	if math.Abs(d.StdDev()-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", d.StdDev(), want)
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution("e")
	if d.Mean() != 0 || d.Median() != 0 || d.StdDev() != 0 {
		t.Error("empty distribution stats should be zero")
	}
	if d.Min() != 0 || d.Max() != 0 {
		t.Errorf("empty Min/Max = %v/%v, want 0/0 (no infinities in tables)",
			d.Min(), d.Max())
	}
}

func TestFormatFloatNonFinite(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "n/a"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{1.5, "1.50"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	// Non-finite values must flow through AddRowf without corrupting the
	// rendered table.
	tbl := NewTable("t", "a", "b")
	tbl.AddRowf(math.NaN(), math.Inf(1))
	out := tbl.String()
	if !strings.Contains(out, "n/a") || !strings.Contains(out, "inf") {
		t.Errorf("table rendering of non-finite values:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "+Inf") {
		t.Errorf("raw Go float formatting leaked into table:\n%s", out)
	}
}

func TestDistributionQuantile(t *testing.T) {
	d := NewDistribution("q")
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if q := d.Quantile(0); q != 1 {
		t.Errorf("Q0 = %v", q)
	}
	if q := d.Quantile(1); q != 100 {
		t.Errorf("Q1 = %v", q)
	}
	med := d.Median()
	if med < 49 || med > 52 {
		t.Errorf("median = %v, want ~50", med)
	}
}

// Property: quantile is monotonic in q and bounded by min/max.
func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		d := NewDistribution("p")
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
			d.Observe(v)
		}
		qa, qb := math.Abs(a)-math.Trunc(math.Abs(a)), math.Abs(b)-math.Trunc(math.Abs(b))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := d.Quantile(qa), d.Quantile(qb)
		return va <= vb && va >= d.Min() && vb <= d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Observe order does not change the median.
func TestQuantileOrderInvarianceProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		d1 := NewDistribution("a")
		for _, v := range clean {
			d1.Observe(v)
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		d2 := NewDistribution("b")
		for _, v := range sorted {
			d2.Observe(v)
		}
		return d1.Median() == d2.Median()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Peak Rates", "Arch", "FP64", "FP16")
	tb.AddRow("CDNA 2", "128", "1024")
	tb.AddRowf("CDNA 3", 128, 2048)
	out := tb.String()
	if !strings.Contains(out, "Peak Rates") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "CDNA 3") || !strings.Contains(out, "2048") {
		t.Errorf("missing row data:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	if got := tb.Rows()[0]; len(got) != 3 {
		t.Errorf("padded row length = %d, want 3", len(got))
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := []struct{ got, want string }{
		{FormatBytes(512), "512 B"},
		{FormatBytes(2048), "2.0 KiB"},
		{FormatBytes(128 << 30), "128.0 GiB"},
		{FormatRate(5.3e12), "5.30 TB/s"},
		{FormatRate(64e9), "64.0 GB/s"},
		{FormatFlops(61.3e12), "61.3 TFLOPS"},
		{FormatFlops(1.96e15), "1.96 PFLOPS"},
		{FormatFloat(2), "2"},
		{FormatFloat(2.75), "2.75"},
		{FormatFloat(0.4), "0.4000"},
		{FormatFloat(123.456), "123.5"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestSeriesBarChart(t *testing.T) {
	var s Series
	s.Name = "Speedup"
	s.Add("OpenFOAM", 2.75)
	s.Add("HPCG", 1.6)
	out := s.BarChart(20)
	if !strings.Contains(out, "OpenFOAM") || !strings.Contains(out, "2.75") {
		t.Errorf("bad chart:\n%s", out)
	}
	// The max bar should be exactly the requested width.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "OpenFOAM") && strings.Count(line, "#") != 20 {
			t.Errorf("max bar width = %d, want 20", strings.Count(line, "#"))
		}
	}
}
