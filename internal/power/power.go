// Package power models MI300A's socket power management (§V.D-E): a fixed
// socket TDP shared by the compute chiplets, the memory system, and the
// data-movement fabric, with dynamic reallocation between them as
// workloads transition between compute-dominated and memory-intensive
// phases (Fig. 12a). It also checks the vertical power-delivery limits of
// the TSV grid (1.5 A/mm² to stacked chiplets, +0.5 A/mm² for the IOD).
package power

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Domain is a power-consuming subsystem of the socket.
type Domain int

const (
	DomainXCD Domain = iota
	DomainCCD
	DomainHBM
	DomainFabric // IOD data fabric + Infinity Cache
	DomainUSR    // inter-IOD PHYs
	DomainIO     // external x16 PHYs
	numDomains
)

// String names the domain.
func (d Domain) String() string {
	return [...]string{"XCD", "CCD", "HBM", "Fabric", "USR", "IO"}[d]
}

// AllDomains lists every domain.
func AllDomains() []Domain {
	ds := make([]Domain, numDomains)
	for i := range ds {
		ds[i] = Domain(i)
	}
	return ds
}

// DomainSpec is the idle floor and full-activity power of one domain.
type DomainSpec struct {
	IdleW float64
	PeakW float64
}

// Model is a socket power model: per-domain envelopes plus the TDP that
// their sum deliberately exceeds — the whole point of dynamic shifting is
// that not every domain can run flat-out at once.
type Model struct {
	Name    string
	TDP     float64
	Domains [numDomains]DomainSpec
}

// MI300AModel returns the 550 W MI300A socket model. Per-domain envelopes
// are estimates; their sum (~680 W peak) intentionally exceeds TDP so the
// governor must shift power between phases, as in Fig. 12(a).
func MI300AModel() *Model {
	return &Model{
		Name: "MI300A",
		TDP:  550,
		Domains: [numDomains]DomainSpec{
			DomainXCD:    {IdleW: 36, PeakW: 390},
			DomainCCD:    {IdleW: 12, PeakW: 95},
			DomainHBM:    {IdleW: 18, PeakW: 90},
			DomainFabric: {IdleW: 15, PeakW: 60},
			DomainUSR:    {IdleW: 5, PeakW: 30},
			DomainIO:     {IdleW: 4, PeakW: 15},
		},
	}
}

// MI300XModel returns the 750 W MI300X accelerator model (eight XCDs, no
// CCDs).
func MI300XModel() *Model {
	return &Model{
		Name: "MI300X",
		TDP:  750,
		Domains: [numDomains]DomainSpec{
			DomainXCD:    {IdleW: 48, PeakW: 560},
			DomainHBM:    {IdleW: 24, PeakW: 110},
			DomainFabric: {IdleW: 15, PeakW: 65},
			DomainUSR:    {IdleW: 5, PeakW: 35},
			DomainIO:     {IdleW: 4, PeakW: 20},
		},
	}
}

// Activity is per-domain utilization demand in [0,1].
type Activity [numDomains]float64

// Allocation is the granted per-domain power in watts.
type Allocation [numDomains]float64

// Total sums the allocation.
func (a Allocation) Total() float64 {
	var t float64
	for _, v := range a {
		t += v
	}
	return t
}

// Fraction reports domain d's share of the total.
func (a Allocation) Fraction(d Domain) float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	return a[d] / t
}

// clamp01 bounds x to [0,1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Allocate grants each domain idle + activity×(peak−idle) watts, then, if
// the total exceeds TDP, scales back the dynamic (above-idle) portion of
// every domain proportionally — the model's DVFS. It returns the
// allocation and the applied dynamic scale factor (1 = no throttling).
// The scale is the performance cost of the power wall; callers stretch
// compute time by 1/scale.
func (m *Model) Allocate(act Activity) (Allocation, float64) {
	var alloc Allocation
	var idleSum, dynSum float64
	for d := 0; d < int(numDomains); d++ {
		spec := m.Domains[d]
		a := clamp01(act[d])
		alloc[d] = spec.IdleW + a*(spec.PeakW-spec.IdleW)
		idleSum += spec.IdleW
		dynSum += alloc[d] - spec.IdleW
	}
	scale := 1.0
	if total := idleSum + dynSum; total > m.TDP && dynSum > 0 {
		scale = (m.TDP - idleSum) / dynSum
		if scale < 0 {
			scale = 0
		}
		for d := 0; d < int(numDomains); d++ {
			dyn := alloc[d] - m.Domains[d].IdleW
			alloc[d] = m.Domains[d].IdleW + dyn*scale
		}
	}
	return alloc, scale
}

// StaticAllocate models the ablation case: a fixed per-domain budget
// (TDP split proportionally to peak power) with no dynamic shifting.
// Each domain gets min(demand, its static cap); surplus in one domain
// cannot help another. The dynamic governor's advantage over this is the
// benefit of §V.D-E's vertical power shifting.
func (m *Model) StaticAllocate(act Activity) (Allocation, float64) {
	var peakSum float64
	for _, d := range m.Domains {
		peakSum += d.PeakW
	}
	var alloc Allocation
	worstScale := 1.0
	for d := 0; d < int(numDomains); d++ {
		spec := m.Domains[d]
		if spec.PeakW == 0 {
			continue
		}
		cap := m.TDP * spec.PeakW / peakSum
		want := spec.IdleW + clamp01(act[d])*(spec.PeakW-spec.IdleW)
		if want <= cap {
			alloc[d] = want
			continue
		}
		alloc[d] = cap
		// The throttled domain slows in proportion to its dynamic-power
		// shortfall.
		if dyn := want - spec.IdleW; dyn > 0 {
			scale := (cap - spec.IdleW) / dyn
			if scale < 0 {
				scale = 0
			}
			if scale < worstScale {
				worstScale = scale
			}
		}
	}
	return alloc, worstScale
}

// ComputeIntensive is the Fig. 12(a) GPU-bound scenario: compute chiplets
// at full tilt, moderate memory traffic.
func ComputeIntensive() Activity {
	var a Activity
	a[DomainXCD] = 1.0
	a[DomainCCD] = 0.35
	a[DomainHBM] = 0.35
	a[DomainFabric] = 0.40
	a[DomainUSR] = 0.30
	a[DomainIO] = 0.20
	return a
}

// MemoryIntensive is the Fig. 12(a) bandwidth-bound scenario: the memory
// system, data fabric, and USR links take the power; compute throttles.
func MemoryIntensive() Activity {
	var a Activity
	a[DomainXCD] = 0.45
	a[DomainCCD] = 0.30
	a[DomainHBM] = 1.0
	a[DomainFabric] = 1.0
	a[DomainUSR] = 1.0
	a[DomainIO] = 0.50
	return a
}

// Delivery checks vertical power-delivery feasibility per §V.D.
type Delivery struct {
	// SupplyVolts is the chiplet supply voltage.
	SupplyVolts float64
	// StackedLimitAmpsPerMM2 is the TSV grid's current density to the
	// stacked chiplets (paper: >1.5 A/mm²).
	StackedLimitAmpsPerMM2 float64
	// IODExtraAmpsPerMM2 is the additional microbump current for the IOD
	// itself (paper: 0.5 A/mm²).
	IODExtraAmpsPerMM2 float64
}

// DefaultDelivery returns the §V.D limits at a 0.75 V supply.
func DefaultDelivery() Delivery {
	return Delivery{SupplyVolts: 0.75, StackedLimitAmpsPerMM2: 1.5, IODExtraAmpsPerMM2: 0.5}
}

// CheckStacked verifies watts delivered to a stacked chiplet of areaMM2.
func (d Delivery) CheckStacked(watts, areaMM2 float64) error {
	amps := watts / d.SupplyVolts
	limit := d.StackedLimitAmpsPerMM2 * areaMM2
	if amps > limit {
		return fmt.Errorf("power: %.1f A over %.0f mm² exceeds TSV limit %.1f A", amps, areaMM2, limit)
	}
	return nil
}

// CheckIOD verifies the IOD's own power through the microbump interface.
func (d Delivery) CheckIOD(watts, areaMM2 float64) error {
	amps := watts / d.SupplyVolts
	limit := d.IODExtraAmpsPerMM2 * areaMM2
	if amps > limit {
		return fmt.Errorf("power: IOD %.1f A over %.0f mm² exceeds microbump limit %.1f A", amps, areaMM2, limit)
	}
	return nil
}

// EnergyMeter integrates allocation over simulated time for workload-level
// energy reporting.
type EnergyMeter struct {
	joules [numDomains]float64
	last   sim.Time
	cur    Allocation
}

// SetAllocation records a new operating point from time t onward.
func (e *EnergyMeter) SetAllocation(t sim.Time, a Allocation) {
	e.accrue(t)
	e.cur = a
}

func (e *EnergyMeter) accrue(t sim.Time) {
	if t > e.last {
		dt := (t - e.last).Seconds()
		for d := 0; d < int(numDomains); d++ {
			e.joules[d] += e.cur[d] * dt
		}
		e.last = t
	}
}

// EnergyJ reports integrated energy up to time t.
func (e *EnergyMeter) EnergyJ(t sim.Time) float64 {
	e.accrue(t)
	var total float64
	for _, j := range e.joules {
		total += j
	}
	return total
}

// DomainEnergyJ reports one domain's integrated energy up to time t.
func (e *EnergyMeter) DomainEnergyJ(t sim.Time, d Domain) float64 {
	e.accrue(t)
	return e.joules[d]
}

// TopConsumers returns domains ordered by allocated watts, descending.
func TopConsumers(a Allocation) []Domain {
	ds := AllDomains()
	sort.Slice(ds, func(i, j int) bool { return a[ds[i]] > a[ds[j]] })
	return ds
}
