package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAllocateWithinTDP(t *testing.T) {
	m := MI300AModel()
	for _, act := range []Activity{ComputeIntensive(), MemoryIntensive(), {}, {DomainXCD: 1, DomainCCD: 1, DomainHBM: 1, DomainFabric: 1, DomainUSR: 1, DomainIO: 1}} {
		alloc, scale := m.Allocate(act)
		if alloc.Total() > m.TDP+1e-9 {
			t.Errorf("allocation %.1f W exceeds TDP %.1f W", alloc.Total(), m.TDP)
		}
		if scale < 0 || scale > 1 {
			t.Errorf("scale = %v out of [0,1]", scale)
		}
	}
}

func TestComputeIntensiveShiftsPowerToXCDs(t *testing.T) {
	m := MI300AModel()
	c, _ := m.Allocate(ComputeIntensive())
	mem, _ := m.Allocate(MemoryIntensive())
	// Fig. 12(a): in the compute case the majority of power goes to the
	// compute chiplets...
	if frac := c.Fraction(DomainXCD); frac < 0.5 {
		t.Errorf("compute-intensive XCD share = %.2f, want > 0.5", frac)
	}
	// ...and in the memory case power shifts to memory/fabric/USR.
	memSide := mem[DomainHBM] + mem[DomainFabric] + mem[DomainUSR]
	cMemSide := c[DomainHBM] + c[DomainFabric] + c[DomainUSR]
	if memSide <= cMemSide {
		t.Errorf("memory-side power did not increase: %.1f vs %.1f W", memSide, cMemSide)
	}
	if mem[DomainXCD] >= c[DomainXCD] {
		t.Errorf("XCD power did not shed in memory phase: %.1f vs %.1f W", mem[DomainXCD], c[DomainXCD])
	}
	if TopConsumers(c)[0] != DomainXCD {
		t.Error("XCDs are not the top consumer in the compute phase")
	}
}

func TestAllocateNoThrottleWhenUnderTDP(t *testing.T) {
	m := MI300AModel()
	var idle Activity
	alloc, scale := m.Allocate(idle)
	if scale != 1 {
		t.Errorf("idle scale = %v, want 1", scale)
	}
	var idleSum float64
	for _, d := range m.Domains {
		idleSum += d.IdleW
	}
	if math.Abs(alloc.Total()-idleSum) > 1e-9 {
		t.Errorf("idle allocation %.1f != idle sum %.1f", alloc.Total(), idleSum)
	}
}

func TestAllocateClampsActivity(t *testing.T) {
	m := MI300AModel()
	var a Activity
	a[DomainXCD] = 5 // out of range
	a[DomainCCD] = -3
	alloc, _ := m.Allocate(a)
	if alloc[DomainXCD] > m.Domains[DomainXCD].PeakW {
		t.Error("activity not clamped high")
	}
	if alloc[DomainCCD] != m.Domains[DomainCCD].IdleW {
		t.Error("activity not clamped low")
	}
}

func TestMI300XModelHasNoCCDPower(t *testing.T) {
	m := MI300XModel()
	if m.Domains[DomainCCD].PeakW != 0 {
		t.Error("MI300X should have no CCD domain power")
	}
	if m.TDP != 750 {
		t.Errorf("MI300X TDP = %v", m.TDP)
	}
}

func TestDeliveryLimits(t *testing.T) {
	d := DefaultDelivery()
	// An XCD of ~93.5 mm² at 1.5 A/mm² and 0.75 V can sink ~105 W.
	if err := d.CheckStacked(100, 93.5); err != nil {
		t.Errorf("100 W XCD rejected: %v", err)
	}
	if err := d.CheckStacked(120, 93.5); err == nil {
		t.Error("over-limit stacked power accepted")
	}
	if err := d.CheckIOD(150, 480); err != nil {
		t.Errorf("IOD 150 W rejected: %v", err)
	}
	if err := d.CheckIOD(200, 480); err == nil {
		t.Error("over-limit IOD power accepted")
	}
}

func TestEnergyMeterIntegrates(t *testing.T) {
	var e EnergyMeter
	m := MI300AModel()
	alloc, _ := m.Allocate(ComputeIntensive())
	e.SetAllocation(0, alloc)
	j := e.EnergyJ(2 * sim.Second)
	want := alloc.Total() * 2
	if math.Abs(j-want) > want*0.001 {
		t.Errorf("energy = %.1f J, want %.1f", j, want)
	}
	if e.DomainEnergyJ(2*sim.Second, DomainXCD) <= 0 {
		t.Error("domain energy missing")
	}
}

func TestEnergyMeterPhaseChange(t *testing.T) {
	var e EnergyMeter
	m := MI300AModel()
	c, _ := m.Allocate(ComputeIntensive())
	mm, _ := m.Allocate(MemoryIntensive())
	e.SetAllocation(0, c)
	e.SetAllocation(sim.Second, mm)
	j := e.EnergyJ(2 * sim.Second)
	want := c.Total() + mm.Total()
	if math.Abs(j-want) > want*0.001 {
		t.Errorf("two-phase energy = %.1f J, want %.1f", j, want)
	}
}

// Property: allocation total never exceeds TDP and every domain stays
// within [idle, peak].
func TestAllocationBoundsProperty(t *testing.T) {
	m := MI300AModel()
	f := func(raw [6]uint8) bool {
		var a Activity
		for i := range raw {
			a[i] = float64(raw[i]) / 255
		}
		alloc, _ := m.Allocate(a)
		if alloc.Total() > m.TDP+1e-9 {
			return false
		}
		for d := 0; d < len(alloc); d++ {
			if alloc[d] < m.Domains[d].IdleW-1e-9 || alloc[d] > m.Domains[d].PeakW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more activity never yields less total power.
func TestAllocationMonotonicProperty(t *testing.T) {
	m := MI300AModel()
	f := func(raw [6]uint8, bump uint8) bool {
		var lo, hi Activity
		for i := range raw {
			lo[i] = float64(raw[i]) / 255 * 0.8
			hi[i] = lo[i] + float64(bump)/255*0.2
		}
		la, _ := m.Allocate(lo)
		ha, _ := m.Allocate(hi)
		return ha.Total() >= la.Total()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStaticAllocateWithinTDP(t *testing.T) {
	m := MI300AModel()
	for _, act := range []Activity{ComputeIntensive(), MemoryIntensive()} {
		alloc, scale := m.StaticAllocate(act)
		if alloc.Total() > m.TDP+1e-9 {
			t.Errorf("static allocation %.1f W exceeds TDP", alloc.Total())
		}
		if scale <= 0 || scale > 1 {
			t.Errorf("static scale = %v", scale)
		}
	}
}

func TestDynamicShiftingBeatsStaticSplit(t *testing.T) {
	// The §V.E ablation: under a compute-intensive phase the dynamic
	// governor gives the XCDs more power (and so less throttling) than
	// a fixed proportional split can.
	m := MI300AModel()
	act := ComputeIntensive()
	dyn, dynScale := m.Allocate(act)
	st, stScale := m.StaticAllocate(act)
	if dyn[DomainXCD] <= st[DomainXCD] {
		t.Errorf("dynamic XCD power %.1f W should exceed static cap %.1f W",
			dyn[DomainXCD], st[DomainXCD])
	}
	if dynScale < stScale {
		t.Errorf("dynamic throttle %.2f should be no worse than static %.2f", dynScale, stScale)
	}
}
