package coherence

import (
	"testing"
	"testing/quick"
)

func TestReadColdGrantsExclusiveMOESI(t *testing.T) {
	d := NewProbeFilter("pf", 4)
	out := d.Read(0, 100)
	if out.Probes != 0 {
		t.Errorf("cold read sent %d probes", out.Probes)
	}
	st, n := d.StateOf(100)
	if st != Exclusive || n != 1 {
		t.Errorf("state = %s/%d, want E/1", st, n)
	}
}

func TestReadColdGrantsSharedMSI(t *testing.T) {
	d := NewGPUDirectory("gpu", 8)
	d.Read(0, 100)
	st, _ := d.StateOf(100)
	if st != Shared {
		t.Errorf("MSI cold read state = %s, want S", st)
	}
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	d := NewProbeFilter("pf", 4)
	d.Read(0, 7)
	out := d.Read(1, 7)
	if out.Probes != 1 || !out.CacheTransfer {
		t.Errorf("second read = %+v, want 1 probe, cache transfer", out)
	}
	st, n := d.StateOf(7)
	if st != Shared || n != 2 {
		t.Errorf("state = %s/%d, want S/2", st, n)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := NewProbeFilter("pf", 8)
	for a := 0; a < 5; a++ {
		d.Read(a, 42)
	}
	out := d.Write(5, 42)
	if out.Probes != 5 {
		t.Errorf("write probed %d agents, want 5", out.Probes)
	}
	st, n := d.StateOf(42)
	if st != Modified || n != 1 {
		t.Errorf("state = %s/%d, want M/1", st, n)
	}
	if d.Stats().Invalidations != 5 {
		t.Errorf("invalidations = %d", d.Stats().Invalidations)
	}
}

func TestSilentUpgradeExclusiveToModified(t *testing.T) {
	d := NewProbeFilter("pf", 4)
	d.Read(2, 9) // E at agent 2
	out := d.Write(2, 9)
	if out.Probes != 0 || !out.Upgraded {
		t.Errorf("E->M upgrade = %+v, want silent", out)
	}
}

func TestMOESIKeepsDirtyInOwned(t *testing.T) {
	d := NewProbeFilter("pf", 4)
	d.Write(0, 5) // M at agent 0
	out := d.Read(1, 5)
	if !out.CacheTransfer {
		t.Error("dirty read should be cache-to-cache")
	}
	st, n := d.StateOf(5)
	if st != Owned || n != 2 {
		t.Errorf("state = %s/%d, want O/2 (MOESI)", st, n)
	}
}

func TestMSIWritesBackOnDirtyShare(t *testing.T) {
	d := NewGPUDirectory("gpu", 4)
	d.Write(0, 5)
	d.Read(1, 5)
	st, n := d.StateOf(5)
	if st != Shared || n != 2 {
		t.Errorf("state = %s/%d, want S/2 (MSI: no O state)", st, n)
	}
}

func TestEvictHandsOffOwnership(t *testing.T) {
	d := NewProbeFilter("pf", 4)
	d.Write(0, 11)
	d.Read(1, 11) // O at 0, S at 1
	d.Evict(0, 11)
	st, n := d.StateOf(11)
	if st != Shared || n != 1 {
		t.Errorf("after owner evict: %s/%d, want S/1", st, n)
	}
	if !d.HasCopy(1, 11) || d.HasCopy(0, 11) {
		t.Error("copies wrong after evict")
	}
	d.Evict(1, 11)
	if st, _ := d.StateOf(11); st != Invalid {
		t.Errorf("line should be untracked after last evict, got %s", st)
	}
}

func TestEvictUntrackedIsNoop(t *testing.T) {
	d := NewProbeFilter("pf", 2)
	d.Evict(0, 999)
	if d.Stats().Evictions != 0 {
		t.Error("phantom eviction counted")
	}
}

func TestScopeFlush(t *testing.T) {
	d := NewGPUDirectory("gpu", 4)
	for i := LineAddr(0); i < 10; i++ {
		d.Read(2, i)
	}
	d.Read(3, 5)
	flushed := d.ScopeFlush(2)
	if flushed != 10 {
		t.Errorf("flushed %d lines, want 10", flushed)
	}
	if d.HasCopy(2, 0) {
		t.Error("agent 2 retains a copy after flush")
	}
	if !d.HasCopy(3, 5) {
		t.Error("agent 3's copy destroyed by agent 2's flush")
	}
}

func TestProducerConsumerFlagPattern(t *testing.T) {
	// Fig. 15's spin-loop: producer writes a flag line, consumer re-reads.
	d := NewProbeFilter("pf", 2)
	const flag = LineAddr(1000)
	d.Read(1, flag)         // consumer caches the flag (spin)
	out := d.Write(0, flag) // producer sets it -> invalidates consumer
	if out.Probes != 1 {
		t.Errorf("producer write probed %d, want 1", out.Probes)
	}
	out = d.Read(1, flag) // consumer re-read: cache-to-cache transfer
	if !out.CacheTransfer {
		t.Error("consumer re-read should hit producer's M copy")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInvalidAgentPanics(t *testing.T) {
	d := NewProbeFilter("pf", 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range agent did not panic")
		}
	}()
	d.Read(2, 0)
}

// Property: after any access sequence, protocol invariants hold for both
// protocol flavors.
func TestProtocolInvariantsProperty(t *testing.T) {
	type op struct {
		Agent uint8
		Line  uint8
		Kind  uint8 // 0 read, 1 write, 2 evict
	}
	for _, moesi := range []bool{true, false} {
		moesi := moesi
		f := func(ops []op) bool {
			var d *Directory
			if moesi {
				d = NewProbeFilter("pf", 8)
			} else {
				d = NewGPUDirectory("gpu", 8)
			}
			for _, o := range ops {
				a := int(o.Agent) % 8
				l := LineAddr(o.Line % 32)
				switch o.Kind % 3 {
				case 0:
					d.Read(a, l)
				case 1:
					d.Write(a, l)
				case 2:
					d.Evict(a, l)
				}
				if d.CheckInvariants() != nil {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("moesi=%v: %v", moesi, err)
		}
	}
}

// Property: a write by one agent always leaves exactly one sharer.
func TestWriteSoleOwnershipProperty(t *testing.T) {
	f := func(readers []uint8, writer uint8, line uint8) bool {
		d := NewProbeFilter("pf", 16)
		l := LineAddr(line)
		for _, r := range readers {
			d.Read(int(r)%16, l)
		}
		d.Write(int(writer)%16, l)
		st, n := d.StateOf(l)
		return st == Modified && n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDirectoryReadWrite(b *testing.B) {
	d := NewProbeFilter("pf", 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(i%8, LineAddr(i%4096))
		if i%4 == 0 {
			d.Write((i+1)%8, LineAddr(i%4096))
		}
	}
}
