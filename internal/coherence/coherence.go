// Package coherence models MI300A's two-tier coherence scheme (§IV.D):
// CPUs are hardware-coherent with all CPUs and GPUs through an EPYC-style
// probe-filter protocol (MOESI); GPUs within a socket are kept coherent by
// a directory using a slightly simpler protocol (MSI); and GPUs in other
// sockets are software-coherent via scope flushes, which keeps hardware
// coherence bandwidth off the inter-socket links.
//
// The models here are functional directories: they track per-line sharer
// sets and owner state, enforce the protocol invariants, and count the
// probe/invalidation traffic that the platform layer converts into fabric
// time and power.
package coherence

import (
	"fmt"
	"math/bits"
)

// State is a cache-line coherence state.
type State int

const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// LineAddr is a cache-line-granular address (byte address / line size).
type LineAddr int64

// Stats counts coherence protocol traffic.
type Stats struct {
	Reads         uint64
	Writes        uint64
	ProbesSent    uint64 // probes to owner/sharers
	Invalidations uint64 // sharer copies killed by writes
	DirectHits    uint64 // requests satisfied with no probes
	Transfers     uint64 // cache-to-cache data transfers
	Evictions     uint64
}

// entry is one directory line: an owner (for E/O/M) and a sharer bitmask.
type entry struct {
	state   State
	owner   int
	sharers uint64
}

// Outcome describes what one access cost.
type Outcome struct {
	// Probes is how many caching agents had to be probed.
	Probes int
	// CacheTransfer reports whether data came from a peer cache rather
	// than memory.
	CacheTransfer bool
	// Upgraded reports whether the access only changed permissions
	// (no data movement).
	Upgraded bool
}

// Directory is a full-map coherence directory. MOESI semantics when owned
// is true (the CPU probe filter); MSI when false (the simpler GPU
// protocol, where a displaced modified line always writes back to memory).
type Directory struct {
	name   string
	agents int
	moesi  bool
	lines  map[LineAddr]*entry
	stats  Stats
}

// NewProbeFilter returns the EPYC-style MOESI probe filter used for CPU
// coherence, tracking up to agents caching agents.
func NewProbeFilter(name string, agents int) *Directory {
	return newDirectory(name, agents, true)
}

// NewGPUDirectory returns the simpler MSI directory used for intra-socket
// GPU coherence.
func NewGPUDirectory(name string, agents int) *Directory {
	return newDirectory(name, agents, false)
}

func newDirectory(name string, agents int, moesi bool) *Directory {
	if agents <= 0 || agents > 64 {
		panic(fmt.Sprintf("coherence: invariant violated: agent count %d outside [1, 64] (sharer sets are 64-bit masks)", agents))
	}
	return &Directory{name: name, agents: agents, moesi: moesi, lines: make(map[LineAddr]*entry)}
}

// Name reports the directory's name.
func (d *Directory) Name() string { return d.name }

// Agents reports the number of tracked caching agents.
func (d *Directory) Agents() int { return d.agents }

// Stats returns a copy of the counters.
func (d *Directory) Stats() Stats { return d.stats }

// ResetStats zeroes the counters.
func (d *Directory) ResetStats() { d.stats = Stats{} }

// TrackedLines reports the number of lines with directory state.
func (d *Directory) TrackedLines() int { return len(d.lines) }

func (d *Directory) checkAgent(a int) {
	if a < 0 || a >= d.agents {
		panic(fmt.Sprintf("coherence: invariant violated: agent %d outside [0, %d)", a, d.agents))
	}
}

// Read handles a load miss from agent a.
func (d *Directory) Read(a int, line LineAddr) Outcome {
	d.checkAgent(a)
	d.stats.Reads++
	e := d.lines[line]
	if e == nil || e.state == Invalid {
		d.lines[line] = &entry{state: Exclusive, owner: a, sharers: 1 << a}
		if !d.moesi {
			// MSI has no E: grant S.
			d.lines[line].state = Shared
		}
		d.stats.DirectHits++
		return Outcome{}
	}
	bit := uint64(1) << a
	switch e.state {
	case Shared:
		e.sharers |= bit
		d.stats.DirectHits++
		return Outcome{}
	case Exclusive:
		if e.owner == a {
			d.stats.DirectHits++
			return Outcome{}
		}
		// Probe the owner; both become sharers.
		d.stats.ProbesSent++
		d.stats.Transfers++
		e.state = Shared
		e.sharers |= bit
		return Outcome{Probes: 1, CacheTransfer: true}
	case Modified, Owned:
		if e.owner == a && e.sharers == bit {
			d.stats.DirectHits++
			return Outcome{}
		}
		d.stats.ProbesSent++
		d.stats.Transfers++
		if d.moesi {
			// MOESI: the owner keeps the dirty line in O; reader joins S.
			e.state = Owned
			e.sharers |= bit
		} else {
			// MSI: the modified line is written back; all become S.
			e.state = Shared
			e.sharers |= bit
		}
		return Outcome{Probes: 1, CacheTransfer: true}
	}
	panic("coherence: invariant violated: read reached a line state outside the MOESI lattice")
}

// Write handles a store miss (or upgrade) from agent a, invalidating all
// other sharers.
func (d *Directory) Write(a int, line LineAddr) Outcome {
	d.checkAgent(a)
	d.stats.Writes++
	bit := uint64(1) << a
	e := d.lines[line]
	if e == nil || e.state == Invalid {
		d.lines[line] = &entry{state: Modified, owner: a, sharers: bit}
		d.stats.DirectHits++
		return Outcome{}
	}
	others := e.sharers &^ bit
	probes := bits.OnesCount64(others)
	hadCopy := e.sharers&bit != 0
	d.stats.ProbesSent += uint64(probes)
	d.stats.Invalidations += uint64(probes)
	transfer := false
	if (e.state == Modified || e.state == Owned || e.state == Exclusive) && e.owner != a {
		transfer = true
		d.stats.Transfers++
	}
	e.state = Modified
	e.owner = a
	e.sharers = bit
	if probes == 0 && hadCopy {
		// Silent upgrade (E->M) or re-write by sole owner.
		d.stats.DirectHits++
		return Outcome{Upgraded: true}
	}
	return Outcome{Probes: probes, CacheTransfer: transfer}
}

// Evict removes agent a's copy of line, handling owner handoff.
func (d *Directory) Evict(a int, line LineAddr) {
	d.checkAgent(a)
	e := d.lines[line]
	if e == nil || e.state == Invalid {
		return
	}
	bit := uint64(1) << a
	if e.sharers&bit == 0 {
		return
	}
	d.stats.Evictions++
	e.sharers &^= bit
	if e.sharers == 0 {
		delete(d.lines, line)
		return
	}
	if e.owner == a {
		// Hand ownership to the lowest remaining sharer; dirty data is
		// written back so the line degrades to Shared.
		e.owner = bits.TrailingZeros64(e.sharers)
		e.state = Shared
	}
}

// StateOf reports the directory state and sharer count for a line.
func (d *Directory) StateOf(line LineAddr) (State, int) {
	e := d.lines[line]
	if e == nil {
		return Invalid, 0
	}
	return e.state, bits.OnesCount64(e.sharers)
}

// HasCopy reports whether agent a holds line.
func (d *Directory) HasCopy(a int, line LineAddr) bool {
	d.checkAgent(a)
	e := d.lines[line]
	return e != nil && e.sharers&(1<<a) != 0
}

// CheckInvariants validates protocol invariants over all tracked lines,
// returning the first violation found (nil if clean). Used by property
// tests and by the platform's debug mode.
func (d *Directory) CheckInvariants() error {
	for line, e := range d.lines {
		n := bits.OnesCount64(e.sharers)
		switch e.state {
		case Invalid:
			return fmt.Errorf("%s: line %d tracked but Invalid", d.name, line)
		case Modified, Exclusive:
			if n != 1 {
				return fmt.Errorf("%s: line %d in %s with %d sharers", d.name, line, e.state, n)
			}
			if e.sharers != 1<<e.owner {
				return fmt.Errorf("%s: line %d owner %d not the sole sharer", d.name, line, e.owner)
			}
		case Owned:
			if !d.moesi {
				return fmt.Errorf("%s: Owned state in MSI directory", d.name)
			}
			if e.sharers&(1<<e.owner) == 0 {
				return fmt.Errorf("%s: line %d owner %d lost its copy", d.name, line, e.owner)
			}
		case Shared:
			if n == 0 {
				return fmt.Errorf("%s: line %d Shared with no sharers", d.name, line)
			}
		}
		if e.sharers >= 1<<d.agents {
			return fmt.Errorf("%s: line %d has sharers beyond agent count", d.name, line)
		}
	}
	return nil
}

// ScopeFlush models software coherence between sockets (§IV.D): flushing
// a scope invalidates every line agent a holds, returning how many lines
// (an estimate of flush traffic). This is the release-side operation a
// kernel performs before cross-socket visibility.
func (d *Directory) ScopeFlush(a int) int {
	d.checkAgent(a)
	var flushed int
	for line, e := range d.lines {
		if e.sharers&(1<<a) != 0 {
			flushed++
			d.Evict(a, line)
		}
	}
	return flushed
}
