package durable

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the slice of *os.File the durable layer needs: sequential and
// positioned I/O, truncation for torn-tail healing, and an explicit
// fsync. Every write path in the store and journal goes through this
// interface, so a fault-injecting implementation can exercise each
// disk-failure branch in-process.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the virtual filesystem the durable store and journal are built
// on. The real implementation (OS) delegates to the os package; faultfs
// wraps any FS and injects deterministic failures. The interface is
// deliberately small: exactly the operations the durability layer
// performs, so the fault matrix stays enumerable.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the file names in a directory, sorted.
	ReadDir(path string) ([]string, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// Stat describes a file.
	Stat(path string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so a preceding rename or create in it
	// survives a crash. Best-effort on filesystems without dir sync.
	SyncDir(path string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real, os-package-backed filesystem.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Clean(path))
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
