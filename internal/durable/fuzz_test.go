package durable

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzJournalReplay drives the journal parser and recovery builder with
// arbitrary bytes: truncated tails, interleaved partial records, bit
// soup. The replay must never panic, must be deterministic, and the
// recovery it builds must never double-admit a job ID.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a clean journal, a torn tail, an interleaved partial
	// record, and assorted framing damage.
	var clean bytes.Buffer
	for i := 0; i < 3; i++ {
		framed, err := frameRecord(submitRec(i))
		if err != nil {
			f.Fatal(err)
		}
		clean.Write(framed)
	}
	f.Add(clean.Bytes())
	f.Add(clean.Bytes()[:clean.Len()-7]) // torn tail
	partial := append([]byte(nil), clean.Bytes()...)
	copy(partial[len(partial)/2:], "crc32:00000000 {\"sch") // record spliced mid-file
	f.Add(partial)
	f.Add([]byte("crc32:zzzzzzzz {}\n"))
	f.Add([]byte("apusim-journal/v1 not framed\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(nil))
	dupe, _ := frameRecord(Record{Op: OpSubmit, Job: "j-000001", Seq: 1})
	done, _ := frameRecord(Record{Op: OpDone, Job: "j-000001", State: "ok"})
	f.Add(bytes.Join([][]byte{dupe, dupe, done, dupe}, nil)) // double admit + resurrect attempt

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, stats := Replay(bytes.NewReader(data))
		if stats.Records != len(recs) {
			t.Fatalf("stats.Records %d != %d replayed", stats.Records, len(recs))
		}
		if stats.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d exceeds input %d", stats.ValidBytes, len(data))
		}
		// Replay is deterministic.
		recs2, stats2 := Replay(bytes.NewReader(data))
		if !reflect.DeepEqual(recs, recs2) || stats != stats2 {
			t.Fatal("replay is nondeterministic")
		}
		// Re-reading only the valid prefix yields the same records: the
		// truncation OpenJournal performs loses nothing intact.
		prefRecs, prefStats := Replay(bytes.NewReader(data[:stats.ValidBytes]))
		if !reflect.DeepEqual(recs, prefRecs) || prefStats.TruncatedTail {
			t.Fatalf("valid-prefix replay diverged: %d vs %d records", len(prefRecs), len(recs))
		}
		// Recovery must never admit a job ID twice, and a finished job
		// must stay finished.
		seen := make(map[string]bool)
		for _, jr := range BuildRecovery(recs) {
			if jr.Job == "" {
				t.Fatal("recovery entry with empty job ID")
			}
			if seen[jr.Job] {
				t.Fatalf("job %s admitted twice", jr.Job)
			}
			seen[jr.Job] = true
		}
		// Every surviving record round-trips through the framing.
		for _, rec := range recs {
			framed, err := frameRecord(rec)
			if err != nil {
				t.Fatalf("re-framing replayed record: %v", err)
			}
			again, ok := parseLine(bytes.TrimSuffix(framed, []byte("\n")))
			if !ok || again.Op != rec.Op || again.Job != rec.Job {
				t.Fatalf("record %+v does not round-trip", rec)
			}
		}
	})
}
