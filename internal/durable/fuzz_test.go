package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalReplay drives the journal parser and recovery builder with
// arbitrary bytes: truncated tails, interleaved partial records, bit
// soup. The replay must never panic, must be deterministic, and the
// recovery it builds must never double-admit a job ID.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a clean journal, a torn tail, an interleaved partial
	// record, and assorted framing damage.
	var clean bytes.Buffer
	for i := 0; i < 3; i++ {
		framed, err := frameRecord(submitRec(i))
		if err != nil {
			f.Fatal(err)
		}
		clean.Write(framed)
	}
	f.Add(clean.Bytes())
	f.Add(clean.Bytes()[:clean.Len()-7]) // torn tail
	partial := append([]byte(nil), clean.Bytes()...)
	copy(partial[len(partial)/2:], "crc32:00000000 {\"sch") // record spliced mid-file
	f.Add(partial)
	f.Add([]byte("crc32:zzzzzzzz {}\n"))
	f.Add([]byte("apusim-journal/v1 not framed\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(nil))
	dupe, _ := frameRecord(Record{Op: OpSubmit, Job: "j-000001", Seq: 1})
	done, _ := frameRecord(Record{Op: OpDone, Job: "j-000001", State: "ok"})
	f.Add(bytes.Join([][]byte{dupe, dupe, done, dupe}, nil)) // double admit + resurrect attempt

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, stats := Replay(bytes.NewReader(data))
		if stats.Records != len(recs) {
			t.Fatalf("stats.Records %d != %d replayed", stats.Records, len(recs))
		}
		if stats.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d exceeds input %d", stats.ValidBytes, len(data))
		}
		// Replay is deterministic.
		recs2, stats2 := Replay(bytes.NewReader(data))
		if !reflect.DeepEqual(recs, recs2) || stats != stats2 {
			t.Fatal("replay is nondeterministic")
		}
		// Re-reading only the valid prefix yields the same records:
		// discarding a torn tail at replay time loses nothing intact.
		prefRecs, prefStats := Replay(bytes.NewReader(data[:stats.ValidBytes]))
		if !reflect.DeepEqual(recs, prefRecs) || prefStats.TruncatedTail {
			t.Fatalf("valid-prefix replay diverged: %d vs %d records", len(prefRecs), len(recs))
		}
		// Recovery must never admit a job ID twice, and a finished job
		// must stay finished.
		seen := make(map[string]bool)
		for _, jr := range BuildRecovery(recs) {
			if jr.Job == "" {
				t.Fatal("recovery entry with empty job ID")
			}
			if seen[jr.Job] {
				t.Fatalf("job %s admitted twice", jr.Job)
			}
			seen[jr.Job] = true
		}
		// Every surviving record round-trips through the framing.
		for _, rec := range recs {
			framed, err := frameRecord(rec)
			if err != nil {
				t.Fatalf("re-framing replayed record: %v", err)
			}
			again, ok := parseLine(bytes.TrimSuffix(framed, []byte("\n")))
			if !ok || again.Op != rec.Op || again.Job != rec.Job {
				t.Fatalf("record %+v does not round-trip", rec)
			}
		}
	})
}

// FuzzJournalDirReplay drives the multi-segment directory replay with
// arbitrary record payloads scattered across segment files, plus
// structural damage the mode byte selects: a missing middle segment, a
// bit-flipped segment header, a segment torn at its boundary, and a
// legacy single-file journal sharing the directory. ReplayDir must never
// panic, must be deterministic, and the recovery built from whatever
// survives must never admit a job ID twice.
func FuzzJournalDirReplay(f *testing.F) {
	var clean bytes.Buffer
	for i := 0; i < 6; i++ {
		framed, err := frameRecord(submitRec(i))
		if err != nil {
			f.Fatal(err)
		}
		clean.Write(framed)
	}
	f.Add(clean.Bytes(), byte(0))
	f.Add(clean.Bytes(), byte(1)) // missing middle segment
	f.Add(clean.Bytes(), byte(2)) // bit-flipped header in segment 1
	f.Add(clean.Bytes(), byte(4)) // torn tail on the last segment
	f.Add(clean.Bytes(), byte(8)) // legacy journal file alongside segments
	f.Add(clean.Bytes(), byte(15))
	dupe, _ := frameRecord(Record{Op: OpSubmit, Job: "j-000001", Seq: 1})
	done, _ := frameRecord(Record{Op: OpDone, Job: "j-000001", State: "ok"})
	f.Add(bytes.Join([][]byte{dupe, dupe, done, dupe}, nil), byte(1))
	f.Add([]byte("crc32:zzzzzzzz {}\nnoise\n"), byte(7))
	f.Add([]byte(nil), byte(255))

	f.Fuzz(func(t *testing.T, data []byte, mode byte) {
		dir := t.TempDir()
		// Scatter the payload across three segments.
		third := len(data) / 3
		chunks := [][]byte{data[:third], data[third : 2*third], data[2*third:]}
		for i, chunk := range chunks {
			idx := i + 1
			body := append(append([]byte(nil), segmentHeader(idx)...), chunk...)
			if mode&2 != 0 && i == 0 && len(body) > 0 {
				body[len(body)/2] ^= 0x40 // damage segment 1 (often its header)
			}
			if mode&4 != 0 && i == 2 && len(body) > 1 {
				body = body[:len(body)-len(body)/3] // torn final segment
			}
			if err := os.WriteFile(filepath.Join(dir, segmentName(idx)), body, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if mode&1 != 0 {
			if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
				t.Fatal(err)
			}
		}
		if mode&8 != 0 {
			legacy := append([]byte("apusim-journal/v1\n"), data...)
			if err := os.WriteFile(filepath.Join(dir, "journal"), legacy, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		recs, stats, maxIdx, err := ReplayDir(nil, dir)
		if err != nil {
			// Only environmental failures (unreadable dir) may error; the
			// directory we just wrote is readable.
			t.Fatalf("ReplayDir: %v", err)
		}
		if stats.Records != len(recs) {
			t.Fatalf("stats.Records %d != %d replayed", stats.Records, len(recs))
		}
		if maxIdx < 3 {
			t.Fatalf("maxIdx %d below highest written segment 3", maxIdx)
		}
		if mode&1 != 0 && stats.MissingSegments == 0 {
			t.Fatal("removed middle segment not counted missing")
		}
		// Replay is deterministic and non-destructive: a second pass over
		// the same directory sees the same bytes and yields the same state.
		recs2, stats2, maxIdx2, err2 := ReplayDir(nil, dir)
		if err2 != nil || maxIdx2 != maxIdx || !reflect.DeepEqual(recs, recs2) || stats != stats2 {
			t.Fatalf("directory replay nondeterministic: %v / %+v vs %+v", err2, stats, stats2)
		}
		// Recovery over the surviving records never double-admits.
		seen := make(map[string]bool)
		for _, jr := range BuildRecovery(recs) {
			if jr.Job == "" {
				t.Fatal("recovery entry with empty job ID")
			}
			if seen[jr.Job] {
				t.Fatalf("job %s admitted twice", jr.Job)
			}
			seen[jr.Job] = true
		}
		// The directory stays appendable after any damage: opening it for
		// writing lands new records in a fresh segment that replays.
		j, _, _, err := OpenJournalDir(nil, dir, JournalOptions{})
		if err != nil {
			t.Fatalf("OpenJournalDir after damage: %v", err)
		}
		if err := j.AppendSync(Record{Op: OpSubmit, Job: "j-fresh", Seq: 999999}); err != nil {
			t.Fatalf("append after damage: %v", err)
		}
		j.Close()
		recs3, _, _, err := ReplayDir(nil, dir)
		if err != nil {
			t.Fatalf("ReplayDir after append: %v", err)
		}
		found := false
		for _, r := range recs3 {
			if r.Job == "j-fresh" {
				found = true
			}
		}
		if !found {
			t.Fatal("record appended after damage did not replay")
		}
	})
}
