package durable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// JournalSchema identifies the journal record layout; bump on
// incompatible changes.
const JournalSchema = "apusim-journal/v1"

// SegmentSchema identifies a journal segment's header line; bump on
// incompatible changes.
const SegmentSchema = "apusim-journal-seg/v1"

// Op is a journal record's operation.
type Op string

// Journal operations: a job is submitted (admitted, durable before the
// client sees 202), started (a worker picked it up), and done (reached a
// terminal state).
const (
	OpSubmit Op = "submit"
	OpStart  Op = "start"
	OpDone   Op = "done"
)

// Record is one journal entry. Submit records carry the job's identity
// and normalized spec; start and done records reference the job by ID.
type Record struct {
	Schema string `json:"schema"`
	Op     Op     `json:"op"`
	Job    string `json:"job"`
	// Seq is the job's sequence number (submit only), so ID allocation
	// resumes past every journaled job after a crash.
	Seq int `json:"seq,omitempty"`
	// Tenant, Key, Coalesced, and Spec describe a submission: the billing
	// tenant, the spec's content address, whether the job coalesced onto
	// an in-flight duplicate, and the canonical spec JSON.
	Tenant    string          `json:"tenant,omitempty"`
	Key       string          `json:"key,omitempty"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	// Trace is the job's trace correlation key (submit only), so a
	// recovered job keeps the trace ID its structured logs and span dumps
	// were written under. Older journals without it re-derive the ID
	// deterministically from the job and key.
	Trace string `json:"trace,omitempty"`
	// State and Attempts describe a terminal outcome (done only).
	State    string `json:"state,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// ReplayStats describes what a single-stream replay found.
type ReplayStats struct {
	// Records is the number of intact records replayed.
	Records int
	// Corrupt is the number of complete lines that failed CRC or JSON
	// validation and were skipped.
	Corrupt int
	// TruncatedTail reports whether the stream ended mid-record (the
	// crash landed inside an append); the partial tail is discarded.
	TruncatedTail bool
	// ValidBytes is the length of the stream prefix ending at the last
	// complete line.
	ValidBytes int64
}

// frameRecord renders one record in the on-disk framing:
// "crc32:<8 hex of the JSON> <JSON>\n". The CRC guards the record body,
// so a bit flip inside a line is detected and skipped without losing the
// records after it (the newline framing still holds).
func frameRecord(rec Record) ([]byte, error) {
	rec.Schema = JournalSchema
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("durable: marshaling journal record: %w", err)
	}
	return []byte(fmt.Sprintf("crc32:%08x %s\n", crc32.ChecksumIEEE(body), body)), nil
}

// parseLine validates one complete journal line. It returns ok false for
// any damage: bad framing, CRC mismatch, malformed JSON, or a schema the
// reader does not know.
func parseLine(line []byte) (Record, bool) {
	const prefixLen = len("crc32:") + 8 // + " "
	if len(line) < prefixLen+1 || string(line[:6]) != "crc32:" || line[prefixLen] != ' ' {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[6:prefixLen]), "%08x", &want); err != nil {
		return Record{}, false
	}
	body := line[prefixLen+1:]
	if crc32.ChecksumIEEE(body) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false
	}
	if rec.Schema != JournalSchema || rec.Job == "" {
		return Record{}, false
	}
	switch rec.Op {
	case OpSubmit, OpStart, OpDone:
	default:
		return Record{}, false
	}
	return rec, true
}

// Replay reads one journal stream and returns every intact record in
// file order. It never fails on damaged input: corrupt lines are skipped
// and counted, and a truncated tail (a crash mid-append) is discarded.
// The returned stats say exactly what was tolerated.
func Replay(r io.Reader) ([]Record, ReplayStats) {
	var (
		recs  []Record
		stats ReplayStats
	)
	br := bufio.NewReader(r)
	var offset int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// Any bytes before EOF without a newline are a torn append.
			if len(line) > 0 {
				stats.TruncatedTail = true
			}
			break
		}
		offset += int64(len(line))
		line = bytes.TrimSuffix(line, []byte("\n"))
		rec, ok := parseLine(line)
		if !ok {
			stats.Corrupt++
			stats.ValidBytes = offset
			continue
		}
		recs = append(recs, rec)
		stats.Records++
		stats.ValidBytes = offset
	}
	return recs, stats
}

// legacyJournalName is the single-file journal location used before
// segments; it is replayed first (oldest) and removed by the first
// checkpoint.
const legacyJournalName = "journal"

// JournalPath returns the pre-segment single-file journal location under
// a data dir, kept for migration: a journal written there is still
// replayed, as the oldest segment.
func JournalPath(dataDir string) string { return filepath.Join(dataDir, legacyJournalName) }

// segmentName renders a segment index as its file name, journal.000001
// style. Indices are monotonically increasing; the numeric suffix sorts
// lexicographically up to 999999 and is parsed numerically regardless.
func segmentName(idx int) string { return fmt.Sprintf("journal.%06d", idx) }

// segmentIndexOf parses a journal segment file name. ok is false for
// anything that is not journal.<digits>.
func segmentIndexOf(name string) (int, bool) {
	num, found := strings.CutPrefix(name, "journal.")
	if !found || num == "" {
		return 0, false
	}
	idx, err := strconv.Atoi(num)
	if err != nil || idx <= 0 {
		return 0, false
	}
	return idx, true
}

// isJournalFile reports whether name is a journal file (legacy or
// segment) that a checkpoint may retire.
func isJournalFile(name string) bool {
	if name == legacyJournalName {
		return true
	}
	_, ok := segmentIndexOf(name)
	return ok
}

// segmentHeader renders a segment's first line: the schema, the
// segment's own index, and a CRC over both — so replay can tell a
// damaged header from a missing one.
func segmentHeader(idx int) []byte {
	body := fmt.Sprintf("%s %06d", SegmentSchema, idx)
	return []byte(fmt.Sprintf("%s crc32:%08x\n", body, crc32.ChecksumIEEE([]byte(body))))
}

// parseSegmentHeader validates a segment header line against the index
// implied by the file name.
func parseSegmentHeader(line []byte, wantIdx int) bool {
	fields := strings.Fields(string(line))
	if len(fields) != 3 || fields[0] != SegmentSchema {
		return false
	}
	idx, err := strconv.Atoi(fields[1])
	if err != nil || idx != wantIdx {
		return false
	}
	var crc uint32
	if _, err := fmt.Sscanf(fields[2], "crc32:%08x", &crc); err != nil {
		return false
	}
	return crc == crc32.ChecksumIEEE([]byte(fields[0]+" "+fields[1]))
}

// DirReplayStats describes what a whole-directory replay found.
type DirReplayStats struct {
	// Segments is the number of journal files replayed (including a
	// legacy single-file journal, if present).
	Segments int
	// LegacyJournal reports whether a pre-segment "journal" file was
	// replayed.
	LegacyJournal bool
	// Records and Corrupt aggregate the per-segment replay counts.
	Records int
	Corrupt int
	// TruncatedTails counts segments that ended mid-record.
	TruncatedTails int
	// BadHeaders counts segments whose header line was damaged or
	// missing; their records are still replayed.
	BadHeaders int
	// MissingSegments counts gaps in the segment numbering — segments
	// that existed (their successors reference later indices) but are
	// gone. Replay proceeds; recovery semantics absorb the loss.
	MissingSegments int
	// Unreadable counts journal files that could not be read at all.
	Unreadable int
}

// ReplayDir replays every journal file under dir — the legacy single
// file first, then segments in index order — and returns the combined
// record stream. It is read-only and never fails on damaged contents;
// only an unlistable directory returns an error. The returned maxIdx is
// the highest segment index seen (0 if none), so a writer can continue
// the numbering.
func ReplayDir(fsys FS, dir string) ([]Record, DirReplayStats, int, error) {
	if fsys == nil {
		fsys = OS()
	}
	var (
		recs   []Record
		stats  DirReplayStats
		maxIdx int
	)
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, stats, 0, nil
		}
		return nil, stats, 0, fmt.Errorf("durable: listing journal dir: %w", err)
	}
	var idxs []int
	hasLegacy := false
	for _, name := range names {
		if name == legacyJournalName {
			hasLegacy = true
			continue
		}
		if idx, ok := segmentIndexOf(name); ok {
			idxs = append(idxs, idx)
		}
	}
	sortInts(idxs)
	if hasLegacy {
		stats.LegacyJournal = true
		r, rs, ok := replayOneSegment(fsys, filepath.Join(dir, legacyJournalName), 0)
		if !ok {
			stats.Unreadable++
		} else {
			stats.Segments++
			recs = append(recs, r...)
			mergeSegmentStats(&stats, rs, false)
		}
	}
	prev := 0
	for _, idx := range idxs {
		if idx > maxIdx {
			maxIdx = idx
		}
		if prev != 0 && idx != prev+1 {
			stats.MissingSegments += idx - prev - 1
		}
		prev = idx
		r, rs, ok := replayOneSegment(fsys, filepath.Join(dir, segmentName(idx)), idx)
		if !ok {
			stats.Unreadable++
			continue
		}
		stats.Segments++
		recs = append(recs, r...)
		mergeSegmentStats(&stats, rs, rs.badHeader)
	}
	return recs, stats, maxIdx, nil
}

// segReplay is ReplayStats plus the header verdict for one segment.
type segReplay struct {
	ReplayStats
	badHeader bool
}

// replayOneSegment reads one journal file. For idx > 0 the first line is
// expected to be a segment header and is validated; a damaged header is
// counted and the remaining lines are replayed anyway — a header bit
// flip never costs intact records.
func replayOneSegment(fsys FS, path string, idx int) ([]Record, segReplay, bool) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, segReplay{}, false
	}
	var out segReplay
	if idx > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// The whole segment is a torn header; nothing to replay.
			out.badHeader = len(data) > 0
			out.TruncatedTail = len(data) > 0
			return nil, out, true
		}
		if parseSegmentHeader(data[:nl], idx) {
			data = data[nl+1:]
		} else {
			// Feed the first line to the record parser too: if the
			// "header" was actually a record (or damage), it is counted
			// there without losing anything after it.
			out.badHeader = true
		}
	}
	recs, rs := Replay(bytes.NewReader(data))
	out.Records = rs.Records
	out.Corrupt = rs.Corrupt
	out.TruncatedTail = rs.TruncatedTail
	return recs, out, true
}

// mergeSegmentStats folds one segment's replay stats into the directory
// totals.
func mergeSegmentStats(stats *DirReplayStats, rs segReplay, badHeader bool) {
	stats.Records += rs.Records
	stats.Corrupt += rs.Corrupt
	if rs.TruncatedTail {
		stats.TruncatedTails++
	}
	if badHeader || rs.badHeader {
		stats.BadHeaders++
	}
}

// sortInts sorts a small int slice ascending (insertion sort; segment
// counts are bounded by checkpointing).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// JournalOptions tunes a segmented journal.
type JournalOptions struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches this size, it is sealed (synced, closed) and appends move
	// to a fresh segment. <= 0 uses the 1 MiB default.
	SegmentBytes int64
}

// DefaultSegmentBytes is the rotation threshold when JournalOptions does
// not name one.
const DefaultSegmentBytes = 1 << 20

// Journal is an append-only, segment-rotated job journal with batched
// fsync. Appends go to the active segment (journal.NNNNNN); when it
// reaches the size cap it is sealed and a new segment starts, so a
// checkpoint can retire whole files instead of rewriting one ever-
// growing log. Append is a buffered write; Sync is a group commit —
// concurrent callers waiting on durability share one disk sync. All
// methods are safe for concurrent use.
type Journal struct {
	fs       FS
	dir      string
	segBytes int64

	mu          sync.Mutex // guards the active segment, buffer, and write generation
	f           File
	w           *bufio.Writer
	activeIndex int
	nextIndex   int
	activeBytes int64
	writeGen    int64
	appends     int64
	segments    int64
	checkpoints int64
	recsSinceCP int64
	doneSinceCP int64
	closed      bool

	syncMu    sync.Mutex // serializes fsyncs; batches waiters behind one
	syncedGen int64
	syncs     int64
}

// OpenJournalDir opens the segmented journal rooted at dir (creating the
// directory if needed), replays every intact record across all segments
// — tolerating torn tails, corrupt lines, damaged headers, and missing
// segments — and returns the journal positioned to append into a fresh
// segment. Replay is read-only: damaged files are left untouched until a
// checkpoint retires them, so opening never destroys forensic evidence.
func OpenJournalDir(fsys FS, dir string, opts JournalOptions) (*Journal, []Record, DirReplayStats, error) {
	if fsys == nil {
		fsys = OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, DirReplayStats{}, fmt.Errorf("durable: creating journal dir: %w", err)
	}
	recs, stats, maxIdx, err := ReplayDir(fsys, dir)
	if err != nil {
		return nil, nil, stats, err
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	j := &Journal{
		fs:        fsys,
		dir:       dir,
		segBytes:  segBytes,
		nextIndex: maxIdx + 1,
		segments:  int64(stats.Segments),
	}
	return j, recs, stats, nil
}

// ensureActiveLocked opens the next segment for appending, writing its
// header. Callers hold j.mu.
func (j *Journal) ensureActiveLocked() error {
	if j.closed {
		return fmt.Errorf("durable: append on closed journal")
	}
	if j.f != nil {
		return nil
	}
	idx := j.nextIndex
	f, err := j.fs.OpenFile(filepath.Join(j.dir, segmentName(idx)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating journal segment %d: %w", idx, err)
	}
	hdr := segmentHeader(idx)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing segment %d header: %w", idx, err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.activeIndex = idx
	j.nextIndex = idx + 1
	j.activeBytes = int64(len(hdr))
	j.segments++
	j.writeGen++ // the header itself needs the next group commit
	_ = j.fs.SyncDir(j.dir)
	return nil
}

// sealActiveLocked flushes, syncs, and closes the active segment. The
// file is closed even on error so a failed seal does not wedge the
// journal on a broken descriptor. Callers hold j.mu.
func (j *Journal) sealActiveLocked() error {
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	var syncErr error
	if flushErr == nil {
		syncErr = j.f.Sync()
	}
	closeErr := j.f.Close()
	j.f, j.w = nil, nil
	if flushErr != nil {
		return fmt.Errorf("durable: flushing sealed segment: %w", flushErr)
	}
	if syncErr != nil {
		return fmt.Errorf("durable: syncing sealed segment: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("durable: closing sealed segment: %w", closeErr)
	}
	return nil
}

// Append buffers one record, rotating to a new segment when the active
// one has reached the size cap. The record does not reach disk until
// Sync (or an incidental buffer flush); callers that need it durable
// before acting call Sync afterwards.
func (j *Journal) Append(rec Record) error {
	framed, err := frameRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil && j.activeBytes >= j.segBytes {
		if err := j.sealActiveLocked(); err != nil {
			return err
		}
	}
	if err := j.ensureActiveLocked(); err != nil {
		return err
	}
	if _, err := j.w.Write(framed); err != nil {
		return fmt.Errorf("durable: appending journal record: %w", err)
	}
	j.activeBytes += int64(len(framed))
	j.writeGen++
	j.appends++
	j.recsSinceCP++
	if rec.Op == OpDone {
		j.doneSinceCP++
	}
	return nil
}

// Sync makes every record appended so far durable. Concurrent syncs
// batch: while one fsync runs, later callers queue behind it, and the
// first one through covers everything written in the meantime — so a
// burst of submissions costs one disk sync, not one each.
func (j *Journal) Sync() error {
	j.mu.Lock()
	gen := j.writeGen
	j.mu.Unlock()

	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.syncedGen >= gen {
		return nil // a batched sync already covered this record
	}
	j.mu.Lock()
	cur := j.writeGen
	var err error
	f := j.f
	if j.w != nil {
		err = j.w.Flush()
	}
	closed := j.closed
	j.mu.Unlock()
	if err != nil {
		return fmt.Errorf("durable: flushing journal: %w", err)
	}
	if f == nil {
		if closed {
			return fmt.Errorf("durable: sync on closed journal")
		}
		// No active segment: everything pending was sealed (and synced)
		// with its segment.
		j.syncedGen = cur
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: syncing journal: %w", err)
	}
	j.syncedGen = cur
	j.syncs++
	return nil
}

// AppendSync appends one record and returns once it is durable.
func (j *Journal) AppendSync(rec Record) error {
	if err := j.Append(rec); err != nil {
		return err
	}
	return j.Sync()
}

// Checkpoint rewrites the journal as a single fresh segment holding just
// the given records — the live set — and retires every older journal
// file, bounding disk usage and boot-time replay cost. The new segment
// is written and fsynced before anything is deleted, so a crash at any
// point leaves a replayable journal (duplicate records across old and
// new segments collapse in recovery: first submit wins, done is final).
//
// Callers must ensure no submit record can be appended concurrently
// (the service holds its scheduling lock); racing start/done appends to
// the retired active segment are safe to lose — recovery treats both as
// idempotent hints.
func (j *Journal) Checkpoint(live []Record) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("durable: checkpoint on closed journal")
	}
	idx := j.nextIndex
	name := segmentName(idx)
	path := filepath.Join(j.dir, name)
	var buf bytes.Buffer
	buf.Write(segmentHeader(idx))
	for _, rec := range live {
		framed, err := frameRecord(rec)
		if err != nil {
			return err
		}
		buf.Write(framed)
	}
	f, err := j.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating checkpoint segment: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		_ = j.fs.Remove(path)
		return fmt.Errorf("durable: writing checkpoint segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = j.fs.Remove(path)
		return fmt.Errorf("durable: syncing checkpoint segment: %w", err)
	}
	_ = j.fs.SyncDir(j.dir)

	// The checkpoint is durable: swap it in as the active segment and
	// retire everything older (best effort — leftovers replay as
	// duplicates and are retired by the next checkpoint).
	if j.f != nil {
		_ = j.f.Close()
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.activeIndex = idx
	j.nextIndex = idx + 1
	j.activeBytes = int64(buf.Len())
	j.writeGen++
	j.syncedGen = j.writeGen // everything live is in the synced segment
	j.recsSinceCP, j.doneSinceCP = 0, 0
	j.checkpoints++
	remaining := int64(1)
	if names, err := j.fs.ReadDir(j.dir); err == nil {
		for _, nm := range names {
			if nm == name || !isJournalFile(nm) {
				continue
			}
			if j.fs.Remove(filepath.Join(j.dir, nm)) != nil {
				remaining++
			}
		}
	}
	j.segments = remaining
	return nil
}

// JournalStats is a snapshot of the journal's write counters.
type JournalStats struct {
	// Appends is the number of records appended; Syncs is the number of
	// disk syncs performed. Syncs < Appends under load is the batching
	// working.
	Appends int64
	Syncs   int64
	// Segments is the number of journal files currently on disk;
	// Checkpoints counts compactions performed.
	Segments    int64
	Checkpoints int64
	// RecordsSinceCheckpoint and DonesSinceCheckpoint feed the dead-
	// record-ratio compaction policy: every done record implies its
	// submit/start records are dead weight too.
	RecordsSinceCheckpoint int64
	DonesSinceCheckpoint   int64
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	st := JournalStats{
		Appends:                j.appends,
		Segments:               j.segments,
		Checkpoints:            j.checkpoints,
		RecordsSinceCheckpoint: j.recsSinceCP,
		DonesSinceCheckpoint:   j.doneSinceCP,
	}
	j.mu.Unlock()
	j.syncMu.Lock()
	st.Syncs = j.syncs
	j.syncMu.Unlock()
	return st
}

// Close flushes, syncs, and closes the journal.
func (j *Journal) Close() error {
	err := j.Sync()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		closeErr := j.f.Close()
		if err == nil {
			err = closeErr
		}
		j.f, j.w = nil, nil
	}
	j.closed = true
	return err
}
