package durable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// JournalSchema identifies the journal record layout; bump on
// incompatible changes.
const JournalSchema = "apusim-journal/v1"

// Op is a journal record's operation.
type Op string

// Journal operations: a job is submitted (admitted, durable before the
// client sees 202), started (a worker picked it up), and done (reached a
// terminal state).
const (
	OpSubmit Op = "submit"
	OpStart  Op = "start"
	OpDone   Op = "done"
)

// Record is one journal entry. Submit records carry the job's identity
// and normalized spec; start and done records reference the job by ID.
type Record struct {
	Schema string `json:"schema"`
	Op     Op     `json:"op"`
	Job    string `json:"job"`
	// Seq is the job's sequence number (submit only), so ID allocation
	// resumes past every journaled job after a crash.
	Seq int `json:"seq,omitempty"`
	// Tenant, Key, Coalesced, and Spec describe a submission: the billing
	// tenant, the spec's content address, whether the job coalesced onto
	// an in-flight duplicate, and the canonical spec JSON.
	Tenant    string          `json:"tenant,omitempty"`
	Key       string          `json:"key,omitempty"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	// Trace is the job's trace correlation key (submit only), so a
	// recovered job keeps the trace ID its structured logs and span dumps
	// were written under. Older journals without it re-derive the ID
	// deterministically from the job and key.
	Trace string `json:"trace,omitempty"`
	// State and Attempts describe a terminal outcome (done only).
	State    string `json:"state,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// ReplayStats describes what a replay found.
type ReplayStats struct {
	// Records is the number of intact records replayed.
	Records int
	// Corrupt is the number of complete lines that failed CRC or JSON
	// validation and were skipped.
	Corrupt int
	// TruncatedTail reports whether the journal ended mid-record (the
	// crash landed inside an append); the partial tail is discarded.
	TruncatedTail bool
	// ValidBytes is the length of the journal prefix ending at the last
	// complete line; a writer reopening the journal truncates to it.
	ValidBytes int64
}

// frameRecord renders one record in the on-disk framing:
// "crc32:<8 hex of the JSON> <JSON>\n". The CRC guards the record body,
// so a bit flip inside a line is detected and skipped without losing the
// records after it (the newline framing still holds).
func frameRecord(rec Record) ([]byte, error) {
	rec.Schema = JournalSchema
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("durable: marshaling journal record: %w", err)
	}
	return []byte(fmt.Sprintf("crc32:%08x %s\n", crc32.ChecksumIEEE(body), body)), nil
}

// parseLine validates one complete journal line. It returns ok false for
// any damage: bad framing, CRC mismatch, malformed JSON, or a schema the
// reader does not know.
func parseLine(line []byte) (Record, bool) {
	const prefixLen = len("crc32:") + 8 // + " "
	if len(line) < prefixLen+1 || string(line[:6]) != "crc32:" || line[prefixLen] != ' ' {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[6:prefixLen]), "%08x", &want); err != nil {
		return Record{}, false
	}
	body := line[prefixLen+1:]
	if crc32.ChecksumIEEE(body) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false
	}
	if rec.Schema != JournalSchema || rec.Job == "" {
		return Record{}, false
	}
	switch rec.Op {
	case OpSubmit, OpStart, OpDone:
	default:
		return Record{}, false
	}
	return rec, true
}

// Replay reads a journal stream and returns every intact record in file
// order. It never fails on damaged input: corrupt lines are skipped and
// counted, and a truncated tail (a crash mid-append) is discarded. The
// returned stats say exactly what was tolerated.
func Replay(r io.Reader) ([]Record, ReplayStats) {
	var (
		recs  []Record
		stats ReplayStats
	)
	br := bufio.NewReader(r)
	var offset int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// Any bytes before EOF without a newline are a torn append.
			if len(line) > 0 {
				stats.TruncatedTail = true
			}
			break
		}
		offset += int64(len(line))
		line = bytes.TrimSuffix(line, []byte("\n"))
		rec, ok := parseLine(line)
		if !ok {
			stats.Corrupt++
			stats.ValidBytes = offset
			continue
		}
		recs = append(recs, rec)
		stats.Records++
		stats.ValidBytes = offset
	}
	return recs, stats
}

// Journal is an append-only job journal with batched fsync. Append is a
// buffered write; Sync is a group commit — concurrent callers waiting on
// durability share one disk sync instead of serializing fsyncs. All
// methods are safe for concurrent use.
type Journal struct {
	mu       sync.Mutex // guards the file, buffer, and write generation
	f        *os.File
	w        *bufio.Writer
	writeGen int64
	appends  int64

	syncMu    sync.Mutex // serializes fsyncs; batches waiters behind one
	syncedGen int64
	syncs     int64
}

// OpenJournal opens (creating if needed) the journal at path, replays
// its intact records, truncates any torn tail so new appends start at a
// clean boundary, and returns the journal positioned for appending.
func OpenJournal(path string) (*Journal, []Record, ReplayStats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, ReplayStats{}, fmt.Errorf("durable: opening journal: %w", err)
	}
	recs, stats := Replay(f)
	if err := f.Truncate(stats.ValidBytes); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("durable: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(stats.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("durable: seeking journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, recs, stats, nil
}

// Append buffers one record. It does not reach disk until Sync (or an
// incidental buffer flush); callers that need the record durable before
// acting on it call Sync afterwards.
func (j *Journal) Append(rec Record) error {
	framed, err := frameRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("durable: append on closed journal")
	}
	if _, err := j.w.Write(framed); err != nil {
		return fmt.Errorf("durable: appending journal record: %w", err)
	}
	j.writeGen++
	j.appends++
	return nil
}

// Sync makes every record appended so far durable. Concurrent syncs
// batch: while one fsync runs, later callers queue behind it, and the
// first one through covers everything written in the meantime — so a
// burst of submissions costs one disk sync, not one each.
func (j *Journal) Sync() error {
	j.mu.Lock()
	gen := j.writeGen
	j.mu.Unlock()

	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.syncedGen >= gen {
		return nil // a batched sync already covered this record
	}
	j.mu.Lock()
	cur := j.writeGen
	err := j.w.Flush()
	f := j.f
	j.mu.Unlock()
	if err != nil {
		return fmt.Errorf("durable: flushing journal: %w", err)
	}
	if f == nil {
		return fmt.Errorf("durable: sync on closed journal")
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: syncing journal: %w", err)
	}
	j.syncedGen = cur
	j.syncs++
	return nil
}

// AppendSync appends one record and returns once it is durable.
func (j *Journal) AppendSync(rec Record) error {
	if err := j.Append(rec); err != nil {
		return err
	}
	return j.Sync()
}

// JournalStats is a snapshot of the journal's write counters.
type JournalStats struct {
	// Appends is the number of records appended; Syncs is the number of
	// disk syncs performed. Syncs < Appends under load is the batching
	// working.
	Appends int64
	Syncs   int64
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	appends := j.appends
	j.mu.Unlock()
	j.syncMu.Lock()
	syncs := j.syncs
	j.syncMu.Unlock()
	return JournalStats{Appends: appends, Syncs: syncs}
}

// Close flushes, syncs, and closes the journal.
func (j *Journal) Close() error {
	if err := j.Sync(); err != nil {
		j.mu.Lock()
		if j.f != nil {
			j.f.Close()
			j.f = nil
		}
		j.mu.Unlock()
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Compact atomically replaces the journal at path with just the given
// records — the live set after a recovery replay — so boot-time replay
// cost tracks the number of in-flight jobs, not daemon lifetime. It
// returns the reopened journal positioned for appending.
func Compact(path string, recs []Record) (*Journal, error) {
	var buf bytes.Buffer
	for _, rec := range recs {
		framed, err := frameRecord(rec)
		if err != nil {
			return nil, err
		}
		buf.Write(framed)
	}
	tmp := path + ".tmp"
	if err := writeAtomic(tmp, path, buf.Bytes()); err != nil {
		return nil, fmt.Errorf("durable: compacting journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: reopening compacted journal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: seeking compacted journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, nil
}

// journalName is the journal's file name under a service data dir.
const journalName = "journal"

// JournalPath returns the canonical journal location under a data dir.
func JournalPath(dataDir string) string { return filepath.Join(dataDir, journalName) }
