package durable

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func testKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return "sha256:" + hex.EncodeToString(sum[:])
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(nil, dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	e := Entry{State: "ok", Attempts: 2, Manifest: []byte(`{"schema":"apusim-run-manifest/v1"}`)}
	key := testKey("spec-a")
	if err := s.Put(key, e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get: entry missing after Put")
	}
	if got.State != e.State || got.Attempts != e.Attempts || !bytes.Equal(got.Manifest, e.Manifest) {
		t.Errorf("Get = %+v, want %+v", got, e)
	}
	if st := s.Stats(); st.Entries != 1 || st.Quarantined != 0 {
		t.Errorf("stats %+v, want 1 entry, 0 quarantined", st)
	}
	// Replacing a key must not double-count occupancy.
	if err := s.Put(key, e); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Errorf("after re-Put: %d entries, want 1", st.Entries)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("spec-b")
	want := Entry{State: "degraded", Attempts: 1, Manifest: []byte("manifest bytes")}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(nil, dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok := s2.Get(key)
	if !ok || !bytes.Equal(got.Manifest, want.Manifest) || got.State != want.State {
		t.Errorf("after reopen: %+v ok=%v, want %+v", got, ok, want)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Errorf("reopened stats %+v, want 1 entry", st)
	}
}

// corruptEntries writes a valid entry and then damages it in the given
// way, returning the entry file's path.
func writeEntryFile(t *testing.T, dir, key string) string {
	t.Helper()
	s, err := OpenStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, Entry{State: "ok", Attempts: 1, Manifest: []byte("payload payload payload")}); err != nil {
		t.Fatal(err)
	}
	name, err := entryName(key)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "cache", name)
}

func TestStoreQuarantinesCorruptionAtOpen(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			key := testKey("victim-" + tc.name)
			path := writeEntryFile(t, dir, key)
			tc.corrupt(t, path)

			s, err := OpenStore(nil, dir)
			if err != nil {
				t.Fatalf("OpenStore over corrupt entry: %v", err)
			}
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry was served")
			}
			st := s.Stats()
			if st.Quarantined != 1 || st.Entries != 0 {
				t.Errorf("stats %+v, want 1 quarantined, 0 entries", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry still present in cache dir: %v", err)
			}
			qs, err := os.ReadDir(filepath.Join(dir, "quarantine"))
			if err != nil || len(qs) != 1 {
				t.Errorf("quarantine dir holds %d files (%v), want 1", len(qs), err)
			}
			// A fresh Put under the same key must heal the slot.
			if err := s.Put(key, Entry{State: "ok", Attempts: 1, Manifest: []byte("regenerated")}); err != nil {
				t.Fatalf("healing Put: %v", err)
			}
			if got, ok := s.Get(key); !ok || string(got.Manifest) != "regenerated" {
				t.Errorf("healed entry = %+v ok=%v", got, ok)
			}
		})
	}
}

func TestStoreQuarantinesCorruptionAtRead(t *testing.T) {
	dir := t.TempDir()
	key := testKey("late-victim")
	s, err := OpenStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, Entry{State: "ok", Attempts: 1, Manifest: []byte("live payload")}); err != nil {
		t.Fatal(err)
	}
	// Damage the file after the open-time sweep: the per-read verify must
	// still catch it.
	name, _ := entryName(key)
	path := filepath.Join(dir, "cache", name)
	data, _ := os.ReadFile(path)
	data[0] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("post-open corruption was served")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats %+v, want 1 quarantined, 0 entries", st)
	}
}

func TestStoreRemovesTornTmpFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenStore(nil, dir); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "tmp", "deadbeef.entry.tmp")
	if err := os.WriteFile(torn, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(nil, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("torn tmp file survived reopen: %v", err)
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "sha256:", "sha256:short", "md5:" + fmt.Sprintf("%064x", 1),
		"sha256:../../../../etc/passwd0000000000000000000000000000000000000000",
		"sha256:" + string(bytes.Repeat([]byte("g"), 64)),
	} {
		if err := s.Put(key, Entry{State: "ok"}); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) served a malformed key", key)
		}
	}
}

func TestEncodeDecodeEntryExhaustiveTruncation(t *testing.T) {
	e := Entry{State: "ok", Attempts: 3, Manifest: []byte("0123456789")}
	data := EncodeEntry(e)
	if got, err := DecodeEntry(data); err != nil || got.State != "ok" || got.Attempts != 3 {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	// Every proper prefix must be rejected — no truncation point decodes.
	for i := 0; i < len(data); i++ {
		if _, err := DecodeEntry(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	// Every single-bit flip must be rejected.
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 1
		if _, err := DecodeEntry(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
}

func TestStoreQuarantineBounded(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	// Far more corrupt entries than the quarantine keeps.
	total := QuarantineKeep + 8
	for i := 0; i < total; i++ {
		name, err := entryName(testKey(fmt.Sprintf("corrupt-%d", i)))
		if err != nil {
			t.Fatalf("entryName: %v", err)
		}
		if err := os.WriteFile(filepath.Join(cacheDir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	s, err := OpenStore(nil, dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	st := s.Stats()
	if st.Quarantined != int64(total) {
		t.Fatalf("Quarantined = %d, want %d", st.Quarantined, total)
	}
	if st.QuarantinePruned != int64(total-QuarantineKeep) {
		t.Fatalf("QuarantinePruned = %d, want %d", st.QuarantinePruned, total-QuarantineKeep)
	}
	names, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatalf("ReadDir quarantine: %v", err)
	}
	if len(names) != QuarantineKeep {
		t.Fatalf("quarantine holds %d files, want exactly %d", len(names), QuarantineKeep)
	}
	// Every kept name carries the <entry>.<unixnano>.<seq> suffix, so two
	// quarantines of the same entry can never collide.
	for _, de := range names {
		parts := strings.Split(de.Name(), ".")
		if len(parts) < 4 { // <hex>.entry.<nanos>.<seq>
			t.Fatalf("quarantine name %q missing nanos/seq suffix", de.Name())
		}
		if _, err := strconv.ParseInt(parts[len(parts)-2], 10, 64); err != nil {
			t.Fatalf("quarantine name %q has non-numeric nanos: %v", de.Name(), err)
		}
	}
}
