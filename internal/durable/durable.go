// Package durable is the crash-safety layer under the simulation
// service: a disk-backed content-addressed manifest store and an
// append-only job journal, both built so that a SIGKILL at any byte
// boundary loses no acknowledged work and never serves corrupt data.
//
// The store holds one file per SHA-256 spec hash. Every entry is written
// atomically (tmp file, fsync, rename) and carries a checksum footer over
// its entire contents; an entry that fails verification — truncated,
// bit-flipped, or otherwise damaged — is quarantined (moved aside, never
// served, counted) instead of returned. Because entries are keyed by the
// content address of the normalized spec and the simulator is
// deterministic, a re-run after a corruption event reproduces the exact
// bytes the quarantined file should have held.
//
// The journal records job lifecycle transitions (submit, start, terminal)
// as newline-framed, CRC-guarded apusim-journal/v1 records with batched
// fsync (group commit: concurrent appenders share one disk sync). On boot
// the journal is replayed: jobs that were queued at the crash are
// re-enqueued, jobs that were running are parked as interrupted (a spec
// that crashed the daemon must not crash-loop it at boot), and jobs whose
// content address already has a stored manifest complete immediately —
// the content address, not the journal, is what makes cache admission
// exactly-once.
package durable
