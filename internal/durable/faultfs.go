package durable

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"syscall"
)

// ErrInjected is the sentinel wrapped by every rate- or count-based
// fault the FaultFS injects (ENOSPC faults wrap syscall.ENOSPC instead,
// so callers can distinguish disk-full from generic I/O failure).
var ErrInjected = errors.New("faultfs: injected I/O error")

// FaultConfig describes a deterministic fault plan for a FaultFS. All
// probabilities are evaluated against a seeded PRNG, so the same seed
// and operation sequence always fails the same operations.
type FaultConfig struct {
	// Seed initializes the PRNG driving the error rates.
	Seed uint64
	// WriteErrRate is the per-Write probability of an injected failure.
	WriteErrRate float64
	// SyncErrRate is the per-Sync (fsync) probability of an injected
	// failure.
	SyncErrRate float64
	// OpErrRate is the per-metadata-op (create, rename, remove)
	// probability of an injected failure.
	OpErrRate float64
	// ENOSPCAfterBytes, when positive, makes every Write fail with
	// ENOSPC once the cumulative bytes written through this FS reach the
	// limit. The write that crosses the limit is torn: the prefix that
	// "fit" lands on disk before the error, like a real full disk.
	ENOSPCAfterBytes int64
	// TornWrites makes injected write failures leave a prefix of the
	// data on disk instead of failing cleanly, modeling a crash or media
	// error mid-write.
	TornWrites bool
}

// FaultStats counts the faults a FaultFS has injected.
type FaultStats struct {
	WritesFailed int64
	SyncsFailed  int64
	OpsFailed    int64
	ENOSPCHits   int64
}

// FaultFS wraps an FS and injects deterministic, seed-driven failures
// into its write paths. Reads are never faulted (read-side corruption is
// exercised separately, by damaging bytes on disk). Heal stops all
// injection; FailNextWrites / FailNextSyncs force exact one-shot
// failures for tests that need a specific operation to fail.
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	cfg        FaultConfig
	rng        uint64
	bytes      int64 // cumulative bytes written (for ENOSPCAfterBytes)
	healed     bool
	failWrites int // countdown of forced write failures
	failSyncs  int // countdown of forced fsync failures
	stats      FaultStats
}

// NewFaultFS wraps inner with the given fault plan.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	if inner == nil {
		inner = OS()
	}
	return &FaultFS{inner: inner, cfg: cfg, rng: cfg.Seed}
}

// Heal stops all fault injection; the FS behaves like its inner FS until
// re-armed. Models the operator freeing disk space or replacing media.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healed = true
	f.failWrites, f.failSyncs = 0, 0
}

// Arm replaces the fault plan and resumes injection.
func (f *FaultFS) Arm(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
	f.rng = cfg.Seed
	f.bytes = 0
	f.healed = false
}

// FailNextWrites forces the next n Write calls to fail (torn when the
// plan says TornWrites), independent of the configured rates.
func (f *FaultFS) FailNextWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healed = false
	f.failWrites = n
}

// FailNextSyncs forces the next n Sync calls to fail, independent of the
// configured rates.
func (f *FaultFS) FailNextSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healed = false
	f.failSyncs = n
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// next steps the splitmix64 PRNG.
func (f *FaultFS) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one deterministic Bernoulli trial at the given rate.
func (f *FaultFS) chance(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(f.next()>>11)/(1<<53) < rate
}

// writeFault decides the fate of an n-byte write. It returns the number
// of prefix bytes that should still land on disk (torn write) and the
// error to inject, or (n, nil) for a clean write.
func (f *FaultFS) writeFault(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.healed {
		return n, nil
	}
	if f.failWrites > 0 {
		f.failWrites--
		f.stats.WritesFailed++
		if f.cfg.TornWrites {
			return n / 2, fmt.Errorf("faultfs: forced write failure: %w", ErrInjected)
		}
		return 0, fmt.Errorf("faultfs: forced write failure: %w", ErrInjected)
	}
	if lim := f.cfg.ENOSPCAfterBytes; lim > 0 && f.bytes+int64(n) > lim {
		fit := lim - f.bytes
		if fit < 0 {
			fit = 0
		}
		f.bytes = lim
		f.stats.ENOSPCHits++
		return int(fit), fmt.Errorf("faultfs: %w", syscall.ENOSPC)
	}
	if f.chance(f.cfg.WriteErrRate) {
		f.stats.WritesFailed++
		if f.cfg.TornWrites {
			return n / 2, fmt.Errorf("faultfs: injected write error: %w", ErrInjected)
		}
		return 0, fmt.Errorf("faultfs: injected write error: %w", ErrInjected)
	}
	f.bytes += int64(n)
	return n, nil
}

// syncFault decides whether an fsync fails.
func (f *FaultFS) syncFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.healed {
		return nil
	}
	if f.failSyncs > 0 {
		f.failSyncs--
		f.stats.SyncsFailed++
		return fmt.Errorf("faultfs: forced fsync failure: %w", ErrInjected)
	}
	if f.chance(f.cfg.SyncErrRate) {
		f.stats.SyncsFailed++
		return fmt.Errorf("faultfs: injected fsync error: %w", ErrInjected)
	}
	return nil
}

// opFault decides whether a metadata operation (create, rename, remove)
// fails.
func (f *FaultFS) opFault(kind string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.healed {
		return nil
	}
	if f.chance(f.cfg.OpErrRate) {
		f.stats.OpsFailed++
		return fmt.Errorf("faultfs: injected %s error: %w", kind, ErrInjected)
	}
	return nil
}

// faultFile wraps a File, consulting the parent FaultFS on every write
// and fsync.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	keep, err := ff.fs.writeFault(len(p))
	if err != nil {
		if keep > 0 {
			// Torn write: the prefix reaches the disk before the failure.
			if n, werr := ff.File.Write(p[:keep]); werr != nil {
				return n, err
			}
		}
		return keep, err
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.syncFault(); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if err := f.opFault("create"); err != nil {
			return nil, err
		}
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

func (f *FaultFS) ReadDir(path string) ([]string, error) { return f.inner.ReadDir(path) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.opFault("rename"); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err := f.opFault("remove"); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) Stat(path string) (fs.FileInfo, error) { return f.inner.Stat(path) }

func (f *FaultFS) SyncDir(path string) error { return f.inner.SyncDir(path) }
