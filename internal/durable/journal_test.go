package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func submitRec(i int) Record {
	return Record{
		Op:     OpSubmit,
		Job:    fmt.Sprintf("j-%06d", i),
		Seq:    i,
		Tenant: "default",
		Key:    testKey(fmt.Sprintf("spec-%d", i)),
		Spec:   json.RawMessage(fmt.Sprintf(`{"experiment":"exp-%d"}`, i)),
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(recs) != 0 || stats.Records != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		submitRec(1),
		{Op: OpStart, Job: "j-000001"},
		{Op: OpDone, Job: "j-000001", State: "ok", Attempts: 1},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, got, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if stats.Corrupt != 0 || stats.TruncatedTail {
		t.Errorf("clean journal replayed with damage: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.Schema = JournalSchema
		g := got[i]
		if g.Op != w.Op || g.Job != w.Job || g.State != w.State || g.Seq != w.Seq ||
			g.Key != w.Key || !bytes.Equal(g.Spec, w.Spec) {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestJournalTruncatedTailDiscardedAndHealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendSync(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop the file inside the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if len(recs) != 2 || !stats.TruncatedTail {
		t.Fatalf("replayed %d records (stats %+v), want 2 with a truncated tail", len(recs), stats)
	}
	// The torn bytes must be gone: appending after reopen yields a clean
	// journal with 3 intact records.
	if err := j2.AppendSync(submitRec(99)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, stats, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || stats.Corrupt != 0 || stats.TruncatedTail {
		t.Errorf("healed journal: %d records, stats %+v; want 3 clean", len(recs), stats)
	}
	if recs[2].Seq != 99 {
		t.Errorf("post-heal append lost: %+v", recs[2])
	}
}

func TestJournalSkipsBitFlippedRecordAndKeepsRest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the middle record's JSON body (well past the
	// first line, well before the last).
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines", len(lines))
	}
	mid := len(lines[0]) + len(lines[1])/2
	data[mid] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupt != 1 || len(recs) != 2 {
		t.Fatalf("replayed %d records with %d corrupt, want 2 and 1", len(recs), stats.Corrupt)
	}
	if recs[0].Seq != 0 || recs[1].Seq != 2 {
		t.Errorf("surviving records %v, want seq 0 and 2", []int{recs[0].Seq, recs[1].Seq})
	}
}

func TestJournalGroupCommitBatchesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.AppendSync(submitRec(i)); err != nil {
				t.Errorf("AppendSync: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := j.Stats()
	if st.Appends != writers {
		t.Errorf("appends = %d, want %d", st.Appends, writers)
	}
	if st.Syncs > st.Appends {
		t.Errorf("syncs (%d) exceed appends (%d): batching never engaged", st.Syncs, st.Appends)
	}
	// Everything must be durable and intact.
	_, recs, stats, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers || stats.Corrupt != 0 {
		t.Errorf("replayed %d records (%d corrupt), want %d clean", len(recs), stats.Corrupt, writers)
	}
}

func TestJournalCompactDropsDeadRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpDone, Job: fmt.Sprintf("j-%06d", i), State: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Keep only one live job; everything else is terminal history.
	live := []Record{submitRec(42)}
	j2, err := Compact(path, live)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j2.AppendSync(Record{Op: OpStart, Job: "j-000042"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 42 || recs[1].Op != OpStart {
		t.Errorf("compacted journal replayed %+v, want the live submit plus the post-compact start", recs)
	}
}

// TestJournalReplay10kUnder1s pins the acceptance bound: a cold-start
// replay of a 10 000-record journal must complete in under a second.
func TestJournalReplay10kUnder1s(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := j.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, recs, stats, err := OpenJournal(path)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n || stats.Corrupt != 0 {
		t.Fatalf("replayed %d records (%d corrupt), want %d clean", len(recs), stats.Corrupt, n)
	}
	if elapsed >= time.Second {
		t.Errorf("10k-record replay took %v, want < 1s", elapsed)
	}
}
