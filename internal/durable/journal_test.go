package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func submitRec(i int) Record {
	return Record{
		Op:     OpSubmit,
		Job:    fmt.Sprintf("j-%06d", i),
		Seq:    i,
		Tenant: "default",
		Key:    testKey(fmt.Sprintf("spec-%d", i)),
		Spec:   json.RawMessage(fmt.Sprintf(`{"experiment":"exp-%d"}`, i)),
	}
}

// openDir is the test shorthand for opening a segmented journal on the
// real filesystem with default options.
func openDir(t *testing.T, dir string) (*Journal, []Record, DirReplayStats) {
	t.Helper()
	j, recs, stats, err := OpenJournalDir(nil, dir, JournalOptions{})
	if err != nil {
		t.Fatalf("OpenJournalDir: %v", err)
	}
	return j, recs, stats
}

// segmentFiles lists the journal files currently under dir, sorted.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := OS().ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, n := range names {
		if isJournalFile(n) {
			out = append(out, n)
		}
	}
	return out
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, stats := openDir(t, dir)
	if len(recs) != 0 || stats.Records != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		submitRec(1),
		{Op: OpStart, Job: "j-000001"},
		{Op: OpDone, Job: "j-000001", State: "ok", Attempts: 1},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, got, stats := openDir(t, dir)
	if stats.Corrupt != 0 || stats.TruncatedTails != 0 || stats.BadHeaders != 0 {
		t.Errorf("clean journal replayed with damage: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.Schema = JournalSchema
		g := got[i]
		if g.Op != w.Op || g.Job != w.Job || g.State != w.State || g.Seq != w.Seq ||
			g.Key != w.Key || !bytes.Equal(g.Spec, w.Spec) {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestJournalTruncatedTailDiscardedNondestructively(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openDir(t, dir)
	for i := 0; i < 3; i++ {
		if err := j.AppendSync(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop the segment inside the last record.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, stats := openDir(t, dir)
	if len(recs) != 2 || stats.TruncatedTails != 1 {
		t.Fatalf("replayed %d records (stats %+v), want 2 with one truncated tail", len(recs), stats)
	}
	// Replay is read-only: the torn segment is untouched, and appends land
	// in a fresh segment past it — the intact records plus the new one all
	// replay, with the torn tail still (harmlessly) reported.
	if err := j2.AppendSync(submitRec(99)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, stats = openDir(t, dir)
	if len(recs) != 3 || stats.Corrupt != 0 {
		t.Errorf("post-heal replay: %d records, stats %+v; want 3 intact", len(recs), stats)
	}
	if recs[2].Seq != 99 {
		t.Errorf("post-heal append lost: %+v", recs[2])
	}
}

func TestJournalSkipsBitFlippedRecordAndKeepsRest(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openDir(t, dir)
	for i := 0; i < 3; i++ {
		if err := j.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the middle record's JSON body (line 0 is the
	// segment header, line 1 the first record).
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("segment has %d lines", len(lines))
	}
	mid := len(lines[0]) + len(lines[1]) + len(lines[2])/2
	data[mid] ^= 0x20
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, stats := openDir(t, dir)
	if stats.Corrupt != 1 || len(recs) != 2 {
		t.Fatalf("replayed %d records with %d corrupt, want 2 and 1", len(recs), stats.Corrupt)
	}
	if recs[0].Seq != 0 || recs[1].Seq != 2 {
		t.Errorf("surviving records %v, want seq 0 and 2", []int{recs[0].Seq, recs[1].Seq})
	}
}

func TestJournalGroupCommitBatchesSyncs(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openDir(t, dir)
	defer j.Close()
	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.AppendSync(submitRec(i)); err != nil {
				t.Errorf("AppendSync: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := j.Stats()
	if st.Appends != writers {
		t.Errorf("appends = %d, want %d", st.Appends, writers)
	}
	if st.Syncs > st.Appends {
		t.Errorf("syncs (%d) exceed appends (%d): batching never engaged", st.Syncs, st.Appends)
	}
	// Everything must be durable and intact.
	_, recs, stats := openDir(t, dir)
	if len(recs) != writers || stats.Corrupt != 0 {
		t.Errorf("replayed %d records (%d corrupt), want %d clean", len(recs), stats.Corrupt, writers)
	}
}

func TestJournalRotatesSegmentsAtSizeCap(t *testing.T) {
	dir := t.TempDir()
	// A tiny cap forces rotation every couple of records.
	j, _, _, err := OpenJournalDir(nil, dir, JournalOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := j.AppendSync(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	if st := j.Stats(); st.Segments != int64(len(segs)) {
		t.Errorf("Stats.Segments = %d, disk has %d", st.Segments, len(segs))
	}
	_, recs, stats := openDir(t, dir)
	if len(recs) != n || stats.Corrupt != 0 || stats.BadHeaders != 0 {
		t.Fatalf("multi-segment replay: %d records, stats %+v; want %d clean", len(recs), stats, n)
	}
	for i, rec := range recs {
		if rec.Seq != i {
			t.Fatalf("record %d has seq %d: cross-segment order lost", i, rec.Seq)
		}
	}
}

func TestJournalCheckpointRetiresOldSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournalDir(nil, dir, JournalOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpDone, Job: fmt.Sprintf("j-%06d", i), State: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(segmentFiles(t, dir)) < 2 {
		t.Fatalf("precondition: expected several segments, got %v", segmentFiles(t, dir))
	}
	// Keep only one live job; everything else is terminal history.
	live := []Record{submitRec(42)}
	if err := j.Checkpoint(live); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("checkpoint left %v, want exactly one segment", segs)
	}
	if st := j.Stats(); st.Checkpoints != 1 || st.RecordsSinceCheckpoint != 0 {
		t.Errorf("post-checkpoint stats %+v", st)
	}
	// The journal keeps appending into the checkpointed segment.
	if err := j.AppendSync(Record{Op: OpStart, Job: "j-000042"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _ := openDir(t, dir)
	if len(recs) != 2 || recs[0].Seq != 42 || recs[1].Op != OpStart {
		t.Errorf("checkpointed journal replayed %+v, want the live submit plus the post-checkpoint start", recs)
	}
}

func TestJournalReplaysLegacySingleFileFirst(t *testing.T) {
	dir := t.TempDir()
	// Fabricate a pre-segment journal: raw records, no header.
	var legacy bytes.Buffer
	for i := 0; i < 3; i++ {
		framed, err := frameRecord(submitRec(i))
		if err != nil {
			t.Fatal(err)
		}
		legacy.Write(framed)
	}
	if err := os.WriteFile(JournalPath(dir), legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, stats := openDir(t, dir)
	if !stats.LegacyJournal || len(recs) != 3 {
		t.Fatalf("legacy replay: %d records, stats %+v", len(recs), stats)
	}
	// New appends land in segment 1; the legacy file is preserved until a
	// checkpoint retires it.
	if err := j.AppendSync(submitRec(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(JournalPath(dir)); err != nil {
		t.Fatalf("legacy journal removed before checkpoint: %v", err)
	}
	if err := j.Checkpoint([]Record{submitRec(10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(JournalPath(dir)); !os.IsNotExist(err) {
		t.Errorf("legacy journal survived the checkpoint: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, stats = openDir(t, dir)
	if stats.LegacyJournal || len(recs) != 1 || recs[0].Seq != 10 {
		t.Errorf("post-migration replay: %d records, stats %+v", len(recs), stats)
	}
}

func TestJournalMissingMiddleSegmentCounted(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournalDir(nil, dir, JournalOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1 rotates on every append: one record per segment.
	for i := 0; i < 3; i++ {
		if err := j.AppendSync(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	j2, recs, stats := openDir(t, dir)
	if stats.MissingSegments != 1 || len(recs) != 2 {
		t.Fatalf("replayed %d records, stats %+v; want 2 with one missing segment", len(recs), stats)
	}
	// The writer must continue numbering past the highest surviving index.
	if err := j2.AppendSync(submitRec(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(4))); err != nil {
		t.Errorf("expected the next append in segment 4: %v", err)
	}
	j2.Close()
}

func TestJournalBadSegmentHeaderStillReplaysRecords(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openDir(t, dir)
	for i := 0; i < 3; i++ {
		if err := j.AppendSync(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0x01 // damage the header line
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, stats := openDir(t, dir)
	if stats.BadHeaders != 1 || len(recs) != 3 {
		t.Fatalf("replayed %d records, stats %+v; want 3 despite one bad header", len(recs), stats)
	}
}

// TestJournalReplay10kUnder1s pins the acceptance bound: a cold-start
// replay of a 10 000-record journal must complete in under a second,
// segments included.
func TestJournalReplay10kUnder1s(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openDir(t, dir)
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := j.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, recs, stats := openDir(t, dir)
	elapsed := time.Since(start)
	if len(recs) != n || stats.Corrupt != 0 {
		t.Fatalf("replayed %d records (%d corrupt), want %d clean", len(recs), stats.Corrupt, n)
	}
	if elapsed >= time.Second {
		t.Errorf("10k-record replay took %v, want < 1s", elapsed)
	}
}
