package durable

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EntrySchema identifies the cache-entry file layout; bump on
// incompatible changes.
const EntrySchema = "apusim-cache-entry/v1"

// QuarantineKeep bounds the quarantine directory: only the newest
// entries up to this count are kept, so a daemon that keeps hitting
// corrupt media cannot fill the disk with evidence.
const QuarantineKeep = 32

// Entry is one stored result: the terminal state a run reached, how many
// attempts produced it, and the exact manifest bytes.
type Entry struct {
	State    string
	Attempts int
	Manifest []byte
}

// StoreStats is a point-in-time snapshot of the store's counters.
type StoreStats struct {
	// Entries is the number of verified entries resident on disk.
	Entries int
	// Bytes is the total size of resident entry files.
	Bytes int64
	// Quarantined counts corrupt or truncated entries moved aside —
	// cumulative since Open, including the open-time sweep.
	Quarantined int64
	// QuarantinePruned counts quarantined files deleted to keep the
	// quarantine dir bounded at QuarantineKeep entries.
	QuarantinePruned int64
	// PutErrors counts writes that failed to reach disk.
	PutErrors int64
}

// quarantineSeq disambiguates quarantine file names minted in the same
// nanosecond, process-wide.
var quarantineSeq atomic.Int64

// Store is a disk-backed content-addressed entry store. Keys are
// "sha256:<64 hex>" content addresses; each entry lives in its own file
// under dir/cache, written atomically and verified by a checksum footer
// on every read. Corrupt entries are quarantined into dir/quarantine and
// never served. All methods are safe for concurrent use.
type Store struct {
	fs         FS
	dir        string // entries
	quarantine string
	tmp        string

	mu       sync.Mutex
	resident map[string]int64 // entry file name → size on disk
	stats    StoreStats
}

// OpenStore opens (creating if needed) the store rooted at dir on the
// given filesystem (nil = the real one). Leftover temporary files from
// an interrupted write are removed, and every resident entry is
// verified: corrupt or truncated files are quarantined immediately, so
// the store OpenStore returns serves only intact entries.
func OpenStore(fsys FS, dir string) (*Store, error) {
	if fsys == nil {
		fsys = OS()
	}
	s := &Store{
		fs:         fsys,
		dir:        filepath.Join(dir, "cache"),
		quarantine: filepath.Join(dir, "quarantine"),
		tmp:        filepath.Join(dir, "tmp"),
		resident:   make(map[string]int64),
	}
	for _, d := range []string{s.dir, s.quarantine, s.tmp} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("durable: creating %s: %w", d, err)
		}
	}
	// A crash mid-Put leaves a tmp file; the rename never happened, so
	// the entry simply does not exist yet and the leftover is garbage.
	if tmps, err := fsys.ReadDir(s.tmp); err == nil {
		for _, name := range tmps {
			_ = fsys.Remove(filepath.Join(s.tmp, name))
		}
	}
	ents, err := fsys.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scanning %s: %w", s.dir, err)
	}
	for _, name := range ents {
		if !strings.HasSuffix(name, ".entry") {
			continue
		}
		path := filepath.Join(s.dir, name)
		data, err := fsys.ReadFile(path)
		if err != nil {
			s.quarantineFile(name)
			continue
		}
		if _, err := DecodeEntry(data); err != nil {
			s.quarantineFile(name)
			continue
		}
		s.mu.Lock()
		s.resident[name] = int64(len(data))
		s.stats.Entries++
		s.stats.Bytes += int64(len(data))
		s.mu.Unlock()
	}
	s.pruneQuarantine()
	return s, nil
}

// entryName maps a content address onto its entry file name, rejecting
// keys that are not well-formed addresses (which also blocks path
// traversal — a valid name is always 64 hex digits plus ".entry").
func entryName(key string) (string, error) {
	hexPart, ok := strings.CutPrefix(key, "sha256:")
	if !ok || len(hexPart) != 64 {
		return "", fmt.Errorf("durable: key %q is not a sha256 content address", key)
	}
	if _, err := hex.DecodeString(hexPart); err != nil {
		return "", fmt.Errorf("durable: key %q is not a sha256 content address", key)
	}
	return hexPart + ".entry", nil
}

// EncodeEntry renders an entry in the on-disk layout: a header line
// naming the schema, state, attempts, and manifest length; the manifest
// bytes; and a footer line holding the SHA-256 of everything before it.
func EncodeEntry(e Entry) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s %d %d\n", EntrySchema, e.State, e.Attempts, len(e.Manifest))
	b.Write(e.Manifest)
	sum := sha256.Sum256(b.Bytes())
	fmt.Fprintf(&b, "sha256:%s\n", hex.EncodeToString(sum[:]))
	return b.Bytes()
}

// entryFooterLen is the fixed size of the checksum footer:
// "sha256:" + 64 hex digits + newline.
const entryFooterLen = len("sha256:") + 64 + 1

// DecodeEntry parses and verifies an on-disk entry. Any deviation —
// short file, bad header, length mismatch, checksum mismatch — returns
// an error; the caller must treat the file as corrupt and never serve
// its contents.
func DecodeEntry(data []byte) (Entry, error) {
	if len(data) < entryFooterLen {
		return Entry{}, fmt.Errorf("durable: entry truncated to %d bytes", len(data))
	}
	body, footer := data[:len(data)-entryFooterLen], data[len(data)-entryFooterLen:]
	sum := sha256.Sum256(body)
	want := "sha256:" + hex.EncodeToString(sum[:]) + "\n"
	if string(footer) != want {
		return Entry{}, fmt.Errorf("durable: entry checksum mismatch")
	}
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return Entry{}, fmt.Errorf("durable: entry missing header line")
	}
	fields := strings.Fields(string(body[:nl]))
	if len(fields) != 4 || fields[0] != EntrySchema {
		return Entry{}, fmt.Errorf("durable: entry header %q is not %s", string(body[:nl]), EntrySchema)
	}
	attempts, err := strconv.Atoi(fields[2])
	if err != nil {
		return Entry{}, fmt.Errorf("durable: entry attempts %q: %w", fields[2], err)
	}
	length, err := strconv.Atoi(fields[3])
	if err != nil {
		return Entry{}, fmt.Errorf("durable: entry length %q: %w", fields[3], err)
	}
	manifest := body[nl+1:]
	if len(manifest) != length {
		return Entry{}, fmt.Errorf("durable: entry holds %d manifest bytes, header says %d", len(manifest), length)
	}
	return Entry{State: fields[1], Attempts: attempts, Manifest: append([]byte(nil), manifest...)}, nil
}

// Get returns the entry stored under key. A missing entry returns ok
// false; a corrupt one is quarantined and also reported missing, so
// callers re-simulate instead of consuming damaged bytes.
func (s *Store) Get(key string) (Entry, bool) {
	name, err := entryName(key)
	if err != nil {
		return Entry{}, false
	}
	data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return Entry{}, false
	}
	e, err := DecodeEntry(data)
	if err != nil {
		s.quarantineFile(name)
		return Entry{}, false
	}
	return e, true
}

// Put stores an entry under key atomically: the encoded bytes are
// written to a private tmp file, fsynced, and renamed into place, so a
// crash at any point leaves either the old entry or the new one — never
// a torn file. Re-putting a key replaces its entry.
func (s *Store) Put(key string, e Entry) error {
	name, err := entryName(key)
	if err != nil {
		s.countPutError()
		return err
	}
	data := EncodeEntry(e)
	if err := writeAtomic(s.fs, filepath.Join(s.tmp, name+".tmp"), filepath.Join(s.dir, name), data); err != nil {
		s.countPutError()
		return fmt.Errorf("durable: storing %s: %w", key, err)
	}
	s.mu.Lock()
	if old, ok := s.resident[name]; ok {
		s.stats.Bytes -= old
	} else {
		s.stats.Entries++
	}
	s.resident[name] = int64(len(data))
	s.stats.Bytes += int64(len(data))
	s.mu.Unlock()
	return nil
}

// writeAtomic writes data to tmp, fsyncs it, renames it over dst, and
// fsyncs the destination directory (best effort) so the rename itself
// survives a crash.
func writeAtomic(fsys FS, tmp, dst string, data []byte) error {
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, dst); err != nil {
		fsys.Remove(tmp)
		return err
	}
	_ = fsys.SyncDir(filepath.Dir(dst))
	return nil
}

// quarantineFile moves a corrupt entry aside so it is never read again.
// The quarantine name carries the wall-clock nanos and a process-wide
// sequence number, so two quarantines of the same entry — even in the
// same nanosecond — can never collide.
func (s *Store) quarantineFile(name string) {
	src := filepath.Join(s.dir, name)
	qname := fmt.Sprintf("%s.%d.%06d", name, time.Now().UnixNano(), quarantineSeq.Add(1))
	if err := s.fs.Rename(src, filepath.Join(s.quarantine, qname)); err != nil {
		// The file may already be gone (racing quarantine); either way
		// it is no longer servable.
		_ = s.fs.Remove(src)
	}
	s.mu.Lock()
	if old, ok := s.resident[name]; ok {
		delete(s.resident, name)
		s.stats.Entries--
		s.stats.Bytes -= old
	}
	s.stats.Quarantined++
	s.mu.Unlock()
	s.pruneQuarantine()
}

// pruneQuarantine bounds the quarantine dir to the newest QuarantineKeep
// files. Age comes from the nanotime embedded in the quarantine name
// (mtime for pre-suffix legacy names), so pruning is stable even on
// filesystems with coarse timestamps.
func (s *Store) pruneQuarantine() {
	names, err := s.fs.ReadDir(s.quarantine)
	if err != nil || len(names) <= QuarantineKeep {
		return
	}
	type qfile struct {
		name string
		age  int64
	}
	files := make([]qfile, 0, len(names))
	for _, name := range names {
		files = append(files, qfile{name: name, age: quarantineAge(s.fs, s.quarantine, name)})
	}
	sort.Slice(files, func(i, k int) bool {
		if files[i].age != files[k].age {
			return files[i].age < files[k].age // oldest first
		}
		return files[i].name < files[k].name
	})
	var pruned int64
	for _, f := range files[:len(files)-QuarantineKeep] {
		if s.fs.Remove(filepath.Join(s.quarantine, f.name)) == nil {
			pruned++
		}
	}
	if pruned > 0 {
		s.mu.Lock()
		s.stats.QuarantinePruned += pruned
		s.mu.Unlock()
	}
}

// quarantineAge extracts the quarantine timestamp from a file name
// (<entry>.<unixnano>.<seq>), falling back to mtime for names minted
// before the suffix scheme existed.
func quarantineAge(fsys FS, dir, name string) int64 {
	parts := strings.Split(name, ".")
	if len(parts) >= 3 {
		if ns, err := strconv.ParseInt(parts[len(parts)-2], 10, 64); err == nil {
			return ns
		}
	}
	if fi, err := fsys.Stat(filepath.Join(dir, name)); err == nil {
		return fi.ModTime().UnixNano()
	}
	return 0
}

func (s *Store) countPutError() {
	s.mu.Lock()
	s.stats.PutErrors++
	s.mu.Unlock()
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
