package durable

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeSeq performs n one-byte writes through a fresh file on fsys and
// returns the index of every write that failed. Used to compare fault
// sequences across identically-seeded FaultFS instances.
func writeSeq(t *testing.T, fsys FS, path string, n int) []int {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	var failed []int
	for i := 0; i < n; i++ {
		if _, err := f.Write([]byte{byte(i)}); err != nil {
			failed = append(failed, i)
		}
	}
	return failed
}

func TestFaultFSDeterministicAcrossSeeds(t *testing.T) {
	dir := t.TempDir()
	cfg := FaultConfig{Seed: 42, WriteErrRate: 0.3}

	a := writeSeq(t, NewFaultFS(OS(), cfg), filepath.Join(dir, "a"), 200)
	b := writeSeq(t, NewFaultFS(OS(), cfg), filepath.Join(dir, "b"), 200)
	if len(a) == 0 {
		t.Fatal("30% write error rate over 200 writes injected no failures")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d failures", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at failure %d: write %d vs %d", i, a[i], b[i])
		}
	}

	c := writeSeq(t, NewFaultFS(OS(), FaultConfig{Seed: 43, WriteErrRate: 0.3}), filepath.Join(dir, "c"), 200)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical failure sequences")
	}
}

func TestFaultFSENOSPCAfterBytesTearsCrossingWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS(), FaultConfig{ENOSPCAfterBytes: 10})
	path := filepath.Join(dir, "full")

	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil { // 8 bytes: fits
		t.Fatalf("write under limit failed: %v", err)
	}
	// 6 more bytes crosses the 10-byte limit: 2 land, then ENOSPC.
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("crossing write: got err %v, want ENOSPC", err)
	}
	if n != 2 {
		t.Fatalf("crossing write landed %d bytes, want torn prefix of 2", n)
	}
	// The disk is now "full": everything fails.
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-limit write: got err %v, want ENOSPC", err)
	}
	f.Close()

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "12345678ab" {
		t.Fatalf("on-disk bytes = %q, want torn prefix %q", got, "12345678ab")
	}
	if hits := fsys.Stats().ENOSPCHits; hits != 2 {
		t.Fatalf("ENOSPCHits = %d, want 2", hits)
	}
}

func TestFaultFSForcedFailuresAndHeal(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS(), FaultConfig{})
	f, err := fsys.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()

	fsys.FailNextSyncs(2)
	for i := 0; i < 2; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("forced sync %d: got %v, want ErrInjected", i, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after countdown drained: %v", err)
	}

	fsys.FailNextWrites(1)
	if n, err := f.Write([]byte("abcd")); !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("forced write: n=%d err=%v, want 0 bytes + ErrInjected", n, err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after countdown drained: %v", err)
	}

	st := fsys.Stats()
	if st.SyncsFailed != 2 || st.WritesFailed != 1 {
		t.Fatalf("stats = %+v, want 2 failed syncs and 1 failed write", st)
	}

	// Heal stops every kind of injection, even armed countdowns.
	fsys.FailNextWrites(5)
	fsys.FailNextSyncs(5)
	fsys.Heal()
	if _, err := f.Write([]byte("healed")); err != nil {
		t.Fatalf("write after Heal: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Heal: %v", err)
	}
}

func TestFaultFSTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS(), FaultConfig{TornWrites: true})
	path := filepath.Join(dir, "torn")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	fsys.FailNextWrites(1)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: got err %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("torn write reported %d bytes, want half (5)", n)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "01234" {
		t.Fatalf("on-disk bytes = %q, want torn prefix %q", got, "01234")
	}
}

func TestFaultFSArmResetsPlan(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS(), FaultConfig{ENOSPCAfterBytes: 4})
	path := filepath.Join(dir, "arm")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("abcdefgh")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// Re-arming resets the byte budget (disk "grew").
	fsys.Arm(FaultConfig{ENOSPCAfterBytes: 1 << 20})
	if _, err := f.Write([]byte("abcdefgh")); err != nil {
		t.Fatalf("write after re-arm: %v", err)
	}

	// Healed FS stays healed until re-armed.
	fsys.Heal()
	fsys.Arm(FaultConfig{ENOSPCAfterBytes: 1})
	if _, err := f.Write([]byte("xx")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Arm after Heal should resume injection, got %v", err)
	}
}
