package durable

import "encoding/json"

// JobRecovery is one job's reconstructed lifecycle after a journal
// replay: identity, what was known about it when the process died, and
// whether it had already finished.
type JobRecovery struct {
	Seq       int
	Job       string
	Tenant    string
	Key       string
	Coalesced bool
	Spec      json.RawMessage
	// Trace is the journaled trace correlation key, "" in older journals.
	Trace string
	// Started reports that a worker had picked the job up (a start
	// record exists). A job that died started is treated more carefully
	// than one that died queued — it may be the spec that killed the
	// process.
	Started bool
	// Terminal is the recorded terminal state, or "" for a job that was
	// still pending at the crash.
	Terminal string
	Attempts int
}

// BuildRecovery folds replayed records into per-job recovery entries, in
// submission order. It is deliberately forgiving — the journal may have
// lost or skipped records — and admission-safe: duplicate submit records
// for one job ID collapse to the first (a job can never be admitted
// twice), start/done records for unknown jobs are dropped, and a done
// record is final (later records cannot resurrect a finished job).
func BuildRecovery(recs []Record) []JobRecovery {
	byJob := make(map[string]*JobRecovery)
	var order []*JobRecovery
	for _, rec := range recs {
		switch rec.Op {
		case OpSubmit:
			if _, dup := byJob[rec.Job]; dup {
				continue
			}
			jr := &JobRecovery{
				Seq:       rec.Seq,
				Job:       rec.Job,
				Tenant:    rec.Tenant,
				Key:       rec.Key,
				Coalesced: rec.Coalesced,
				Spec:      rec.Spec,
				Trace:     rec.Trace,
			}
			byJob[rec.Job] = jr
			order = append(order, jr)
		case OpStart:
			if jr := byJob[rec.Job]; jr != nil && jr.Terminal == "" {
				jr.Started = true
			}
		case OpDone:
			if jr := byJob[rec.Job]; jr != nil && jr.Terminal == "" {
				jr.Terminal = rec.State
				jr.Attempts = rec.Attempts
			}
		}
	}
	out := make([]JobRecovery, len(order))
	for i, jr := range order {
		out[i] = *jr
	}
	return out
}
