// Package multisocket models the coherence-scope design of §IV.D at node
// scale: "The CPUs are hardware coherent with all CPUs and GPUs ... The
// GPUs are software-coherent to GPUs in other sockets (to reduce hardware
// coherence bandwidth needs) and directory-based hardware coherent within
// a socket." This package quantifies that choice on the Fig. 18(a)
// 4×MI300A node: a producer/consumer kernel handoff across sockets under
// (a) software coherence — one scope flush at the kernel boundary, then
// full-speed local reads — versus (b) hypothetical hardware coherence —
// every consumer miss crossing the inter-socket links with probe
// overhead. The crossover shows why software coherence wins for GPU-scale
// traffic while CPU-scale traffic keeps hardware coherence.
package multisocket

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/topology"
)

// System is a multi-socket MI300A node with coherence-scope models.
type System struct {
	Node *topology.Node
	// PairBWPerDir is the per-direction IF bandwidth between a socket
	// pair.
	PairBWPerDir float64
	// IFLatency is the one-way inter-socket link latency.
	IFLatency sim.Time
	// LineSize is the coherence granule.
	LineSize int64
	// ProbeOverheadBytes is control traffic per line for hardware
	// coherence across sockets (request + probe + response headers).
	ProbeOverheadBytes int64
	// LocalBW is the consumer's local HBM bandwidth.
	LocalBW float64
	// FlushOverhead is the fixed cost of a release-scope flush: walking
	// the producer socket's L2s/L1s and fencing outstanding writes. This
	// is what makes software coherence a bad deal for tiny handoffs.
	FlushOverhead sim.Time

	// GPUDirs is the per-socket intra-socket GPU directory.
	GPUDirs []*coherence.Directory
	// CPUDir is the node-wide CPU probe filter (hardware coherent
	// across all sockets, per §IV.D).
	CPUDir *coherence.Directory
}

// NewQuadAPUSystem builds the scope model over the Fig. 18(a) node.
func NewQuadAPUSystem() (*System, error) {
	node, err := topology.QuadAPUNode()
	if err != nil {
		return nil, err
	}
	spec := config.MI300A()
	s := &System{
		Node:               node,
		PairBWPerDir:       node.PairBWPerDir(node.Sockets[0].Name, node.Sockets[1].Name),
		IFLatency:          150 * sim.Nanosecond,
		LineSize:           config.CacheLineSize,
		ProbeOverheadBytes: 64,
		LocalBW:            spec.PeakMemoryBW(),
		FlushOverhead:      10 * sim.Microsecond,
	}
	for i := range node.Sockets {
		s.GPUDirs = append(s.GPUDirs,
			coherence.NewGPUDirectory(fmt.Sprintf("socket%d.gpudir", i), spec.XCDs))
	}
	// CPU probe filter spans every CCD and XCD in the node.
	agents := len(node.Sockets) * (spec.CCDs + spec.XCDs)
	s.CPUDir = coherence.NewProbeFilter("node.pf", agents)
	return s, nil
}

// HandoffResult is the cost of moving a producer kernel's output to a
// consumer kernel on another socket.
type HandoffResult struct {
	Mode string
	// BoundaryTime is paid once at the kernel boundary (flush + signal).
	BoundaryTime sim.Time
	// ReadTime is the consumer's time to read the data set once.
	ReadTime sim.Time
	// Total combines both.
	Total sim.Time
	// IFBytes is the traffic placed on inter-socket links.
	IFBytes int64
}

// SoftwareCoherentHandoff models the shipped design: at kernel completion
// the producer's socket flushes the dirty scope over IF to the consumer's
// memory (or the consumer's first touch pulls it once in bulk), after
// which every consumer access runs at local HBM speed.
func (s *System) SoftwareCoherentHandoff(dirtyBytes int64) HandoffResult {
	r := HandoffResult{Mode: "software-coherent", IFBytes: dirtyBytes}
	// Scope flush: fixed cache-walk/fence cost, then bulk writeback
	// across the pair's IF links.
	flush := s.FlushOverhead + sim.FromSeconds(float64(dirtyBytes)/s.PairBWPerDir) + s.IFLatency
	// Completion signal to the consumer socket.
	r.BoundaryTime = flush + s.IFLatency
	// Consumer reads at local HBM bandwidth.
	r.ReadTime = sim.FromSeconds(float64(dirtyBytes) / s.LocalBW)
	r.Total = r.BoundaryTime + r.ReadTime
	return r
}

// HardwareCoherentHandoff models the rejected alternative: no flush, but
// every consumer line miss crosses the IF links with probe overhead, so
// the whole read is bottlenecked by the inter-socket path.
func (s *System) HardwareCoherentHandoff(dirtyBytes int64) HandoffResult {
	lines := (dirtyBytes + s.LineSize - 1) / s.LineSize
	traffic := dirtyBytes + lines*s.ProbeOverheadBytes
	r := HandoffResult{Mode: "hardware-coherent", IFBytes: traffic}
	// Boundary: just the completion signal.
	r.BoundaryTime = 2 * s.IFLatency
	// Reads: all data plus probe traffic over the pair links, plus one
	// round-trip latency exposed per miss burst (deep MLP hides most).
	r.ReadTime = sim.FromSeconds(float64(traffic)/s.PairBWPerDir) + 2*s.IFLatency
	r.Total = r.BoundaryTime + r.ReadTime
	return r
}

// CoherenceBandwidthTax reports the fraction of inter-socket bandwidth
// that hardware coherence would spend on probe traffic for a given access
// footprint — the "hardware coherence bandwidth needs" §IV.D avoids.
func (s *System) CoherenceBandwidthTax(bytes int64) float64 {
	lines := (bytes + s.LineSize - 1) / s.LineSize
	probe := lines * s.ProbeOverheadBytes
	return float64(probe) / float64(bytes+probe)
}

// Crossover reports the handoff size above which software coherence wins.
// Below it, the flush latency dominates and hardware coherence's lazy
// pulls would be cheaper; GPU kernel outputs are far above it.
func (s *System) Crossover(lo, hi int64) int64 {
	swWins := func(n int64) bool {
		return s.SoftwareCoherentHandoff(n).Total < s.HardwareCoherentHandoff(n).Total
	}
	if swWins(lo) {
		return lo
	}
	if !swWins(hi) {
		return hi + 1
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if swWins(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// CPUSharingAcrossSockets exercises the node-wide probe filter: CPU agents
// on different sockets read/write a shared line, staying hardware
// coherent (no flushes), and reports the probe count.
func (s *System) CPUSharingAcrossSockets(writes int) (probes uint64, err error) {
	line := coherence.LineAddr(0x1000)
	perSocket := s.CPUDir.Agents() / len(s.Node.Sockets)
	for i := 0; i < writes; i++ {
		// Reader on socket (i%4), writer on socket ((i+1)%4).
		reader := (i % len(s.Node.Sockets)) * perSocket
		writer := ((i + 1) % len(s.Node.Sockets)) * perSocket
		s.CPUDir.Read(reader, line)
		s.CPUDir.Write(writer, line)
		if err := s.CPUDir.CheckInvariants(); err != nil {
			return 0, err
		}
	}
	return s.CPUDir.Stats().ProbesSent, nil
}
