package multisocket

import (
	"testing"
	"testing/quick"
)

func system(t testing.TB) *System {
	t.Helper()
	s, err := NewQuadAPUSystem()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSoftwareCoherenceWinsForKernelScaleData(t *testing.T) {
	s := system(t)
	// A 1 GB kernel output handoff: the shipped software-coherent design
	// must beat per-line hardware coherence decisively.
	const gb = 1 << 30
	sw := s.SoftwareCoherentHandoff(gb)
	hw := s.HardwareCoherentHandoff(gb)
	if sw.Total >= hw.Total {
		t.Errorf("software coherent (%v) should beat hardware coherent (%v) at 1 GB", sw.Total, hw.Total)
	}
	// And place no probe traffic on the links.
	if sw.IFBytes >= hw.IFBytes {
		t.Errorf("software IF traffic (%d) should be below hardware (%d)", sw.IFBytes, hw.IFBytes)
	}
}

func TestHardwareCoherenceWinsForTinyData(t *testing.T) {
	s := system(t)
	// A few lines of shared state: flushing a scope is overkill; lazy
	// hardware pulls win. This is why the CPUs stay hardware coherent.
	sw := s.SoftwareCoherentHandoff(256)
	hw := s.HardwareCoherentHandoff(256)
	if hw.Total >= sw.Total {
		t.Errorf("hardware coherent (%v) should beat software (%v) at 256 B", hw.Total, sw.Total)
	}
}

func TestCrossoverInteriorAndOrdered(t *testing.T) {
	s := system(t)
	n := s.Crossover(64, 1<<30)
	if n <= 64 || n > 1<<30 {
		t.Fatalf("crossover = %d, want interior", n)
	}
	if s.SoftwareCoherentHandoff(n).Total >= s.HardwareCoherentHandoff(n).Total {
		t.Error("crossover point does not favor software coherence")
	}
	if s.SoftwareCoherentHandoff(n/2).Total < s.HardwareCoherentHandoff(n/2).Total {
		t.Error("below crossover should favor hardware coherence")
	}
}

func TestCoherenceBandwidthTax(t *testing.T) {
	s := system(t)
	tax := s.CoherenceBandwidthTax(1 << 30)
	// 64 B of probe traffic per 128 B line = 1/3 of link bandwidth.
	if tax < 0.3 || tax > 0.35 {
		t.Errorf("coherence tax = %.3f, want ~0.33", tax)
	}
}

func TestCPUSharingStaysCoherent(t *testing.T) {
	s := system(t)
	probes, err := s.CPUSharingAcrossSockets(100)
	if err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
	if probes == 0 {
		t.Error("cross-socket CPU sharing generated no probes")
	}
}

func TestSystemGeometry(t *testing.T) {
	s := system(t)
	if len(s.GPUDirs) != 4 {
		t.Errorf("GPU directories = %d, want 4 (one per socket)", len(s.GPUDirs))
	}
	// Node-wide CPU probe filter covers 4 × (3 CCDs + 6 XCDs) agents.
	if s.CPUDir.Agents() != 36 {
		t.Errorf("CPU probe filter agents = %d, want 36", s.CPUDir.Agents())
	}
	if s.PairBWPerDir != 128e9 {
		t.Errorf("pair BW = %g, want 128 GB/s (two x16 links)", s.PairBWPerDir)
	}
}

// Property: both handoff costs are monotonically nondecreasing in size,
// and software coherence's advantage grows with size.
func TestHandoffMonotonicProperty(t *testing.T) {
	s := system(t)
	f := func(aRaw, bRaw uint32) bool {
		a, b := int64(aRaw)+1, int64(bRaw)+1
		if a > b {
			a, b = b, a
		}
		swA, swB := s.SoftwareCoherentHandoff(a), s.SoftwareCoherentHandoff(b)
		hwA, hwB := s.HardwareCoherentHandoff(a), s.HardwareCoherentHandoff(b)
		if swB.Total < swA.Total || hwB.Total < hwA.Total {
			return false
		}
		// Advantage (hw - sw) grows with size.
		return hwB.Total-swB.Total >= hwA.Total-swA.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
