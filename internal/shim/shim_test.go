package shim

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
)

func router(t testing.TB, spec *config.PlatformSpec) *Router {
	t.Helper()
	p, err := core.NewPlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	return NewRouter(p)
}

func TestSmallCallsStayOnCPU(t *testing.T) {
	r := router(t, config.MI300A())
	target, cpu, gpu := r.Route(DGEMM(32))
	if target != TargetCPU {
		t.Errorf("dgemm-32 routed to %s (cpu=%v gpu=%v); launch overhead should keep it on CPU",
			target, cpu.Time, gpu.Time)
	}
}

func TestLargeCallsGoToGPU(t *testing.T) {
	r := router(t, config.MI300A())
	target, cpu, gpu := r.Route(DGEMM(4096))
	if target != TargetGPU {
		t.Errorf("dgemm-4096 routed to %s (cpu=%v gpu=%v)", target, cpu.Time, gpu.Time)
	}
	if gpu.Time >= cpu.Time {
		t.Error("GPU estimate not faster for the large call")
	}
}

func TestCrossoverMonotoneAndPlausible(t *testing.T) {
	r := router(t, config.MI300A())
	n := r.Crossover(DGEMM, 8, 8192)
	if n <= 8 || n > 8192 {
		t.Fatalf("DGEMM crossover = %d, want interior point", n)
	}
	// Everything below the crossover routes CPU; above routes GPU.
	if tgt, _, _ := r.Route(DGEMM(n - 1)); tgt != TargetCPU {
		t.Errorf("just below crossover (%d) routed GPU", n-1)
	}
	if tgt, _, _ := r.Route(DGEMM(n + 1)); tgt != TargetGPU {
		t.Errorf("just above crossover (%d) routed CPU", n+1)
	}
}

func TestCrossoverHigherOnDiscrete(t *testing.T) {
	// The §VI.B transparent-offload story: on an APU the GPU becomes
	// profitable at much smaller problems because operands never move.
	apu := router(t, config.MI300A())
	disc := router(t, config.MI250X())
	na := apu.Crossover(DGEMM, 8, 16384)
	nd := disc.Crossover(DGEMM, 8, 16384)
	if nd <= na {
		t.Errorf("discrete crossover (%d) should exceed APU crossover (%d)", nd, na)
	}
}

func TestBandwidthBoundCallsPreferCPUForLongTime(t *testing.T) {
	// DAXPY is pure bandwidth: the GPU only wins once the vector is big
	// enough that launch overhead amortizes against the BW advantage.
	r := router(t, config.MI300A())
	n := r.Crossover(DAXPY, 1<<10, 1<<28)
	if n <= 1<<10 {
		t.Error("tiny daxpy routed to GPU")
	}
	if n > 1<<28 {
		t.Error("huge daxpy never routed to GPU")
	}
}

func TestUnsupportedDtypeNeverRoutesGPU(t *testing.T) {
	r := router(t, config.MI250X())
	c := Call{Name: "fp8gemm", Flops: 1e15, Bytes: 1e9, Class: config.Matrix, Dtype: config.FP8}
	target, _, gpu := r.Route(c)
	if gpu.Time != sim.Forever {
		t.Errorf("FP8 on CDNA2 estimated %v, want Forever", gpu.Time)
	}
	if target != TargetCPU {
		t.Error("unsupported-dtype call routed to GPU")
	}
}

func TestStatsCount(t *testing.T) {
	r := router(t, config.MI300A())
	r.Route(DGEMM(16))
	r.Route(DGEMM(8192))
	calls, gpuWins := r.Stats()
	if calls != 2 || gpuWins != 1 {
		t.Errorf("stats = %d/%d, want 2/1", calls, gpuWins)
	}
}

// Property: the router always picks the target with the smaller estimate.
func TestRoutePicksMinimumProperty(t *testing.T) {
	r := router(t, config.MI300A())
	f := func(nRaw uint16, kind uint8) bool {
		n := int(nRaw)%4096 + 1
		var c Call
		switch kind % 3 {
		case 0:
			c = DGEMM(n)
		case 1:
			c = DAXPY(n * 1024)
		default:
			c = DotProduct(n * 1024)
		}
		target, cpu, gpu := r.Route(c)
		if gpu.Time < cpu.Time {
			return target == TargetGPU
		}
		return target == TargetCPU
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
