// Package shim implements the §VI.B automatic-acceleration idea: because
// an APU's data is always accessible to both CPU cores and GPU CUs via the
// in-package HBM, standard library calls (BLAS/LAPACK-style) can be linked
// against a thin dispatch layer that routes each call to CPU or GPU
// processing elements "depending on simple heuristics such as problem
// size, etc." — no explicit code refactoring. This package provides that
// router over the simulated platform, a cost model for both targets, and
// the measured crossover analysis.
package shim

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
)

// Target is where a routed call executes.
type Target int

const (
	// TargetCPU runs the call on the CCD complex.
	TargetCPU Target = iota
	// TargetGPU dispatches the call to the XCD partition.
	TargetGPU
)

// String names the target.
func (t Target) String() string {
	if t == TargetCPU {
		return "CPU"
	}
	return "GPU"
}

// Call is one generic library call with a resource footprint (the shim
// sees only this, not the caller's code).
type Call struct {
	Name  string
	Flops float64
	Bytes float64
	Class config.EngineClass
	Dtype config.DataType
}

// DGEMM describes C = A×B for n×n float64 matrices.
func DGEMM(n int) Call {
	fn := float64(n)
	return Call{
		Name:  fmt.Sprintf("dgemm-%d", n),
		Flops: 2 * fn * fn * fn,
		Bytes: 4 * 3 * fn * fn * 8,
		Class: config.Matrix,
		Dtype: config.FP64,
	}
}

// DAXPY describes y += a*x over n float64 elements.
func DAXPY(n int) Call {
	fn := float64(n)
	return Call{
		Name:  fmt.Sprintf("daxpy-%d", n),
		Flops: 2 * fn,
		Bytes: 24 * fn,
		Class: config.Vector,
		Dtype: config.FP64,
	}
}

// DotProduct describes x·y over n float64 elements.
func DotProduct(n int) Call {
	fn := float64(n)
	return Call{
		Name:  fmt.Sprintf("ddot-%d", n),
		Flops: 2 * fn,
		Bytes: 16 * fn,
		Class: config.Vector,
		Dtype: config.FP64,
	}
}

// Estimate is the router's cost prediction for one target.
type Estimate struct {
	Target Target
	Time   sim.Time
}

// Router dispatches calls on a platform. On a unified-memory APU there is
// no data-placement question — both estimates read the same HBM — so the
// router is a pure latency comparison plus the GPU's fixed launch cost.
type Router struct {
	p *core.Platform
	// LaunchOverhead is the kernel dispatch cost charged to GPU routes.
	LaunchOverhead sim.Time
	// cpuEff / gpuEff derate theoretical peaks.
	cpuEff, gpuEff float64

	calls   uint64
	gpuWins uint64
}

// NewRouter builds a router for the platform.
func NewRouter(p *core.Platform) *Router {
	return &Router{
		p:              p,
		LaunchOverhead: 8 * sim.Microsecond,
		cpuEff:         0.70,
		gpuEff:         0.80,
	}
}

// EstimateCPU predicts the CPU-side time for the call.
func (r *Router) EstimateCPU(c Call) sim.Time {
	spec := r.p.Spec
	var flops, bw float64
	if spec.CCD != nil {
		flops = spec.CPUPeakFlops() * r.cpuEff
		bw = spec.PeakMemoryBW() * 0.25 * r.cpuEff
	} else if spec.Host != nil {
		flops = float64(spec.Host.Cores) * spec.Host.ClockHz * spec.Host.FlopsCore * r.cpuEff
		bw = spec.Host.DDRBW * r.cpuEff
	} else {
		return sim.Forever
	}
	ct := c.Flops / flops
	mt := c.Bytes / bw
	if mt > ct {
		ct = mt
	}
	return sim.FromSeconds(ct)
}

// EstimateGPU predicts the GPU-side time for the call, including launch
// overhead (and, on discrete platforms, the data movement the APU
// architecture eliminates).
func (r *Router) EstimateGPU(c Call) sim.Time {
	spec := r.p.Spec
	peak := spec.PeakFlops(c.Class, c.Dtype) * r.gpuEff
	if peak == 0 {
		return sim.Forever
	}
	ct := c.Flops / peak
	mt := c.Bytes / (spec.PeakMemoryBW() * r.gpuEff)
	if mt > ct {
		ct = mt
	}
	t := sim.FromSeconds(ct) + r.LaunchOverhead
	if spec.Memory == config.DiscreteMemory && spec.Host != nil {
		// A discrete shim must ship operands over the host link: this is
		// why the transparent-offload story only works on the APU.
		t += sim.FromSeconds(c.Bytes / (spec.Host.LinkBW * 0.9))
	}
	return t
}

// Route picks the faster target for the call.
func (r *Router) Route(c Call) (Target, Estimate, Estimate) {
	cpu := Estimate{Target: TargetCPU, Time: r.EstimateCPU(c)}
	gpu := Estimate{Target: TargetGPU, Time: r.EstimateGPU(c)}
	r.calls++
	if gpu.Time < cpu.Time {
		r.gpuWins++
		return TargetGPU, cpu, gpu
	}
	return TargetCPU, cpu, gpu
}

// Stats reports (calls routed, GPU wins).
func (r *Router) Stats() (calls, gpuWins uint64) { return r.calls, r.gpuWins }

// Crossover finds the smallest size in [lo, hi] where the generator's
// call routes to the GPU, by binary search (the routing is monotonic in
// size for the calls above: bigger problems amortize the launch cost).
// It returns hi+1 if the GPU never wins.
func (r *Router) Crossover(gen func(n int) Call, lo, hi int) int {
	routesGPU := func(n int) bool {
		t, _, _ := r.Route(gen(n))
		return t == TargetGPU
	}
	if routesGPU(lo) {
		return lo
	}
	if !routesGPU(hi) {
		return hi + 1
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if routesGPU(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
