// Package cache implements the cache hierarchy models: a generic
// set-associative cache with LRU replacement used for the CU L1D, the
// shared instruction caches, the XCD L2, and the CCD L2/L3; and the
// memory-side Infinity Cache (§IV.D) — 2 MB per memory channel, with a
// stream prefetcher — whose job in MI300 is bandwidth amplification for
// the HBM rather than coherence participation.
package cache

import "fmt"

// Stats accumulates cache event counts.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Prefetches uint64
	PrefHits   uint64 // hits on prefetched lines
}

// Accesses reports hits+misses.
func (s *Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate reports the hit fraction (0 when untouched).
func (s *Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Hits) / float64(a)
}

type line struct {
	tag        int64
	valid      bool
	dirty      bool
	prefetched bool
}

// SetAssoc is a set-associative cache with true-LRU replacement. It is a
// tag store only: data lives in the functional mem.Space, so the cache
// tracks presence and dirtiness for timing and traffic accounting.
type SetAssoc struct {
	Name     string
	LineSize int64
	Ways     int
	Sets     int
	stats    Stats
	// sets[s] holds up to Ways lines ordered most-recent-first.
	sets [][]line
}

// NewSetAssoc builds a cache of the given total size. Size must be a
// multiple of lineSize×ways and the set count must be a power of two.
func NewSetAssoc(name string, size, lineSize int64, ways int) *SetAssoc {
	if size <= 0 || lineSize <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invariant violated: geometry must be positive (size=%d line=%d ways=%d)", size, lineSize, ways))
	}
	lines := size / lineSize
	sets := int(lines) / ways
	if sets == 0 || int64(sets*ways)*lineSize != size {
		panic(fmt.Sprintf("cache: invariant violated: %s size %d must divide evenly into %d-way sets of %d-byte lines", name, size, ways, lineSize))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: invariant violated: %s set count %d must be a power of two for index masking", name, sets))
	}
	c := &SetAssoc{Name: name, LineSize: lineSize, Ways: ways, Sets: sets}
	c.sets = make([][]line, sets)
	return c
}

// Size reports total capacity in bytes.
func (c *SetAssoc) Size() int64 { return int64(c.Sets*c.Ways) * c.LineSize }

// Stats returns a copy of the counters.
func (c *SetAssoc) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without flushing contents.
func (c *SetAssoc) ResetStats() { c.stats = Stats{} }

func (c *SetAssoc) index(addr int64) (set int, tag int64) {
	lineAddr := addr / c.LineSize
	return int(lineAddr) & (c.Sets - 1), lineAddr
}

// Result describes the outcome of one cache access.
type Result struct {
	Hit bool
	// Evicted reports whether a valid line was displaced.
	Evicted bool
	// WritebackAddr is the byte address of the dirty victim line when a
	// writeback is required (valid only if Writeback).
	Writeback     bool
	WritebackAddr int64
}

// Access looks up the line containing addr, filling on miss, and returns
// what happened. write marks the line dirty.
func (c *SetAssoc) Access(addr int64, write bool) Result {
	set, tag := c.index(addr)
	s := c.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			// Hit: move to front (MRU).
			ln := s[i]
			if ln.prefetched {
				c.stats.PrefHits++
				ln.prefetched = false
			}
			if write {
				ln.dirty = true
			}
			copy(s[1:i+1], s[:i])
			s[0] = ln
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	return c.fill(set, tag, write, false)
}

// fill inserts a line at MRU, evicting LRU if the set is full.
func (c *SetAssoc) fill(set int, tag int64, dirty, prefetched bool) Result {
	s := c.sets[set]
	var res Result
	if len(s) < c.Ways {
		s = append(s, line{})
		copy(s[1:], s[:len(s)-1])
	} else {
		victim := s[len(s)-1]
		if victim.valid {
			res.Evicted = true
			c.stats.Evictions++
			if victim.dirty {
				res.Writeback = true
				res.WritebackAddr = victim.tag * c.LineSize
				c.stats.Writebacks++
			}
		}
		copy(s[1:], s[:len(s)-1])
	}
	s[0] = line{tag: tag, valid: true, dirty: dirty, prefetched: prefetched}
	c.sets[set] = s
	return res
}

// Contains reports whether addr's line is present (no LRU update).
func (c *SetAssoc) Contains(addr int64) bool {
	set, tag := c.index(addr)
	for _, ln := range c.sets[set] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Prefetch inserts addr's line if absent, marking it prefetched. It
// reports whether a fill actually happened.
func (c *SetAssoc) Prefetch(addr int64) bool {
	if c.Contains(addr) {
		return false
	}
	set, tag := c.index(addr)
	c.fill(set, tag, false, true)
	c.stats.Prefetches++
	return true
}

// Invalidate drops addr's line, reporting whether it was present and dirty.
func (c *SetAssoc) Invalidate(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	s := c.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			present, dirty = true, s[i].dirty
			copy(s[i:], s[i+1:])
			c.sets[set] = s[:len(s)-1]
			return
		}
	}
	return
}

// Flush invalidates everything, returning the number of dirty lines that
// would be written back.
func (c *SetAssoc) Flush() (writebacks int) {
	for i := range c.sets {
		for _, ln := range c.sets[i] {
			if ln.valid && ln.dirty {
				writebacks++
			}
		}
		c.sets[i] = nil
	}
	return
}

// Occupancy reports the number of valid lines.
func (c *SetAssoc) Occupancy() int {
	var n int
	for _, s := range c.sets {
		for _, ln := range s {
			if ln.valid {
				n++
			}
		}
	}
	return n
}
