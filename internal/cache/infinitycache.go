package cache

import (
	"fmt"

	"repro/internal/sim"
)

// InfinityCache is the MI300 memory-side cache (§IV.D): one slice per
// memory channel (2 MB each, 256 MB total on MI300A). As a memory-side
// cache it sits between the fabric and the HBM channels and does not
// participate in coherence; its job is bandwidth amplification — hits are
// served at the cache's (higher) bandwidth instead of the channel's HBM
// bandwidth — plus a hardware stream prefetcher to cut latency.
type InfinityCache struct {
	slices []*SetAssoc
	// sliceBW is per-slice bandwidth in bytes/sec (aggregate/slices).
	sliceBW float64
	// hitLatency is the slice access latency; missLatency is added HBM
	// array latency and is owned by the HBM model.
	hitLatency sim.Time
	// prefetch enables the per-slice stream prefetcher.
	prefetch bool
	// streams tracks the last line address per slice for stream detection.
	streams []int64
	// busyUntil per slice models slice port occupancy.
	busyUntil []sim.Time
	lineSize  int64
	// accesses counts Access calls. Slice accounting demands that every
	// access registered exactly one hit or miss across the slices —
	// accesses == Σ (hits + misses) — which the audit layer checks.
	accesses uint64
}

// NewInfinityCache builds slices caches of sliceBytes each, sharing
// totalBW evenly.
func NewInfinityCache(slices int, sliceBytes int64, totalBW float64, hitLatency sim.Time, prefetch bool) *InfinityCache {
	if slices <= 0 {
		panic(fmt.Sprintf("cache: invariant violated: an Infinity Cache needs at least one slice (got %d)", slices))
	}
	const lineSize = 128
	ic := &InfinityCache{
		sliceBW:    totalBW / float64(slices),
		hitLatency: hitLatency,
		prefetch:   prefetch,
		streams:    make([]int64, slices),
		busyUntil:  make([]sim.Time, slices),
		lineSize:   lineSize,
	}
	for i := 0; i < slices; i++ {
		ic.slices = append(ic.slices, NewSetAssoc(fmt.Sprintf("mall%d", i), sliceBytes, lineSize, 16))
	}
	for i := range ic.streams {
		ic.streams[i] = -1
	}
	return ic
}

// Slices reports the slice count.
func (ic *InfinityCache) Slices() int { return len(ic.slices) }

// TotalBytes reports aggregate capacity.
func (ic *InfinityCache) TotalBytes() int64 {
	return int64(len(ic.slices)) * ic.slices[0].Size()
}

// Stats sums slice counters.
func (ic *InfinityCache) Stats() Stats {
	var s Stats
	for _, sl := range ic.slices {
		st := sl.Stats()
		s.Hits += st.Hits
		s.Misses += st.Misses
		s.Evictions += st.Evictions
		s.Writebacks += st.Writebacks
		s.Prefetches += st.Prefetches
		s.PrefHits += st.PrefHits
	}
	return s
}

// AccessResult describes one memory-side access outcome.
type AccessResult struct {
	Hit  bool
	Done sim.Time
	// Begin is when the slice actually began serving the request — after
	// the hit latency and any port-queue wait behind earlier traffic.
	// Done - Begin is pure service time; Begin - (request arrival) is
	// queueing, which the span-tracing layer reports separately.
	Begin sim.Time
	// HBMBytes is residual traffic that must still go to the HBM channel
	// (the miss fill plus any dirty writeback).
	HBMBytes int64
}

// Access serves nbytes at addr against the slice paired with channel ch.
// On a hit the data comes from the slice at slice bandwidth; on a miss the
// caller must move HBMBytes to/from the HBM channel. The stream prefetcher
// pulls the next line on detected sequential misses.
func (ic *InfinityCache) Access(start sim.Time, ch int, addr, nbytes int64, write bool) AccessResult {
	if ch < 0 || ch >= len(ic.slices) {
		panic(fmt.Sprintf("cache: invariant violated: slice index %d outside [0, %d) — the interleave hash must stay in range", ch, len(ic.slices)))
	}
	ic.accesses++
	sl := ic.slices[ch]
	res := sl.Access(addr, write)

	// Slice port occupancy at slice bandwidth.
	begin := start + ic.hitLatency
	if ic.busyUntil[ch] > begin {
		begin = ic.busyUntil[ch]
	}
	done := begin + sim.FromSeconds(float64(nbytes)/ic.sliceBW)
	ic.busyUntil[ch] = done

	out := AccessResult{Hit: res.Hit, Done: done, Begin: begin}
	if !res.Hit {
		out.HBMBytes = ic.lineSize
		if res.Writeback {
			out.HBMBytes += ic.lineSize
		}
	}
	// Stream prefetch: a detected sequential run (on hits or misses)
	// keeps pulling the next line, so a steady stream converges to hits.
	if ic.prefetch {
		lineAddr := addr / ic.lineSize
		if ic.streams[ch] == lineAddr-1 || ic.streams[ch] == lineAddr {
			if sl.Prefetch((lineAddr + 1) * ic.lineSize) {
				out.HBMBytes += ic.lineSize
			}
		}
		ic.streams[ch] = lineAddr
	}
	return out
}

// Accesses reports total Access calls — the "request" side of the slice
// accounting ledger that Σ (hits + misses) must match.
func (ic *InfinityCache) Accesses() uint64 { return ic.accesses }

// HitRate reports the aggregate hit fraction.
func (ic *InfinityCache) HitRate() float64 {
	s := ic.Stats()
	return s.HitRate()
}

// ResetStats zeroes counters and occupancy (contents retained).
func (ic *InfinityCache) ResetStats() {
	for i, sl := range ic.slices {
		sl.ResetStats()
		ic.busyUntil[i] = 0
	}
	ic.accesses = 0
}

// EffectiveBW reports the bandwidth-amplified effective memory bandwidth
// for a given hit rate: hits at cache bandwidth, misses at HBM bandwidth.
// This is the quantity behind the paper's "up to 17 TB/s" claim.
func EffectiveBW(hitRate, cacheBW, hbmBW float64) float64 {
	if hitRate < 0 {
		hitRate = 0
	}
	if hitRate > 1 {
		hitRate = 1
	}
	// Harmonic combination: time per byte is the blend of the two paths.
	tb := hitRate/cacheBW + (1-hitRate)/hbmBW
	return 1 / tb
}
