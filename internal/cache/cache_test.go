package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSetAssocHitAfterFill(t *testing.T) {
	c := NewSetAssoc("l1", 32*1024, 128, 8)
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("warm access missed")
	}
	if r := c.Access(0x1000+64, false); !r.Hit {
		t.Error("same-line access missed")
	}
	if r := c.Access(0x1000+128, false); r.Hit {
		t.Error("next-line access hit without fill")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	// 2-way, 2 sets, 128B lines: total 512B.
	c := NewSetAssoc("tiny", 512, 128, 2)
	// Three lines mapping to set 0 (line addresses 0, 2, 4).
	c.Access(0*128, false)
	c.Access(2*128, false)
	c.Access(0*128, false) // touch line 0: now MRU
	c.Access(4*128, false) // evicts line 2 (LRU)
	if !c.Contains(0 * 128) {
		t.Error("MRU line evicted")
	}
	if c.Contains(2 * 128) {
		t.Error("LRU line survived")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestSetAssocWritebackOnDirtyEviction(t *testing.T) {
	c := NewSetAssoc("tiny", 256, 128, 1) // direct-mapped, 2 sets
	c.Access(0, true)                     // dirty line at set 0
	r := c.Access(2*128, false)           // conflicts with set 0
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Errorf("expected writeback of addr 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Error("writeback not counted")
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	c := NewSetAssoc("l1", 1024, 128, 2)
	c.Access(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("Invalidate = %v, %v", present, dirty)
	}
	if c.Contains(0) {
		t.Error("line survived invalidate")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("double invalidate found line")
	}
}

func TestSetAssocFlush(t *testing.T) {
	c := NewSetAssoc("l1", 2048, 128, 2)
	c.Access(0, true)
	c.Access(128, false)
	c.Access(256, true)
	if wb := c.Flush(); wb != 2 {
		t.Errorf("Flush writebacks = %d, want 2", wb)
	}
	if c.Occupancy() != 0 {
		t.Error("Flush left lines")
	}
}

func TestSetAssocBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets did not panic")
		}
	}()
	NewSetAssoc("bad", 3*128, 128, 1)
}

// Property: occupancy never exceeds capacity and hit+miss == accesses.
func TestSetAssocInvariantsProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := NewSetAssoc("p", 4096, 128, 4)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(int64(a), w)
		}
		if c.Occupancy() > 32 { // 4096/128
			return false
		}
		st := c.Stats()
		return st.Hits+st.Misses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an access immediately after an access to the same line hits.
func TestSetAssocTemporalLocalityProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewSetAssoc("p", 64*1024, 128, 8)
		for _, a := range addrs {
			c.Access(int64(a), false)
			if r := c.Access(int64(a), false); !r.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInfinityCacheGeometry(t *testing.T) {
	// MI300A: 128 slices × 2 MiB = 256 MiB.
	ic := NewInfinityCache(128, 2<<20, 17e12, 20*sim.Nanosecond, true)
	if got := ic.TotalBytes(); got != 256<<20 {
		t.Errorf("TotalBytes = %d, want 256 MiB", got)
	}
	if ic.Slices() != 128 {
		t.Errorf("Slices = %d", ic.Slices())
	}
}

func TestInfinityCacheHitServesWithoutHBM(t *testing.T) {
	ic := NewInfinityCache(4, 2<<20, 1e12, 0, false)
	r1 := ic.Access(0, 0, 0, 128, false)
	if r1.Hit || r1.HBMBytes == 0 {
		t.Errorf("cold access: %+v", r1)
	}
	r2 := ic.Access(r1.Done, 0, 0, 128, false)
	if !r2.Hit || r2.HBMBytes != 0 {
		t.Errorf("warm access: %+v", r2)
	}
}

func TestInfinityCacheStreamPrefetch(t *testing.T) {
	ic := NewInfinityCache(1, 2<<20, 1e12, 0, true)
	var now sim.Time
	// Sequential line misses should trigger next-line prefetches, so
	// after a warmup the stream starts hitting on prefetched lines.
	for i := int64(0); i < 64; i++ {
		r := ic.Access(now, 0, i*128, 128, false)
		now = r.Done
	}
	st := ic.Stats()
	if st.Prefetches == 0 {
		t.Fatal("stream prefetcher never fired")
	}
	if st.PrefHits == 0 {
		t.Fatal("prefetched lines never hit")
	}
	if st.HitRate() < 0.4 {
		t.Errorf("sequential stream hit rate = %.2f, want >= 0.4 with prefetch", st.HitRate())
	}
}

func TestInfinityCacheNoPrefetchLowerHitRate(t *testing.T) {
	with := NewInfinityCache(1, 2<<20, 1e12, 0, true)
	without := NewInfinityCache(1, 2<<20, 1e12, 0, false)
	for i := int64(0); i < 256; i++ {
		with.Access(0, 0, i*128, 128, false)
		without.Access(0, 0, i*128, 128, false)
	}
	if with.HitRate() <= without.HitRate() {
		t.Errorf("prefetch hit rate %.2f should exceed no-prefetch %.2f",
			with.HitRate(), without.HitRate())
	}
}

func TestEffectiveBW(t *testing.T) {
	// At 100% hit rate the effective BW is the cache BW; at 0% the HBM BW.
	if got := EffectiveBW(1, 17e12, 5.3e12); got != 17e12 {
		t.Errorf("EffectiveBW(1) = %g", got)
	}
	if got := EffectiveBW(0, 17e12, 5.3e12); got != 5.3e12 {
		t.Errorf("EffectiveBW(0) = %g", got)
	}
	mid := EffectiveBW(0.5, 17e12, 5.3e12)
	if mid <= 5.3e12 || mid >= 17e12 {
		t.Errorf("EffectiveBW(0.5) = %g, want between HBM and cache BW", mid)
	}
	// Clamping.
	if EffectiveBW(-1, 17e12, 5.3e12) != 5.3e12 || EffectiveBW(2, 17e12, 5.3e12) != 17e12 {
		t.Error("EffectiveBW did not clamp")
	}
}

// Property: EffectiveBW is monotonic in hit rate.
func TestEffectiveBWMonotonicProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		ha, hb := float64(a)/255, float64(b)/255
		if ha > hb {
			ha, hb = hb, ha
		}
		return EffectiveBW(ha, 17e12, 5.3e12) <= EffectiveBW(hb, 17e12, 5.3e12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetAssocAccess(b *testing.B) {
	c := NewSetAssoc("l2", 4<<20, 128, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i*64)%(8<<20), i%3 == 0)
	}
}
