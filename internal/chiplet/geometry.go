// Package chiplet models the physical construction of the MI300 package
// (§V): die outlines and floorplans, hybrid-bond pad (BPM) and TSV site
// coordinates, IOD mirroring and rotation, the signal-TSV replication that
// lets non-mirrored CCDs/XCDs land on mirrored IODs (Fig. 9), the uniform
// power/ground TSV grid shared by both chiplet types (Fig. 10), and the
// USR PHY TX/RX pairing across adjacent IODs. Everything is exact integer
// micrometer geometry, so alignment checks are equality, not epsilon.
package chiplet

import "fmt"

// Point is a position in micrometers.
type Point struct {
	X, Y int
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Rect is an axis-aligned rectangle (micrometers), origin at lower-left.
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether p lies within r (inclusive lower, exclusive
// upper edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X < r.X+r.W && p.Y >= r.Y && p.Y < r.Y+r.H
}

// Center reports the rectangle's center.
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// Area reports the area in µm².
func (r Rect) Area() int64 { return int64(r.W) * int64(r.H) }

// Overlaps reports whether two rectangles intersect with positive area.
func (r Rect) Overlaps(o Rect) bool {
	return r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// Orientation describes how a die instance is placed relative to its
// physical design: optionally mirrored (a distinct tapeout, §V.C) and
// optionally rotated 180° (a placement choice).
type Orientation struct {
	Mirrored bool // mirrored physical design (about the vertical axis)
	Rot180   bool // placed rotated 180°
}

// String names the orientation.
func (o Orientation) String() string {
	switch {
	case o.Mirrored && o.Rot180:
		return "mirrored+rot180"
	case o.Mirrored:
		return "mirrored"
	case o.Rot180:
		return "rot180"
	default:
		return "normal"
	}
}

// AllOrientations enumerates the four placements.
func AllOrientations() []Orientation {
	return []Orientation{
		{},
		{Mirrored: true},
		{Rot180: true},
		{Mirrored: true, Rot180: true},
	}
}

// Apply transforms a design-coordinate point into placed coordinates for a
// die of size w×h under the orientation. Mirroring reflects about the
// vertical center line; rotation maps (x,y) to (w-x, h-y). Both are
// involutions, and together they commute.
func (o Orientation) Apply(p Point, w, h int) Point {
	if o.Mirrored {
		p.X = w - p.X
	}
	if o.Rot180 {
		p.X = w - p.X
		p.Y = h - p.Y
	}
	return p
}

// ApplyRect transforms a design-coordinate rectangle into placed
// coordinates.
func (o Orientation) ApplyRect(r Rect, w, h int) Rect {
	a := o.Apply(Point{r.X, r.Y}, w, h)
	b := o.Apply(Point{r.X + r.W, r.Y + r.H}, w, h)
	if a.X > b.X {
		a.X, b.X = b.X, a.X
	}
	if a.Y > b.Y {
		a.Y, b.Y = b.Y, a.Y
	}
	return Rect{a.X, a.Y, b.X - a.X, b.Y - a.Y}
}

// Compose returns the orientation equivalent to applying first o, then p.
func (o Orientation) Compose(p Orientation) Orientation {
	return Orientation{
		Mirrored: o.Mirrored != p.Mirrored,
		Rot180:   o.Rot180 != p.Rot180,
	}
}

// PointSet is a set of exact pad/TSV positions.
type PointSet map[Point]struct{}

// NewPointSet builds a set from points.
func NewPointSet(pts ...Point) PointSet {
	s := make(PointSet, len(pts))
	for _, p := range pts {
		s[p] = struct{}{}
	}
	return s
}

// Add inserts p.
func (s PointSet) Add(p Point) { s[p] = struct{}{} }

// Has reports membership.
func (s PointSet) Has(p Point) bool {
	_, ok := s[p]
	return ok
}

// Union merges o into s.
func (s PointSet) Union(o PointSet) {
	for p := range o {
		s[p] = struct{}{}
	}
}

// Len reports the set size.
func (s PointSet) Len() int { return len(s) }

// MissingFrom returns the points of s absent from super (empty slice when
// s ⊆ super).
func (s PointSet) MissingFrom(super PointSet) []Point {
	var missing []Point
	for p := range s {
		if !super.Has(p) {
			missing = append(missing, p)
		}
	}
	return missing
}

// Grid generates a uniform grid of points with the given pitch, centered
// in the w×h area: the P/G TSV planning pattern of §V.D. Centering makes
// the grid invariant under mirroring and 180° rotation, which is exactly
// the property that lets one grid serve every IOD/chiplet permutation.
func Grid(w, h, pitch int) PointSet {
	if pitch <= 0 {
		panic(fmt.Sprintf("chiplet: invariant violated: grid pitch must be positive (got %d)", pitch))
	}
	nx := w / pitch
	ny := h / pitch
	x0 := (w - (nx-1)*pitch) / 2
	y0 := (h - (ny-1)*pitch) / 2
	s := make(PointSet, nx*ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			s.Add(Point{x0 + i*pitch, y0 + j*pitch})
		}
	}
	return s
}
