package chiplet

import "fmt"

// This file models the 3D hybrid-bonding interface of Fig. 11: both
// V-Cache and MI300 use the same 9 µm-pitch direct-contact bond pads, but
// they differ in what the bond-pad via (BPV) lands on. In V-Cache the BPV
// connects to the SRAM die's top-level metal — fine for a low-power cache
// die. In MI300A the stacked CCDs and XCDs draw far more current, so the
// BPV lands directly on the low-resistance aluminum redistribution layer
// (RDL). This model quantifies that choice as a per-pad resistance and an
// IR-drop check at chiplet power levels.

// BondTarget is what the bond-pad via lands on.
type BondTarget int

const (
	// BondToTopMetal is the V-Cache-generation connection (Fig. 11a).
	BondToTopMetal BondTarget = iota
	// BondToRDL is the MI300 connection (Fig. 11b).
	BondToRDL
)

// String names the target.
func (t BondTarget) String() string {
	if t == BondToTopMetal {
		return "top-metal"
	}
	return "RDL"
}

// BondInterface describes one hybrid-bonded power-delivery interface.
type BondInterface struct {
	Name string
	// PitchUM is the bond pad pitch (9 µm for V-Cache and MI300, §V.A).
	PitchUM float64
	// Target selects the Fig. 11 variant.
	Target BondTarget
	// PadResistanceOhm is per-pad series resistance: bond + BPV + the
	// landing layer's spreading resistance. RDL landing roughly halves
	// it versus thin top-level metal.
	PadResistanceOhm float64
}

// VCacheBond returns the Fig. 11(a) V-Cache-generation interface.
func VCacheBond() BondInterface {
	return BondInterface{
		Name:             "V-Cache (Zen 3)",
		PitchUM:          9,
		Target:           BondToTopMetal,
		PadResistanceOhm: 0.52,
	}
}

// MI300Bond returns the Fig. 11(b) MI300 interface: BPV direct to the
// aluminum RDL, "more effective for delivering power to the compute
// chiplets".
func MI300Bond() BondInterface {
	return BondInterface{
		Name:             "MI300 (RDL landing)",
		PitchUM:          9,
		Target:           BondToRDL,
		PadResistanceOhm: 0.21,
	}
}

// PowerPadsUnder reports how many P/G bond pads serve a chiplet footprint
// of areaMM2, assuming the given fraction of the pad grid is assigned to
// power/ground (the rest is signal/spare).
func (b BondInterface) PowerPadsUnder(areaMM2, pgFraction float64) float64 {
	if b.PitchUM <= 0 {
		return 0
	}
	padsPerMM2 := 1e6 / (b.PitchUM * b.PitchUM)
	return padsPerMM2 * areaMM2 * pgFraction
}

// IRDrop reports the supply droop in volts for delivering watts to a
// chiplet of areaMM2 at supplyVolts, with pgFraction of the pads carrying
// power. Half the P/G pads carry current each way, in parallel.
func (b BondInterface) IRDrop(watts, areaMM2, supplyVolts, pgFraction float64) (float64, error) {
	pads := b.PowerPadsUnder(areaMM2, pgFraction)
	if pads < 2 {
		return 0, fmt.Errorf("chiplet: no power pads under %.1f mm²", areaMM2)
	}
	current := watts / supplyVolts
	// Power and ground each use half the pads; resistances in parallel,
	// and the current traverses both networks in series.
	rEff := 2 * b.PadResistanceOhm / (pads / 2)
	return current * rEff, nil
}

// MaxPowerAtDroop reports the deliverable watts for a droop budget (as a
// fraction of supply, e.g. 0.05 for 5%).
func (b BondInterface) MaxPowerAtDroop(areaMM2, supplyVolts, pgFraction, droopFrac float64) float64 {
	pads := b.PowerPadsUnder(areaMM2, pgFraction)
	if pads < 2 {
		return 0
	}
	rEff := 2 * b.PadResistanceOhm / (pads / 2)
	maxCurrent := supplyVolts * droopFrac / rEff
	return maxCurrent * supplyVolts
}

// ThermalAdvantage reports the relative thermal conduction of hybrid
// bonding versus microbump stacking (§V.A: "superior thermal conduction
// properties compared to microbump-based 3D stacking"). Direct
// metal-to-metal contact plus dielectric fusion conducts roughly 3x
// better than a bump array with underfill; this constant feeds the
// thermal model's vertical conductance for stacked chiplets.
func ThermalAdvantage() float64 { return 3.0 }
