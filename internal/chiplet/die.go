package chiplet

import "fmt"

// DieKind classifies dies in the package.
type DieKind int

const (
	DieIOD DieKind = iota
	DieXCD
	DieCCD
	DieHBM
)

// String names the die kind.
func (k DieKind) String() string {
	switch k {
	case DieIOD:
		return "IOD"
	case DieXCD:
		return "XCD"
	case DieCCD:
		return "CCD"
	case DieHBM:
		return "HBM"
	default:
		return fmt.Sprintf("DieKind(%d)", int(k))
	}
}

// DieSpec is the physical design of one die: outline and bond-pad-metal
// (BPM) signal pad positions in design coordinates (µm, origin lower-left).
// Power/ground pads are not stored per die: both CCDs and XCDs adopt the
// IOD's uniform P/G TSV grid (§V.D), so their P/G landing positions are
// the grid points under the die's footprint.
type DieSpec struct {
	Name       string
	Kind       DieKind
	W, H       int
	SignalPads PointSet
}

// padGrid builds a rectangular pad cluster: cols×rows pads at pitch,
// anchored at origin.
func padGrid(origin Point, cols, rows, pitch int) PointSet {
	s := make(PointSet, cols*rows)
	for i := 0; i < cols; i++ {
		for j := 0; j < rows; j++ {
			s.Add(Point{origin.X + i*pitch, origin.Y + j*pitch})
		}
	}
	return s
}

// XCDDie returns the model XCD physical design. The XCD was designed for
// MI300, so its 3D interface is a single deliberate cluster placed to meet
// the IOD below (§V.B); the cluster is intentionally off-center so that
// orientation genuinely matters in alignment checks.
func XCDDie() *DieSpec {
	return &DieSpec{
		Name: "XCD", Kind: DieXCD,
		W: 11000, H: 8500,
		SignalPads: padGrid(Point{1500, 1500}, 8, 5, 700),
	}
}

// CCDDie returns the model "Zen 4" CCD: a reused EPYC die where the 3D
// interfaces were squeezed into floorplan whitespace (Fig. 8a), hence two
// small irregular clusters rather than one tidy block.
func CCDDie() *DieSpec {
	d := &DieSpec{
		Name: "CCD", Kind: DieCCD,
		W: 7000, H: 6000,
		SignalPads: padGrid(Point{800, 700}, 4, 3, 600),
	}
	d.SignalPads.Union(padGrid(Point{4600, 3700}, 3, 2, 600))
	return d
}

// HBMDie returns the model HBM stack outline (no 3D pads: HBM attaches to
// the interposer with microbumps, not hybrid bonding).
func HBMDie() *DieSpec {
	return &DieSpec{Name: "HBM", Kind: DieHBM, W: 8000, H: 9500}
}

// PlacedPads returns the die's signal pads in placed coordinates for a
// chiplet sitting at origin with the given orientation.
func (d *DieSpec) PlacedPads(origin Point, o Orientation) PointSet {
	out := make(PointSet, len(d.SignalPads))
	for p := range d.SignalPads {
		out.Add(origin.Add(o.Apply(p, d.W, d.H)))
	}
	return out
}
