package chiplet

import (
	"testing"
	"testing/quick"
)

func TestOrientationTransforms(t *testing.T) {
	p := Point{100, 200}
	w, h := 1000, 800
	if got := (Orientation{}).Apply(p, w, h); got != p {
		t.Errorf("identity = %v", got)
	}
	if got := (Orientation{Mirrored: true}).Apply(p, w, h); got != (Point{900, 200}) {
		t.Errorf("mirror = %v", got)
	}
	if got := (Orientation{Rot180: true}).Apply(p, w, h); got != (Point{900, 600}) {
		t.Errorf("rot180 = %v", got)
	}
	if got := (Orientation{Mirrored: true, Rot180: true}).Apply(p, w, h); got != (Point{100, 600}) {
		t.Errorf("mirror+rot = %v", got)
	}
}

// Property: every orientation is an involution when applied twice with the
// same flags... mirror and rot180 are each involutions; applying the full
// orientation twice returns the original point.
func TestOrientationInvolutionProperty(t *testing.T) {
	f := func(x, y uint16, m, r bool) bool {
		w, h := 70000, 50000
		p := Point{int(x), int(y)}
		o := Orientation{Mirrored: m, Rot180: r}
		return o.Apply(o.Apply(p, w, h), w, h) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComposeXorsFlags(t *testing.T) {
	m := Orientation{Mirrored: true}
	r := Orientation{Rot180: true}
	if got := m.Compose(m); got != (Orientation{}) {
		t.Errorf("m∘m = %v", got)
	}
	if got := m.Compose(r); got != (Orientation{Mirrored: true, Rot180: true}) {
		t.Errorf("m∘r = %v", got)
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{10, 10, 100, 50}
	if !r.Contains(Point{10, 10}) || r.Contains(Point{110, 10}) {
		t.Error("Contains edges wrong")
	}
	if r.Center() != (Point{60, 35}) {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Area() != 5000 {
		t.Errorf("Area = %d", r.Area())
	}
	if !r.Overlaps(Rect{100, 40, 20, 20}) {
		t.Error("overlapping rects reported disjoint")
	}
	if r.Overlaps(Rect{110, 10, 20, 20}) {
		t.Error("touching rects reported overlapping")
	}
}

func TestPGGridInvariance(t *testing.T) {
	// §V.D: one uniform P/G TSV grid must line up for every permutation
	// of mirrored/rotated IOD.
	d := NewIODDesign()
	if err := d.CheckPGInvariance(); err != nil {
		t.Fatal(err)
	}
}

func TestPGGridDensity(t *testing.T) {
	d := NewIODDesign()
	g := d.PGGrid()
	// 100µm pitch over 24×20mm: 240×200 TSVs.
	if g.Len() != 240*200 {
		t.Errorf("P/G TSVs = %d, want 48000", g.Len())
	}
	// >1.5 A/mm² over an XCD footprint (93.5 mm²) is > 140 A.
	if amps := d.PGCurrentCapacity(Rect{0, 0, 11000, 8500}); amps < 140 {
		t.Errorf("XCD current capacity = %.1f A, want > 140", amps)
	}
}

func TestAlignmentAllPermutations(t *testing.T) {
	// The Fig. 9 invariant: non-mirrored CCDs and XCDs land on every
	// mirrored/rotated IOD instance.
	d := NewIODDesign()
	for _, o := range AllOrientations() {
		for _, kind := range []ComputeKind{ComputeXCD, ComputeCCD} {
			if err := d.CheckAlignment(o, kind); err != nil {
				t.Errorf("%s/%s: %v", o, kind, err)
			}
		}
	}
}

func TestRedundantTSVsExist(t *testing.T) {
	// Mirroring support requires extra sites beyond what the normal
	// instance uses (the red circles of Fig. 9)...
	d := NewIODDesign()
	red := d.RedundantSites()
	if red.Len() == 0 {
		t.Fatal("no redundant TSV sites; mirroring support is vacuous")
	}
	// ...and the mirrored instance actually uses some of them.
	usedByMirrored := make(PointSet)
	for _, kind := range []ComputeKind{ComputeXCD, ComputeCCD} {
		for _, pc := range d.PlacedChiplets(Orientation{Mirrored: true}, kind) {
			for p := range pc.Pads {
				usedByMirrored.Add(Orientation{Mirrored: true}.Apply(p, d.W, d.H))
			}
		}
	}
	var hits int
	for p := range red {
		if usedByMirrored.Has(p) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("mirrored instance uses none of the redundant sites")
	}
}

func TestAlignmentFailsForForeignDie(t *testing.T) {
	// Sanity: a die whose pads were NOT co-planned with the IOD must not
	// silently align (guards against a vacuously-passing checker).
	d := NewIODDesign()
	rogue := &DieSpec{Name: "rogue", Kind: DieXCD, W: 11000, H: 8500,
		SignalPads: padGrid(Point{1501, 1501}, 8, 5, 700)} // 1µm off
	pads := rogue.PlacedPads(Point{d.xcdSlots[0].X, d.xcdSlots[0].Y}, Orientation{})
	if len(pads.MissingFrom(d.PlacedSites(Orientation{}))) == 0 {
		t.Error("misaligned rogue die passed alignment")
	}
}

func TestUSRPairingAllAdjacencies(t *testing.T) {
	p := AssembleMI300A()
	for _, adj := range adjacency {
		a, b := p.IODs[adj.a], p.IODs[adj.b]
		if err := CheckUSRPairing(p.Design, a.Orient, adj.edge, p.Design, b.Orient); err != nil {
			t.Errorf("%s-%s: %v", a.Name, b.Name, err)
		}
	}
}

func TestUSRPairingFailsWithoutMirrorFix(t *testing.T) {
	// Two normal IODs side by side: A's east TX lanes would face B's
	// east-design lanes on the wrong edge entirely — exactly why the
	// mirrored tapeout exists.
	d := NewIODDesign()
	err := CheckUSRPairing(d, Orientation{}, East, d, Orientation{})
	if err == nil {
		t.Error("two normal IODs paired east-west without mirroring; should fail")
	}
}

func TestAssembleMI300A(t *testing.T) {
	p := AssembleMI300A()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.XCDCount() != 6 || p.CCDCount() != 3 {
		t.Errorf("MI300A = %d XCDs / %d CCDs, want 6/3", p.XCDCount(), p.CCDCount())
	}
	if len(p.HBM) != 8 {
		t.Errorf("HBM stacks = %d, want 8", len(p.HBM))
	}
}

func TestAssembleMI300X(t *testing.T) {
	p := AssembleMI300X()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.XCDCount() != 8 || p.CCDCount() != 0 {
		t.Errorf("MI300X = %d XCDs / %d CCDs, want 8/0", p.XCDCount(), p.CCDCount())
	}
}

func TestModularSwapSharesIODDesign(t *testing.T) {
	// §VII: MI300A and MI300X use the exact same IOD design; only the
	// stacked chiplets differ.
	a, x := AssembleMI300A(), AssembleMI300X()
	if a.Design.SignalTSVs.Len() != x.Design.SignalTSVs.Len() {
		t.Error("MI300A and MI300X IOD designs diverged")
	}
	for i := range a.IODs {
		if a.IODs[i].Orient != x.IODs[i].Orient || a.IODs[i].Offset != x.IODs[i].Offset {
			t.Errorf("IOD %d placement differs between A and X", i)
		}
	}
}

func TestFloorplanComponents(t *testing.T) {
	p := AssembleMI300A()
	counts := map[ComponentKind]int{}
	for _, c := range p.Floorplan() {
		counts[c.Kind]++
	}
	if counts[CompXCD] != 6 || counts[CompCCD] != 3 || counts[CompIOD] != 4 || counts[CompHBM] != 8 {
		t.Errorf("floorplan counts = %v", counts)
	}
	if counts[CompHBMPHY] != 8 {
		t.Errorf("HBM PHYs = %d, want 8", counts[CompHBMPHY])
	}
	// Each IOD has USR on exactly 2 facing edges.
	if counts[CompUSRPHY] != 8 {
		t.Errorf("USR PHY strips = %d, want 8", counts[CompUSRPHY])
	}
	b := p.Bounds()
	if b.W <= 0 || b.H <= 0 {
		t.Error("degenerate bounds")
	}
	for _, c := range p.Floorplan() {
		if c.Rect.X < 0 || c.Rect.Y < 0 || c.Rect.X+c.Rect.W > b.W || c.Rect.Y+c.Rect.H > b.H {
			t.Errorf("%s outside package bounds", c.Name)
		}
	}
}

func TestChipletsWithinIOD(t *testing.T) {
	d := NewIODDesign()
	iod := Rect{0, 0, d.W, d.H}
	for _, o := range AllOrientations() {
		for _, kind := range []ComputeKind{ComputeXCD, ComputeCCD} {
			for _, pc := range d.PlacedChiplets(o, kind) {
				r := pc.Rect
				if r.X < 0 || r.Y < 0 || r.X+r.W > iod.W || r.Y+r.H > iod.H {
					t.Errorf("%s/%s: chiplet %v outside IOD", o, kind, r)
				}
			}
		}
	}
}

// Property: grid points are always invariant under mirroring for
// even-margin geometries.
func TestGridMirrorInvarianceProperty(t *testing.T) {
	f := func(nxRaw, pitchRaw uint8) bool {
		pitch := int(pitchRaw)%50*2 + 10 // even pitch
		nx := int(nxRaw)%50 + 2
		w := nx*pitch + pitch // even margins by construction
		g := Grid(w, w, pitch)
		for p := range g {
			if !g.Has(Point{w - p.X, p.Y}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
