package chiplet

import (
	"fmt"
	"sort"
)

// Edge identifies a die edge in placed coordinates.
type Edge int

const (
	East Edge = iota
	West
	North
	South
)

// String names the edge.
func (e Edge) String() string {
	return [...]string{"east", "west", "north", "south"}[e]
}

// Opposite returns the facing edge.
func (e Edge) Opposite() Edge {
	switch e {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	default:
		return North
	}
}

// USRLane is one lane of an ultra-short-reach PHY on a die edge: its
// position along the edge and its direction. Transmit lanes must land
// opposite receive lanes on the adjacent IOD; the mirrored IOD tapeout
// swaps TX and RX modules to preserve this (Fig. 9 arrows).
type USRLane struct {
	Pos int // coordinate along the edge (y for E/W edges, x for N/S)
	TX  bool
}

// ComputeKind selects which chiplet configuration sits on an IOD.
type ComputeKind int

const (
	// ComputeXCD stacks two XCDs on the IOD.
	ComputeXCD ComputeKind = iota
	// ComputeCCD stacks three CCDs on the IOD.
	ComputeCCD
)

// String names the compute kind.
func (c ComputeKind) String() string {
	if c == ComputeXCD {
		return "2xXCD"
	}
	return "3xCCD"
}

// IODDesign is the single IOD physical design (§V.C: one design, of which
// two instances are mirrored). It carries the superset of chiplet landing
// slots (Fig. 8c), the computed signal-TSV site set with mirroring
// redundancy (Fig. 9), the uniform P/G TSV grid (Fig. 10), USR lanes on
// the east and south design edges, and HBM PHYs on the west design edge.
type IODDesign struct {
	W, H int

	xcdSlots []Rect // design coordinates
	ccdSlots []Rect
	xcdDie   *DieSpec
	ccdDie   *DieSpec

	// SignalTSVs is the full design-coordinate site set, including the
	// redundant sites that only mirrored instances use.
	SignalTSVs PointSet
	// PGPitch is the power/ground TSV grid pitch.
	PGPitch int

	// usrEast / usrSouth are the design-coordinate USR lanes.
	usrEast  []USRLane
	usrSouth []USRLane
	// HBMPHYs are the design-coordinate HBM interface regions (west edge).
	HBMPHYs []Rect
}

// xcdOrientPattern and ccdOrientPattern give chiplet orientations by
// placed left-to-right order: one of the two XCDs and two of the three
// CCDs are rotated 180° (§V.B, Fig. 8).
var (
	xcdOrientPattern = []Orientation{{}, {Rot180: true}}
	ccdOrientPattern = []Orientation{{Rot180: true}, {}, {Rot180: true}}
)

// NewIODDesign constructs the IOD design and computes the signal TSV site
// set as the union of every pad footprint required by: both compute kinds
// (the superset of interfaces), on both the normal and mirrored tapeouts
// (the TSV replication of Fig. 9).
func NewIODDesign() *IODDesign {
	d := &IODDesign{
		W: 24000, H: 20000,
		xcdDie: XCDDie(), ccdDie: CCDDie(),
		xcdSlots: []Rect{
			{X: 800, Y: 5000, W: 11000, H: 8500},
			{X: 12200, Y: 5000, W: 11000, H: 8500},
		},
		ccdSlots: []Rect{
			{X: 1200, Y: 7000, W: 7000, H: 6000},
			{X: 8500, Y: 7000, W: 7000, H: 6000},
			{X: 15800, Y: 7000, W: 7000, H: 6000},
		},
		PGPitch: 100,
		HBMPHYs: []Rect{
			{X: 0, Y: 500, W: 600, H: 9000},
			{X: 0, Y: 10500, W: 600, H: 9000},
		},
	}
	for k := 0; k < 16; k++ {
		d.usrEast = append(d.usrEast, USRLane{Pos: 2000 + k*1000, TX: k%2 == 0})
	}
	for k := 0; k < 20; k++ {
		d.usrSouth = append(d.usrSouth, USRLane{Pos: 2000 + k*1000, TX: k%2 == 0})
	}

	d.SignalTSVs = make(PointSet)
	for _, mirrored := range []bool{false, true} {
		for _, kind := range []ComputeKind{ComputeXCD, ComputeCCD} {
			for _, pc := range d.PlacedChiplets(Orientation{Mirrored: mirrored}, kind) {
				for p := range pc.Pads {
					// Map placed coordinates back into the design
					// database (mirroring is an involution).
					d.SignalTSVs.Add(Orientation{Mirrored: mirrored}.Apply(p, d.W, d.H))
				}
			}
		}
	}
	return d
}

// PlacedChiplet is one chiplet instance on an IOD in placed-local
// coordinates.
type PlacedChiplet struct {
	Die    *DieSpec
	Rect   Rect
	Orient Orientation
	Pads   PointSet
}

// PlacedChiplets reports the chiplet placements for an IOD instance with
// the given orientation and compute kind, in placed-local coordinates.
// Chiplets are never mirrored (§V.C); their left-to-right orientation
// pattern is fixed, and a 180°-rotated IOD carries its chiplets around
// rigidly.
func (d *IODDesign) PlacedChiplets(o Orientation, kind ComputeKind) []PlacedChiplet {
	slots, die, pattern := d.xcdSlots, d.xcdDie, xcdOrientPattern
	if kind == ComputeCCD {
		slots, die, pattern = d.ccdSlots, d.ccdDie, ccdOrientPattern
	}
	// First place under mirroring only, assigning the orientation pattern
	// by placed left-to-right order.
	mirrorOnly := Orientation{Mirrored: o.Mirrored}
	placed := make([]PlacedChiplet, 0, len(slots))
	for _, s := range slots {
		placed = append(placed, PlacedChiplet{Die: die, Rect: mirrorOnly.ApplyRect(s, d.W, d.H)})
	}
	sort.Slice(placed, func(i, j int) bool { return placed[i].Rect.X < placed[j].Rect.X })
	for i := range placed {
		placed[i].Orient = pattern[i]
	}
	// A rotated IOD rotates the whole stack rigidly.
	if o.Rot180 {
		rot := Orientation{Rot180: true}
		for i := range placed {
			placed[i].Rect = rot.ApplyRect(placed[i].Rect, d.W, d.H)
			placed[i].Orient = placed[i].Orient.Compose(rot)
		}
	}
	for i := range placed {
		pc := &placed[i]
		pc.Pads = pc.Die.PlacedPads(Point{pc.Rect.X, pc.Rect.Y}, pc.Orient)
	}
	return placed
}

// PlacedSites reports the signal TSV sites in placed-local coordinates for
// an IOD instance.
func (d *IODDesign) PlacedSites(o Orientation) PointSet {
	out := make(PointSet, len(d.SignalTSVs))
	for p := range d.SignalTSVs {
		out.Add(o.Apply(p, d.W, d.H))
	}
	return out
}

// PGGrid reports the uniform power/ground TSV grid (design == placed
// coordinates for any orientation iff the grid is invariant; see
// CheckPGInvariance).
func (d *IODDesign) PGGrid() PointSet { return Grid(d.W, d.H, d.PGPitch) }

// CheckAlignment verifies that for an IOD instance with orientation o and
// compute kind, every chiplet signal pad lands on a TSV site and every
// P/G grid point under a chiplet footprint exists in the grid (trivially
// true when the grid is orientation-invariant). It returns the first
// misalignment found.
func (d *IODDesign) CheckAlignment(o Orientation, kind ComputeKind) error {
	sites := d.PlacedSites(o)
	for _, pc := range d.PlacedChiplets(o, kind) {
		if missing := pc.Pads.MissingFrom(sites); len(missing) > 0 {
			return fmt.Errorf("chiplet: %s (%s) on %s IOD: %d pads missing TSV sites (first %v)",
				pc.Die.Name, pc.Orient, o, len(missing), missing[0])
		}
	}
	return nil
}

// RedundantSites reports the TSV sites that no normal-orientation instance
// uses under either compute kind — the "red circle" replication of Fig. 9
// that exists solely so non-mirrored chiplets can land on mirrored IODs.
func (d *IODDesign) RedundantSites() PointSet {
	used := make(PointSet)
	for _, kind := range []ComputeKind{ComputeXCD, ComputeCCD} {
		for _, pc := range d.PlacedChiplets(Orientation{}, kind) {
			used.Union(pc.Pads)
		}
	}
	red := make(PointSet)
	for p := range d.SignalTSVs {
		if !used.Has(p) {
			red.Add(p)
		}
	}
	return red
}

// CheckPGInvariance verifies the P/G grid maps onto itself under every
// orientation — the §V.D property that one uniform grid serves every
// permutation of mirrored/rotated IOD, CCD, and XCD.
func (d *IODDesign) CheckPGInvariance() error {
	g := d.PGGrid()
	for _, o := range AllOrientations() {
		for p := range g {
			if !g.Has(o.Apply(p, d.W, d.H)) {
				return fmt.Errorf("chiplet: P/G TSV %v not invariant under %s", p, o)
			}
		}
	}
	return nil
}

// PGCurrentCapacity reports the deliverable current in amps for a chiplet
// footprint, at the §V.D density of >1.5 A/mm² through the TSV grid.
func (d *IODDesign) PGCurrentCapacity(r Rect) float64 {
	areaMM2 := float64(r.Area()) / 1e6
	return 1.5 * areaMM2
}

// PlacedUSR reports the USR lanes of an instance by placed edge. Mirrored
// tapeouts have their TX and RX modules swapped (§V.C) so that every TX
// always faces an RX on the neighbor.
func (d *IODDesign) PlacedUSR(o Orientation) map[Edge][]USRLane {
	out := map[Edge][]USRLane{}
	place := func(designEdge Edge, lanes []USRLane) {
		edge := designEdge
		for _, l := range lanes {
			pos := l.Pos
			tx := l.TX
			if o.Mirrored {
				tx = !tx // mirrored tapeout swaps TX/RX modules
				switch designEdge {
				case East:
					edge = West
				case West:
					edge = East
				default:
					edge = designEdge
					pos = d.W - pos // N/S lanes mirror along x
				}
			}
			if o.Rot180 {
				switch edge {
				case East:
					edge, pos = West, d.H-pos
				case West:
					edge, pos = East, d.H-pos
				case North:
					edge, pos = South, d.W-pos
				case South:
					edge, pos = North, d.W-pos
				}
			}
			out[edge] = append(out[edge], USRLane{Pos: pos, TX: tx})
			edge = designEdge
		}
	}
	place(East, d.usrEast)
	place(South, d.usrSouth)
	for e := range out {
		lanes := out[e]
		sort.Slice(lanes, func(i, j int) bool { return lanes[i].Pos < lanes[j].Pos })
	}
	return out
}

// PlacedHBMPHYs reports the HBM PHY regions in placed coordinates.
func (d *IODDesign) PlacedHBMPHYs(o Orientation) []Rect {
	out := make([]Rect, 0, len(d.HBMPHYs))
	for _, r := range d.HBMPHYs {
		out = append(out, o.ApplyRect(r, d.W, d.H))
	}
	return out
}

// CheckUSRPairing verifies that two adjacent IOD instances present
// complementary lanes on their facing edges: equal counts, equal
// positions, and TX opposite RX for every lane. edgeA is the edge of a
// facing b.
func CheckUSRPairing(a *IODDesign, oa Orientation, edgeA Edge, b *IODDesign, ob Orientation) error {
	lanesA := a.PlacedUSR(oa)[edgeA]
	lanesB := b.PlacedUSR(ob)[edgeA.Opposite()]
	if len(lanesA) == 0 {
		return fmt.Errorf("chiplet: no USR lanes on %s edge (%s IOD)", edgeA, oa)
	}
	if len(lanesA) != len(lanesB) {
		return fmt.Errorf("chiplet: USR lane count mismatch %s/%s: %d vs %d",
			edgeA, edgeA.Opposite(), len(lanesA), len(lanesB))
	}
	for i := range lanesA {
		la, lb := lanesA[i], lanesB[i]
		if la.Pos != lb.Pos {
			return fmt.Errorf("chiplet: USR lane %d misaligned: %d vs %d", i, la.Pos, lb.Pos)
		}
		if la.TX == lb.TX {
			dir := "RX"
			if la.TX {
				dir = "TX"
			}
			return fmt.Errorf("chiplet: USR lane %d at %d: %s faces %s", i, la.Pos, dir, dir)
		}
	}
	return nil
}
