package chiplet

import (
	"testing"
	"testing/quick"
)

func TestBondPitchMatchesPaper(t *testing.T) {
	// §V.A: "dense vertical interconnects (9 µm pitch for both AMD
	// V-Cache products and MI300A)".
	if VCacheBond().PitchUM != 9 || MI300Bond().PitchUM != 9 {
		t.Error("bond pitch must be 9 µm for both generations")
	}
}

func TestRDLLandingLowersResistance(t *testing.T) {
	if MI300Bond().PadResistanceOhm >= VCacheBond().PadResistanceOhm {
		t.Error("RDL landing should lower per-pad resistance (Fig. 11)")
	}
}

func TestIRDropXCDPowerLevels(t *testing.T) {
	// An XCD (~93.5 mm²) drawing 60 W at 0.75 V through the MI300
	// interface should droop only a few millivolts; through the V-Cache
	// interface it droops more than twice as much.
	const area, volts, pg = 93.5, 0.75, 0.25
	m, err := MI300Bond().IRDrop(60, area, volts, pg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VCacheBond().IRDrop(60, area, volts, pg)
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 || m > 0.01 {
		t.Errorf("MI300 droop = %.4f V, want small positive (< 10 mV)", m)
	}
	if v/m < 2.0 || v/m > 3.0 {
		t.Errorf("V-Cache/MI300 droop ratio = %.2f, want ~2.5 (resistance ratio)", v/m)
	}
}

func TestMaxPowerAtDroopOrdering(t *testing.T) {
	const area, volts, pg, droop = 93.5, 0.75, 0.25, 0.03
	m := MI300Bond().MaxPowerAtDroop(area, volts, pg, droop)
	v := VCacheBond().MaxPowerAtDroop(area, volts, pg, droop)
	if m <= v {
		t.Errorf("MI300 deliverable power %.0f W should exceed V-Cache %.0f W", m, v)
	}
	// The MI300 interface must comfortably cover a compute chiplet's
	// worst-case draw (~100 W for an XCD).
	if m < 100 {
		t.Errorf("MI300 interface delivers only %.0f W at %.0f%% droop; XCDs need ~100 W",
			m, droop*100)
	}
}

func TestIRDropErrorsOnNoPads(t *testing.T) {
	if _, err := MI300Bond().IRDrop(10, 0, 0.75, 0.25); err == nil {
		t.Error("zero-area chiplet should error")
	}
}

func TestThermalAdvantage(t *testing.T) {
	if ThermalAdvantage() <= 1 {
		t.Error("hybrid bonding should conduct better than microbumps (§V.A)")
	}
}

// Property: droop scales linearly with power and inversely with area.
func TestIRDropScalingProperty(t *testing.T) {
	f := func(wRaw, aRaw uint8) bool {
		w := float64(wRaw%80) + 10
		a := float64(aRaw%80) + 20
		b := MI300Bond()
		d1, err1 := b.IRDrop(w, a, 0.75, 0.25)
		d2, err2 := b.IRDrop(2*w, a, 0.75, 0.25)
		d3, err3 := b.IRDrop(w, 2*a, 0.75, 0.25)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return d2 > d1 && d3 < d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
