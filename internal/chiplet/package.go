package chiplet

import "fmt"

// ComponentKind classifies floorplan components for power/thermal modeling.
type ComponentKind int

const (
	CompXCD ComponentKind = iota
	CompCCD
	CompIOD // IOD fabric/cache area not under a compute chiplet
	CompHBM
	CompHBMPHY
	CompUSRPHY
)

// String names the component kind.
func (k ComponentKind) String() string {
	return [...]string{"XCD", "CCD", "IOD", "HBM", "HBMPHY", "USRPHY"}[k]
}

// Component is one power-dissipating region of the assembled package, in
// package coordinates (µm).
type Component struct {
	Name string
	Kind ComponentKind
	Rect Rect
}

// IODInstance is one of the four IODs in the assembled package.
type IODInstance struct {
	Name    string
	Orient  Orientation
	Offset  Point // package coordinates of the placed die's lower-left
	Compute ComputeKind
}

// Package is an assembled MI300-class module: four IOD instances in a 2×2
// arrangement on a passive interposer, compute chiplets hybrid-bonded on
// top, and eight HBM stacks along the left and right edges (Fig. 6).
type Package struct {
	Name   string
	Design *IODDesign
	IODs   []IODInstance
	HBM    []Rect // package coordinates
	hbmDie *DieSpec
}

// usrGap is the die-to-die spacing that USR PHYs can span (§V.A: enabled
// by the tight spacing between adjacent IODs).
const usrGap = 100

// assemble builds the 2×2 IOD arrangement with the orientation plan of
// Fig. 9 — two normal and two mirrored instances, one of each rotated 180°:
//
//	A (normal)          B (mirrored)
//	C (mirrored+rot180) D (rot180)
//
// computeKinds assigns chiplet types per IOD in A,B,C,D order.
func assemble(name string, computeKinds [4]ComputeKind) *Package {
	d := NewIODDesign()
	hbm := HBMDie()
	col0 := hbm.W + usrGap      // left IOD column x
	col1 := col0 + d.W + usrGap // right IOD column x
	row1 := d.H + usrGap        // top IOD row y
	orients := []Orientation{
		{},                             // A: top-left
		{Mirrored: true},               // B: top-right
		{Mirrored: true, Rot180: true}, // C: bottom-left
		{Rot180: true},                 // D: bottom-right
	}
	offsets := []Point{
		{col0, row1}, // A
		{col1, row1}, // B
		{col0, 0},    // C
		{col1, 0},    // D
	}
	p := &Package{Name: name, Design: d, hbmDie: hbm}
	for i, n := range []string{"IOD-A", "IOD-B", "IOD-C", "IOD-D"} {
		p.IODs = append(p.IODs, IODInstance{
			Name: n, Orient: orients[i], Offset: offsets[i], Compute: computeKinds[i],
		})
	}
	// Eight HBM stacks: two per IOD along the package's outer left/right
	// edges, each facing one HBM PHY.
	for i, inst := range p.IODs {
		x := 0 // left column stacks sit at x=0
		if inst.Offset.X == col1 {
			x = col1 + d.W + usrGap
		}
		for j, phy := range d.PlacedHBMPHYs(inst.Orient) {
			_ = j
			y := inst.Offset.Y + phy.Y + phy.H/2 - hbm.H/2
			p.HBM = append(p.HBM, Rect{X: x, Y: y, W: hbm.W, H: hbm.H})
		}
		_ = i
	}
	return p
}

// AssembleMI300A builds the MI300A package: three IODs carry XCD pairs
// (six XCDs) and one carries the three CCDs (§IV.A, Fig. 5).
func AssembleMI300A() *Package {
	return assemble("MI300A", [4]ComputeKind{ComputeXCD, ComputeCCD, ComputeXCD, ComputeXCD})
}

// AssembleMI300X builds the MI300X accelerator: the CCD trio is swapped
// for a fourth XCD pair (eight XCDs total), with no other change — the
// modular chiplet swap of §VII / Fig. 16.
func AssembleMI300X() *Package {
	return assemble("MI300X", [4]ComputeKind{ComputeXCD, ComputeXCD, ComputeXCD, ComputeXCD})
}

// adjacency lists the facing IOD pairs in the 2×2 arrangement: index pairs
// with the edge of the first that faces the second.
var adjacency = []struct {
	a, b int
	edge Edge
}{
	{0, 1, East},  // A-B
	{2, 3, East},  // C-D
	{2, 0, North}, // C above^-1 A (C is below A): C's north faces A's south
	{3, 1, North}, // D-B
}

// Validate checks the full physical ruleset: chiplet/TSV alignment on
// every IOD, P/G grid invariance, USR TX/RX pairing on every facing edge,
// HBM stacks present opposite every HBM PHY, and no die overlaps.
func (p *Package) Validate() error {
	if err := p.Design.CheckPGInvariance(); err != nil {
		return err
	}
	for _, inst := range p.IODs {
		if err := p.Design.CheckAlignment(inst.Orient, inst.Compute); err != nil {
			return fmt.Errorf("%s: %w", inst.Name, err)
		}
	}
	for _, adj := range adjacency {
		a, b := p.IODs[adj.a], p.IODs[adj.b]
		if err := CheckUSRPairing(p.Design, a.Orient, adj.edge, p.Design, b.Orient); err != nil {
			return fmt.Errorf("%s/%s: %w", a.Name, b.Name, err)
		}
	}
	// Every HBM PHY must face a stack at its height on the package edge.
	for i, inst := range p.IODs {
		for _, phy := range p.Design.PlacedHBMPHYs(inst.Orient) {
			phyCenter := inst.Offset.Y + phy.Y + phy.H/2
			found := false
			for _, stack := range p.HBM {
				if phyCenter >= stack.Y && phyCenter < stack.Y+stack.H {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("chiplet: %s HBM PHY at y=%d faces no HBM stack", p.IODs[i].Name, phyCenter)
			}
		}
	}
	// No overlapping dies.
	comps := p.Floorplan()
	for i := range comps {
		for j := i + 1; j < len(comps); j++ {
			a, b := comps[i], comps[j]
			// IOD regions legitimately underlie their compute chiplets
			// (3D stacking); only same-level overlaps are errors.
			if a.Kind == CompIOD || b.Kind == CompIOD {
				continue
			}
			if a.Rect.Overlaps(b.Rect) {
				return fmt.Errorf("chiplet: %s overlaps %s", a.Name, b.Name)
			}
		}
	}
	return nil
}

// Bounds reports the package extent.
func (p *Package) Bounds() Rect {
	var maxX, maxY int
	for _, c := range p.Floorplan() {
		if x := c.Rect.X + c.Rect.W; x > maxX {
			maxX = x
		}
		if y := c.Rect.Y + c.Rect.H; y > maxY {
			maxY = y
		}
	}
	return Rect{W: maxX, H: maxY}
}

// Floorplan exports every power-dissipating component in package
// coordinates: compute chiplets, IOD base dies, HBM stacks, and the HBM
// and USR PHY regions whose dissipation shows up so clearly in the
// memory-intensive thermal map (Fig. 12c).
func (p *Package) Floorplan() []Component {
	var out []Component
	d := p.Design
	for i, inst := range p.IODs {
		out = append(out, Component{
			Name: inst.Name, Kind: CompIOD,
			Rect: Rect{X: inst.Offset.X, Y: inst.Offset.Y, W: d.W, H: d.H},
		})
		for j, pc := range d.PlacedChiplets(inst.Orient, inst.Compute) {
			kind := CompXCD
			if pc.Die.Kind == DieCCD {
				kind = CompCCD
			}
			out = append(out, Component{
				Name: fmt.Sprintf("%s.%s%d", inst.Name, pc.Die.Name, j),
				Kind: kind,
				Rect: Rect{X: inst.Offset.X + pc.Rect.X, Y: inst.Offset.Y + pc.Rect.Y, W: pc.Rect.W, H: pc.Rect.H},
			})
		}
		for j, phy := range d.PlacedHBMPHYs(inst.Orient) {
			out = append(out, Component{
				Name: fmt.Sprintf("%s.hbmphy%d", inst.Name, j),
				Kind: CompHBMPHY,
				Rect: Rect{X: inst.Offset.X + phy.X, Y: inst.Offset.Y + phy.Y, W: phy.W, H: phy.H},
			})
		}
		// USR PHY strips along each facing edge.
		for edge, lanes := range d.PlacedUSR(inst.Orient) {
			if len(lanes) == 0 {
				continue
			}
			lo, hi := lanes[0].Pos, lanes[len(lanes)-1].Pos
			var r Rect
			const depth = 400
			switch edge {
			case East:
				r = Rect{X: d.W - depth, Y: lo, W: depth, H: hi - lo}
			case West:
				r = Rect{X: 0, Y: lo, W: depth, H: hi - lo}
			case North:
				r = Rect{X: lo, Y: d.H - depth, W: hi - lo, H: depth}
			case South:
				r = Rect{X: lo, Y: 0, W: hi - lo, H: depth}
			}
			out = append(out, Component{
				Name: fmt.Sprintf("%s.usr.%s", inst.Name, edge),
				Kind: CompUSRPHY,
				Rect: Rect{X: inst.Offset.X + r.X, Y: inst.Offset.Y + r.Y, W: r.W, H: r.H},
			})
		}
		_ = i
	}
	for i, stack := range p.HBM {
		out = append(out, Component{Name: fmt.Sprintf("HBM%d", i), Kind: CompHBM, Rect: stack})
	}
	return out
}

// XCDCount reports how many XCDs the assembly carries.
func (p *Package) XCDCount() int {
	var n int
	for _, inst := range p.IODs {
		if inst.Compute == ComputeXCD {
			n += 2
		}
	}
	return n
}

// CCDCount reports how many CCDs the assembly carries.
func (p *Package) CCDCount() int {
	var n int
	for _, inst := range p.IODs {
		if inst.Compute == ComputeCCD {
			n += 3
		}
	}
	return n
}
