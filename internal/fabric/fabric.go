// Package fabric models the Infinity Fabric interconnect as a generic
// network-on-chip: named nodes joined by directed links with per-link
// bandwidth, latency, and occupancy tracking. Because MI300's physical
// construction spans four IODs, the "NoC" here routinely crosses die
// boundaries (§IV.A); the link kinds (on-die, USR, SerDes, IFOP, PCIe)
// carry the bandwidth and energy characteristics of each crossing.
//
// Timing uses a cut-through occupancy model: a transfer claims each link on
// its path in order, queueing behind earlier traffic (per-link busy
// horizon), paying the link's latency for the header and the serialization
// time for the payload. This reproduces both bandwidth saturation under
// contention and latency accumulation over multi-hop paths (such as
// EHPv4's two-hop CPU→HBM path, §III.B) without flit-level state.
package fabric

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/sim"
)

// ErrPartitioned reports that a destination is unreachable because every
// candidate path crosses at least one downed link. Callers distinguish it
// from topology bugs with errors.Is.
var ErrPartitioned = errors.New("fabric: network partitioned")

// LinkState is the RAS health state of a link.
type LinkState int

const (
	// LinkUp is a healthy link at full bandwidth.
	LinkUp LinkState = iota
	// LinkDerated carries traffic at a fraction of nominal bandwidth
	// (lane retirement, thermal throttling, retraining at lower speed).
	LinkDerated
	// LinkDown carries no traffic; routing must go around it.
	LinkDown
)

// String names the link state.
func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkDerated:
		return "derated"
	case LinkDown:
		return "down"
	default:
		return fmt.Sprintf("LinkState(%d)", int(s))
	}
}

// NodeID identifies a node in the network.
type NodeID int

// NodeKind classifies fabric endpoints for reporting and routing policy.
type NodeKind int

const (
	KindIOD NodeKind = iota
	KindXCD
	KindCCD
	KindHBM
	KindIOPort
	KindHost
	KindOther
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindIOD:
		return "IOD"
	case KindXCD:
		return "XCD"
	case KindCCD:
		return "CCD"
	case KindHBM:
		return "HBM"
	case KindIOPort:
		return "IOPort"
	case KindHost:
		return "Host"
	default:
		return "Other"
	}
}

// Node is a fabric endpoint or switch.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// Link is a directed connection with fixed bandwidth and latency.
type Link struct {
	ID      int
	Name    string
	Kind    config.LinkKind
	Src     NodeID
	Dst     NodeID
	BW      float64  // nominal bytes/sec
	Latency sim.Time // header latency

	state     LinkState
	derate    float64 // effective-BW fraction while LinkDerated, in (0, 1]
	busyUntil sim.Time
	bytes     uint64
	// bytesAtDown freezes the byte counter at the moment the link went
	// LinkDown. While down, bytes must not grow past it: any growth means
	// traffic crossed a dead link over a stale (cached or pre-resolved)
	// path — the audit layer checks this after RAS reroutes.
	bytesAtDown uint64
}

// State reports the link's RAS health state.
func (l *Link) State() LinkState { return l.state }

// EffectiveBW reports the bandwidth the link currently delivers: nominal
// when up, nominal×derate when derated, zero when down.
func (l *Link) EffectiveBW() float64 {
	switch l.state {
	case LinkDown:
		return 0
	case LinkDerated:
		return l.BW * l.derate
	default:
		return l.BW
	}
}

// SerializationTime reports how long the payload occupies the link at its
// current effective bandwidth.
func (l *Link) SerializationTime(bytes int64) sim.Time {
	bw := l.EffectiveBW()
	if bytes <= 0 || bw <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(bytes) / bw)
}

// BytesCarried reports total payload bytes that have crossed the link.
func (l *Link) BytesCarried() uint64 { return l.bytes }

// BytesAtDown reports the byte counter frozen when the link last went
// LinkDown (meaningful only while State() == LinkDown).
func (l *Link) BytesAtDown() uint64 { return l.bytesAtDown }

// BusyUntil reports the link's current occupancy horizon.
func (l *Link) BusyUntil() sim.Time { return l.busyUntil }

// Utilization reports the fraction of [0, horizon] the link spent busy,
// approximated from bytes carried and clamped to [0, 1] (queued traffic can
// push the raw byte-derived ratio past 1.0, which is meaningless as a duty
// cycle and pollutes summary tables).
func (l *Link) Utilization(horizon sim.Time) float64 {
	if horizon <= 0 || l.BW <= 0 {
		return 0
	}
	bw := l.EffectiveBW()
	if bw <= 0 {
		bw = l.BW
	}
	u := float64(l.bytes) / bw / horizon.Seconds()
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// EnergyPJ reports transport energy consumed so far in picojoules.
func (l *Link) EnergyPJ() float64 {
	return float64(l.bytes) * 8 * l.Kind.EnergyPerBit()
}

// Network is a static-topology NoC with deterministic shortest-path routing.
type Network struct {
	nodes []*Node
	links []*Link
	adj   map[NodeID][]*Link
	// routes caches hop-minimal paths keyed by src<<32|dst.
	routes map[int64][]*Link
	// priority links form the high-priority communication channel used
	// for ACE-to-ACE synchronization (§VI.A); keyed like routes.
	priorityLat map[int64]sim.Time
	// injected accumulates bytes×hops for every transfer admitted into
	// the fabric. Byte conservation demands TotalBytes() == injected at
	// drain: every injected byte was carried by exactly the links on its
	// path, none were dropped or double-counted.
	injected uint64
}

// New returns an empty network.
func New() *Network {
	return &Network{
		adj:         make(map[NodeID][]*Link),
		routes:      make(map[int64][]*Link),
		priorityLat: make(map[int64]sim.Time),
	}
}

// AddNode creates a node and returns it.
func (n *Network) AddNode(name string, kind NodeKind) *Node {
	node := &Node{ID: NodeID(len(n.nodes)), Name: name, Kind: kind}
	n.nodes = append(n.nodes, node)
	return node
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return nil
	}
	return n.nodes[id]
}

// NodeByName finds a node by name, or nil.
func (n *Network) NodeByName(name string) *Node {
	for _, node := range n.nodes {
		if node.Name == name {
			return node
		}
	}
	return nil
}

// Nodes returns all nodes.
func (n *Network) Nodes() []*Node { return n.nodes }

// Links returns all directed links.
func (n *Network) Links() []*Link { return n.links }

// Connect adds a bidirectional connection (two directed links) between a
// and b with the given per-direction bandwidth and latency. It returns the
// a→b link.
func (n *Network) Connect(a, b NodeID, kind config.LinkKind, bwPerDir float64, latency sim.Time) *Link {
	fwd := n.addLink(a, b, kind, bwPerDir, latency)
	n.addLink(b, a, kind, bwPerDir, latency)
	n.invalidateCaches()
	return fwd
}

// invalidateCaches drops every derived routing artifact. It must run on any
// topology mutation — adding links or changing link health — or cached
// routes/latencies keep steering traffic over a stale view of the fabric.
func (n *Network) invalidateCaches() {
	n.routes = make(map[int64][]*Link)
	n.priorityLat = make(map[int64]sim.Time)
}

// SetLinkState changes the health of the directed link with the given ID
// and invalidates the route caches so subsequent routing goes around downed
// links. derate is the effective-bandwidth fraction and is only meaningful
// for LinkDerated, where it must be in (0, 1].
func (n *Network) SetLinkState(id int, state LinkState, derate float64) error {
	if id < 0 || id >= len(n.links) {
		return fmt.Errorf("fabric: no link with id %d", id)
	}
	if state == LinkDerated && (derate <= 0 || derate > 1) {
		return fmt.Errorf("fabric: derate %g outside (0, 1]", derate)
	}
	l := n.links[id]
	if state == LinkDown && l.state != LinkDown {
		l.bytesAtDown = l.bytes
	}
	l.state = state
	l.derate = derate
	n.invalidateCaches()
	return nil
}

// SetLinkStateBetween applies SetLinkState to every link joining a and b in
// either direction, returning how many links were changed. Connections are
// bidirectional link pairs, so failing "the link" between two dies means
// failing both directions.
func (n *Network) SetLinkStateBetween(a, b NodeID, state LinkState, derate float64) (int, error) {
	changed := 0
	for _, l := range n.links {
		if (l.Src == a && l.Dst == b) || (l.Src == b && l.Dst == a) {
			if err := n.SetLinkState(l.ID, state, derate); err != nil {
				return changed, err
			}
			changed++
		}
	}
	return changed, nil
}

func (n *Network) addLink(src, dst NodeID, kind config.LinkKind, bw float64, lat sim.Time) *Link {
	if n.Node(src) == nil || n.Node(dst) == nil {
		panic(fmt.Sprintf("fabric: invariant violated: links must join registered nodes (got %d-%d)", src, dst))
	}
	l := &Link{
		ID:   len(n.links),
		Name: fmt.Sprintf("%s->%s", n.nodes[src].Name, n.nodes[dst].Name),
		Kind: kind, Src: src, Dst: dst, BW: bw, Latency: lat,
	}
	n.links = append(n.links, l)
	n.adj[src] = append(n.adj[src], l)
	return l
}

func routeKey(src, dst NodeID) int64 { return int64(src)<<32 | int64(uint32(dst)) }

// Route returns a hop-minimal path from src to dst (ties broken by lowest
// total latency, then by link insertion order for determinism). It returns
// an error if dst is unreachable.
func (n *Network) Route(src, dst NodeID) ([]*Link, error) {
	if src == dst {
		return nil, nil
	}
	key := routeKey(src, dst)
	if p, ok := n.routes[key]; ok {
		return p, nil
	}
	p, err := n.bfs(src, dst)
	if err != nil {
		return nil, err
	}
	n.routes[key] = p
	return p, nil
}

func (n *Network) bfs(src, dst NodeID) ([]*Link, error) {
	type state struct {
		hops int
		lat  sim.Time
		via  *Link
		prev NodeID
	}
	best := map[NodeID]state{src: {}}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			su := best[u]
			links := append([]*Link(nil), n.adj[u]...)
			sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
			for _, l := range links {
				if l.state == LinkDown {
					continue
				}
				cand := state{hops: su.hops + 1, lat: su.lat + l.Latency, via: l, prev: u}
				sv, seen := best[l.Dst]
				if !seen || cand.hops < sv.hops || (cand.hops == sv.hops && cand.lat < sv.lat) {
					best[l.Dst] = cand
					next = append(next, l.Dst)
				}
			}
		}
		frontier = next
	}
	if _, ok := best[dst]; !ok {
		return nil, fmt.Errorf("%w: no route %s -> %s", ErrPartitioned, n.nodes[src].Name, n.nodes[dst].Name)
	}
	var path []*Link
	for at := dst; at != src; {
		s := best[at]
		path = append(path, s.via)
		at = s.prev
	}
	// Reverse into src->dst order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Transfer moves bytes from src to dst starting at start, queueing behind
// earlier traffic on each link. It returns the completion time of the last
// byte at dst.
func (n *Network) Transfer(start sim.Time, src, dst NodeID, bytes int64) (sim.Time, error) {
	return n.TransferObserved(start, src, dst, bytes, nil)
}

// HopObserver receives one callback per link of an observed transfer:
// the link, when its serialization began (after queueing behind earlier
// traffic), and when the payload's tail cleared the link plus its
// latency. The span-tracing layer uses it to record per-link
// serialization child spans without perturbing the timing model.
type HopObserver func(l *Link, txStart, txEnd sim.Time)

// TransferObserved is Transfer with an optional per-hop observer; a nil
// observer makes it exactly Transfer.
func (n *Network) TransferObserved(start sim.Time, src, dst NodeID, bytes int64, obs HopObserver) (sim.Time, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return n.TransferPathObserved(start, path, bytes, obs), nil
}

// TransferPath is Transfer over an explicit path (useful once a route has
// been resolved and reused).
func (n *Network) TransferPath(start sim.Time, path []*Link, bytes int64) sim.Time {
	return n.TransferPathObserved(start, path, bytes, nil)
}

// TransferPathObserved is TransferPath with an optional per-hop observer.
func (n *Network) TransferPathObserved(start sim.Time, path []*Link, bytes int64, obs HopObserver) sim.Time {
	arrive := start
	end := start
	if bytes > 0 {
		n.injected += uint64(bytes) * uint64(len(path))
	}
	for _, l := range path {
		txStart := arrive
		if l.busyUntil > txStart {
			txStart = l.busyUntil
		}
		ser := l.SerializationTime(bytes)
		txEnd := txStart + ser
		l.busyUntil = txEnd
		if bytes > 0 {
			l.bytes += uint64(bytes)
		}
		// Cut-through: the head proceeds after the link latency; the
		// tail arrives when serialization completes downstream.
		arrive = txStart + l.Latency
		if txEnd+l.Latency > end {
			end = txEnd + l.Latency
		}
		if obs != nil {
			obs(l, txStart, txEnd+l.Latency)
		}
	}
	return end
}

// PathLatency reports the no-contention header latency along src->dst.
func (n *Network) PathLatency(src, dst NodeID) (sim.Time, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	var lat sim.Time
	for _, l := range path {
		lat += l.Latency
	}
	return lat, nil
}

// PathBandwidth reports the bottleneck bandwidth along src->dst.
func (n *Network) PathBandwidth(src, dst NodeID) (float64, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	if len(path) == 0 {
		return 0, fmt.Errorf("fabric: zero-hop path has no bandwidth")
	}
	bw := path[0].EffectiveBW()
	for _, l := range path[1:] {
		if b := l.EffectiveBW(); b < bw {
			bw = b
		}
	}
	return bw, nil
}

// Hops reports the hop count from src to dst.
func (n *Network) Hops(src, dst NodeID) (int, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return len(path), nil
}

// Signal models a message on the high-priority communication channel the
// Infinity Fabric provides for ACE-ACE synchronization (§VI.A): it pays
// path latency plus a fixed small per-hop arbitration cost but does not
// queue behind bulk traffic and does not consume link bandwidth.
func (n *Network) Signal(start sim.Time, src, dst NodeID) (sim.Time, error) {
	key := routeKey(src, dst)
	if lat, ok := n.priorityLat[key]; ok {
		return start + lat, nil
	}
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	var lat sim.Time
	for _, l := range path {
		lat += l.Latency + 2*sim.Nanosecond
	}
	n.priorityLat[key] = lat
	return start + lat, nil
}

// TotalEnergyPJ sums transport energy over all links.
func (n *Network) TotalEnergyPJ() float64 {
	var e float64
	for _, l := range n.links {
		e += l.EnergyPJ()
	}
	return e
}

// TotalBytes sums payload bytes over all links (each hop counted).
func (n *Network) TotalBytes() uint64 {
	var b uint64
	for _, l := range n.links {
		b += l.bytes
	}
	return b
}

// InjectedBytes reports the bytes×hops admitted into the fabric — the
// "sent" side of the byte-conservation ledger that TotalBytes must match.
func (n *Network) InjectedBytes() uint64 { return n.injected }

// ResetStats clears per-link occupancy and byte counters, keeping topology.
func (n *Network) ResetStats() {
	for _, l := range n.links {
		l.busyUntil = 0
		l.bytes = 0
		l.bytesAtDown = 0
	}
	n.injected = 0
}
