package fabric

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/sim"
)

// line builds A - B - C with given bandwidths.
func line(t *testing.T, bwAB, bwBC float64) (*Network, NodeID, NodeID, NodeID) {
	t.Helper()
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	c := n.AddNode("C", KindIOD).ID
	n.Connect(a, b, config.LinkUSR, bwAB, 10*sim.Nanosecond)
	n.Connect(b, c, config.LinkUSR, bwBC, 10*sim.Nanosecond)
	return n, a, b, c
}

func TestRouteShortestPath(t *testing.T) {
	n, a, _, c := line(t, 1e12, 1e12)
	path, err := n.Route(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	// Add a direct link; route should now be 1 hop.
	n.Connect(a, c, config.LinkSerDes, 1e11, 50*sim.Nanosecond)
	path, err = n.Route(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Fatalf("after direct link, path length = %d, want 1", len(path))
	}
}

func TestRouteUnreachable(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	if _, err := n.Route(a, b); err == nil {
		t.Error("expected unreachable error")
	}
}

func TestRouteToSelfIsEmpty(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	path, err := n.Route(a, a)
	if err != nil || len(path) != 0 {
		t.Errorf("self route = %v, %v", path, err)
	}
}

func TestTransferSerialization(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindHBM).ID
	n.Connect(a, b, config.LinkOnDie, 1e9, 0) // 1 GB/s, no latency
	end, err := n.Transfer(0, a, b, 1e9)      // 1 GB
	if err != nil {
		t.Fatal(err)
	}
	if got := end.Seconds(); got < 0.999 || got > 1.001 {
		t.Errorf("1 GB over 1 GB/s took %v s, want ~1", got)
	}
}

func TestTransferContentionQueues(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindHBM).ID
	n.Connect(a, b, config.LinkOnDie, 1e9, 0)
	end1, _ := n.Transfer(0, a, b, 1e9)
	end2, _ := n.Transfer(0, a, b, 1e9) // same instant: must queue
	if end2 <= end1 {
		t.Errorf("second transfer finished at %v, not after first %v", end2, end1)
	}
	if got := end2.Seconds(); got < 1.999 || got > 2.001 {
		t.Errorf("queued transfer finished at %v s, want ~2", got)
	}
}

func TestTransferBottleneckBandwidth(t *testing.T) {
	n, a, _, c := line(t, 2e12, 1e11) // BC is 20x slower
	bytes := int64(1e10)
	end, err := n.Transfer(0, a, c, bytes)
	if err != nil {
		t.Fatal(err)
	}
	// Dominated by BC serialization: 1e10 B / 1e11 B/s = 100 ms.
	if got := end.Milliseconds(); got < 99 || got > 102 {
		t.Errorf("bottleneck transfer = %v ms, want ~100", got)
	}
	bw, _ := n.PathBandwidth(a, c)
	if bw != 1e11 {
		t.Errorf("PathBandwidth = %g, want 1e11", bw)
	}
}

func TestPathLatencyAccumulates(t *testing.T) {
	n, a, _, c := line(t, 1e12, 1e12)
	lat, err := n.PathLatency(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 20*sim.Nanosecond {
		t.Errorf("PathLatency = %v, want 20ns", lat)
	}
	hops, _ := n.Hops(a, c)
	if hops != 2 {
		t.Errorf("Hops = %d, want 2", hops)
	}
}

func TestSignalIgnoresBulkTraffic(t *testing.T) {
	n, a, _, c := line(t, 1e12, 1e12)
	// Saturate the links with a huge transfer.
	n.Transfer(0, a, c, 1e12)
	// A priority signal at t=0 must not queue behind it.
	at, err := n.Signal(0, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if at > 100*sim.Nanosecond {
		t.Errorf("priority signal delivered at %v; should not queue behind bulk", at)
	}
}

func TestLinkStatsAndEnergy(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	l := n.Connect(a, b, config.LinkUSR, 1e12, sim.Nanosecond)
	n.Transfer(0, a, b, 1000)
	if l.BytesCarried() != 1000 {
		t.Errorf("BytesCarried = %d", l.BytesCarried())
	}
	// USR: 0.4 pJ/bit × 8000 bits = 3200 pJ.
	if got := l.EnergyPJ(); got != 3200 {
		t.Errorf("EnergyPJ = %g, want 3200", got)
	}
	if n.TotalBytes() != 1000 {
		t.Errorf("TotalBytes = %d", n.TotalBytes())
	}
	n.ResetStats()
	if l.BytesCarried() != 0 || l.BusyUntil() != 0 {
		t.Error("ResetStats did not clear link state")
	}
}

func TestUtilization(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	l := n.Connect(a, b, config.LinkUSR, 1e9, 0)
	n.Transfer(0, a, b, 5e8) // 0.5 s busy
	if u := l.Utilization(sim.Second); u < 0.49 || u > 0.51 {
		t.Errorf("Utilization = %g, want ~0.5", u)
	}
}

func TestNodeLookup(t *testing.T) {
	n := New()
	n.AddNode("iod0", KindIOD)
	x := n.AddNode("xcd0", KindXCD)
	if got := n.NodeByName("xcd0"); got == nil || got.ID != x.ID {
		t.Error("NodeByName failed")
	}
	if n.NodeByName("nope") != nil {
		t.Error("NodeByName returned phantom node")
	}
	if n.Node(NodeID(99)) != nil {
		t.Error("out-of-range Node lookup should be nil")
	}
}

// Property: transfers never complete before their no-contention lower
// bound (serialization at bottleneck + total latency), and later transfers
// on the same path never finish before earlier ones.
func TestTransferLowerBoundProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		n, a, _, c := line(t, 1e12, 5e11)
		lat, _ := n.PathLatency(a, c)
		bw, _ := n.PathBandwidth(a, c)
		var prevEnd sim.Time
		for _, s := range sizes {
			bytes := int64(s)
			end, err := n.Transfer(0, a, c, bytes)
			if err != nil {
				return false
			}
			lower := lat + sim.FromSeconds(float64(bytes)/bw)
			if end < lower {
				return false
			}
			if end < prevEnd {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: routes are symmetric in hop count for symmetric topologies.
func TestRouteSymmetryProperty(t *testing.T) {
	// Build a 2x2 mesh like MI300's four IODs.
	n := New()
	ids := make([]NodeID, 4)
	for i := range ids {
		ids[i] = n.AddNode([]string{"IOD-A", "IOD-B", "IOD-C", "IOD-D"}[i], KindIOD).ID
	}
	n.Connect(ids[0], ids[1], config.LinkUSR, 1.5e12, 5*sim.Nanosecond) // A-B
	n.Connect(ids[2], ids[3], config.LinkUSR, 1.5e12, 5*sim.Nanosecond) // C-D
	n.Connect(ids[0], ids[2], config.LinkUSR, 1.2e12, 5*sim.Nanosecond) // A-C
	n.Connect(ids[1], ids[3], config.LinkUSR, 1.2e12, 5*sim.Nanosecond) // B-D
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			hij, err1 := n.Hops(ids[i], ids[j])
			hji, err2 := n.Hops(ids[j], ids[i])
			if err1 != nil || err2 != nil || hij != hji {
				t.Errorf("asymmetric hops %d<->%d: %d vs %d", i, j, hij, hji)
			}
			if hij > 2 {
				t.Errorf("2x2 mesh should reach any IOD in <=2 hops, got %d", hij)
			}
		}
	}
}

// mesh2x2 builds the MI300-style four-IOD mesh: horizontal links at 1.5
// TB/s, vertical at 1.2 TB/s.
func mesh2x2(t *testing.T) (*Network, []NodeID) {
	t.Helper()
	n := New()
	ids := make([]NodeID, 4)
	for i := range ids {
		ids[i] = n.AddNode([]string{"IOD-A", "IOD-B", "IOD-C", "IOD-D"}[i], KindIOD).ID
	}
	n.Connect(ids[0], ids[1], config.LinkUSR, 1.5e12, 5*sim.Nanosecond) // A-B
	n.Connect(ids[2], ids[3], config.LinkUSR, 1.5e12, 5*sim.Nanosecond) // C-D
	n.Connect(ids[0], ids[2], config.LinkUSR, 1.2e12, 5*sim.Nanosecond) // A-C
	n.Connect(ids[1], ids[3], config.LinkUSR, 1.2e12, 5*sim.Nanosecond) // B-D
	return n, ids
}

// Regression for the stale-route-cache bug: a cached route (and cached
// priority-signal latency) computed before a topology mutation must not
// survive the mutation.
func TestConnectInvalidatesCaches(t *testing.T) {
	n, a, _, c := line(t, 1e12, 1e12)
	if h, _ := n.Hops(a, c); h != 2 {
		t.Fatalf("pre-mutation hops = %d, want 2", h)
	}
	sigBefore, _ := n.Signal(0, a, c) // populates priorityLat cache
	// Mutate the topology after routes were cached: add a direct fast link.
	n.Connect(a, c, config.LinkUSR, 1e12, sim.Nanosecond)
	if h, _ := n.Hops(a, c); h != 1 {
		t.Errorf("post-Connect hops = %d, want 1 (stale route cache)", h)
	}
	sigAfter, _ := n.Signal(0, a, c)
	if sigAfter >= sigBefore {
		t.Errorf("post-Connect signal %v not faster than %v (stale priorityLat cache)", sigAfter, sigBefore)
	}
}

func TestSetLinkStateInvalidatesCachedRoute(t *testing.T) {
	n, ids := mesh2x2(t)
	if h, _ := n.Hops(ids[0], ids[1]); h != 1 {
		t.Fatalf("healthy A->B hops = %d, want 1", h)
	}
	if _, err := n.SetLinkStateBetween(ids[0], ids[1], LinkDown, 0); err != nil {
		t.Fatal(err)
	}
	h, err := n.Hops(ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Errorf("A->B hops after A-B down = %d, want 3 (A-C-D-B)", h)
	}
}

func TestLinkDownReroutesAtLowerBandwidth(t *testing.T) {
	n, ids := mesh2x2(t)
	healthy, err := n.PathBandwidth(ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SetLinkStateBetween(ids[0], ids[1], LinkDown, 0); err != nil {
		t.Fatal(err)
	}
	degraded, err := n.PathBandwidth(ids[0], ids[1])
	if err != nil {
		t.Fatalf("rerouted path should survive: %v", err)
	}
	if !(degraded > 0 && degraded < healthy) {
		t.Errorf("degraded BW %g not strictly between 0 and healthy %g", degraded, healthy)
	}
}

func TestPartitionReturnsTypedError(t *testing.T) {
	n, ids := mesh2x2(t)
	// Isolate IOD-B: both of its connections go down.
	if _, err := n.SetLinkStateBetween(ids[0], ids[1], LinkDown, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SetLinkStateBetween(ids[1], ids[3], LinkDown, 0); err != nil {
		t.Fatal(err)
	}
	_, err := n.Route(ids[0], ids[1])
	if !errors.Is(err, ErrPartitioned) {
		t.Errorf("Route to isolated node = %v, want ErrPartitioned", err)
	}
	if _, err := n.Transfer(0, ids[2], ids[1], 4096); !errors.Is(err, ErrPartitioned) {
		t.Errorf("Transfer to isolated node = %v, want ErrPartitioned", err)
	}
}

func TestLinkDerateSlowsSerialization(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	l := n.Connect(a, b, config.LinkUSR, 1e9, 0)
	end1, _ := n.Transfer(0, a, b, 1e6)
	if err := n.SetLinkState(l.ID, LinkDerated, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := l.EffectiveBW(); got != 5e8 {
		t.Errorf("EffectiveBW at 0.5 derate = %g, want 5e8", got)
	}
	n.ResetStats()
	end2, _ := n.Transfer(0, a, b, 1e6)
	if end2 != 2*end1 {
		t.Errorf("derated transfer = %v, want exactly 2x healthy %v", end2, end1)
	}
	if err := n.SetLinkState(l.ID, LinkDerated, 1.5); err == nil {
		t.Error("derate > 1 should be rejected")
	}
	if err := n.SetLinkState(99, LinkDown, 0); err == nil {
		t.Error("unknown link id should be rejected")
	}
}

// Boundary test for the Utilization clamp: traffic worth 2x the horizon's
// capacity must report exactly 1.0, not 2.0.
func TestUtilizationClampedAtBoundary(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	l := n.Connect(a, b, config.LinkUSR, 1e9, 0)
	n.Transfer(0, a, b, 2e9) // 2 s of traffic into a 1 s horizon
	if u := l.Utilization(sim.Second); u != 1 {
		t.Errorf("over-capacity Utilization = %g, want clamped 1.0", u)
	}
	n.ResetStats()
	n.Transfer(0, a, b, 1e9) // exactly at capacity
	if u := l.Utilization(sim.Second); u != 1 {
		t.Errorf("at-capacity Utilization = %g, want 1.0", u)
	}
	if u := l.Utilization(0); u != 0 {
		t.Errorf("zero-horizon Utilization = %g, want 0", u)
	}
}

func BenchmarkTransfer(b *testing.B) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	c := n.AddNode("C", KindIOD).ID
	mid := n.AddNode("B", KindIOD).ID
	n.Connect(a, mid, config.LinkUSR, 1.5e12, 5*sim.Nanosecond)
	n.Connect(mid, c, config.LinkUSR, 1.5e12, 5*sim.Nanosecond)
	path, _ := n.Route(a, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TransferPath(sim.Time(i), path, 4096)
	}
}
