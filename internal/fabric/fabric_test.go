package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/sim"
)

// line builds A - B - C with given bandwidths.
func line(t *testing.T, bwAB, bwBC float64) (*Network, NodeID, NodeID, NodeID) {
	t.Helper()
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	c := n.AddNode("C", KindIOD).ID
	n.Connect(a, b, config.LinkUSR, bwAB, 10*sim.Nanosecond)
	n.Connect(b, c, config.LinkUSR, bwBC, 10*sim.Nanosecond)
	return n, a, b, c
}

func TestRouteShortestPath(t *testing.T) {
	n, a, _, c := line(t, 1e12, 1e12)
	path, err := n.Route(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	// Add a direct link; route should now be 1 hop.
	n.Connect(a, c, config.LinkSerDes, 1e11, 50*sim.Nanosecond)
	path, err = n.Route(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Fatalf("after direct link, path length = %d, want 1", len(path))
	}
}

func TestRouteUnreachable(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	if _, err := n.Route(a, b); err == nil {
		t.Error("expected unreachable error")
	}
}

func TestRouteToSelfIsEmpty(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	path, err := n.Route(a, a)
	if err != nil || len(path) != 0 {
		t.Errorf("self route = %v, %v", path, err)
	}
}

func TestTransferSerialization(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindHBM).ID
	n.Connect(a, b, config.LinkOnDie, 1e9, 0) // 1 GB/s, no latency
	end, err := n.Transfer(0, a, b, 1e9)      // 1 GB
	if err != nil {
		t.Fatal(err)
	}
	if got := end.Seconds(); got < 0.999 || got > 1.001 {
		t.Errorf("1 GB over 1 GB/s took %v s, want ~1", got)
	}
}

func TestTransferContentionQueues(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindHBM).ID
	n.Connect(a, b, config.LinkOnDie, 1e9, 0)
	end1, _ := n.Transfer(0, a, b, 1e9)
	end2, _ := n.Transfer(0, a, b, 1e9) // same instant: must queue
	if end2 <= end1 {
		t.Errorf("second transfer finished at %v, not after first %v", end2, end1)
	}
	if got := end2.Seconds(); got < 1.999 || got > 2.001 {
		t.Errorf("queued transfer finished at %v s, want ~2", got)
	}
}

func TestTransferBottleneckBandwidth(t *testing.T) {
	n, a, _, c := line(t, 2e12, 1e11) // BC is 20x slower
	bytes := int64(1e10)
	end, err := n.Transfer(0, a, c, bytes)
	if err != nil {
		t.Fatal(err)
	}
	// Dominated by BC serialization: 1e10 B / 1e11 B/s = 100 ms.
	if got := end.Milliseconds(); got < 99 || got > 102 {
		t.Errorf("bottleneck transfer = %v ms, want ~100", got)
	}
	bw, _ := n.PathBandwidth(a, c)
	if bw != 1e11 {
		t.Errorf("PathBandwidth = %g, want 1e11", bw)
	}
}

func TestPathLatencyAccumulates(t *testing.T) {
	n, a, _, c := line(t, 1e12, 1e12)
	lat, err := n.PathLatency(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 20*sim.Nanosecond {
		t.Errorf("PathLatency = %v, want 20ns", lat)
	}
	hops, _ := n.Hops(a, c)
	if hops != 2 {
		t.Errorf("Hops = %d, want 2", hops)
	}
}

func TestSignalIgnoresBulkTraffic(t *testing.T) {
	n, a, _, c := line(t, 1e12, 1e12)
	// Saturate the links with a huge transfer.
	n.Transfer(0, a, c, 1e12)
	// A priority signal at t=0 must not queue behind it.
	at, err := n.Signal(0, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if at > 100*sim.Nanosecond {
		t.Errorf("priority signal delivered at %v; should not queue behind bulk", at)
	}
}

func TestLinkStatsAndEnergy(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	l := n.Connect(a, b, config.LinkUSR, 1e12, sim.Nanosecond)
	n.Transfer(0, a, b, 1000)
	if l.BytesCarried() != 1000 {
		t.Errorf("BytesCarried = %d", l.BytesCarried())
	}
	// USR: 0.4 pJ/bit × 8000 bits = 3200 pJ.
	if got := l.EnergyPJ(); got != 3200 {
		t.Errorf("EnergyPJ = %g, want 3200", got)
	}
	if n.TotalBytes() != 1000 {
		t.Errorf("TotalBytes = %d", n.TotalBytes())
	}
	n.ResetStats()
	if l.BytesCarried() != 0 || l.BusyUntil() != 0 {
		t.Error("ResetStats did not clear link state")
	}
}

func TestUtilization(t *testing.T) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	b := n.AddNode("B", KindIOD).ID
	l := n.Connect(a, b, config.LinkUSR, 1e9, 0)
	n.Transfer(0, a, b, 5e8) // 0.5 s busy
	if u := l.Utilization(sim.Second); u < 0.49 || u > 0.51 {
		t.Errorf("Utilization = %g, want ~0.5", u)
	}
}

func TestNodeLookup(t *testing.T) {
	n := New()
	n.AddNode("iod0", KindIOD)
	x := n.AddNode("xcd0", KindXCD)
	if got := n.NodeByName("xcd0"); got == nil || got.ID != x.ID {
		t.Error("NodeByName failed")
	}
	if n.NodeByName("nope") != nil {
		t.Error("NodeByName returned phantom node")
	}
	if n.Node(NodeID(99)) != nil {
		t.Error("out-of-range Node lookup should be nil")
	}
}

// Property: transfers never complete before their no-contention lower
// bound (serialization at bottleneck + total latency), and later transfers
// on the same path never finish before earlier ones.
func TestTransferLowerBoundProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		n, a, _, c := line(t, 1e12, 5e11)
		lat, _ := n.PathLatency(a, c)
		bw, _ := n.PathBandwidth(a, c)
		var prevEnd sim.Time
		for _, s := range sizes {
			bytes := int64(s)
			end, err := n.Transfer(0, a, c, bytes)
			if err != nil {
				return false
			}
			lower := lat + sim.FromSeconds(float64(bytes)/bw)
			if end < lower {
				return false
			}
			if end < prevEnd {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: routes are symmetric in hop count for symmetric topologies.
func TestRouteSymmetryProperty(t *testing.T) {
	// Build a 2x2 mesh like MI300's four IODs.
	n := New()
	ids := make([]NodeID, 4)
	for i := range ids {
		ids[i] = n.AddNode([]string{"IOD-A", "IOD-B", "IOD-C", "IOD-D"}[i], KindIOD).ID
	}
	n.Connect(ids[0], ids[1], config.LinkUSR, 1.5e12, 5*sim.Nanosecond) // A-B
	n.Connect(ids[2], ids[3], config.LinkUSR, 1.5e12, 5*sim.Nanosecond) // C-D
	n.Connect(ids[0], ids[2], config.LinkUSR, 1.2e12, 5*sim.Nanosecond) // A-C
	n.Connect(ids[1], ids[3], config.LinkUSR, 1.2e12, 5*sim.Nanosecond) // B-D
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			hij, err1 := n.Hops(ids[i], ids[j])
			hji, err2 := n.Hops(ids[j], ids[i])
			if err1 != nil || err2 != nil || hij != hji {
				t.Errorf("asymmetric hops %d<->%d: %d vs %d", i, j, hij, hji)
			}
			if hij > 2 {
				t.Errorf("2x2 mesh should reach any IOD in <=2 hops, got %d", hij)
			}
		}
	}
}

func BenchmarkTransfer(b *testing.B) {
	n := New()
	a := n.AddNode("A", KindIOD).ID
	c := n.AddNode("C", KindIOD).ID
	mid := n.AddNode("B", KindIOD).ID
	n.Connect(a, mid, config.LinkUSR, 1.5e12, 5*sim.Nanosecond)
	n.Connect(mid, c, config.LinkUSR, 1.5e12, 5*sim.Nanosecond)
	path, _ := n.Route(a, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TransferPath(sim.Time(i), path, 4096)
	}
}
