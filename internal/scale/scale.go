// Package scale runs multi-socket scaling studies over the Fig. 18 node
// models: a workload's per-iteration compute/bandwidth demands are divided
// across p sockets, a collective (the iteration's halo exchange or
// gradient reduction) is timed on the node's fabric, and the resulting
// strong-scaling curve shows where the coherent Infinity Fabric topology
// stops paying — the node-level complement to the paper's single-socket
// evaluation.
package scale

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Point is one strong-scaling sample.
type Point struct {
	Sockets int
	// ComputeTime is the divided single-socket workload time.
	ComputeTime sim.Time
	// CommTime is the per-iteration collective cost at this scale.
	CommTime sim.Time
	// Total and Speedup are relative to one socket.
	Total      sim.Time
	Speedup    float64
	Efficiency float64
}

// StrongScale runs w's phases divided across 1..maxSockets sockets of a
// node built by nodeFn, exchanging exchangeBytes per iteration through a
// direct all-reduce. iterations scales the communication count.
func StrongScale(w workload.Workload, mkPlatform func() (*core.Platform, error),
	nodeFn func() (*topology.Node, error), maxSockets, iterations int, exchangeBytes int64) ([]Point, error) {
	if maxSockets < 1 {
		return nil, fmt.Errorf("scale: need at least one socket")
	}
	// Single-socket baseline.
	p1, err := mkPlatform()
	if err != nil {
		return nil, err
	}
	baseSecs, _ := workload.Run(w, p1)
	baseTime := sim.FromSeconds(baseSecs)

	node, err := nodeFn()
	if err != nil {
		return nil, err
	}
	if maxSockets > len(node.Sockets) {
		maxSockets = len(node.Sockets)
	}

	var out []Point
	for p := 1; p <= maxSockets; p++ {
		pt := Point{Sockets: p, ComputeTime: baseTime / sim.Time(p)}
		if p > 1 {
			// Communicator over the first p sockets.
			sub := &topology.Node{Name: node.Name, Sockets: node.Sockets[:p], Host: node.Host}
			for _, c := range node.Connections {
				keep := false
				for _, s := range sub.Sockets {
					if c.A == s.Name {
						keep = true
					}
				}
				ok := c.B == "host"
				for _, s := range sub.Sockets {
					if c.B == s.Name {
						ok = true
					}
				}
				if keep && ok {
					sub.Connections = append(sub.Connections, c)
				}
			}
			comm, err := collective.NewComm(sub)
			if err != nil {
				return nil, err
			}
			var commTotal sim.Time
			var t sim.Time
			for it := 0; it < iterations; it++ {
				r, err := comm.DirectAllReduce(t, exchangeBytes)
				if err != nil {
					return nil, err
				}
				commTotal += r.Time
				t += r.Time
			}
			pt.CommTime = commTotal
		}
		pt.Total = pt.ComputeTime + pt.CommTime
		if pt.Total > 0 {
			pt.Speedup = float64(baseTime) / float64(pt.Total)
			pt.Efficiency = pt.Speedup / float64(p)
		}
		out = append(out, pt)
	}
	return out, nil
}
