package scale

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
)

func mi300a() (*core.Platform, error) { return core.NewPlatform(config.MI300A()) }

func TestStrongScaleComputeHeavy(t *testing.T) {
	// A compute-heavy workload with small exchanges scales nearly
	// linearly across the quad-APU node.
	w := &workload.GROMACS{Atoms: 3_000_000, Steps: 100}
	pts, err := StrongScale(w, mi300a, topology.QuadAPUNode, 4, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 || pts[0].CommTime != 0 {
		t.Errorf("baseline point wrong: %+v", pts[0])
	}
	if pts[3].Speedup < 2.5 {
		t.Errorf("4-socket speedup = %.2f, want > 2.5 for compute-heavy work", pts[3].Speedup)
	}
	// Speedup is monotone in sockets for this regime.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup < pts[i-1].Speedup {
			t.Errorf("speedup regressed at %d sockets", pts[i].Sockets)
		}
	}
}

func TestStrongScaleCommBound(t *testing.T) {
	// A tiny workload with huge per-iteration exchanges stops scaling:
	// communication dominates and efficiency collapses.
	w := &workload.STREAM{Elements: 1 << 22, Iterations: 1}
	pts, err := StrongScale(w, mi300a, topology.QuadAPUNode, 4, 50, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if pts[3].Efficiency > 0.5 {
		t.Errorf("comm-bound efficiency at 4 sockets = %.2f, want collapse", pts[3].Efficiency)
	}
	if pts[3].CommTime <= pts[3].ComputeTime {
		t.Error("communication should dominate this regime")
	}
}

func TestStrongScaleValidation(t *testing.T) {
	w := &workload.STREAM{Elements: 1 << 20, Iterations: 1}
	if _, err := StrongScale(w, mi300a, topology.QuadAPUNode, 0, 1, 1024); err == nil {
		t.Error("zero sockets accepted")
	}
	// Requesting more sockets than the node has clamps.
	pts, err := StrongScale(w, mi300a, topology.QuadAPUNode, 16, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Errorf("clamped points = %d, want 4", len(pts))
	}
}
