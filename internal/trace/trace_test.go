package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSpanAndOrdering(t *testing.T) {
	tr := New()
	tr.Span("late", "step", 0, 0, 10*sim.Microsecond, 20*sim.Microsecond, nil)
	tr.Span("early", "step", 0, 0, 0, 5*sim.Microsecond, nil)
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Name != "early" {
		t.Errorf("events not sorted: %v", ev)
	}
	if ev[1].DurUS != 10 {
		t.Errorf("duration = %v µs, want 10", ev[1].DurUS)
	}
}

func TestSpanSwapsReversedInterval(t *testing.T) {
	tr := New()
	tr.Span("rev", "", 0, 0, 30*sim.Microsecond, 10*sim.Microsecond, nil)
	if err := tr.Validate(); err != nil {
		t.Errorf("reversed interval produced invalid event: %v", err)
	}
	if tr.Events()[0].DurUS != 20 {
		t.Errorf("duration = %v", tr.Events()[0].DurUS)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	tr := New()
	tr.NameProcess(1, "MI300A")
	tr.NameThread(1, 3, "XCD3")
	tr.Span("kernel", "gpu", 1, 3, sim.Microsecond, 4*sim.Microsecond,
		map[string]string{"workgroups": "456"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 metadata + 1 event.
	if len(decoded) != 3 {
		t.Fatalf("decoded %d records, want 3", len(decoded))
	}
	out := buf.String()
	for _, want := range []string{"process_name", "thread_name", "MI300A", "XCD3", "kernel", "workgroups"} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestValidateCatchesBadPhase(t *testing.T) {
	tr := New()
	tr.events = append(tr.events, Event{Name: "bad", Phase: "B"})
	if tr.Validate() == nil {
		t.Error("bad phase not caught")
	}
}

func TestLen(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("new trace not empty")
	}
	tr.Span("a", "", 0, 0, 0, sim.Microsecond, nil)
	if tr.Len() != 1 {
		t.Error("Len wrong")
	}
}
