package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSpanAndOrdering(t *testing.T) {
	tr := New()
	tr.Span("late", "step", 0, 0, 10*sim.Microsecond, 20*sim.Microsecond, nil)
	tr.Span("early", "step", 0, 0, 0, 5*sim.Microsecond, nil)
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Name != "early" {
		t.Errorf("events not sorted: %v", ev)
	}
	if ev[1].DurUS != 10 {
		t.Errorf("duration = %v µs, want 10", ev[1].DurUS)
	}
}

func TestSpanSwapsReversedInterval(t *testing.T) {
	tr := New()
	tr.Span("rev", "", 0, 0, 30*sim.Microsecond, 10*sim.Microsecond, nil)
	if err := tr.Validate(); err != nil {
		t.Errorf("reversed interval produced invalid event: %v", err)
	}
	if tr.Events()[0].DurUS != 20 {
		t.Errorf("duration = %v", tr.Events()[0].DurUS)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	tr := New()
	tr.NameProcess(1, "MI300A")
	tr.NameThread(1, 3, "XCD3")
	tr.Span("kernel", "gpu", 1, 3, sim.Microsecond, 4*sim.Microsecond,
		map[string]string{"workgroups": "456"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 metadata + 1 event.
	if len(decoded) != 3 {
		t.Fatalf("decoded %d records, want 3", len(decoded))
	}
	out := buf.String()
	for _, want := range []string{"process_name", "thread_name", "MI300A", "XCD3", "kernel", "workgroups"} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestValidateCatchesBadPhase(t *testing.T) {
	tr := New()
	tr.events = append(tr.events, Event{Name: "bad", Phase: "B"})
	if tr.Validate() == nil {
		t.Error("bad phase not caught")
	}
}

func TestLen(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("new trace not empty")
	}
	tr.Span("a", "", 0, 0, 0, sim.Microsecond, nil)
	if tr.Len() != 1 {
		t.Error("Len wrong")
	}
}

// goldenTrace builds the fixed trace used by the golden-file test: two
// labeled tracks, events recorded out of start-time order, and args maps
// with multiple keys (so key ordering is exercised too).
func goldenTrace() *Trace {
	tr := New()
	tr.NameProcess(1, "MI300A")
	tr.NameProcess(0, "host")
	tr.NameThread(1, 2, "XCD1")
	tr.NameThread(1, 1, "XCD0")
	tr.NameThread(0, 0, "CPU")
	tr.Span("kernel-b", "gpu", 1, 2, 40*sim.Microsecond, 90*sim.Microsecond,
		map[string]string{"workgroups": "304", "arch": "cdna3"})
	tr.Span("kernel-a", "gpu", 1, 1, 10*sim.Microsecond, 60*sim.Microsecond, nil)
	tr.Span("memcpy", "copy", 0, 0, 0, 10*sim.Microsecond,
		map[string]string{"bytes": "4194304"})
	return tr
}

// TestWriteJSONGolden pins the exported Chrome trace-event JSON byte for
// byte: stable event ordering (by start time), stable track-name
// metadata ordering (by pid, then tid), and stable field/key layout.
// The runner's future trace hooks rely on this format not drifting.
// Regenerate with: go test ./internal/trace -run Golden -update
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/chrome_trace.golden.json"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file %s\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
	// The golden bytes must also be stable across repeated exports of
	// the same logical trace (map iteration must never leak through).
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := goldenTrace().WriteJSON(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatal("repeated WriteJSON produced different bytes")
		}
	}
}

func TestZeroLengthSpanBecomesInstant(t *testing.T) {
	tr := New()
	tr.Span("marker", "sync", 2, 1, 5*sim.Microsecond, 5*sim.Microsecond,
		map[string]string{"why": "signal"})
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	e := ev[0]
	if e.Phase != "i" || e.Scope != "t" {
		t.Errorf("phase/scope = %q/%q, want i/t", e.Phase, e.Scope)
	}
	if e.TsUS != 5 || e.DurUS != 0 {
		t.Errorf("ts/dur = %g/%g, want 5/0", e.TsUS, e.DurUS)
	}
	if e.Args["why"] != "signal" {
		t.Errorf("args = %v", e.Args)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("instant event invalid: %v", err)
	}
}

func TestCounterEvents(t *testing.T) {
	tr := New()
	tr.Counter("hbm.bw", 3, 100*sim.Microsecond, map[string]float64{"value": 1.5e12})
	e := tr.Events()[0]
	if e.Phase != "C" || e.PID != 3 || e.TsUS != 100 {
		t.Errorf("counter event = %+v", e)
	}
	if v, ok := e.Args["value"].(float64); !ok || v != 1.5e12 {
		t.Errorf("counter value = %v", e.Args["value"])
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("counter event invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"C"`) {
		t.Errorf("JSON missing counter phase: %s", buf.String())
	}
}

func TestValidateCounterSeriesNames(t *testing.T) {
	cases := []struct {
		desc string
		ev   Event
	}{
		{"empty series name", Event{Phase: "C", Args: map[string]any{"value": 1.0}}},
		{"no values", Event{Name: "c", Phase: "C"}},
		{"empty value key", Event{Name: "c", Phase: "C", Args: map[string]any{"": 1.0}}},
		{"non-numeric value", Event{Name: "c", Phase: "C", Args: map[string]any{"value": "1"}}},
		{"instant with duration", Event{Name: "i", Phase: "i", DurUS: 3}},
	}
	for _, c := range cases {
		tr := New()
		tr.events = append(tr.events, c.ev)
		if tr.Validate() == nil {
			t.Errorf("%s not caught", c.desc)
		}
	}
}

// flowTrace builds a two-track trace bound by one flow: a root span whose
// flow starts on track 0, steps through a child on track 1, and finishes
// back on the root.
func flowTrace() *Trace {
	tr := New()
	tr.NameProcess(4, "spans")
	tr.NameThread(4, 0, "roots")
	tr.NameThread(4, 1, "hbm")
	tr.Span("mem.read", "mem", 4, 0, 10*sim.Microsecond, 40*sim.Microsecond, nil)
	tr.Span("ch3", "hbm", 4, 1, 20*sim.Microsecond, 35*sim.Microsecond,
		map[string]string{"retry": "false"})
	tr.Flow("s", "mem.read", "mem", 7, 4, 0, 10*sim.Microsecond)
	tr.Flow("t", "ch3", "hbm", 7, 4, 1, 20*sim.Microsecond)
	tr.Flow("f", "mem.read", "mem", 7, 4, 0, 40*sim.Microsecond)
	return tr
}

func TestValidateAcceptsBoundFlow(t *testing.T) {
	if err := flowTrace().Validate(); err != nil {
		t.Errorf("well-formed flow rejected: %v", err)
	}
}

func TestValidateRejectsBadFlows(t *testing.T) {
	span := func(tr *Trace) {
		tr.Span("root", "mem", 0, 0, 10*sim.Microsecond, 40*sim.Microsecond, nil)
	}
	cases := []struct {
		desc  string
		build func(tr *Trace)
	}{
		{"flow with no enclosing span", func(tr *Trace) {
			tr.Flow("s", "orphan", "mem", 1, 0, 0, 99*sim.Microsecond)
		}},
		{"flow on the wrong track", func(tr *Trace) {
			span(tr)
			tr.Flow("s", "root", "mem", 1, 0, 3, 20*sim.Microsecond)
		}},
		{"step before its start", func(tr *Trace) {
			span(tr)
			tr.Flow("t", "root", "mem", 1, 0, 0, 20*sim.Microsecond)
		}},
		{"duplicate start", func(tr *Trace) {
			span(tr)
			tr.Flow("s", "root", "mem", 1, 0, 0, 15*sim.Microsecond)
			tr.Flow("s", "root", "mem", 1, 0, 0, 20*sim.Microsecond)
		}},
		{"non-monotonic timestamps", func(tr *Trace) {
			span(tr)
			tr.Flow("s", "root", "mem", 1, 0, 0, 30*sim.Microsecond)
			tr.Flow("t", "root", "mem", 1, 0, 0, 20*sim.Microsecond)
		}},
		{"continuation after finish", func(tr *Trace) {
			span(tr)
			tr.Flow("s", "root", "mem", 1, 0, 0, 15*sim.Microsecond)
			tr.Flow("f", "root", "mem", 1, 0, 0, 20*sim.Microsecond)
			tr.Flow("t", "root", "mem", 1, 0, 0, 30*sim.Microsecond)
		}},
		{"flow with duration", func(tr *Trace) {
			span(tr)
			tr.events = append(tr.events, Event{Name: "root", Phase: "s", ID: 1, DurUS: 2, TsUS: 15})
		}},
	}
	for _, c := range cases {
		tr := New()
		c.build(tr)
		if tr.Validate() == nil {
			t.Errorf("%s not caught", c.desc)
		}
	}
}

// TestFlowGolden pins the flow-event JSON byte for byte ('s'/'t'/'f'
// phases, id and bp fields); Perfetto's arrow rendering depends on this
// layout. Regenerate with: go test ./internal/trace -run FlowGolden -update
func TestFlowGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := flowTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/flow.golden.json"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("flow JSON drifted from golden file %s\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
