// Package trace exports simulated timelines in the Chrome trace-event
// format (the JSON consumed by chrome://tracing and Perfetto), so program
// step timelines, kernel dispatches, and collective schedules from the
// simulator can be inspected visually. Only the small "complete event"
// ('X') subset is emitted.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Event is one complete ('X') trace event.
type Event struct {
	Name     string `json:"name"`
	Category string `json:"cat,omitempty"`
	Phase    string `json:"ph"`
	// TsUS and DurUS are microseconds, per the trace format.
	TsUS  float64           `json:"ts"`
	DurUS float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// Trace accumulates events and track names.
type Trace struct {
	events []Event
	// processNames and threadNames label tracks in the viewer.
	processNames map[int]string
	threadNames  map[[2]int]string
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{
		processNames: make(map[int]string),
		threadNames:  make(map[[2]int]string),
	}
}

// NameProcess labels a process track (e.g. "MI300A").
func (t *Trace) NameProcess(pid int, name string) { t.processNames[pid] = name }

// NameThread labels a thread track (e.g. "XCD0").
func (t *Trace) NameThread(pid, tid int, name string) {
	t.threadNames[[2]int{pid, tid}] = name
}

// Span records one interval.
func (t *Trace) Span(name, category string, pid, tid int, start, end sim.Time, args map[string]string) {
	if end < start {
		start, end = end, start
	}
	t.events = append(t.events, Event{
		Name: name, Category: category, Phase: "X",
		TsUS:  start.Microseconds(),
		DurUS: (end - start).Microseconds(),
		PID:   pid, TID: tid, Args: args,
	})
}

// Len reports the number of recorded spans.
func (t *Trace) Len() int { return len(t.events) }

// Events returns the recorded spans sorted by start time.
func (t *Trace) Events() []Event {
	out := append([]Event(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TsUS < out[j].TsUS })
	return out
}

// metadata events label tracks in the viewer.
func (t *Trace) metadata() []map[string]any {
	var md []map[string]any
	pids := make([]int, 0, len(t.processNames))
	for pid := range t.processNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		md = append(md, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid,
			"args": map[string]string{"name": t.processNames[pid]},
		})
	}
	keys := make([][2]int, 0, len(t.threadNames))
	for k := range t.threadNames {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		md = append(md, map[string]any{
			"name": "thread_name", "ph": "M", "pid": k[0], "tid": k[1],
			"args": map[string]string{"name": t.threadNames[k]},
		})
	}
	return md
}

// WriteJSON emits the trace in the JSON-array format.
func (t *Trace) WriteJSON(w io.Writer) error {
	all := make([]any, 0, len(t.events)+len(t.processNames)+len(t.threadNames))
	for _, m := range t.metadata() {
		all = append(all, m)
	}
	for _, e := range t.Events() {
		all = append(all, e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(all)
}

// Validate checks structural invariants: non-negative durations and
// phase 'X' on every event.
func (t *Trace) Validate() error {
	for i, e := range t.events {
		if e.DurUS < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative duration", i, e.Name)
		}
		if e.Phase != "X" {
			return fmt.Errorf("trace: event %d (%s) has phase %q", i, e.Name, e.Phase)
		}
	}
	return nil
}
