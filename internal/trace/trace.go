// Package trace exports simulated timelines in the Chrome trace-event
// format (the JSON consumed by chrome://tracing and Perfetto), so program
// step timelines, kernel dispatches, collective schedules, and sampled
// telemetry series from the simulator can be inspected visually. The
// emitted event phases are: complete spans ('X'), zero-duration instants
// ('i'), counter samples ('C'), and flow events ('s'/'t'/'f') that draw
// causal arrows between spans across tracks.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Event is one trace event: a complete span ('X'), an instant ('i'), or a
// counter sample ('C').
type Event struct {
	Name     string `json:"name"`
	Category string `json:"cat,omitempty"`
	Phase    string `json:"ph"`
	// TsUS and DurUS are microseconds, per the trace format.
	TsUS  float64 `json:"ts"`
	DurUS float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	// Scope is the instant-event scope ("t" = thread), set only on 'i'.
	Scope string `json:"s,omitempty"`
	// ID groups flow events ('s'/'t'/'f') into one flow; set only on them.
	ID int64 `json:"id,omitempty"`
	// BP is the flow binding point ("e" = bind to the enclosing slice),
	// set only on flow events.
	BP string `json:"bp,omitempty"`
	// Args carries string annotations on spans/instants and numeric
	// series values on counters.
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates events and track names.
type Trace struct {
	events []Event
	// processNames and threadNames label tracks in the viewer.
	processNames map[int]string
	threadNames  map[[2]int]string
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{
		processNames: make(map[int]string),
		threadNames:  make(map[[2]int]string),
	}
}

// NameProcess labels a process track (e.g. "MI300A").
func (t *Trace) NameProcess(pid int, name string) { t.processNames[pid] = name }

// NameThread labels a thread track (e.g. "XCD0").
func (t *Trace) NameThread(pid, tid int, name string) {
	t.threadNames[[2]int{pid, tid}] = name
}

// Span records one interval. A reversed interval (end before start) is
// swapped. A zero-length interval (start == end) is recorded as an
// instant ('i') event rather than a 0 µs span: viewers drop zero-duration
// complete events entirely, and a vanished marker is worse than a tick.
func (t *Trace) Span(name, category string, pid, tid int, start, end sim.Time, args map[string]string) {
	if end < start {
		start, end = end, start
	}
	var a map[string]any
	if len(args) > 0 {
		a = make(map[string]any, len(args))
		for k, v := range args {
			a[k] = v
		}
	}
	if start == end {
		t.events = append(t.events, Event{
			Name: name, Category: category, Phase: "i", Scope: "t",
			TsUS: start.Microseconds(),
			PID:  pid, TID: tid, Args: a,
		})
		return
	}
	t.events = append(t.events, Event{
		Name: name, Category: category, Phase: "X",
		TsUS:  start.Microseconds(),
		DurUS: (end - start).Microseconds(),
		PID:   pid, TID: tid, Args: a,
	})
}

// Flow records one flow event: phase "s" (start), "t" (step), or "f"
// (finish). All events with the same id form one flow, drawn by viewers
// as arrows between the 'X' spans the events bind to — each flow event
// must lie inside a complete span on its (pid, tid) track, which
// Validate enforces along with per-flow timestamp monotonicity.
func (t *Trace) Flow(phase, name, category string, id int64, pid, tid int, at sim.Time) {
	t.events = append(t.events, Event{
		Name: name, Category: category, Phase: phase, ID: id, BP: "e",
		TsUS: at.Microseconds(), PID: pid, TID: tid,
	})
}

// Counter records one counter ('C') sample: values maps series names on
// the counter track name to their values at time at. Counter tracks
// render as filled area charts in the viewer.
func (t *Trace) Counter(name string, pid int, at sim.Time, values map[string]float64) {
	a := make(map[string]any, len(values))
	for k, v := range values {
		a[k] = v
	}
	t.events = append(t.events, Event{
		Name: name, Phase: "C",
		TsUS: at.Microseconds(),
		PID:  pid, Args: a,
	})
}

// Len reports the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// Events returns the recorded events sorted by start time.
func (t *Trace) Events() []Event {
	out := append([]Event(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TsUS < out[j].TsUS })
	return out
}

// metadata events label tracks in the viewer.
func (t *Trace) metadata() []map[string]any {
	var md []map[string]any
	pids := make([]int, 0, len(t.processNames))
	for pid := range t.processNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		md = append(md, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid,
			"args": map[string]string{"name": t.processNames[pid]},
		})
	}
	keys := make([][2]int, 0, len(t.threadNames))
	for k := range t.threadNames {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		md = append(md, map[string]any{
			"name": "thread_name", "ph": "M", "pid": k[0], "tid": k[1],
			"args": map[string]string{"name": t.threadNames[k]},
		})
	}
	return md
}

// WriteJSON emits the trace in the JSON-array format.
func (t *Trace) WriteJSON(w io.Writer) error {
	all := make([]any, 0, len(t.events)+len(t.processNames)+len(t.threadNames))
	for _, m := range t.metadata() {
		all = append(all, m)
	}
	for _, e := range t.Events() {
		all = append(all, e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(all)
}

// Validate checks structural invariants: spans have non-negative
// durations, instants have none, counter events carry a non-empty series
// name plus at least one named numeric value, and flow events
// ('s'/'t'/'f') bind to a complete span on their track and keep
// per-flow timestamps monotonic (start first, finish last).
func (t *Trace) Validate() error {
	type flowState struct {
		lastTS   float64
		finished bool
	}
	var flows map[int64]*flowState
	for i, e := range t.events {
		switch e.Phase {
		case "X":
			if e.DurUS < 0 {
				return fmt.Errorf("trace: event %d (%s) has negative duration", i, e.Name)
			}
		case "i":
			if e.DurUS != 0 {
				return fmt.Errorf("trace: instant event %d (%s) has duration %g", i, e.Name, e.DurUS)
			}
		case "C":
			if e.Name == "" {
				return fmt.Errorf("trace: counter event %d has an empty series name", i)
			}
			if len(e.Args) == 0 {
				return fmt.Errorf("trace: counter event %d (%s) has no values", i, e.Name)
			}
			for k, v := range e.Args {
				if k == "" {
					return fmt.Errorf("trace: counter event %d (%s) has an empty value key", i, e.Name)
				}
				if _, ok := v.(float64); !ok {
					return fmt.Errorf("trace: counter event %d (%s) value %q is not numeric", i, e.Name, k)
				}
			}
		case "s", "t", "f":
			if e.DurUS != 0 {
				return fmt.Errorf("trace: flow event %d (%s) has duration %g", i, e.Name, e.DurUS)
			}
			if !t.boundByEnclosingSpan(e) {
				return fmt.Errorf("trace: flow event %d (%s, flow %d) has no enclosing span on pid %d tid %d at %g us",
					i, e.Name, e.ID, e.PID, e.TID, e.TsUS)
			}
			if flows == nil {
				flows = make(map[int64]*flowState)
			}
			fs := flows[e.ID]
			switch {
			case e.Phase == "s":
				if fs != nil {
					return fmt.Errorf("trace: flow %d has a second start at event %d (%s)", e.ID, i, e.Name)
				}
				flows[e.ID] = &flowState{lastTS: e.TsUS}
				continue
			case fs == nil:
				return fmt.Errorf("trace: flow %d %s at event %d (%s) before its start", e.ID, e.Phase, i, e.Name)
			case fs.finished:
				return fmt.Errorf("trace: flow %d continues at event %d (%s) after its finish", e.ID, i, e.Name)
			case e.TsUS < fs.lastTS:
				return fmt.Errorf("trace: flow %d is non-monotonic at event %d (%s): %g us after %g us",
					e.ID, i, e.Name, e.TsUS, fs.lastTS)
			}
			fs.lastTS = e.TsUS
			if e.Phase == "f" {
				fs.finished = true
			}
		default:
			return fmt.Errorf("trace: event %d (%s) has phase %q", i, e.Name, e.Phase)
		}
	}
	return nil
}

// boundByEnclosingSpan reports whether some complete ('X') span on the
// flow event's (pid, tid) track covers its timestamp — the binding a
// "bp": "e" flow event needs for a viewer to anchor the arrow. The
// comparison carries 0.1 ps of slack: span ends are start+duration in
// floating-point microseconds, which can round a hair away from a flow
// timestamp computed directly, while any real gap is at least one whole
// picosecond (the simulated-time grid).
func (t *Trace) boundByEnclosingSpan(f Event) bool {
	const slackUS = 1e-7
	for _, e := range t.events {
		if e.Phase == "X" && e.PID == f.PID && e.TID == f.TID &&
			e.TsUS-slackUS <= f.TsUS && f.TsUS <= e.TsUS+e.DurUS+slackUS {
			return true
		}
	}
	return false
}
