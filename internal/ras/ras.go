// Package ras implements deterministic, seed-driven fault injection for
// the simulated MI300 platform — the RAS ("reliability, availability,
// serviceability") counterpart to the healthy-machine models.
//
// A FaultPlan is a declarative schedule of fault events: which fault kind,
// where, and when on the sim.Engine timeline. An Injector arms a plan
// against a set of targets (fabric network, HBM device, XCDs, GPU
// partition) by scheduling one engine event per fault. Every random choice
// — which channel to retire, which CUs to lose, the ECC draw stream — comes
// from sim.RNG streams forked from the plan's seed, so identical plans
// yield byte-identical degraded runs.
//
// The fault taxonomy follows the failure modes the paper's platform must
// survive in the field: Infinity Fabric link loss and derating (§IV.A's USR
// crossings are the links that fail first at scale), HBM channel retirement
// and correctable-error storms (§IV.D's 128-channel interleave gives the
// hardware somewhere to steer traffic), and CU/XCD loss extending the
// §IV.B yield-harvesting story from manufacturing time to runtime.
package ras

import (
	"encoding/json"
	"fmt"
	"strings"
)

// FaultKind names one class of injectable fault.
type FaultKind string

// The fault taxonomy.
const (
	// FaultLinkDown kills every fabric link between nodes A and B (both
	// directions); routing must go around or report ErrPartitioned.
	FaultLinkDown FaultKind = "link-down"
	// FaultLinkDerate reduces the links between A and B to Derate of
	// nominal bandwidth.
	FaultLinkDerate FaultKind = "link-derate"
	// FaultChannelRetire maps HBM channels out of service: Count > 0
	// retires that many channels chosen from the seeded stream; otherwise
	// the specific Channel is retired.
	FaultChannelRetire FaultKind = "hbm-channel-retire"
	// FaultECCStorm turns on the correctable-error model: each access
	// chunk pays PenaltyNS with probability Rate.
	FaultECCStorm FaultKind = "ecc-storm"
	// FaultCULoss disables Count CUs on XCD (chosen from the seeded
	// stream), extending §IV.B harvesting to runtime.
	FaultCULoss FaultKind = "cu-loss"
	// FaultXCDLoss takes the partition member at position XCD offline;
	// subsequent dispatches redistribute across the survivors.
	FaultXCDLoss FaultKind = "xcd-loss"
)

// Fault is one scheduled fault event.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// AtNS is when the fault fires on the engine timeline, in nanoseconds.
	AtNS float64 `json:"at_ns"`

	// A and B name the fabric nodes whose links fail (link faults).
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Derate is the surviving bandwidth fraction for link-derate, (0, 1).
	Derate float64 `json:"derate,omitempty"`

	// Channel selects a specific HBM channel to retire, used when Count
	// is zero (an omitted channel decodes to 0, so Count > 0 wins).
	Channel int `json:"channel,omitempty"`
	// Count sizes seeded-random selections: channels to retire, CUs to
	// lose. For channel-retire it takes precedence over Channel.
	Count int `json:"count,omitempty"`

	// Rate is the per-chunk correctable-error probability for ecc-storm.
	Rate float64 `json:"rate,omitempty"`
	// PenaltyNS is the per-event retry latency for ecc-storm.
	PenaltyNS float64 `json:"penalty_ns,omitempty"`

	// XCD is the partition position for xcd-loss, or the XCD index for
	// cu-loss.
	XCD int `json:"xcd,omitempty"`
}

// describe renders the fault for logs and manifests.
func (f Fault) describe() string {
	var what string
	switch f.Kind {
	case FaultLinkDown:
		what = fmt.Sprintf("%s<->%s down", f.A, f.B)
	case FaultLinkDerate:
		what = fmt.Sprintf("%s<->%s derated to %.2f", f.A, f.B, f.Derate)
	case FaultChannelRetire:
		if f.Count > 0 {
			what = fmt.Sprintf("retire %d channels", f.Count)
		} else {
			what = fmt.Sprintf("retire channel %d", f.Channel)
		}
	case FaultECCStorm:
		what = fmt.Sprintf("ECC storm rate %g penalty %gns", f.Rate, f.PenaltyNS)
	case FaultCULoss:
		what = fmt.Sprintf("lose %d CUs on xcd%d", f.Count, f.XCD)
	case FaultXCDLoss:
		what = fmt.Sprintf("xcd position %d offline", f.XCD)
	default:
		what = "?"
	}
	return fmt.Sprintf("%s: %s at %gns", f.Kind, what, f.AtNS)
}

// Plan is a deterministic fault schedule. The zero Seed is valid (sim.RNG
// remaps it); two runs armed with equal plans behave identically.
type Plan struct {
	// Seed drives every random choice the plan's faults make.
	Seed uint64 `json:"seed"`
	// Faults fire in AtNS order regardless of their order here.
	Faults []Fault `json:"faults"`
}

// ParsePlan decodes a JSON fault plan and validates it. Unknown fields
// are rejected so a typo'd plan fails loudly instead of injecting
// nothing, and trailing data after the plan object is rejected too (a
// concatenated or truncated-then-glued file is a malformed plan, not a
// plan with an opinion suffix; found by the FuzzParsePlan target).
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("ras: parsing fault plan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("ras: parsing fault plan: trailing data after plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks every fault for structural problems: unknown kinds,
// negative times, out-of-range rates, and missing operands.
func (p *Plan) Validate() error {
	if len(p.Faults) == 0 {
		return fmt.Errorf("ras: fault plan has no faults")
	}
	for i, f := range p.Faults {
		if f.AtNS < 0 {
			return fmt.Errorf("ras: fault %d (%s) at negative time %g", i, f.Kind, f.AtNS)
		}
		switch f.Kind {
		case FaultLinkDown:
			if f.A == "" || f.B == "" {
				return fmt.Errorf("ras: fault %d: link-down needs node names a and b", i)
			}
		case FaultLinkDerate:
			if f.A == "" || f.B == "" {
				return fmt.Errorf("ras: fault %d: link-derate needs node names a and b", i)
			}
			if f.Derate <= 0 || f.Derate >= 1 {
				return fmt.Errorf("ras: fault %d: derate %g outside (0, 1)", i, f.Derate)
			}
		case FaultChannelRetire:
			if f.Count <= 0 && f.Channel < 0 {
				return fmt.Errorf("ras: fault %d: channel-retire needs count > 0 or channel >= 0", i)
			}
		case FaultECCStorm:
			if f.Rate < 0 || f.Rate > 1 {
				return fmt.Errorf("ras: fault %d: ECC rate %g outside [0, 1]", i, f.Rate)
			}
			if f.PenaltyNS < 0 {
				return fmt.Errorf("ras: fault %d: negative ECC penalty %g", i, f.PenaltyNS)
			}
		case FaultCULoss:
			if f.Count <= 0 {
				return fmt.Errorf("ras: fault %d: cu-loss needs count > 0", i)
			}
			if f.XCD < 0 {
				return fmt.Errorf("ras: fault %d: cu-loss needs xcd >= 0", i)
			}
		case FaultXCDLoss:
			if f.XCD < 0 {
				return fmt.Errorf("ras: fault %d: xcd-loss needs xcd >= 0", i)
			}
		default:
			return fmt.Errorf("ras: fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}
