package ras

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParsePlan drives the fault-plan parser with arbitrary bytes. The
// properties: ParsePlan never panics; on error it returns a nil plan; on
// success the plan re-marshals and re-parses to an identical value
// (round-trip stability), and passes Validate (ParsePlan's contract).
//
// The committed corpus under testdata/fuzz/FuzzParsePlan seeds the
// mutator with a valid plan, every fault kind, and the malformed shapes
// the parser must reject (unknown fields, trailing data, bad ranges).
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		`{"seed":7,"faults":[{"kind":"link-down","at_ns":100,"a":"IOD-A","b":"IOD-B"}]}`,
		`{"seed":1,"faults":[{"kind":"link-derate","at_ns":5,"a":"x","b":"y","derate":0.5}]}`,
		`{"faults":[{"kind":"hbm-channel-retire","at_ns":0,"count":4}]}`,
		`{"faults":[{"kind":"ecc-storm","at_ns":1,"rate":0.01,"penalty_ns":250}]}`,
		`{"faults":[{"kind":"cu-loss","at_ns":9,"xcd":2,"count":8}]}`,
		`{"faults":[{"kind":"xcd-loss","at_ns":3,"xcd":5}]}`,
		`{"seed":1,"faults":[]}`,
		`{"seed":1,"faluts":[]}`,
		`{"faults":[{"kind":"link-down","at_ns":-1,"a":"a","b":"b"}]}`,
		`{}{}`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			if p != nil {
				t.Fatalf("ParsePlan returned both a plan and error %v", err)
			}
			return
		}
		if p == nil {
			t.Fatal("ParsePlan returned nil plan with nil error")
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan accepted a plan its own Validate rejects: %v", verr)
		}
		out, merr := json.Marshal(p)
		if merr != nil {
			t.Fatalf("re-marshaling accepted plan: %v", merr)
		}
		p2, rerr := ParsePlan(out)
		if rerr != nil {
			t.Fatalf("round-trip re-parse failed: %v\nplan: %s", rerr, out)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round-trip changed the plan:\n first: %+v\nsecond: %+v", p, p2)
		}
	})
}
