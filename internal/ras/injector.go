package ras

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/spans"
)

// FaultClass is the engine handler class of scheduled fault events.
const FaultClass = "ras.fault"

// Targets names the model instances a plan injects into. Any field may be
// nil; a fault whose target is absent is a plan error caught at Arm time,
// not silently skipped.
type Targets struct {
	Net  *fabric.Network
	HBM  *mem.HBM
	XCDs []*gpu.XCD
	GPU  *gpu.Partition
	// Spans, when non-nil, gets one global event per fired fault so span
	// dumps carry the fault timeline alongside the spans it perturbed.
	Spans *spans.Recorder
}

// Applied records one fault that has fired.
type Applied struct {
	Fault   Fault
	At      sim.Time
	Summary string
}

// Injector arms a Plan against concrete targets by scheduling one engine
// event per fault. Faults take effect when the engine's clock reaches
// their AtNS — measurements taken before advancing the engine see the
// healthy machine, measurements after see the degraded one.
type Injector struct {
	plan    *Plan
	rng     *sim.RNG
	applied []Applied
	// applyErrs collects faults that failed to apply (e.g. retiring the
	// last live channel); surfaced through Errs.
	applyErrs []error
}

// NewInjector prepares an injector for the plan, which must already be
// valid (ParsePlan validates; hand-built plans should call Validate).
func NewInjector(plan *Plan) *Injector {
	return &Injector{plan: plan, rng: sim.NewRNG(plan.Seed)}
}

// Arm validates the plan's faults against the targets and schedules them
// on eng, earliest first. It returns the number of events scheduled. After
// Arm, advancing the engine past a fault's time applies it; faults the
// engine never reaches never fire.
func (in *Injector) Arm(eng *sim.Engine, t Targets) (int, error) {
	faults := append([]Fault(nil), in.plan.Faults...)
	// Stable sort by time so equal-time faults keep plan order.
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].AtNS < faults[j].AtNS })
	for i, f := range faults {
		if err := in.check(f, t); err != nil {
			return 0, fmt.Errorf("ras: fault %d: %w", i, err)
		}
	}
	// Every fault forks its own RNG stream up front, in schedule order:
	// the draws a fault makes cannot shift an unrelated fault's stream,
	// and arming is deterministic even though faults fire lazily.
	cls := eng.Class(FaultClass)
	for i, f := range faults {
		f := f
		rng := in.rng.Fork(uint64(i))
		at := sim.FromSeconds(f.AtNS * 1e-9)
		if at < eng.Now() {
			at = eng.Now()
		}
		eng.Schedule(at, cls, func(now sim.Time) {
			in.apply(f, t, rng, now)
		})
	}
	return len(faults), nil
}

// check verifies a fault's target exists before anything is scheduled.
func (in *Injector) check(f Fault, t Targets) error {
	switch f.Kind {
	case FaultLinkDown, FaultLinkDerate:
		if t.Net == nil {
			return fmt.Errorf("%s without a fabric target", f.Kind)
		}
		for _, name := range []string{f.A, f.B} {
			if t.Net.NodeByName(name) == nil {
				return fmt.Errorf("%s: unknown fabric node %q", f.Kind, name)
			}
		}
	case FaultChannelRetire, FaultECCStorm:
		if t.HBM == nil {
			return fmt.Errorf("%s without an HBM target", f.Kind)
		}
		if f.Kind == FaultChannelRetire && f.Count == 0 && f.Channel >= len(t.HBM.Channels()) {
			return fmt.Errorf("channel %d out of range (%d channels)", f.Channel, len(t.HBM.Channels()))
		}
	case FaultCULoss:
		if f.XCD >= len(t.XCDs) {
			return fmt.Errorf("cu-loss: no XCD %d among %d targets", f.XCD, len(t.XCDs))
		}
	case FaultXCDLoss:
		if t.GPU == nil {
			return fmt.Errorf("xcd-loss without a partition target")
		}
		if f.XCD >= len(t.GPU.XCDs()) {
			return fmt.Errorf("xcd-loss: partition has no position %d", f.XCD)
		}
	}
	return nil
}

// apply executes one fault when its engine event fires.
func (in *Injector) apply(f Fault, t Targets, rng *sim.RNG, now sim.Time) {
	var err error
	switch f.Kind {
	case FaultLinkDown:
		err = in.setLinks(t.Net, f, fabric.LinkDown, 0)
	case FaultLinkDerate:
		err = in.setLinks(t.Net, f, fabric.LinkDerated, f.Derate)
	case FaultChannelRetire:
		if f.Count > 0 {
			err = retireRandom(t.HBM, f.Count, rng)
		} else {
			err = t.HBM.RetireChannel(f.Channel)
		}
	case FaultECCStorm:
		err = t.HBM.SetECCStorm(f.Rate, sim.FromSeconds(f.PenaltyNS*1e-9), rng.Uint64())
	case FaultCULoss:
		got := t.XCDs[f.XCD].DisableRandomCUs(f.Count, rng)
		if got < f.Count {
			err = fmt.Errorf("only %d of %d CUs left to disable on xcd%d", got, f.Count, f.XCD)
		}
	case FaultXCDLoss:
		err = t.GPU.SetXCDOnline(f.XCD, false)
	}
	if err != nil {
		in.applyErrs = append(in.applyErrs, fmt.Errorf("ras: applying %s: %w", f.describe(), err))
		return
	}
	in.applied = append(in.applied, Applied{Fault: f, At: now, Summary: f.describe()})
	t.Spans.RecordEvent(now, "ras.fault", f.describe())
}

// setLinks fails or derates every link between the fault's two nodes.
func (in *Injector) setLinks(net *fabric.Network, f Fault, state fabric.LinkState, derate float64) error {
	a, b := net.NodeByName(f.A), net.NodeByName(f.B)
	changed, err := net.SetLinkStateBetween(a.ID, b.ID, state, derate)
	if err != nil {
		return err
	}
	if changed == 0 {
		return fmt.Errorf("no links between %s and %s", f.A, f.B)
	}
	return nil
}

// retireRandom retires n live channels chosen from the seeded stream.
func retireRandom(h *mem.HBM, n int, rng *sim.RNG) error {
	for retired := 0; retired < n; {
		ch := rng.Intn(len(h.Channels()))
		if h.Channel(ch).Retired() {
			continue
		}
		if err := h.RetireChannel(ch); err != nil {
			return err
		}
		retired++
	}
	return nil
}

// Applied returns the faults that have fired so far, in firing order.
func (in *Injector) Applied() []Applied {
	return append([]Applied(nil), in.applied...)
}

// Summaries returns the fired faults' one-line descriptions, for
// runner.Ctx.RecordFault and the run manifest.
func (in *Injector) Summaries() []string {
	out := make([]string, len(in.applied))
	for i, a := range in.applied {
		out[i] = a.Summary
	}
	return out
}

// Errs returns faults that fired but could not be applied.
func (in *Injector) Errs() []error {
	return append([]error(nil), in.applyErrs...)
}
