package ras

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// testTargets builds a small but complete target set: a 2x2 IOD mesh, an
// 8-channel HBM device, and a 2-XCD partition.
func testTargets() Targets {
	net := fabric.New()
	names := []string{"IOD-A", "IOD-B", "IOD-C", "IOD-D"}
	ids := make([]fabric.NodeID, 4)
	for i, name := range names {
		ids[i] = net.AddNode(name, fabric.KindIOD).ID
	}
	net.Connect(ids[0], ids[1], config.LinkUSR, 1.5e12, 5*sim.Nanosecond)
	net.Connect(ids[2], ids[3], config.LinkUSR, 1.5e12, 5*sim.Nanosecond)
	net.Connect(ids[0], ids[2], config.LinkUSR, 1.2e12, 5*sim.Nanosecond)
	net.Connect(ids[1], ids[3], config.LinkUSR, 1.2e12, 5*sim.Nanosecond)

	h := mem.NewHBM("hbm", 2, 4, 2e12, 1<<30, 0)
	spec := config.MI300A().XCD
	rng := sim.NewRNG(1)
	xcds := []*gpu.XCD{gpu.NewXCD(0, spec, rng), gpu.NewXCD(1, spec, rng)}
	part := gpu.NewPartition("p", xcds, nil, gpu.PolicyRoundRobin)
	return Targets{Net: net, HBM: h, XCDs: xcds, GPU: part}
}

func TestParsePlanRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty faults", `{"seed": 1, "faults": []}`},
		{"unknown kind", `{"seed": 1, "faults": [{"kind": "meteor-strike", "at_ns": 1}]}`},
		{"unknown field", `{"seed": 1, "faults": [{"kind": "link-down", "at_ns": 1, "a": "A", "b": "B", "bogus": 3}]}`},
		{"negative time", `{"seed": 1, "faults": [{"kind": "link-down", "at_ns": -5, "a": "A", "b": "B"}]}`},
		{"link without nodes", `{"seed": 1, "faults": [{"kind": "link-down", "at_ns": 1}]}`},
		{"derate out of range", `{"seed": 1, "faults": [{"kind": "link-derate", "at_ns": 1, "a": "A", "b": "B", "derate": 1.5}]}`},
		{"ecc rate out of range", `{"seed": 1, "faults": [{"kind": "ecc-storm", "at_ns": 1, "rate": 2}]}`},
		{"cu-loss without count", `{"seed": 1, "faults": [{"kind": "cu-loss", "at_ns": 1, "xcd": 0}]}`},
		{"not json", `{{{`},
	}
	for _, c := range cases {
		if _, err := ParsePlan([]byte(c.json)); err == nil {
			t.Errorf("%s: ParsePlan accepted %s", c.name, c.json)
		}
	}
	good := `{"seed": 7, "faults": [
		{"kind": "link-down", "at_ns": 1000, "a": "IOD-A", "b": "IOD-B"},
		{"kind": "hbm-channel-retire", "at_ns": 2000, "count": 2},
		{"kind": "ecc-storm", "at_ns": 3000, "rate": 0.01, "penalty_ns": 200},
		{"kind": "cu-loss", "at_ns": 4000, "xcd": 1, "count": 2},
		{"kind": "xcd-loss", "at_ns": 5000, "xcd": 1}
	]}`
	p, err := ParsePlan([]byte(good))
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if p.Seed != 7 || len(p.Faults) != 5 {
		t.Errorf("parsed plan = seed %d, %d faults", p.Seed, len(p.Faults))
	}
}

func TestArmRejectsUnknownTargets(t *testing.T) {
	tg := testTargets()
	cases := []struct {
		name string
		plan Plan
		tg   Targets
	}{
		{"unknown node", Plan{Faults: []Fault{{Kind: FaultLinkDown, A: "IOD-A", B: "IOD-Z"}}}, tg},
		{"no fabric", Plan{Faults: []Fault{{Kind: FaultLinkDown, A: "A", B: "B"}}}, Targets{}},
		{"no hbm", Plan{Faults: []Fault{{Kind: FaultECCStorm, Rate: 0.1}}}, Targets{}},
		{"xcd out of range", Plan{Faults: []Fault{{Kind: FaultCULoss, XCD: 9, Count: 1}}}, tg},
		{"partition position out of range", Plan{Faults: []Fault{{Kind: FaultXCDLoss, XCD: 9}}}, tg},
		{"channel out of range", Plan{Faults: []Fault{{Kind: FaultChannelRetire, Channel: 99}}}, tg},
	}
	for _, c := range cases {
		eng := sim.NewEngine()
		if _, err := NewInjector(&c.plan).Arm(eng, c.tg); err == nil {
			t.Errorf("%s: Arm accepted the plan", c.name)
		}
	}
}

func TestFaultsFireOnlyWhenEngineAdvances(t *testing.T) {
	tg := testTargets()
	plan := &Plan{Seed: 3, Faults: []Fault{
		{Kind: FaultLinkDown, AtNS: 1000, A: "IOD-A", B: "IOD-B"},
		{Kind: FaultXCDLoss, AtNS: 2000, XCD: 1},
	}}
	inj := NewInjector(plan)
	eng := sim.NewEngine()
	n, err := inj.Arm(eng, tg)
	if err != nil || n != 2 {
		t.Fatalf("Arm = %d, %v", n, err)
	}
	if len(inj.Applied()) != 0 {
		t.Fatal("faults applied before the engine reached them")
	}
	a := tg.Net.NodeByName("IOD-A").ID
	b := tg.Net.NodeByName("IOD-B").ID
	if h, _ := tg.Net.Hops(a, b); h != 1 {
		t.Fatalf("healthy hops = %d", h)
	}

	eng.Run(1500 * sim.Nanosecond) // past the link fault, before xcd-loss
	if got := len(inj.Applied()); got != 1 {
		t.Fatalf("after 1.5µs, %d faults applied, want 1", got)
	}
	if h, _ := tg.Net.Hops(a, b); h != 3 {
		t.Errorf("post-fault hops = %d, want 3 (rerouted)", h)
	}
	if tg.GPU.OnlineXCDs() != 2 {
		t.Error("xcd-loss fired early")
	}

	eng.RunAll()
	if got := len(inj.Applied()); got != 2 {
		t.Fatalf("after drain, %d faults applied, want 2", got)
	}
	if tg.GPU.OnlineXCDs() != 1 {
		t.Errorf("OnlineXCDs = %d, want 1", tg.GPU.OnlineXCDs())
	}
	sums := inj.Summaries()
	if len(sums) != 2 || !strings.Contains(sums[0], "link-down") || !strings.Contains(sums[1], "xcd-loss") {
		t.Errorf("summaries = %v", sums)
	}
	if errs := inj.Errs(); len(errs) != 0 {
		t.Errorf("apply errors = %v", errs)
	}
}

// The core determinism guarantee: arming the same plan against identically
// constructed targets makes identical random choices.
func TestInjectorDeterministic(t *testing.T) {
	run := func() ([]string, []int, []int) {
		tg := testTargets()
		plan := &Plan{Seed: 42, Faults: []Fault{
			{Kind: FaultChannelRetire, AtNS: 100, Count: 3},
			{Kind: FaultCULoss, AtNS: 200, XCD: 0, Count: 4},
			{Kind: FaultECCStorm, AtNS: 300, Rate: 0.02, PenaltyNS: 150},
		}}
		inj := NewInjector(plan)
		eng := sim.NewEngine()
		if _, err := inj.Arm(eng, tg); err != nil {
			t.Fatal(err)
		}
		eng.RunAll()
		var retired []int
		for i, c := range tg.HBM.Channels() {
			if c.Retired() {
				retired = append(retired, i)
			}
		}
		// Drive identical traffic through the ECC model.
		for addr := int64(0); addr < 1<<22; addr += 4096 {
			tg.HBM.Access(0, addr, 4096, false)
		}
		retired = append(retired, int(tg.HBM.ECCEvents()))
		return inj.Summaries(), retired, tg.XCDs[0].DisabledCUs()
	}
	s1, r1, d1 := run()
	s2, r2, d2 := run()
	if strings.Join(s1, ";") != strings.Join(s2, ";") {
		t.Errorf("summaries diverged: %v vs %v", s1, s2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("retired sets diverged: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("retired sets diverged: %v vs %v", r1, r2)
		}
	}
	if len(d1) != len(d2) {
		t.Fatalf("disabled-CU sets diverged: %v vs %v", d1, d2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("disabled-CU sets diverged: %v vs %v", d1, d2)
		}
	}
	if r1[len(r1)-1] == 0 {
		t.Error("ECC storm produced no events under traffic")
	}
}

func TestApplyErrorSurfaced(t *testing.T) {
	// Retiring more channels than can stay live is an apply-time error,
	// recorded rather than panicking the run.
	tg := testTargets()
	plan := &Plan{Seed: 1, Faults: []Fault{
		{Kind: FaultChannelRetire, AtNS: 10, Count: 8}, // all 8 channels
	}}
	inj := NewInjector(plan)
	eng := sim.NewEngine()
	if _, err := inj.Arm(eng, tg); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if len(inj.Errs()) == 0 {
		t.Error("retiring every channel should surface an apply error")
	}
	if tg.HBM.LiveChannels() < 1 {
		t.Error("device lost its last live channel")
	}
}

func TestPartitionedTransferAfterPlan(t *testing.T) {
	tg := testTargets()
	plan := &Plan{Seed: 1, Faults: []Fault{
		{Kind: FaultLinkDown, AtNS: 10, A: "IOD-A", B: "IOD-B"},
		{Kind: FaultLinkDown, AtNS: 10, A: "IOD-B", B: "IOD-D"},
	}}
	inj := NewInjector(plan)
	eng := sim.NewEngine()
	if _, err := inj.Arm(eng, tg); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	a := tg.Net.NodeByName("IOD-A").ID
	b := tg.Net.NodeByName("IOD-B").ID
	if _, err := tg.Net.Transfer(eng.Now(), a, b, 4096); !errors.Is(err, fabric.ErrPartitioned) {
		t.Errorf("transfer to isolated IOD = %v, want ErrPartitioned", err)
	}
}
