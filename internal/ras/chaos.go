package ras

import (
	"fmt"

	"repro/internal/sim"
)

// This file is the chaos harness's storm generator: seed-driven random
// fault plans for property-based testing. RandomPlan turns (seed, spec)
// into a Plan that always passes Validate, so a chaos sweep explores the
// fault space without ever tripping over its own generator.

// StormSpec bounds the fault storms RandomPlan draws: which fabric nodes
// may lose links, how many HBM channels and XCDs exist, and how violent
// one storm may get. It describes the target platform, not one storm.
type StormSpec struct {
	// MaxFaults bounds the storm size; each storm draws 1..MaxFaults.
	MaxFaults int
	// HorizonNS is the injection window: fault times draw from
	// [0, HorizonNS).
	HorizonNS float64
	// Nodes are the fabric node names link faults pick pairs from; at
	// least two are required for link faults to be drawable.
	Nodes []string
	// Channels is the HBM channel count channel-retire draws from.
	Channels int
	// XCDs is the device XCD count cu-loss draws from.
	XCDs int
	// PartitionXCDs is the partition member count xcd-loss draws from
	// (positions, not device indices).
	PartitionXCDs int
	// MaxRetire bounds channels retired by one fault.
	MaxRetire int
	// MaxCULoss bounds CUs lost by one fault.
	MaxCULoss int
}

// MI300AStorm is the storm spec for the MI300A platform the chaos
// experiments run: four IODs, 128 HBM channels, a six-XCD SPX partition.
func MI300AStorm() StormSpec {
	return StormSpec{
		MaxFaults:     6,
		HorizonNS:     5e6,
		Nodes:         []string{"IOD-A", "IOD-B", "IOD-C", "IOD-D"},
		Channels:      128,
		XCDs:          6,
		PartitionXCDs: 6,
		MaxRetire:     24,
		MaxCULoss:     12,
	}
}

func (s StormSpec) withDefaults() StormSpec {
	if s.MaxFaults <= 0 {
		s.MaxFaults = 4
	}
	if s.HorizonNS <= 0 {
		s.HorizonNS = 1e6
	}
	if s.Channels <= 0 {
		s.Channels = 1
	}
	if s.XCDs <= 0 {
		s.XCDs = 1
	}
	if s.PartitionXCDs <= 0 {
		s.PartitionXCDs = 1
	}
	if s.MaxRetire <= 0 {
		s.MaxRetire = 1
	}
	if s.MaxCULoss <= 0 {
		s.MaxCULoss = 1
	}
	return s
}

// RandomPlan draws a fault storm from the seeded stream: 1..MaxFaults
// faults of random kinds with random, in-range operands. The result
// always passes Validate — the generator's job is exploring degraded
// states, not exercising the validator. The plan's own Seed is forked
// from the storm seed, so two storms with different seeds also make
// different in-fault random choices (which channels retire, which CUs
// drop). Identical (seed, spec) pairs yield identical plans.
func RandomPlan(seed uint64, spec StormSpec) *Plan {
	spec = spec.withDefaults()
	rng := sim.NewRNG(seed)
	p := &Plan{Seed: rng.Fork(0xC4A0).Uint64()}

	kinds := []FaultKind{FaultChannelRetire, FaultECCStorm, FaultCULoss, FaultXCDLoss}
	if len(spec.Nodes) >= 2 {
		kinds = append(kinds, FaultLinkDown, FaultLinkDerate)
	}

	n := 1 + rng.Intn(spec.MaxFaults)
	for i := 0; i < n; i++ {
		f := Fault{
			Kind: kinds[rng.Intn(len(kinds))],
			AtNS: rng.Float64() * spec.HorizonNS,
		}
		switch f.Kind {
		case FaultLinkDown, FaultLinkDerate:
			a := rng.Intn(len(spec.Nodes))
			b := rng.Intn(len(spec.Nodes) - 1)
			if b >= a {
				b++ // distinct endpoints: a link needs two nodes
			}
			f.A, f.B = spec.Nodes[a], spec.Nodes[b]
			if f.Kind == FaultLinkDerate {
				// Validate requires (0, 1) exclusive; stay well inside.
				f.Derate = 0.1 + 0.8*rng.Float64()
			}
		case FaultChannelRetire:
			if rng.Intn(2) == 0 {
				f.Count = 1 + rng.Intn(spec.MaxRetire)
			} else {
				f.Channel = rng.Intn(spec.Channels)
			}
		case FaultECCStorm:
			f.Rate = 0.5 * rng.Float64()
			f.PenaltyNS = 100 + 900*rng.Float64()
		case FaultCULoss:
			f.XCD = rng.Intn(spec.XCDs)
			f.Count = 1 + rng.Intn(spec.MaxCULoss)
		case FaultXCDLoss:
			f.XCD = rng.Intn(spec.PartitionXCDs)
		}
		p.Faults = append(p.Faults, f)
	}
	if err := p.Validate(); err != nil {
		// The generator guarantees validity by construction; a failure
		// here is a generator bug, not a caller error.
		panic(fmt.Sprintf("ras: invariant violated: RandomPlan(%d) produced an invalid plan: %v", seed, err))
	}
	return p
}
