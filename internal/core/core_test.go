package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func mustPlatform(t testing.TB, spec *config.PlatformSpec) *Platform {
	t.Helper()
	p, err := NewPlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlatformAllSpecs(t *testing.T) {
	for _, spec := range []*config.PlatformSpec{
		config.MI300A(), config.MI300X(), config.MI250X(), config.EHPv4(), config.BaselineGPU(),
	} {
		p, err := NewPlatform(spec)
		if err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		if len(p.XCDs) != spec.XCDs {
			t.Errorf("%s: %d XCDs built, want %d", spec.Name, len(p.XCDs), spec.XCDs)
		}
		if (p.CPU != nil) != (spec.CCDs > 0) {
			t.Errorf("%s: CPU presence wrong", spec.Name)
		}
		if (p.HostCPU != nil) != (spec.Memory == config.DiscreteMemory) {
			t.Errorf("%s: host CPU presence wrong", spec.Name)
		}
	}
}

func TestUnifiedMemoryIsOneSpace(t *testing.T) {
	a := mustPlatform(t, config.MI300A())
	if a.HostMem != a.DeviceMem {
		t.Error("MI300A host and device memory must be the same Space (§VI.B)")
	}
	m := mustPlatform(t, config.MI250X())
	if m.HostMem == m.DeviceMem {
		t.Error("MI250X host and device memory must be separate Spaces")
	}
}

func TestMI300FabricTopology(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	// Any XCD reaches any HBM stack in at most: bond + (<=2 USR) + stack.
	for x := 0; x < 6; x++ {
		for s := 0; s < 8; s++ {
			hops, err := p.Net.Hops(p.XCDNode(x), p.HBMNode(s))
			if err != nil {
				t.Fatalf("XCD%d->HBM%d: %v", x, s, err)
			}
			if hops > 4 {
				t.Errorf("XCD%d->HBM%d = %d hops, want <= 4", x, s, hops)
			}
		}
	}
	// CCDs live on the fourth IOD and reach all memory.
	if _, err := p.Net.Route(p.CCDNode(0), p.HBMNode(0)); err != nil {
		t.Errorf("CCD->HBM unroutable: %v", err)
	}
}

func TestCPUToHBMHopsEHPv4VsMI300A(t *testing.T) {
	// §III.B Fig. 4 ③: EHPv4's CPU→HBM path needs two die-to-die IF
	// hops; MI300A's needs at most one die-to-die (USR) crossing.
	ehp := mustPlatform(t, config.EHPv4())
	a := mustPlatform(t, config.MI300A())
	eMin, eMax := ehp.CPUToHBMHopsRange()
	if eMin < 2 || eMax < 2 {
		t.Errorf("EHPv4 CPU->HBM die hops = [%d,%d], want every path >= 2", eMin, eMax)
	}
	aMin, _ := a.CPUToHBMHopsRange()
	if aMin != 0 {
		t.Errorf("MI300A nearest CPU->HBM die hops = %d, want 0 (local stacks)", aMin)
	}
}

func TestCrossGPUBandwidthOrdering(t *testing.T) {
	// MI300A's USR mesh must dwarf EHPv4's substrate SerDes (Fig. 4 ①)
	// and MI250X's bridge.
	a := mustPlatform(t, config.MI300A())
	e := mustPlatform(t, config.EHPv4())
	m := mustPlatform(t, config.MI250X())
	if a.CrossGPUBW() <= e.CrossGPUBW() {
		t.Errorf("MI300A cross-GPU BW %g should exceed EHPv4 %g", a.CrossGPUBW(), e.CrossGPUBW())
	}
	if a.CrossGPUBW() <= m.CrossGPUBW() {
		t.Errorf("MI300A cross-GPU BW %g should exceed MI250X %g", a.CrossGPUBW(), m.CrossGPUBW())
	}
	if ratio := a.CrossGPUBW() / e.CrossGPUBW(); ratio < 5 {
		t.Errorf("MI300A/EHPv4 cross-GPU ratio = %.1f, want large (USR vs SerDes)", ratio)
	}
}

func TestMeasuredHBMBandwidthNearPeak(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	achieved := p.MeasureHBMBandwidth(2 << 30)
	frac := achieved / p.Spec.PeakMemoryBW()
	if frac < 0.55 || frac > 1.5 {
		t.Errorf("measured HBM BW = %.2f of peak, want in [0.55, 1.5] (cache amplification can exceed 1)", frac)
	}
}

func TestInfinityCacheAmplifiesBandwidth(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	base := p.EffectiveMemBW(0)
	amp := p.EffectiveMemBW(0.8)
	if base != p.Spec.PeakMemoryBW() {
		t.Errorf("zero-hit BW = %g, want HBM peak", base)
	}
	if amp <= base {
		t.Error("cache hits did not amplify bandwidth")
	}
	if amp > p.Spec.InfinityCacheBW() {
		t.Errorf("amplified BW %g exceeds Infinity Cache peak", amp)
	}
	// MI250X has no Infinity Cache: hit rate is irrelevant.
	m := mustPlatform(t, config.MI250X())
	if m.EffectiveMemBW(0.9) != m.Spec.PeakMemoryBW() {
		t.Error("MI250X should not amplify")
	}
}

func TestHostLinkTransferZeroCopyOnAPU(t *testing.T) {
	a := mustPlatform(t, config.MI300A())
	if end := a.HostLinkTransfer(0, 1<<30, true); end != 0 {
		t.Errorf("APU host transfer took %v, want 0 (zero copy)", end)
	}
	m := mustPlatform(t, config.MI250X())
	end := m.HostLinkTransfer(0, 1<<30, true)
	// 1 GiB over a 64 GB/s link: >= ~16 ms.
	if end.Milliseconds() < 15 {
		t.Errorf("discrete 1 GiB copy = %v, want >= ~16 ms", end)
	}
}

func TestGPUDispatchOnPlatform(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	k := &gpu.KernelSpec{
		Name: "axpy", Class: config.Vector, Dtype: config.FP64,
		FlopsPerItem: 2, BytesReadPerItem: 16, BytesWrittenPerItem: 8,
	}
	done, err := p.GPU.Dispatch(0, k, 1<<18, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("dispatch took no time")
	}
	if p.HBM.BytesMoved() == 0 {
		t.Error("dispatch moved no HBM bytes")
	}
	if p.Net.TotalBytes() == 0 {
		t.Error("dispatch moved no fabric bytes")
	}
}

func TestDevicePresentation(t *testing.T) {
	// MI250X presents each GCD separately: the default partition holds
	// one GCD (§VI.A); MI300A presents all six XCDs as one device.
	m := mustPlatform(t, config.MI250X())
	if got := len(m.GPU.XCDs()); got != 1 {
		t.Errorf("MI250X default device has %d GCDs, want 1", got)
	}
	a := mustPlatform(t, config.MI300A())
	if got := len(a.GPU.XCDs()); got != 6 {
		t.Errorf("MI300A default device has %d XCDs, want 6", got)
	}
}

func TestNewPartitionOf(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	tpx, err := p.NewPartitionOf("tpx0", []int{0, 1}, gpu.PolicyBlock)
	if err != nil {
		t.Fatal(err)
	}
	if tpx.TotalCUs() != 76 {
		t.Errorf("TPX partition CUs = %d, want 76", tpx.TotalCUs())
	}
	if _, err := p.NewPartitionOf("bad", []int{9}, gpu.PolicyBlock); err == nil {
		t.Error("out-of-range XCD accepted")
	}
}

func TestFlagVisibilityLatencySmall(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	lat := p.FlagVisibilityLatency()
	if lat <= 0 || lat > 2*sim.Microsecond {
		t.Errorf("flag visibility = %v, want sub-microsecond scale", lat)
	}
}

func TestRunPhaseComputeVsMemoryBound(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	c := p.RunPhase(0, Phase{Name: "gemm", GPUFlops: 1e14, Class: config.Matrix, Dtype: config.FP16, GPUBytes: 1e9})
	if c.Bound != "compute" {
		t.Errorf("GEMM bound = %s, want compute", c.Bound)
	}
	m := p.RunPhase(0, Phase{Name: "stream", GPUFlops: 1e10, Class: config.Vector, Dtype: config.FP64, GPUBytes: 1e12})
	if m.Bound != "memory" {
		t.Errorf("STREAM bound = %s, want memory", m.Bound)
	}
	if c.Total <= 0 || m.Total <= 0 {
		t.Error("phases took no time")
	}
}

func TestRunPhaseCopyBoundOnDiscrete(t *testing.T) {
	ph := Phase{
		Name: "copyheavy", GPUFlops: 1e10, Class: config.Vector, Dtype: config.FP64,
		GPUBytes: 1e9, H2DBytes: 8e9, D2HBytes: 8e9,
	}
	m := mustPlatform(t, config.MI250X())
	a := mustPlatform(t, config.MI300A())
	rm := m.RunPhase(0, ph)
	ra := a.RunPhase(0, ph)
	if rm.CopyTime <= 0 {
		t.Error("discrete platform charged no copy time")
	}
	if ra.CopyTime != 0 {
		t.Error("APU charged copy time")
	}
	if rm.Total <= ra.Total {
		t.Error("copy-heavy phase should be slower on the discrete platform")
	}
	if rm.Bound != "copy" {
		t.Errorf("discrete bound = %s, want copy", rm.Bound)
	}
}

func TestRunPhaseFineGrainedOverlap(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	base := Phase{
		Name: "pipe", GPUFlops: 5e12, Class: config.Vector, Dtype: config.FP64,
		CPUFlops: 5e11,
	}
	coarse := p.RunPhase(0, base)
	fg := base
	fg.FineGrained = true
	fine := p.RunPhase(0, fg)
	if fine.Total >= coarse.Total {
		t.Errorf("fine-grained %v not faster than coarse %v (Fig. 15)", fine.Total, coarse.Total)
	}
}

func TestRunPhasesAccumulate(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	total, results := p.RunPhases([]Phase{
		{Name: "a", GPUFlops: 1e12, Class: config.Vector, Dtype: config.FP64},
		{Name: "b", GPUFlops: 1e12, Class: config.Vector, Dtype: config.FP64, Iterations: 3},
	})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if total != results[0].Total+results[1].Total {
		t.Error("total != sum of phases")
	}
	if results[1].Total <= results[0].Total*2 {
		t.Error("3 iterations not ~3x of 1")
	}
}

func TestResetStatsClears(t *testing.T) {
	p := mustPlatform(t, config.MI300A())
	p.GPUMemTime(0, 0, 1<<20, false)
	if p.HBM.BytesMoved() == 0 {
		t.Fatal("no traffic generated")
	}
	p.ResetStats()
	if p.HBM.BytesMoved() != 0 || p.Net.TotalBytes() != 0 {
		t.Error("ResetStats incomplete")
	}
}

func BenchmarkGPUMemTime(b *testing.B) {
	p := mustPlatform(b, config.MI300A())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GPUMemTime(sim.Time(i), i%6, 64<<10, i%2 == 0)
	}
}
