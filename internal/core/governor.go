package core

import (
	"strings"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/thermal"
)

// perXCDAreaMM2 approximates one XCD die's area for the hotspot power
// density estimate (~115 mm² in TSMC N5, §IV.B).
const perXCDAreaMM2 = 115.0

// hotspotAmbientC matches the thermal solver's default coolant
// temperature.
const hotspotAmbientC = 35.0

// Governor tracks the live outcome of the socket power model — the
// current per-domain allocation, the dynamic throttle scale, accrued
// energy, and a hotspot temperature estimate — so telemetry probes can
// sample a power/thermal timeline instead of only end-of-run aggregates.
// RunPhase routes every allocation through it once one exists.
type Governor struct {
	model   *power.Model
	xcdArea float64
	alloc   power.Allocation
	scale   float64
	meter   power.EnergyMeter

	// Shadow energy ledger: an independent Σ total-watts × dt integral
	// maintained alongside the per-domain meter. At drain the two must
	// agree within float tolerance — a drift means an allocation was
	// accrued twice, skipped, or applied with a stale timestamp.
	shadowJ float64
	shadowT sim.Time
	shadowW float64
}

// newGovernor starts the governor in the all-idle allocation.
func newGovernor(m *power.Model, xcds int) *Governor {
	g := &Governor{model: m, xcdArea: perXCDAreaMM2 * float64(maxInt(xcds, 1))}
	g.alloc, g.scale = m.Allocate(power.Activity{})
	g.meter.SetAllocation(0, g.alloc)
	g.shadowW = g.alloc.Total()
	return g
}

// Governor returns the platform's power governor, building it on first
// use; platforms without a power model (concept parts) return nil.
func (p *Platform) Governor() *Governor {
	if p.gov == nil && p.Power != nil {
		p.gov = newGovernor(p.Power, len(p.XCDs))
	}
	return p.gov
}

// allocatePower is the RunPhase entry point: it routes through the
// governor when one has been built (so telemetry sees phase transitions)
// and falls back to the bare model otherwise.
func (p *Platform) allocatePower(act power.Activity) (power.Allocation, float64) {
	if p.gov != nil {
		return p.gov.Observe(act)
	}
	return p.Power.Allocate(act)
}

// Observe allocates for the activity and records the outcome as the
// governor's current state, without advancing the energy meter (analytic
// callers like RunPhase have no simulated timestamp).
func (g *Governor) Observe(act power.Activity) (power.Allocation, float64) {
	g.alloc, g.scale = g.model.Allocate(act)
	return g.alloc, g.scale
}

// Allocate is Observe plus energy-meter accrual at simulated time t, for
// callers driving the governor from an engine timeline.
func (g *Governor) Allocate(t sim.Time, act power.Activity) (power.Allocation, float64) {
	alloc, scale := g.Observe(act)
	if t > g.shadowT {
		g.shadowJ += g.shadowW * (t - g.shadowT).Seconds()
		g.shadowT = t
	}
	g.shadowW = alloc.Total()
	g.meter.SetAllocation(t, alloc)
	return alloc, scale
}

// Allocation reports the current per-domain grant.
func (g *Governor) Allocation() power.Allocation { return g.alloc }

// Scale reports the current dynamic throttle factor (1 = unthrottled).
func (g *Governor) Scale() float64 { return g.scale }

// EnergyJ reports energy accrued through simulated time t.
func (g *Governor) EnergyJ(t sim.Time) float64 { return g.meter.EnergyJ(t) }

// ShadowEnergyJ reports the shadow ledger's energy through simulated time
// t without mutating ledger state.
func (g *Governor) ShadowEnergyJ(t sim.Time) float64 {
	j := g.shadowJ
	if t > g.shadowT {
		j += g.shadowW * (t - g.shadowT).Seconds()
	}
	return j
}

// HotspotC estimates the package hotspot from the XCD domain's current
// power density — a closed-form stand-in for the full thermal solve,
// cheap enough to run at sampling cadence.
func (g *Governor) HotspotC() float64 {
	return thermal.HotspotEstimate(hotspotAmbientC, g.alloc[power.DomainXCD], g.xcdArea)
}

// instrumentPower registers the governor's telemetry probes: one watts
// gauge per power domain, the throttle scale, total socket watts, accrued
// energy, and the hotspot estimate.
func (p *Platform) instrumentPower(rec *telemetry.Recorder) {
	g := p.Governor()
	if g == nil {
		return
	}
	for _, d := range power.AllDomains() {
		d := d
		rec.Gauge("power."+strings.ToLower(d.String())+"_w",
			func(sim.Time) float64 { return g.Allocation()[d] })
	}
	rec.Gauge("power.total_w", func(sim.Time) float64 { return g.Allocation().Total() })
	rec.Gauge("power.scale", func(sim.Time) float64 { return g.Scale() })
	rec.Gauge("power.energy_j", func(now sim.Time) float64 { return g.EnergyJ(now) })
	rec.Gauge("thermal.hotspot_c", func(sim.Time) float64 { return g.HotspotC() })
}
