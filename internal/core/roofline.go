package core

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/sim"
)

// This file is the analytic execution engine for full-application
// workload proxies (Figs. 19-21): a phase-level roofline over the
// platform's peak rates, effective (Infinity-Cache-amplified) memory
// bandwidth, host-link costs, Amdahl-split CPU work, and the socket power
// governor. Microbenchmarks use the detailed event-level models; whole
// applications with seconds of runtime use this engine with the same
// platform parameters.

// Phase is one application phase with a resource footprint.
type Phase struct {
	Name string

	// GPU work.
	GPUFlops float64
	Class    config.EngineClass
	Dtype    config.DataType
	Sparse   bool
	// GPUBytes is HBM-visible traffic; CacheHitRate is the expected
	// Infinity Cache hit fraction for it.
	GPUBytes     float64
	CacheHitRate float64

	// CPU work. CPUSerialFraction is the Amdahl serial part.
	CPUFlops          float64
	CPUBytes          float64
	CPUSerialFraction float64

	// Explicit host<->device copies. Free on unified memory (§VI.B).
	H2DBytes float64
	D2HBytes float64

	// Overlap runs the GPU and CPU portions concurrently; FineGrained
	// additionally pipelines them at element granularity via coherent
	// completion flags (Fig. 15), hiding all but the pipeline fill.
	Overlap     bool
	FineGrained bool

	// Iterations repeats the phase.
	Iterations int
}

// PhaseResult is the timing breakdown of one executed phase.
type PhaseResult struct {
	Name     string
	GPUTime  sim.Time
	CPUTime  sim.Time
	CopyTime sim.Time
	Total    sim.Time
	Throttle float64 // power governor dynamic scale (1 = unthrottled)
	Bound    string  // "compute", "memory", "cpu", or "copy"
	EnergyJ  float64
}

// kernelLaunch is the fixed dispatch cost per GPU phase iteration.
const kernelLaunch = 8 * sim.Microsecond

// EffectiveMemBW reports the platform's bandwidth for traffic with the
// given Infinity Cache hit rate.
func (p *Platform) EffectiveMemBW(hitRate float64) float64 {
	hbm := p.Spec.PeakMemoryBW()
	if p.Spec.InfinityCache == nil || hitRate <= 0 {
		return hbm
	}
	return cache.EffectiveBW(hitRate, p.Spec.InfinityCacheBW(), hbm)
}

// gpuPeak reports peak flops for the phase's numeric configuration.
func (p *Platform) gpuPeak(ph *Phase) float64 {
	if ph.Sparse {
		return p.Spec.PeakSparseFlops(ph.Dtype)
	}
	return p.Spec.PeakFlops(ph.Class, ph.Dtype)
}

// cpuPerf reports (totalFlops/sec, perCoreFlops/sec, memBW) of the CPU
// that drives this platform: the in-package CCDs on an APU, the host
// otherwise.
func (p *Platform) cpuPerf() (total, perCore, bw float64) {
	if p.Spec.CCD != nil {
		perCore = p.Spec.CCD.ClockHz * p.Spec.CCD.FlopsCore
		total = perCore * float64(p.Spec.TotalCores())
		// APU CPUs share the HBM; model a CCD-complex share of it.
		bw = p.Spec.PeakMemoryBW() * 0.25
		if p.Spec.Memory == config.DiscreteMemory {
			bw = p.Spec.Host.DDRBW
		}
		return
	}
	h := p.Spec.Host
	perCore = h.ClockHz * h.FlopsCore
	total = perCore * float64(h.Cores)
	bw = h.DDRBW
	return
}

// applyEfficiency derates peak numbers: real kernels do not hit
// theoretical peaks. These factors are global model constants, not
// per-result tuning knobs.
const (
	gpuComputeEff = 0.80
	gpuMemEff     = 0.85
	cpuEff        = 0.70
	linkEff       = 0.90
)

// RunPhase executes one phase analytically starting at start.
func (p *Platform) RunPhase(start sim.Time, ph Phase) PhaseResult {
	iters := ph.Iterations
	if iters <= 0 {
		iters = 1
	}
	res := PhaseResult{Name: ph.Name, Throttle: 1}

	// Per-iteration GPU roofline.
	var gpuCompute, gpuMem sim.Time
	if peak := p.gpuPeak(&ph); peak > 0 && ph.GPUFlops > 0 {
		gpuCompute = sim.FromSeconds(ph.GPUFlops / (peak * gpuComputeEff))
	}
	if ph.GPUBytes > 0 {
		gpuMem = sim.FromSeconds(ph.GPUBytes / (p.EffectiveMemBW(ph.CacheHitRate) * gpuMemEff))
	}

	// Power governor: pick the activity profile from the phase's bound
	// and stretch the dynamic portion when throttled.
	if p.Power != nil {
		act := power.ComputeIntensive()
		if gpuMem > gpuCompute {
			act = power.MemoryIntensive()
		}
		alloc, scale := p.allocatePower(act)
		res.Throttle = scale
		if scale > 0 && scale < 1 {
			gpuCompute = sim.Time(float64(gpuCompute) / scale)
		}
		res.EnergyJ = alloc.Total() // filled per-iteration below
	}

	gpuTime := gpuCompute
	res.Bound = "compute"
	if gpuMem > gpuTime {
		gpuTime = gpuMem
		res.Bound = "memory"
	}
	if ph.GPUFlops > 0 || ph.GPUBytes > 0 {
		gpuTime += kernelLaunch
	}

	// CPU portion with the Amdahl split.
	var cpuTime sim.Time
	if ph.CPUFlops > 0 || ph.CPUBytes > 0 {
		total, perCore, bw := p.cpuPerf()
		f := ph.CPUSerialFraction
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		serial := f * ph.CPUFlops / (perCore * cpuEff)
		parallel := (1 - f) * ph.CPUFlops / (total * cpuEff)
		memT := ph.CPUBytes / (bw * cpuEff)
		ct := serial + parallel
		if memT > ct {
			ct = memT
		}
		cpuTime = sim.FromSeconds(ct)
	}

	// Host<->device copies: zero on unified memory.
	var copyTime sim.Time
	if p.Spec.Memory == config.DiscreteMemory && p.Spec.Host != nil {
		link := p.Spec.Host.LinkBW * linkEff
		copyTime = sim.FromSeconds((ph.H2DBytes + ph.D2HBytes) / link)
	}

	// Compose one iteration.
	var iterTime sim.Time
	switch {
	case ph.FineGrained && p.Spec.Memory == config.UnifiedMemory:
		// Fig. 15: per-element flags pipeline CPU post-processing under
		// the kernel; only the pipeline fill (first element) is exposed.
		fill := gpuTime / 16
		if cpuTime > gpuTime {
			iterTime = cpuTime + fill
		} else {
			iterTime = gpuTime + fill
		}
		iterTime += p.FlagVisibilityLatency()
	case ph.Overlap:
		iterTime = gpuTime
		if cpuTime > iterTime {
			iterTime = cpuTime
		}
	default:
		iterTime = gpuTime + cpuTime
	}
	iterTime += copyTime

	res.GPUTime = gpuTime * sim.Time(iters)
	res.CPUTime = cpuTime * sim.Time(iters)
	res.CopyTime = copyTime * sim.Time(iters)
	res.Total = iterTime * sim.Time(iters)
	if copyTime > gpuTime && copyTime > cpuTime {
		res.Bound = "copy"
	} else if cpuTime > gpuTime && copyTime < cpuTime && !ph.Overlap && !ph.FineGrained {
		res.Bound = "cpu"
	}
	if p.Power != nil {
		res.EnergyJ *= res.Total.Seconds()
	}
	_ = start
	return res
}

// RunPhases executes phases sequentially and returns the total time and
// per-phase results.
func (p *Platform) RunPhases(phases []Phase) (sim.Time, []PhaseResult) {
	var t sim.Time
	results := make([]PhaseResult, 0, len(phases))
	for _, ph := range phases {
		r := p.RunPhase(t, ph)
		t += r.Total
		results = append(results, r)
	}
	return t, results
}
