// Package core assembles the paper's primary contribution: a complete
// MI300-class platform model. From a config.PlatformSpec it instantiates
// the in-package Infinity Fabric spanning the four IODs (§IV.A), the HBM
// channels and memory-side Infinity Cache (§IV.D), the probe-filter and
// GPU coherence directories, the XCD partitions with cooperative AQL
// dispatch (§VI.A), the CCD complex (§IV.C), and the socket power model —
// and exposes the timing paths (GPU→HBM, CPU→HBM, host↔device) that every
// experiment in the repository exercises. The same constructor builds the
// MI250X, EHPv4, and baseline-GPU comparison platforms from their specs,
// differing only in topology and parameters, never in code path.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/hsa"
	"repro/internal/mem"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/spans"
)

// Platform is a fully assembled processor package (plus host, when the
// spec is a discrete accelerator).
type Platform struct {
	Spec *config.PlatformSpec

	// Net is the in-package fabric (IODs, chiplets, HBM stacks, IO).
	Net *fabric.Network
	// HBM is the channel-level memory timing model.
	HBM *mem.HBM
	// InfCache is the memory-side cache; nil when the spec lacks one.
	InfCache *cache.InfinityCache
	// DeviceMem is the functional device/unified address space.
	DeviceMem *mem.Space
	// HostMem is the host address space: identical to DeviceMem on a
	// unified-memory APU (that is the whole point), separate on
	// discrete platforms.
	HostMem *mem.Space
	// HostDDR is the host memory timing model (discrete only).
	HostDDR *mem.HBM

	// XCDs are the accelerator dies; GPU is the default partition
	// presenting them per the spec's DevicePresentation.
	XCDs []*gpu.XCD
	GPU  *gpu.Partition
	// CPU is the in-package CCD complex (nil on accelerator-only parts);
	// HostCPU models the external host for discrete platforms.
	CPU     *cpu.Complex
	HostCPU *cpu.Complex

	// CPUCoherence is the EPYC-style probe filter spanning CCDs and
	// XCDs; GPUCoherence is the simpler intra-socket GPU directory.
	CPUCoherence *coherence.Directory
	GPUCoherence *coherence.Directory

	// Power is the socket power model (nil for concept platforms).
	Power *power.Model
	// gov tracks the live governor state for telemetry; built lazily.
	gov *Governor
	// harvestSeed drives deterministic CU harvesting (0 = default).
	harvestSeed uint64
	// spans, when non-nil, records causal span trees on the memory and
	// dispatch hot paths (BuildOptions.Spans). Nil costs the hot paths
	// one pointer check.
	spans *spans.Recorder

	// Fabric node handles.
	iodNodes  []fabric.NodeID
	xcdNodes  []fabric.NodeID
	ccdNodes  []fabric.NodeID
	hbmNodes  []fabric.NodeID // one per stack
	hostNode  fabric.NodeID
	haveHost  bool
	ioNodes   []fabric.NodeID
	streamPos int64
}

// hbmLatency is the HBM array access latency.
const hbmLatency = 120 * sim.Nanosecond

// NewPlatform assembles a platform from its spec with default build
// options (see NewPlatformWith in observe.go for the configurable form).
func NewPlatform(spec *config.PlatformSpec) (*Platform, error) {
	return newPlatform(spec, 0, nil)
}

// newPlatform assembles a platform; harvestSeed 0 selects the historical
// default CU-harvesting seed. sp must be threaded in here (not set after
// construction) because buildCompute copies it into the GPU ExecEnv.
func newPlatform(spec *config.PlatformSpec, harvestSeed uint64, sp *spans.Recorder) (*Platform, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{Spec: spec, Net: fabric.New(), harvestSeed: harvestSeed, spans: sp}

	// Memory system.
	p.HBM = mem.NewHBM(spec.HBM.Generation, spec.HBM.Stacks, spec.HBM.ChannelsStack,
		spec.HBM.StackBW, spec.HBM.TotalCapacity(), hbmLatency)
	if ic := spec.InfinityCache; ic != nil {
		p.InfCache = cache.NewInfinityCache(spec.HBM.TotalChannels(), ic.SliceBytes,
			ic.TotalBW, 25*sim.Nanosecond, ic.Prefetch)
	}
	p.DeviceMem = mem.NewSpace(spec.Name+".hbm", spec.HBM.TotalCapacity())
	if spec.Memory == config.UnifiedMemory {
		p.HostMem = p.DeviceMem
	} else {
		p.HostMem = mem.NewSpace("host.ddr", spec.Host.DDRBytes)
		p.HostDDR = mem.NewHBM("ddr5", 1, 12, spec.Host.DDRBW, spec.Host.DDRBytes, 90*sim.Nanosecond)
	}

	p.buildFabric()
	p.buildCompute()

	agents := len(p.XCDs) + spec.CCDs + 1 // +1 for a host/IO agent
	p.CPUCoherence = coherence.NewProbeFilter(spec.Name+".pf", agents)
	p.GPUCoherence = coherence.NewGPUDirectory(spec.Name+".gpudir", maxInt(len(p.XCDs), 1))

	switch spec.Name {
	case "MI300A":
		p.Power = power.MI300AModel()
	case "MI300X":
		p.Power = power.MI300XModel()
	}
	return p, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildFabric lays down the fabric topology for the spec:
//
//   - MI300-style (4 IODs): 2×2 USR mesh, chiplets hybrid-bonded to their
//     IOD, two HBM stacks per IOD, two x16 ports per IOD.
//   - EHPv4 (1 server IOD): chiplets hang off the single IOD over
//     substrate SerDes; HBM attaches to the GPU dies; GPU-GPU traffic has
//     a long low-bandwidth path (§III.B, Fig. 4).
//   - MI250X / baseline (no IOD): GCDs own their HBM directly, with an
//     inter-GCD bridge on MI250X.
func (p *Platform) buildFabric() {
	spec := p.Spec
	switch {
	case spec.IODs == 4:
		p.buildMI300Fabric()
	case spec.IODs == 1:
		p.buildEHPv4Fabric()
	default:
		p.buildGCDFabric()
	}
	if spec.Memory == config.DiscreteMemory {
		host := p.Net.AddNode("host", fabric.KindHost)
		p.hostNode = host.ID
		p.haveHost = true
		// Host attaches to the device over its link (PCIe or IF).
		attach := p.iodNodes
		if len(attach) == 0 {
			attach = p.xcdNodes
		}
		p.Net.Connect(host.ID, attach[0], spec.Host.LinkKind, spec.Host.LinkBW, 400*sim.Nanosecond)
	}
}

func (p *Platform) buildMI300Fabric() {
	spec := p.Spec
	// IODs in Fig. 9 arrangement: A,B top; C,D bottom.
	names := []string{"IOD-A", "IOD-B", "IOD-C", "IOD-D"}
	for _, n := range names {
		p.iodNodes = append(p.iodNodes, p.Net.AddNode(n, fabric.KindIOD).ID)
	}
	usrLat := 8 * sim.Nanosecond
	h, v := spec.IOD.USRHorizontalBW, spec.IOD.USRVerticalBW
	p.Net.Connect(p.iodNodes[0], p.iodNodes[1], config.LinkUSR, h, usrLat) // A-B
	p.Net.Connect(p.iodNodes[2], p.iodNodes[3], config.LinkUSR, h, usrLat) // C-D
	p.Net.Connect(p.iodNodes[0], p.iodNodes[2], config.LinkUSR, v, usrLat) // A-C
	p.Net.Connect(p.iodNodes[1], p.iodNodes[3], config.LinkUSR, v, usrLat) // B-D

	// HBM stacks: two per IOD, served through the IOD's fabric at the
	// stack's bandwidth.
	for i := 0; i < spec.HBM.Stacks; i++ {
		n := p.Net.AddNode(fmt.Sprintf("HBM%d", i), fabric.KindHBM)
		p.hbmNodes = append(p.hbmNodes, n.ID)
		p.Net.Connect(p.iodNodes[i/2], n.ID, config.LinkOnDie, spec.HBM.StackBW, 15*sim.Nanosecond)
	}

	// Compute chiplets hybrid-bonded on top: XCD pairs fill IODs from A,
	// CCD trio takes the last XCD-free IOD (MI300A: 3×XCD-IODs + 1
	// CCD-IOD; MI300X: 4×XCD-IODs).
	bondBW := 2.2e12 // per-chiplet 3D interface, comfortably above 2 HBM stacks
	bondLat := 3 * sim.Nanosecond
	for i := 0; i < spec.XCDs; i++ {
		n := p.Net.AddNode(fmt.Sprintf("XCD%d", i), fabric.KindXCD)
		p.xcdNodes = append(p.xcdNodes, n.ID)
		p.Net.Connect(p.iodNodes[i/2], n.ID, config.LinkOnDie, bondBW, bondLat)
	}
	ccdIOD := spec.XCDs / 2 // first IOD without XCDs
	for i := 0; i < spec.CCDs; i++ {
		n := p.Net.AddNode(fmt.Sprintf("CCD%d", i), fabric.KindCCD)
		p.ccdNodes = append(p.ccdNodes, n.ID)
		p.Net.Connect(p.iodNodes[ccdIOD], n.ID, config.LinkOnDie, 0.4e12, bondLat)
	}
	for i := 0; i < spec.IODs*spec.IOD.X16Links; i++ {
		n := p.Net.AddNode(fmt.Sprintf("x16-%d", i), fabric.KindIOPort)
		p.ioNodes = append(p.ioNodes, n.ID)
		p.Net.Connect(p.iodNodes[i/spec.IOD.X16Links], n.ID, config.LinkIFOP, spec.IOD.X16BWPerDir, 30*sim.Nanosecond)
	}
}

func (p *Platform) buildEHPv4Fabric() {
	spec := p.Spec
	iod := p.Net.AddNode("serverIOD", fabric.KindIOD)
	p.iodNodes = []fabric.NodeID{iod.ID}
	// GPU dies carry the HBM PHYs; the CPU reaches HBM only via
	// IOD→GPU-die hops (Fig. 4 ③: "two die-to-die IF hops").
	serdesBW := 64e9 // DDR-class IF link (Fig. 4 ②)
	serdesLat := 25 * sim.Nanosecond
	for i := 0; i < spec.XCDs; i++ {
		n := p.Net.AddNode(fmt.Sprintf("GCD%d", i), fabric.KindXCD)
		p.xcdNodes = append(p.xcdNodes, n.ID)
		// Two IF links per GPU die to the server IOD.
		p.Net.Connect(iod.ID, n.ID, config.LinkSerDes, 2*serdesBW, serdesLat)
	}
	for i := 0; i < spec.CCDs; i++ {
		n := p.Net.AddNode(fmt.Sprintf("CCD%d", i), fabric.KindCCD)
		p.ccdNodes = append(p.ccdNodes, n.ID)
		p.Net.Connect(iod.ID, n.ID, config.LinkSerDes, serdesBW, serdesLat)
	}
	// HBM stacks distribute across the GPU dies.
	for i := 0; i < spec.HBM.Stacks; i++ {
		n := p.Net.AddNode(fmt.Sprintf("HBM%d", i), fabric.KindHBM)
		p.hbmNodes = append(p.hbmNodes, n.ID)
		gcd := p.xcdNodes[i%len(p.xcdNodes)]
		p.Net.Connect(gcd, n.ID, config.LinkOnDie, spec.HBM.StackBW, 15*sim.Nanosecond)
	}
	// The long cross-package GCD-GCD path (Fig. 4 ①): a direct but slow
	// substrate link between the two GPU halves.
	half := len(p.xcdNodes) / 2
	if half > 0 && spec.CrossDieBWPerDir > 0 {
		p.Net.Connect(p.xcdNodes[0], p.xcdNodes[half], config.LinkSerDes,
			spec.CrossDieBWPerDir, 40*sim.Nanosecond)
	}
}

func (p *Platform) buildGCDFabric() {
	spec := p.Spec
	for i := 0; i < spec.XCDs; i++ {
		n := p.Net.AddNode(fmt.Sprintf("GCD%d", i), fabric.KindXCD)
		p.xcdNodes = append(p.xcdNodes, n.ID)
	}
	// Each GCD owns its share of HBM stacks directly.
	for i := 0; i < spec.HBM.Stacks; i++ {
		n := p.Net.AddNode(fmt.Sprintf("HBM%d", i), fabric.KindHBM)
		p.hbmNodes = append(p.hbmNodes, n.ID)
		gcd := p.xcdNodes[i*len(p.xcdNodes)/spec.HBM.Stacks]
		p.Net.Connect(gcd, n.ID, config.LinkOnDie, spec.HBM.StackBW, 15*sim.Nanosecond)
	}
	if len(p.xcdNodes) == 2 && spec.CrossDieBWPerDir > 0 {
		p.Net.Connect(p.xcdNodes[0], p.xcdNodes[1], config.LinkSerDes,
			spec.CrossDieBWPerDir, 30*sim.Nanosecond)
	}
}

// buildCompute instantiates XCDs, the default GPU partition, and the CPU
// complexes.
func (p *Platform) buildCompute() {
	spec := p.Spec
	seed := p.harvestSeed
	if seed == 0 {
		seed = 0xC0FFEE
	}
	rng := sim.NewRNG(seed)
	for i := 0; i < spec.XCDs; i++ {
		p.XCDs = append(p.XCDs, gpu.NewXCD(i, spec.XCD, rng))
	}
	env := &gpu.ExecEnv{
		Mem:     p.DeviceMem,
		MemTime: p.GPUMemTime,
		Spans:   p.spans,
		SignalTime: func(start sim.Time, from, to int) sim.Time {
			if from == to || from >= len(p.xcdNodes) || to >= len(p.xcdNodes) {
				return start + 10*sim.Nanosecond
			}
			at, err := p.Net.Signal(start, p.xcdNodes[from], p.xcdNodes[to])
			if err != nil {
				return start + 20*sim.Nanosecond
			}
			return at
		},
	}
	// Default partition: all XCDs the first presented device owns.
	perDevice := spec.XCDs / spec.DevicePresentation
	p.GPU = gpu.NewPartition(spec.Name+".gpu0", p.XCDs[:perDevice], env, gpu.PolicyRoundRobin)

	if spec.CCDs > 0 {
		p.CPU = cpu.NewComplex(spec.CCD, spec.CCDs, &cpu.Env{Mem: p.HostMem, MemTime: p.CPUMemTime})
	}
	if spec.Memory == config.DiscreteMemory {
		hostCCD := &config.CCDSpec{
			Cores:     spec.Host.Cores,
			ClockHz:   spec.Host.ClockHz,
			L2Bytes:   1 * config.MiB,
			L3Bytes:   32 * config.MiB,
			FlopsCore: spec.Host.FlopsCore,
		}
		p.HostCPU = cpu.NewComplex(hostCCD, 1, &cpu.Env{Mem: p.HostMem, MemTime: p.HostMemTime})
	}
}

// NewPartitionOf returns a GPU partition over the XCD indices, sharing the
// platform's execution environment (used for TPX/CPX modes).
func (p *Platform) NewPartitionOf(name string, xcdIdx []int, policy gpu.Policy) (*gpu.Partition, error) {
	var xs []*gpu.XCD
	for _, i := range xcdIdx {
		if i < 0 || i >= len(p.XCDs) {
			return nil, fmt.Errorf("core: XCD %d out of range", i)
		}
		xs = append(xs, p.XCDs[i])
	}
	env := &gpu.ExecEnv{Mem: p.DeviceMem, MemTime: p.GPUMemTime, Spans: p.spans}
	return gpu.NewPartition(name, xs, env, policy), nil
}

// SpanRecorder reports the platform's span recorder (nil when the
// platform was built without BuildOptions.Spans).
func (p *Platform) SpanRecorder() *spans.Recorder { return p.spans }

// NewQueue returns a user-mode AQL queue sized for the platform.
func (p *Platform) NewQueue(name string) *hsa.Queue { return hsa.NewQueue(name, 64) }

// HostNode reports the host's fabric node (discrete platforms only).
func (p *Platform) HostNode() (fabric.NodeID, bool) { return p.hostNode, p.haveHost }

// XCDNode reports XCD i's fabric node.
func (p *Platform) XCDNode(i int) fabric.NodeID { return p.xcdNodes[i%len(p.xcdNodes)] }

// CCDNode reports CCD i's fabric node (falls back to the first IOD when
// the platform has no CCDs).
func (p *Platform) CCDNode(i int) fabric.NodeID {
	if len(p.ccdNodes) == 0 {
		return p.iodNodes[0]
	}
	return p.ccdNodes[i%len(p.ccdNodes)]
}

// HBMNode reports HBM stack s's fabric node.
func (p *Platform) HBMNode(s int) fabric.NodeID { return p.hbmNodes[s%len(p.hbmNodes)] }

// IODNode reports IOD i's fabric node (GCD node when the platform has no
// IODs).
func (p *Platform) IODNode(i int) fabric.NodeID {
	if len(p.iodNodes) == 0 {
		return p.xcdNodes[i%len(p.xcdNodes)]
	}
	return p.iodNodes[i%len(p.iodNodes)]
}

// ResetStats clears all component statistics (topology retained).
func (p *Platform) ResetStats() {
	p.Net.ResetStats()
	p.HBM.ResetStats()
	if p.InfCache != nil {
		p.InfCache.ResetStats()
	}
	if p.HostDDR != nil {
		p.HostDDR.ResetStats()
	}
	for _, x := range p.XCDs {
		x.ResetStats()
	}
	if p.CPU != nil {
		p.CPU.ResetStats()
	}
	if p.HostCPU != nil {
		p.HostCPU.ResetStats()
	}
	p.CPUCoherence.ResetStats()
	p.GPUCoherence.ResetStats()
	p.streamPos = 0
}
