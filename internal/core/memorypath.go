package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/spans"
)

// This file implements the timing of every memory path in the package:
// compute chiplet → fabric (possibly crossing IODs over USR) → Infinity
// Cache slice → HBM channel, plus the host DDR and host↔device link paths
// for discrete platforms.

// memChunk is the granularity at which bulk traffic is spread over the
// interleaved memory system. One chunk covers several 4 KB interleave
// granules, so consecutive chunks land on different stacks/channels just
// as the §IV.D hash intends.
const memChunk = 64 * config.KiB

// nextStreamAddr hands out sequential physical addresses for timing-only
// bulk traffic, so it spreads over channels exactly like a streaming
// kernel's accesses would.
func (p *Platform) nextStreamAddr(n int64) int64 {
	a := p.streamPos
	p.streamPos = (p.streamPos + n) % (p.HBM.Capacity() / 2)
	return a
}

// memAccess charges one bulk access from a source fabric node to the
// memory system at a concrete physical address range and returns the
// completion time of the last byte.
func (p *Platform) memAccess(start sim.Time, src fabric.NodeID, addr, bytes int64, write bool) sim.Time {
	if bytes <= 0 {
		return start
	}
	// Span tracing: one root per transaction, one child per segment the
	// bytes cross (each link hop, the cache slice, each HBM channel
	// occupancy). Every callback below is nil unless this transaction was
	// sampled, so an untraced run does no extra work beyond the checks.
	var root spans.Ref
	var hopObs fabric.HopObserver
	var hbmObs mem.AccessObserver
	if p.spans.Enabled() {
		op := "mem.read"
		if write {
			op = "mem.write"
		}
		root = p.spans.Root(spans.KindMem, op, start)
	}
	if root.Valid() {
		root.Annotate("src", p.Net.Node(src).Name)
		root.Annotate("bytes", fmt.Sprintf("%d", bytes))
		hopObs = func(l *fabric.Link, txStart, txEnd sim.Time) {
			c := root.Child(spans.StageFabric, l.Name, txStart, txEnd)
			if l.State() != fabric.LinkUp {
				c.Annotate("link.state", l.State().String())
			}
		}
		hbmObs = func(hashedCh, servedCh int, s, e sim.Time, retry bool) {
			stage := spans.StageHBM
			if retry {
				stage = spans.StageHBMECC
			}
			c := root.Child(stage, fmt.Sprintf("hbm.ch%d", servedCh), s, e)
			if servedCh != hashedCh {
				c.Annotate("rerouted", fmt.Sprintf("ch%d->ch%d", hashedCh, servedCh))
			}
		}
	}
	end := start
	for off := int64(0); off < bytes; off += memChunk {
		n := int64(memChunk)
		if off+n > bytes {
			n = bytes - off
		}
		a := addr + off
		stack := p.HBM.Map.Stack(a)
		// Legacy multi-device parts (MI250X presents each GCD as its own
		// accelerator) have per-device memory: traffic stays on the
		// source GCD's local stacks rather than interleaving packagewide.
		if p.Spec.IODs == 0 && p.Spec.DevicePresentation > 1 && len(p.xcdNodes) > 0 {
			if gcd, ok := p.gcdOf(src); ok {
				perGCD := p.HBM.Map.Stacks / len(p.xcdNodes)
				if perGCD > 0 {
					stack = gcd*perGCD + stack%perGCD
				}
			}
		}
		// Fabric stage: source chiplet → the IOD owning the stack →
		// stack PHY. Crossing IODs rides the USR mesh and contends there.
		done := start
		if t, err := p.Net.TransferObserved(start, src, p.HBMNode(stack), n, hopObs); err == nil {
			done = t
		}
		// Memory-side cache stage.
		hbmBytes := n
		if p.InfCache != nil {
			ch := p.HBM.Map.Channel(a)
			res := p.InfCache.Access(done, ch, a, n, write)
			if root.Valid() {
				result := "miss"
				if res.Hit {
					result = "hit"
				}
				c := root.Child(spans.StageCache, fmt.Sprintf("mall%d", ch), done, res.Done,
					spans.Attr{Key: "result", Val: result})
				if wait := res.Begin - done; wait > 0 {
					c.Annotate("queue_ns", fmt.Sprintf("%.3f", wait.Nanoseconds()))
				}
			}
			done = res.Done
			hbmBytes = res.HBMBytes
		}
		// HBM channel stage for the residual traffic.
		if hbmBytes > 0 {
			if t := p.HBM.AccessObserved(done, a, hbmBytes, write, hbmObs); t > done {
				done = t
			}
		}
		if done > end {
			end = done
		}
	}
	root.Finish(end)
	return end
}

// gcdOf reverse-maps a fabric node to its XCD/GCD index.
func (p *Platform) gcdOf(src fabric.NodeID) (int, bool) {
	for i, n := range p.xcdNodes {
		if n == src {
			return i, true
		}
	}
	return 0, false
}

// GPUMemTime charges bytes of HBM traffic from XCD xcd (the gpu.ExecEnv
// callback). Addresses are synthetic sequential stream positions.
func (p *Platform) GPUMemTime(start sim.Time, xcd int, bytes int64, write bool) sim.Time {
	if bytes <= 0 {
		return start
	}
	src := p.XCDNode(xcd)
	return p.memAccess(start, src, p.nextStreamAddr(bytes), bytes, write)
}

// GPUMemTimeAt is GPUMemTime with an explicit physical address (used by
// the programming-model layer, which knows its buffers).
func (p *Platform) GPUMemTimeAt(start sim.Time, xcd int, addr, bytes int64, write bool) sim.Time {
	return p.memAccess(start, p.XCDNode(xcd), addr, bytes, write)
}

// CPUMemTime charges CPU-originated memory traffic. On a unified-memory
// APU this goes to the same HBM over the in-package fabric (one on-die
// hop on MI300A; two die-to-die hops on EHPv4 — Fig. 4 ③ falls out of the
// topology, not special-casing). On a discrete platform the host CPU uses
// its own DDR.
func (p *Platform) CPUMemTime(start sim.Time, ccd int, bytes int64, write bool) sim.Time {
	if bytes <= 0 {
		return start
	}
	if p.Spec.Memory == config.UnifiedMemory {
		return p.memAccess(start, p.CCDNode(ccd), p.nextStreamAddr(bytes), bytes, write)
	}
	return p.HostMemTime(start, ccd, bytes, write)
}

// CPUMemTimeAt is CPUMemTime at an explicit address (unified memory only).
func (p *Platform) CPUMemTimeAt(start sim.Time, ccd int, addr, bytes int64, write bool) sim.Time {
	if p.Spec.Memory == config.UnifiedMemory {
		return p.memAccess(start, p.CCDNode(ccd), addr, bytes, write)
	}
	return p.HostMemTime(start, ccd, bytes, write)
}

// HostMemTime charges host DDR traffic on discrete platforms.
func (p *Platform) HostMemTime(start sim.Time, _ int, bytes int64, write bool) sim.Time {
	if p.HostDDR == nil || bytes <= 0 {
		return start
	}
	addr := p.nextStreamAddr(bytes) % (p.HostDDR.Capacity() / 2)
	return p.HostDDR.Access(start, addr, bytes, write)
}

// HostLinkTransfer charges a host↔device bulk copy (the timing half of a
// hipMemcpy). On unified-memory platforms it returns start unchanged —
// there is no copy to make, which is the zero-copy benefit of §VI.B.
func (p *Platform) HostLinkTransfer(start sim.Time, bytes int64, toDevice bool) sim.Time {
	if p.Spec.Memory == config.UnifiedMemory || bytes <= 0 {
		return start
	}
	src, dst := p.hostNode, p.IODNode(0)
	if !toDevice {
		src, dst = dst, src
	}
	end, err := p.Net.Transfer(start, src, dst, bytes)
	if err != nil {
		return start
	}
	// The copy also occupies DDR on the host side and HBM on the device.
	ddrDone := p.HostMemTime(start, 0, bytes, !toDevice)
	hbmDone := p.HBM.Access(start, p.nextStreamAddr(bytes), bytes, toDevice)
	if ddrDone > end {
		end = ddrDone
	}
	if hbmDone > end {
		end = hbmDone
	}
	return end
}

// FlagVisibilityLatency reports how quickly a CPU spin-loop observes a
// flag written by a GPU CU: one coherence probe across the fabric between
// the producing XCD and the consuming CCD (Fig. 15's enabling mechanism).
func (p *Platform) FlagVisibilityLatency() sim.Time {
	if len(p.xcdNodes) == 0 {
		return 200 * sim.Nanosecond
	}
	lat, err := p.Net.PathLatency(p.XCDNode(0), p.CCDNode(0))
	if err != nil {
		return 200 * sim.Nanosecond
	}
	// Request + response + directory lookup.
	return 2*lat + 40*sim.Nanosecond
}

// CPUToHBMHopsRange reports the minimum and maximum number of die-to-die
// fabric crossings (USR or substrate SerDes; on-die links don't count)
// from a CCD to the HBM stacks — the §III.B EHPv4 critique quantified:
// on EHPv4 every CPU access to HBM pays two SerDes hops (Fig. 4 ③),
// while on MI300A the CCDs' local stacks are reachable with zero die
// crossings and even the farthest cost only USR hops.
func (p *Platform) CPUToHBMHopsRange() (min, max int) {
	min = 1 << 30
	src := p.CCDNode(0)
	for s := range p.hbmNodes {
		path, err := p.Net.Route(src, p.hbmNodes[s])
		if err != nil {
			continue
		}
		hops := 0
		for _, l := range path {
			if l.Kind == config.LinkSerDes || l.Kind == config.LinkUSR {
				hops++
			}
		}
		if hops > max {
			max = hops
		}
		if hops < min {
			min = hops
		}
	}
	if min == 1<<30 {
		min = 0
	}
	return
}

// CrossGPUBW reports the bottleneck bandwidth between the two GPU halves
// of the package — MI300A's USR mesh versus EHPv4's substrate SerDes
// (Fig. 4 ①) versus MI250X's bridge.
func (p *Platform) CrossGPUBW() float64 {
	if len(p.xcdNodes) < 2 {
		return 0
	}
	half := len(p.xcdNodes) / 2
	bw, err := p.Net.PathBandwidth(p.xcdNodes[0], p.xcdNodes[half])
	if err != nil {
		return 0
	}
	return bw
}

// MeasureHBMBandwidth saturates the memory system with streaming traffic
// from every XCD and reports achieved bytes/sec — the experiment behind
// the Fig. 19 bandwidth row.
func (p *Platform) MeasureHBMBandwidth(totalBytes int64) float64 {
	p.ResetStats()
	var end sim.Time
	chunk := int64(1 * config.MiB)
	n := len(p.xcdNodes)
	if n == 0 {
		n = 1
	}
	for off := int64(0); off < totalBytes; off += chunk {
		xcd := int(off/chunk) % n
		if done := p.GPUMemTime(0, xcd, chunk, off%2 == 0); done > end {
			end = done
		}
	}
	if end <= 0 {
		return 0
	}
	return float64(totalBytes) / end.Seconds()
}
