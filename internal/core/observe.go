package core

import (
	"math"

	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/spans"
	"repro/internal/telemetry"
)

// BuildOptions configures platform assembly. The apusim facade's
// functional options (WithSeed, WithTelemetry, WithSpans, WithAudit)
// reduce to this struct.
type BuildOptions struct {
	// HarvestSeed seeds the deterministic CU-harvesting RNG; 0 selects
	// the historical default, so existing platforms are bit-identical.
	HarvestSeed uint64
	// Telemetry, when non-nil, has every component probe registered on it
	// (see Instrument).
	Telemetry *telemetry.Recorder
	// Spans, when non-nil, records causal span trees for memory
	// transactions and AQL dispatches.
	Spans *spans.Recorder
	// Audit, when non-nil, has every component conservation ledger
	// registered on it (see AttachAudit).
	Audit *audit.Auditor
}

// NewPlatformWith assembles a platform with explicit build options.
func NewPlatformWith(spec *config.PlatformSpec, opts BuildOptions) (*Platform, error) {
	p, err := newPlatform(spec, opts.HarvestSeed, opts.Spans)
	if err != nil {
		return nil, err
	}
	if opts.Telemetry != nil {
		p.Instrument(opts.Telemetry)
	}
	p.AttachAudit(opts.Audit)
	return p, nil
}

// Instrument registers the full platform probe set on rec, in a fixed
// order (fabric links, HBM, host DDR, Infinity Cache, XCDs, power/
// thermal) so the recorder's column layout is deterministic.
func (p *Platform) Instrument(rec *telemetry.Recorder) {
	telemetry.InstrumentNetwork(rec, p.Net)
	telemetry.InstrumentHBM(rec, p.HBM, "hbm")
	if p.HostDDR != nil {
		telemetry.InstrumentHBM(rec, p.HostDDR, "ddr")
	}
	if p.InfCache != nil {
		telemetry.InstrumentInfinityCache(rec, p.InfCache)
	}
	telemetry.InstrumentXCDs(rec, p.XCDs)
	p.instrumentPower(rec)
}

// AttachAudit registers the platform's conservation ledgers on a, in a
// fixed order mirroring Instrument (fabric, HBM, host DDR, GPU partition,
// governor energy) so reports are deterministic. Safe to call with a nil
// auditor — every registration is then a no-op.
func (p *Platform) AttachAudit(a *audit.Auditor) {
	if !a.Enabled() {
		return
	}
	audit.Fabric(a, p.Net)
	audit.HBM(a, p.HBM, "hbm")
	if p.HostDDR != nil {
		audit.HBM(a, p.HostDDR, "ddr")
	}
	if p.InfCache != nil {
		audit.InfinityCache(a, p.InfCache)
	}
	audit.Partition(a, p.GPU)
	p.attachEnergyAudit(a)
}

// attachEnergyAudit registers the governor's energy-conservation check:
// the per-domain meter and the independent shadow ledger must agree on
// accrued joules within float tolerance. Registered here (not in the
// audit package) because the governor is a core-internal concept.
func (p *Platform) attachEnergyAudit(a *audit.Auditor) {
	g := p.Governor()
	if g == nil {
		return
	}
	a.Register("governor", func(now sim.Time) []audit.Violation {
		meterJ := g.EnergyJ(now)
		shadowJ := g.ShadowEnergyJ(now)
		tol := 1e-9 + 1e-6*math.Max(math.Abs(meterJ), math.Abs(shadowJ))
		if math.Abs(meterJ-shadowJ) > tol {
			return []audit.Violation{{
				Ledger: "energy-conservation",
				Detail: "per-domain energy meter diverged from the Σ watts × dt shadow ledger",
				Want:   shadowJ, Got: meterJ,
			}}
		}
		return nil
	})
}
