package core

import (
	"repro/internal/config"
	"repro/internal/spans"
	"repro/internal/telemetry"
)

// BuildOptions configures platform assembly. The apusim facade's
// functional options (WithSeed, WithTelemetry, WithSpans) reduce to
// this struct.
type BuildOptions struct {
	// HarvestSeed seeds the deterministic CU-harvesting RNG; 0 selects
	// the historical default, so existing platforms are bit-identical.
	HarvestSeed uint64
	// Telemetry, when non-nil, has every component probe registered on it
	// (see Instrument).
	Telemetry *telemetry.Recorder
	// Spans, when non-nil, records causal span trees for memory
	// transactions and AQL dispatches.
	Spans *spans.Recorder
}

// NewPlatformWith assembles a platform with explicit build options.
func NewPlatformWith(spec *config.PlatformSpec, opts BuildOptions) (*Platform, error) {
	p, err := newPlatform(spec, opts.HarvestSeed, opts.Spans)
	if err != nil {
		return nil, err
	}
	if opts.Telemetry != nil {
		p.Instrument(opts.Telemetry)
	}
	return p, nil
}

// Instrument registers the full platform probe set on rec, in a fixed
// order (fabric links, HBM, host DDR, Infinity Cache, XCDs, power/
// thermal) so the recorder's column layout is deterministic.
func (p *Platform) Instrument(rec *telemetry.Recorder) {
	telemetry.InstrumentNetwork(rec, p.Net)
	telemetry.InstrumentHBM(rec, p.HBM, "hbm")
	if p.HostDDR != nil {
		telemetry.InstrumentHBM(rec, p.HostDDR, "ddr")
	}
	if p.InfCache != nil {
		telemetry.InstrumentInfinityCache(rec, p.InfCache)
	}
	telemetry.InstrumentXCDs(rec, p.XCDs)
	p.instrumentPower(rec)
}
