package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/ras"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config wires a Server's dependencies and limits. Registry is the only
// required field.
type Config struct {
	// Registry supplies the experiments jobs may run.
	Registry *runner.Registry
	// FaultPlanRun executes an ad-hoc fault-plan job (the cmd/repro
	// -faults path). Nil rejects fault-plan specs at submission.
	FaultPlanRun func(*runner.Ctx, *ras.Plan) (string, error)
	// Workers is the worker-pool width; <= 0 selects one per CPU.
	Workers int
	// QueueDepth bounds the admitted-but-not-running backlog; a full
	// queue rejects submissions with 429. <= 0 selects 64.
	QueueDepth int
	// TenantMaxInFlight caps one tenant's queued+running fresh jobs, so a
	// sweep from one client cannot starve everyone else; 0 disables the
	// cap. Cache hits and coalesced jobs are exempt — they consume no
	// worker.
	TenantMaxInFlight int
	// CacheBytes is the result cache's LRU byte budget; <= 0 selects
	// 64 MiB. Set to 1 to effectively disable caching (no manifest fits).
	CacheBytes int64
	// JobTimeout is the per-job wall-clock deadline; <= 0 selects 2m.
	JobTimeout time.Duration
	// DataDir, when non-empty, makes the server crash-safe: results are
	// persisted to a content-addressed store under this directory and
	// every admission is journaled, so a restart replays interrupted work
	// instead of losing it. Empty keeps the daemon memory-only.
	DataDir string
	// FS is the filesystem the durability layer runs on; nil selects the
	// real one. Tests inject a durable.FaultFS here to exercise every
	// disk-failure branch in-process.
	FS durable.FS
	// RequireDurability refuses submissions with 503 while storage
	// durability is degraded, instead of accepting them as non-durable
	// work. For deployments where an unjournaled 202 is worse than an
	// error.
	RequireDurability bool
	// DurabilityProbe is the cadence at which a degraded server re-tests
	// its data dir and, on success, re-arms durability with a journal
	// checkpoint; <= 0 selects 2s.
	DurabilityProbe time.Duration
	// JournalSegmentBytes is the journal's segment rotation threshold;
	// <= 0 selects the durable package default (1 MiB).
	JournalSegmentBytes int64
	// MaxQueueWait, when positive, arms latency-aware admission: once the
	// observed p95 queue wait exceeds it while the server is backlogged,
	// fresh submissions are shed with 429 + Retry-After. Depth-based
	// shedding still applies; this catches queues that are shallow but
	// slow.
	MaxQueueWait time.Duration
	// RetryBackoff is the base delay between a job's retry attempts;
	// <= 0 selects 100ms. Delays grow exponentially per attempt with
	// deterministic jitter and are capped at 10x the base.
	RetryBackoff time.Duration
	// Logger receives the daemon's structured log records (job lifecycle,
	// admission control, recovery, drain). Nil discards them.
	Logger *slog.Logger
	// WatchHeartbeat is the cadence of keep-alive records on ?watch=1
	// streams between state transitions; <= 0 selects 15s.
	WatchHeartbeat time.Duration
	// FlightEvents sizes the flight recorder's ring of recent lifecycle
	// events (served by GET /v1/debug, dumped on SIGQUIT); <= 0 selects
	// 256.
	FlightEvents int
}

// DefaultTenant is the tenant jobs without an X-Tenant header bill to.
const DefaultTenant = "default"

// Server is the simulation-as-a-service daemon core: job store, bounded
// queue, worker pool, result cache, and HTTP API. Construct with New,
// serve Handler(), stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache

	// store and journal are the durability layer; both nil when
	// Config.DataDir is empty. journalClose makes the flush-on-drain
	// idempotent (tests call Drain more than once). fs is the filesystem
	// everything durable runs on (Config.FS or the real one). durability
	// is the storage circuit breaker's state (durabilityNone/OK/Degraded):
	// a journal or store write failure trips it to degraded memory-only
	// mode, and the background probe re-arms it.
	store        *durable.Store
	journal      *durable.Journal
	journalClose sync.Once
	fs           durable.FS
	durability   atomic.Int32
	probeStop    chan struct{}
	compactCh    chan struct{}

	metrics        *telemetry.Set
	submitted      *telemetry.Var
	rejected       map[string]*telemetry.Var
	completed      map[JobState]*telemetry.Var
	coalesced      *telemetry.Var
	misses         *telemetry.Var
	recovered      map[string]*telemetry.Var
	journalErrors  *telemetry.Var
	workerPanics   *telemetry.Var
	workerRestarts *telemetry.Var
	shedRetryAfter *telemetry.Var
	degradedTotal  *telemetry.Var
	recoveredDur   *telemetry.Var
	queueWait      *telemetry.Histogram

	// The observability plane (observe.go): structured logger, flight
	// recorder, per-worker state slots, and the lazily registered
	// per-tenant shed counters. workerStates and the atomics are readable
	// without s.mu, which is what keeps /v1/debug responsive while the
	// serving path is busy or wedged.
	log          *slog.Logger
	flight       *flightRecorder
	workerStates []atomic.Pointer[workerState]
	jobsTotal    atomic.Int64
	drainingFlag atomic.Bool
	shedMu       sync.Mutex
	tenantSheds  map[string]*telemetry.Var

	// testHookJob, when set, runs on a worker just before each job is
	// processed — the seam the supervision tests use to inject panics.
	testHookJob func(*Job)

	mu             sync.Mutex
	draining       bool
	queue          chan *Job
	jobs           map[string]*Job
	order          []string
	seq            int
	leaders        map[string]*Job   // content key → in-flight cacheable run
	followers      map[string][]*Job // content key → jobs coalesced onto it
	tenantInFlight map[string]int
	running        int
	// pendingEnqueue counts fresh admissions that have left the depth
	// check but not yet pushed onto the queue: the WAL fsync now happens
	// between the two (an admission must be durable before its 202, and
	// a failed fsync must be able to un-admit), so the reservation keeps
	// the channel send non-blocking and the depth bound exact.
	pendingEnqueue int

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	mux       *http.ServeMux
}

// New validates the config, builds the server, and starts its worker
// pool. The returned server is live: Handler() can be mounted and jobs
// submitted immediately. Call Drain to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("service: Config.Registry is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runner.DefaultParallel()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.WatchHeartbeat <= 0 {
		cfg.WatchHeartbeat = 15 * time.Second
	}
	if cfg.DurabilityProbe <= 0 {
		cfg.DurabilityProbe = 2 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = durable.OS()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:            cfg,
		cache:          NewCache(cfg.CacheBytes),
		jobs:           make(map[string]*Job),
		leaders:        make(map[string]*Job),
		followers:      make(map[string][]*Job),
		tenantInFlight: make(map[string]int),
		log:            cfg.Logger,
		flight:         newFlightRecorder(cfg.FlightEvents),
		workerStates:   make([]atomic.Pointer[workerState], cfg.Workers),
		tenantSheds:    make(map[string]*telemetry.Var),
		fs:             cfg.FS,
		probeStop:      make(chan struct{}),
		compactCh:      make(chan struct{}, 1),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.initMetrics()
	// Recovery runs before the queue exists and before any worker starts:
	// the journal is replayed into job records, and jobs that were queued
	// at the crash come back as a requeue list.
	requeue, err := s.openDurable()
	if err != nil {
		return nil, err
	}
	// The queue is sized so replayed jobs never block the constructor even
	// when more jobs were pending at the crash than QueueDepth allows;
	// fresh admissions are checked against cfg.QueueDepth, not cap().
	s.queue = make(chan *Job, cfg.QueueDepth+len(requeue))
	for _, job := range requeue {
		s.queue <- job
	}
	s.initMux()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	if s.journal != nil {
		// The durability loop owns the recovery probe (re-arming a
		// degraded server) and background journal compaction; it exits
		// when Drain closes probeStop.
		s.wg.Add(1)
		go s.durabilityLoop()
	}
	return s, nil
}

// initMetrics registers the service-level counter set served by
// GET /v1/metrics. Queue, cache, and occupancy values are Func metrics
// read at scrape time from their owning structures.
func (s *Server) initMetrics() {
	m := telemetry.NewSet()
	s.metrics = m
	s.submitted = m.Counter("apusimd_jobs_submitted_total",
		"Jobs accepted for processing, including cache hits and coalesced jobs.")
	s.rejected = map[string]*telemetry.Var{}
	for _, reason := range []string{"queue_full", "tenant_limit", "draining", "invalid", "durability", "queue_slow"} {
		s.rejected[reason] = m.Counter("apusimd_jobs_rejected_total",
			"Submissions refused at admission, by reason.",
			telemetry.Label{Key: "reason", Value: reason})
	}
	s.completed = map[JobState]*telemetry.Var{}
	for _, st := range []JobState{JobOK, JobDegraded, JobViolated, JobFailed, JobCancelled, JobTimeout} {
		s.completed[st] = m.Counter("apusimd_jobs_completed_total",
			"Jobs that reached a terminal state, by state.",
			telemetry.Label{Key: "state", Value: string(st)})
	}
	m.CounterFunc("apusimd_cache_hits_total",
		"Submissions served verbatim from the stored result cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.coalesced = m.Counter("apusimd_cache_coalesced_total",
		"Submissions that waited on an identical in-flight run instead of re-simulating.")
	s.misses = m.Counter("apusimd_cache_misses_total",
		"Cache-participating submissions that required a fresh simulation.")
	m.CounterFunc("apusimd_cache_evictions_total",
		"Cache entries evicted to hold the LRU byte budget.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	m.GaugeFunc("apusimd_cache_bytes",
		"Bytes of manifests currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	m.GaugeFunc("apusimd_cache_entries",
		"Manifests currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	m.GaugeFunc("apusimd_queue_depth",
		"Jobs admitted and waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	m.GaugeFunc("apusimd_jobs_running",
		"Jobs currently simulating on workers.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	s.recovered = map[string]*telemetry.Var{}
	for _, outcome := range []string{"requeued", "interrupted", "from_cache", "completed", "failed"} {
		s.recovered[outcome] = m.Counter("apusimd_recovered_jobs_total",
			"Jobs rebuilt from the journal at startup, by recovery outcome.",
			telemetry.Label{Key: "outcome", Value: outcome})
	}
	m.CounterFunc("apusimd_cache_disk_hits_total",
		"Cache hits served from the durable store after a memory miss.",
		func() float64 { return float64(s.cache.Stats().DiskHits) })
	m.CounterFunc("apusimd_cache_quarantined_total",
		"Durable cache entries quarantined after failing verification.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().Quarantined)
		})
	m.GaugeFunc("apusimd_store_entries",
		"Verified entries resident in the durable store.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().Entries)
		})
	m.CounterFunc("apusimd_journal_appends_total",
		"Records appended to the job journal.",
		func() float64 {
			if s.journal == nil {
				return 0
			}
			return float64(s.journal.Stats().Appends)
		})
	m.CounterFunc("apusimd_journal_syncs_total",
		"fsync batches flushed to the job journal (group commit).",
		func() float64 {
			if s.journal == nil {
				return 0
			}
			return float64(s.journal.Stats().Syncs)
		})
	s.journalErrors = m.Counter("apusimd_journal_errors_total",
		"Journal appends or syncs that failed (jobs still ran, durability degraded).")
	m.GaugeFunc("apusimd_journal_segments",
		"Journal segment files currently on disk.",
		func() float64 {
			if s.journal == nil {
				return 0
			}
			return float64(s.journal.Stats().Segments)
		})
	m.CounterFunc("apusimd_journal_checkpoints_total",
		"Journal compactions: the live record set rewritten into a fresh segment.",
		func() float64 {
			if s.journal == nil {
				return 0
			}
			return float64(s.journal.Stats().Checkpoints)
		})
	m.CounterFunc("apusimd_store_put_errors_total",
		"Durable store writes that failed to reach disk.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().PutErrors)
		})
	m.CounterFunc("apusimd_store_quarantined_pruned_total",
		"Quarantined entries deleted to keep the quarantine dir bounded.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().QuarantinePruned)
		})
	m.GaugeFunc("apusimd_durability_armed",
		"1 while admissions are journaled durably; 0 in degraded or memory-only mode.",
		func() float64 {
			if s.durability.Load() == durabilityOK {
				return 1
			}
			return 0
		})
	s.degradedTotal = m.Counter("apusimd_durability_degraded_total",
		"Times a storage failure tripped the server into degraded memory-only mode.")
	s.recoveredDur = m.Counter("apusimd_durability_recovered_total",
		"Times the background probe re-armed durability after degradation.")
	s.queueWait = m.Histogram("apusimd_queue_wait_seconds",
		"Admission-to-pickup wall-clock wait across all jobs that reached a worker (drives latency-aware admission).",
		telemetry.LatencyBuckets())
	m.GaugeFunc("apusimd_queue_wait_p95_seconds",
		"p95 of apusimd_queue_wait_seconds: the latency-aware admission signal.",
		func() float64 { return s.queueWait.Quantile(0.95) })
	s.workerPanics = m.Counter("apusimd_worker_panics_total",
		"Panics that escaped a job and were isolated by the worker supervisor.")
	s.workerRestarts = m.Counter("apusimd_worker_restarts_total",
		"Worker loops respawned after a panic escaped job isolation.")
	s.shedRetryAfter = m.Gauge("apusimd_shed_retry_after_seconds",
		"Retry-After advised on the most recent load-shed 429 response.")
	s.initLatencyHistograms()
}

// Metrics exposes the server's counter set (tests and embedders).
func (s *Server) Metrics() *telemetry.Set { return s.metrics }

// CacheStats exposes the result cache's counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// worker is the self-healing worker loop: it drains the job queue until
// Drain closes it, and if a panic ever escapes per-job isolation it
// respawns the drain loop instead of silently shrinking the pool.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	for {
		if s.drainJobs(id) {
			return
		}
		s.workerRestarts.Inc()
		s.log.Error("worker restarted after an escaped panic", "worker", id)
	}
}

// drainJobs processes queued jobs until the queue closes (returning
// true) or a panic escapes processJob's own isolation (returning false
// so the worker respawns it).
func (s *Server) drainJobs(id int) (clean bool) {
	defer func() {
		if p := recover(); p != nil {
			s.workerPanics.Inc()
			s.setWorker(id, nil)
			clean = false
		}
	}()
	for job := range s.queue {
		s.processJob(id, job)
	}
	return true
}

// processJob runs one job on this worker. A panic inside the job path
// fails the job rather than the worker; a worker that picks up a job
// after a forced shutdown cancels it instead of simulating. The worker's
// state slot tracks which job and stage it is on for /v1/debug.
func (s *Server) processJob(id int, job *Job) {
	defer s.setWorker(id, nil)
	defer func() {
		if p := recover(); p != nil {
			s.workerPanics.Inc()
			s.log.Error("job panicked on worker",
				"worker", id, "job_id", job.id, "trace_id", job.traceID,
				"tenant", job.tenant, "panic", fmt.Sprint(p))
			s.finishJob(job, JobFailed, nil, fmt.Sprintf("worker panic: %v", p), 0)
		}
	}()
	exp := experimentLabel(job.spec)
	s.setWorker(id, &workerState{
		Job: job.id, Trace: job.traceID, Tenant: job.tenant,
		Experiment: exp, Stage: "starting", Since: time.Now().UTC(),
	})
	if hook := s.testHookJob; hook != nil {
		hook(job)
	}
	if err := s.runCtx.Err(); err != nil {
		s.finishJob(job, JobCancelled, nil, "cancelled: shutdown before the job ran", 0)
		return
	}
	job.setState(JobRunning)
	// The admission-to-pickup wait feeds latency-aware admission: once
	// p95 exceeds Config.MaxQueueWait under backlog, fresh submissions
	// shed before joining a queue that is already too slow.
	if st := job.Status(); st.QueuedNS > 0 {
		s.queueWait.Observe(float64(st.QueuedNS) / 1e9)
	}
	s.log.Info("job started",
		"worker", id, "job_id", job.id, "trace_id", job.traceID,
		"tenant", job.tenant, "experiment", exp)
	s.flight.Record(FlightEvent{Event: "start", Job: job.id, Trace: job.traceID,
		Tenant: job.tenant, Detail: exp})
	// The start record must be durable before the simulation begins:
	// if this job is what crashes the process, replay sees the start and
	// parks the job as interrupted instead of re-running it at boot — the
	// guard against a poisoned spec crash-looping the daemon.
	s.journalAppendSync(durable.Record{Op: durable.OpStart, Job: job.id})
	var res runner.Result
	var manifest []byte
	func() {
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.setWorker(id, &workerState{
			Job: job.id, Trace: job.traceID, Tenant: job.tenant,
			Experiment: exp, Stage: "simulating", Since: time.Now().UTC(),
		})
		// The occupancy gauge must come back down even if the simulation
		// panics out of this frame (the outer recover fails the job).
		defer func() {
			s.setWorker(id, nil)
			s.mu.Lock()
			s.running--
			s.mu.Unlock()
		}()
		res, manifest = s.simulate(job)
	}()
	errMsg := ""
	if res.Err != nil {
		errMsg = res.Err.Error()
	}
	s.finishJob(job, stateForStatus(res.Status), manifest, errMsg, res.Attempts)
}

// simulate runs one job on the runner — per-job engine, panic isolation,
// watchdog, deadline, retries — and renders its manifest. Wall-clock
// durations are zeroed before rendering: the manifest a service job
// returns is the deterministic simulated-time record, byte-identical for
// every run of the same normalized spec, which is what makes it cacheable
// under a content address.
func (s *Server) simulate(job *Job) (runner.Result, []byte) {
	spec := job.spec.normalized()
	reg := s.cfg.Registry
	id := spec.Experiment
	if spec.FaultPlan != nil {
		plan := spec.FaultPlan
		reg = runner.NewRegistry()
		reg.MustRegister(runner.Experiment{
			ID:   "faultplan",
			Desc: fmt.Sprintf("ad-hoc RAS fault plan (%d faults, seed %d)", len(plan.Faults), plan.Seed),
			Run: func(ctx *runner.Ctx) (string, error) {
				return s.cfg.FaultPlanRun(ctx, plan)
			},
		})
		id = "faultplan"
	}
	// The job's wall-clock deadline: the spec's timeout_ms may only
	// tighten the server default. Spec deadlines are enforced twice over —
	// the runner's per-attempt timer and a real deadline on the run
	// context — so a spec that retries cannot stretch its budget.
	timeout := s.cfg.JobTimeout
	runCtx := s.runCtx
	if spec.TimeoutMS > 0 {
		if d := time.Duration(spec.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(s.runCtx, timeout)
		defer cancel()
	}
	opts := runner.Options{
		Parallel:        1,
		IDs:             []string{id},
		Timeout:         timeout,
		Retries:         spec.Retries,
		RetryBackoff:    s.cfg.RetryBackoff,
		RetryBackoffMax: 10 * s.cfg.RetryBackoff,
		Context:         runCtx,
		SampleEvery:     sim.Time(spec.SampleNS) * sim.Nanosecond,
		SpanSample:      1,
		Audit:           spec.Audit,
		Strict:          spec.Strict,
		// The trace ID rides along for structured logging only; the runner
		// guarantees it never reaches a manifest or span dump, so cached
		// manifest bytes stay identical with or without it.
		TraceID: job.traceID,
	}
	if spec.Spans {
		opts.SpanSample = spec.SpanSample
	}
	suite, err := reg.RunSuite(opts)
	if err != nil {
		return runner.Result{ID: id, Status: runner.StatusError, Err: err, Attempts: 1}, nil
	}
	// A spec deadline firing mid-attempt surfaces as a context
	// cancellation, which is indistinguishable from shutdown inside the
	// runner. Out here it is distinguishable: the job's own deadline
	// expired while the server's run context is still live, so the
	// outcome is a timeout, not a cancellation.
	if spec.TimeoutMS > 0 && runCtx.Err() == context.DeadlineExceeded && s.runCtx.Err() == nil {
		if r := &suite.Results[0]; r.Status == runner.StatusCancelled {
			r.Status = runner.StatusTimeout
			if r.Err == nil {
				r.Err = fmt.Errorf("job exceeded its %v wall-clock deadline", timeout)
			}
		}
	}
	suite.Wall = 0
	for i := range suite.Results {
		suite.Results[i].Wall = 0
	}
	var buf bytes.Buffer
	if err := runner.BuildManifest(suite).WriteJSON(&buf); err != nil {
		return runner.Result{ID: id, Status: runner.StatusError, Err: err, Attempts: 1}, nil
	}
	return suite.Results[0], buf.Bytes()
}

// stateForStatus maps a runner status onto the job lifecycle.
func stateForStatus(st runner.Status) JobState {
	switch st {
	case runner.StatusOK:
		return JobOK
	case runner.StatusDegraded:
		return JobDegraded
	case runner.StatusViolated:
		return JobViolated
	case runner.StatusCancelled:
		return JobCancelled
	case runner.StatusTimeout:
		return JobTimeout
	default: // error, panic
		return JobFailed
	}
}

// cacheable reports whether a terminal state's manifest may be stored
// and reused. Only completed runs qualify: failures may be transient
// (timeouts, panics) and cancellations are shutdown artifacts.
func cacheable(state JobState) bool { return state == JobOK || state == JobDegraded }

// finishJob records a queue job's terminal outcome: stores the manifest
// under the job's content address, completes the job, and completes every
// coalesced follower with the same result.
func (s *Server) finishJob(job *Job, state JobState, manifest []byte, errMsg string, attempts int) {
	s.mu.Lock()
	var fols []*Job
	if !job.spec.NoCache {
		if s.leaders[job.key] == job {
			delete(s.leaders, job.key)
			fols = s.followers[job.key]
			delete(s.followers, job.key)
		}
		if cacheable(state) && manifest != nil {
			s.cache.Put(job.key, Entry{State: state, Manifest: manifest, Attempts: attempts})
		}
	}
	s.tenantInFlight[job.tenant]--
	if s.tenantInFlight[job.tenant] <= 0 {
		delete(s.tenantInFlight, job.tenant)
	}
	s.mu.Unlock()

	job.finish(state, manifest, errMsg, attempts)
	s.completed[state].Add(1)
	s.observeJobLatency(job)
	st := job.Status()
	s.log.Info("job finished",
		"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
		"state", string(state), "attempts", attempts, "error", errMsg,
		"queued_ns", st.QueuedNS, "run_ns", st.RunNS, "e2e_ns", st.E2ENS)
	s.flight.Record(FlightEvent{Event: "finish", Job: job.id, Trace: job.traceID,
		Tenant: job.tenant, Detail: string(state)})
	for _, f := range fols {
		f.finish(state, manifest, errMsg, attempts)
		s.completed[state].Add(1)
		s.observeJobLatency(f)
		s.log.Info("job finished",
			"job_id", f.id, "trace_id", f.traceID, "tenant", f.tenant,
			"state", string(state), "attempts", attempts, "error", errMsg,
			"coalesced", true)
		s.flight.Record(FlightEvent{Event: "finish", Job: f.id, Trace: f.traceID,
			Tenant: f.tenant, Detail: string(state)})
	}
	// Done records ride the next group commit rather than forcing their
	// own fsync: if they are lost to a crash, replay re-admits the job and
	// the content-addressed store finishes it from cache — idempotent.
	s.journalAppend(durable.Record{Op: durable.OpDone, Job: job.id, State: string(state), Attempts: attempts})
	for _, f := range fols {
		s.journalAppend(durable.Record{Op: durable.OpDone, Job: f.id, State: string(state), Attempts: attempts})
	}
	s.journalSync()
	s.maybeCompactJournal()
}

// Drain stops the server gracefully: new submissions are refused with
// 503, already-admitted jobs run to completion, and the call returns when
// the pool is idle. If ctx expires first, the drain turns forced — the
// shared run context is cancelled, in-flight attempts are abandoned with
// typed cancelled results, still-queued jobs are cancelled without
// running — and the ctx error is returned after the pool exits.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.drainingFlag.Store(true)
		close(s.queue)
		close(s.probeStop) // stops the durability loop so wg.Wait can finish
		s.log.Info("drain started", "queued", len(s.queue))
		s.flight.Record(FlightEvent{Event: "drain"})
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeJournal()
		return nil
	case <-ctx.Done():
		s.cancelRun()
		<-done
		s.closeJournal()
		return ctx.Err()
	}
}

// closeJournal flushes and closes the journal once the pool is idle, so
// buffered done records reach disk before the process exits. A graceful
// drain leaves mostly terminal jobs, so the journal is first checkpointed
// down to the (usually empty) live set — the next boot replays a handful
// of records instead of the whole run history.
func (s *Server) closeJournal() {
	s.journalClose.Do(func() {
		if s.journal == nil {
			return
		}
		if s.durabilityOKNow() {
			s.mu.Lock()
			recs := s.checkpointRecords()
			err := s.journal.Checkpoint(recs)
			s.mu.Unlock()
			if err != nil {
				s.journalErrors.Inc()
			}
		}
		if err := s.journal.Close(); err != nil {
			s.journalErrors.Inc()
		}
	})
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxSpecBytes bounds a submission body; fault plans are small.
const maxSpecBytes = 1 << 20

// initMux installs the HTTP API.
func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.handleManifest)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/debug", s.handleDebug)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux = mux
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// handleSubmit admits one job: parse and validate the spec, content-hash
// it, and either serve it from cache, coalesce it onto an identical
// in-flight run, or admit it to the queue (subject to tenant fairness and
// queue-depth limits).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Experiment != "" {
		if _, ok := s.cfg.Registry.Get(spec.Experiment); !ok {
			s.rejected["invalid"].Inc()
			writeErr(w, http.StatusBadRequest, "unknown experiment %q (GET /v1/experiments lists them)", spec.Experiment)
			return
		}
	}
	if spec.FaultPlan != nil && s.cfg.FaultPlanRun == nil {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusBadRequest, "this server does not accept fault-plan jobs")
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = DefaultTenant
	}
	key := spec.Hash()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected["draining"].Inc()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !spec.NoCache {
		// Coalesce before consulting storage: a key cannot be both
		// in-flight and stored, and checking the leader first keeps the
		// cache's hit/miss counters equal to "served from storage" /
		// "simulated fresh".
		if leader := s.leaders[key]; leader != nil {
			if code, msg := s.refuseUndurableLocked(); code != 0 {
				s.mu.Unlock()
				s.rejected["durability"].Inc()
				w.Header().Set("Retry-After", "1")
				writeErr(w, code, "%s", msg)
				return
			}
			job := s.newJobLocked(tenant, spec, key)
			job.coalesced = true
			s.followers[key] = append(s.followers[key], job)
			// The admission record goes to the journal directly, not via
			// journalAppend: a failure on this path must be able to revoke
			// the admission, never silently degrade it after a 202.
			durableAdmit := s.journal != nil && s.durabilityOKNow()
			var appendErr error
			if durableAdmit {
				appendErr = s.journal.Append(s.submitRecord(job))
			} else if s.journal != nil {
				job.markNonDurable()
			}
			s.mu.Unlock()
			if durableAdmit {
				// Sync before the 202: an acknowledged admission must
				// survive a crash, so a failed fsync rolls the admission
				// back with 503 instead of acknowledging it.
				err := appendErr
				if err == nil {
					err = s.journal.Sync()
				}
				if err != nil {
					s.journalErrors.Inc()
					s.tripDurability("submit journal write", err)
					s.mu.Lock()
					if job.currentState().Terminal() {
						// The leader finished during the fsync window: the
						// follower holds a real completed result, so the
						// honest response is the admission, not a 503.
						s.mu.Unlock()
					} else {
						fols := s.followers[key]
						for i, f := range fols {
							if f == job {
								s.followers[key] = append(fols[:i], fols[i+1:]...)
								break
							}
						}
						s.unregisterJobLocked(job)
						s.mu.Unlock()
						s.rejected["durability"].Inc()
						w.Header().Set("Retry-After", "1")
						writeErr(w, http.StatusServiceUnavailable,
							"could not journal the admission durably: %v", err)
						return
					}
				}
			}
			s.submitted.Inc()
			s.coalesced.Inc()
			s.log.Info("job admitted",
				"job_id", job.id, "trace_id", job.traceID, "tenant", tenant,
				"experiment", experimentLabel(spec), "coalesced", true,
				"durability", s.durabilityStateName())
			s.flight.Record(FlightEvent{Event: "coalesce", Job: job.id,
				Trace: job.traceID, Tenant: tenant, Detail: experimentLabel(spec)})
			writeJSON(w, http.StatusAccepted, job.Status())
			return
		}
		if e, ok := s.cache.Get(key); ok {
			job := s.newJobLocked(tenant, spec, key)
			job.cacheHit = true
			s.mu.Unlock()
			s.submitted.Inc()
			job.finish(e.State, e.Manifest, "", e.Attempts)
			s.completed[e.State].Add(1)
			s.observeJobLatency(job)
			s.log.Info("job served from cache",
				"job_id", job.id, "trace_id", job.traceID, "tenant", tenant,
				"experiment", experimentLabel(spec), "state", string(e.State))
			s.flight.Record(FlightEvent{Event: "cache_hit", Job: job.id,
				Trace: job.traceID, Tenant: tenant, Detail: experimentLabel(spec)})
			writeJSON(w, http.StatusOK, job.Status())
			return
		}
	}
	// A fresh simulation is needed: admission control applies.
	if s.cfg.TenantMaxInFlight > 0 && s.tenantInFlight[tenant] >= s.cfg.TenantMaxInFlight {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.shed(tenant, "tenant_limit", retry)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeErr(w, http.StatusTooManyRequests, "tenant %q already has %d jobs in flight (limit %d)",
			tenant, s.cfg.TenantMaxInFlight, s.cfg.TenantMaxInFlight)
		return
	}
	// Fresh admissions are bounded by the configured depth, not the
	// channel capacity — after a crash the channel is oversized to hold
	// replayed jobs, and that headroom is not new admission budget.
	// pendingEnqueue counts admissions currently between their WAL fsync
	// and their channel send, so reservations hold the bound exact.
	if len(s.queue)+s.pendingEnqueue >= s.cfg.QueueDepth {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.shed(tenant, "queue_full", retry)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeErr(w, http.StatusTooManyRequests, "job queue is full (%d deep); retry with backoff", s.cfg.QueueDepth)
		return
	}
	if p95, slow := s.queueTooSlowLocked(); slow {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.shed(tenant, "queue_slow", retry)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeErr(w, http.StatusTooManyRequests,
			"queue wait p95 %.2fs exceeds the %s bound; retry with backoff",
			p95, s.cfg.MaxQueueWait)
		return
	}
	if code, msg := s.refuseUndurableLocked(); code != 0 {
		s.mu.Unlock()
		s.rejected["durability"].Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, code, "%s", msg)
		return
	}
	job := s.newJobLocked(tenant, spec, key)
	s.tenantInFlight[tenant]++
	s.pendingEnqueue++
	// The submit record is appended before the job becomes reachable via
	// the queue, so it always precedes the worker's start record. It goes
	// to the journal directly, not via journalAppend: a failure must be
	// able to un-admit the job rather than silently degrade after a 202.
	// The leader slot is NOT claimed yet — a concurrent duplicate during
	// the fsync window below leads its own run (rare duplicate work)
	// instead of coalescing onto an admission that may yet roll back.
	durableAdmit := s.journal != nil && s.durabilityOKNow()
	var appendErr error
	if durableAdmit {
		appendErr = s.journal.Append(s.submitRecord(job))
	} else if s.journal != nil {
		job.markNonDurable()
	}
	s.mu.Unlock()

	if durableAdmit {
		// Durable before the 202 acknowledgement: the fsync happens outside
		// s.mu (it is the slowest step on the submit path), with the queue
		// slot reserved above so the later channel send cannot block.
		err := appendErr
		if err == nil {
			err = s.journal.Sync()
		}
		if err != nil {
			s.journalErrors.Inc()
			s.tripDurability("submit journal write", err)
			s.mu.Lock()
			s.pendingEnqueue--
			s.unadmitFreshLocked(job)
			s.mu.Unlock()
			s.rejected["durability"].Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable,
				"could not journal the admission durably: %v", err)
			return
		}
	}

	s.mu.Lock()
	s.pendingEnqueue--
	if s.draining {
		// Drain began during the fsync window and closed the queue channel;
		// the job was never acknowledged, so roll the admission back.
		s.unadmitFreshLocked(job)
		s.mu.Unlock()
		s.rejected["draining"].Inc()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !spec.NoCache && s.leaders[key] == nil {
		s.leaders[key] = job
	}
	s.queue <- job // cannot block: slot reserved via pendingEnqueue under s.mu
	s.mu.Unlock()
	s.submitted.Inc()
	if !spec.NoCache {
		s.misses.Inc()
	}
	s.log.Info("job admitted",
		"job_id", job.id, "trace_id", job.traceID, "tenant", tenant,
		"experiment", experimentLabel(spec), "spec_hash", key,
		"durability", s.durabilityStateName())
	s.flight.Record(FlightEvent{Event: "submit", Job: job.id,
		Trace: job.traceID, Tenant: tenant, Detail: experimentLabel(spec)})
	writeJSON(w, http.StatusAccepted, job.Status())
}

// refuseUndurableLocked is the RequireDurability gate: a non-zero status
// code means the admission must be refused because it cannot be journaled
// durably right now. s.mu must be held.
func (s *Server) refuseUndurableLocked() (int, string) {
	if s.journal == nil || s.durabilityOKNow() || !s.cfg.RequireDurability {
		return 0, ""
	}
	return http.StatusServiceUnavailable,
		"storage durability is degraded and this server requires durable admissions; retry shortly"
}

// minQueueWaitSamples is how many queue-wait observations the latency
// shedder needs before it trusts the p95.
const minQueueWaitSamples = 8

// queueTooSlowLocked is the latency-aware admission check: shed when the
// observed p95 queue wait exceeds Config.MaxQueueWait. It holds its fire
// below a minimum sample count and while the server is idle — the
// histogram never decays, so a slow period an hour ago must not shed on
// a drained queue. s.mu must be held.
func (s *Server) queueTooSlowLocked() (p95 float64, slow bool) {
	if s.cfg.MaxQueueWait <= 0 || s.queueWait.Count() < minQueueWaitSamples {
		return 0, false
	}
	if len(s.queue)+s.pendingEnqueue == 0 && s.running < s.cfg.Workers {
		return 0, false
	}
	p95 = s.queueWait.Quantile(0.95)
	return p95, p95 > s.cfg.MaxQueueWait.Seconds()
}

// unadmitFreshLocked rolls back a fresh admission whose WAL record never
// reached disk (or whose queue closed mid-admission): the job was never
// acknowledged, so every trace of it is removed as if the submit had been
// refused outright. s.mu must be held.
func (s *Server) unadmitFreshLocked(job *Job) {
	if s.leaders[job.key] == job {
		delete(s.leaders, job.key)
	}
	s.tenantInFlight[job.tenant]--
	if s.tenantInFlight[job.tenant] <= 0 {
		delete(s.tenantInFlight, job.tenant)
	}
	s.unregisterJobLocked(job)
}

// unregisterJobLocked removes a never-acknowledged job from the job
// table and submission order. s.mu must be held.
func (s *Server) unregisterJobLocked(job *Job) {
	delete(s.jobs, job.id)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == job.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.jobsTotal.Add(-1)
}

// retryAfterLocked derives the Retry-After seconds advised on load-shed
// 429s from current queue pressure: roughly one worker-pass over the
// backlog, never less than a second. s.mu must be held.
func (s *Server) retryAfterLocked() int {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	retry := (len(s.queue) + s.running + workers - 1) / workers
	if retry < 1 {
		retry = 1
	}
	s.shedRetryAfter.Set(float64(retry))
	return retry
}

// newJobLocked allocates and registers a job; s.mu must be held.
func (s *Server) newJobLocked(tenant string, spec *Spec, key string) *Job {
	s.seq++
	id := fmt.Sprintf("j-%06d", s.seq)
	job := newJob(id, tenant, spec, key)
	job.traceID = traceIDFor(id, key)
	job.seq = s.seq
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.jobsTotal.Add(1)
	return job
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleStatus serves one job's status; with ?watch=1 it streams every
// transition as newline-delimited JSON until the job is terminal.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(r.PathValue("id"))
	if job == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.maybeRequeueInterrupted(job)
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, job.Status())
		return
	}
	ch := job.subscribe()
	defer job.unsubscribe(ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	// Heartbeats keep the stream visibly alive between transitions, so a
	// watcher behind a buffering proxy can tell a long-running job from a
	// dead connection. The record shape is a subset of JobStatus plus a
	// "heartbeat" marker: old clients decode it as a harmless status echo.
	hb := time.NewTicker(s.cfg.WatchHeartbeat)
	defer hb.Stop()
	type heartbeat struct {
		Heartbeat bool      `json:"heartbeat"`
		ID        string    `json:"id"`
		State     JobState  `json:"state"`
		At        time.Time `json:"at"`
	}
	for {
		select {
		case st := <-ch:
			if err := enc.Encode(st); err != nil {
				return
			}
			flush()
			if st.State.Terminal() {
				return
			}
		case <-hb.C:
			if err := enc.Encode(heartbeat{
				Heartbeat: true, ID: job.id,
				State: job.currentState(), At: time.Now().UTC(),
			}); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleManifest serves the job's stored run manifest verbatim. For a
// job recovered as already-completed, the manifest bytes live in the
// durable store rather than on the job record; they are fetched by
// content address on demand.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(r.PathValue("id"))
	if job == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.maybeRequeueInterrupted(job)
	m := job.Manifest()
	if m == nil {
		st := job.Status()
		if st.Recovered && cacheable(st.State) {
			if e, ok := s.cache.Peek(job.key); ok {
				m = e.Manifest
			}
		}
	}
	if m == nil {
		writeErr(w, http.StatusNotFound, "job %s has no manifest (state %s)", job.id, job.Status().State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(m)
}

// knownJobStates is the set ?status= may filter on.
var knownJobStates = map[JobState]bool{
	JobQueued: true, JobRunning: true, JobInterrupted: true,
	JobOK: true, JobDegraded: true, JobViolated: true,
	JobFailed: true, JobCancelled: true, JobTimeout: true,
}

// handleList serves job statuses in stable submission order (recovered
// jobs first, in their original admission order — job IDs are preserved
// across restarts). An optional ?status= query keeps only jobs currently
// in that state; unknown states are a 400, not an empty list, so a typo
// ("sucess") cannot read as "no such jobs".
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := JobState(r.URL.Query().Get("status"))
	if filter != "" && !knownJobStates[filter] {
		states := make([]string, 0, len(knownJobStates))
		for st := range knownJobStates {
			states = append(states, string(st))
		}
		sort.Strings(states)
		writeErr(w, http.StatusBadRequest, "unknown status %q (one of: %s)", filter, strings.Join(states, ", "))
		return
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		st := j.Status()
		if filter != "" && st.State != filter {
			continue
		}
		out.Jobs = append(out.Jobs, st)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the service counters in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WritePromText(w)
}

// handleHealthz serves liveness plus the drain flag and durability state,
// so load balancers can stop routing before shutdown completes and
// operators can spot a server running memory-only on a failing disk.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := struct {
		Status     string `json:"status"`
		Draining   bool   `json:"draining"`
		Durability string `json:"durability"`
		Jobs       int    `json:"jobs"`
	}{Status: "ok", Draining: s.draining, Durability: s.durabilityStateName(), Jobs: len(s.jobs)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleExperiments lists the runnable experiment IDs.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expEntry struct {
		ID   string `json:"id"`
		Desc string `json:"desc"`
	}
	out := struct {
		Experiments []expEntry `json:"experiments"`
	}{Experiments: []expEntry{}}
	for _, e := range s.cfg.Registry.Experiments() {
		out.Experiments = append(out.Experiments, expEntry{ID: e.ID, Desc: e.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}
