package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/ras"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config wires a Server's dependencies and limits. Registry is the only
// required field.
type Config struct {
	// Registry supplies the experiments jobs may run.
	Registry *runner.Registry
	// FaultPlanRun executes an ad-hoc fault-plan job (the cmd/repro
	// -faults path). Nil rejects fault-plan specs at submission.
	FaultPlanRun func(*runner.Ctx, *ras.Plan) (string, error)
	// Workers is the worker-pool width; <= 0 selects one per CPU.
	Workers int
	// QueueDepth bounds the admitted-but-not-running backlog; a full
	// queue rejects submissions with 429. <= 0 selects 64.
	QueueDepth int
	// TenantMaxInFlight caps one tenant's queued+running fresh jobs, so a
	// sweep from one client cannot starve everyone else; 0 disables the
	// cap. Cache hits and coalesced jobs are exempt — they consume no
	// worker.
	TenantMaxInFlight int
	// CacheBytes is the result cache's LRU byte budget; <= 0 selects
	// 64 MiB. Set to 1 to effectively disable caching (no manifest fits).
	CacheBytes int64
	// JobTimeout is the per-job wall-clock deadline; <= 0 selects 2m.
	JobTimeout time.Duration
	// DataDir, when non-empty, makes the server crash-safe: results are
	// persisted to a content-addressed store under this directory and
	// every admission is journaled, so a restart replays interrupted work
	// instead of losing it. Empty keeps the daemon memory-only.
	DataDir string
	// RetryBackoff is the base delay between a job's retry attempts;
	// <= 0 selects 100ms. Delays grow exponentially per attempt with
	// deterministic jitter and are capped at 10x the base.
	RetryBackoff time.Duration
	// Logger receives the daemon's structured log records (job lifecycle,
	// admission control, recovery, drain). Nil discards them.
	Logger *slog.Logger
	// WatchHeartbeat is the cadence of keep-alive records on ?watch=1
	// streams between state transitions; <= 0 selects 15s.
	WatchHeartbeat time.Duration
	// FlightEvents sizes the flight recorder's ring of recent lifecycle
	// events (served by GET /v1/debug, dumped on SIGQUIT); <= 0 selects
	// 256.
	FlightEvents int
}

// DefaultTenant is the tenant jobs without an X-Tenant header bill to.
const DefaultTenant = "default"

// Server is the simulation-as-a-service daemon core: job store, bounded
// queue, worker pool, result cache, and HTTP API. Construct with New,
// serve Handler(), stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache

	// store and journal are the durability layer; both nil when
	// Config.DataDir is empty. journalClose makes the flush-on-drain
	// idempotent (tests call Drain more than once).
	store        *durable.Store
	journal      *durable.Journal
	journalClose sync.Once

	metrics        *telemetry.Set
	submitted      *telemetry.Var
	rejected       map[string]*telemetry.Var
	completed      map[JobState]*telemetry.Var
	coalesced      *telemetry.Var
	misses         *telemetry.Var
	recovered      map[string]*telemetry.Var
	journalErrors  *telemetry.Var
	workerPanics   *telemetry.Var
	workerRestarts *telemetry.Var
	shedRetryAfter *telemetry.Var

	// The observability plane (observe.go): structured logger, flight
	// recorder, per-worker state slots, and the lazily registered
	// per-tenant shed counters. workerStates and the atomics are readable
	// without s.mu, which is what keeps /v1/debug responsive while the
	// serving path is busy or wedged.
	log          *slog.Logger
	flight       *flightRecorder
	workerStates []atomic.Pointer[workerState]
	jobsTotal    atomic.Int64
	drainingFlag atomic.Bool
	shedMu       sync.Mutex
	tenantSheds  map[string]*telemetry.Var

	// testHookJob, when set, runs on a worker just before each job is
	// processed — the seam the supervision tests use to inject panics.
	testHookJob func(*Job)

	mu             sync.Mutex
	draining       bool
	queue          chan *Job
	jobs           map[string]*Job
	order          []string
	seq            int
	leaders        map[string]*Job   // content key → in-flight cacheable run
	followers      map[string][]*Job // content key → jobs coalesced onto it
	tenantInFlight map[string]int
	running        int

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	mux       *http.ServeMux
}

// New validates the config, builds the server, and starts its worker
// pool. The returned server is live: Handler() can be mounted and jobs
// submitted immediately. Call Drain to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("service: Config.Registry is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runner.DefaultParallel()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.WatchHeartbeat <= 0 {
		cfg.WatchHeartbeat = 15 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:            cfg,
		cache:          NewCache(cfg.CacheBytes),
		jobs:           make(map[string]*Job),
		leaders:        make(map[string]*Job),
		followers:      make(map[string][]*Job),
		tenantInFlight: make(map[string]int),
		log:            cfg.Logger,
		flight:         newFlightRecorder(cfg.FlightEvents),
		workerStates:   make([]atomic.Pointer[workerState], cfg.Workers),
		tenantSheds:    make(map[string]*telemetry.Var),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.initMetrics()
	// Recovery runs before the queue exists and before any worker starts:
	// the journal is replayed into job records, and jobs that were queued
	// at the crash come back as a requeue list.
	requeue, err := s.openDurable()
	if err != nil {
		return nil, err
	}
	// The queue is sized so replayed jobs never block the constructor even
	// when more jobs were pending at the crash than QueueDepth allows;
	// fresh admissions are checked against cfg.QueueDepth, not cap().
	s.queue = make(chan *Job, cfg.QueueDepth+len(requeue))
	for _, job := range requeue {
		s.queue <- job
	}
	s.initMux()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// initMetrics registers the service-level counter set served by
// GET /v1/metrics. Queue, cache, and occupancy values are Func metrics
// read at scrape time from their owning structures.
func (s *Server) initMetrics() {
	m := telemetry.NewSet()
	s.metrics = m
	s.submitted = m.Counter("apusimd_jobs_submitted_total",
		"Jobs accepted for processing, including cache hits and coalesced jobs.")
	s.rejected = map[string]*telemetry.Var{}
	for _, reason := range []string{"queue_full", "tenant_limit", "draining", "invalid"} {
		s.rejected[reason] = m.Counter("apusimd_jobs_rejected_total",
			"Submissions refused at admission, by reason.",
			telemetry.Label{Key: "reason", Value: reason})
	}
	s.completed = map[JobState]*telemetry.Var{}
	for _, st := range []JobState{JobOK, JobDegraded, JobViolated, JobFailed, JobCancelled} {
		s.completed[st] = m.Counter("apusimd_jobs_completed_total",
			"Jobs that reached a terminal state, by state.",
			telemetry.Label{Key: "state", Value: string(st)})
	}
	m.CounterFunc("apusimd_cache_hits_total",
		"Submissions served verbatim from the stored result cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.coalesced = m.Counter("apusimd_cache_coalesced_total",
		"Submissions that waited on an identical in-flight run instead of re-simulating.")
	s.misses = m.Counter("apusimd_cache_misses_total",
		"Cache-participating submissions that required a fresh simulation.")
	m.CounterFunc("apusimd_cache_evictions_total",
		"Cache entries evicted to hold the LRU byte budget.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	m.GaugeFunc("apusimd_cache_bytes",
		"Bytes of manifests currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	m.GaugeFunc("apusimd_cache_entries",
		"Manifests currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	m.GaugeFunc("apusimd_queue_depth",
		"Jobs admitted and waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	m.GaugeFunc("apusimd_jobs_running",
		"Jobs currently simulating on workers.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	s.recovered = map[string]*telemetry.Var{}
	for _, outcome := range []string{"requeued", "interrupted", "from_cache", "completed", "failed"} {
		s.recovered[outcome] = m.Counter("apusimd_recovered_jobs_total",
			"Jobs rebuilt from the journal at startup, by recovery outcome.",
			telemetry.Label{Key: "outcome", Value: outcome})
	}
	m.CounterFunc("apusimd_cache_disk_hits_total",
		"Cache hits served from the durable store after a memory miss.",
		func() float64 { return float64(s.cache.Stats().DiskHits) })
	m.CounterFunc("apusimd_cache_quarantined_total",
		"Durable cache entries quarantined after failing verification.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().Quarantined)
		})
	m.GaugeFunc("apusimd_store_entries",
		"Verified entries resident in the durable store.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().Entries)
		})
	m.CounterFunc("apusimd_journal_appends_total",
		"Records appended to the job journal.",
		func() float64 {
			if s.journal == nil {
				return 0
			}
			return float64(s.journal.Stats().Appends)
		})
	m.CounterFunc("apusimd_journal_syncs_total",
		"fsync batches flushed to the job journal (group commit).",
		func() float64 {
			if s.journal == nil {
				return 0
			}
			return float64(s.journal.Stats().Syncs)
		})
	s.journalErrors = m.Counter("apusimd_journal_errors_total",
		"Journal appends or syncs that failed (jobs still ran, durability degraded).")
	s.workerPanics = m.Counter("apusimd_worker_panics_total",
		"Panics that escaped a job and were isolated by the worker supervisor.")
	s.workerRestarts = m.Counter("apusimd_worker_restarts_total",
		"Worker loops respawned after a panic escaped job isolation.")
	s.shedRetryAfter = m.Gauge("apusimd_shed_retry_after_seconds",
		"Retry-After advised on the most recent load-shed 429 response.")
	s.initLatencyHistograms()
}

// Metrics exposes the server's counter set (tests and embedders).
func (s *Server) Metrics() *telemetry.Set { return s.metrics }

// CacheStats exposes the result cache's counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// worker is the self-healing worker loop: it drains the job queue until
// Drain closes it, and if a panic ever escapes per-job isolation it
// respawns the drain loop instead of silently shrinking the pool.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	for {
		if s.drainJobs(id) {
			return
		}
		s.workerRestarts.Inc()
		s.log.Error("worker restarted after an escaped panic", "worker", id)
	}
}

// drainJobs processes queued jobs until the queue closes (returning
// true) or a panic escapes processJob's own isolation (returning false
// so the worker respawns it).
func (s *Server) drainJobs(id int) (clean bool) {
	defer func() {
		if p := recover(); p != nil {
			s.workerPanics.Inc()
			s.setWorker(id, nil)
			clean = false
		}
	}()
	for job := range s.queue {
		s.processJob(id, job)
	}
	return true
}

// processJob runs one job on this worker. A panic inside the job path
// fails the job rather than the worker; a worker that picks up a job
// after a forced shutdown cancels it instead of simulating. The worker's
// state slot tracks which job and stage it is on for /v1/debug.
func (s *Server) processJob(id int, job *Job) {
	defer s.setWorker(id, nil)
	defer func() {
		if p := recover(); p != nil {
			s.workerPanics.Inc()
			s.log.Error("job panicked on worker",
				"worker", id, "job_id", job.id, "trace_id", job.traceID,
				"tenant", job.tenant, "panic", fmt.Sprint(p))
			s.finishJob(job, JobFailed, nil, fmt.Sprintf("worker panic: %v", p), 0)
		}
	}()
	exp := experimentLabel(job.spec)
	s.setWorker(id, &workerState{
		Job: job.id, Trace: job.traceID, Tenant: job.tenant,
		Experiment: exp, Stage: "starting", Since: time.Now().UTC(),
	})
	if hook := s.testHookJob; hook != nil {
		hook(job)
	}
	if err := s.runCtx.Err(); err != nil {
		s.finishJob(job, JobCancelled, nil, "cancelled: shutdown before the job ran", 0)
		return
	}
	job.setState(JobRunning)
	s.log.Info("job started",
		"worker", id, "job_id", job.id, "trace_id", job.traceID,
		"tenant", job.tenant, "experiment", exp)
	s.flight.Record(FlightEvent{Event: "start", Job: job.id, Trace: job.traceID,
		Tenant: job.tenant, Detail: exp})
	// The start record must be durable before the simulation begins:
	// if this job is what crashes the process, replay sees the start and
	// parks the job as interrupted instead of re-running it at boot — the
	// guard against a poisoned spec crash-looping the daemon.
	s.journalAppendSync(durable.Record{Op: durable.OpStart, Job: job.id})
	var res runner.Result
	var manifest []byte
	func() {
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.setWorker(id, &workerState{
			Job: job.id, Trace: job.traceID, Tenant: job.tenant,
			Experiment: exp, Stage: "simulating", Since: time.Now().UTC(),
		})
		// The occupancy gauge must come back down even if the simulation
		// panics out of this frame (the outer recover fails the job).
		defer func() {
			s.setWorker(id, nil)
			s.mu.Lock()
			s.running--
			s.mu.Unlock()
		}()
		res, manifest = s.simulate(job)
	}()
	errMsg := ""
	if res.Err != nil {
		errMsg = res.Err.Error()
	}
	s.finishJob(job, stateForStatus(res.Status), manifest, errMsg, res.Attempts)
}

// simulate runs one job on the runner — per-job engine, panic isolation,
// watchdog, deadline, retries — and renders its manifest. Wall-clock
// durations are zeroed before rendering: the manifest a service job
// returns is the deterministic simulated-time record, byte-identical for
// every run of the same normalized spec, which is what makes it cacheable
// under a content address.
func (s *Server) simulate(job *Job) (runner.Result, []byte) {
	spec := job.spec.normalized()
	reg := s.cfg.Registry
	id := spec.Experiment
	if spec.FaultPlan != nil {
		plan := spec.FaultPlan
		reg = runner.NewRegistry()
		reg.MustRegister(runner.Experiment{
			ID:   "faultplan",
			Desc: fmt.Sprintf("ad-hoc RAS fault plan (%d faults, seed %d)", len(plan.Faults), plan.Seed),
			Run: func(ctx *runner.Ctx) (string, error) {
				return s.cfg.FaultPlanRun(ctx, plan)
			},
		})
		id = "faultplan"
	}
	opts := runner.Options{
		Parallel:        1,
		IDs:             []string{id},
		Timeout:         s.cfg.JobTimeout,
		Retries:         spec.Retries,
		RetryBackoff:    s.cfg.RetryBackoff,
		RetryBackoffMax: 10 * s.cfg.RetryBackoff,
		Context:         s.runCtx,
		SampleEvery:     sim.Time(spec.SampleNS) * sim.Nanosecond,
		SpanSample:      1,
		Audit:           spec.Audit,
		Strict:          spec.Strict,
		// The trace ID rides along for structured logging only; the runner
		// guarantees it never reaches a manifest or span dump, so cached
		// manifest bytes stay identical with or without it.
		TraceID: job.traceID,
	}
	if spec.Spans {
		opts.SpanSample = spec.SpanSample
	}
	suite, err := reg.RunSuite(opts)
	if err != nil {
		return runner.Result{ID: id, Status: runner.StatusError, Err: err, Attempts: 1}, nil
	}
	suite.Wall = 0
	for i := range suite.Results {
		suite.Results[i].Wall = 0
	}
	var buf bytes.Buffer
	if err := runner.BuildManifest(suite).WriteJSON(&buf); err != nil {
		return runner.Result{ID: id, Status: runner.StatusError, Err: err, Attempts: 1}, nil
	}
	return suite.Results[0], buf.Bytes()
}

// stateForStatus maps a runner status onto the job lifecycle.
func stateForStatus(st runner.Status) JobState {
	switch st {
	case runner.StatusOK:
		return JobOK
	case runner.StatusDegraded:
		return JobDegraded
	case runner.StatusViolated:
		return JobViolated
	case runner.StatusCancelled:
		return JobCancelled
	default: // error, panic, timeout
		return JobFailed
	}
}

// cacheable reports whether a terminal state's manifest may be stored
// and reused. Only completed runs qualify: failures may be transient
// (timeouts, panics) and cancellations are shutdown artifacts.
func cacheable(state JobState) bool { return state == JobOK || state == JobDegraded }

// finishJob records a queue job's terminal outcome: stores the manifest
// under the job's content address, completes the job, and completes every
// coalesced follower with the same result.
func (s *Server) finishJob(job *Job, state JobState, manifest []byte, errMsg string, attempts int) {
	s.mu.Lock()
	var fols []*Job
	if !job.spec.NoCache {
		if s.leaders[job.key] == job {
			delete(s.leaders, job.key)
			fols = s.followers[job.key]
			delete(s.followers, job.key)
		}
		if cacheable(state) && manifest != nil {
			s.cache.Put(job.key, Entry{State: state, Manifest: manifest, Attempts: attempts})
		}
	}
	s.tenantInFlight[job.tenant]--
	if s.tenantInFlight[job.tenant] <= 0 {
		delete(s.tenantInFlight, job.tenant)
	}
	s.mu.Unlock()

	job.finish(state, manifest, errMsg, attempts)
	s.completed[state].Add(1)
	s.observeJobLatency(job)
	st := job.Status()
	s.log.Info("job finished",
		"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
		"state", string(state), "attempts", attempts, "error", errMsg,
		"queued_ns", st.QueuedNS, "run_ns", st.RunNS, "e2e_ns", st.E2ENS)
	s.flight.Record(FlightEvent{Event: "finish", Job: job.id, Trace: job.traceID,
		Tenant: job.tenant, Detail: string(state)})
	for _, f := range fols {
		f.finish(state, manifest, errMsg, attempts)
		s.completed[state].Add(1)
		s.observeJobLatency(f)
		s.log.Info("job finished",
			"job_id", f.id, "trace_id", f.traceID, "tenant", f.tenant,
			"state", string(state), "attempts", attempts, "error", errMsg,
			"coalesced", true)
		s.flight.Record(FlightEvent{Event: "finish", Job: f.id, Trace: f.traceID,
			Tenant: f.tenant, Detail: string(state)})
	}
	// Done records ride the next group commit rather than forcing their
	// own fsync: if they are lost to a crash, replay re-admits the job and
	// the content-addressed store finishes it from cache — idempotent.
	s.journalAppend(durable.Record{Op: durable.OpDone, Job: job.id, State: string(state), Attempts: attempts})
	for _, f := range fols {
		s.journalAppend(durable.Record{Op: durable.OpDone, Job: f.id, State: string(state), Attempts: attempts})
	}
	s.journalSync()
}

// Drain stops the server gracefully: new submissions are refused with
// 503, already-admitted jobs run to completion, and the call returns when
// the pool is idle. If ctx expires first, the drain turns forced — the
// shared run context is cancelled, in-flight attempts are abandoned with
// typed cancelled results, still-queued jobs are cancelled without
// running — and the ctx error is returned after the pool exits.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.drainingFlag.Store(true)
		close(s.queue)
		s.log.Info("drain started", "queued", len(s.queue))
		s.flight.Record(FlightEvent{Event: "drain"})
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeJournal()
		return nil
	case <-ctx.Done():
		s.cancelRun()
		<-done
		s.closeJournal()
		return ctx.Err()
	}
}

// closeJournal flushes and closes the journal once the pool is idle, so
// buffered done records reach disk before the process exits.
func (s *Server) closeJournal() {
	s.journalClose.Do(func() {
		if s.journal != nil {
			if err := s.journal.Close(); err != nil {
				s.journalErrors.Inc()
			}
		}
	})
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxSpecBytes bounds a submission body; fault plans are small.
const maxSpecBytes = 1 << 20

// initMux installs the HTTP API.
func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.handleManifest)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/debug", s.handleDebug)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux = mux
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// handleSubmit admits one job: parse and validate the spec, content-hash
// it, and either serve it from cache, coalesce it onto an identical
// in-flight run, or admit it to the queue (subject to tenant fairness and
// queue-depth limits).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Experiment != "" {
		if _, ok := s.cfg.Registry.Get(spec.Experiment); !ok {
			s.rejected["invalid"].Inc()
			writeErr(w, http.StatusBadRequest, "unknown experiment %q (GET /v1/experiments lists them)", spec.Experiment)
			return
		}
	}
	if spec.FaultPlan != nil && s.cfg.FaultPlanRun == nil {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusBadRequest, "this server does not accept fault-plan jobs")
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = DefaultTenant
	}
	key := spec.Hash()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected["draining"].Inc()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !spec.NoCache {
		// Coalesce before consulting storage: a key cannot be both
		// in-flight and stored, and checking the leader first keeps the
		// cache's hit/miss counters equal to "served from storage" /
		// "simulated fresh".
		if leader := s.leaders[key]; leader != nil {
			job := s.newJobLocked(tenant, spec, key)
			job.coalesced = true
			s.followers[key] = append(s.followers[key], job)
			s.journalAppend(s.submitRecord(job))
			s.mu.Unlock()
			// Sync before the 202: an acknowledged admission must survive
			// a crash.
			s.journalSync()
			s.submitted.Inc()
			s.coalesced.Inc()
			s.log.Info("job admitted",
				"job_id", job.id, "trace_id", job.traceID, "tenant", tenant,
				"experiment", experimentLabel(spec), "coalesced", true)
			s.flight.Record(FlightEvent{Event: "coalesce", Job: job.id,
				Trace: job.traceID, Tenant: tenant, Detail: experimentLabel(spec)})
			writeJSON(w, http.StatusAccepted, job.Status())
			return
		}
		if e, ok := s.cache.Get(key); ok {
			job := s.newJobLocked(tenant, spec, key)
			job.cacheHit = true
			s.mu.Unlock()
			s.submitted.Inc()
			job.finish(e.State, e.Manifest, "", e.Attempts)
			s.completed[e.State].Add(1)
			s.observeJobLatency(job)
			s.log.Info("job served from cache",
				"job_id", job.id, "trace_id", job.traceID, "tenant", tenant,
				"experiment", experimentLabel(spec), "state", string(e.State))
			s.flight.Record(FlightEvent{Event: "cache_hit", Job: job.id,
				Trace: job.traceID, Tenant: tenant, Detail: experimentLabel(spec)})
			writeJSON(w, http.StatusOK, job.Status())
			return
		}
	}
	// A fresh simulation is needed: admission control applies.
	if s.cfg.TenantMaxInFlight > 0 && s.tenantInFlight[tenant] >= s.cfg.TenantMaxInFlight {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.shed(tenant, "tenant_limit", retry)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeErr(w, http.StatusTooManyRequests, "tenant %q already has %d jobs in flight (limit %d)",
			tenant, s.cfg.TenantMaxInFlight, s.cfg.TenantMaxInFlight)
		return
	}
	// Fresh admissions are bounded by the configured depth, not the
	// channel capacity — after a crash the channel is oversized to hold
	// replayed jobs, and that headroom is not new admission budget.
	if len(s.queue) >= s.cfg.QueueDepth {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.shed(tenant, "queue_full", retry)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		writeErr(w, http.StatusTooManyRequests, "job queue is full (%d deep); retry with backoff", s.cfg.QueueDepth)
		return
	}
	job := s.newJobLocked(tenant, spec, key)
	if !spec.NoCache {
		s.leaders[key] = job
	}
	s.tenantInFlight[tenant]++
	// The submit record is appended before the job becomes reachable via
	// the queue, so it always precedes the worker's start record.
	s.journalAppend(s.submitRecord(job))
	s.queue <- job // cannot block: depth checked under s.mu, only workers drain
	s.mu.Unlock()
	s.journalSync() // durable before the 202 acknowledgement
	s.submitted.Inc()
	if !spec.NoCache {
		s.misses.Inc()
	}
	s.log.Info("job admitted",
		"job_id", job.id, "trace_id", job.traceID, "tenant", tenant,
		"experiment", experimentLabel(spec), "spec_hash", key)
	s.flight.Record(FlightEvent{Event: "submit", Job: job.id,
		Trace: job.traceID, Tenant: tenant, Detail: experimentLabel(spec)})
	writeJSON(w, http.StatusAccepted, job.Status())
}

// retryAfterLocked derives the Retry-After seconds advised on load-shed
// 429s from current queue pressure: roughly one worker-pass over the
// backlog, never less than a second. s.mu must be held.
func (s *Server) retryAfterLocked() int {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	retry := (len(s.queue) + s.running + workers - 1) / workers
	if retry < 1 {
		retry = 1
	}
	s.shedRetryAfter.Set(float64(retry))
	return retry
}

// newJobLocked allocates and registers a job; s.mu must be held.
func (s *Server) newJobLocked(tenant string, spec *Spec, key string) *Job {
	s.seq++
	id := fmt.Sprintf("j-%06d", s.seq)
	job := newJob(id, tenant, spec, key)
	job.traceID = traceIDFor(id, key)
	job.seq = s.seq
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.jobsTotal.Add(1)
	return job
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleStatus serves one job's status; with ?watch=1 it streams every
// transition as newline-delimited JSON until the job is terminal.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(r.PathValue("id"))
	if job == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.maybeRequeueInterrupted(job)
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, job.Status())
		return
	}
	ch := job.subscribe()
	defer job.unsubscribe(ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	// Heartbeats keep the stream visibly alive between transitions, so a
	// watcher behind a buffering proxy can tell a long-running job from a
	// dead connection. The record shape is a subset of JobStatus plus a
	// "heartbeat" marker: old clients decode it as a harmless status echo.
	hb := time.NewTicker(s.cfg.WatchHeartbeat)
	defer hb.Stop()
	type heartbeat struct {
		Heartbeat bool      `json:"heartbeat"`
		ID        string    `json:"id"`
		State     JobState  `json:"state"`
		At        time.Time `json:"at"`
	}
	for {
		select {
		case st := <-ch:
			if err := enc.Encode(st); err != nil {
				return
			}
			flush()
			if st.State.Terminal() {
				return
			}
		case <-hb.C:
			if err := enc.Encode(heartbeat{
				Heartbeat: true, ID: job.id,
				State: job.currentState(), At: time.Now().UTC(),
			}); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleManifest serves the job's stored run manifest verbatim. For a
// job recovered as already-completed, the manifest bytes live in the
// durable store rather than on the job record; they are fetched by
// content address on demand.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(r.PathValue("id"))
	if job == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.maybeRequeueInterrupted(job)
	m := job.Manifest()
	if m == nil {
		st := job.Status()
		if st.Recovered && cacheable(st.State) {
			if e, ok := s.cache.Peek(job.key); ok {
				m = e.Manifest
			}
		}
	}
	if m == nil {
		writeErr(w, http.StatusNotFound, "job %s has no manifest (state %s)", job.id, job.Status().State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(m)
}

// knownJobStates is the set ?status= may filter on.
var knownJobStates = map[JobState]bool{
	JobQueued: true, JobRunning: true, JobInterrupted: true,
	JobOK: true, JobDegraded: true, JobViolated: true,
	JobFailed: true, JobCancelled: true,
}

// handleList serves job statuses in stable submission order (recovered
// jobs first, in their original admission order — job IDs are preserved
// across restarts). An optional ?status= query keeps only jobs currently
// in that state; unknown states are a 400, not an empty list, so a typo
// ("sucess") cannot read as "no such jobs".
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := JobState(r.URL.Query().Get("status"))
	if filter != "" && !knownJobStates[filter] {
		states := make([]string, 0, len(knownJobStates))
		for st := range knownJobStates {
			states = append(states, string(st))
		}
		sort.Strings(states)
		writeErr(w, http.StatusBadRequest, "unknown status %q (one of: %s)", filter, strings.Join(states, ", "))
		return
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		st := j.Status()
		if filter != "" && st.State != filter {
			continue
		}
		out.Jobs = append(out.Jobs, st)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the service counters in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WritePromText(w)
}

// handleHealthz serves liveness plus the drain flag, so load balancers
// can stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
		Jobs     int    `json:"jobs"`
	}{Status: "ok", Draining: s.draining, Jobs: len(s.jobs)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleExperiments lists the runnable experiment IDs.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expEntry struct {
		ID   string `json:"id"`
		Desc string `json:"desc"`
	}
	out := struct {
		Experiments []expEntry `json:"experiments"`
	}{Experiments: []expEntry{}}
	for _, e := range s.cfg.Registry.Experiments() {
		out.Experiments = append(out.Experiments, expEntry{ID: e.ID, Desc: e.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}
