package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/ras"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config wires a Server's dependencies and limits. Registry is the only
// required field.
type Config struct {
	// Registry supplies the experiments jobs may run.
	Registry *runner.Registry
	// FaultPlanRun executes an ad-hoc fault-plan job (the cmd/repro
	// -faults path). Nil rejects fault-plan specs at submission.
	FaultPlanRun func(*runner.Ctx, *ras.Plan) (string, error)
	// Workers is the worker-pool width; <= 0 selects one per CPU.
	Workers int
	// QueueDepth bounds the admitted-but-not-running backlog; a full
	// queue rejects submissions with 429. <= 0 selects 64.
	QueueDepth int
	// TenantMaxInFlight caps one tenant's queued+running fresh jobs, so a
	// sweep from one client cannot starve everyone else; 0 disables the
	// cap. Cache hits and coalesced jobs are exempt — they consume no
	// worker.
	TenantMaxInFlight int
	// CacheBytes is the result cache's LRU byte budget; <= 0 selects
	// 64 MiB. Set to 1 to effectively disable caching (no manifest fits).
	CacheBytes int64
	// JobTimeout is the per-job wall-clock deadline; <= 0 selects 2m.
	JobTimeout time.Duration
}

// DefaultTenant is the tenant jobs without an X-Tenant header bill to.
const DefaultTenant = "default"

// Server is the simulation-as-a-service daemon core: job store, bounded
// queue, worker pool, result cache, and HTTP API. Construct with New,
// serve Handler(), stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache

	metrics   *telemetry.Set
	submitted *telemetry.Var
	rejected  map[string]*telemetry.Var
	completed map[JobState]*telemetry.Var
	coalesced *telemetry.Var
	misses    *telemetry.Var

	mu             sync.Mutex
	draining       bool
	queue          chan *Job
	jobs           map[string]*Job
	order          []string
	seq            int
	leaders        map[string]*Job   // content key → in-flight cacheable run
	followers      map[string][]*Job // content key → jobs coalesced onto it
	tenantInFlight map[string]int
	running        int

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	mux       *http.ServeMux
}

// New validates the config, builds the server, and starts its worker
// pool. The returned server is live: Handler() can be mounted and jobs
// submitted immediately. Call Drain to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("service: Config.Registry is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runner.DefaultParallel()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	s := &Server{
		cfg:            cfg,
		cache:          NewCache(cfg.CacheBytes),
		queue:          make(chan *Job, cfg.QueueDepth),
		jobs:           make(map[string]*Job),
		leaders:        make(map[string]*Job),
		followers:      make(map[string][]*Job),
		tenantInFlight: make(map[string]int),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.initMetrics()
	s.initMux()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// initMetrics registers the service-level counter set served by
// GET /v1/metrics. Queue, cache, and occupancy values are Func metrics
// read at scrape time from their owning structures.
func (s *Server) initMetrics() {
	m := telemetry.NewSet()
	s.metrics = m
	s.submitted = m.Counter("apusimd_jobs_submitted_total",
		"Jobs accepted for processing, including cache hits and coalesced jobs.")
	s.rejected = map[string]*telemetry.Var{}
	for _, reason := range []string{"queue_full", "tenant_limit", "draining", "invalid"} {
		s.rejected[reason] = m.Counter("apusimd_jobs_rejected_total",
			"Submissions refused at admission, by reason.",
			telemetry.Label{Key: "reason", Value: reason})
	}
	s.completed = map[JobState]*telemetry.Var{}
	for _, st := range []JobState{JobOK, JobDegraded, JobViolated, JobFailed, JobCancelled} {
		s.completed[st] = m.Counter("apusimd_jobs_completed_total",
			"Jobs that reached a terminal state, by state.",
			telemetry.Label{Key: "state", Value: string(st)})
	}
	m.CounterFunc("apusimd_cache_hits_total",
		"Submissions served verbatim from the stored result cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.coalesced = m.Counter("apusimd_cache_coalesced_total",
		"Submissions that waited on an identical in-flight run instead of re-simulating.")
	s.misses = m.Counter("apusimd_cache_misses_total",
		"Cache-participating submissions that required a fresh simulation.")
	m.CounterFunc("apusimd_cache_evictions_total",
		"Cache entries evicted to hold the LRU byte budget.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	m.GaugeFunc("apusimd_cache_bytes",
		"Bytes of manifests currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	m.GaugeFunc("apusimd_cache_entries",
		"Manifests currently resident in the result cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	m.GaugeFunc("apusimd_queue_depth",
		"Jobs admitted and waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	m.GaugeFunc("apusimd_jobs_running",
		"Jobs currently simulating on workers.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
}

// Metrics exposes the server's counter set (tests and embedders).
func (s *Server) Metrics() *telemetry.Set { return s.metrics }

// CacheStats exposes the result cache's counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// worker drains the job queue until Drain closes it. A worker that picks
// up a job after a forced shutdown cancels it instead of simulating.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		if err := s.runCtx.Err(); err != nil {
			s.finishJob(job, JobCancelled, nil, "cancelled: shutdown before the job ran", 0)
			continue
		}
		job.setState(JobRunning)
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		res, manifest := s.simulate(job)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		errMsg := ""
		if res.Err != nil {
			errMsg = res.Err.Error()
		}
		s.finishJob(job, stateForStatus(res.Status), manifest, errMsg, res.Attempts)
	}
}

// simulate runs one job on the runner — per-job engine, panic isolation,
// watchdog, deadline, retries — and renders its manifest. Wall-clock
// durations are zeroed before rendering: the manifest a service job
// returns is the deterministic simulated-time record, byte-identical for
// every run of the same normalized spec, which is what makes it cacheable
// under a content address.
func (s *Server) simulate(job *Job) (runner.Result, []byte) {
	spec := job.spec.normalized()
	reg := s.cfg.Registry
	id := spec.Experiment
	if spec.FaultPlan != nil {
		plan := spec.FaultPlan
		reg = runner.NewRegistry()
		reg.MustRegister(runner.Experiment{
			ID:   "faultplan",
			Desc: fmt.Sprintf("ad-hoc RAS fault plan (%d faults, seed %d)", len(plan.Faults), plan.Seed),
			Run: func(ctx *runner.Ctx) (string, error) {
				return s.cfg.FaultPlanRun(ctx, plan)
			},
		})
		id = "faultplan"
	}
	opts := runner.Options{
		Parallel:    1,
		IDs:         []string{id},
		Timeout:     s.cfg.JobTimeout,
		Retries:     spec.Retries,
		Context:     s.runCtx,
		SampleEvery: sim.Time(spec.SampleNS) * sim.Nanosecond,
		SpanSample:  1,
		Audit:       spec.Audit,
		Strict:      spec.Strict,
	}
	if spec.Spans {
		opts.SpanSample = spec.SpanSample
	}
	suite, err := reg.RunSuite(opts)
	if err != nil {
		return runner.Result{ID: id, Status: runner.StatusError, Err: err, Attempts: 1}, nil
	}
	suite.Wall = 0
	for i := range suite.Results {
		suite.Results[i].Wall = 0
	}
	var buf bytes.Buffer
	if err := runner.BuildManifest(suite).WriteJSON(&buf); err != nil {
		return runner.Result{ID: id, Status: runner.StatusError, Err: err, Attempts: 1}, nil
	}
	return suite.Results[0], buf.Bytes()
}

// stateForStatus maps a runner status onto the job lifecycle.
func stateForStatus(st runner.Status) JobState {
	switch st {
	case runner.StatusOK:
		return JobOK
	case runner.StatusDegraded:
		return JobDegraded
	case runner.StatusViolated:
		return JobViolated
	case runner.StatusCancelled:
		return JobCancelled
	default: // error, panic, timeout
		return JobFailed
	}
}

// cacheable reports whether a terminal state's manifest may be stored
// and reused. Only completed runs qualify: failures may be transient
// (timeouts, panics) and cancellations are shutdown artifacts.
func cacheable(state JobState) bool { return state == JobOK || state == JobDegraded }

// finishJob records a queue job's terminal outcome: stores the manifest
// under the job's content address, completes the job, and completes every
// coalesced follower with the same result.
func (s *Server) finishJob(job *Job, state JobState, manifest []byte, errMsg string, attempts int) {
	s.mu.Lock()
	var fols []*Job
	if !job.spec.NoCache {
		if s.leaders[job.key] == job {
			delete(s.leaders, job.key)
			fols = s.followers[job.key]
			delete(s.followers, job.key)
		}
		if cacheable(state) && manifest != nil {
			s.cache.Put(job.key, Entry{State: state, Manifest: manifest, Attempts: attempts})
		}
	}
	s.tenantInFlight[job.tenant]--
	if s.tenantInFlight[job.tenant] <= 0 {
		delete(s.tenantInFlight, job.tenant)
	}
	s.mu.Unlock()

	job.finish(state, manifest, errMsg, attempts)
	s.completed[state].Add(1)
	for _, f := range fols {
		f.finish(state, manifest, errMsg, attempts)
		s.completed[state].Add(1)
	}
}

// Drain stops the server gracefully: new submissions are refused with
// 503, already-admitted jobs run to completion, and the call returns when
// the pool is idle. If ctx expires first, the drain turns forced — the
// shared run context is cancelled, in-flight attempts are abandoned with
// typed cancelled results, still-queued jobs are cancelled without
// running — and the ctx error is returned after the pool exits.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRun()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxSpecBytes bounds a submission body; fault plans are small.
const maxSpecBytes = 1 << 20

// initMux installs the HTTP API.
func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.handleManifest)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux = mux
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// handleSubmit admits one job: parse and validate the spec, content-hash
// it, and either serve it from cache, coalesce it onto an identical
// in-flight run, or admit it to the queue (subject to tenant fairness and
// queue-depth limits).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Experiment != "" {
		if _, ok := s.cfg.Registry.Get(spec.Experiment); !ok {
			s.rejected["invalid"].Inc()
			writeErr(w, http.StatusBadRequest, "unknown experiment %q (GET /v1/experiments lists them)", spec.Experiment)
			return
		}
	}
	if spec.FaultPlan != nil && s.cfg.FaultPlanRun == nil {
		s.rejected["invalid"].Inc()
		writeErr(w, http.StatusBadRequest, "this server does not accept fault-plan jobs")
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = DefaultTenant
	}
	key := spec.Hash()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected["draining"].Inc()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !spec.NoCache {
		// Coalesce before consulting storage: a key cannot be both
		// in-flight and stored, and checking the leader first keeps the
		// cache's hit/miss counters equal to "served from storage" /
		// "simulated fresh".
		if leader := s.leaders[key]; leader != nil {
			job := s.newJobLocked(tenant, spec, key)
			job.coalesced = true
			s.followers[key] = append(s.followers[key], job)
			s.mu.Unlock()
			s.submitted.Inc()
			s.coalesced.Inc()
			writeJSON(w, http.StatusAccepted, job.Status())
			return
		}
		if e, ok := s.cache.Get(key); ok {
			job := s.newJobLocked(tenant, spec, key)
			job.cacheHit = true
			s.mu.Unlock()
			s.submitted.Inc()
			job.finish(e.State, e.Manifest, "", e.Attempts)
			s.completed[e.State].Add(1)
			writeJSON(w, http.StatusOK, job.Status())
			return
		}
	}
	// A fresh simulation is needed: admission control applies.
	if s.cfg.TenantMaxInFlight > 0 && s.tenantInFlight[tenant] >= s.cfg.TenantMaxInFlight {
		s.mu.Unlock()
		s.rejected["tenant_limit"].Inc()
		writeErr(w, http.StatusTooManyRequests, "tenant %q already has %d jobs in flight (limit %d)",
			tenant, s.cfg.TenantMaxInFlight, s.cfg.TenantMaxInFlight)
		return
	}
	if len(s.queue) >= cap(s.queue) {
		s.mu.Unlock()
		s.rejected["queue_full"].Inc()
		writeErr(w, http.StatusTooManyRequests, "job queue is full (%d deep); retry with backoff", cap(s.queue))
		return
	}
	job := s.newJobLocked(tenant, spec, key)
	if !spec.NoCache {
		s.leaders[key] = job
	}
	s.tenantInFlight[tenant]++
	s.queue <- job // cannot block: depth checked under s.mu, only workers drain
	s.mu.Unlock()
	s.submitted.Inc()
	if !spec.NoCache {
		s.misses.Inc()
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// newJobLocked allocates and registers a job; s.mu must be held.
func (s *Server) newJobLocked(tenant string, spec *Spec, key string) *Job {
	s.seq++
	id := fmt.Sprintf("j-%06d", s.seq)
	job := newJob(id, tenant, spec, key)
	s.jobs[id] = job
	s.order = append(s.order, id)
	return job
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleStatus serves one job's status; with ?watch=1 it streams every
// transition as newline-delimited JSON until the job is terminal.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(r.PathValue("id"))
	if job == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, job.Status())
		return
	}
	ch := job.subscribe()
	defer job.unsubscribe(ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case st := <-ch:
			if err := enc.Encode(st); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if st.State.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleManifest serves the job's stored run manifest verbatim.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	job := s.jobByID(r.PathValue("id"))
	if job == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	m := job.Manifest()
	if m == nil {
		writeErr(w, http.StatusNotFound, "job %s has no manifest (state %s)", job.id, job.Status().State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(m)
}

// handleList serves every job's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the service counters in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WritePromText(w)
}

// handleHealthz serves liveness plus the drain flag, so load balancers
// can stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
		Jobs     int    `json:"jobs"`
	}{Status: "ok", Draining: s.draining, Jobs: len(s.jobs)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleExperiments lists the runnable experiment IDs.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expEntry struct {
		ID   string `json:"id"`
		Desc string `json:"desc"`
	}
	out := struct {
		Experiments []expEntry `json:"experiments"`
	}{Experiments: []expEntry{}}
	for _, e := range s.cfg.Registry.Experiments() {
		out.Experiments = append(out.Experiments, expEntry{ID: e.ID, Desc: e.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}
