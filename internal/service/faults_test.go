package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
)

// healthzDurability fetches /v1/healthz and returns the durability field.
func healthzDurability(t *testing.T, d *testDaemon) string {
	t.Helper()
	code, body := d.get(t, "/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d: %s", code, body)
	}
	var h struct {
		Durability string `json:"durability"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	return h.Durability
}

// awaitDurability polls healthz until the durability state matches.
func awaitDurability(t *testing.T, d *testDaemon, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if healthzDurability(t, d) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("durability never reached %q (now %q)", want, healthzDurability(t, d))
}

// TestFailedJournalFsyncSubmitNever202 pins the acceptance invariant: a
// submission whose WAL record cannot be fsynced is refused with 503 and
// leaves no trace — the client never holds a 202 for a job the journal
// does not hold. The failure trips degraded mode, later submissions are
// accepted as explicitly non-durable, and the background probe re-arms
// durability (re-journaling pending work) once the disk heals.
func TestFailedJournalFsyncSubmitNever202(t *testing.T) {
	dir := t.TempDir()
	ffs := durable.NewFaultFS(nil, durable.FaultConfig{})
	d := newTestDaemon(t, Config{
		Workers: 1, DataDir: dir, FS: ffs,
		DurabilityProbe: 10 * time.Millisecond,
	})
	if got := healthzDurability(t, d); got != "ok" {
		t.Fatalf("fresh daemon durability %q, want ok", got)
	}

	// Every fsync fails from here: the probe cannot silently recover.
	ffs.Arm(durable.FaultConfig{SyncErrRate: 1})
	code, _ := d.submit(t, `{"experiment": "exp-0"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit with failing fsync: %d, want 503 — a 202 here is a durability lie", code)
	}
	// The refused job was fully un-admitted.
	_, body := d.get(t, "/v1/jobs")
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("refused submit left %d job records: %+v", len(list.Jobs), list.Jobs)
	}
	if got := healthzDurability(t, d); got != "degraded" {
		t.Fatalf("durability after failed fsync %q, want degraded", got)
	}
	_, text := d.get(t, "/v1/metrics")
	if v := promValue(t, string(text), `apusimd_jobs_rejected_total{reason="durability"}`); v != 1 {
		t.Errorf(`rejected{reason="durability"} = %g, want 1`, v)
	}
	if v := promValue(t, string(text), "apusimd_durability_degraded_total"); v < 1 {
		t.Errorf("degraded_total = %g, want >= 1", v)
	}
	if v := promValue(t, string(text), "apusimd_durability_armed"); v != 0 {
		t.Errorf("durability_armed gauge = %g while degraded, want 0", v)
	}

	// Degraded mode still serves: submissions are accepted but marked
	// non-durable, so the 202 honestly promises execution, not survival.
	code, st := d.submit(t, `{"experiment": "exp-gated"}`)
	if code != http.StatusAccepted || !st.NonDurable {
		t.Fatalf("degraded submit: code %d non_durable %v, want 202 + non-durable mark", code, st.NonDurable)
	}

	// Heal the disk; the probe re-arms durability and the recovery
	// checkpoint re-records the still-pending job, clearing its mark.
	ffs.Heal()
	awaitDurability(t, d, "ok")
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, jb := d.get(t, "/v1/jobs/"+st.ID)
		var now JobStatus
		if err := json.Unmarshal(jb, &now); err != nil {
			t.Fatal(err)
		}
		if !now.NonDurable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovery never cleared the pending job's non-durable mark")
		}
		time.Sleep(2 * time.Millisecond)
	}
	recs, _, _, err := durable.ReplayDir(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	journaled := false
	for _, rec := range recs {
		if rec.Op == durable.OpSubmit && rec.Job == st.ID {
			journaled = true
		}
	}
	if !journaled {
		t.Fatal("recovery checkpoint did not journal the pending degraded-era job")
	}
	_, text = d.get(t, "/v1/metrics")
	if v := promValue(t, string(text), "apusimd_durability_recovered_total"); v < 1 {
		t.Errorf("recovered_total = %g, want >= 1", v)
	}

	// The job itself was never disturbed: release it and it finishes.
	close(d.gate)
	d.gate = make(chan struct{})
	if fin := d.await(t, st.ID); fin.State != JobOK {
		t.Fatalf("degraded-era job finished %s, want ok", fin.State)
	}
}

// TestRequireDurabilityRefusesDegradedSubmits covers the strict posture:
// with RequireDurability set, a degraded server refuses new work with
// 503 + Retry-After instead of accepting it as non-durable.
func TestRequireDurabilityRefusesDegradedSubmits(t *testing.T) {
	dir := t.TempDir()
	ffs := durable.NewFaultFS(nil, durable.FaultConfig{})
	d := newTestDaemon(t, Config{
		Workers: 1, DataDir: dir, FS: ffs,
		RequireDurability: true,
		DurabilityProbe:   time.Hour, // recovery stays out of the picture
	})

	ffs.Arm(durable.FaultConfig{SyncErrRate: 1})
	if code, _ := d.submit(t, `{"experiment": "exp-0"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("tripping submit: %d, want 503", code)
	}
	// Now degraded: the strict server refuses instead of degrading acks.
	resp, err := d.http.Client().Post(d.http.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "exp-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded strict submit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("strict durability 503 carries no Retry-After")
	}
	_, text := d.get(t, "/v1/metrics")
	if v := promValue(t, string(text), `apusimd_jobs_rejected_total{reason="durability"}`); v < 2 {
		t.Errorf(`rejected{reason="durability"} = %g, want >= 2`, v)
	}
	ffs.Heal() // let cleanup's drain checkpoint cleanly
}

// TestTimeoutMSJobReachesTerminalTimeout pins the per-job deadline: a
// spec with timeout_ms reaches the terminal "timeout" state, visible in
// the job JSON and recorded in the journal, and is never cached.
func TestTimeoutMSJobReachesTerminalTimeout(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, Config{Workers: 1, DataDir: dir})

	// The gated experiment ignores its deadline; the runner abandons it.
	_, st := d.submit(t, `{"experiment": "exp-gated", "timeout_ms": 60}`)
	fin := d.await(t, st.ID)
	if fin.State != JobTimeout {
		t.Fatalf("deadline job finished %s, want timeout", fin.State)
	}
	if fin.TimeoutMS != 60 {
		t.Errorf("status echoes timeout_ms %d, want 60", fin.TimeoutMS)
	}
	if fin.Error == "" || !strings.Contains(fin.Error, "deadline") {
		t.Errorf("timeout error %q does not name the deadline", fin.Error)
	}

	// The terminal state is journaled, so it survives a restart.
	recs, _, _, err := durable.ReplayDir(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	for _, rec := range recs {
		if rec.Op == durable.OpDone && rec.Job == st.ID {
			done = true
			if rec.State != string(JobTimeout) {
				t.Errorf("journaled done state %q, want timeout", rec.State)
			}
		}
	}
	if !done {
		t.Fatal("no done record journaled for the timed-out job")
	}
	_, text := d.get(t, "/v1/metrics")
	if v := promValue(t, string(text), `apusimd_jobs_completed_total{state="timeout"}`); v != 1 {
		t.Errorf(`completed{state="timeout"} = %g, want 1`, v)
	}

	// A timeout is a property of this run's wall clock, not of the spec:
	// it must never be served from cache. (The gate is still closed, so a
	// cache hit — not a fresh queued run — would be the only wrong answer.)
	code, st2 := d.submit(t, `{"experiment": "exp-gated", "timeout_ms": 60}`)
	if code != http.StatusAccepted || st2.CacheHit {
		t.Fatalf("resubmit after timeout: code %d cacheHit %v, want a fresh 202", code, st2.CacheHit)
	}
	d.await(t, st2.ID)
}

// TestLatencyShedsSlowQueue arms latency-aware admission and shows that
// a backlogged server whose p95 queue wait exceeds MaxQueueWait sheds
// fresh submissions with 429 queue_slow, even though the queue is
// nowhere near its depth bound.
func TestLatencyShedsSlowQueue(t *testing.T) {
	d := newTestDaemon(t, Config{
		Workers: 1, QueueDepth: 64,
		MaxQueueWait: 10 * time.Millisecond,
	})
	// Occupy the only worker so the server counts as backlogged.
	_, gated := d.submit(t, `{"experiment": "exp-gated"}`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := d.get(t, "/v1/jobs/"+gated.ID)
		var now JobStatus
		_ = json.Unmarshal(body, &now)
		if now.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gated job never started (state %s)", now.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Feed the latency signal directly: eight observed 1s queue waits put
	// p95 far beyond the 10ms bound.
	for i := 0; i < minQueueWaitSamples; i++ {
		d.srv.queueWait.Observe(1.0)
	}

	resp, err := d.http.Client().Post(d.http.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "exp-0"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("slow-queue submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue_slow 429 carries no Retry-After")
	}
	_, text := d.get(t, "/v1/metrics")
	if v := promValue(t, string(text), `apusimd_jobs_rejected_total{reason="queue_slow"}`); v < 1 {
		t.Errorf(`rejected{reason="queue_slow"} = %g, want >= 1`, v)
	}
	// Cache hits still serve during shedding: reading is not admission.
	close(d.gate)
	d.gate = make(chan struct{})
	d.await(t, gated.ID)
}

// TestDrainCompactsJournal pins the graceful-shutdown compaction: a
// daemon that rotated through many segments while running leaves exactly
// one compact checkpoint segment behind, and a restart replays the same
// terminal jobs from it.
func TestDrainCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, Config{
		Workers: 1, DataDir: dir,
		JournalSegmentBytes: 1, // rotate on every append
	})
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		_, st := d.submit(t, fmt.Sprintf(`{"experiment": "exp-%d"}`, i))
		d.await(t, st.ID)
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	recs, stats, _, err := durable.ReplayDir(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 {
		t.Fatalf("journal holds %d segments after drain, want 1 compact checkpoint", stats.Segments)
	}
	byJob := make(map[string]string)
	for _, rec := range recs {
		if rec.Op == durable.OpDone {
			byJob[rec.Job] = rec.State
		}
	}
	for _, id := range ids {
		if byJob[id] != string(JobOK) {
			t.Errorf("checkpoint lost job %s (done state %q, want ok)", id, byJob[id])
		}
	}
}

// TestDiskFaultStormGracefulNoAckedLoss is the in-process chaos test: a
// seeded fault storm batters every write path while jobs flow, the disk
// heals, the breaker recovers, and after a graceful restart every job
// that was acknowledged survives with its state intact and any manifest
// byte-identical. Run under -race in CI.
func TestDiskFaultStormGracefulNoAckedLoss(t *testing.T) {
	dir := t.TempDir()
	ffs := durable.NewFaultFS(nil, durable.FaultConfig{
		Seed:         0xA9,
		WriteErrRate: 0.08,
		SyncErrRate:  0.08,
		OpErrRate:    0.04,
		TornWrites:   true,
	})
	a := newTestDaemon(t, Config{
		Workers: 2, QueueDepth: 64, DataDir: dir, FS: ffs,
		DurabilityProbe: 10 * time.Millisecond,
	})

	type acked struct {
		id      string
		durable bool
	}
	var accepted []acked
	for i := 0; i < 30; i++ {
		if i == 15 {
			// Guarantee at least one breaker trip even if the seeded rates
			// happened to spare the journal so far.
			ffs.FailNextSyncs(1)
		}
		spec := fmt.Sprintf(`{"experiment": "exp-%d", "seed": %d}`, i%10, 1000+i)
		code, st := a.submit(t, spec)
		switch code {
		case http.StatusAccepted, http.StatusOK:
			accepted = append(accepted, acked{id: st.ID, durable: !st.NonDurable})
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			// Refused is always legal under faults; lost-after-ack is not.
		default:
			t.Fatalf("storm submit %d: unexpected status %d", i, code)
		}
	}
	ffs.Heal()
	awaitDurability(t, a, "ok")
	// With the disk healed and durability re-armed, a final wave of jobs
	// writes through to the store; their manifests must survive the
	// restart byte-identically.
	for i := 30; i < 34; i++ {
		spec := fmt.Sprintf(`{"experiment": "exp-%d", "seed": %d}`, i%10, 1000+i)
		code, st := a.submit(t, spec)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("post-heal submit %d: status %d", i, code)
		}
		accepted = append(accepted, acked{id: st.ID, durable: !st.NonDurable})
	}

	// Every acknowledged job reaches a terminal state despite the storm.
	states := make(map[string]JobState)
	manifests := make(map[string][]byte)
	for _, ack := range accepted {
		fin := a.await(t, ack.id)
		states[ack.id] = fin.State
		if fin.State == JobOK {
			if code, m := a.get(t, "/v1/jobs/"+ack.id+"/manifest"); code == http.StatusOK {
				manifests[ack.id] = m
			}
		}
	}
	awaitDurability(t, a, "ok")
	_, text := a.get(t, "/v1/metrics")
	if v := promValue(t, string(text), "apusimd_durability_degraded_total"); v < 1 {
		t.Errorf("degraded_total = %g, want >= 1 (the storm never tripped the breaker)", v)
	}
	if v := promValue(t, string(text), "apusimd_durability_recovered_total"); v < 1 {
		t.Errorf("recovered_total = %g, want >= 1", v)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.srv.Drain(ctx); err != nil {
		t.Fatalf("drain after storm: %v", err)
	}

	// Restart on the healed filesystem: zero acknowledged-job loss.
	b := newTestDaemon(t, Config{Workers: 2, DataDir: dir})
	served := 0
	for _, ack := range accepted {
		code, body := b.get(t, "/v1/jobs/"+ack.id)
		if code != http.StatusOK {
			t.Errorf("acked job %s lost across restart: %d", ack.id, code)
			continue
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != states[ack.id] {
			t.Errorf("job %s state %s across restart, want %s", ack.id, st.State, states[ack.id])
		}
		want, had := manifests[ack.id]
		if !had {
			continue
		}
		if code, got := b.get(t, "/v1/jobs/"+ack.id+"/manifest"); code == http.StatusOK {
			served++
			if !bytes.Equal(got, want) {
				t.Errorf("manifest for %s differs across the storm restart", ack.id)
			}
		}
	}
	if len(manifests) > 0 && served == 0 {
		t.Error("no manifest survived the storm restart; expected at least one store write to have landed")
	}
}

// TestWatchDisconnectDoesNotCancelJob is the satellite regression: a
// client that opens ?watch=1 and hangs up must only end its own stream —
// the job keeps running on the worker pool and completes.
func TestWatchDisconnectDoesNotCancelJob(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	_, st := d.submit(t, `{"experiment": "exp-gated"}`)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", d.http.URL+"/v1/jobs/"+st.ID+"?watch=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := d.http.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first streamed status, then hang up mid-stream.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading watch stream: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The job is unaffected: it still holds the worker and finishes once
	// the gate opens.
	time.Sleep(20 * time.Millisecond)
	if now := d.srv.jobByID(st.ID).currentState(); now != JobRunning && now != JobQueued {
		t.Fatalf("job state %s after watcher hangup, want still queued/running", now)
	}
	close(d.gate)
	d.gate = make(chan struct{})
	if fin := d.await(t, st.ID); fin.State != JobOK {
		t.Fatalf("job finished %s after watcher hangup, want ok", fin.State)
	}
}
