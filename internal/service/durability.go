package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/durable"
)

// This file is the service side of crash safety: it wires the durable
// store and journal into the server, replays the journal at boot into
// live job records, re-queues interrupted jobs on demand, and runs the
// storage circuit breaker that keeps the daemon serving when its disk
// stops cooperating.
//
// The recovery policy, per journaled job:
//
//   - done record present      → recreate the job terminal; its manifest
//     (if the state is cacheable) is served from the store by content
//     address.
//   - spec unparseable or needs a capability this server lacks → failed.
//   - result already in the store → finish from cache ("from_cache").
//   - any job in the key group had started → the whole group parks as
//     interrupted; the next status/manifest fetch re-queues it. Re-running
//     at boot would turn a spec that crashes the daemon into a crash
//     loop, so the retry waits for a client to ask.
//   - else (queued at the crash) → re-enqueued immediately, first job
//     per key leading and the rest coalescing, exactly like admission.
//
// The circuit breaker: any journal append/sync failure or store write
// failure trips the server into degraded memory-only mode. Workers and
// the in-memory cache keep serving; new submissions are accepted but
// marked non-durable (or refused with 503 under Config.RequireDurability).
// A background probe re-tests the data dir every Config.DurabilityProbe
// and, once a probe write round-trips, re-arms durability with a journal
// checkpoint that re-records every still-pending job.

// The storage circuit breaker's states, held in Server.durability.
const (
	// durabilityNone: no DataDir — the server is memory-only by
	// configuration, not by failure. The probe never runs.
	durabilityNone = int32(iota)
	// durabilityOK: admissions are journaled and fsynced before their 202.
	durabilityOK
	// durabilityDegraded: storage is failing; the journal and store are
	// left untouched until the probe heals them.
	durabilityDegraded
)

// durabilityOKNow reports whether admissions are currently durable.
func (s *Server) durabilityOKNow() bool { return s.durability.Load() == durabilityOK }

// durabilityStateName renders the breaker state for healthz/debug.
func (s *Server) durabilityStateName() string {
	switch s.durability.Load() {
	case durabilityOK:
		return "ok"
	case durabilityDegraded:
		return "degraded"
	default:
		return "none"
	}
}

// tripDurability flips the breaker ok → degraded. Lock-free and
// idempotent, so it is safe from any path — including ones holding s.mu —
// and concurrent failures log exactly one transition.
func (s *Server) tripDurability(cause string, err error) {
	if !s.durability.CompareAndSwap(durabilityOK, durabilityDegraded) {
		return
	}
	s.cache.SetStoreWrites(false)
	s.degradedTotal.Inc()
	s.log.Error("durability degraded: entering memory-only mode",
		"cause", cause, "error", fmt.Sprint(err), "durability", "degraded")
	s.flight.Record(FlightEvent{Event: "durability", Detail: "degraded: " + cause})
}

// openDurable opens the store and journal under cfg.DataDir, replays the
// journal into job records, and returns the jobs to re-enqueue. It is a
// no-op returning nil when DataDir is empty. Called from New before the
// queue exists and before any worker starts, so it owns all state.
func (s *Server) openDurable() ([]*Job, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	store, err := durable.OpenStore(s.fs, s.cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("service: opening durable store: %w", err)
	}
	s.store = store
	s.cache.AttachStore(store)
	s.cache.SetStoreErrorHook(func(err error) { s.tripDurability("store write", err) })

	journal, recs, stats, err := durable.OpenJournalDir(s.fs, s.cfg.DataDir,
		durable.JournalOptions{SegmentBytes: s.cfg.JournalSegmentBytes})
	if err != nil {
		return nil, fmt.Errorf("service: opening job journal: %w", err)
	}
	if stats.Corrupt > 0 || stats.BadHeaders > 0 || stats.MissingSegments > 0 || stats.Unreadable > 0 {
		s.log.Warn("journal replay skipped damaged data",
			"corrupt_records", stats.Corrupt, "bad_headers", stats.BadHeaders,
			"missing_segments", stats.MissingSegments, "unreadable_segments", stats.Unreadable)
	}
	s.journal = journal
	requeue := s.rebuildJobs(durable.BuildRecovery(recs))

	// Checkpoint the journal down to the still-live jobs so boot-time
	// replay cost tracks in-flight work, not daemon lifetime. Terminal
	// recovered jobs are dropped: their results live in the store under
	// their content address. A failed boot checkpoint is a storage
	// failure, not a construction failure — the replayed state is already
	// in memory, so the server starts degraded and lets the probe heal it.
	if err := journal.Checkpoint(s.liveRecords()); err != nil {
		s.durability.Store(durabilityOK) // arm so the trip below logs the transition
		s.tripDurability("boot checkpoint", err)
		return requeue, nil
	}
	s.durability.Store(durabilityOK)
	return requeue, nil
}

// durabilityLoop is the breaker's background goroutine: while degraded it
// probes the data dir on the configured cadence and re-arms on success;
// while healthy it serves journal-compaction requests from finishJob.
// Runs only when a journal exists; exits when Drain closes probeStop.
func (s *Server) durabilityLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.DurabilityProbe)
	defer tick.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-tick.C:
			if s.durability.Load() == durabilityDegraded {
				s.probeAndRecover()
			}
		case <-s.compactCh:
			if s.durabilityOKNow() {
				s.checkpointJournal("compaction")
			}
		}
	}
}

// probeDataDir proves the data dir can take durable writes again: a small
// file must create, write, fsync, and remove cleanly.
func (s *Server) probeDataDir() error {
	probe := filepath.Join(s.cfg.DataDir, ".durability-probe")
	f, err := s.fs.OpenFile(probe, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("probe\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.Remove(probe)
}

// probeAndRecover re-tests storage and, on success, re-arms durability:
// the journal is checkpointed to the live job set (re-recording every
// job admitted while degraded), non-terminal jobs shed their non-durable
// mark, and store write-through resumes. Any failure leaves the breaker
// degraded for the next probe tick.
func (s *Server) probeAndRecover() {
	if err := s.probeDataDir(); err != nil {
		s.log.Debug("durability probe failed; staying degraded", "error", fmt.Sprint(err))
		return
	}
	s.mu.Lock()
	recs := s.checkpointRecords()
	var pending []*Job
	for _, id := range s.order {
		if job := s.jobs[id]; job != nil {
			pending = append(pending, job)
		}
	}
	if err := s.journal.Checkpoint(recs); err != nil {
		s.mu.Unlock()
		s.journalErrors.Inc()
		s.log.Debug("recovery checkpoint failed; staying degraded", "error", fmt.Sprint(err))
		return
	}
	// Re-arm while still holding s.mu: a submission racing this recovery
	// either sees degraded (admits non-durable, harmless) or sees ok after
	// the checkpoint is already on disk — never ok with a dead journal.
	s.durability.Store(durabilityOK)
	s.mu.Unlock()
	for _, job := range pending {
		job.clearNonDurable()
	}
	s.cache.SetStoreWrites(true)
	s.recoveredDur.Inc()
	s.log.Info("durability recovered: admissions journaled again", "durability", "ok")
	s.flight.Record(FlightEvent{Event: "durability", Detail: "recovered"})
}

// checkpointJournal rewrites the journal to the live job set under s.mu.
// Used by background compaction and the graceful-drain flush.
func (s *Server) checkpointJournal(why string) {
	s.mu.Lock()
	recs := s.checkpointRecords()
	err := s.journal.Checkpoint(recs)
	s.mu.Unlock()
	if err != nil {
		s.journalErrors.Inc()
		s.tripDurability("journal checkpoint ("+why+")", err)
		return
	}
	s.log.Debug("journal checkpointed", "reason", why, "live_records", len(recs))
}

// maybeCompactJournal nudges the durability loop to checkpoint when the
// journal has accumulated enough dead weight: at least 64 records since
// the last checkpoint, two thirds of them done markers (a done pairs
// with a submit, so ≥ 2/3 done means most record pairs are complete).
// Non-blocking — a pending request already covers this one.
func (s *Server) maybeCompactJournal() {
	if s.journal == nil || !s.durabilityOKNow() {
		return
	}
	st := s.journal.Stats()
	if st.RecordsSinceCheckpoint < 64 || st.DonesSinceCheckpoint*3 < st.RecordsSinceCheckpoint*2 {
		return
	}
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// rebuildJobs folds replayed journal records into live jobs, applying
// the recovery policy above. It returns the jobs to re-enqueue. Runs
// single-threaded from New, so it touches server maps without s.mu.
func (s *Server) rebuildJobs(recovered []durable.JobRecovery) []*Job {
	// The interrupted rule is per key group: if any pending job for a key
	// had started, the crash happened (or may have happened) inside that
	// simulation, and every job waiting on it parks as interrupted.
	startedKeys := make(map[string]bool)
	for _, jr := range recovered {
		if jr.Terminal == "" && jr.Started {
			startedKeys[jr.Key] = true
		}
	}

	var requeue []*Job
	for _, jr := range recovered {
		if jr.Seq > s.seq {
			s.seq = jr.Seq
		}
		spec, perr := ParseSpec(jr.Spec)
		job := newJob(jr.Job, jr.Tenant, spec, jr.Key)
		job.seq = jr.Seq
		job.recovered = true
		// The journaled trace ID keeps the job correlated with log lines
		// written before the crash; older journals without one re-derive
		// the identical ID (the derivation is deterministic).
		job.traceID = jr.Trace
		if job.traceID == "" {
			job.traceID = traceIDFor(jr.Job, jr.Key)
		}
		s.jobs[jr.Job] = job
		s.order = append(s.order, jr.Job)
		s.jobsTotal.Add(1)

		switch {
		case jr.Terminal != "":
			job.bootTerminal = true
			job.finish(JobState(jr.Terminal), nil, "", jr.Attempts)
			s.noteRecovered(job, "completed")

		case perr != nil:
			job.bootTerminal = true
			job.finish(JobFailed, nil, fmt.Sprintf("recovered job spec no longer parses: %v", perr), 0)
			s.noteRecovered(job, "failed")

		case spec.FaultPlan != nil && s.cfg.FaultPlanRun == nil:
			job.bootTerminal = true
			job.finish(JobFailed, nil, "recovered fault-plan job, but this server does not accept fault plans", 0)
			s.noteRecovered(job, "failed")

		default:
			if !spec.NoCache {
				// Peek, not Get: boot-time recovery is bookkeeping, and
				// must not skew the admission-facing hit/miss counters.
				if e, ok := s.cache.Peek(jr.Key); ok {
					job.bootTerminal = true
					job.finish(e.State, e.Manifest, "", e.Attempts)
					s.noteRecovered(job, "from_cache")
					continue
				}
				if startedKeys[jr.Key] {
					job.setState(JobInterrupted)
					s.noteRecovered(job, "interrupted")
					continue
				}
				if leader := s.leaders[jr.Key]; leader != nil {
					job.coalesced = true
					s.followers[jr.Key] = append(s.followers[jr.Key], job)
					s.noteRecovered(job, "requeued")
					continue
				}
				s.leaders[jr.Key] = job
			} else if jr.Started {
				// no_cache jobs share content keys with cache-participating
				// submissions but never share runs, so only this job's own
				// start record parks it.
				job.setState(JobInterrupted)
				s.noteRecovered(job, "interrupted")
				continue
			}
			s.tenantInFlight[job.tenant]++
			requeue = append(requeue, job)
			s.noteRecovered(job, "requeued")
		}
	}
	return requeue
}

// liveRecords renders the post-recovery pending jobs (queued and
// interrupted) as journal records for the boot checkpoint, in admission
// order. Terminal jobs are dropped entirely: their results live in the
// store, and their job records survive exactly one restart.
func (s *Server) liveRecords() []durable.Record {
	var recs []durable.Record
	for _, id := range s.order {
		job := s.jobs[id]
		st := job.currentState()
		if st.Terminal() {
			continue
		}
		recs = append(recs, s.submitRecord(job))
		if st == JobInterrupted {
			recs = append(recs, durable.Record{Op: durable.OpStart, Job: job.id})
		}
	}
	return recs
}

// checkpointRecords renders the full journal state a runtime checkpoint
// preserves: every job this process admitted or completed, as its minimal
// record set — submit, plus a start for running/interrupted jobs (so a
// crash after the checkpoint still parks them instead of re-running a
// possibly poisoning spec), plus a done for terminal ones (so a graceful
// restart recreates them, exactly as replaying the uncompacted journal
// would have). Jobs that were already terminal at this boot are dropped —
// their records live one restart, then retire. s.mu must be held.
func (s *Server) checkpointRecords() []durable.Record {
	var recs []durable.Record
	for _, id := range s.order {
		job := s.jobs[id]
		if job.bootTerminal {
			continue
		}
		st := job.Status()
		recs = append(recs, s.submitRecord(job))
		switch {
		case st.State.Terminal():
			recs = append(recs, durable.Record{
				Op: durable.OpDone, Job: job.id,
				State: string(st.State), Attempts: st.Attempts,
			})
		case st.State == JobRunning || st.State == JobInterrupted:
			recs = append(recs, durable.Record{Op: durable.OpStart, Job: job.id})
		}
	}
	return recs
}

// submitRecord renders a job's admission as a journal record. The spec
// is the original parsed submission (not the canonical form), so flags
// like no_cache survive a replay.
func (s *Server) submitRecord(job *Job) durable.Record {
	specJSON, err := json.Marshal(job.spec)
	if err != nil { // a parsed Spec always re-marshals; defensive only
		specJSON = nil
	}
	return durable.Record{
		Op:        durable.OpSubmit,
		Job:       job.id,
		Seq:       job.seq,
		Tenant:    job.tenant,
		Key:       job.key,
		Coalesced: job.coalesced,
		Spec:      specJSON,
		Trace:     job.traceID,
	}
}

// journalAppend buffers a record; journalSync group-commits everything
// buffered so far; journalAppendSync does both. All are no-ops without a
// journal or while durability is degraded, and journal failures trip the
// circuit breaker but never fail jobs — the failure is counted on
// apusimd_journal_errors_total and the server keeps serving from memory.
// (The submission path does NOT use these: a failed pre-202 fsync must
// un-admit the job, so handleSubmit calls the journal directly.)
func (s *Server) journalAppend(rec durable.Record) {
	if s.journal == nil || !s.durabilityOKNow() {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.journalErrors.Inc()
		s.tripDurability("journal append", err)
	}
}

func (s *Server) journalSync() {
	if s.journal == nil || !s.durabilityOKNow() {
		return
	}
	if err := s.journal.Sync(); err != nil {
		s.journalErrors.Inc()
		s.tripDurability("journal sync", err)
	}
}

func (s *Server) journalAppendSync(rec durable.Record) {
	s.journalAppend(rec)
	s.journalSync()
}

// maybeRequeueInterrupted moves an interrupted job back into the flow on
// a client fetch: finish it from cache if the result has appeared, fall
// in behind an identical in-flight run, or take a queue slot if one is
// free. A full queue leaves the job interrupted — the next fetch tries
// again — so recovery retries can never displace fresh admissions.
func (s *Server) maybeRequeueInterrupted(job *Job) {
	if job == nil || job.currentState() != JobInterrupted {
		return
	}
	s.mu.Lock()
	// Re-check under s.mu: a concurrent fetch may have re-queued it.
	if job.currentState() != JobInterrupted || s.draining {
		s.mu.Unlock()
		return
	}
	spec := job.spec
	var fromCache *Entry
	if !spec.NoCache {
		if e, ok := s.cache.Peek(job.key); ok {
			fromCache = &e
		} else if leader := s.leaders[job.key]; leader != nil {
			job.markCoalesced()
			s.followers[job.key] = append(s.followers[job.key], job)
			job.setState(JobQueued)
			s.journalAppend(s.submitRecord(job))
			s.mu.Unlock()
			s.journalSync()
			s.log.Info("interrupted job re-queued",
				"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
				"via", "coalesce")
			s.flight.Record(FlightEvent{Event: "requeue_interrupted", Job: job.id,
				Trace: job.traceID, Tenant: job.tenant, Detail: "coalesce"})
			return
		}
	}
	if fromCache != nil {
		s.mu.Unlock()
		job.finish(fromCache.State, fromCache.Manifest, "", fromCache.Attempts)
		s.observeJobLatency(job)
		s.journalAppendSync(durable.Record{Op: durable.OpDone, Job: job.id,
			State: string(fromCache.State), Attempts: fromCache.Attempts})
		s.log.Info("interrupted job finished from cache",
			"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
			"state", string(fromCache.State))
		s.flight.Record(FlightEvent{Event: "requeue_interrupted", Job: job.id,
			Trace: job.traceID, Tenant: job.tenant, Detail: "from_cache"})
		return
	}
	if len(s.queue)+s.pendingEnqueue >= s.cfg.QueueDepth || len(s.queue)+s.pendingEnqueue >= cap(s.queue) {
		s.mu.Unlock()
		return
	}
	if !spec.NoCache {
		s.leaders[job.key] = job
	}
	s.tenantInFlight[job.tenant]++
	// Transition before the send: the worker may set running immediately,
	// and setState ignores nothing here (interrupted is not terminal).
	job.setState(JobQueued)
	s.journalAppend(s.submitRecord(job))
	s.queue <- job // cannot block: depth checked under s.mu
	s.mu.Unlock()
	s.journalSync()
	s.log.Info("interrupted job re-queued",
		"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
		"via", "queue")
	s.flight.Record(FlightEvent{Event: "requeue_interrupted", Job: job.id,
		Trace: job.traceID, Tenant: job.tenant, Detail: "queue"})
}
