package service

import (
	"encoding/json"
	"fmt"

	"repro/internal/durable"
)

// This file is the service side of crash safety: it wires the durable
// store and journal into the server, replays the journal at boot into
// live job records, and re-queues interrupted jobs on demand.
//
// The recovery policy, per journaled job:
//
//   - done record present      → recreate the job terminal; its manifest
//     (if the state is cacheable) is served from the store by content
//     address.
//   - spec unparseable or needs a capability this server lacks → failed.
//   - result already in the store → finish from cache ("from_cache").
//   - any job in the key group had started → the whole group parks as
//     interrupted; the next status/manifest fetch re-queues it. Re-running
//     at boot would turn a spec that crashes the daemon into a crash
//     loop, so the retry waits for a client to ask.
//   - else (queued at the crash) → re-enqueued immediately, first job
//     per key leading and the rest coalescing, exactly like admission.

// openDurable opens the store and journal under cfg.DataDir, replays the
// journal into job records, and returns the jobs to re-enqueue. It is a
// no-op returning nil when DataDir is empty. Called from New before the
// queue exists and before any worker starts, so it owns all state.
func (s *Server) openDurable() ([]*Job, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	store, err := durable.OpenStore(s.cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("service: opening durable store: %w", err)
	}
	s.store = store
	s.cache.AttachStore(store)

	path := durable.JournalPath(s.cfg.DataDir)
	journal, recs, _, err := durable.OpenJournal(path)
	if err != nil {
		return nil, fmt.Errorf("service: opening job journal: %w", err)
	}
	requeue := s.rebuildJobs(durable.BuildRecovery(recs))

	// Compact the journal down to the still-live jobs so boot-time replay
	// cost tracks in-flight work, not daemon lifetime. Terminal recovered
	// jobs are dropped: their results live in the store under their
	// content address, and their job records survive this process only.
	if err := journal.Close(); err != nil {
		return nil, fmt.Errorf("service: closing journal pre-compaction: %w", err)
	}
	compacted, err := durable.Compact(path, s.liveRecords())
	if err != nil {
		return nil, fmt.Errorf("service: compacting journal: %w", err)
	}
	s.journal = compacted
	return requeue, nil
}

// rebuildJobs folds replayed journal records into live jobs, applying
// the recovery policy above. It returns the jobs to re-enqueue. Runs
// single-threaded from New, so it touches server maps without s.mu.
func (s *Server) rebuildJobs(recovered []durable.JobRecovery) []*Job {
	// The interrupted rule is per key group: if any pending job for a key
	// had started, the crash happened (or may have happened) inside that
	// simulation, and every job waiting on it parks as interrupted.
	startedKeys := make(map[string]bool)
	for _, jr := range recovered {
		if jr.Terminal == "" && jr.Started {
			startedKeys[jr.Key] = true
		}
	}

	var requeue []*Job
	for _, jr := range recovered {
		if jr.Seq > s.seq {
			s.seq = jr.Seq
		}
		spec, perr := ParseSpec(jr.Spec)
		job := newJob(jr.Job, jr.Tenant, spec, jr.Key)
		job.seq = jr.Seq
		job.recovered = true
		// The journaled trace ID keeps the job correlated with log lines
		// written before the crash; older journals without one re-derive
		// the identical ID (the derivation is deterministic).
		job.traceID = jr.Trace
		if job.traceID == "" {
			job.traceID = traceIDFor(jr.Job, jr.Key)
		}
		s.jobs[jr.Job] = job
		s.order = append(s.order, jr.Job)
		s.jobsTotal.Add(1)

		switch {
		case jr.Terminal != "":
			job.finish(JobState(jr.Terminal), nil, "", jr.Attempts)
			s.noteRecovered(job, "completed")

		case perr != nil:
			job.finish(JobFailed, nil, fmt.Sprintf("recovered job spec no longer parses: %v", perr), 0)
			s.noteRecovered(job, "failed")

		case spec.FaultPlan != nil && s.cfg.FaultPlanRun == nil:
			job.finish(JobFailed, nil, "recovered fault-plan job, but this server does not accept fault plans", 0)
			s.noteRecovered(job, "failed")

		default:
			if !spec.NoCache {
				// Peek, not Get: boot-time recovery is bookkeeping, and
				// must not skew the admission-facing hit/miss counters.
				if e, ok := s.cache.Peek(jr.Key); ok {
					job.finish(e.State, e.Manifest, "", e.Attempts)
					s.noteRecovered(job, "from_cache")
					continue
				}
				if startedKeys[jr.Key] {
					job.setState(JobInterrupted)
					s.noteRecovered(job, "interrupted")
					continue
				}
				if leader := s.leaders[jr.Key]; leader != nil {
					job.coalesced = true
					s.followers[jr.Key] = append(s.followers[jr.Key], job)
					s.noteRecovered(job, "requeued")
					continue
				}
				s.leaders[jr.Key] = job
			} else if jr.Started {
				// no_cache jobs share content keys with cache-participating
				// submissions but never share runs, so only this job's own
				// start record parks it.
				job.setState(JobInterrupted)
				s.noteRecovered(job, "interrupted")
				continue
			}
			s.tenantInFlight[job.tenant]++
			requeue = append(requeue, job)
			s.noteRecovered(job, "requeued")
		}
	}
	return requeue
}

// liveRecords renders the post-recovery pending jobs (queued and
// interrupted) as journal records for compaction, in admission order.
func (s *Server) liveRecords() []durable.Record {
	var recs []durable.Record
	for _, id := range s.order {
		job := s.jobs[id]
		st := job.currentState()
		if st.Terminal() {
			continue
		}
		recs = append(recs, s.submitRecord(job))
		if st == JobInterrupted {
			recs = append(recs, durable.Record{Op: durable.OpStart, Job: job.id})
		}
	}
	return recs
}

// submitRecord renders a job's admission as a journal record. The spec
// is the original parsed submission (not the canonical form), so flags
// like no_cache survive a replay.
func (s *Server) submitRecord(job *Job) durable.Record {
	specJSON, err := json.Marshal(job.spec)
	if err != nil { // a parsed Spec always re-marshals; defensive only
		specJSON = nil
	}
	return durable.Record{
		Op:        durable.OpSubmit,
		Job:       job.id,
		Seq:       job.seq,
		Tenant:    job.tenant,
		Key:       job.key,
		Coalesced: job.coalesced,
		Spec:      specJSON,
		Trace:     job.traceID,
	}
}

// journalAppend buffers a record; journalSync group-commits everything
// buffered so far; journalAppendSync does both. All are no-ops without a
// journal, and journal failures degrade durability but never fail jobs —
// they are counted on apusimd_journal_errors_total instead.
func (s *Server) journalAppend(rec durable.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.journalErrors.Inc()
	}
}

func (s *Server) journalSync() {
	if s.journal == nil {
		return
	}
	if err := s.journal.Sync(); err != nil {
		s.journalErrors.Inc()
	}
}

func (s *Server) journalAppendSync(rec durable.Record) {
	s.journalAppend(rec)
	s.journalSync()
}

// maybeRequeueInterrupted moves an interrupted job back into the flow on
// a client fetch: finish it from cache if the result has appeared, fall
// in behind an identical in-flight run, or take a queue slot if one is
// free. A full queue leaves the job interrupted — the next fetch tries
// again — so recovery retries can never displace fresh admissions.
func (s *Server) maybeRequeueInterrupted(job *Job) {
	if job == nil || job.currentState() != JobInterrupted {
		return
	}
	s.mu.Lock()
	// Re-check under s.mu: a concurrent fetch may have re-queued it.
	if job.currentState() != JobInterrupted || s.draining {
		s.mu.Unlock()
		return
	}
	spec := job.spec
	var fromCache *Entry
	if !spec.NoCache {
		if e, ok := s.cache.Peek(job.key); ok {
			fromCache = &e
		} else if leader := s.leaders[job.key]; leader != nil {
			job.markCoalesced()
			s.followers[job.key] = append(s.followers[job.key], job)
			job.setState(JobQueued)
			s.journalAppend(s.submitRecord(job))
			s.mu.Unlock()
			s.journalSync()
			s.log.Info("interrupted job re-queued",
				"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
				"via", "coalesce")
			s.flight.Record(FlightEvent{Event: "requeue_interrupted", Job: job.id,
				Trace: job.traceID, Tenant: job.tenant, Detail: "coalesce"})
			return
		}
	}
	if fromCache != nil {
		s.mu.Unlock()
		job.finish(fromCache.State, fromCache.Manifest, "", fromCache.Attempts)
		s.observeJobLatency(job)
		s.journalAppendSync(durable.Record{Op: durable.OpDone, Job: job.id,
			State: string(fromCache.State), Attempts: fromCache.Attempts})
		s.log.Info("interrupted job finished from cache",
			"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
			"state", string(fromCache.State))
		s.flight.Record(FlightEvent{Event: "requeue_interrupted", Job: job.id,
			Trace: job.traceID, Tenant: job.tenant, Detail: "from_cache"})
		return
	}
	if len(s.queue) >= s.cfg.QueueDepth || len(s.queue) >= cap(s.queue) {
		s.mu.Unlock()
		return
	}
	if !spec.NoCache {
		s.leaders[job.key] = job
	}
	s.tenantInFlight[job.tenant]++
	// Transition before the send: the worker may set running immediately,
	// and setState ignores nothing here (interrupted is not terminal).
	job.setState(JobQueued)
	s.journalAppend(s.submitRecord(job))
	s.queue <- job // cannot block: depth checked under s.mu
	s.mu.Unlock()
	s.journalSync()
	s.log.Info("interrupted job re-queued",
		"job_id", job.id, "trace_id", job.traceID, "tenant", job.tenant,
		"via", "queue")
	s.flight.Record(FlightEvent{Event: "requeue_interrupted", Job: job.id,
		Trace: job.traceID, Tenant: job.tenant, Detail: "queue"})
}
