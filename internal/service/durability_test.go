package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
)

// specKey hashes a spec the way admission does.
func specKey(t *testing.T, spec string) string {
	t.Helper()
	s, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", spec, err)
	}
	return s.Hash()
}

// writeJournal crafts a journal under dir from the given records,
// simulating what a crashed daemon left behind.
func writeJournal(t *testing.T, dir string, recs ...durable.Record) {
	t.Helper()
	j, old, _, err := durable.OpenJournalDir(nil, dir, durable.JournalOptions{})
	if err != nil {
		t.Fatalf("OpenJournalDir: %v", err)
	}
	if len(old) != 0 {
		t.Fatalf("journal at %s already has %d records", dir, len(old))
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func submitRec(id string, seq int, tenant, spec, key string) durable.Record {
	return durable.Record{
		Op: durable.OpSubmit, Job: id, Seq: seq, Tenant: tenant,
		Key: key, Spec: json.RawMessage(spec),
	}
}

func TestDurableRestartServesIdenticalManifestFromDisk(t *testing.T) {
	dir := t.TempDir()
	spec := `{"experiment": "exp-0"}`

	a := newTestDaemon(t, Config{Workers: 1, DataDir: dir})
	_, st := a.submit(t, spec)
	fin := a.await(t, st.ID)
	if fin.State != JobOK {
		t.Fatalf("first run finished %s, want ok", fin.State)
	}
	_, want := a.get(t, "/v1/jobs/"+st.ID+"/manifest")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// A fresh process with a cold memory cache must serve the identical
	// bytes from the durable store.
	b := newTestDaemon(t, Config{Workers: 1, DataDir: dir})
	code, st2 := b.submit(t, spec)
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("restart resubmit: code %d cacheHit %v, want 200 cache hit", code, st2.CacheHit)
	}
	_, got := b.get(t, "/v1/jobs/"+st2.ID+"/manifest")
	if !bytes.Equal(got, want) {
		t.Fatalf("manifest across restart differs:\n%s\nvs\n%s", got, want)
	}
	if hits := b.srv.CacheStats().DiskHits; hits < 1 {
		t.Errorf("disk hits = %d, want >= 1 (memory cache was cold)", hits)
	}
}

func TestRecoveryRequeuesJobsQueuedAtCrash(t *testing.T) {
	dir := t.TempDir()
	s1, s2 := `{"experiment": "exp-1"}`, `{"experiment": "exp-2"}`
	writeJournal(t, dir,
		submitRec("j-000001", 1, "default", s1, specKey(t, s1)),
		submitRec("j-000002", 2, "default", s2, specKey(t, s2)),
		// A duplicate submission of s1 that had coalesced pre-crash.
		submitRec("j-000003", 3, "default", s1, specKey(t, s1)),
	)

	d := newTestDaemon(t, Config{Workers: 2, DataDir: dir})
	for _, id := range []string{"j-000001", "j-000002", "j-000003"} {
		fin := d.await(t, id)
		if fin.State != JobOK || !fin.Recovered {
			t.Errorf("recovered job %s finished %+v, want ok and recovered", id, fin)
		}
	}
	_, text := d.get(t, "/v1/metrics")
	if got := promValue(t, string(text), `apusimd_recovered_jobs_total{outcome="requeued"}`); got != 3 {
		t.Errorf("requeued recoveries = %g, want 3", got)
	}
	// New admissions must not collide with replayed job IDs.
	_, st := d.submit(t, `{"experiment": "exp-3"}`)
	if st.ID != "j-000004" {
		t.Errorf("post-recovery admission got ID %s, want j-000004", st.ID)
	}
}

func TestRecoveryParksStartedJobsUntilFetched(t *testing.T) {
	dir := t.TempDir()
	spec := `{"experiment": "exp-4"}`
	writeJournal(t, dir,
		submitRec("j-000001", 1, "default", spec, specKey(t, spec)),
		durable.Record{Op: durable.OpStart, Job: "j-000001"},
	)

	d := newTestDaemon(t, Config{Workers: 1, DataDir: dir})
	// The job must NOT be running: it was mid-simulation at the crash, and
	// eagerly re-running it could crash-loop the daemon.
	code, body := d.get(t, "/v1/jobs/j-000001")
	if code != http.StatusOK {
		t.Fatalf("GET recovered job: %d: %s", code, body)
	}
	_, text := d.get(t, "/v1/metrics")
	if got := promValue(t, string(text), `apusimd_recovered_jobs_total{outcome="interrupted"}`); got != 1 {
		t.Errorf("interrupted recoveries = %g, want 1", got)
	}
	// That fetch re-queued it; it now runs to completion transparently.
	fin := d.await(t, "j-000001")
	if fin.State != JobOK || !fin.Recovered {
		t.Fatalf("interrupted job finished %+v, want ok and recovered", fin)
	}
}

func TestRecoveryFinishesStartedJobFromStoreWithoutRerun(t *testing.T) {
	dir := t.TempDir()
	spec := `{"experiment": "exp-5"}`
	key := specKey(t, spec)
	manifest := []byte(`{"schema":"apusim-run-manifest/v1","synthetic":true}`)
	store, err := durable.OpenStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(key, durable.Entry{State: string(JobOK), Attempts: 2, Manifest: manifest}); err != nil {
		t.Fatal(err)
	}
	writeJournal(t, dir,
		submitRec("j-000001", 1, "default", spec, key),
		durable.Record{Op: durable.OpStart, Job: "j-000001"},
	)

	d := newTestDaemon(t, Config{Workers: 1, DataDir: dir})
	fin := d.await(t, "j-000001")
	if fin.State != JobOK || fin.Attempts != 2 {
		t.Fatalf("job finished %+v, want ok with the stored result's 2 attempts", fin)
	}
	_, got := d.get(t, "/v1/jobs/j-000001/manifest")
	if !bytes.Equal(got, manifest) {
		t.Fatalf("manifest = %s, want the stored bytes verbatim", got)
	}
	_, text := d.get(t, "/v1/metrics")
	if v := promValue(t, string(text), `apusimd_recovered_jobs_total{outcome="from_cache"}`); v != 1 {
		t.Errorf("from_cache recoveries = %g, want 1", v)
	}
}

func TestRecoveredTerminalJobServesManifestFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := `{"experiment": "exp-6"}`

	a := newTestDaemon(t, Config{Workers: 1, DataDir: dir})
	_, st := a.submit(t, spec)
	a.await(t, st.ID)
	_, want := a.get(t, "/v1/jobs/"+st.ID+"/manifest")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = a.srv.Drain(ctx)

	// The restarted daemon recreates the finished job record (same ID)
	// and serves its manifest from the store by content address.
	b := newTestDaemon(t, Config{Workers: 1, DataDir: dir})
	code, body := b.get(t, "/v1/jobs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("GET recovered terminal job: %d: %s", code, body)
	}
	var rec JobStatus
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != JobOK || !rec.Recovered || !rec.HasManifest {
		t.Fatalf("recovered terminal job status %+v, want ok/recovered/has_manifest", rec)
	}
	code, got := b.get(t, "/v1/jobs/"+st.ID+"/manifest")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("manifest fetch after restart: code %d, identical %v", code, bytes.Equal(got, want))
	}
}

func TestWorkerPanicFailsJobNotDaemon(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	d.srv.testHookJob = func(job *Job) {
		if job.spec.Experiment == "exp-7" {
			panic("synthetic job panic")
		}
	}
	_, st := d.submit(t, `{"experiment": "exp-7"}`)
	fin := d.await(t, st.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "synthetic job panic") {
		t.Fatalf("panicked job finished %+v, want failed with the panic message", fin)
	}
	// The (single) worker survived and still serves jobs.
	_, st2 := d.submit(t, `{"experiment": "exp-8"}`)
	if fin2 := d.await(t, st2.ID); fin2.State != JobOK {
		t.Fatalf("job after panic finished %s, want ok", fin2.State)
	}
	_, text := d.get(t, "/v1/metrics")
	if v := promValue(t, string(text), "apusimd_worker_panics_total"); v < 1 {
		t.Errorf("worker panics = %g, want >= 1", v)
	}
}

func TestListStatusFilter(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	_, running := d.submit(t, `{"experiment": "exp-gated"}`)
	_, done := d.submit(t, `{"experiment": "exp-9", "no_cache": true}`)

	// The gated job owns the only worker, so exp-9 stays queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := d.get(t, "/v1/jobs/"+running.ID); code != http.StatusOK {
			t.Fatal("status fetch failed")
		}
		var st JobStatus
		_, body := d.get(t, "/v1/jobs/"+running.ID)
		_ = json.Unmarshal(body, &st)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gated job never started running (state %s)", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	list := func(q string) (int, []JobStatus) {
		code, body := d.get(t, "/v1/jobs"+q)
		var out struct {
			Jobs []JobStatus `json:"jobs"`
		}
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("decoding list: %v", err)
			}
		}
		return code, out.Jobs
	}
	if code, jobs := list("?status=running"); code != http.StatusOK || len(jobs) != 1 || jobs[0].ID != running.ID {
		t.Errorf("?status=running: code %d jobs %+v, want exactly the gated job", code, jobs)
	}
	if code, jobs := list("?status=queued"); code != http.StatusOK || len(jobs) != 1 || jobs[0].ID != done.ID {
		t.Errorf("?status=queued: code %d jobs %+v, want exactly the queued job", code, jobs)
	}
	if code, _ := list("?status=sucess"); code != http.StatusBadRequest {
		t.Errorf("unknown status filter: code %d, want 400", code)
	}
	if code, jobs := list(""); code != http.StatusOK || len(jobs) != 2 {
		t.Errorf("unfiltered list: code %d, %d jobs, want 2", code, len(jobs))
	}
	// Stable submission order, filtered or not.
	if _, jobs := list(""); jobs[0].ID != running.ID || jobs[1].ID != done.ID {
		t.Errorf("list order %s, %s; want submission order", jobs[0].ID, jobs[1].ID)
	}
}

func TestLoadShed429CarriesRetryAfter(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1})
	_, _ = d.submit(t, `{"experiment": "exp-gated"}`)
	// Wait for the gated job to occupy the worker, then fill the queue.
	time.Sleep(20 * time.Millisecond)
	_, _ = d.submit(t, `{"experiment": "exp-0"}`)

	resp, err := d.http.Client().Post(d.http.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "exp-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}
}

// TestTenantCapsUnderConcurrentDrain races a storm of submissions for a
// capped tenant against Drain: no job may be accepted and then lost, and
// the in-flight accounting must come back to zero (no leaked cap slots).
func TestTenantCapsUnderConcurrentDrain(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, TenantMaxInFlight: 2, QueueDepth: 64})

	var mu sync.Mutex
	var accepted []string
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				spec := fmt.Sprintf(`{"experiment": "exp-%d", "seed": %d}`, (g+i)%10, g*100+i)
				code, st := d.submit(t, spec, "X-Tenant", "storm")
				if code == http.StatusAccepted || code == http.StatusOK {
					mu.Lock()
					accepted = append(accepted, st.ID)
					mu.Unlock()
				} else if code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
					t.Errorf("submit: unexpected status %d", code)
				}
			}
		}()
	}
	// Let the storm get going, then drain mid-flight.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainErr := d.srv.Drain(ctx)
	wg.Wait()
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}

	// Every accepted job reached a terminal state — accepted-then-lost is
	// the bug class this guards against.
	for _, id := range accepted {
		code, body := d.get(t, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("accepted job %s not found after drain: %d", id, code)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Errorf("accepted job %s stuck in %s after drain: %s", id, st.State, body)
		}
	}
	// The cap accounting must fully unwind.
	d.srv.mu.Lock()
	leaked := len(d.srv.tenantInFlight)
	d.srv.mu.Unlock()
	if leaked != 0 {
		t.Errorf("tenantInFlight holds %d tenants after drain, want 0 (leaked cap slots)", leaked)
	}
}
