package service

import (
	"sync"
	"time"
)

// JobState is one point in a job's lifecycle. Jobs move
// queued → running → one terminal state; cache-hit and coalesced jobs
// may reach a terminal state without ever running.
type JobState string

// The job lifecycle.
const (
	// JobQueued means the job is admitted and waiting for a worker (or,
	// for a coalesced job, waiting on the identical in-flight run).
	JobQueued JobState = "queued"
	// JobRunning means a worker is simulating the job now.
	JobRunning JobState = "running"
	// JobOK, JobDegraded, and JobViolated mirror the runner's statuses of
	// the same names: completed clean, completed under injected faults,
	// and aborted by the watchdog or strict audit.
	JobOK       JobState = "ok"
	JobDegraded JobState = "degraded"
	JobViolated JobState = "violated"
	// JobFailed covers the remaining runner failures: errors and panics.
	// The status record's Error field says which.
	JobFailed JobState = "failed"
	// JobTimeout marks a job that exceeded its wall-clock deadline — the
	// spec's timeout_ms or the server default. Terminal but never cached:
	// a timeout is a property of this run's wall clock, not of the spec.
	JobTimeout JobState = "timeout"
	// JobCancelled marks a job stopped by a forced shutdown before it
	// could finish.
	JobCancelled JobState = "cancelled"
	// JobInterrupted marks a recovered job that was running when the
	// daemon died. It is NOT terminal: the daemon does not re-run such
	// jobs at boot (the job itself may be what killed the process), but
	// the next status or manifest fetch transparently re-queues it.
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state ends the lifecycle.
func (s JobState) Terminal() bool {
	switch s {
	case JobOK, JobDegraded, JobViolated, JobFailed, JobCancelled, JobTimeout:
		return true
	}
	return false
}

// Transition is one recorded state change.
type Transition struct {
	State JobState  `json:"state"`
	At    time.Time `json:"at"`
}

// JobStatus is the wire form of a job's current state, served by
// GET /v1/jobs/{id} and streamed by ?watch=1.
type JobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant,omitempty"`
	State  JobState `json:"state"`
	// SpecHash is the content address of the job's normalized spec — the
	// cache key.
	SpecHash string `json:"spec_hash"`
	// TraceID is the job's trace correlation key: the same 16-hex-digit ID
	// appears in the daemon's structured log lines, the lifecycle trace
	// served by GET /v1/jobs/{id}/trace, and the /v1/debug worker table
	// while the job runs.
	TraceID string `json:"trace_id,omitempty"`
	// QueuedNS, RunNS, and E2ENS are wall-clock stage durations stamped
	// from the recorded transitions: admission → worker pickup, worker
	// pickup → terminal, and admission → terminal. QueuedNS and RunNS are
	// present only for jobs that actually ran (cache hits and coalesced
	// jobs reuse a result without running); E2ENS is present once the job
	// is terminal. All three are observability data and are firewalled out
	// of manifests, which carry only deterministic simulated-time records.
	QueuedNS int64 `json:"queued_ns,omitempty"`
	RunNS    int64 `json:"run_ns,omitempty"`
	E2ENS    int64 `json:"e2e_ns,omitempty"`
	// CacheHit marks a job served from the stored result cache;
	// Coalesced marks one that waited on an identical in-flight run
	// instead of simulating again. Both reuse a result, so both count as
	// cache hits for throughput accounting.
	CacheHit  bool `json:"cache_hit,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Attempts is how many runner attempts produced the result (echoed
	// from the original run for reused results).
	Attempts int `json:"attempts,omitempty"`
	// Error describes a failed/cancelled/violated outcome.
	Error string `json:"error,omitempty"`
	// HasManifest says whether GET /v1/jobs/{id}/manifest will succeed.
	HasManifest bool `json:"has_manifest"`
	// Recovered marks a job rebuilt from the journal after a restart
	// rather than submitted to this process.
	Recovered bool `json:"recovered,omitempty"`
	// NonDurable marks a job admitted while storage durability was
	// degraded: it runs and completes normally but is not journaled, so a
	// crash before completion loses it. Cleared on queued/running jobs
	// when the durability probe re-arms the journal (they are re-recorded
	// by the recovery checkpoint).
	NonDurable bool `json:"non_durable,omitempty"`
	// TimeoutMS echoes the spec's wall-clock deadline, when one was set.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Transitions is the recorded lifecycle so far.
	Transitions []Transition `json:"transitions"`
}

// Job is one submitted run. All fields behind mu; accessors copy.
type Job struct {
	id     string
	tenant string
	spec   *Spec
	key    string
	// traceID is the job's trace correlation key, immutable after
	// admission (or recovery). It threads through structured logs, the
	// journal, the flight recorder, and GET /v1/jobs/{id}/trace.
	traceID   string
	seq       int  // admission order, stable across journal replay
	recovered bool // rebuilt from the journal after a restart
	// bootTerminal marks a job that was already terminal when this process
	// rebuilt it from the journal. Checkpoints drop such jobs (their
	// results live in the store; their records survive one restart only),
	// while jobs that reached a terminal state in THIS process stay
	// journaled until the next boot's checkpoint retires them.
	bootTerminal bool

	mu          sync.Mutex
	state       JobState
	errMsg      string
	attempts    int
	cacheHit    bool
	coalesced   bool
	nonDurable  bool
	manifest    []byte
	transitions []Transition
	subs        []chan JobStatus
}

// newJob constructs a job in the queued state.
func newJob(id, tenant string, spec *Spec, key string) *Job {
	j := &Job{id: id, tenant: tenant, spec: spec, key: key}
	j.state = JobQueued
	j.transitions = []Transition{{State: JobQueued, At: time.Now().UTC()}}
	return j
}

// Status returns a snapshot of the job's current state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() JobStatus {
	queued, run, e2e := j.stageNanosLocked()
	var timeoutMS int64
	if j.spec != nil {
		timeoutMS = j.spec.TimeoutMS
	}
	return JobStatus{
		ID:          j.id,
		Tenant:      j.tenant,
		State:       j.state,
		SpecHash:    j.key,
		TraceID:     j.traceID,
		QueuedNS:    queued,
		RunNS:       run,
		E2ENS:       e2e,
		CacheHit:    j.cacheHit,
		Coalesced:   j.coalesced,
		Attempts:    j.attempts,
		Error:       j.errMsg,
		HasManifest: len(j.manifest) > 0 || (j.recovered && cacheable(j.state)),
		Recovered:   j.recovered,
		NonDurable:  j.nonDurable,
		TimeoutMS:   timeoutMS,
		Transitions: append([]Transition(nil), j.transitions...),
	}
}

// stageNanosLocked derives the wall-clock stage durations from the
// recorded transitions: admission → first worker pickup (queue wait),
// pickup → terminal (run), and admission → terminal (end to end). Queue
// and run durations exist only for jobs that actually ran; run and
// end-to-end only once the job is terminal. Clock steps clamp to zero.
func (j *Job) stageNanosLocked() (queuedNS, runNS, e2eNS int64) {
	n := len(j.transitions)
	if n == 0 {
		return 0, 0, 0
	}
	clamp := func(d time.Duration) int64 {
		if d < 0 {
			return 0
		}
		return d.Nanoseconds()
	}
	first := j.transitions[0]
	last := j.transitions[n-1]
	var runAt time.Time
	for _, tr := range j.transitions {
		if tr.State == JobRunning {
			runAt = tr.At
			break
		}
	}
	if !runAt.IsZero() {
		queuedNS = clamp(runAt.Sub(first.At))
		if last.State.Terminal() {
			runNS = clamp(last.At.Sub(runAt))
		}
	}
	if last.State.Terminal() {
		e2eNS = clamp(last.At.Sub(first.At))
	}
	return queuedNS, runNS, e2eNS
}

// currentState returns the job's state under its lock.
func (j *Job) currentState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// markCoalesced flags the job as waiting on an identical in-flight run.
// Used when an interrupted job is re-queued onto an existing leader.
func (j *Job) markCoalesced() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.coalesced = true
}

// markNonDurable flags a job admitted while durability was degraded: it
// was never journaled, so its 202 promises execution, not crash
// survival.
func (j *Job) markNonDurable() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nonDurable = true
}

// clearNonDurable removes the degraded-admission mark once the job is
// journaled again (the recovery checkpoint re-records every pending
// job). Terminal jobs keep the mark: their results were never persisted.
func (j *Job) clearNonDurable() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		j.nonDurable = false
	}
}

// Manifest returns the job's stored manifest bytes, or nil if the job has
// not produced one (yet, or at all).
func (j *Job) Manifest() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.manifest
}

// setState records a transition and notifies watchers. Transitions to a
// terminal state carry the outcome; later calls on a terminal job are
// ignored (a forced shutdown racing a finishing worker must not flip a
// completed job to cancelled).
func (j *Job) setState(state JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.transitions = append(j.transitions, Transition{State: state, At: time.Now().UTC()})
	j.notifyLocked()
}

// finish records the terminal outcome in one step.
func (j *Job) finish(state JobState, manifest []byte, errMsg string, attempts int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.manifest = manifest
	j.errMsg = errMsg
	j.attempts = attempts
	j.transitions = append(j.transitions, Transition{State: state, At: time.Now().UTC()})
	j.notifyLocked()
}

// notifyLocked pushes the current status to every subscriber. Channels
// are buffered deep enough for the whole lifecycle, so sends never block
// with j.mu held.
func (j *Job) notifyLocked() {
	st := j.statusLocked()
	for _, ch := range j.subs {
		select {
		case ch <- st:
		default: // a stalled watcher loses intermediate states, never the lock
		}
	}
}

// subscribe registers a watcher and primes it with the current status.
// The channel buffer covers every state a job can pass through, so a
// draining reader sees each transition.
func (j *Job) subscribe() chan JobStatus {
	ch := make(chan JobStatus, 8)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs = append(j.subs, ch)
	ch <- j.statusLocked()
	return ch
}

// unsubscribe removes a watcher.
func (j *Job) unsubscribe(ch chan JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
}
