// Package service is the simulation-as-a-service layer: a long-running
// front door over the experiment runner. It exposes an HTTP/JSON API —
// submit a run spec, get a job ID, stream status transitions, fetch the
// run manifest — backed by a bounded job queue, a worker pool generalized
// from internal/runner (per-job engines, panic isolation, timeouts,
// retries), admission control with per-tenant fairness, and a
// content-addressed result cache.
//
// The cache is what turns the repository's determinism contract into
// throughput: a run is a pure function of its normalized (spec, seed,
// fault plan), so the SHA-256 of the canonical spec keys a reusable
// manifest. Sweep-style workloads that submit thousands of overlapping
// design points hit cache instead of re-simulating; only mutated configs
// pay for an engine.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ras"
)

// SpecSchema identifies the job-spec JSON layout accepted by POST
// /v1/jobs; bump on incompatible changes.
const SpecSchema = "apusim-job-spec/v1"

// Spec is one job's run specification: what to simulate and which
// observability options to arm. Exactly one of Experiment or FaultPlan
// selects the work — a registered experiment by ID, or an ad-hoc RAS
// fault plan probed against a full platform build.
type Spec struct {
	// Experiment is a registered experiment ID (GET /v1/experiments
	// enumerates them).
	Experiment string `json:"experiment,omitempty"`
	// FaultPlan is an ad-hoc fault schedule, run against a freshly built
	// platform with end-to-end health probes (the same path as
	// cmd/repro -faults).
	FaultPlan *ras.Plan `json:"fault_plan,omitempty"`
	// Platform names the platform spec a fault-plan job builds; "" means
	// mi300a. Only valid alongside FaultPlan.
	Platform string `json:"platform,omitempty"`
	// Seed overrides the fault plan's seed when nonzero. For experiment
	// jobs it is inert (experiments are self-seeded) but still part of
	// the cache key.
	Seed uint64 `json:"seed,omitempty"`
	// Telemetry arms sampled component timelines; SampleNS is the
	// cadence in simulated nanoseconds (0 = package default).
	Telemetry bool  `json:"telemetry,omitempty"`
	SampleNS  int64 `json:"sample_ns,omitempty"`
	// Spans arms causal span tracing; SpanSample is the head-sampling
	// rate in (0, 1] (0 or out-of-range traces every root).
	Spans      bool    `json:"spans,omitempty"`
	SpanSample float64 `json:"span_sample,omitempty"`
	// Audit arms runtime invariant auditing; Strict fails the run on any
	// violation instead of degrading it.
	Audit  bool `json:"audit,omitempty"`
	Strict bool `json:"strict,omitempty"`
	// Retries is how many extra attempts a failing run gets, each on a
	// fresh engine.
	Retries int `json:"retries,omitempty"`
	// TimeoutMS is the job's wall-clock deadline in milliseconds; 0 means
	// the server default. A spec deadline can only tighten the server's —
	// the effective deadline is min(timeout_ms, server default). Jobs that
	// exceed it reach the terminal "timeout" state. Part of the content
	// hash: the deadline can change the outcome, so it is spec semantics,
	// not an inert preference.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache in both directions: the job
	// neither reads a stored manifest nor coalesces onto an in-flight
	// duplicate, and its result is not stored. It is excluded from the
	// content hash — a validation re-run must prove it reproduces the
	// cached bytes, which requires the same key.
	NoCache bool `json:"no_cache,omitempty"`
}

// maxRetries bounds the per-job retry budget a client may request, so a
// single submission cannot pin a worker indefinitely.
const maxRetries = 10

// knownPlatforms are the platform names fault-plan jobs may build.
var knownPlatforms = map[string]bool{"mi300a": true}

// ParseSpec decodes a JSON job spec and validates it. Unknown fields are
// rejected so a typo'd option fails loudly instead of silently running an
// un-asked-for configuration, and trailing data after the spec object is
// rejected (mirroring ras.ParsePlan).
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("service: parsing job spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("service: parsing job spec: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec for structural problems. It does not check
// that Experiment names a registered experiment — that is the server's
// call, since the registry is its dependency.
func (s *Spec) Validate() error {
	switch {
	case s.Experiment == "" && s.FaultPlan == nil:
		return fmt.Errorf("service: spec selects no work: set experiment or fault_plan")
	case s.Experiment != "" && s.FaultPlan != nil:
		return fmt.Errorf("service: spec selects both experiment %q and a fault plan; pick one", s.Experiment)
	}
	if s.Platform != "" {
		if s.FaultPlan == nil {
			return fmt.Errorf("service: platform %q without a fault plan (experiments pick their own platforms)", s.Platform)
		}
		if !knownPlatforms[s.Platform] {
			return fmt.Errorf("service: unknown platform %q", s.Platform)
		}
	}
	if s.FaultPlan != nil {
		if err := s.FaultPlan.Validate(); err != nil {
			return err
		}
	}
	if s.SampleNS < 0 {
		return fmt.Errorf("service: negative sample_ns %d", s.SampleNS)
	}
	if math.IsNaN(s.SpanSample) || math.IsInf(s.SpanSample, 0) || s.SpanSample < 0 {
		return fmt.Errorf("service: span_sample %g is not a rate", s.SpanSample)
	}
	if s.Retries < 0 || s.Retries > maxRetries {
		return fmt.Errorf("service: retries %d outside [0, %d]", s.Retries, maxRetries)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("service: negative timeout_ms %d", s.TimeoutMS)
	}
	return nil
}

// normalized returns the canonical form of the spec: the representation
// every semantically identical submission shares, so equal work hashes to
// equal cache keys regardless of how the client spelled it.
//
//   - NoCache is dropped: it controls cache participation, not what runs.
//   - Inert options are zeroed (a sampling cadence without telemetry, a
//     span rate without spans).
//   - A span rate outside (0, 1] becomes exactly 1 — the runner treats
//     every such value as "trace everything".
//   - A nonzero Seed folds into the fault plan's seed, and the plan's
//     faults are stably sorted by firing time: the injector fires faults
//     in AtNS order (ties keep plan order), so the sorted plan is
//     behaviorally identical to any permutation of it.
//   - An empty Platform becomes the default for fault-plan jobs.
func (s *Spec) normalized() *Spec {
	n := *s
	n.NoCache = false
	if !n.Telemetry {
		n.SampleNS = 0
	}
	if !n.Spans {
		n.SpanSample = 0
	} else if n.SpanSample <= 0 || n.SpanSample > 1 {
		n.SpanSample = 1
	}
	if n.FaultPlan == nil {
		n.Platform = ""
		return &n
	}
	if n.Platform == "" {
		n.Platform = "mi300a"
	}
	plan := ras.Plan{Seed: n.FaultPlan.Seed, Faults: append([]ras.Fault(nil), n.FaultPlan.Faults...)}
	if n.Seed != 0 {
		plan.Seed = n.Seed
		n.Seed = 0
	}
	sort.SliceStable(plan.Faults, func(i, j int) bool { return plan.Faults[i].AtNS < plan.Faults[j].AtNS })
	n.FaultPlan = &plan
	return &n
}

// EffectivePlan returns the fault plan a worker should arm: the
// normalized plan, with the spec-level seed already folded in. Nil for
// experiment jobs.
func (s *Spec) EffectivePlan() *ras.Plan { return s.normalized().FaultPlan }

// Canonical renders the normalized spec as canonical JSON. Go's encoder
// writes struct fields in declaration order with no insignificant
// whitespace, so the bytes are a pure function of the normalized values —
// field order in the client's JSON cannot matter, because it never
// survives the decode.
func (s *Spec) Canonical() []byte {
	b, err := json.Marshal(s.normalized())
	if err != nil {
		// A Spec holds only marshalable fields; failure is a programming
		// bug, not an input condition.
		panic(fmt.Sprintf("service: canonicalizing spec: %v", err))
	}
	return b
}

// Hash returns the spec's content address: "sha256:" + the hex SHA-256
// of the canonical form. Equal hashes mean byte-identical manifests, by
// the determinism contract the audit/chaos suites pin.
func (s *Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return "sha256:" + hex.EncodeToString(sum[:])
}
