package service

import (
	"strings"
	"testing"

	"repro/internal/ras"
)

// goldenSpecJSON is a pinned wire-form spec; goldenSpecHash is its pinned
// content address. If this test breaks, the canonical form changed — that
// invalidates every stored cache entry in the wild, so bump SpecSchema
// and re-pin deliberately, don't just update the constant.
const (
	goldenSpecJSON = `{
		"fault_plan": {
			"seed": 7,
			"faults": [
				{"kind": "ecc-storm", "at_ns": 50, "rate": 0.01, "penalty_ns": 20},
				{"kind": "link-down", "at_ns": 10, "a": "xcd0", "b": "xcd1"}
			]
		},
		"telemetry": true,
		"sample_ns": 100,
		"retries": 1
	}`
	goldenSpecHash = "sha256:62b7a000ff61acee4a5b37bae5ff172c803f06d848ba77e05395c6c08985c587"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", src, err)
	}
	return s
}

func TestSpecGoldenHash(t *testing.T) {
	s := mustParse(t, goldenSpecJSON)
	if got := s.Hash(); got != goldenSpecHash {
		t.Errorf("golden spec hash changed:\n got %s\nwant %s\ncanonical: %s", got, goldenSpecHash, s.Canonical())
	}
}

func TestSpecHashFieldOrderIndependent(t *testing.T) {
	a := mustParse(t, `{"experiment": "baseline", "telemetry": true, "sample_ns": 250, "retries": 2}`)
	b := mustParse(t, `{"retries": 2, "sample_ns": 250, "telemetry": true, "experiment": "baseline"}`)
	if a.Hash() != b.Hash() {
		t.Errorf("field order changed the hash:\n a %s\n b %s", a.Canonical(), b.Canonical())
	}
}

func TestSpecHashFaultOrderIndependent(t *testing.T) {
	a := mustParse(t, `{"fault_plan": {"seed": 3, "faults": [
		{"kind": "link-down", "at_ns": 10, "a": "xcd0", "b": "xcd1"},
		{"kind": "ecc-storm", "at_ns": 5, "rate": 0.5, "penalty_ns": 10}
	]}}`)
	b := mustParse(t, `{"fault_plan": {"seed": 3, "faults": [
		{"kind": "ecc-storm", "at_ns": 5, "rate": 0.5, "penalty_ns": 10},
		{"kind": "link-down", "at_ns": 10, "a": "xcd0", "b": "xcd1"}
	]}}`)
	if a.Hash() != b.Hash() {
		t.Errorf("fault order changed the hash (injector fires in AtNS order):\n a %s\n b %s", a.Canonical(), b.Canonical())
	}
}

func TestSpecHashSeedSensitivity(t *testing.T) {
	s1 := mustParse(t, `{"fault_plan": {"seed": 1, "faults": [{"kind": "xcd-loss", "at_ns": 100, "xcd": 1}]}}`)
	s2 := mustParse(t, `{"fault_plan": {"seed": 2, "faults": [{"kind": "xcd-loss", "at_ns": 100, "xcd": 1}]}}`)
	if s1.Hash() == s2.Hash() {
		t.Errorf("different plan seeds hashed equal: %s", s1.Hash())
	}

	// A spec-level seed folds into the plan seed: the two spellings are
	// the same work and must share a cache key.
	folded := mustParse(t, `{"seed": 2, "fault_plan": {"seed": 1, "faults": [{"kind": "xcd-loss", "at_ns": 100, "xcd": 1}]}}`)
	if folded.Hash() != s2.Hash() {
		t.Errorf("spec seed override did not fold into the plan seed:\n folded %s\n direct %s", folded.Canonical(), s2.Canonical())
	}
}

func TestSpecHashPlanSensitivity(t *testing.T) {
	a := mustParse(t, `{"fault_plan": {"seed": 1, "faults": [{"kind": "cu-loss", "at_ns": 10, "count": 4, "xcd": 0}]}}`)
	b := mustParse(t, `{"fault_plan": {"seed": 1, "faults": [{"kind": "cu-loss", "at_ns": 10, "count": 8, "xcd": 0}]}}`)
	if a.Hash() == b.Hash() {
		t.Errorf("different fault plans hashed equal: %s", a.Hash())
	}
}

func TestSpecHashIgnoresNoCacheAndInertOptions(t *testing.T) {
	plain := mustParse(t, `{"experiment": "baseline"}`)
	for _, src := range []string{
		`{"experiment": "baseline", "no_cache": true}`,
		`{"experiment": "baseline", "sample_ns": 500}`,   // cadence without telemetry is inert
		`{"experiment": "baseline", "span_sample": 0.5}`, // rate without spans is inert
	} {
		if got := mustParse(t, src).Hash(); got != plain.Hash() {
			t.Errorf("spec %s hashed %s, want the plain hash %s", src, got, plain.Hash())
		}
	}

	// But the armed versions of those options DO change the work.
	armed := mustParse(t, `{"experiment": "baseline", "telemetry": true, "sample_ns": 500}`)
	if armed.Hash() == plain.Hash() {
		t.Errorf("armed telemetry did not change the hash")
	}
}

func TestSpecSpanRateClampsToOne(t *testing.T) {
	a := mustParse(t, `{"experiment": "baseline", "spans": true}`)
	b := mustParse(t, `{"experiment": "baseline", "spans": true, "span_sample": 1}`)
	if a.Hash() != b.Hash() {
		t.Errorf("spans with default rate and rate 1 hashed differently:\n a %s\n b %s", a.Canonical(), b.Canonical())
	}
}

func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown field", `{"experiment": "x", "experimnet": "y"}`, "unknown field"},
		{"trailing data", `{"experiment": "x"} {"experiment": "y"}`, "trailing data"},
		{"no work", `{}`, "selects no work"},
		{"both selectors", `{"experiment": "x", "fault_plan": {"seed": 1, "faults": [{"kind": "xcd-loss", "at_ns": 0, "xcd": 0}]}}`, "pick one"},
		{"platform without plan", `{"experiment": "x", "platform": "mi300a"}`, "without a fault plan"},
		{"unknown platform", `{"platform": "mi400x", "fault_plan": {"seed": 1, "faults": [{"kind": "xcd-loss", "at_ns": 0, "xcd": 0}]}}`, "unknown platform"},
		{"empty plan", `{"fault_plan": {"seed": 1, "faults": []}}`, "no faults"},
		{"bad fault", `{"fault_plan": {"seed": 1, "faults": [{"kind": "warp-core-breach", "at_ns": 0}]}}`, "unknown kind"},
		{"negative cadence", `{"experiment": "x", "sample_ns": -5}`, "negative sample_ns"},
		{"negative span rate", `{"experiment": "x", "span_sample": -0.5}`, "not a rate"},
		{"negative retries", `{"experiment": "x", "retries": -1}`, "retries"},
		{"excessive retries", `{"experiment": "x", "retries": 99}`, "retries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.src))
			if err == nil {
				t.Fatalf("ParseSpec accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	s := mustParse(t, `{"seed": 9, "fault_plan": {"seed": 1, "faults": [
		{"kind": "link-down", "at_ns": 20, "a": "xcd0", "b": "xcd1"},
		{"kind": "xcd-loss", "at_ns": 5, "xcd": 2}
	]}}`)
	_ = s.Hash()
	if s.Seed != 9 || s.FaultPlan.Seed != 1 {
		t.Errorf("normalization mutated the original spec: seed %d plan seed %d", s.Seed, s.FaultPlan.Seed)
	}
	if s.FaultPlan.Faults[0].Kind != ras.FaultLinkDown {
		t.Errorf("normalization re-sorted the original plan's faults")
	}
}

func TestEffectivePlanFoldsSeedAndSorts(t *testing.T) {
	s := mustParse(t, `{"seed": 9, "fault_plan": {"seed": 1, "faults": [
		{"kind": "link-down", "at_ns": 20, "a": "xcd0", "b": "xcd1"},
		{"kind": "xcd-loss", "at_ns": 5, "xcd": 2}
	]}}`)
	p := s.EffectivePlan()
	if p.Seed != 9 {
		t.Errorf("EffectivePlan seed = %d, want the spec-level override 9", p.Seed)
	}
	if p.Faults[0].Kind != ras.FaultXCDLoss || p.Faults[1].Kind != ras.FaultLinkDown {
		t.Errorf("EffectivePlan faults not sorted by AtNS: %v, %v", p.Faults[0].Kind, p.Faults[1].Kind)
	}
}
