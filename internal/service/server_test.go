package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ras"
	"repro/internal/runner"
)

// testRegistry builds a registry of ten fast deterministic experiments
// (exp-0 … exp-9), one failing experiment, and one gated experiment that
// blocks until the returned channel is closed.
func testRegistry() (*runner.Registry, chan struct{}) {
	reg := runner.NewRegistry()
	for i := 0; i < 10; i++ {
		i := i
		reg.MustRegister(runner.Experiment{
			ID:   fmt.Sprintf("exp-%d", i),
			Desc: "fast deterministic test experiment",
			Run: func(ctx *runner.Ctx) (string, error) {
				return fmt.Sprintf("point %d simulated", i), nil
			},
		})
	}
	reg.MustRegister(runner.Experiment{
		ID:   "exp-fail",
		Desc: "always fails",
		Run: func(ctx *runner.Ctx) (string, error) {
			return "", fmt.Errorf("synthetic failure")
		},
	})
	gate := make(chan struct{})
	reg.MustRegister(runner.Experiment{
		ID:   "exp-gated",
		Desc: "blocks until the test releases it",
		Run: func(ctx *runner.Ctx) (string, error) {
			<-gate
			return "released", nil
		},
	})
	return reg, gate
}

type testDaemon struct {
	srv  *Server
	http *httptest.Server
	gate chan struct{}
}

func newTestDaemon(t *testing.T, cfg Config) *testDaemon {
	t.Helper()
	reg, gate := testRegistry()
	cfg.Registry = reg
	cfg.FaultPlanRun = func(ctx *runner.Ctx, plan *ras.Plan) (string, error) {
		return fmt.Sprintf("plan seed %d, %d faults", plan.Seed, len(plan.Faults)), nil
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 30 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	d := &testDaemon{srv: s, http: hs, gate: gate}
	t.Cleanup(func() {
		close(d.gate) // tests that already released the gate swap in a fresh one
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		hs.Close()
	})
	return d
}

func (d *testDaemon) submit(t *testing.T, spec string, hdr ...string) (int, JobStatus) {
	t.Helper()
	req, err := http.NewRequest("POST", d.http.URL+"/v1/jobs", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := d.http.Client().Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return resp.StatusCode, JobStatus{}
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding submit response %q: %v", body, err)
	}
	return resp.StatusCode, st
}

func (d *testDaemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := d.http.Client().Get(d.http.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// await polls a job until it reaches a terminal state.
func (d *testDaemon) await(t *testing.T, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := d.get(t, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d: %s", id, code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	cases := []struct {
		spec string
		code int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"experiment": "no-such-experiment"}`, http.StatusBadRequest},
		{`{"experiment": "exp-0", "bogus_field": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _ := d.submit(t, tc.spec); code != tc.code {
			t.Errorf("submit %s: status %d, want %d", tc.spec, code, tc.code)
		}
	}
}

func TestJobLifecycleAndManifest(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	code, st := d.submit(t, `{"experiment": "exp-0"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if st.State != JobQueued && st.State != JobRunning {
		t.Errorf("fresh job state %s, want queued/running", st.State)
	}
	fin := d.await(t, st.ID)
	if fin.State != JobOK || !fin.HasManifest || fin.Attempts != 1 {
		t.Fatalf("final status %+v, want ok with a manifest after 1 attempt", fin)
	}
	if len(fin.Transitions) != 3 || fin.Transitions[0].State != JobQueued ||
		fin.Transitions[1].State != JobRunning || fin.Transitions[2].State != JobOK {
		t.Errorf("transitions %+v, want queued → running → ok", fin.Transitions)
	}
	code, manifest := d.get(t, "/v1/jobs/"+st.ID+"/manifest")
	if code != http.StatusOK {
		t.Fatalf("manifest fetch: status %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal(manifest, &m); err != nil {
		t.Fatalf("manifest is not JSON: %v", err)
	}
	if m["schema"] != "apusim-run-manifest/v1" {
		t.Errorf("manifest schema = %v", m["schema"])
	}
}

func TestFailedJobHasNoManifestToCache(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	_, st := d.submit(t, `{"experiment": "exp-fail"}`)
	fin := d.await(t, st.ID)
	if fin.State != JobFailed || fin.Error == "" {
		t.Fatalf("final status %+v, want failed with an error", fin)
	}
	// A failure is never served from cache: resubmitting runs again.
	_, st2 := d.submit(t, `{"experiment": "exp-fail"}`)
	fin2 := d.await(t, st2.ID)
	if fin2.CacheHit {
		t.Error("failed result was cached and reused")
	}
}

func TestCacheHitReturnsIdenticalManifest(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, first := d.submit(t, `{"experiment": "exp-1"}`)
	d.await(t, first.ID)

	code, second := d.submit(t, `{"experiment": "exp-1"}`)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (served from cache)", code)
	}
	if !second.CacheHit || second.State != JobOK {
		t.Fatalf("resubmit status %+v, want a terminal cache hit", second)
	}
	_, m1 := d.get(t, "/v1/jobs/"+first.ID+"/manifest")
	_, m2 := d.get(t, "/v1/jobs/"+second.ID+"/manifest")
	if !bytes.Equal(m1, m2) {
		t.Errorf("cached manifest differs from fresh run:\n fresh: %s\ncached: %s", m1, m2)
	}
	if st := d.srv.CacheStats(); st.Hits != 1 {
		t.Errorf("cache stats %+v, want exactly 1 hit", st)
	}
}

func TestNoCacheBypassesBothDirections(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, warm := d.submit(t, `{"experiment": "exp-2"}`)
	d.await(t, warm.ID)

	code, st := d.submit(t, `{"experiment": "exp-2", "no_cache": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("no_cache submit: status %d, want 202 (must simulate fresh)", code)
	}
	fin := d.await(t, st.ID)
	if fin.CacheHit || fin.Coalesced {
		t.Errorf("no_cache job reused a result: %+v", fin)
	}
	// And the bypass run still reproduces the cached bytes — that is the
	// point of a validation re-run.
	_, m1 := d.get(t, "/v1/jobs/"+warm.ID+"/manifest")
	_, m2 := d.get(t, "/v1/jobs/"+st.ID+"/manifest")
	if !bytes.Equal(m1, m2) {
		t.Errorf("no_cache rerun produced different bytes:\n cached: %s\n fresh: %s", m1, m2)
	}
}

func TestCoalescingWaitsOnInFlightRun(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, leader := d.submit(t, `{"experiment": "exp-gated"}`)
	code, follower := d.submit(t, `{"experiment": "exp-gated"}`)
	if code != http.StatusAccepted || !follower.Coalesced {
		t.Fatalf("duplicate submit: code %d status %+v, want an accepted coalesced job", code, follower)
	}
	close(d.gate)
	d.gate = make(chan struct{}) // cleanup closes the fresh one

	lf := d.await(t, leader.ID)
	ff := d.await(t, follower.ID)
	if lf.State != JobOK || ff.State != JobOK {
		t.Fatalf("leader %s / follower %s, want both ok", lf.State, ff.State)
	}
	_, m1 := d.get(t, "/v1/jobs/"+leader.ID+"/manifest")
	_, m2 := d.get(t, "/v1/jobs/"+follower.ID+"/manifest")
	if !bytes.Equal(m1, m2) {
		t.Errorf("coalesced follower's manifest differs from the leader's")
	}
	if st := d.srv.CacheStats(); st.Hits != 0 {
		t.Errorf("coalescing counted as a cache hit: %+v", st)
	}
}

func TestTenantInFlightLimit(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 4, TenantMaxInFlight: 1})
	code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`, "X-Tenant", "alice")
	if code != http.StatusAccepted {
		t.Fatalf("first job: status %d", code)
	}
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`, "X-Tenant", "alice"); code != http.StatusTooManyRequests {
		t.Errorf("alice's second in-flight job: status %d, want 429", code)
	}
	// The limit is per tenant: bob is unaffected by alice's backlog.
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`, "X-Tenant", "bob"); code != http.StatusAccepted {
		t.Errorf("bob's job: status %d, want 202", code)
	}
	// Coalescing consumes no worker, so it is exempt from the cap.
	if code, st := d.submit(t, `{"experiment": "exp-gated"}`, "X-Tenant", "carol"); code != http.StatusAccepted {
		t.Errorf("carol's first job: status %d, want 202", code)
	} else if code, st2 := d.submit(t, `{"experiment": "exp-gated"}`, "X-Tenant", "carol"); code != http.StatusAccepted || !st2.Coalesced {
		_ = st
		t.Errorf("carol's coalesced duplicate: status %d %+v, want an exempt 202", code, st2)
	}
}

func TestQueueFullRejects(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1})
	// Worker 1 blocks on the gated job; the queue holds exactly one more.
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`); code != http.StatusAccepted {
		t.Fatalf("first job rejected")
	}
	// Wait for the worker to pick the first job up so the queue is empty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.srv.mu.Lock()
		running := d.srv.running
		d.srv.mu.Unlock()
		if running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the gated job")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`); code != http.StatusAccepted {
		t.Fatalf("queued job rejected")
	}
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`); code != http.StatusTooManyRequests {
		t.Errorf("over-depth submit: status %d, want 429", code)
	}
}

func TestFaultPlanJob(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, st := d.submit(t, `{"seed": 11, "fault_plan": {"seed": 1, "faults": [{"kind": "xcd-loss", "at_ns": 100, "xcd": 1}]}}`)
	fin := d.await(t, st.ID)
	if fin.State != JobOK {
		t.Fatalf("fault-plan job: %+v", fin)
	}
	// The manifest records the ad-hoc experiment's description, which
	// names the effective (folded) seed.
	_, manifest := d.get(t, "/v1/jobs/"+st.ID+"/manifest")
	if !bytes.Contains(manifest, []byte("ad-hoc RAS fault plan (1 faults, seed 11)")) {
		t.Errorf("manifest does not show the folded seed: %s", manifest)
	}
}

func TestWatchStreamsTransitions(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, st := d.submit(t, `{"experiment": "exp-gated"}`)

	resp, err := d.http.Client().Get(d.http.URL + "/v1/jobs/" + st.ID + "?watch=1")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	close(d.gate)
	d.gate = make(chan struct{})

	var states []JobState
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var js JobStatus
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			t.Fatalf("watch line %q: %v", sc.Text(), err)
		}
		states = append(states, js.State)
	}
	if len(states) == 0 || states[len(states)-1] != JobOK {
		t.Fatalf("watched states %v, want a stream ending in ok", states)
	}
	for i := 1; i < len(states); i++ {
		if states[i-1].Terminal() {
			t.Errorf("stream continued past terminal state: %v", states)
		}
	}
}

func TestDrainRejectsNewWorkAndCompletesOldWork(t *testing.T) {
	reg, gate := testRegistry()
	defer close(gate)
	s, err := New(Config{Registry: reg, Workers: 2, JobTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(`{"experiment": "exp-3"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	resp, err = http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(`{"experiment": "exp-4"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: status %d, want 503", resp.StatusCode)
	}
	// The job admitted before the drain finished normally.
	resp, err = http.Get(hs.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var fin JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&fin)
	resp.Body.Close()
	if fin.State != JobOK {
		t.Errorf("pre-drain job state %s, want ok", fin.State)
	}
}

func TestForcedDrainCancelsInFlightJobs(t *testing.T) {
	reg, gate := testRegistry()
	defer close(gate)
	s, err := New(Config{Registry: reg, Workers: 1, JobTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	submit := func(spec string) JobStatus {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return st
	}
	running := submit(`{"experiment": "exp-gated", "no_cache": true}`)
	queued := submit(`{"experiment": "exp-5", "no_cache": true}`)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("forced drain reported a clean exit")
	}
	for _, id := range []string{running.ID, queued.ID} {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var fin JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&fin)
		resp.Body.Close()
		if fin.State != JobCancelled {
			t.Errorf("job %s state %s, want cancelled after forced drain", id, fin.State)
		}
	}
}

// promValue extracts one sample's value from Prometheus text exposition.
func promValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, sample+" "), 64)
			if err != nil {
				t.Fatalf("parsing sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in metrics:\n%s", sample, text)
	return 0
}

// TestEndToEndOverlappingSubmissions is the acceptance test: 200
// overlapping submissions drawn from 10 unique specs. Exactly one
// submission per unique spec simulates; every other one must reuse its
// result (≥ 90% reuse), every manifest for a spec must be byte-identical,
// and /v1/metrics must agree with what happened.
func TestEndToEndOverlappingSubmissions(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 4})
	const (
		uniqueSpecs = 10
		perSpec     = 20
		total       = uniqueSpecs * perSpec
	)

	var wg sync.WaitGroup
	ids := make([][]string, uniqueSpecs)
	var mu sync.Mutex
	for u := 0; u < uniqueSpecs; u++ {
		for c := 0; c < perSpec; c++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				code, st := d.submit(t, fmt.Sprintf(`{"experiment": "exp-%d"}`, u))
				if code != http.StatusAccepted && code != http.StatusOK {
					t.Errorf("submit exp-%d: status %d", u, code)
					return
				}
				mu.Lock()
				ids[u] = append(ids[u], st.ID)
				mu.Unlock()
			}(u)
		}
	}
	wg.Wait()

	var reused int
	for u := 0; u < uniqueSpecs; u++ {
		if len(ids[u]) != perSpec {
			t.Fatalf("spec %d: %d submissions accepted, want %d", u, len(ids[u]), perSpec)
		}
		var manifests [][]byte
		for _, id := range ids[u] {
			fin := d.await(t, id)
			if fin.State != JobOK {
				t.Fatalf("job %s: state %s", id, fin.State)
			}
			if fin.CacheHit || fin.Coalesced {
				reused++
			}
			_, m := d.get(t, "/v1/jobs/"+id+"/manifest")
			manifests = append(manifests, m)
		}
		for i := 1; i < len(manifests); i++ {
			if !bytes.Equal(manifests[0], manifests[i]) {
				t.Fatalf("spec %d: manifest %d differs from manifest 0:\n%s\nvs\n%s",
					u, i, manifests[0], manifests[i])
			}
		}
	}

	// Exactly one simulation per unique spec: 190 of 200 reused = 95%.
	if want := total - uniqueSpecs; reused != want {
		t.Errorf("%d of %d submissions reused a result, want %d", reused, total, want)
	}
	if rate := float64(reused) / float64(total); rate < 0.9 {
		t.Errorf("reuse rate %.2f below the 90%% bar", rate)
	}

	// The metrics endpoint must tell the same story.
	code, metrics := d.get(t, "/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	text := string(metrics)
	hits := promValue(t, text, "apusimd_cache_hits_total")
	coal := promValue(t, text, "apusimd_cache_coalesced_total")
	misses := promValue(t, text, "apusimd_cache_misses_total")
	submitted := promValue(t, text, "apusimd_jobs_submitted_total")
	completedOK := promValue(t, text, `apusimd_jobs_completed_total{state="ok"}`)
	if submitted != total {
		t.Errorf("submitted_total = %g, want %d", submitted, total)
	}
	if misses != uniqueSpecs {
		t.Errorf("cache_misses_total = %g, want %d", misses, uniqueSpecs)
	}
	if hits+coal != float64(total-uniqueSpecs) {
		t.Errorf("hits (%g) + coalesced (%g) = %g, want %d", hits, coal, hits+coal, total-uniqueSpecs)
	}
	if completedOK != total {
		t.Errorf("completed ok = %g, want %d", completedOK, total)
	}
	if cs := d.srv.CacheStats(); float64(cs.Hits) != hits {
		t.Errorf("cache stats hits %d disagree with /v1/metrics %g", cs.Hits, hits)
	}
}
