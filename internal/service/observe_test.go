package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink for capturing slog output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// traceView mirrors the /v1/jobs/{id}/trace response shape the tests
// need.
type traceView struct {
	Schema    string   `json:"schema"`
	Job       string   `json:"job"`
	TraceID   string   `json:"trace_id"`
	State     JobState `json:"state"`
	Lifecycle struct {
		Schema string `json:"schema"`
		Spans  []struct {
			Trace string `json:"trace"`
			Kind  string `json:"kind"`
			Stage string `json:"stage"`
			Name  string `json:"name"`
		} `json:"spans"`
	} `json:"lifecycle"`
}

func TestTraceIDLinksJobAndTraceEndpoint(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, st := d.submit(t, `{"experiment": "exp-0"}`)
	if !traceIDRe.MatchString(st.TraceID) {
		t.Fatalf("submit returned trace_id %q, want 16 hex digits", st.TraceID)
	}
	fin := d.await(t, st.ID)
	if fin.TraceID != st.TraceID {
		t.Fatalf("trace_id changed across lifecycle: %q -> %q", st.TraceID, fin.TraceID)
	}

	code, body := d.get(t, "/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", code, body)
	}
	var tv traceView
	if err := json.Unmarshal(body, &tv); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if tv.Schema != "apusimd-job-trace/v1" {
		t.Errorf("trace schema %q", tv.Schema)
	}
	if tv.TraceID != st.TraceID || tv.Job != st.ID {
		t.Errorf("trace identity %s/%s, want %s/%s", tv.Job, tv.TraceID, st.ID, st.TraceID)
	}
	if tv.Lifecycle.Schema != "apusim-spans/v1" {
		t.Errorf("lifecycle schema %q", tv.Lifecycle.Schema)
	}
	if len(tv.Lifecycle.Spans) < 2 {
		t.Fatalf("lifecycle has %d spans, want a root plus stage children", len(tv.Lifecycle.Spans))
	}
	var sawRoot, sawQueued, sawRunning bool
	for _, sp := range tv.Lifecycle.Spans {
		if sp.Trace != st.TraceID {
			t.Errorf("span %q carries trace %q, want %q", sp.Name, sp.Trace, st.TraceID)
		}
		switch {
		case sp.Kind == "job" && sp.Name == st.ID:
			sawRoot = true
		case sp.Stage == string(JobQueued):
			sawQueued = true
		case sp.Stage == string(JobRunning):
			sawRunning = true
		}
	}
	if !sawRoot || !sawQueued || !sawRunning {
		t.Errorf("lifecycle missing spans: root=%v queued=%v running=%v", sawRoot, sawQueued, sawRunning)
	}

	// A cache hit is a distinct job with its own trace ID, and its trace
	// view still renders (with no running stage — it never ran).
	code, st2 := d.submit(t, `{"experiment": "exp-0"}`)
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("second submit: code %d cacheHit %v", code, st2.CacheHit)
	}
	if st2.TraceID == st.TraceID || !traceIDRe.MatchString(st2.TraceID) {
		t.Errorf("cache-hit trace_id %q should be fresh and well-formed (first was %q)", st2.TraceID, st.TraceID)
	}
	if code, _ := d.get(t, "/v1/jobs/"+st2.ID+"/trace"); code != http.StatusOK {
		t.Errorf("cache-hit trace: status %d", code)
	}
	if code, _ := d.get(t, "/v1/jobs/nope/trace"); code != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", code)
	}
}

func TestStageTimingsStamped(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, st := d.submit(t, `{"experiment": "exp-gated"}`)
	// Wait until a worker holds the job, then keep it running a while so
	// run_ns is unambiguously nonzero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := d.get(t, "/v1/jobs/"+st.ID)
		var cur JobStatus
		_ = json.Unmarshal(body, &cur)
		if cur.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(d.gate)
	d.gate = make(chan struct{})
	fin := d.await(t, st.ID)

	if fin.RunNS < int64(10*time.Millisecond) {
		t.Errorf("run_ns = %d, want >= 10ms (job was held running)", fin.RunNS)
	}
	if fin.E2ENS != fin.QueuedNS+fin.RunNS {
		t.Errorf("e2e_ns %d != queued_ns %d + run_ns %d", fin.E2ENS, fin.QueuedNS, fin.RunNS)
	}

	// Cache hits never ran: queue/run stay unstamped, e2e is stamped by
	// the terminal transition.
	_, hit := d.submit(t, `{"experiment": "exp-gated"}`)
	if !hit.CacheHit {
		t.Fatal("expected a cache hit")
	}
	if hit.QueuedNS != 0 || hit.RunNS != 0 {
		t.Errorf("cache hit stamped queued_ns=%d run_ns=%d, want 0/0", hit.QueuedNS, hit.RunNS)
	}
}

func TestDebugEndpointLiveIntrospection(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, FlightEvents: 64})
	_, st := d.submit(t, `{"experiment": "exp-gated"}`)

	var snap DebugSnapshot
	found := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !found {
		code, body := d.get(t, "/v1/debug")
		if code != http.StatusOK {
			t.Fatalf("GET /v1/debug: status %d: %s", code, body)
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("decoding debug snapshot: %v", err)
		}
		for _, w := range snap.Workers {
			if w.Job == st.ID && w.Stage == "simulating" {
				found = true
				if w.Idle {
					t.Error("busy worker marked idle")
				}
				if w.TraceID != st.TraceID {
					t.Errorf("worker trace %q, want %q", w.TraceID, st.TraceID)
				}
				if w.Experiment != "exp-gated" {
					t.Errorf("worker experiment %q", w.Experiment)
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !found {
		t.Fatal("no /v1/debug worker row ever showed the gated job simulating")
	}
	if snap.Schema != "apusimd-debug/v1" {
		t.Errorf("debug schema %q", snap.Schema)
	}
	if len(snap.Workers) != 2 {
		t.Errorf("debug shows %d workers, want 2", len(snap.Workers))
	}
	if snap.Running < 1 {
		t.Errorf("debug running %d, want >= 1", snap.Running)
	}
	if snap.QueueCapacity != 64 {
		t.Errorf("queue capacity %d, want the default 64", snap.QueueCapacity)
	}
	events := map[string]bool{}
	for _, ev := range snap.Flight {
		if ev.Job == st.ID {
			events[ev.Event] = true
			if ev.Trace != st.TraceID {
				t.Errorf("flight event %s carries trace %q, want %q", ev.Event, ev.Trace, st.TraceID)
			}
		}
	}
	if !events["submit"] || !events["start"] {
		t.Errorf("flight recorder missing lifecycle events: %v", events)
	}

	close(d.gate)
	d.gate = make(chan struct{})
	d.await(t, st.ID)
	sawFinish := false
	for time.Now().Before(deadline) && !sawFinish {
		_, body := d.get(t, "/v1/debug")
		var after DebugSnapshot
		_ = json.Unmarshal(body, &after)
		for _, ev := range after.Flight {
			if ev.Job == st.ID && ev.Event == "finish" {
				sawFinish = true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawFinish {
		t.Error("flight recorder never showed the finish event")
	}
}

func TestWatchHeartbeats(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, WatchHeartbeat: 15 * time.Millisecond})
	_, st := d.submit(t, `{"experiment": "exp-gated"}`)

	resp, err := d.http.Client().Get(d.http.URL + "/v1/jobs/" + st.ID + "?watch=1")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()

	heartbeats := 0
	released := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Heartbeat bool     `json:"heartbeat"`
			ID        string   `json:"id"`
			State     JobState `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("watch line %q: %v", sc.Text(), err)
		}
		if line.Heartbeat {
			heartbeats++
			if line.ID != st.ID {
				t.Errorf("heartbeat for job %q, want %q", line.ID, st.ID)
			}
			// Two heartbeats prove the keep-alive cadence; then release
			// the job so the stream terminates normally.
			if heartbeats == 2 && !released {
				released = true
				close(d.gate)
				d.gate = make(chan struct{})
			}
			continue
		}
		if line.State.Terminal() {
			break
		}
	}
	if heartbeats < 2 {
		t.Errorf("saw %d heartbeats, want >= 2 while the job was gated", heartbeats)
	}
}

func TestShedEmitsStructuredLogAndTenantCounter(t *testing.T) {
	var logs syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logs, nil))
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1, TenantMaxInFlight: 1, Logger: logger})

	code, alice := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`, "X-Tenant", "alice")
	if code != http.StatusAccepted {
		t.Fatalf("first alice submit: %d", code)
	}
	// Wait for the single worker to dequeue alice's job, so the one queue
	// slot is free for bob and the queue_full shed is deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := d.get(t, "/v1/jobs/"+alice.ID)
		var cur JobStatus
		_ = json.Unmarshal(body, &cur)
		if cur.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("alice's job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Tenant cap: alice already has one in flight.
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`, "X-Tenant", "alice"); code != http.StatusTooManyRequests {
		t.Fatalf("second alice submit: %d, want 429", code)
	}
	// Queue full: bob takes the single queue slot, carol is shed.
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`, "X-Tenant", "bob"); code != http.StatusAccepted {
		t.Fatalf("bob submit: %d", code)
	}
	if code, _ := d.submit(t, `{"experiment": "exp-gated", "no_cache": true}`, "X-Tenant", "carol"); code != http.StatusTooManyRequests {
		t.Fatalf("carol submit: %d, want 429", code)
	}

	_, metrics := d.get(t, "/v1/metrics")
	text := string(metrics)
	if v := promValue(t, text, `apusimd_tenant_sheds_total{reason="tenant_limit",tenant="alice"}`); v != 1 {
		t.Errorf("alice tenant_limit sheds = %g, want 1", v)
	}
	if v := promValue(t, text, `apusimd_tenant_sheds_total{reason="queue_full",tenant="carol"}`); v != 1 {
		t.Errorf("carol queue_full sheds = %g, want 1", v)
	}

	logged := logs.String()
	for _, want := range []string{
		`"msg":"submission shed"`,
		`"reason":"tenant_limit"`,
		`"tenant":"alice"`,
		`"reason":"queue_full"`,
		`"tenant":"carol"`,
		`"retry_after_s"`,
		`"msg":"job admitted"`,
		`"trace_id"`,
	} {
		if !strings.Contains(logged, want) {
			t.Errorf("structured log missing %s in:\n%s", want, logged)
		}
	}
}

func TestLatencyHistogramsRecorded(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	_, st := d.submit(t, `{"experiment": "exp-3"}`)
	d.await(t, st.ID)
	if code, hit := d.submit(t, `{"experiment": "exp-3"}`); code != http.StatusOK || !hit.CacheHit {
		t.Fatalf("second submit: code %d cacheHit %v", code, hit.CacheHit)
	}

	_, metrics := d.get(t, "/v1/metrics")
	text := string(metrics)
	// The fresh run observed every stage; the cache hit only end-to-end.
	if v := promValue(t, text, `apusimd_job_queue_wait_seconds_count{experiment="exp-3"}`); v != 1 {
		t.Errorf("queue_wait count = %g, want 1", v)
	}
	if v := promValue(t, text, `apusimd_job_run_seconds_count{experiment="exp-3"}`); v != 1 {
		t.Errorf("run count = %g, want 1", v)
	}
	if v := promValue(t, text, `apusimd_job_e2e_seconds_count{experiment="exp-3"}`); v != 2 {
		t.Errorf("e2e count = %g, want 2", v)
	}
	if v := promValue(t, text, `apusimd_tenant_e2e_seconds_count{tenant="default"}`); v != 2 {
		t.Errorf("tenant e2e count = %g, want 2", v)
	}
	// Untouched experiments still expose empty series (pre-registered).
	if v := promValue(t, text, `apusimd_job_e2e_seconds_count{experiment="exp-7"}`); v != 0 {
		t.Errorf("idle experiment e2e count = %g, want 0", v)
	}
}

// TestIdleMetricsExpositionDeterministic is the determinism golden: an
// idle server's /v1/metrics text must be byte-identical across repeated
// scrapes, across worker-pool widths, and against the checked-in golden.
// Regenerate with UPDATE_METRICS_GOLDEN=1 go test ./internal/service/.
func TestIdleMetricsExpositionDeterministic(t *testing.T) {
	scrape := func(workers int) string {
		d := newTestDaemon(t, Config{Workers: workers})
		_, first := d.get(t, "/v1/metrics")
		_, second := d.get(t, "/v1/metrics")
		if !bytes.Equal(first, second) {
			t.Fatalf("repeated scrapes of an idle server differ (workers=%d)", workers)
		}
		return string(first)
	}
	one := scrape(1)
	eight := scrape(8)
	if one != eight {
		t.Fatalf("idle exposition differs across -parallel degrees:\nworkers=1:\n%s\nworkers=8:\n%s", one, eight)
	}

	golden := filepath.Join("testdata", "metrics_idle.golden")
	if os.Getenv("UPDATE_METRICS_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(one), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_METRICS_GOLDEN=1): %v", err)
	}
	if one != string(want) {
		t.Errorf("idle exposition drifted from golden; regenerate with UPDATE_METRICS_GOLDEN=1 if intentional.\ngot:\n%s", one)
	}
}

// TestFlightRecorderWraps pins the ring semantics: once more events than
// slots are recorded, the window holds the most recent ones in sequence
// order.
func TestFlightRecorderWraps(t *testing.T) {
	f := newFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightEvent{Event: fmt.Sprintf("e%d", i)})
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("e%d", 6+i); ev.Event != want {
			t.Errorf("slot %d = %s, want %s", i, ev.Event, want)
		}
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Errorf("events out of order: %d then %d", evs[i-1].Seq, ev.Seq)
		}
	}
}

func TestTraceIDForDeterministic(t *testing.T) {
	a := traceIDFor("j-000001", "abc")
	if a != traceIDFor("j-000001", "abc") {
		t.Error("traceIDFor is not deterministic")
	}
	if a == traceIDFor("j-000002", "abc") || a == traceIDFor("j-000001", "abd") {
		t.Error("traceIDFor collides across distinct inputs")
	}
	if !traceIDRe.MatchString(a) {
		t.Errorf("traceIDFor %q is not 16 hex digits", a)
	}
}
